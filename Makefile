# Developer entry points. `make check` is the CI gate: vet, the cpxlint
# static-analysis suite, build, the full test suite, the race detector
# over the concurrency-heavy packages (the virtual-time runtime and its
# tracing layer), and one iteration of each runtime benchmark so a
# change that breaks them fails loudly.

GO ?= go

.PHONY: check vet lint lint-baseline build test test-race test-race-short race serve-smoke sweep-smoke telemetry-smoke sched-smoke particle-smoke bench-smoke bench-trace bench-mpi bench-fault bench-serve bench-telemetry bench-sched bench-particle bench-lint

check: vet lint build test race test-race-short serve-smoke sweep-smoke telemetry-smoke sched-smoke particle-smoke bench-smoke bench-fault bench-particle

vet:
	$(GO) vet ./...

# cpxlint enforces the determinism, mpiuse, poolsafety, floatreduce,
# commmatch and hotalloc invariants plus the perfgate compiler-fact
# gate (see internal/analysis); exits non-zero on any diagnostic that
# has neither a reviewed //lint:allow suppression nor an entry in the
# checked-in lint.baseline.json.
lint:
	$(GO) run ./cmd/cpxlint -baseline lint.baseline.json .

# Refresh the accepted-findings baseline after a reviewed change.
lint-baseline:
	$(GO) run ./cmd/cpxlint -write-baseline lint.baseline.json .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/mpi/ ./internal/trace/

# Race-detect the whole module (slower than the targeted `race` gate).
test-race:
	$(GO) test -race ./...

# Short-mode race leg for the runtime, coupling and serving layers:
# cheap enough for `make check`, still crosses the goroutine-per-rank
# scheduler, the coupler's exchange phases and the HTTP job registry.
test-race-short:
	$(GO) test -race -short ./internal/mpi/ ./internal/coupler/ ./internal/serve/

# End-to-end self-test of the cpxserve HTTP service on an ephemeral
# port: health, a demo allocation served byte-identically from the
# cache on repeat, a small coupled simulation, a live job watched over
# SSE (at least one virtual-time progress event must arrive before the
# job completes), and the metrics exposition.
serve-smoke:
	$(GO) run ./cmd/cpxserve -smoke

# Scale-out smoke: builds cpxserve, spawns two worker shard processes
# (each with its own disk cache), fronts them with a cache-key router,
# and runs the same parameter sweep twice — every point must route to a
# shard, land on the same shard both times, be served from cache on the
# re-run, and return byte-identical artifacts.
sweep-smoke:
	$(GO) build -o /tmp/cpxserve-smoke ./cmd/cpxserve
	/tmp/cpxserve-smoke -smoke-sweep

# Live-telemetry smoke: submits a slow simulation and asserts progress
# streams over /v1/jobs/{id}/events while it runs. The job-stream leg
# lives inside the cpxserve smoke; this runs it with JSON logs enabled
# so the structured-logging path is exercised too.
telemetry-smoke:
	$(GO) run ./cmd/cpxserve -smoke -log json -v

# A tiny coupled run on the event-driven executor (Config.EventDriven):
# end-to-end coverage of the coroutine runtime through the real CLI.
sched-smoke:
	$(GO) run ./cmd/cpxsim -demo -sched event

# Quick pass of the particle-scaling experiment: all three MiniCombust
# suites x all three balancing strategies through the real CLI, with
# virtual-time identity asserted across both executors on every row.
particle-smoke:
	$(GO) run ./cmd/cpxbench -exp particle-scaling -quick

# One iteration of every runtime benchmark: catches benchmarks that no
# longer compile or run, without the cost of a real measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkRun' -benchtime 1x ./internal/mpi/

# Re-measure the tracing overhead baseline recorded in BENCH_trace.json.
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkRunTrace' -benchmem -count 5 ./internal/mpi/

# Re-measure the host fast-path baselines recorded in BENCH_mpi.json.
bench-mpi:
	$(GO) test -run '^$$' -bench 'BenchmarkRunP2P|BenchmarkRunCollectives' -benchmem -count 5 ./internal/mpi/

# One iteration of the resilience benchmarks (checkpointed run + full
# crash-recovery cycle); baselines recorded in BENCH_fault.json.
bench-fault:
	$(GO) test -run '^$$' -bench 'BenchmarkRunResilient' -benchtime 1x ./internal/coupler/

# Re-measure the virtual-time metrics-sampling overhead recorded in
# BENCH_telemetry.json (metrics on vs off at 8/64/512 ranks).
bench-telemetry:
	$(GO) test -run '^$$' -bench 'BenchmarkRunMetrics' -benchmem -count 5 ./internal/mpi/

# Re-measure the executor comparison recorded in BENCH_sched.json
# (goroutine-per-rank vs the event-driven loop at 8-4096 ranks);
# `cpxbench -exp sched-scaling` prints the same comparison as a table.
bench-sched:
	$(GO) test -run '^$$' -bench 'BenchmarkRunSched' -benchmem -benchtime 30x -count 5 ./internal/mpi/

# Re-measure the serving baselines recorded in BENCH_serve.json (cached
# vs uncached request path, plus the 1024-concurrent sweep vs pointwise
# comparison) and BENCH_perfmodel.json (Alg. 1 fast path vs the
# reference implementation).
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServe' -benchmem -count 5 ./internal/serve/
	$(GO) test -run '^$$' -bench 'BenchmarkAllocate' -benchmem -count 5 ./internal/perfmodel/

# Re-measure the coupled flow+particle host cost recorded in
# BENCH_particle.json (per strategy at 8/64/512 particle ranks). In
# `make check` it runs one iteration as a smoke gate.
bench-particle:
	$(GO) test -run '^$$' -bench 'BenchmarkRunParticle' -benchtime 1x ./internal/particle/

# Time the full cpxlint sweep (wall clock recorded in BENCH_lint.json).
bench-lint:
	time $(GO) run ./cmd/cpxlint -baseline lint.baseline.json .
