# Developer entry points. `make check` is the CI gate: vet, build, the
# full test suite, and the race detector over the concurrency-heavy
# packages (the virtual-time runtime and its tracing layer).

GO ?= go

.PHONY: check vet build test race bench-trace

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/mpi/ ./internal/trace/

# Re-measure the tracing overhead baseline recorded in BENCH_trace.json.
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkRunTrace' -benchmem -count 5 ./internal/mpi/
