# Developer entry points. `make check` is the CI gate: vet, build, the
# full test suite, the race detector over the concurrency-heavy
# packages (the virtual-time runtime and its tracing layer), and one
# iteration of each runtime benchmark so a change that breaks them
# fails loudly.

GO ?= go

.PHONY: check vet build test race bench-smoke bench-trace bench-mpi

check: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/mpi/ ./internal/trace/

# One iteration of every runtime benchmark: catches benchmarks that no
# longer compile or run, without the cost of a real measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkRun' -benchtime 1x ./internal/mpi/

# Re-measure the tracing overhead baseline recorded in BENCH_trace.json.
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkRunTrace' -benchmem -count 5 ./internal/mpi/

# Re-measure the host fast-path baselines recorded in BENCH_mpi.json.
bench-mpi:
	$(GO) test -run '^$$' -bench 'BenchmarkRunP2P|BenchmarkRunCollectives' -benchmem -count 5 ./internal/mpi/
