# Developer entry points. `make check` is the CI gate: vet, the cpxlint
# static-analysis suite, build, the full test suite, the race detector
# over the concurrency-heavy packages (the virtual-time runtime and its
# tracing layer), and one iteration of each runtime benchmark so a
# change that breaks them fails loudly.

GO ?= go

.PHONY: check vet lint build test test-race race bench-smoke bench-trace bench-mpi bench-fault

check: vet lint build test race bench-smoke bench-fault

vet:
	$(GO) vet ./...

# cpxlint enforces the determinism, mpiuse, poolsafety and floatreduce
# invariants (see internal/analysis); exits non-zero on any diagnostic
# without a reviewed //lint:allow suppression.
lint:
	$(GO) run ./cmd/cpxlint .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/mpi/ ./internal/trace/

# Race-detect the whole module (slower than the targeted `race` gate).
test-race:
	$(GO) test -race ./...

# One iteration of every runtime benchmark: catches benchmarks that no
# longer compile or run, without the cost of a real measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkRun' -benchtime 1x ./internal/mpi/

# Re-measure the tracing overhead baseline recorded in BENCH_trace.json.
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkRunTrace' -benchmem -count 5 ./internal/mpi/

# Re-measure the host fast-path baselines recorded in BENCH_mpi.json.
bench-mpi:
	$(GO) test -run '^$$' -bench 'BenchmarkRunP2P|BenchmarkRunCollectives' -benchmem -count 5 ./internal/mpi/

# One iteration of the resilience benchmarks (checkpointed run + full
# crash-recovery cycle); baselines recorded in BENCH_fault.json.
bench-fault:
	$(GO) test -run '^$$' -bench 'BenchmarkRunResilient' -benchtime 1x ./internal/coupler/
