// Benchmarks regenerating the paper's tables and figures (smoke-scale
// geometry; run cmd/cpxbench for the full paper-scale sweeps) plus
// microbenchmarks of the performance-critical kernels the study hinges
// on. One benchmark per table/figure, named after it.
package cpx_test

import (
	"testing"
	"time"

	"cpx"
	"cpx/internal/amg"
	"cpx/internal/cluster"
	"cpx/internal/coupler"
	"cpx/internal/harness"
	"cpx/internal/mpi"
	"cpx/internal/simpic"
	"cpx/internal/sparse"
)

func quickOpts() harness.Options {
	return harness.Options{Machine: cluster.ARCHER2(), Quick: true, Watchdog: 20 * time.Minute}
}

// ---- One benchmark per paper table/figure -----------------------------------

func BenchmarkFig3STCEquivalence(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := o.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4SpeedupPressureVsSIMPIC(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := o.Fig4ab(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4cLargeBaseSTC(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := o.Fig4c(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5aFunctionBreakdown(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := o.Fig5a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5bFunctionPE(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := o.Fig5b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6aOptimizedPE(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := o.Fig6a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6bcOptimizedSTC(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := o.Fig6bc(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SmallCoupledValidation(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := o.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9FullEngine(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := o.RunEngine(false, 400); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSensitivityBounds(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := o.Sensitivity(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAMGAblationTable(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := o.AMGAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchAblationTable(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := o.SearchAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverlapStudyTable(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := o.OverlapStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Kernel microbenchmarks ---------------------------------------------------

func BenchmarkSpMV(b *testing.B) {
	a := sparse.Poisson3D(32, 32, 32)
	x := make([]float64, a.Rows)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.SetBytes(int64(a.NNZ() * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x, y)
	}
}

func BenchmarkSpGEMMTwoPass(b *testing.B) {
	a := sparse.Poisson3D(16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.MulTwoPass(a, a)
	}
}

func BenchmarkSpGEMMSPA(b *testing.B) {
	a := sparse.Poisson3D(16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.MulSPA(a, a, 0)
	}
}

func BenchmarkAMGSetupBase(b *testing.B) {
	a := sparse.Poisson3D(16, 16, 16)
	for i := 0; i < b.N; i++ {
		if _, err := amg.Setup(a, amg.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAMGSetupOptimized(b *testing.B) {
	a := sparse.Poisson3D(16, 16, 16)
	for i := 0; i < b.N; i++ {
		if _, err := amg.Setup(a, amg.OptimizedOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAMGVCycle(b *testing.B) {
	a := sparse.Poisson3D(16, 16, 16)
	h, err := amg.Setup(a, amg.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, a.Rows)
	x := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = float64(i%5) - 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ApplyCycle(rhs, x)
	}
}

func BenchmarkKDTreeBuild(b *testing.B) {
	pts := coupler.AnnulusPoints(50_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coupler.BuildKDTree(pts)
	}
}

func BenchmarkKDTreeKNN(b *testing.B) {
	pts := coupler.AnnulusPoints(50_000, 1)
	tree := coupler.BuildKDTree(pts)
	queries := coupler.AnnulusPoints(1000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNearest(queries[i%len(queries)], 4)
	}
}

func BenchmarkSlidingPlaneRemap(b *testing.B) {
	donors := coupler.AnnulusPoints(20_000, 3)
	targets := coupler.AnnulusPoints(5_000, 4)
	m := &coupler.Mapper{Kind: coupler.TreePrefetch}
	m.Map(targets, donors)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Map(targets, coupler.Rotate(donors, 0.001*float64(i+1)))
	}
}

func BenchmarkPICStep(b *testing.B) {
	_, err := mpi.Run(4, cpx.RunConfig{Machine: cluster.SmallCluster()}, func(c *mpi.Comm) error {
		s, err := simpic.New(c, simpic.Config{Cells: 8192, ParticlesPerCell: 40, Steps: 1, Seed: 1}, simpic.ScaleOpts{})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			s.Step()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkVirtualAllreduce4096Ranks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := mpi.Run(4096, cpx.RunConfig{Machine: cluster.ARCHER2()}, func(c *mpi.Comm) error {
			c.AllreduceScalar(float64(c.Rank()), mpi.Sum)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoupledThreeComponentStep(b *testing.B) {
	stc := simpic.Config{Cells: 1024, ParticlesPerCell: 10, Steps: 2, Seed: 1}
	for i := 0; i < b.N; i++ {
		sim := &cpx.Simulation{
			Instances: []cpx.Instance{
				{Name: "hpc", Kind: cpx.MGCFD, MeshCells: 8_000, Ranks: 4, Seed: 1},
				{Name: "comb", Kind: cpx.SIMPIC, MeshCells: 28_000_000, Ranks: 4, Simpic: &stc, Seed: 2},
				{Name: "hpt", Kind: cpx.MGCFD, MeshCells: 8_000, Ranks: 4, Seed: 3},
			},
			Units: []cpx.CouplingUnit{
				{Name: "cu1", A: 0, B: 1, Kind: cpx.SteadyState, Points: 1000, Ranks: 1, Search: cpx.PrefetchSearch, ExchangeEvery: 1},
				{Name: "cu2", A: 1, B: 2, Kind: cpx.SteadyState, Points: 1000, Ranks: 1, Search: cpx.PrefetchSearch, ExchangeEvery: 1},
			},
			DensitySteps:    1,
			RotationPerStep: 0.002,
			Scale:           cpx.ProductionScale(),
		}
		if _, err := sim.Run(cpx.RunConfig{Machine: cluster.SmallCluster()}); err != nil {
			b.Fatal(err)
		}
	}
}
