// Command cpxbench regenerates the paper's evaluation tables and figures
// on the virtual-time ARCHER2 model.
//
// Usage:
//
//	cpxbench -exp fig4ab          # one experiment
//	cpxbench -exp all             # everything (long)
//	cpxbench -exp fig8 -quick -v  # fast smoke geometry with progress
//
// Experiments: fig3 fig4ab fig4c fig5a fig5b fig6a fig6bc fig8 fig9
// sensitivity overlap amg search resilience sched-scaling
// particle-scaling all.
package main

import (
	"flag"
	"fmt"
	"os"

	"cpx/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig3, fig4ab, fig4c, fig5a, fig5b, fig6a, fig6bc, fig8, fig9, sensitivity, overlap, amg, search, resilience, sched-scaling, particle-scaling, all)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	verbose := flag.Bool("v", false, "print progress")
	fastcoll := flag.Bool("fastcoll", false, "use analytic collectives (bitwise-identical virtual time, faster host runs)")
	sched := flag.String("sched", "goroutine", "rank executor: goroutine or event (bitwise-identical virtual time; sched-scaling compares both regardless)")
	flag.Parse()

	if *sched != "goroutine" && *sched != "event" {
		fmt.Fprintf(os.Stderr, "cpxbench: -sched must be goroutine or event, got %q\n", *sched)
		os.Exit(2)
	}
	o := harness.DefaultOptions()
	o.Quick = *quick
	o.Verbose = *verbose
	o.FastCollectives = *fastcoll
	o.EventDriven = *sched == "event"

	single := map[string]func() (*harness.Table, error){
		"fig3":             o.Fig3,
		"fig4ab":           o.Fig4ab,
		"fig4c":            o.Fig4c,
		"fig5a":            o.Fig5a,
		"fig5b":            o.Fig5b,
		"fig6a":            o.Fig6a,
		"fig6bc":           o.Fig6bc,
		"fig8":             o.Fig8,
		"sensitivity":      o.Sensitivity,
		"overlap":          o.OverlapStudy,
		"amg":              o.AMGAblation,
		"search":           o.SearchAblation,
		"resilience":       o.Resilience,
		"sched-scaling":    o.SchedScaling,
		"particle-scaling": o.ParticleScaling,
	}
	order := []string{"fig3", "fig4ab", "fig4c", "fig5a", "fig5b", "fig6a", "fig6bc", "fig8", "fig9", "sensitivity", "overlap", "amg", "search", "resilience", "sched-scaling", "particle-scaling"}

	run := func(id string) {
		if id == "fig9" {
			tables, err := o.Fig9()
			if err != nil {
				fmt.Fprintf(os.Stderr, "cpxbench: %s: %v\n", id, err)
				os.Exit(1)
			}
			for _, t := range tables {
				fmt.Println(t.String())
			}
			return
		}
		fn, ok := single[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "cpxbench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		t, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpxbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
	}

	if *exp == "all" {
		for _, id := range order {
			run(id)
		}
		return
	}
	run(*exp)
}
