// Command cpxlint runs the cpx static-analysis suite (internal/analysis)
// over the module: determinism, mpiuse, poolsafety and floatreduce.
//
// Usage:
//
//	cpxlint [-tests] [module-root]
//
// The module root defaults to the nearest directory containing go.mod,
// searching upward from the working directory. Diagnostics print as
//
//	path/file.go:line:col: [rule] message
//
// and are silenced by a reviewed suppression on the same line or the
// line above:
//
//	//lint:allow <rule> <reason>
//
// Exit status: 0 clean, 1 unsuppressed diagnostics (including malformed
// suppressions), 2 load/type-check failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cpx/internal/analysis"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze the packages' own _test.go files")
	verbose := flag.Bool("v", false, "report suppressed diagnostics too")
	flag.Parse()

	root := flag.Arg(0)
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpxlint:", err)
			os.Exit(2)
		}
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpxlint:", err)
		os.Exit(2)
	}
	loader.IncludeTests = *tests

	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpxlint:", err)
		os.Exit(2)
	}
	if errs := loader.TypeErrors(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "cpxlint: type error:", e)
		}
		os.Exit(2)
	}

	rules := analysis.AnalyzerNames()
	var kept, suppressed []analysis.Diagnostic
	for _, pkg := range pkgs {
		supps := analysis.CollectSuppressions(loader.Fset, pkg.Files, rules)
		kept = append(kept, supps.Malformed...)

		simCritical := analysis.IsSimCritical(pkg.ImportPath)
		for _, a := range analysis.Analyzers() {
			if a.SimCriticalOnly && !simCritical {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:    a,
				Fset:        loader.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				Info:        pkg.Info,
				SimCritical: simCritical,
			}
			a.Run(pass)
			k, s := supps.Filter(pass.Diagnostics)
			kept = append(kept, k...)
			suppressed = append(suppressed, s...)
		}
	}

	sortDiags(kept)
	for _, d := range kept {
		fmt.Println(relativize(root, d))
	}
	if *verbose {
		sortDiags(suppressed)
		for _, d := range suppressed {
			fmt.Printf("%s (suppressed)\n", relativize(root, d))
		}
	}
	fmt.Fprintf(os.Stderr, "cpxlint: %d package(s), %d diagnostic(s), %d suppressed\n",
		len(pkgs), len(kept), len(suppressed))
	if len(kept) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks upward from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// relativize renders a diagnostic with its filename relative to root.
func relativize(root string, d analysis.Diagnostic) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

func sortDiags(diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
