// Command cpxlint runs the cpx static-analysis suite (internal/analysis)
// over the module: determinism, mpiuse, poolsafety, floatreduce,
// commmatch and hotalloc, plus the perfgate compiler-fact gate.
//
// Usage:
//
//	cpxlint [-tests] [-json] [-perfgate=false] [-baseline file] [-write-baseline file] [module-root]
//
// The module root defaults to the nearest directory containing go.mod,
// searching upward from the working directory. Diagnostics print as
//
//	path/file.go:line:col: [rule] message
//
// or, with -json, as a JSON report on stdout. They are silenced by a
// reviewed suppression on the same line or the line above:
//
//	//lint:allow <rule> <reason>
//
// -baseline compares findings against a checked-in baseline (written
// with -write-baseline): findings present in the baseline are reported
// but do not fail the run, so the gate only trips on NEW findings.
// Baseline entries match on (rule, file, message) — line numbers drift
// with unrelated edits and are deliberately not part of the key.
//
// Exit status: 0 clean, 1 unsuppressed non-baseline diagnostics
// (including malformed suppressions), 2 load/type-check/perfgate-build
// failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cpx/internal/analysis"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze the packages' own _test.go files")
	verbose := flag.Bool("v", false, "report suppressed diagnostics too")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout")
	perfgate := flag.Bool("perfgate", true, "run the perfgate compiler-fact gate on annotated packages")
	baselinePath := flag.String("baseline", "", "fail only on findings not in this baseline file")
	writeBaseline := flag.String("write-baseline", "", "write current findings as a baseline file and exit 0")
	flag.Parse()

	root := flag.Arg(0)
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpxlint:", err)
			os.Exit(2)
		}
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpxlint:", err)
		os.Exit(2)
	}
	loader.IncludeTests = *tests

	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpxlint:", err)
		os.Exit(2)
	}
	if errs := loader.TypeErrors(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "cpxlint: type error:", e)
		}
		os.Exit(2)
	}

	rules := analysis.AnalyzerNames()
	var kept, suppressed []analysis.Diagnostic
	for _, pkg := range pkgs {
		supps := analysis.CollectSuppressions(loader.Fset, pkg.Files, rules)
		kept = append(kept, supps.Malformed...)

		simCritical := analysis.IsSimCritical(pkg.ImportPath)
		for _, a := range analysis.Analyzers() {
			if a.SimCriticalOnly && !simCritical {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:    a,
				Fset:        loader.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				Info:        pkg.Info,
				SimCritical: simCritical,
			}
			a.Run(pass)
			k, s := supps.Filter(pass.Diagnostics)
			kept = append(kept, k...)
			suppressed = append(suppressed, s...)
		}

		if *perfgate {
			pass := &analysis.Pass{
				Analyzer:    analysis.PerfGateAnalyzer,
				Fset:        loader.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				Info:        pkg.Info,
				SimCritical: simCritical,
			}
			if err := analysis.PerfGate(root, pass); err != nil {
				fmt.Fprintln(os.Stderr, "cpxlint:", err)
				os.Exit(2)
			}
			k, s := supps.Filter(pass.Diagnostics)
			kept = append(kept, k...)
			suppressed = append(suppressed, s...)
		}
	}

	sortDiags(kept)
	sortDiags(suppressed)

	if *writeBaseline != "" {
		if err := saveBaseline(*writeBaseline, root, kept); err != nil {
			fmt.Fprintln(os.Stderr, "cpxlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "cpxlint: wrote %d finding(s) to %s\n", len(kept), *writeBaseline)
		return
	}

	var baselined []analysis.Diagnostic
	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpxlint:", err)
			os.Exit(2)
		}
		kept, baselined = splitBaseline(root, kept, base)
	}

	if *jsonOut {
		emitJSON(root, len(pkgs), kept, baselined, suppressed)
	} else {
		for _, d := range kept {
			fmt.Println(relativize(root, d))
		}
		for _, d := range baselined {
			fmt.Printf("%s (baseline)\n", relativize(root, d))
		}
		if *verbose {
			for _, d := range suppressed {
				fmt.Printf("%s (suppressed)\n", relativize(root, d))
			}
		}
	}
	fmt.Fprintf(os.Stderr, "cpxlint: %d package(s), %d diagnostic(s), %d baselined, %d suppressed\n",
		len(pkgs), len(kept), len(baselined), len(suppressed))
	if len(kept) > 0 {
		os.Exit(1)
	}
}

// ---- baseline --------------------------------------------------------------

// baselineEntry is one accepted finding. Line numbers are omitted on
// purpose: they drift with unrelated edits, and a baseline that rots on
// every refactor gets deleted rather than maintained.
type baselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
}

type baselineFile struct {
	Findings []baselineEntry `json:"findings"`
}

func baselineKey(e baselineEntry) string {
	return e.Rule + "\x00" + e.File + "\x00" + e.Message
}

func entryFor(root string, d analysis.Diagnostic) baselineEntry {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return baselineEntry{Rule: d.Rule, File: file, Message: d.Message}
}

func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	keys := make(map[string]bool, len(bf.Findings))
	for _, e := range bf.Findings {
		keys[baselineKey(e)] = true
	}
	return keys, nil
}

func saveBaseline(path, root string, diags []analysis.Diagnostic) error {
	bf := baselineFile{Findings: []baselineEntry{}}
	for _, d := range diags {
		bf.Findings = append(bf.Findings, entryFor(root, d))
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// splitBaseline partitions diagnostics into new findings (fail the run)
// and baseline-accepted ones (reported only).
func splitBaseline(root string, diags []analysis.Diagnostic, base map[string]bool) (fresh, accepted []analysis.Diagnostic) {
	for _, d := range diags {
		if base[baselineKey(entryFor(root, d))] {
			accepted = append(accepted, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, accepted
}

// ---- output ----------------------------------------------------------------

// jsonDiag is the machine-readable form of one diagnostic.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func toJSON(root string, diags []analysis.Diagnostic) []jsonDiag {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		e := entryFor(root, d)
		out = append(out, jsonDiag{File: e.File, Line: d.Pos.Line, Col: d.Pos.Column, Rule: d.Rule, Message: d.Message})
	}
	return out
}

func emitJSON(root string, pkgs int, kept, baselined, suppressed []analysis.Diagnostic) {
	report := struct {
		Packages    int        `json:"packages"`
		Diagnostics []jsonDiag `json:"diagnostics"`
		Baselined   []jsonDiag `json:"baselined"`
		Suppressed  []jsonDiag `json:"suppressed"`
	}{pkgs, toJSON(root, kept), toJSON(root, baselined), toJSON(root, suppressed)}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(report)
}

// findModuleRoot walks upward from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// relativize renders a diagnostic with its filename relative to root.
func relativize(root string, d analysis.Diagnostic) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

func sortDiags(diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
