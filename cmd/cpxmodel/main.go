// Command cpxmodel exercises the empirical performance model standalone:
// it fits parallel-efficiency curves to benchmark samples and runs the
// Algorithm 1 rank allocation over a set of components.
//
// Usage:
//
//	cpxmodel -components comps.json -budget 40000
//	cpxmodel -demo
//
// Component schema (JSON array):
//
//	[
//	  {"name": "row1 (24M)", "isCU": false, "minRanks": 100,
//	   "sizeRatio": 3, "iterRatio": 10,
//	   "samples": [{"cores": 128, "runtime": 100.0},
//	               {"cores": 1024, "runtime": 15.5}]}
//	]
//
// Each component's curve is fitted from its samples; sizeRatio/iterRatio
// scale the base case to the target problem as in the paper.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cpx/internal/perfmodel"
)

type jsonComponent struct {
	Name      string             `json:"name"`
	IsCU      bool               `json:"isCU"`
	MinRanks  int                `json:"minRanks"`
	SizeRatio float64            `json:"sizeRatio"`
	IterRatio float64            `json:"iterRatio"`
	Samples   []perfmodel.Sample `json:"samples"`
}

func demoComponents() []jsonComponent {
	mk := func(name string, base float64, p50 float64, isCU bool) jsonComponent {
		truth := perfmodel.Curve{BaseCores: 100, BaseTime: base, P50: p50, K: 1.3}
		var samples []perfmodel.Sample
		for _, p := range []int{100, 200, 400, 800, 1600, 3200} {
			samples = append(samples, perfmodel.Sample{Cores: p, Runtime: truth.Runtime(float64(p))})
		}
		return jsonComponent{Name: name, IsCU: isCU, MinRanks: 100, Samples: samples}
	}
	return []jsonComponent{
		mk("compressor row (24M)", 30, 5000, false),
		mk("combustor (380M equiv)", 400, 2500, false),
		mk("turbine row (150M)", 90, 8000, false),
		mk("coupling unit", 0.5, 200, true),
	}
}

func main() {
	path := flag.String("components", "", "JSON component descriptions")
	budget := flag.Int("budget", 40000, "total core budget")
	demo := flag.Bool("demo", false, "run a built-in demo allocation")
	flag.Parse()

	var comps []jsonComponent
	switch {
	case *demo:
		comps = demoComponents()
	case *path != "":
		raw, err := os.ReadFile(*path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpxmodel: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(raw, &comps); err != nil {
			fmt.Fprintf(os.Stderr, "cpxmodel: parsing %s: %v\n", *path, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "cpxmodel: need -components FILE or -demo")
		os.Exit(2)
	}

	var model []perfmodel.Component
	for _, jc := range comps {
		curve, err := perfmodel.FitCurve(jc.Samples)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpxmodel: fitting %q: %v\n", jc.Name, err)
			os.Exit(1)
		}
		fmt.Printf("fitted %-28s base %6.1fs @ %5d cores, PE knee p50=%.0f k=%.2f\n",
			jc.Name, curve.BaseTime, curve.BaseCores, curve.P50, curve.K)
		model = append(model, perfmodel.Component{
			Name: jc.Name, Curve: curve, IsCU: jc.IsCU,
			MinRanks: jc.MinRanks, SizeRatio: jc.SizeRatio, IterRatio: jc.IterRatio,
		})
	}
	alloc, err := perfmodel.Allocate(model, *budget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpxmodel: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nAlgorithm 1 allocation for a %d-core budget:\n\n%s", *budget, alloc.String())
	if alloc.Unallocated > 0 {
		fmt.Printf("idle cores (no component gains from more ranks): %d\n", alloc.Unallocated)
	}
}
