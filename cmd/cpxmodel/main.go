// Command cpxmodel exercises the empirical performance model standalone:
// it fits parallel-efficiency curves to benchmark samples and runs the
// Algorithm 1 rank allocation over a set of components.
//
// Usage:
//
//	cpxmodel -components comps.json -budget 40000
//	cpxmodel -demo
//
// Component schema (JSON array) — the same schema cpxserve accepts in
// POST /v1/allocate bodies:
//
//	[
//	  {"name": "row1 (24M)", "isCU": false, "minRanks": 100,
//	   "sizeRatio": 3, "iterRatio": 10,
//	   "samples": [{"cores": 128, "runtime": 100.0},
//	               {"cores": 1024, "runtime": 15.5}]}
//	]
//
// Each component's curve is fitted from its samples (or taken verbatim
// from an explicit "curve" object); sizeRatio/iterRatio scale the base
// case to the target problem as in the paper.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cpx/internal/perfmodel"
	"cpx/internal/serve"
)

// checkBudget rejects a core budget Algorithm 1 cannot allocate from.
func checkBudget(budget int) error {
	if budget <= 0 {
		return fmt.Errorf("budget must be a positive core count, got %d", budget)
	}
	return nil
}

func main() {
	path := flag.String("components", "", "JSON component descriptions")
	budget := flag.Int("budget", 40000, "total core budget")
	demo := flag.Bool("demo", false, "run a built-in demo allocation")
	flag.Parse()

	if err := checkBudget(*budget); err != nil {
		fmt.Fprintf(os.Stderr, "cpxmodel: %v\n", err)
		os.Exit(2)
	}

	var comps []serve.ComponentSpec
	switch {
	case *demo:
		comps = serve.DemoComponents()
	case *path != "":
		raw, err := os.ReadFile(*path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpxmodel: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(raw, &comps); err != nil {
			fmt.Fprintf(os.Stderr, "cpxmodel: parsing %s: %v\n", *path, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "cpxmodel: need -components FILE or -demo")
		os.Exit(2)
	}

	model := make([]perfmodel.Component, 0, len(comps))
	for _, cs := range comps {
		c, err := cs.Build()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpxmodel: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("fitted %-28s base %6.1fs @ %5d cores, PE knee p50=%.0f k=%.2f\n",
			c.Name, c.Curve.BaseTime, c.Curve.BaseCores, c.Curve.P50, c.Curve.K)
		model = append(model, c)
	}
	alloc, err := perfmodel.Allocate(model, *budget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpxmodel: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nAlgorithm 1 allocation for a %d-core budget:\n\n%s", *budget, alloc.String())
	if alloc.Unallocated > 0 {
		fmt.Printf("idle cores (no component gains from more ranks): %d\n", alloc.Unallocated)
	}
}
