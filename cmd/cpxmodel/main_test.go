package main

import (
	"testing"

	"cpx/internal/perfmodel"
	"cpx/internal/serve"
)

func TestDemoComponentsFitAndAllocate(t *testing.T) {
	comps := serve.DemoComponents()
	if len(comps) != 4 {
		t.Fatalf("demo components = %d", len(comps))
	}
	model, err := serve.BuildComponents(comps)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := perfmodel.Allocate(model, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	// The combustor (worst absolute time) must receive the most ranks
	// among the instances.
	maxIdx := 0
	for i := 0; i < 3; i++ {
		if alloc.Cores[i] > alloc.Cores[maxIdx] {
			maxIdx = i
		}
	}
	if model[maxIdx].Name != "combustor (380M equiv)" {
		t.Errorf("largest allocation went to %q", model[maxIdx].Name)
	}
}

func TestCheckBudget(t *testing.T) {
	for _, bad := range []int{0, -1, -40000} {
		if err := checkBudget(bad); err == nil {
			t.Errorf("checkBudget(%d) accepted a non-positive budget", bad)
		}
	}
	if err := checkBudget(1); err != nil {
		t.Errorf("checkBudget(1): %v", err)
	}
}
