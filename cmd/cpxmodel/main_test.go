package main

import (
	"testing"

	"cpx/internal/perfmodel"
)

func TestDemoComponentsFitAndAllocate(t *testing.T) {
	comps := demoComponents()
	if len(comps) != 4 {
		t.Fatalf("demo components = %d", len(comps))
	}
	var model []perfmodel.Component
	for _, jc := range comps {
		curve, err := perfmodel.FitCurve(jc.Samples)
		if err != nil {
			t.Fatalf("fitting %q: %v", jc.Name, err)
		}
		model = append(model, perfmodel.Component{
			Name: jc.Name, Curve: curve, IsCU: jc.IsCU, MinRanks: jc.MinRanks,
		})
	}
	alloc, err := perfmodel.Allocate(model, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	// The combustor (worst absolute time) must receive the most ranks
	// among the instances.
	maxIdx := 0
	for i := 0; i < 3; i++ {
		if alloc.Cores[i] > alloc.Cores[maxIdx] {
			maxIdx = i
		}
	}
	if model[maxIdx].Name != "combustor (380M equiv)" {
		t.Errorf("largest allocation went to %q", model[maxIdx].Name)
	}
}
