// Command cpxprof profiles the pressure-solver proxy per function on the
// virtual machine — the ARM-MAP-style breakdown of Fig. 5 — and emits the
// result as a table or CSV for plotting. With the export flags it also
// records the full observability bundle: a per-rank virtual-time event
// timeline in Chrome/Perfetto trace-event JSON (open it at
// ui.perfetto.dev), the rank×rank communication matrix as CSV, and a
// machine-readable JSON run summary including the critical-path
// breakdown.
//
// Usage:
//
//	cpxprof -mesh 28000000 -cores 2048
//	cpxprof -mesh 28000000 -cores 512 -optimized -csv > profile.csv
//	cpxprof -mesh 1000000 -cores 64 -trace trace.json -commmatrix comm.csv -json summary.json
//
// Flags:
//
//	-mesh N        pressure-solver mesh cells (must be >= 1)
//	-cores N       virtual core count (must be >= 1)
//	-steps N       time-steps
//	-optimized     profile the Optimized variant
//	-csv           emit the per-function breakdown as CSV on stdout
//	-trace FILE    write a Chrome/Perfetto trace-event JSON timeline
//	-commmatrix F  write the rank×rank comm matrix as CSV
//	-json FILE     write a JSON run summary (profile + critical path)
//	-timeseries F  sample per-rank virtual-time metrics to FILE
//	               (.csv selects CSV, else JSON); -interval sets the period
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
	"cpx/internal/pressure"
	"cpx/internal/telemetry"
	"cpx/internal/trace"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cpxprof: "+format+"\n", args...)
	os.Exit(1)
}

// writeFile creates path and streams fn into it.
func writeFile(path string, fn func(f *os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	if err := fn(f); err != nil {
		f.Close()
		fail("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fail("writing %s: %v", path, err)
	}
}

func main() {
	mesh := flag.Int64("mesh", 28_000_000, "pressure-solver mesh cells")
	cores := flag.Int("cores", 2048, "virtual core count")
	steps := flag.Int("steps", 10, "time-steps")
	optimized := flag.Bool("optimized", false, "profile the Optimized variant")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	tracePath := flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON timeline to FILE")
	commPath := flag.String("commmatrix", "", "write the rank×rank comm matrix CSV to FILE")
	jsonPath := flag.String("json", "", "write a JSON run summary to FILE")
	seriesPath := flag.String("timeseries", "", "sample virtual-time metrics to FILE (.csv selects CSV, else JSON)")
	interval := flag.Float64("interval", 0, "virtual-time sampling period in seconds (0 = default 0.01)")
	flag.Parse()

	if *cores < 1 {
		fail("-cores must be >= 1, got %d", *cores)
	}
	if *mesh < 1 {
		fail("-mesh must be >= 1, got %d", *mesh)
	}
	traced := *tracePath != "" || *commPath != "" || *jsonPath != ""

	cfg := pressure.Config{MeshCells: *mesh, Steps: *steps, Seed: 1}
	if *optimized {
		cfg.Variant = pressure.Optimized
	}
	runCfg := mpi.Config{Machine: cluster.ARCHER2(), Profile: true, Trace: traced}
	if *seriesPath != "" {
		runCfg.Metrics = &telemetry.Config{Interval: *interval}
	}
	stats, err := mpi.Run(*cores, runCfg,
		func(c *mpi.Comm) error {
			_, err := pressure.Run(c, cfg, pressure.Production())
			return err
		})
	if err != nil {
		fail("%v", err)
	}
	prof := stats.MergedProfile()
	fmt.Fprintf(os.Stderr, "pressure solver (%dM cells, %s) on %d virtual cores, %d steps: %.3f s simulated\n",
		*mesh/1_000_000, cfg.Variant, *cores, *steps, stats.Elapsed)

	if *tracePath != "" {
		writeFile(*tracePath, func(f *os.File) error { return trace.WriteChromeTrace(f, stats.Timelines) })
	}
	if *commPath != "" {
		writeFile(*commPath, func(f *os.File) error { return stats.CommMatrix.WriteCSV(f) })
	}
	if *jsonPath != "" {
		writeFile(*jsonPath, func(f *os.File) error { return stats.Summary().WriteJSON(f) })
	}
	if *seriesPath != "" {
		if stats.Metrics == nil {
			fail("no metric series sampled")
		}
		if strings.HasSuffix(*seriesPath, ".csv") {
			writeFile(*seriesPath, func(f *os.File) error { return stats.Metrics.WriteCSV(f) })
		} else {
			writeFile(*seriesPath, func(f *os.File) error { return stats.Metrics.WriteJSON(f) })
		}
	}

	if *csv {
		if err := prof.WriteCSV(os.Stdout); err != nil {
			fail("%v", err)
		}
		return
	}
	fmt.Print(prof.String())
}
