// Command cpxprof profiles the pressure-solver proxy per function on the
// virtual machine — the ARM-MAP-style breakdown of Fig. 5 — and emits the
// result as a table or CSV for plotting.
//
// Usage:
//
//	cpxprof -mesh 28000000 -cores 2048
//	cpxprof -mesh 28000000 -cores 512 -optimized -csv > profile.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
	"cpx/internal/pressure"
)

func main() {
	mesh := flag.Int64("mesh", 28_000_000, "pressure-solver mesh cells")
	cores := flag.Int("cores", 2048, "virtual core count")
	steps := flag.Int("steps", 10, "time-steps")
	optimized := flag.Bool("optimized", false, "profile the Optimized variant")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	flag.Parse()

	cfg := pressure.Config{MeshCells: *mesh, Steps: *steps, Seed: 1}
	if *optimized {
		cfg.Variant = pressure.Optimized
	}
	stats, err := mpi.Run(*cores, mpi.Config{Machine: cluster.ARCHER2(), Profile: true},
		func(c *mpi.Comm) error {
			_, err := pressure.Run(c, cfg, pressure.Production())
			return err
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpxprof: %v\n", err)
		os.Exit(1)
	}
	prof := stats.MergedProfile()
	fmt.Fprintf(os.Stderr, "pressure solver (%dM cells, %s) on %d virtual cores, %d steps: %.3f s simulated\n",
		*mesh/1_000_000, cfg.Variant, *cores, *steps, stats.Elapsed)
	if *csv {
		if err := prof.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cpxprof: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(prof.String())
}
