// Command cpxserve runs the CPX prediction/simulation service: an HTTP
// JSON API over the empirical performance model (fit PE curves, run the
// Algorithm 1 allocation, predict speedups) and the virtual-time coupled
// simulator (full scenario jobs, the cpxsim -config schema as the
// request body).
//
// Usage:
//
//	cpxserve -addr :8080
//	cpxserve -smoke        # self-test against an ephemeral port and exit
//
// Endpoints:
//
//	GET  /healthz             liveness + queue/cache gauges
//	GET  /metrics             Prometheus text exposition
//	GET  /v1/jobs             registry listing (every request is a job)
//	GET  /v1/jobs/{id}        one job's state and progress
//	GET  /v1/jobs/{id}/events live progress stream (Server-Sent Events)
//	POST /v1/fit              {"samples": [{"cores": 100, "runtime": 30}, ...]}
//	POST /v1/allocate         {"budget": 40000, "components": [...]}
//	POST /v1/speedup          {"budget": 40000, "base": [...], "optimized": [...]}
//	POST /v1/simulate         a cpxsim scenario (+ "seedOffset", "fastColl")
//	POST /v1/sweep            a scenario template + parameter ranges,
//	                          expanded server-side, streamed as NDJSON
//
// Every request is assigned a job ID (returned in the X-Job-ID header
// and in JSON error bodies) and tracked in the registry behind
// /v1/jobs. Structured logs go to stderr; -log selects text or JSON
// lines, -v enables debug events.
//
// A ?timeout=30s query parameter sets the per-request deadline; when it
// expires the job is cancelled and every rank goroutine unwinds. The
// worker pool is bounded: a full queue answers 429 with a Retry-After
// computed from queue depth and observed job latency. Identical
// requests are served from a content-addressed cache with the
// byte-identical artifact — sound because the model and the simulator
// are deterministic. The in-memory cache is LRU-bounded (-cache-bytes)
// and optionally backed by a persistent disk tier (-cache-dir) that
// survives restarts. With -shards, simulation jobs are routed to worker
// processes by consistent hashing of the cache key, so identical
// scenarios always land where the cache is warm; dead shards degrade to
// the next arc or to local execution. SIGINT/SIGTERM trigger a graceful
// shutdown that drains in-flight jobs.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cpx/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = default 4)")
	queue := flag.Int("queue", 0, "job queue length (0 = default 16)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = 60s)")
	logFormat := flag.String("log", "text", "structured log format: text or json")
	verbose := flag.Bool("v", false, "log debug events (job admitted / job running)")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory result cache budget in bytes (0 = default 256 MiB)")
	cacheDir := flag.String("cache-dir", "", "persistent disk cache directory (empty = memory tier only)")
	shards := flag.String("shards", "", "comma-separated worker shard base URLs; simulate jobs route by cache key")
	shardProbe := flag.Duration("shard-probe", 0, "shard health probe interval (0 = 2s)")
	sweepWorkers := flag.Int("sweep-workers", 0, "concurrent sweep points (0 = 2x workers)")
	portFile := flag.String("port-file", "", "write the bound listen address to this file once serving")
	smoke := flag.Bool("smoke", false, "self-test against an ephemeral port, then exit")
	smokeSweep := flag.Bool("smoke-sweep", false, "spawn two shard processes and self-test sweep routing, then exit")
	flag.Parse()

	logger, err := newLogger(*logFormat, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpxserve: %v\n", err)
		os.Exit(1)
	}
	opts := serve.Options{
		Workers: *workers, QueueLen: *queue, DefaultTimeout: *timeout, Logger: logger,
		CacheMaxBytes: *cacheBytes, CacheDir: *cacheDir, SweepWorkers: *sweepWorkers,
		ShardProbeInterval: *shardProbe,
	}
	if *shards != "" {
		for _, u := range strings.Split(*shards, ",") {
			if u = strings.TrimSpace(u); u != "" {
				opts.Shards = append(opts.Shards, u)
			}
		}
	}
	if *smoke {
		if err := runSmoke(opts); err != nil {
			fmt.Fprintf(os.Stderr, "cpxserve: smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("cpxserve: smoke OK")
		return
	}
	if *smokeSweep {
		if err := runSweepSmoke(opts, spawnShardProcess); err != nil {
			fmt.Fprintf(os.Stderr, "cpxserve: sweep smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("cpxserve: sweep smoke OK")
		return
	}
	if err := runServer(*addr, *portFile, opts); err != nil {
		logger.Error("server failed", "error", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger: structured lines on stderr in
// the chosen format.
func newLogger(format string, verbose bool) (*slog.Logger, error) {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	ho := &slog.HandlerOptions{Level: level}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, ho)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, ho)), nil
	default:
		return nil, fmt.Errorf("unknown -log format %q (want text or json)", format)
	}
}

// runServer serves until SIGINT/SIGTERM, then shuts down gracefully:
// stop accepting, let in-flight handlers finish, drain the pool. With
// portFile set, the bound address is published there (atomic rename)
// once the listener is up, so a parent that launched us on an ephemeral
// port can discover it.
func runServer(addr, portFile string, opts serve.Options) error {
	s := serve.New(opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.Close()
		return err
	}
	if portFile != "" {
		tmp := portFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			s.Close()
			return err
		}
		if err := os.Rename(tmp, portFile); err != nil {
			s.Close()
			return err
		}
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	opts.Logger.Info("listening", "addr", ln.Addr().String())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-sig:
	}
	opts.Logger.Info("shutting down, draining jobs")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err = hs.Shutdown(ctx)
	s.Close()
	return err
}

// runSmoke exercises the full serving path end to end on an ephemeral
// port: health, a demo allocation (miss, then byte-identical hit), a
// small coupled simulation, live job progress over SSE, and the
// metrics exposition.
func runSmoke(opts serve.Options) error {
	// A fine virtual-time sampling period so even the short smoke
	// simulation emits many progress observations.
	opts.ProgressInterval = 1e-4
	s := serve.New(opts)
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) (string, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			return "", fmt.Errorf("GET %s: %d %s", path, resp.StatusCode, b)
		}
		return string(b), nil
	}
	post := func(path, body string) ([]byte, string, error) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return nil, "", err
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			return nil, "", fmt.Errorf("POST %s: %d %s", path, resp.StatusCode, b)
		}
		return b, resp.Header.Get("X-Cache"), nil
	}

	if body, err := get("/healthz"); err != nil {
		return err
	} else if !strings.Contains(body, `"status":"ok"`) {
		return fmt.Errorf("healthz: %s", body)
	}

	allocBody, err := json.Marshal(serve.AllocateRequest{
		Budget:     10_000,
		Components: serve.DemoComponents(),
	})
	if err != nil {
		return err
	}
	first, oc1, err := post("/v1/allocate", string(allocBody))
	if err != nil {
		return err
	}
	if oc1 != "miss" {
		return fmt.Errorf("first allocation outcome %q, want miss", oc1)
	}
	second, oc2, err := post("/v1/allocate", string(allocBody))
	if err != nil {
		return err
	}
	if oc2 != "hit" {
		return fmt.Errorf("second allocation outcome %q, want hit", oc2)
	}
	if !bytes.Equal(first, second) {
		return errors.New("cached allocation not byte-identical")
	}

	simBody := `{
	  "densitySteps": 2, "rotationPerStep": 0.002,
	  "instances": [
	    {"name": "row1", "kind": "mgcfd", "meshCells": 4096, "ranks": 4, "seed": 1},
	    {"name": "row2", "kind": "mgcfd", "meshCells": 4096, "ranks": 4, "seed": 2}],
	  "units": [
	    {"name": "cu", "a": 0, "b": 1, "kind": "sliding", "points": 2000, "ranks": 2, "search": "tree"}]
	}`
	if body, _, err := post("/v1/simulate", simBody); err != nil {
		return err
	} else if !bytes.Contains(body, []byte(`"elapsed"`)) {
		return fmt.Errorf("simulate response: %s", body)
	}

	if err := smokeJobStream(base); err != nil {
		return fmt.Errorf("job stream: %w", err)
	}

	metrics, err := get("/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"cpxserve_cache_hits_total 1",
		`cpxserve_requests_total{endpoint="/v1/allocate",code="200"} 2`,
		`cpxserve_jobs_finished_total{state="done"}`,
		"cpxserve_jobs_active 0",
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("metrics missing %q", want)
		}
	}
	return nil
}

// smokeJobStream submits a slow simulation and watches it live: the
// job must be listed in /v1/jobs while in flight, stream at least one
// positive-virtual-time progress event over SSE before it completes,
// and finish with a terminal "done" event.
func smokeJobStream(base string) error {
	slowSim := `{
	  "densitySteps": 40, "rotationPerStep": 0.001,
	  "instances": [
	    {"name": "row1", "kind": "mgcfd", "meshCells": 262144, "ranks": 4, "seed": 1},
	    {"name": "row2", "kind": "mgcfd", "meshCells": 262144, "ranks": 4, "seed": 2}],
	  "units": [
	    {"name": "cu", "a": 0, "b": 1, "kind": "sliding", "points": 2000, "ranks": 2, "search": "tree"}]
	}`
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(slowSim))
		if err != nil {
			errc <- err
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			errc <- fmt.Errorf("slow simulate: %d %s", resp.StatusCode, b)
			return
		}
		errc <- nil
	}()

	// Find the in-flight job in the registry listing.
	var jobID string
	deadline := time.Now().Add(10 * time.Second)
	for jobID == "" {
		if time.Now().After(deadline) {
			return errors.New("slow job never appeared in /v1/jobs")
		}
		resp, err := http.Get(base + "/v1/jobs")
		if err != nil {
			return err
		}
		var list struct {
			Jobs []struct {
				ID       string `json:"id"`
				Endpoint string `json:"endpoint"`
				State    string `json:"state"`
			} `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			return err
		}
		for _, jv := range list.Jobs {
			if jv.Endpoint == "/v1/simulate" && (jv.State == "queued" || jv.State == "running") {
				jobID = jv.ID
			}
		}
		if jobID == "" {
			time.Sleep(time.Millisecond)
		}
	}

	// Stream its SSE events until "done".
	resp, err := http.Get(base + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	progressed := false
	event := ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var view struct {
				State       string  `json:"state"`
				VirtualTime float64 `json:"virtual_time_s"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &view); err != nil {
				return fmt.Errorf("bad SSE data: %w", err)
			}
			if event == "progress" && view.State == "running" && view.VirtualTime > 0 {
				progressed = true
			}
			if event == "done" {
				if view.State != "done" {
					return fmt.Errorf("terminal state %q", view.State)
				}
				if !progressed {
					return errors.New("no live progress event arrived before completion")
				}
				return <-errc
			}
		}
	}
	return fmt.Errorf("SSE stream ended without a done event (scan err %v)", sc.Err())
}
