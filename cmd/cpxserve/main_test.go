package main

import (
	"testing"

	"cpx/internal/cluster"
	"cpx/internal/serve"
)

// TestRunSmoke runs the same end-to-end pass as `cpxserve -smoke`,
// against the small cluster model to keep the simulation cheap.
func TestRunSmoke(t *testing.T) {
	if err := runSmoke(serve.Options{Machine: cluster.SmallCluster()}); err != nil {
		t.Fatal(err)
	}
}
