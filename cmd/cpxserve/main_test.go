package main

import (
	"net"
	"net/http"
	"path/filepath"
	"testing"

	"cpx/internal/cluster"
	"cpx/internal/serve"
)

// TestRunSmoke runs the same end-to-end pass as `cpxserve -smoke`,
// against the small cluster model to keep the simulation cheap.
func TestRunSmoke(t *testing.T) {
	if err := runSmoke(serve.Options{Machine: cluster.SmallCluster()}); err != nil {
		t.Fatal(err)
	}
}

// TestRunSweepSmoke runs the same pass as `cpxserve -smoke-sweep` —
// two shards fronted by a cache-key router, the same sweep twice,
// stable routing and byte-identical artifacts — with the shards spawned
// in-process instead of as subprocesses (os.Args[0] is the test binary
// here, not cpxserve).
func TestRunSweepSmoke(t *testing.T) {
	spawn := func(dir string) (string, func(), error) {
		s := serve.New(serve.Options{
			Workers:  2,
			CacheDir: filepath.Join(dir, "cache"),
			Machine:  cluster.SmallCluster(),
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			s.Close()
			return "", nil, err
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		stop := func() {
			hs.Close()
			s.Close()
		}
		return "http://" + ln.Addr().String(), stop, nil
	}
	if err := runSweepSmoke(serve.Options{Machine: cluster.SmallCluster()}, spawn); err != nil {
		t.Fatal(err)
	}
}
