// Sweep smoke: an end-to-end self-test of the scale-out path. It
// brings up two worker shards (each with its own disk cache), fronts
// them with an in-process router, runs the same parameter sweep twice,
// and verifies the properties the sharded design promises: every point
// routes to a shard, routing is stable across runs (identical scenarios
// land on the shard whose cache is warm), the second run is served
// entirely from cache, and the artifacts are byte-identical.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"cpx/internal/serve"
)

// shardSpawner brings up one worker shard rooted at dir (scratch space
// for its disk cache and port file) and returns its base URL and a stop
// function. main spawns real subprocesses; tests spawn in-process
// servers.
type shardSpawner func(dir string) (url string, stop func(), err error)

// spawnShardProcess launches this same binary as a worker shard on an
// ephemeral port, discovering the bound address through -port-file.
func spawnShardProcess(dir string) (string, func(), error) {
	portFile := filepath.Join(dir, "port")
	cmd := exec.Command(os.Args[0],
		"-addr", "127.0.0.1:0",
		"-port-file", portFile,
		"-cache-dir", filepath.Join(dir, "cache"),
		"-workers", "2",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	stop := func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			return "http://" + string(b), stop, nil
		}
		if time.Now().After(deadline) {
			stop()
			return "", nil, fmt.Errorf("shard %s never published its port", dir)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sweepSmokeBody is the sweep run by the smoke: a small two-row coupled
// scenario swept over 2 seeds x 2 mesh scales = 4 distinct cache keys.
const sweepSmokeBody = `{
  "template": {
    "densitySteps": 2, "rotationPerStep": 0.002,
    "instances": [
      {"name": "row1", "kind": "mgcfd", "meshCells": 4096, "ranks": 4, "seed": 1},
      {"name": "row2", "kind": "mgcfd", "meshCells": 4096, "ranks": 4, "seed": 2}],
    "units": [
      {"name": "cu", "a": 0, "b": 1, "kind": "sliding", "points": 2000, "ranks": 2, "search": "tree"}]
  },
  "axes": {"seedOffsets": [1, 2], "meshScales": [1, 1.25]}
}`

// sweepResult is one sweep run, indexed by point.
type sweepResult struct {
	points  int
	shards  []string
	outcome []string
	body    [][]byte
}

// postSweep runs one sweep against base and collects the NDJSON stream.
func postSweep(base string) (*sweepResult, error) {
	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(sweepSmokeBody))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := json.Marshal(resp.Header)
		return nil, fmt.Errorf("sweep: status %d (headers %s)", resp.StatusCode, b)
	}
	var res *sweepResult
	done := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Sweep *struct {
				JobID  string `json:"jobId"`
				Points int    `json:"points"`
			} `json:"sweep"`
			Index  *int            `json:"index"`
			Cache  string          `json:"cache"`
			Shard  string          `json:"shard"`
			Result json.RawMessage `json:"result"`
			Error  string          `json:"error"`
			Done   *struct {
				Points int `json:"points"`
				OK     int `json:"ok"`
				Errors int `json:"errors"`
			} `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("bad NDJSON line %q: %w", sc.Text(), err)
		}
		switch {
		case line.Sweep != nil:
			res = &sweepResult{
				points:  line.Sweep.Points,
				shards:  make([]string, line.Sweep.Points),
				outcome: make([]string, line.Sweep.Points),
				body:    make([][]byte, line.Sweep.Points),
			}
		case line.Index != nil:
			if res == nil || *line.Index < 0 || *line.Index >= res.points {
				return nil, fmt.Errorf("point line out of order: %q", sc.Text())
			}
			if line.Error != "" {
				return nil, fmt.Errorf("point %d failed: %s", *line.Index, line.Error)
			}
			res.shards[*line.Index] = line.Shard
			res.outcome[*line.Index] = line.Cache
			res.body[*line.Index] = append([]byte(nil), line.Result...)
		case line.Done != nil:
			if line.Done.Errors != 0 || line.Done.OK != res.points {
				return nil, fmt.Errorf("sweep tally: %d ok, %d errors of %d", line.Done.OK, line.Done.Errors, res.points)
			}
			done = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if res == nil || !done {
		return nil, fmt.Errorf("sweep stream ended without header/trailer")
	}
	return res, nil
}

// runSweepSmoke brings up two shards via spawn, fronts them with a
// router built from opts, and checks routing stability and
// byte-identical artifacts across two identical sweeps.
func runSweepSmoke(opts serve.Options, spawn shardSpawner) error {
	root, err := os.MkdirTemp("", "cpxserve-sweep-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	var shardURLs []string
	for i := 0; i < 2; i++ {
		dir := filepath.Join(root, fmt.Sprintf("shard%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		u, stop, err := spawn(dir)
		if err != nil {
			return fmt.Errorf("spawn shard %d: %w", i, err)
		}
		defer stop()
		shardURLs = append(shardURLs, u)
	}

	opts.Shards = shardURLs
	opts.ShardProbeInterval = 200 * time.Millisecond
	opts.CacheDir = filepath.Join(root, "front-cache")
	s := serve.New(opts)
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	run1, err := postSweep(base)
	if err != nil {
		return fmt.Errorf("first sweep: %w", err)
	}
	if run1.points != 4 {
		return fmt.Errorf("first sweep expanded %d points, want 4", run1.points)
	}
	for i, sh := range run1.shards {
		if sh == "" {
			return fmt.Errorf("point %d ran locally; want shard-routed (both shards healthy)", i)
		}
	}

	run2, err := postSweep(base)
	if err != nil {
		return fmt.Errorf("second sweep: %w", err)
	}
	if run2.points != run1.points {
		return fmt.Errorf("point count changed across runs: %d then %d", run1.points, run2.points)
	}
	for i := range run2.shards {
		if run2.shards[i] != run1.shards[i] {
			return fmt.Errorf("point %d moved shards across runs: %q then %q — routing must be stable",
				i, run1.shards[i], run2.shards[i])
		}
		if oc := run2.outcome[i]; oc != string(serve.OutcomeHit) && oc != string(serve.OutcomeDisk) {
			return fmt.Errorf("point %d re-run outcome %q, want a cache hit", i, oc)
		}
		if !bytes.Equal(run2.body[i], run1.body[i]) {
			return fmt.Errorf("point %d artifact differs across runs", i)
		}
	}

	// An individual /v1/simulate against the front-end must forward to
	// a shard too (same routing path as sweep points).
	var tmpl struct {
		Template json.RawMessage `json:"template"`
	}
	if err := json.Unmarshal([]byte(sweepSmokeBody), &tmpl); err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/simulate", "application/json", bytes.NewReader(tmpl.Template))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("forwarded simulate: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Shard") == "" {
		return fmt.Errorf("individual simulate did not forward to a shard (no X-Shard header)")
	}
	return nil
}
