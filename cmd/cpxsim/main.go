// Command cpxsim runs a coupled mini-app simulation described by a JSON
// configuration file and reports per-component virtual run-times.
//
// Usage:
//
//	cpxsim -config engine.json
//	cpxsim -demo            # run a built-in three-component demo
//	cpxsim -demo -critpath -trace trace.json -commmatrix comm.csv -json summary.json
//	cpxsim -config engine.json -fastcoll   # analytic collectives, same virtual times
//	cpxsim -demo -sched event              # single-threaded discrete-event executor
//	cpxsim -demo -faults 0.05 -ckpt 2      # inject crashes (MTBF 50ms), checkpoint every 2 steps
//	cpxsim -demo -metrics series.csv       # sample virtual-time metrics (.csv → CSV, else JSON)
//
// The export flags enable event tracing: -trace writes a Chrome/Perfetto
// trace-event JSON timeline (open at ui.perfetto.dev), -commmatrix the
// rank×rank communication matrix CSV, -json a machine-readable run
// summary, and -critpath prints which instance or coupling unit sits on
// the virtual-time critical path. -metrics samples per-rank and
// per-component counters (messages, bytes, compute/comm/wait split,
// mailbox depth, collectives) at fixed virtual-time intervals
// (-metrics-interval) without perturbing the run. If an aborted or
// failed run produced partial timelines or series, the export flags
// still write them — and the -json summary of a faulty run carries the
// flight-recorder tail of each failed rank.
//
// -seed offsets every instance's setup seed and seeds the fault plan, so
// two invocations with the same seed replay bitwise-identical runs.
// -faults MTBF injects deterministic rank crashes with the given mean
// time between failures (virtual seconds); the run recovers via
// coordinated checkpoint/restart at the -ckpt interval (density steps)
// and reports the resilience accounting.
//
// Configuration schema (JSON):
//
//	{
//	  "densitySteps": 10,
//	  "rotationPerStep": 0.002,
//	  "instances": [
//	    {"name": "row1", "kind": "mgcfd",  "meshCells": 24000000, "ranks": 64},
//	    {"name": "comb", "kind": "simpic", "meshCells": 28000000, "ranks": 128},
//	    {"name": "spray", "kind": "particle", "meshCells": 28000000, "ranks": 32,
//	     "droplets": 7000000, "strategy": "steal", "coneFraction": 0.25,
//	     "imbalanceThreshold": 1.5}
//	  ],
//	  "units": [
//	    {"name": "cu1", "a": 0, "b": 1, "kind": "steady", "points": 50000,
//	     "ranks": 4, "search": "prefetch", "exchangeEvery": 20}
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cpx/internal/cluster"
	"cpx/internal/coupler"
	"cpx/internal/fault"
	"cpx/internal/mpi"
	"cpx/internal/serve"
	"cpx/internal/telemetry"
	"cpx/internal/trace"
)

// demoConfig is the built-in three-component engine demo.
func demoConfig() *serve.SimSpec {
	return &serve.SimSpec{
		DensitySteps:    4,
		RotationPerStep: 0.002,
		Instances: []serve.InstanceSpec{
			{Name: "compressor", Kind: "mgcfd", MeshCells: 100_000, Ranks: 8, Seed: 1},
			{Name: "combustor", Kind: "simpic", MeshCells: 28_000_000, Ranks: 8, Seed: 2},
			{Name: "turbine", Kind: "mgcfd", MeshCells: 100_000, Ranks: 8, Seed: 3},
		},
		Units: []serve.UnitSpec{
			{Name: "hpc-comb", A: 0, BIdx: 1, Kind: "steady", Points: 50_000, Ranks: 2, Search: "prefetch", ExchangeEvery: 2},
			{Name: "comb-hpt", A: 1, BIdx: 2, Kind: "steady", Points: 50_000, Ranks: 2, Search: "prefetch", ExchangeEvery: 2},
		},
	}
}

func main() {
	path := flag.String("config", "", "JSON simulation description")
	demo := flag.Bool("demo", false, "run a built-in three-component demo")
	tracePath := flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON timeline to FILE")
	commPath := flag.String("commmatrix", "", "write the rank×rank comm matrix CSV to FILE")
	jsonPath := flag.String("json", "", "write a JSON run summary to FILE")
	critPath := flag.Bool("critpath", false, "print the critical-path breakdown per component")
	fastcoll := flag.Bool("fastcoll", false, "use analytic collectives (bitwise-identical virtual time, faster host runs; ignored when tracing)")
	sched := flag.String("sched", "goroutine", "rank executor: goroutine (one goroutine per rank) or event (single-threaded discrete-event loop; bitwise-identical virtual time)")
	seed := flag.Int64("seed", 0, "offset instance setup seeds and seed the fault plan")
	faults := flag.Float64("faults", 0, "inject rank crashes with this MTBF in virtual seconds (0 disables)")
	ckpt := flag.Int("ckpt", 0, "coordinated-checkpoint interval in density steps (0 disables)")
	metricsPath := flag.String("metrics", "", "sample per-rank/per-component virtual-time metrics to FILE (.csv selects CSV, else JSON)")
	metricsInterval := flag.Float64("metrics-interval", 0, "virtual-time sampling period in seconds (0 = default 0.01)")
	flag.Parse()

	var jc serve.SimSpec
	switch {
	case *demo:
		jc = *demoConfig()
	case *path != "":
		raw, err := os.ReadFile(*path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpxsim: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(raw, &jc); err != nil {
			fmt.Fprintf(os.Stderr, "cpxsim: parsing %s: %v\n", *path, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "cpxsim: need -config FILE or -demo")
		os.Exit(2)
	}

	jc.ApplySeed(*seed)
	sim, err := jc.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpxsim: %v\n", err)
		os.Exit(1)
	}
	traced := *tracePath != "" || *commPath != "" || *jsonPath != "" || *critPath
	fmt.Printf("running coupled simulation: %d instances, %d coupling units, %d ranks total\n",
		len(sim.Instances), len(sim.Units), sim.TotalRanks())
	if *sched != "goroutine" && *sched != "event" {
		fmt.Fprintf(os.Stderr, "cpxsim: -sched must be goroutine or event, got %q\n", *sched)
		os.Exit(2)
	}
	cfg := mpi.Config{Machine: cluster.ARCHER2(), Trace: traced, FastCollectives: *fastcoll,
		EventDriven: *sched == "event"}
	if *metricsPath != "" {
		cfg.Metrics = &telemetry.Config{Interval: *metricsInterval}
	}

	var rep *coupler.Report
	var res *coupler.ResilienceReport
	if *faults > 0 {
		plan, perr := fault.NewPlan(fault.Spec{
			Seed:    *seed,
			Ranks:   sim.TotalRanks(),
			Horizon: *faults * 64, // up to ~64 failures; later crashes never fire
			MTBF:    *faults,
			Machine: cfg.Machine,
		})
		if perr != nil {
			fmt.Fprintf(os.Stderr, "cpxsim: %v\n", perr)
			os.Exit(1)
		}
		res, err = sim.RunResilient(cfg, coupler.ResilienceOptions{
			Plan:            plan,
			CheckpointEvery: *ckpt,
			MaxRestarts:     128,
		})
		if res != nil {
			rep = res.Report
		}
	} else if *ckpt > 0 {
		res, err = sim.RunResilient(cfg, coupler.ResilienceOptions{CheckpointEvery: *ckpt})
		if res != nil {
			rep = res.Report
		}
	} else {
		rep, err = sim.Run(cfg)
	}
	if err != nil {
		// A failed run may still carry partial timelines, metric series
		// and flight-recorder tails worth exporting (e.g. to inspect how
		// far a faulty run got before dying, and what each failed rank
		// was doing when it died).
		if rep != nil && rep.Stats != nil {
			exportArtifacts(rep, *tracePath, *commPath, *jsonPath, *metricsPath)
		}
		fmt.Fprintf(os.Stderr, "cpxsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nsimulated run-time: %.3f s for %d density steps\n", rep.Elapsed, rep.DensitySteps)
	if res != nil && res.Attempts > 1 {
		fmt.Printf("survived %d crash(es) in %d attempts: overhead %.3f s (rework %.3f, detection %.3f, restart %.3f)\n",
			len(res.Failures), res.Attempts, res.Overhead, res.Rework, res.Detection, res.Restart)
	}
	fmt.Println()
	fmt.Printf("%-24s %10s %12s\n", "component", "time(s)", "compute(s)")
	for i, is := range sim.Instances {
		fmt.Printf("%-24s %10.3f %12.3f\n", is.Name, rep.InstanceTime[i], rep.InstanceComp[i])
	}
	for u, us := range sim.Units {
		fmt.Printf("%-24s %10.3f %12.3f\n", us.Name+" (CU)", rep.UnitTime[u], rep.UnitComp[u])
	}
	fmt.Printf("\ncoupling share of run-time: %.2f%%\n", 100*rep.CouplingShare)

	if *critPath && rep.Critical != nil {
		fmt.Printf("\n%s\ncritical path by component:\n", rep.Critical)
		for _, ls := range rep.CriticalComponents {
			fmt.Printf("%-24s %10.3f s %6.1f%%\n", ls.Label, ls.Seconds, 100*ls.Share)
		}
	}
	exportArtifacts(rep, *tracePath, *commPath, *jsonPath, *metricsPath)
}

// exportArtifacts writes whichever trace products were requested. It is
// also called for failed runs carrying partial stats, so the exporters
// must tolerate missing timelines, comm matrices or metric series.
func exportArtifacts(rep *coupler.Report, tracePath, commPath, jsonPath, metricsPath string) {
	writeFile := func(path string, fn func(f *os.File) error) {
		f, err := os.Create(path)
		if err == nil {
			err = fn(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpxsim: writing %s: %v\n", path, err)
			os.Exit(1)
		}
	}
	if tracePath != "" {
		writeFile(tracePath, func(f *os.File) error { return trace.WriteChromeTrace(f, rep.Stats.Timelines) })
	}
	if commPath != "" {
		writeFile(commPath, func(f *os.File) error { return rep.Stats.CommMatrix.WriteCSV(f) })
	}
	if jsonPath != "" {
		sum := rep.Stats.Summary()
		if sum.CriticalPath != nil {
			sum.CriticalPath.Components = rep.CriticalComponents
		}
		writeFile(jsonPath, func(f *os.File) error { return sum.WriteJSON(f) })
	}
	if metricsPath != "" {
		if rep.Metrics == nil {
			fmt.Fprintln(os.Stderr, "cpxsim: no metric series sampled (run died before the first boundary?)")
			return
		}
		if strings.HasSuffix(metricsPath, ".csv") {
			writeFile(metricsPath, func(f *os.File) error { return rep.Metrics.WriteCSV(f) })
		} else {
			writeFile(metricsPath, func(f *os.File) error { return rep.Metrics.WriteJSON(f) })
		}
	}
}
