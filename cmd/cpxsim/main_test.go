package main

import (
	"encoding/json"
	"testing"

	"cpx/internal/coupler"
	"cpx/internal/serve"
)

func TestJSONConfigBuild(t *testing.T) {
	raw := `{
	  "densitySteps": 5,
	  "rotationPerStep": 0.01,
	  "instances": [
	    {"name": "row", "kind": "mgcfd", "meshCells": 1000, "ranks": 2},
	    {"name": "comb", "kind": "simpic", "meshCells": 2000, "ranks": 3}
	  ],
	  "units": [
	    {"name": "cu", "a": 0, "b": 1, "kind": "steady", "points": 50,
	     "ranks": 1, "search": "tree", "exchangeEvery": 2}
	  ]
	}`
	var jc serve.SimSpec
	if err := json.Unmarshal([]byte(raw), &jc); err != nil {
		t.Fatal(err)
	}
	sim, err := jc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sim.TotalRanks() != 6 {
		t.Errorf("total ranks = %d, want 6", sim.TotalRanks())
	}
	if sim.Instances[1].Kind != coupler.KindSIMPIC {
		t.Error("simpic kind not parsed")
	}
	if sim.Units[0].Kind != coupler.SteadyState || sim.Units[0].Search != coupler.Tree {
		t.Errorf("unit parsed wrong: %+v", sim.Units[0])
	}
	if sim.Units[0].B != 1 {
		t.Errorf("unit B = %d, want 1", sim.Units[0].B)
	}
	if err := sim.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONConfigRejectsUnknownKinds(t *testing.T) {
	jc := serve.SimSpec{
		DensitySteps: 1,
		Instances:    []serve.InstanceSpec{{Name: "x", Kind: "fortran", MeshCells: 10, Ranks: 1}},
	}
	if _, err := jc.Build(); err == nil {
		t.Error("unknown instance kind accepted")
	}
	jc2 := serve.SimSpec{
		DensitySteps: 1,
		Instances: []serve.InstanceSpec{
			{Name: "a", Kind: "mgcfd", MeshCells: 10, Ranks: 1},
			{Name: "b", Kind: "mgcfd", MeshCells: 10, Ranks: 1},
		},
		Units: []serve.UnitSpec{{Name: "u", A: 0, BIdx: 1, Kind: "sliding", Points: 5, Ranks: 1, Search: "quantum"}},
	}
	if _, err := jc2.Build(); err == nil {
		t.Error("unknown search accepted")
	}
}

func TestApplySeedOffsetsInstanceSeeds(t *testing.T) {
	jc := demoConfig()
	base := make([]int64, len(jc.Instances))
	for i, ji := range jc.Instances {
		base[i] = ji.Seed
	}
	jc.ApplySeed(41)
	for i, ji := range jc.Instances {
		if ji.Seed != base[i]+41 {
			t.Errorf("instance %d seed = %d, want %d", i, ji.Seed, base[i]+41)
		}
	}
	jc2 := demoConfig()
	jc2.ApplySeed(0)
	for i, ji := range jc2.Instances {
		if ji.Seed != base[i] {
			t.Errorf("zero offset changed instance %d seed to %d", i, ji.Seed)
		}
	}
}

func TestDemoConfigValid(t *testing.T) {
	sim, err := demoConfig().Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Validate(); err != nil {
		t.Fatal(err)
	}
}
