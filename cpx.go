// Package cpx is a Go reproduction of the CPX mini-app coupling study:
// "Predictive Analysis of Code Optimisations on Large-Scale Coupled
// CFD-Combustion Simulations using the CPX Mini-App" (Powell & Mudalige).
//
// It provides, as a single library:
//
//   - The coupled mini-app simulation: MG-CFD (density-solver proxy) and
//     SIMPIC (pressure-solver performance proxy) instances connected by
//     CPX coupling units with sliding-plane and steady-state interfaces
//     (Simulation, Instance, CouplingUnit).
//   - The virtual-time execution substrate: an in-process MPI-like
//     runtime over a parameterised machine model, so "runs" of up to the
//     paper's 40,000 ranks execute on one host with faithful
//     communication patterns (Machine, ARCHER2).
//   - The empirical performance model of Section V: parallel-efficiency
//     curve fitting and the greedy rank-allocation Algorithm 1
//     (FitCurve, Allocate).
//   - The experiment harness regenerating every table and figure of the
//     paper's evaluation (Experiments, cmd/cpxbench).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record. The examples/ directory holds runnable
// walkthroughs of this API.
package cpx

import (
	"cpx/internal/cluster"
	"cpx/internal/coupler"
	"cpx/internal/fault"
	"cpx/internal/fem"
	"cpx/internal/harness"
	"cpx/internal/mgcfd"
	"cpx/internal/mpi"
	"cpx/internal/perfmodel"
	"cpx/internal/pressure"
	"cpx/internal/simpic"
	"cpx/internal/trace"
)

// ---- Machine models ----------------------------------------------------------

// Machine describes the modelled HPC system (nodes, rates, network).
type Machine = cluster.Machine

// Work describes machine-independent computation (flops, bytes streamed).
type Work = cluster.Work

// ARCHER2 returns the model of the HPE-Cray EX system used in the paper.
func ARCHER2() *Machine { return cluster.ARCHER2() }

// SmallCluster returns a modest commodity-cluster model for examples and
// tests.
func SmallCluster() *Machine { return cluster.SmallCluster() }

// Cirrus32 returns a 32-cores/node system model, the class the production
// pressure solver was originally profiled on (Section II-B).
func Cirrus32() *Machine { return cluster.Cirrus32() }

// ---- Coupled simulations -------------------------------------------------------

// Simulation is a coupled mini-app configuration: solver instances wired
// together by coupling units, run on the virtual-time substrate.
type Simulation = coupler.Simulation

// Instance is one solver instance of a coupled simulation.
type Instance = coupler.InstanceSpec

// CouplingUnit is one CPX coupling unit connecting two instances.
type CouplingUnit = coupler.UnitSpec

// Report summarises a coupled run (per-instance and per-unit times).
type Report = coupler.Report

// CoupledScale bounds the in-memory working sets of a coupled run.
type CoupledScale = coupler.Scale

// Solver kinds for Instance.Kind.
const (
	MGCFD      = coupler.KindMGCFD  // density-solver proxy (compressor/turbine rows)
	SIMPIC     = coupler.KindSIMPIC // pressure-solver performance proxy (combustor)
	FEMThermal = coupler.KindFEM    // casing thermal FEM (structural coupling)
)

// Interface kinds for CouplingUnit.Kind.
const (
	SlidingPlane = coupler.SlidingPlane // rotor/stator: remap every exchange
	SteadyState  = coupler.SteadyState  // density-pressure: map once
)

// SearchKind selects a coupling unit's donor-search strategy.
type SearchKind = coupler.Search

// Donor-search strategies for CouplingUnit.Search.
const (
	BruteForceSearch = coupler.BruteForce
	TreeSearch       = coupler.Tree
	PrefetchSearch   = coupler.TreePrefetch
)

// ProductionScale returns the working-set capping used for large runs.
func ProductionScale() CoupledScale { return coupler.ProductionScale() }

// RunConfig controls a virtual-time run (machine model, profiling,
// host-time watchdog).
type RunConfig = mpi.Config

// ---- Fault injection and resilience --------------------------------------------

// FaultPlan is a deterministic schedule of rank crashes, straggler nodes
// and degraded links, expressed in virtual time (DESIGN.md §7).
type FaultPlan = fault.Plan

// FaultSpec parameterises a randomly drawn (but seeded, reproducible)
// fault plan: ranks, horizon, MTBF.
type FaultSpec = fault.Spec

// NewFaultPlan draws a deterministic fault plan from a spec; the same
// spec always yields the same plan.
func NewFaultPlan(spec FaultSpec) (*FaultPlan, error) { return fault.NewPlan(spec) }

// ResilienceOptions configures coordinated checkpoint/restart for a
// coupled run: the fault plan, the checkpoint interval in density steps,
// and the per-restart relaunch cost.
type ResilienceOptions = coupler.ResilienceOptions

// ResilienceReport extends Report with the resilience accounting:
// attempts, overhead split into rework/detection/restart, and the
// crashes survived.
type ResilienceReport = coupler.ResilienceReport

// YoungInterval returns Young's first-order optimal checkpoint interval
// sqrt(2 * checkpointCost * MTBF) in virtual seconds.
func YoungInterval(checkpointCost, mtbf float64) float64 {
	return fault.YoungInterval(checkpointCost, mtbf)
}

// ---- Mini-app configurations ---------------------------------------------------

// SimpicConfig configures a SIMPIC instance.
type SimpicConfig = simpic.Config

// MGCFDConfig configures an MG-CFD instance.
type MGCFDConfig = mgcfd.Config

// PressureConfig configures the pressure-solver proxy.
type PressureConfig = pressure.Config

// FEMConfig configures the casing thermal FEM solver.
type FEMConfig = fem.Config

// Pressure-solver variants.
const (
	PressureBase      = pressure.Base
	PressureOptimized = pressure.Optimized
)

// BaseSTC returns the SIMPIC configuration matched to a production
// pressure-solver mesh size (Fig. 3).
func BaseSTC(meshCells int64) SimpicConfig { return simpic.BaseSTC(meshCells) }

// OptimizedSTC returns the SIMPIC configuration matched to the optimised
// pressure solver of Section IV-C.
func OptimizedSTC() SimpicConfig { return simpic.OptimizedSTC() }

// ---- Performance model ---------------------------------------------------------

// Sample is one standalone benchmark point for curve fitting.
type Sample = perfmodel.Sample

// Curve is a fitted run-time/parallel-efficiency model.
type Curve = perfmodel.Curve

// Component is one entry of the rank-allocation problem.
type Component = perfmodel.Component

// Allocation is the result of the greedy distribution (Algorithm 1).
type Allocation = perfmodel.Allocation

// AmdahlCurve is the alternative serial + work/p + comm*log(p) model.
type AmdahlCurve = perfmodel.AmdahlCurve

// FitCurve fits a parallel-efficiency curve to benchmark samples.
func FitCurve(samples []Sample) (*Curve, error) { return perfmodel.FitCurve(samples) }

// FitAmdahl fits the three-term Amdahl-style model to benchmark samples.
func FitAmdahl(samples []Sample) (*AmdahlCurve, error) { return perfmodel.FitAmdahl(samples) }

// Allocate distributes a core budget across components with Algorithm 1.
func Allocate(components []Component, budget int) (*Allocation, error) {
	return perfmodel.Allocate(components, budget)
}

// PredictSpeedup compares two allocations as T(base)/T(other).
func PredictSpeedup(base, other *Allocation) float64 {
	return perfmodel.PredictSpeedup(base, other)
}

// ---- Standalone mini-app runs --------------------------------------------------

// RunStats summarises a standalone virtual-time run.
type RunStats struct {
	// Elapsed is the simulated run-time (max rank clock), with sampled
	// steps scaled to the full configuration.
	Elapsed float64
	// Profile is the merged per-function profile (nil unless profiling
	// was enabled in the RunConfig).
	Profile *trace.Profile
}

// RunSimpic executes the SIMPIC mini-app standalone on `cores` virtual
// ranks. Working sets are capped per rank while costs are charged at the
// configured size, so paper-scale configurations run on one host.
func RunSimpic(cfg SimpicConfig, cores int, rc RunConfig) (*RunStats, error) {
	sc := simpic.Production()
	var setup float64
	st, err := mpi.Run(cores, rc, func(c *mpi.Comm) error {
		r, err := simpic.Run(c, cfg, sc)
		if err == nil && c.Rank() == 0 {
			setup = r.SetupTime
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	stepping := st.Elapsed - setup
	if stepping < 0 {
		stepping = 0
	}
	return &RunStats{
		Elapsed: setup + stepping*simpic.SampledFraction(cfg, sc),
		Profile: st.MergedProfile(),
	}, nil
}

// RunMGCFD executes the MG-CFD mini-app standalone on `cores` virtual ranks.
func RunMGCFD(cfg MGCFDConfig, cores int, rc RunConfig) (*RunStats, error) {
	sc := mgcfd.Production()
	var setup float64
	st, err := mpi.Run(cores, rc, func(c *mpi.Comm) error {
		r, err := mgcfd.Run(c, cfg, sc)
		if err == nil && c.Rank() == 0 {
			setup = r.SetupTime
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	stepping := st.Elapsed - setup
	if stepping < 0 {
		stepping = 0
	}
	return &RunStats{
		Elapsed: setup + stepping*mgcfd.SampledFraction(cfg, sc),
		Profile: st.MergedProfile(),
	}, nil
}

// RunPressure executes the pressure-solver proxy standalone on `cores`
// virtual ranks. Enable rc.Profile for the Fig. 5-style per-function
// breakdown.
func RunPressure(cfg PressureConfig, cores int, rc RunConfig) (*RunStats, error) {
	sc := pressure.Production()
	var setup float64
	st, err := mpi.Run(cores, rc, func(c *mpi.Comm) error {
		r, err := pressure.Run(c, cfg, sc)
		if err == nil && c.Rank() == 0 {
			setup = r.SetupTime
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	stepping := st.Elapsed - setup
	if stepping < 0 {
		stepping = 0
	}
	return &RunStats{
		Elapsed: setup + stepping*pressure.SampledFraction(cfg, sc),
		Profile: st.MergedProfile(),
	}, nil
}

// ---- Experiment harness --------------------------------------------------------

// Experiments configures the paper-reproduction harness; its methods
// (Fig3, Fig4ab, Fig4c, Fig5a, Fig5b, Fig6a, Fig6bc, Fig8, Fig9,
// Sensitivity) regenerate the paper's tables and figures.
type Experiments = harness.Options

// ExperimentTable is one reproduced figure or table.
type ExperimentTable = harness.Table

// DefaultExperiments runs the full paper sweeps on the ARCHER2 model.
func DefaultExperiments() Experiments { return harness.DefaultOptions() }
