package cpx_test

import (
	"math"
	"testing"
	"time"

	"cpx"
)

func TestPublicMachineModels(t *testing.T) {
	a := cpx.ARCHER2()
	if a.CoresPerNode != 128 {
		t.Errorf("ARCHER2 cores/node = %d", a.CoresPerNode)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cpx.SmallCluster().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSTCConfigs(t *testing.T) {
	base := cpx.BaseSTC(28_000_000)
	if base.ParticlesPerCell != 100 || base.Cells != 512_000 {
		t.Errorf("BaseSTC(28M) = %+v", base)
	}
	opt := cpx.OptimizedSTC()
	if opt.ParticlesPerCell != 60_000 {
		t.Errorf("OptimizedSTC = %+v", opt)
	}
}

func TestPublicModelWorkflow(t *testing.T) {
	curve, err := cpx.FitCurve([]cpx.Sample{
		{Cores: 100, Runtime: 50},
		{Cores: 200, Runtime: 26},
		{Cores: 400, Runtime: 15},
		{Cores: 800, Runtime: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pe := curve.PE(100); math.Abs(pe-1) > 1e-9 {
		t.Errorf("PE at base = %v", pe)
	}
	alloc, err := cpx.Allocate([]cpx.Component{
		{Name: "app", Curve: curve},
		{Name: "cu", Curve: curve, IsCU: true},
	}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Predicted <= 0 {
		t.Errorf("allocation prediction %v", alloc.Predicted)
	}
	if sp := cpx.PredictSpeedup(alloc, alloc); sp != 1 {
		t.Errorf("self-speedup = %v", sp)
	}
}

func TestPublicCoupledRun(t *testing.T) {
	stc := cpx.SimpicConfig{Cells: 512, ParticlesPerCell: 5, Steps: 4, Seed: 1}
	sim := &cpx.Simulation{
		Instances: []cpx.Instance{
			{Name: "hpc", Kind: cpx.MGCFD, MeshCells: 4_096, Ranks: 3, Seed: 1},
			{Name: "comb", Kind: cpx.SIMPIC, MeshCells: 28_000_000, Ranks: 3, Simpic: &stc, Seed: 2},
		},
		Units: []cpx.CouplingUnit{
			{Name: "cu", A: 0, B: 1, Kind: cpx.SteadyState, Points: 2_000,
				Ranks: 1, Search: cpx.PrefetchSearch, ExchangeEvery: 2},
		},
		DensitySteps:    2,
		RotationPerStep: 0.001,
		Scale:           cpx.ProductionScale(),
	}
	rep, err := sim.Run(cpx.RunConfig{Machine: cpx.SmallCluster(), Watchdog: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed <= 0 || len(rep.InstanceTime) != 2 || len(rep.UnitTime) != 1 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestPublicExperiments(t *testing.T) {
	o := cpx.DefaultExperiments()
	o.Quick = true
	tb, err := o.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "fig3" {
		t.Errorf("table id = %q", tb.ID)
	}
}

func TestPublicStandaloneRuns(t *testing.T) {
	rc := cpx.RunConfig{Machine: cpx.SmallCluster(), Watchdog: 2 * time.Minute}
	sp, err := cpx.RunSimpic(cpx.SimpicConfig{Cells: 512, ParticlesPerCell: 5, Steps: 20, Seed: 1}, 4, rc)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Elapsed <= 0 {
		t.Error("simpic elapsed not positive")
	}
	mg, err := cpx.RunMGCFD(cpx.MGCFDConfig{MeshCells: 1000, Steps: 2, Seed: 1}, 2, rc)
	if err != nil {
		t.Fatal(err)
	}
	if mg.Elapsed <= 0 {
		t.Error("mgcfd elapsed not positive")
	}
	rc.Profile = true
	pr, err := cpx.RunPressure(cpx.PressureConfig{MeshCells: 4096, Steps: 1, Seed: 1}, 2, rc)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Profile == nil || pr.Profile.Entry("pressure_field").Total() <= 0 {
		t.Error("pressure profile missing")
	}
}
