package cpx_test

import (
	"fmt"

	"cpx"
)

// Fitting a parallel-efficiency curve to standalone benchmark samples and
// reading off the modelled run-time — the first half of the paper's
// resource-allocation workflow.
func ExampleFitCurve() {
	curve, err := cpx.FitCurve([]cpx.Sample{
		{Cores: 128, Runtime: 100},
		{Cores: 256, Runtime: 52},
		{Cores: 512, Runtime: 28},
		{Cores: 1024, Runtime: 16},
		{Cores: 2048, Runtime: 11},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("PE at 1024 cores: %.0f%%\n", 100*curve.PE(1024))
	fmt.Printf("speedup at 2048 cores: %.1fx\n", curve.Speedup(2048))
	// Output:
	// PE at 1024 cores: 77%
	// speedup at 2048 cores: 9.1x
}

// Distributing a core budget across coupled components with the greedy
// Algorithm 1: the slowest instance or coupling unit receives one core at
// a time, whichever gains more.
func ExampleAllocate() {
	flat := &cpx.Curve{BaseCores: 1, BaseTime: 1, P50: 1e6, K: 1}
	heavy := &cpx.Curve{BaseCores: 1, BaseTime: 9, P50: 1e6, K: 1}
	alloc, err := cpx.Allocate([]cpx.Component{
		{Name: "compressor row", Curve: flat},
		{Name: "combustor", Curve: heavy},
		{Name: "coupling unit", Curve: flat, IsCU: true},
	}, 1000)
	if err != nil {
		panic(err)
	}
	// The combustor is 9x heavier, so it receives ~9x the ranks.
	fmt.Println(alloc.Cores[1] > 8*alloc.Cores[0])
	// Output:
	// true
}
