// Compressor: couple three MG-CFD rotor/stator rows with sliding-plane
// coupling units and compare the CPX donor-search strategies — the
// brute-force vs tree vs tree+prefetch progression that took the
// production coupler's overhead below 0.5% of run-time [31].
package main

import (
	"fmt"
	"log"

	"cpx"
)

func main() {
	fmt.Println("three coupled MG-CFD rows, sliding-plane interfaces remapped every step")
	fmt.Printf("\n%-20s %14s %14s %16s\n", "search", "runtime(s)", "CU busy(s)", "coupling share")

	for _, tc := range []struct {
		name   string
		search cpx.SearchKind
	}{
		{"brute-force", cpx.BruteForceSearch},
		{"kd-tree", cpx.TreeSearch},
		{"kd-tree + prefetch", cpx.PrefetchSearch},
	} {
		sim := &cpx.Simulation{
			Instances: []cpx.Instance{
				{Name: "rotor-1", Kind: cpx.MGCFD, MeshCells: 50_000, Ranks: 6, Seed: 1},
				{Name: "stator-1", Kind: cpx.MGCFD, MeshCells: 50_000, Ranks: 6, Seed: 2},
				{Name: "rotor-2", Kind: cpx.MGCFD, MeshCells: 50_000, Ranks: 6, Seed: 3},
			},
			Units: []cpx.CouplingUnit{
				// Interface points reflect a production-sized sliding plane
				// even though the row meshes are example-sized: the search
				// cost is charged at the true interface size.
				{Name: "cu-12", A: 0, B: 1, Kind: cpx.SlidingPlane, Points: 200_000, Ranks: 2, Search: tc.search},
				{Name: "cu-23", A: 1, B: 2, Kind: cpx.SlidingPlane, Points: 200_000, Ranks: 2, Search: tc.search},
			},
			DensitySteps:    6,
			RotationPerStep: 0.003,
			Scale:           cpx.ProductionScale(),
		}
		rep, err := sim.Run(cpx.RunConfig{Machine: cpx.ARCHER2()})
		if err != nil {
			log.Fatalf("%s: %v", tc.name, err)
		}
		busy := rep.UnitComp[0]
		if rep.UnitComp[1] > busy {
			busy = rep.UnitComp[1]
		}
		fmt.Printf("%-20s %14.4f %14.4f %15.2f%%\n", tc.name, rep.Elapsed, busy, 100*rep.CouplingShare)
	}
	fmt.Println("\nThe tree search removes the O(targets x donors) remap cost of the")
	fmt.Println("moving interface; prefetching donor candidates from the previous")
	fmt.Println("step removes most remaining tree traversals.")
}
