// Fullengine: a scaled-down HPC-Combustor-HPT engine simulation — the
// complete compressor rows + SIMPIC combustor + turbine rows chain of
// Fig. 1, wired with sliding-plane and steady-state coupling units and
// executed end to end on the virtual machine.
package main

import (
	"fmt"
	"log"

	"cpx"
)

func main() {
	// 1/1000-scale meshes keep the example fast; the structure (16
	// instances, 15 coupling units, 2 combustor steps per density step,
	// steady exchanges every 20 steps) is the paper's.
	combustor := cpx.BaseSTC(380_000) // pressure-solver equivalent size
	combustor.Cells = 8192            // grid sized for the example rank count
	combustor.ParticlesPerCell = 20
	combustor.Steps = 40

	sim := &cpx.Simulation{DensitySteps: 10, RotationPerStep: 0.002, Scale: cpx.ProductionScale()}
	addRow := func(name string, cells int64, ranks int) {
		sim.Instances = append(sim.Instances, cpx.Instance{
			Name: name, Kind: cpx.MGCFD, MeshCells: cells, Ranks: ranks,
			Seed: int64(len(sim.Instances) + 1),
		})
	}
	addRow("row01 (8k)", 8_000, 2)
	for i := 2; i <= 12; i++ {
		addRow(fmt.Sprintf("row%02d (24k)", i), 24_000, 2)
	}
	addRow("row13 (150k)", 150_000, 4)
	sim.Instances = append(sim.Instances, cpx.Instance{
		Name: "combustor", Kind: cpx.SIMPIC, MeshCells: 380_000, Ranks: 8,
		Simpic: &combustor, Seed: 99,
	})
	addRow("row15 (150k)", 150_000, 4)
	addRow("row16 (300k)", 300_000, 4)

	for i := 0; i+1 < len(sim.Instances); i++ {
		kind, every, pts := cpx.SlidingPlane, 1, 500
		if sim.Instances[i].Kind == cpx.SIMPIC || sim.Instances[i+1].Kind == cpx.SIMPIC {
			kind, every, pts = cpx.SteadyState, 5, 4000
		}
		sim.Units = append(sim.Units, cpx.CouplingUnit{
			Name: fmt.Sprintf("cu-%02d", i+1), A: i, B: i + 1, Kind: kind,
			Points: pts, Ranks: 1, Search: cpx.PrefetchSearch, ExchangeEvery: every,
		})
	}

	fmt.Printf("full engine: %d instances + %d coupling units on %d ranks\n\n",
		len(sim.Instances), len(sim.Units), sim.TotalRanks())
	rep, err := sim.Run(cpx.RunConfig{Machine: cpx.ARCHER2()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-16s %12s %12s\n", "instance", "time(s)", "compute(s)")
	slowest, slowestIdx := 0.0, 0
	for i, inst := range sim.Instances {
		if rep.InstanceTime[i] > slowest {
			slowest, slowestIdx = rep.InstanceTime[i], i
		}
		fmt.Printf("%-16s %12.4f %12.4f\n", inst.Name, rep.InstanceTime[i], rep.InstanceComp[i])
	}
	fmt.Printf("\nsimulated run-time %.4f s for %d density steps\n", rep.Elapsed, rep.DensitySteps)
	fmt.Printf("bottleneck instance: %s (the cascading exchange dependency\n", sim.Instances[slowestIdx].Name)
	fmt.Println("makes the whole simulation progress at the slowest component's pace)")
	fmt.Printf("coupling share of run-time: %.2f%%\n", 100*rep.CouplingShare)
}
