// Modelstudy: the design-space exploration the paper builds the whole
// apparatus for — "rapid design space and run-time setup exploration
// studies... to obtain the best performance from full-scale
// Combustion-CFD coupled simulations". Sweeps the core budget and the
// pressure-solver variant entirely within the empirical model (no
// simulation runs), answering: how many cores are worth requesting, and
// what is the optimised solver worth at each machine size?
package main

import (
	"fmt"
	"log"

	"cpx"
)

func main() {
	// Fitted curves standing in for benchmark campaigns (the harness fits
	// these from real virtual-time runs; here they are the workflow demo).
	mgcfd24 := &cpx.Curve{BaseCores: 100, BaseTime: 120, P50: 5200, K: 1.2}
	mgcfd150 := &cpx.Curve{BaseCores: 100, BaseTime: 700, P50: 8000, K: 1.2}
	combBase := &cpx.Curve{BaseCores: 100, BaseTime: 9500, P50: 2600, K: 1.3}
	combOpt := &cpx.Curve{BaseCores: 100, BaseTime: 4300, P50: 9500, K: 1.3}
	cu := &cpx.Curve{BaseCores: 1, BaseTime: 0.9, P50: 220, K: 1.1}

	build := func(comb *cpx.Curve) []cpx.Component {
		comps := []cpx.Component{}
		for i := 0; i < 12; i++ {
			comps = append(comps, cpx.Component{
				Name: fmt.Sprintf("row%02d", i+1), Curve: mgcfd24, MinRanks: 100,
			})
		}
		comps = append(comps,
			cpx.Component{Name: "row13 (150M)", Curve: mgcfd150, MinRanks: 100},
			cpx.Component{Name: "combustor", Curve: comb, MinRanks: 100},
			cpx.Component{Name: "row15 (150M)", Curve: mgcfd150, MinRanks: 100},
			cpx.Component{Name: "coupling units", Curve: cu, IsCU: true, IterRatio: 1000},
		)
		return comps
	}

	fmt.Printf("%10s %16s %16s %10s %12s\n",
		"budget", "base rt(s)", "optimized rt(s)", "speedup", "idle cores")
	for _, budget := range []int{5_000, 10_000, 20_000, 40_000, 80_000} {
		base, err := cpx.Allocate(build(combBase), budget)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := cpx.Allocate(build(combOpt), budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %16.0f %16.0f %9.1fx %12d\n",
			budget, base.Predicted, opt.Predicted,
			cpx.PredictSpeedup(base, opt), base.Unallocated+opt.Unallocated)
	}
	fmt.Println("\nPast the base combustor's PE knee, extra cores buy nothing for the")
	fmt.Println("unoptimised code (idle cores grow); the optimised solver keeps")
	fmt.Println("absorbing them, which is where its headline speedup comes from.")
}
