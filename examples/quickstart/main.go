// Quickstart: run the SIMPIC pressure-solver proxy standalone on the
// virtual ARCHER2 at a few core counts and print its strong-scaling
// behaviour — the paper's Fig. 4 in miniature, using only the public API.
package main

import (
	"fmt"
	"log"

	"cpx"
)

func main() {
	machine := cpx.ARCHER2()
	fmt.Printf("machine: %s\n\n", machine.Name)

	// A small SIMPIC case: 64k grid cells, 50 particles per cell.
	cfg := cpx.SimpicConfig{Cells: 65_536, ParticlesPerCell: 50, Steps: 200, Seed: 1}

	fmt.Printf("%8s %12s %10s %8s\n", "cores", "runtime(s)", "speedup", "PE")
	var base float64
	for _, cores := range []int{16, 32, 64, 128, 256} {
		stats, err := cpx.RunSimpic(cfg, cores, cpx.RunConfig{Machine: machine})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = stats.Elapsed
		}
		speedup := base / stats.Elapsed
		pe := speedup / (float64(cores) / 16)
		fmt.Printf("%8d %12.4f %10.2f %7.0f%%\n", cores, stats.Elapsed, speedup, 100*pe)
	}
	fmt.Println("\nEvery run executed the real PIC algorithm (deposit, parallel")
	fmt.Println("tridiagonal field solve, leapfrog push, migration) as goroutine")
	fmt.Println("ranks with virtual-time communication on the machine model.")
}
