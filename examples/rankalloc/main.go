// Rankalloc: fit parallel-efficiency curves to standalone benchmark
// samples and distribute a core budget across coupled components with the
// paper's Algorithm 1 — the workflow a practitioner follows before
// submitting a production coupled job.
package main

import (
	"fmt"
	"log"

	"cpx"
)

func main() {
	// Standalone benchmark samples, as a user would measure them
	// (cores, runtime-in-seconds). The combustor scales worst.
	bench := map[string][]cpx.Sample{
		"compressor rows (24M)": {
			{Cores: 128, Runtime: 120}, {Cores: 256, Runtime: 62},
			{Cores: 512, Runtime: 33}, {Cores: 1024, Runtime: 18},
			{Cores: 2048, Runtime: 11},
		},
		"combustor (380M)": {
			{Cores: 128, Runtime: 2600}, {Cores: 512, Runtime: 700},
			{Cores: 2048, Runtime: 230}, {Cores: 8192, Runtime: 90},
			{Cores: 16384, Runtime: 70},
		},
		"turbine row (300M)": {
			{Cores: 128, Runtime: 900}, {Cores: 512, Runtime: 240},
			{Cores: 2048, Runtime: 70}, {Cores: 8192, Runtime: 25},
		},
		"coupling unit": {
			{Cores: 1, Runtime: 1.2}, {Cores: 4, Runtime: 0.35},
			{Cores: 16, Runtime: 0.11}, {Cores: 64, Runtime: 0.05},
		},
	}

	var comps []cpx.Component
	for _, name := range []string{"compressor rows (24M)", "combustor (380M)", "turbine row (300M)", "coupling unit"} {
		curve, err := cpx.FitCurve(bench[name])
		if err != nil {
			log.Fatalf("fitting %s: %v", name, err)
		}
		fmt.Printf("fitted %-24s PE knee at ~%.0f cores (k=%.2f)\n", name, curve.P50, curve.K)
		comps = append(comps, cpx.Component{
			Name:     name,
			Curve:    curve,
			IsCU:     name == "coupling unit",
			MinRanks: 64,
		})
	}

	for _, budget := range []int{5_000, 20_000, 40_000} {
		alloc, err := cpx.Allocate(comps, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- budget %d cores ---\n%s", budget, alloc.String())
	}
	fmt.Println("\nThe combustor absorbs most of the budget until its PE knee;")
	fmt.Println("beyond that Algorithm 1 idles the remainder rather than slow")
	fmt.Println("the simulation down (run-time = slowest app + slowest CU).")
}
