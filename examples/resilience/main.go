// Resilience: run a coupled MG-CFD pair under an injected failure
// process and sweep the coordinated-checkpoint interval. Because faults
// and checkpoints both live in virtual time, the run recovers to a
// bitwise-identical physics state and the sweep reproduces the classic
// Young/Daly trade-off: checkpoint too often and the I/O dominates, too
// rarely and each crash replays most of the run.
package main

import (
	"fmt"
	"log"

	"cpx"
)

func main() {
	sim := &cpx.Simulation{
		Instances: []cpx.Instance{
			{Name: "rotor", Kind: cpx.MGCFD, MeshCells: 20_000, Ranks: 4, Seed: 1},
			{Name: "stator", Kind: cpx.MGCFD, MeshCells: 20_000, Ranks: 4, Seed: 2},
		},
		Units: []cpx.CouplingUnit{
			{Name: "cu", A: 0, B: 1, Kind: cpx.SlidingPlane, Points: 50_000,
				Ranks: 2, Search: cpx.PrefetchSearch},
		},
		DensitySteps:    24,
		RotationPerStep: 0.002,
		Scale:           cpx.ProductionScale(),
	}
	cfg := cpx.RunConfig{Machine: cpx.ARCHER2()}

	// Fault-free baseline: what the run costs when nothing goes wrong.
	base, err := sim.RunResilient(cfg, cpx.ResilienceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free baseline: %.4f s for %d density steps\n\n", base.Elapsed, sim.DensitySteps)

	// A deterministic failure process: same seed, same crashes, every run.
	mtbf := base.Elapsed / 3
	plan, err := cpx.NewFaultPlan(cpx.FaultSpec{
		Seed:     7,
		Ranks:    sim.TotalRanks(),
		Horizon:  base.Elapsed,
		MTBF:     mtbf,
		Periodic: true,
		Machine:  cfg.Machine,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injecting %d crash(es), MTBF %.4f s\n\n", len(plan.Crashes), mtbf)
	fmt.Printf("%-14s %12s %12s %10s\n", "ckpt every", "runtime(s)", "overhead(s)", "restarts")

	for _, every := range []int{0, 1, 2, 4, 8, 12} {
		rep, err := sim.RunResilient(cfg, cpx.ResilienceOptions{
			Plan:            plan,
			CheckpointEvery: every,
			RestartCost:     mtbf / 4,
			MaxRestarts:     2 * len(plan.Crashes),
		})
		if err != nil {
			log.Fatalf("interval %d: %v", every, err)
		}
		label := fmt.Sprintf("%d steps", every)
		if every == 0 {
			label = "never"
		}
		fmt.Printf("%-14s %12.4f %12.4f %10d\n", label, rep.Elapsed, rep.Elapsed-base.Elapsed, rep.Attempts-1)
	}

	fmt.Println("\nEvery setting finishes with bitwise-identical solver state — the")
	fmt.Println("fault model only moves virtual time. The minimum sits near Young's")
	fmt.Println("first-order optimum tau* = sqrt(2 * C * MTBF).")
}
