// Thermal: the paper's stated extension — coupled CFD, combustion AND
// structural simulation. A compressor row and a SIMPIC combustor feed
// heat into the engine casing, modelled by the finite-element thermal
// solver, through steady-state coupling units.
package main

import (
	"fmt"
	"log"

	"cpx"
)

func main() {
	combustor := cpx.SimpicConfig{Cells: 2048, ParticlesPerCell: 20, Steps: 40, Seed: 2}
	casing := cpx.FEMConfig{NAxial: 24, NCirc: 48, Steps: 1, Conductivity: 2}

	sim := &cpx.Simulation{
		Instances: []cpx.Instance{
			{Name: "compressor", Kind: cpx.MGCFD, MeshCells: 50_000, Ranks: 6, Seed: 1},
			{Name: "combustor", Kind: cpx.SIMPIC, MeshCells: 28_000_000, Ranks: 6, Simpic: &combustor, Seed: 2},
			{Name: "casing", Kind: cpx.FEMThermal, MeshCells: int64(casing.NAxial * casing.NCirc), FEM: &casing, Seed: 3},
		},
		Units: []cpx.CouplingUnit{
			// Flow path: compressor -> combustor.
			{Name: "hpc-comb", A: 0, B: 1, Kind: cpx.SteadyState, Points: 20_000,
				Ranks: 1, Search: cpx.PrefetchSearch, ExchangeEvery: 4},
			// Thermal path: hot combustor gas heats the casing.
			{Name: "comb-casing", A: 1, B: 2, Kind: cpx.SteadyState, Points: 5_000,
				Ranks: 1, Search: cpx.PrefetchSearch, ExchangeEvery: 4},
		},
		DensitySteps:    12,
		RotationPerStep: 0.002,
		Scale:           cpx.ProductionScale(),
	}
	// Give the casing a couple of ranks.
	sim.Instances[2].Ranks = 2

	fmt.Printf("coupled CFD + combustion + structural run: %d ranks\n\n", sim.TotalRanks())
	rep, err := sim.Run(cpx.RunConfig{Machine: cpx.ARCHER2()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %12s %12s\n", "instance", "time(s)", "compute(s)")
	for i, inst := range sim.Instances {
		fmt.Printf("%-14s %12.4f %12.4f\n", inst.Name, rep.InstanceTime[i], rep.InstanceComp[i])
	}
	fmt.Printf("\nsimulated run-time %.4f s over %d density steps\n", rep.Elapsed, rep.DensitySteps)
	fmt.Printf("coupling share: %.2f%%\n", 100*rep.CouplingShare)
	fmt.Println("\nThe casing FEM assembles real bilinear-quad stiffness matrices and")
	fmt.Println("advances backward-Euler conduction with AMG-preconditioned CG each")
	fmt.Println("exchange period, absorbing convective heat loads from the combustor.")
}
