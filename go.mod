module cpx

go 1.24
