package amg

import (
	"math"
	"math/rand"
	"testing"

	"cpx/internal/sparse"
)

func randomRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

func residualNorm(a *sparse.CSR, b, x []float64) float64 {
	r := make([]float64, a.Rows)
	a.MulVec(x, r)
	s := 0.0
	for i := range r {
		d := b[i] - r[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestStrengthPoisson(t *testing.T) {
	a := sparse.Poisson2D(5, 5)
	s := Strength(a, 0.25)
	// Interior point 12 has 4 equal strong neighbours.
	if len(s[12]) != 4 {
		t.Errorf("interior strong set size %d, want 4", len(s[12]))
	}
	// Corner has 2.
	if len(s[0]) != 2 {
		t.Errorf("corner strong set size %d, want 2", len(s[0]))
	}
}

func TestStrengthThresholdFilters(t *testing.T) {
	// Anisotropic: strong in x (-10), weak in y (-0.1).
	a := sparse.FromCOO(3, 3,
		[]int{0, 0, 0, 1, 1, 2, 2},
		[]int{0, 1, 2, 0, 1, 0, 2},
		[]float64{20.2, -10, -0.1, -10, 20.2, -0.1, 20.2})
	s := Strength(a, 0.25)
	if len(s[0]) != 1 || s[0][0] != 1 {
		t.Errorf("weak connection not filtered: %v", s[0])
	}
}

func TestAggregateCoversAllPoints(t *testing.T) {
	a := sparse.Poisson2D(8, 8)
	s := Strength(a, 0.25)
	agg, n := Aggregate(a, s)
	if n <= 0 || n >= a.Rows {
		t.Fatalf("aggregate count %d out of (0,%d)", n, a.Rows)
	}
	seen := make([]bool, n)
	for i, g := range agg {
		if g < 0 || g >= n {
			t.Fatalf("point %d has invalid aggregate %d", i, g)
		}
		seen[g] = true
	}
	for g, ok := range seen {
		if !ok {
			t.Errorf("aggregate %d empty", g)
		}
	}
}

func TestPMISProducesValidSplitting(t *testing.T) {
	a := sparse.Poisson2D(10, 10)
	s := Strength(a, 0.25)
	cf := PMIS(a, s, 1)
	nc := 0
	for _, v := range cf {
		if v == CPoint {
			nc++
		}
	}
	if nc == 0 || nc >= a.Rows {
		t.Fatalf("PMIS selected %d of %d C-points", nc, a.Rows)
	}
	// Independence: no two adjacent (strongly) C points.
	for i, si := range s {
		if cf[i] != CPoint {
			continue
		}
		for _, j := range si {
			if cf[j] == CPoint {
				// PMIS allows this only across non-symmetric strength;
				// for the symmetric Poisson graph it must not happen.
				t.Fatalf("adjacent C-points %d,%d", i, j)
			}
		}
	}
}

func TestPMISDeterministicPerSeed(t *testing.T) {
	a := sparse.Poisson2D(7, 7)
	s := Strength(a, 0.25)
	c1 := PMIS(a, s, 5)
	c2 := PMIS(a, s, 5)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("PMIS not deterministic for fixed seed")
		}
	}
}

func TestEnsureInterpolable(t *testing.T) {
	a := sparse.Poisson1D(6)
	s := Strength(a, 0.25)
	// Force a hopeless splitting: all F.
	cf := make([]CF, 6)
	promoted := EnsureInterpolable(s, cf)
	if promoted == 0 {
		t.Fatal("nothing promoted from an all-F splitting")
	}
	// Now every remaining F-point must have a strong C neighbour.
	for i, v := range cf {
		if v == CPoint || len(s[i]) == 0 {
			continue
		}
		ok := false
		for _, j := range s[i] {
			if cf[j] == CPoint {
				ok = true
			}
		}
		if !ok {
			t.Errorf("F-point %d still uninterpolable", i)
		}
	}
}

func TestTentativeProlongationPartition(t *testing.T) {
	p := TentativeProlongation([]int{0, 0, 1, 1, 2}, 3)
	if p.Rows != 5 || p.Cols != 3 || p.NNZ() != 5 {
		t.Fatalf("tentative shape wrong: %dx%d nnz %d", p.Rows, p.Cols, p.NNZ())
	}
	// Column sums = aggregate sizes.
	colSum := make([]float64, 3)
	for i := 0; i < p.Rows; i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			colSum[p.ColIdx[k]] += p.Val[k]
		}
	}
	if colSum[0] != 2 || colSum[1] != 2 || colSum[2] != 1 {
		t.Errorf("column sums %v", colSum)
	}
}

func TestInterpolationRowSumsToOne(t *testing.T) {
	// For constant-preserving interpolation, each F-row of P sums to 1 on
	// a Laplacian with zero row sums (interior rows).
	a := sparse.Poisson1D(32)
	s := Strength(a, 0.25)
	cf := PMIS(a, s, 2)
	EnsureInterpolable(s, cf)
	for _, p := range []*sparse.CSR{
		DirectInterpolation(a, s, cf),
		ExtendedIInterpolation(a, s, cf),
	} {
		for i := 1; i < p.Rows-1; i++ { // interior rows only
			sum := 0.0
			for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
				sum += p.Val[k]
			}
			if p.RowPtr[i+1] > p.RowPtr[i] && math.Abs(sum-1) > 0.5 {
				t.Errorf("row %d interpolation sum %v far from 1", i, sum)
			}
		}
	}
}

func TestSetupBuildsMultipleLevels(t *testing.T) {
	a := sparse.Poisson2D(32, 32)
	h, err := Setup(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() < 3 {
		t.Errorf("only %d levels for 1024 unknowns", h.NumLevels())
	}
	// Coarsest within threshold.
	last := h.Levels[len(h.Levels)-1].A
	if last.Rows > DefaultOptions().CoarsestSize*4 {
		t.Errorf("coarsest level still has %d rows", last.Rows)
	}
	if oc := h.OperatorComplexity(); oc < 1 || oc > 3 {
		t.Errorf("operator complexity %v out of sane range", oc)
	}
	if h.SetupWork.Flops <= 0 || h.SetupWork.Bytes <= 0 {
		t.Error("setup work not accounted")
	}
}

func TestSetupRejectsBadCombos(t *testing.T) {
	o := DefaultOptions()
	o.Interp = ExtendedI // with Aggregation: invalid
	if _, err := Setup(sparse.Poisson1D(16), o); err == nil {
		t.Error("ExtendedI+Aggregation accepted")
	}
	o2 := OptimizedOptions()
	o2.Interp = Tentative // with PMIS: invalid
	if _, err := Setup(sparse.Poisson1D(16), o2); err == nil {
		t.Error("Tentative+PMIS accepted")
	}
}

// solveConfigs enumerates the option combinations that must all converge.
func solveConfigs() map[string]Options {
	base := DefaultOptions()
	smoothedAgg := DefaultOptions()
	smoothedAgg.Interp = Smoothed
	direct := DefaultOptions()
	direct.Coarsening = PMISSplit
	direct.Interp = Direct
	extI := DefaultOptions()
	extI.Coarsening = PMISSplit
	extI.Interp = ExtendedI
	gs := DefaultOptions()
	gs.Smoother = GaussSeidel
	hybrid := DefaultOptions()
	hybrid.Smoother = HybridGS
	kcyc := DefaultOptions()
	kcyc.Interp = Smoothed
	kcyc.Cycle = KCycle
	wcyc := DefaultOptions()
	wcyc.Cycle = WCycle
	opt := OptimizedOptions()
	return map[string]Options{
		"base-aggregation": base,
		"smoothed-agg":     smoothedAgg,
		"pmis-direct":      direct,
		"pmis-extended+i":  extI,
		"gauss-seidel":     gs,
		"hybrid-gs":        hybrid,
		"k-cycle":          kcyc,
		"w-cycle":          wcyc,
		"fully-optimized":  opt,
	}
}

func TestWCycleBeatsOrMatchesVCycle(t *testing.T) {
	a := sparse.Poisson2D(24, 24)
	b := randomRHS(a.Rows, 13)
	iters := func(c Cycle) int {
		o := DefaultOptions()
		o.Cycle = c
		h, err := Setup(a, o)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Rows)
		res := h.PCG(b, x, 1e-8, 300)
		if !res.Converged {
			t.Fatalf("cycle %v did not converge", c)
		}
		return res.Iterations
	}
	if w, v := iters(WCycle), iters(VCycle); w > v {
		t.Errorf("W-cycle (%d iters) worse than V-cycle (%d)", w, v)
	}
}

func TestPCGConvergesAllConfigs(t *testing.T) {
	a := sparse.Poisson2D(24, 24)
	b := randomRHS(a.Rows, 3)
	for name, opts := range solveConfigs() {
		h, err := Setup(a, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := make([]float64, a.Rows)
		res := h.PCG(b, x, 1e-8, 200)
		if !res.Converged {
			t.Errorf("%s: PCG did not converge: %+v", name, res)
			continue
		}
		if rn := residualNorm(a, b, x); rn > 1e-5 {
			t.Errorf("%s: residual %v too large", name, rn)
		}
		if res.Iterations > 100 {
			t.Errorf("%s: %d iterations is not multigrid-like", name, res.Iterations)
		}
	}
}

func TestStationarySolveConverges(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	b := randomRHS(a.Rows, 4)
	o := DefaultOptions()
	o.Interp = Smoothed
	h, err := Setup(a, o)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	res := h.Solve(b, x, 1e-8, 100)
	if !res.Converged {
		t.Fatalf("stationary AMG did not converge: %+v", res)
	}
}

func TestSmoothedBeatsTentative(t *testing.T) {
	a := sparse.Poisson2D(32, 32)
	b := randomRHS(a.Rows, 5)
	iters := func(o Options) int {
		h, err := Setup(a, o)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Rows)
		return h.PCG(b, x, 1e-8, 300).Iterations
	}
	plain := DefaultOptions()
	sm := DefaultOptions()
	sm.Interp = Smoothed
	if it1, it2 := iters(sm), iters(plain); it1 > it2 {
		t.Errorf("smoothed aggregation (%d iters) worse than tentative (%d)", it1, it2)
	}
}

func TestExtendedIBeatsOrMatchesDirect(t *testing.T) {
	a := sparse.Poisson3D(8, 8, 8)
	b := randomRHS(a.Rows, 6)
	iters := func(interp Interp) int {
		o := DefaultOptions()
		o.Coarsening = PMISSplit
		o.Interp = interp
		h, err := Setup(a, o)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Rows)
		res := h.PCG(b, x, 1e-8, 300)
		if !res.Converged {
			t.Fatalf("interp %v did not converge", interp)
		}
		return res.Iterations
	}
	de := iters(Direct)
	ei := iters(ExtendedI)
	if ei > de+2 {
		t.Errorf("extended+i (%d iters) clearly worse than direct (%d)", ei, de)
	}
}

func TestIdentityOptDoesNotChangeResults(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	b := randomRHS(a.Rows, 7)
	run := func(idOpt bool) []float64 {
		o := DefaultOptions()
		o.Coarsening = PMISSplit
		o.Interp = Direct
		o.IdentityOpt = idOpt
		h, err := Setup(a, o)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Rows)
		h.PCG(b, x, 1e-10, 200)
		return x
	}
	x1, x2 := run(false), run(true)
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-8 {
			t.Fatalf("identity-split changed the solution at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func TestSpGEMMKindDoesNotChangeHierarchy(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	o1 := DefaultOptions()
	o1.SpGEMM = SpGEMMTwoPass
	o2 := DefaultOptions()
	o2.SpGEMM = SpGEMMSPA
	h1, err1 := Setup(a, o1)
	h2, err2 := Setup(a, o2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if h1.NumLevels() != h2.NumLevels() {
		t.Fatalf("level counts differ: %d vs %d", h1.NumLevels(), h2.NumLevels())
	}
	for l := range h1.Levels {
		if !h1.Levels[l].A.EqualWithin(h2.Levels[l].A, 1e-12) {
			t.Fatalf("level %d operators differ between SpGEMM kernels", l)
		}
	}
	// SPA charges fewer streamed bytes in setup (one pass, not two).
	if !(h2.SetupWork.Bytes < h1.SetupWork.Bytes) {
		t.Error("SPA setup should charge fewer bytes than two-pass")
	}
}

func TestCycleWorkPositiveAndOrdered(t *testing.T) {
	a := sparse.Poisson2D(24, 24)
	hBase, _ := Setup(a, DefaultOptions())
	kOpts := DefaultOptions()
	kOpts.Cycle = KCycle
	hK, _ := Setup(a, kOpts)
	wV := hBase.CycleWork()
	wK := hK.CycleWork()
	if wV.Flops <= 0 {
		t.Fatal("V-cycle work not positive")
	}
	if !(wK.Flops > wV.Flops) {
		t.Error("K-cycle should cost more flops per cycle than V-cycle")
	}
}

func TestDenseLUFactorSolve(t *testing.T) {
	a := sparse.Poisson1D(10)
	f := factorDense(a)
	b := randomRHS(10, 8)
	x := make([]float64, 10)
	f.solve(b, x)
	if rn := residualNorm(a, b, x); rn > 1e-10 {
		t.Errorf("dense LU residual %v", rn)
	}
}

func TestHybridGSBlocksConsistency(t *testing.T) {
	// HybridGS with 1 block is exactly Gauss-Seidel.
	a := sparse.Poisson1D(20)
	lvl := &Level{A: a, diag: a.Diag()}
	b := randomRHS(20, 9)
	x1 := make([]float64, 20)
	x2 := make([]float64, 20)
	hybridGSSweeps(lvl, b, x1, 2, 1, true)
	for s := 0; s < 2; s++ {
		gsSweepRange(lvl, b, x2, 0, 20, x2, true)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-14 {
			t.Fatalf("hybrid GS(1 block) != GS at %d", i)
		}
	}
}

func TestSolveSingularDirectionSafe(t *testing.T) {
	// A matrix with an empty row/column (isolated point) must not crash
	// setup or smoothing (diag zero guarded).
	a := sparse.FromCOO(3, 3, []int{0, 0, 1, 1}, []int{0, 1, 0, 1}, []float64{2, -1, -1, 2})
	// Point 2 fully isolated (no entries).
	h, err := Setup(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 3)
	h.Solve([]float64{1, 1, 0}, x, 1e-10, 50)
	if math.IsNaN(x[0]) || math.IsNaN(x[2]) {
		t.Error("NaN from isolated point")
	}
}

func TestChebyshevSmootherConverges(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	b := randomRHS(a.Rows, 14)
	o := DefaultOptions()
	o.Smoother = Chebyshev
	h, err := Setup(a, o)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	res := h.PCG(b, x, 1e-8, 200)
	if !res.Converged {
		t.Fatalf("Chebyshev-smoothed PCG did not converge: %+v", res)
	}
	if rn := residualNorm(a, b, x); rn > 1e-5 {
		t.Errorf("residual %v too large", rn)
	}
}

func TestEstimateLambdaMax(t *testing.T) {
	// D^-1 A for the 1-D Poisson matrix has spectrum in (0, 2).
	a := sparse.Poisson1D(64)
	l := &Level{A: a, diag: a.Diag()}
	lam := estimateLambdaMax(l)
	if lam < 1.5 || lam > 2.05 {
		t.Errorf("lambda max estimate %v outside (1.5, 2.05)", lam)
	}
}
