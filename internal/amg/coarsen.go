// Package amg implements the algebraic-multigrid stack that Section IV of
// the paper analyses and optimises: strength-of-connection graphs,
// aggregation and PMIS coarsening, direct and extended+i (distance-two)
// interpolation, Jacobi / Gauss-Seidel / hybrid Gauss-Seidel smoothers,
// V-cycles and Krylov-accelerated K-cycles, the Galerkin triple product
// built on the sparse SpGEMM kernels, and AMG-preconditioned conjugate
// gradients — both serial and distributed over the mpi runtime.
package amg

import (
	"fmt"
	"math/rand"

	"cpx/internal/sparse"
)

// Strength computes the strength-of-connection pattern: S[i] lists the
// columns j != i with -a_ij >= theta * max_k(-a_ik), the classical
// negative-coupling test appropriate for the M-matrices that pressure-
// correction discretisations produce.
func Strength(a *sparse.CSR, theta float64) [][]int {
	s := make([][]int, a.Rows)
	for i := 0; i < a.Rows; i++ {
		maxNeg := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] != i && -a.Val[k] > maxNeg {
				maxNeg = -a.Val[k]
			}
		}
		if maxNeg == 0 {
			continue
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j != i && -a.Val[k] >= theta*maxNeg {
				s[i] = append(s[i], j)
			}
		}
	}
	return s
}

// Aggregate performs greedy aggregation coarsening (the "aggregate AMG"
// of the production pressure solver): a first pass forms aggregates
// around seed points whose strong neighbourhood is untouched, a second
// pass attaches leftovers to an adjacent aggregate, and a final pass
// makes singleton aggregates from isolated points. Returns the aggregate
// id per fine point and the number of aggregates.
func Aggregate(a *sparse.CSR, strength [][]int) (agg []int, numAgg int) {
	n := a.Rows
	agg = make([]int, n)
	for i := range agg {
		agg[i] = -1
	}
	// Pass 1: seed aggregates.
	for i := 0; i < n; i++ {
		if agg[i] != -1 {
			continue
		}
		free := true
		for _, j := range strength[i] {
			if agg[j] != -1 {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		agg[i] = numAgg
		for _, j := range strength[i] {
			agg[j] = numAgg
		}
		numAgg++
	}
	// Pass 2: attach stragglers to a neighbouring aggregate.
	for i := 0; i < n; i++ {
		if agg[i] != -1 {
			continue
		}
		for _, j := range strength[i] {
			if agg[j] != -1 {
				agg[i] = agg[j]
				break
			}
		}
	}
	// Pass 3: isolated points become singleton aggregates.
	for i := 0; i < n; i++ {
		if agg[i] == -1 {
			agg[i] = numAgg
			numAgg++
		}
	}
	return agg, numAgg
}

// CF marks a point Coarse or Fine in a classical C/F splitting.
type CF int8

// C/F splitting states.
const (
	FPoint CF = iota
	CPoint
)

// PMIS computes a parallel-maximal-independent-set C/F splitting with
// deterministic seeded tie-breaking weights, the splitting used with
// distance-two interpolation in large-scale AMG [52]. Points with no
// strong connections become F-points interpolating nothing (handled by
// interpolation as injection-free rows).
func PMIS(a *sparse.CSR, strength [][]int, seed int64) []CF {
	return PMISRand(a, strength, rand.New(rand.NewSource(seed)))
}

// PMISRand is PMIS drawing its tie-breaking weights from an explicit
// generator, for callers that thread one seeded stream through setup.
func PMISRand(a *sparse.CSR, strength [][]int, rng *rand.Rand) []CF {
	n := a.Rows
	// Influence count |S^T_i| plus random tie-break.
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = rng.Float64()
	}
	for i := 0; i < n; i++ {
		for _, j := range strength[i] {
			w[j]++ // j influences i
		}
	}
	const (
		undecided = 0
		isC       = 1
		isF       = 2
	)
	state := make([]int8, n)
	// Points with no strong couplings: F immediately (smoother handles them).
	remaining := 0
	for i := 0; i < n; i++ {
		if len(strength[i]) == 0 {
			// No dependencies: nothing to interpolate from; mark F.
			state[i] = isF
		} else {
			remaining++
		}
	}
	// neighbours in the symmetrised strength graph
	sym := make([][]int, n)
	for i := 0; i < n; i++ {
		sym[i] = append(sym[i], strength[i]...)
	}
	for i := 0; i < n; i++ {
		for _, j := range strength[i] {
			sym[j] = append(sym[j], i)
		}
	}
	for remaining > 0 {
		progressed := false
		// Select local maxima among undecided.
		newC := []int{}
		for i := 0; i < n; i++ {
			if state[i] != undecided {
				continue
			}
			maxLocal := true
			for _, j := range sym[i] {
				if state[j] == undecided && (w[j] > w[i] || (w[j] == w[i] && j < i)) {
					maxLocal = false
					break
				}
			}
			if maxLocal {
				newC = append(newC, i)
			}
		}
		for _, i := range newC {
			state[i] = isC
			remaining--
			progressed = true
		}
		// Undecided points strongly depending on a new C-point become F.
		for _, c := range newC {
			for _, j := range sym[c] {
				if state[j] == undecided {
					state[j] = isF
					remaining--
				}
			}
		}
		if !progressed && remaining > 0 {
			// Defensive: cannot happen with strict tie-break, but never loop.
			for i := 0; i < n; i++ {
				if state[i] == undecided {
					state[i] = isC
					remaining--
				}
			}
		}
	}
	out := make([]CF, n)
	for i, s := range state {
		if s == isC {
			out[i] = CPoint
		} else {
			out[i] = FPoint
		}
	}
	return out
}

// EnsureInterpolable promotes F-points with no strong C-neighbour to
// C-points, which direct (distance-one) interpolation requires. Returns
// the number promoted.
func EnsureInterpolable(strength [][]int, cf []CF) int {
	promoted := 0
	for i, s := range cf {
		if s == CPoint {
			continue
		}
		if len(strength[i]) == 0 {
			continue // truly isolated; interpolation injects zero
		}
		hasC := false
		for _, j := range strength[i] {
			if cf[j] == CPoint {
				hasC = true
				break
			}
		}
		if !hasC {
			cf[i] = CPoint
			promoted++
		}
	}
	return promoted
}

// CoarseIndex numbers the C-points 0..nc-1; F-points map to -1.
func CoarseIndex(cf []CF) (index []int, nc int) {
	index = make([]int, len(cf))
	for i, s := range cf {
		if s == CPoint {
			index[i] = nc
			nc++
		} else {
			index[i] = -1
		}
	}
	return index, nc
}

func validateSquare(a *sparse.CSR, where string) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("amg: %s requires a square matrix, got %dx%d", where, a.Rows, a.Cols))
	}
}
