package amg

import (
	"math/rand"
	"testing"

	"cpx/internal/sparse"
)

// TestExtendedIInterpolationRunToRunIdentical guards the sorted-key fix
// in the extended+i row build: the PMax rescaling sums accumulate in
// row-build order, so iterating the distance-two coupling map in map
// order would make P drift between runs. Two independent builds must be
// bitwise identical.
func TestExtendedIInterpolationRunToRunIdentical(t *testing.T) {
	build := func() *sparse.CSR {
		// 2D stencil rows couple to >PMax distance-two neighbours, so the
		// truncation/rescaling path (the order-sensitive one) exercises.
		a := sparse.Poisson2D(12, 12)
		s := Strength(a, 0.25)
		cf := PMIS(a, s, 3)
		EnsureInterpolable(s, cf)
		return ExtendedIInterpolation(a, s, cf)
	}
	p1, p2 := build(), build()
	if !p1.EqualWithin(p2, 0) {
		t.Fatal("ExtendedIInterpolation differs between two identical builds")
	}
}

// TestPMISRandMatchesSeededWrapper: threading an explicit generator must
// reproduce the seeded wrapper exactly, so callers can migrate to
// PMISRand without moving any golden results.
func TestPMISRandMatchesSeededWrapper(t *testing.T) {
	a := sparse.Poisson2D(9, 9)
	s := Strength(a, 0.25)
	want := PMIS(a, s, 7)
	got := PMISRand(a, s, rand.New(rand.NewSource(7)))
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitting differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}
