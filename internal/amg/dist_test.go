package amg

import (
	"fmt"
	"math"
	"testing"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
	"cpx/internal/sparse"
)

func TestDistSolverMatchesSerialSolution(t *testing.T) {
	a := sparse.Poisson2D(12, 12)
	n := a.Rows
	b := randomRHS(n, 11)
	// Serial reference.
	h, err := Setup(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, n)
	if res := h.PCG(b, ref, 1e-10, 500); !res.Converged {
		t.Fatalf("serial reference did not converge: %+v", res)
	}

	for _, p := range []int{1, 2, 4, 7} {
		solution := make([]float64, n)
		_, err := mpi.Run(p, mpi.Config{Machine: cluster.SmallCluster(), Watchdog: 60 * time.Second},
			func(c *mpi.Comm) error {
				d := sparse.NewDistFromGlobal(c, a, 50)
				s, err := NewDistSolver(d, DefaultOptions())
				if err != nil {
					return err
				}
				x := make([]float64, d.OwnedRows())
				res := s.Solve(b[d.RowLo:d.RowHi], x, 1e-10, 500)
				if !res.Converged {
					return fmt.Errorf("p=%d rank %d: not converged: %+v", p, c.Rank(), res)
				}
				// Collect at rank 0 via gather for comparison.
				all := c.Gather(0, x)
				if c.Rank() == 0 {
					i := 0
					for _, part := range all {
						copy(solution[i:], part)
						i += len(part)
					}
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if math.Abs(solution[i]-ref[i]) > 1e-6 {
				t.Fatalf("p=%d: solution differs at %d: %v vs %v", p, i, solution[i], ref[i])
			}
		}
	}
}

func TestDistSolverIterationsGrowWithRanks(t *testing.T) {
	// Block-Jacobi preconditioning weakens as blocks shrink: iteration
	// counts must not decrease with rank count. This is the physical root
	// of the pressure-field parallel-efficiency decay in Fig. 5b.
	a := sparse.Poisson2D(16, 16)
	b := randomRHS(a.Rows, 12)
	iters := func(p int) int {
		var out int
		_, err := mpi.Run(p, mpi.Config{Machine: cluster.SmallCluster(), Watchdog: 60 * time.Second},
			func(c *mpi.Comm) error {
				d := sparse.NewDistFromGlobal(c, a, 50)
				s, err := NewDistSolver(d, DefaultOptions())
				if err != nil {
					return err
				}
				x := make([]float64, d.OwnedRows())
				res := s.Solve(b[d.RowLo:d.RowHi], x, 1e-8, 500)
				if c.Rank() == 0 {
					out = res.Iterations
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	i1, i8 := iters(1), iters(8)
	if i8 < i1 {
		t.Errorf("iterations decreased with ranks: %d @1 vs %d @8", i1, i8)
	}
}

func TestDistSolverChargesSetupWork(t *testing.T) {
	a := sparse.Poisson2D(10, 10)
	st, err := mpi.Run(2, mpi.Config{Machine: cluster.SmallCluster(), Watchdog: 30 * time.Second},
		func(c *mpi.Comm) error {
			d := sparse.NewDistFromGlobal(c, a, 50)
			_, err := NewDistSolver(d, DefaultOptions())
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.AvgCompute() <= 0 {
		t.Error("AMG setup charged no compute time")
	}
}
