package amg

import (
	"fmt"
	"math"

	"cpx/internal/cluster"
	"cpx/internal/sparse"
)

// Coarsening selects the coarsening algorithm.
type Coarsening int

// Coarsening algorithms.
const (
	Aggregation Coarsening = iota // greedy aggregation (production default)
	PMISSplit                     // parallel maximal independent set C/F
)

// Interp selects the interpolation operator.
type Interp int

// Interpolation operators. Tentative/Smoothed pair with Aggregation;
// Direct/ExtendedI pair with PMISSplit.
const (
	Tentative Interp = iota
	Smoothed
	Direct
	ExtendedI
)

// Smoother selects the relaxation scheme.
type Smoother int

// Smoothers.
const (
	Jacobi Smoother = iota
	GaussSeidel
	HybridGS  // Gauss-Seidel within a block, Jacobi across blocks [51]
	Chebyshev // polynomial smoother, the other ultraparallel option of [51]
)

// Cycle selects the multigrid cycle type.
type Cycle int

// Cycle types.
const (
	VCycle Cycle = iota
	KCycle       // Krylov-accelerated cycle; better convergence, worse scaling [50]
	WCycle       // two plain coarse-grid visits per level; V/K middle ground
)

// SpGEMMKind selects the kernel used for the Galerkin product at setup.
type SpGEMMKind int

// SpGEMM kernels (Section IV-B).
const (
	SpGEMMTwoPass SpGEMMKind = iota // baseline: inputs read twice
	SpGEMMSPA                       // optimised single-pass sparse accumulator
)

// Options configures an AMG hierarchy.
type Options struct {
	Theta         float64 // strength threshold; default 0.25
	Coarsening    Coarsening
	Interp        Interp
	Smoother      Smoother
	Cycle         Cycle
	PreSweeps     int     // default 1
	PostSweeps    int     // default 1
	JacobiWeight  float64 // default 2/3
	MaxLevels     int     // default 10
	CoarsestSize  int     // direct-solve threshold; default 64
	HybridBlocks  int     // blocks for HybridGS; default 4
	SpGEMM        SpGEMMKind
	IdentityOpt   bool  // use identity-split SpMV for P and R
	Seed          int64 // PMIS tie-break seed
	SmoothedOmega float64
}

// DefaultOptions mirror the Base pressure solver: aggregation coarsening,
// tentative interpolation, Jacobi smoothing, V-cycles, two-pass SpGEMM.
func DefaultOptions() Options {
	return Options{
		Theta:         0.25,
		Coarsening:    Aggregation,
		Interp:        Tentative,
		Smoother:      Jacobi,
		Cycle:         VCycle,
		PreSweeps:     1,
		PostSweeps:    1,
		JacobiWeight:  2.0 / 3.0,
		MaxLevels:     10,
		CoarsestSize:  64,
		HybridBlocks:  4,
		SpGEMM:        SpGEMMTwoPass,
		SmoothedOmega: 2.0 / 3.0,
	}
}

// OptimizedOptions apply the full Section IV recipe: hybrid Gauss-Seidel
// smoothing, extended+i interpolation on a PMIS splitting, single-pass
// SPA SpGEMM and identity-block interpolation SpMV.
func OptimizedOptions() Options {
	o := DefaultOptions()
	o.Coarsening = PMISSplit
	o.Interp = ExtendedI
	o.Smoother = HybridGS
	o.SpGEMM = SpGEMMSPA
	o.IdentityOpt = true
	return o
}

func (o *Options) fillDefaults() {
	if o.Theta == 0 {
		o.Theta = 0.25
	}
	if o.PreSweeps == 0 {
		o.PreSweeps = 1
	}
	if o.PostSweeps == 0 {
		o.PostSweeps = 1
	}
	if o.JacobiWeight == 0 {
		o.JacobiWeight = 2.0 / 3.0
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 10
	}
	if o.CoarsestSize == 0 {
		o.CoarsestSize = 64
	}
	if o.HybridBlocks == 0 {
		o.HybridBlocks = 4
	}
	if o.SmoothedOmega == 0 {
		o.SmoothedOmega = 2.0 / 3.0
	}
}

func (o Options) validate() error {
	switch o.Interp {
	case Tentative, Smoothed:
		if o.Coarsening != Aggregation {
			return fmt.Errorf("amg: interpolation %v requires Aggregation coarsening", o.Interp)
		}
	case Direct, ExtendedI:
		if o.Coarsening != PMISSplit {
			return fmt.Errorf("amg: interpolation %v requires PMIS coarsening", o.Interp)
		}
	}
	return nil
}

// Level is one rung of the hierarchy.
type Level struct {
	A      *sparse.CSR
	P      *sparse.CSR // prolongation: fine x coarse (nil on coarsest)
	R      *sparse.CSR // restriction: P^T
	PSplit *sparse.IdentitySplit
	RSplit *sparse.IdentitySplit
	diag   []float64
	// lambdaMax caches the D^-1 A spectral bound for the Chebyshev
	// smoother (estimated lazily).
	lambdaMax float64
}

// Hierarchy is a configured AMG preconditioner/solver.
type Hierarchy struct {
	Levels []*Level
	Opts   Options

	// SetupWork is the roofline work the setup phase would cost at full
	// scale (dominated by the Galerkin SpGEMMs; depends on the kernel
	// choice). CycleWorkEst is the per-cycle solve work.
	SetupWork    cluster.Work
	coarseFactor *denseLU
}

// Setup builds the hierarchy for a square SPD-like operator.
func Setup(a *sparse.CSR, opts Options) (*Hierarchy, error) {
	validateSquare(a, "Setup")
	opts.fillDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{Opts: opts}
	cur := a
	for len(h.Levels) < opts.MaxLevels-1 && cur.Rows > opts.CoarsestSize {
		lvl := &Level{A: cur, diag: cur.Diag()}
		strength := Strength(cur, opts.Theta)
		// Strength pass streams the matrix once.
		h.SetupWork = h.SetupWork.Add(cluster.Work{Flops: float64(cur.NNZ()), Bytes: 16 * float64(cur.NNZ())})

		var p *sparse.CSR
		switch opts.Coarsening {
		case Aggregation:
			agg, nAgg := Aggregate(cur, strength)
			if nAgg >= cur.Rows || nAgg == 0 {
				break // coarsening stalled
			}
			t := TentativeProlongation(agg, nAgg)
			if opts.Interp == Smoothed {
				p = SmoothProlongation(cur, t, opts.SmoothedOmega)
				f, b := sparse.SpGEMMWork(cur, t, h.spgemmPasses())
				h.SetupWork = h.SetupWork.Add(cluster.Work{Flops: f, Bytes: b})
			} else {
				p = t
			}
		case PMISSplit:
			cf := PMIS(cur, strength, opts.Seed)
			if opts.Interp == Direct {
				EnsureInterpolable(strength, cf)
			}
			_, nc := CoarseIndex(cf)
			if nc >= cur.Rows || nc == 0 {
				break
			}
			if opts.Interp == ExtendedI {
				p = ExtendedIInterpolation(cur, strength, cf)
			} else {
				p = DirectInterpolation(cur, strength, cf)
			}
		}
		if p == nil || p.Cols >= cur.Rows || p.Cols == 0 {
			break
		}
		lvl.P = p
		lvl.R = p.Transpose()
		if opts.IdentityOpt {
			lvl.PSplit = sparse.AnalyzeIdentity(p)
			lvl.RSplit = sparse.AnalyzeIdentity(lvl.R)
		}
		// Galerkin product A_c = R A P, the setup-phase hot spot.
		ap := h.mul(cur, p)
		f1, b1 := sparse.SpGEMMWork(cur, p, h.spgemmPasses())
		coarse := h.mul(lvl.R, ap)
		f2, b2 := sparse.SpGEMMWork(lvl.R, ap, h.spgemmPasses())
		h.SetupWork = h.SetupWork.Add(cluster.Work{Flops: f1 + f2, Bytes: b1 + b2})

		h.Levels = append(h.Levels, lvl)
		cur = coarse
	}
	// Coarsest level: dense LU factorisation.
	h.Levels = append(h.Levels, &Level{A: cur, diag: cur.Diag()})
	h.coarseFactor = factorDense(cur)
	h.SetupWork = h.SetupWork.Add(cluster.Work{
		Flops: 2.0 / 3.0 * math.Pow(float64(cur.Rows), 3),
		Bytes: 8 * float64(cur.Rows) * float64(cur.Rows),
	})
	return h, nil
}

func (h *Hierarchy) spgemmPasses() int {
	if h.Opts.SpGEMM == SpGEMMSPA {
		return 1
	}
	return 2
}

func (h *Hierarchy) mul(a, b *sparse.CSR) *sparse.CSR {
	if h.Opts.SpGEMM == SpGEMMSPA {
		return sparse.MulSPA(a, b, 0)
	}
	return sparse.MulTwoPass(a, b)
}

// NumLevels returns the hierarchy depth.
func (h *Hierarchy) NumLevels() int { return len(h.Levels) }

// OperatorComplexity is sum(nnz(A_l)) / nnz(A_0), the standard AMG memory
// and work metric.
func (h *Hierarchy) OperatorComplexity() float64 {
	total := 0.0
	for _, l := range h.Levels {
		total += float64(l.A.NNZ())
	}
	return total / float64(h.Levels[0].A.NNZ())
}

// ---- Smoothers -------------------------------------------------------------

// smooth performs `sweeps` relaxation sweeps of the configured smoother
// on A x = b at the given level. Gauss-Seidel-type smoothers sweep
// forward when pre-smoothing and backward when post-smoothing so the
// overall cycle stays symmetric — required for use inside CG.
func (h *Hierarchy) smooth(l *Level, b, x []float64, sweeps int, forward bool) {
	switch h.Opts.Smoother {
	case Jacobi:
		jacobiSweeps(l, b, x, sweeps, h.Opts.JacobiWeight)
	case GaussSeidel:
		for s := 0; s < sweeps; s++ {
			gsSweepRange(l, b, x, 0, l.A.Rows, x, forward)
		}
	case HybridGS:
		hybridGSSweeps(l, b, x, sweeps, h.Opts.HybridBlocks, forward)
	case Chebyshev:
		chebyshevSmooth(l, b, x, 2*sweeps+1)
	}
}

// chebyshevSmooth applies a degree-`deg` Chebyshev polynomial smoother
// targeting the upper part of the diagonally-scaled spectrum
// [lambdaMax/4, lambdaMax] — communication-free within a sweep beyond the
// matrix-vector products, which is why [51] recommends polynomial
// smoothers at extreme core counts. Symmetric by construction (safe
// inside CG).
func chebyshevSmooth(l *Level, b, x []float64, deg int) {
	n := l.A.Rows
	if l.lambdaMax == 0 {
		l.lambdaMax = estimateLambdaMax(l)
	}
	lmax := l.lambdaMax * 1.05
	lmin := lmax / 4
	theta := (lmax + lmin) / 2
	delta := (lmax - lmin) / 2
	// Standard Chebyshev iteration on D^-1 A with residual recurrence.
	r := make([]float64, n)
	l.A.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
		if d := l.diag[i]; d != 0 {
			r[i] /= d
		}
	}
	p := make([]float64, n)
	alpha := 1.0 / theta
	for i := range p {
		p[i] = alpha * r[i]
	}
	ap := make([]float64, n)
	for k := 0; k < deg; k++ {
		for i := range x {
			x[i] += p[i]
		}
		// r <- r - D^-1 A p
		l.A.MulVec(p, ap)
		for i := range r {
			v := ap[i]
			if d := l.diag[i]; d != 0 {
				v /= d
			}
			r[i] -= v
		}
		beta := (delta * alpha / 2) * (delta * alpha / 2)
		alpha = 1.0 / (theta - beta/alpha)
		for i := range p {
			p[i] = alpha*r[i] + beta*p[i]
		}
	}
}

// estimateLambdaMax runs a few power iterations on D^-1 A to bound the
// spectrum for the Chebyshev smoother.
func estimateLambdaMax(l *Level) float64 {
	n := l.A.Rows
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 + float64(i%3) // deterministic non-degenerate start
	}
	w := make([]float64, n)
	lambda := 1.0
	for it := 0; it < 12; it++ {
		l.A.MulVec(v, w)
		norm := 0.0
		for i := range w {
			if d := l.diag[i]; d != 0 {
				w[i] /= d
			}
			norm += w[i] * w[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 2 // fallback: Jacobi-scaled Laplacians are <= 2
		}
		lambda = norm
		for i := range v {
			v[i] = w[i] / norm
		}
	}
	return lambda
}

func jacobiSweeps(l *Level, b, x []float64, sweeps int, w float64) {
	n := l.A.Rows
	r := make([]float64, n)
	for s := 0; s < sweeps; s++ {
		l.A.MulVec(x, r)
		for i := 0; i < n; i++ {
			d := l.diag[i]
			if d == 0 {
				continue
			}
			x[i] += w * (b[i] - r[i]) / d
		}
	}
}

// gsSweepRange runs one Gauss-Seidel sweep over rows [lo,hi), reading
// off-range unknowns from xOld (pass x itself for classic GS). forward
// selects the sweep direction.
func gsSweepRange(l *Level, b, x []float64, lo, hi int, xOld []float64, forward bool) {
	a := l.A
	relax := func(i int) {
		d := l.diag[i]
		if d == 0 {
			return
		}
		s := b[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j == i {
				continue
			}
			if j >= lo && j < hi {
				s -= a.Val[k] * x[j]
			} else {
				s -= a.Val[k] * xOld[j]
			}
		}
		x[i] = s / d
	}
	if forward {
		for i := lo; i < hi; i++ {
			relax(i)
		}
	} else {
		for i := hi - 1; i >= lo; i-- {
			relax(i)
		}
	}
}

// hybridGSSweeps is the hybrid smoother of Baker et al. [51]: Gauss-
// Seidel within each of `blocks` contiguous row blocks (one per parallel
// task), Jacobi across blocks — off-block unknowns come from the sweep's
// starting iterate.
func hybridGSSweeps(l *Level, b, x []float64, sweeps, blocks int, forward bool) {
	n := l.A.Rows
	if blocks > n {
		blocks = n
	}
	if blocks < 1 {
		blocks = 1
	}
	xOld := make([]float64, n)
	for s := 0; s < sweeps; s++ {
		copy(xOld, x)
		for blk := 0; blk < blocks; blk++ {
			lo := blk * n / blocks
			hi := (blk + 1) * n / blocks
			gsSweepRange(l, b, x, lo, hi, xOld, forward)
		}
	}
}

// ---- Cycles ----------------------------------------------------------------

// ApplyCycle runs one multigrid cycle on the finest level, improving x in
// place for A x = b. x may start at zero.
func (h *Hierarchy) ApplyCycle(b, x []float64) {
	h.cycle(0, b, x)
}

func (h *Hierarchy) cycle(level int, b, x []float64) {
	l := h.Levels[level]
	if level == len(h.Levels)-1 {
		h.coarseFactor.solve(b, x)
		return
	}
	h.smooth(l, b, x, h.Opts.PreSweeps, true)
	// Residual and restriction.
	n := l.A.Rows
	r := make([]float64, n)
	l.A.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	nc := l.P.Cols
	rc := make([]float64, nc)
	if l.RSplit != nil {
		l.RSplit.MulVec(r, rc)
	} else {
		l.R.MulVec(r, rc)
	}
	ec := make([]float64, nc)
	switch {
	case h.Opts.Cycle == KCycle && level+1 < len(h.Levels)-1:
		h.kAccelerate(level+1, rc, ec)
	case h.Opts.Cycle == WCycle && level+1 < len(h.Levels)-1:
		// W-cycle: revisit the coarse level twice.
		h.cycle(level+1, rc, ec)
		h.cycle(level+1, rc, ec)
	default:
		h.cycle(level+1, rc, ec)
	}
	// Prolongate and correct.
	e := make([]float64, n)
	if l.PSplit != nil {
		l.PSplit.MulVec(ec, e)
	} else {
		l.P.MulVec(ec, e)
	}
	for i := range x {
		x[i] += e[i]
	}
	h.smooth(l, b, x, h.Opts.PostSweeps, false)
}

// kAccelerate solves the coarse system with two steps of flexible CG
// preconditioned by the recursive cycle — the K-cycle of [50].
func (h *Hierarchy) kAccelerate(level int, b, x []float64) {
	l := h.Levels[level]
	n := l.A.Rows
	r := make([]float64, n)
	copy(r, b) // x starts at zero
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	for it := 0; it < 2; it++ {
		for i := range z {
			z[i] = 0
		}
		h.cycle(level, r, z)
		if it == 0 {
			copy(p, z)
		} else {
			// Flexible CG beta via Polak-Ribiere-like update.
			num, den := 0.0, 0.0
			for i := range z {
				num += z[i] * r[i]
				den += p[i] * ap[i]
			}
			if den == 0 {
				copy(p, z)
			} else {
				beta := num / den
				for i := range p {
					p[i] = z[i] + beta*p[i]
				}
			}
		}
		l.A.MulVec(p, ap)
		num, den := 0.0, 0.0
		for i := range p {
			num += p[i] * r[i]
			den += p[i] * ap[i]
		}
		if den == 0 {
			return
		}
		alpha := num / den
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
	}
}

// CycleWork estimates the roofline work of one cycle at full scale:
// smoother sweeps and the residual cost one SpMV each per level, plus the
// transfer operators (with the identity-block savings when enabled) and
// the dense coarse solve.
func (h *Hierarchy) CycleWork() cluster.Work {
	var w cluster.Work
	sweeps := float64(h.Opts.PreSweeps + h.Opts.PostSweeps)
	cycleMult := 1.0
	if h.Opts.Cycle == KCycle || h.Opts.Cycle == WCycle {
		cycleMult = 2.0 // two coarse visits per level
	}
	levelMult := 1.0
	for i, l := range h.Levels {
		f, b := l.A.MulVecWork()
		if i == len(h.Levels)-1 {
			n := float64(l.A.Rows)
			w = w.Add(cluster.Work{Flops: 2 * n * n, Bytes: 8 * n * n}.Scale(levelMult))
			break
		}
		w = w.Add(cluster.Work{Flops: f * (sweeps + 1), Bytes: b * (sweeps + 1)}.Scale(levelMult))
		var pf, pb float64
		if l.PSplit != nil {
			f1, b1 := l.PSplit.Work()
			f2, b2 := l.RSplit.Work()
			pf, pb = f1+f2, b1+b2
		} else {
			f1, b1 := l.P.MulVecWork()
			f2, b2 := l.R.MulVecWork()
			pf, pb = f1+f2, b1+b2
		}
		w = w.Add(cluster.Work{Flops: pf, Bytes: pb}.Scale(levelMult))
		levelMult *= cycleMult
	}
	return w
}

// ---- Dense coarse solve ----------------------------------------------------

type denseLU struct {
	n    int
	lu   []float64 // row-major
	perm []int
}

func factorDense(a *sparse.CSR) *denseLU {
	n := a.Rows
	f := &denseLU{n: n, lu: make([]float64, n*n), perm: make([]int, n)}
	for i := 0; i < n; i++ {
		f.perm[i] = i
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			f.lu[i*n+a.ColIdx[k]] = a.Val[k]
		}
	}
	// LU with partial pivoting.
	for col := 0; col < n; col++ {
		// Pivot.
		piv, pmax := col, math.Abs(f.lu[f.perm[col]*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(f.lu[f.perm[r]*n+col]); v > pmax {
				piv, pmax = r, v
			}
		}
		f.perm[col], f.perm[piv] = f.perm[piv], f.perm[col]
		prow := f.perm[col]
		d := f.lu[prow*n+col]
		if d == 0 {
			continue // singular direction; leave (consistent RHS assumed)
		}
		for r := col + 1; r < n; r++ {
			row := f.perm[r]
			m := f.lu[row*n+col] / d
			f.lu[row*n+col] = m
			for c := col + 1; c < n; c++ {
				f.lu[row*n+c] -= m * f.lu[prow*n+c]
			}
		}
	}
	return f
}

func (f *denseLU) solve(b, x []float64) {
	n := f.n
	y := make([]float64, n)
	// Forward substitution on permuted rows.
	for i := 0; i < n; i++ {
		s := b[f.perm[i]]
		row := f.perm[i]
		for j := 0; j < i; j++ {
			s -= f.lu[row*n+j] * y[j]
		}
		y[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.perm[i]
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[row*n+j] * x[j]
		}
		d := f.lu[row*n+i]
		if d == 0 {
			x[i] = 0
			continue
		}
		x[i] = s / d
	}
}
