package amg

import (
	"math"
	"sort"

	"cpx/internal/order"
	"cpx/internal/sparse"
)

// TentativeProlongation builds the piecewise-constant prolongation of
// aggregation AMG: P[i, agg[i]] = 1.
func TentativeProlongation(agg []int, numAgg int) *sparse.CSR {
	n := len(agg)
	rp := make([]int, n+1)
	ci := make([]int, n)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		rp[i+1] = i + 1
		ci[i] = agg[i]
		v[i] = 1
	}
	return &sparse.CSR{Rows: n, Cols: numAgg, RowPtr: rp, ColIdx: ci, Val: v}
}

// SmoothProlongation applies one damped-Jacobi smoothing step to a
// tentative prolongation: P = (I - w D^-1 A) T, the smoothed-aggregation
// refinement that markedly improves convergence on elliptic problems.
func SmoothProlongation(a *sparse.CSR, tentative *sparse.CSR, weight float64) *sparse.CSR {
	d := a.Diag()
	// Build (I - w D^-1 A) explicitly, then one SpGEMM.
	var ri, ci []int
	var v []float64
	for i := 0; i < a.Rows; i++ {
		di := d[i]
		if di == 0 {
			di = 1
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			x := -weight * a.Val[k] / di
			if j == i {
				x += 1
			}
			ri = append(ri, i)
			ci = append(ci, j)
			v = append(v, x)
		}
	}
	s := sparse.FromCOO(a.Rows, a.Cols, ri, ci, v)
	return sparse.Mul(s, tentative)
}

// DirectInterpolation builds classical distance-one interpolation for a
// C/F splitting: C-points inject (identity rows); each F-point i
// interpolates from its strong C-neighbours with
//
//	w_ij = -alpha_i * a_ij / a_ii,  alpha_i = sum_{k!=i} a_ik / sum_{j in C_i} a_ij,
//
// the standard formula for M-matrices (Stüben). F-points with no strong
// C-neighbour get an empty row (callers use EnsureInterpolable to avoid
// them, or ExtendedIInterpolation which reaches distance two).
func DirectInterpolation(a *sparse.CSR, strength [][]int, cf []CF) *sparse.CSR {
	validateSquare(a, "DirectInterpolation")
	index, nc := CoarseIndex(cf)
	var ri, ci []int
	var v []float64
	for i := 0; i < a.Rows; i++ {
		if cf[i] == CPoint {
			ri = append(ri, i)
			ci = append(ci, index[i])
			v = append(v, 1)
			continue
		}
		// Strong C-neighbour set.
		cset := map[int]bool{}
		for _, j := range strength[i] {
			if cf[j] == CPoint {
				cset[j] = true
			}
		}
		if len(cset) == 0 {
			continue
		}
		var diag, sumAll, sumC float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j == i {
				diag = a.Val[k]
				continue
			}
			sumAll += a.Val[k]
			if cset[j] {
				sumC += a.Val[k]
			}
		}
		if diag == 0 || sumC == 0 {
			continue
		}
		alpha := sumAll / sumC
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j == i || !cset[j] {
				continue
			}
			ri = append(ri, i)
			ci = append(ci, index[j])
			v = append(v, -alpha*a.Val[k]/diag)
		}
	}
	return sparse.FromCOO(a.Rows, nc, ri, ci, v)
}

// ExtendedIInterpolation builds distance-two ("extended+i") interpolation
// [52]: the interpolation set of an F-point i is its strong C-neighbours
// plus the strong C-neighbours of its strong F-neighbours. Connections to
// strong F-neighbours are distributed onto that extended set in
// proportion to the F-neighbour's own couplings, and weak connections are
// lumped onto the diagonal. More compute per point than direct
// interpolation, but faster-converging hierarchies — exactly the
// trade-off Section IV-B recommends.
func ExtendedIInterpolation(a *sparse.CSR, strength [][]int, cf []CF) *sparse.CSR {
	validateSquare(a, "ExtendedIInterpolation")
	index, nc := CoarseIndex(cf)
	strong := make([]map[int]bool, a.Rows)
	for i := range strong {
		strong[i] = map[int]bool{}
		for _, j := range strength[i] {
			strong[i][j] = true
		}
	}
	var ri, ci []int
	var v []float64
	for i := 0; i < a.Rows; i++ {
		if cf[i] == CPoint {
			ri = append(ri, i)
			ci = append(ci, index[i])
			v = append(v, 1)
			continue
		}
		// Extended coarse set: strong C at distance one and two.
		ext := map[int]float64{} // coarse point -> accumulated coupling
		for _, j := range strength[i] {
			if cf[j] == CPoint {
				ext[j] = 0
			} else {
				for _, k := range strength[j] {
					if cf[k] == CPoint && k != i {
						ext[k] = 0
					}
				}
			}
		}
		if len(ext) == 0 {
			continue
		}
		// Accumulate couplings: direct ones plus distributed F-neighbour
		// contributions; weak connections lump onto the diagonal.
		diag := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			aij := a.Val[k]
			switch {
			case j == i:
				diag += aij
			case !strong[i][j]:
				diag += aij // weak: lump
			case cf[j] == CPoint:
				ext[j] += aij
			default:
				// Strong F-neighbour: distribute a_ij over ext ∩ C_j
				// proportionally to a_jk.
				denom := 0.0
				for kk := a.RowPtr[j]; kk < a.RowPtr[j+1]; kk++ {
					jj := a.ColIdx[kk]
					if _, ok := ext[jj]; ok && jj != j {
						denom += a.Val[kk]
					}
				}
				if denom == 0 {
					diag += aij // nowhere to distribute: lump
					continue
				}
				for kk := a.RowPtr[j]; kk < a.RowPtr[j+1]; kk++ {
					jj := a.ColIdx[kk]
					if _, ok := ext[jj]; ok && jj != j {
						ext[jj] += aij * a.Val[kk] / denom
					}
				}
			}
		}
		// Guard: lumping weak couplings can drive the effective diagonal
		// toward zero on awkward splittings, exploding the weights and
		// leaving a near-singular Galerkin operator. Fall back to the
		// plain diagonal when that happens.
		if math.Abs(diag) < 0.1*math.Abs(a.At(i, i)) {
			diag = a.At(i, i)
		}
		if diag == 0 {
			continue
		}
		// Truncate to the strongest PMax weights (rescaled to preserve
		// the row sum), hypre's standard defence against the operator
		// complexity growth of distance-two interpolation.
		const pMax = 4
		type wc struct {
			col int
			w   float64
		}
		// Sorted-key iteration: the rescaling sums below accumulate in row
		// order, so map order here would leak into the weights.
		row := make([]wc, 0, len(ext))
		for _, j := range order.SortedKeys(ext) {
			if w := -ext[j] / diag; w != 0 {
				row = append(row, wc{index[j], w})
			}
		}
		if len(row) > pMax {
			sort.Slice(row, func(a, b int) bool {
				wa, wb := math.Abs(row[a].w), math.Abs(row[b].w)
				if wa != wb {
					return wa > wb
				}
				return row[a].col < row[b].col
			})
			var fullSum, keptSum float64
			for _, e := range row {
				fullSum += e.w
			}
			row = row[:pMax]
			for _, e := range row {
				keptSum += e.w
			}
			if keptSum != 0 {
				scale := fullSum / keptSum
				for k := range row {
					row[k].w *= scale
				}
			}
		}
		sort.Slice(row, func(a, b int) bool { return row[a].col < row[b].col })
		for _, e := range row {
			ri = append(ri, i)
			ci = append(ci, e.col)
			v = append(v, e.w)
		}
	}
	return sparse.FromCOO(a.Rows, nc, ri, ci, v)
}
