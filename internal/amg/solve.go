package amg

import (
	"math"

	"cpx/internal/cluster"
	"cpx/internal/sparse"
)

// Result reports the outcome of an iterative solve.
type Result struct {
	Iterations int
	Residual   float64 // final relative residual ||b-Ax|| / ||b||
	Converged  bool
}

// Solve runs stationary AMG iteration (one cycle per step) on A x = b
// until the relative residual drops below tol or maxIter cycles elapse.
func (h *Hierarchy) Solve(b, x []float64, tol float64, maxIter int) Result {
	a := h.Levels[0].A
	n := a.Rows
	r := make([]float64, n)
	bnorm := norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	for it := 1; it <= maxIter; it++ {
		h.ApplyCycle(b, x)
		a.MulVec(x, r)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		res := norm2(r) / bnorm
		if res < tol {
			return Result{Iterations: it, Residual: res, Converged: true}
		}
	}
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return Result{Iterations: maxIter, Residual: norm2(r) / bnorm}
}

// PCG solves A x = b with conjugate gradients preconditioned by one AMG
// cycle per iteration — the pressure-correction solver configuration of
// the production code (CG + aggregate AMG).
func (h *Hierarchy) PCG(b, x []float64, tol float64, maxIter int) Result {
	a := h.Levels[0].A
	n := a.Rows
	r := make([]float64, n)
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	z := make([]float64, n)
	h.ApplyCycle(r, z)
	p := make([]float64, n)
	copy(p, z)
	ap := make([]float64, n)
	rz := dot(r, z)
	for it := 1; it <= maxIter; it++ {
		a.MulVec(p, ap)
		pap := dot(p, ap)
		if pap == 0 {
			return Result{Iterations: it, Residual: norm2(r) / bnorm}
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		res := norm2(r) / bnorm
		if res < tol {
			return Result{Iterations: it, Residual: res, Converged: true}
		}
		for i := range z {
			z[i] = 0
		}
		h.ApplyCycle(r, z)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return Result{Iterations: maxIter, Residual: norm2(r) / bnorm}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// ---- Distributed solve ------------------------------------------------------

// DistSolver solves a distributed system with CG preconditioned by a
// block-local AMG hierarchy: each rank owns a row block of the global
// operator (sparse.Dist), builds a serial hierarchy on its diagonal
// block, and applies it as a block-Jacobi preconditioner. Combined with
// the HybridGS smoother this is exactly the "hybrid Gauss-Seidel within a
// task, Jacobi across tasks" structure of Section IV-B.
type DistSolver struct {
	D     *sparse.Dist
	Local *Hierarchy
}

// NewDistSolver builds the local-block hierarchy. Collective over d.Comm.
func NewDistSolver(d *sparse.Dist, opts Options) (*DistSolver, error) {
	// Extract the diagonal block of the localised rows.
	own := d.OwnedRows()
	rp := make([]int, own+1)
	var ci []int
	var v []float64
	l := d.Local
	for i := 0; i < own; i++ {
		for k := l.RowPtr[i]; k < l.RowPtr[i+1]; k++ {
			if c := l.ColIdx[k]; c < own {
				ci = append(ci, c)
				v = append(v, l.Val[k])
			}
		}
		rp[i+1] = len(ci)
	}
	block := &sparse.CSR{Rows: own, Cols: own, RowPtr: rp, ColIdx: ci, Val: v}
	h, err := Setup(block, opts)
	if err != nil {
		return nil, err
	}
	// Charge the setup work (the AMG setup phase the paper flags as a
	// >30k-core scaling concern).
	d.Comm.Compute(h.SetupWork.Scale(d.WorkScale))
	return &DistSolver{D: d, Local: h}, nil
}

// precondition applies one local AMG cycle to r, charging its work.
func (s *DistSolver) precondition(r, z []float64) {
	for i := range z {
		z[i] = 0
	}
	s.Local.ApplyCycle(r, z)
	s.D.Comm.Compute(s.Local.CycleWork().Scale(s.D.WorkScale))
}

// Solve runs distributed PCG. b and x are the rank's owned slices.
// Collective over the communicator; every rank gets the same Result.
func (s *DistSolver) Solve(b, x []float64, tol float64, maxIter int) Result {
	d := s.D
	n := d.OwnedRows()
	r := make([]float64, n)
	d.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := d.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	z := make([]float64, n)
	s.precondition(r, z)
	p := make([]float64, n)
	copy(p, z)
	ap := make([]float64, n)
	rz := d.Dot(r, z)
	for it := 1; it <= maxIter; it++ {
		d.MulVec(p, ap)
		pap := d.Dot(p, ap)
		if pap == 0 {
			return Result{Iterations: it, Residual: d.Norm2(r) / bnorm}
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		d.Comm.Compute(cluster.Work{Flops: 4 * float64(n) * d.WorkScale, Bytes: 48 * float64(n) * d.WorkScale})
		res := d.Norm2(r) / bnorm
		if res < tol {
			return Result{Iterations: it, Residual: res, Converged: true}
		}
		s.precondition(r, z)
		rzNew := d.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return Result{Iterations: maxIter, Residual: d.Norm2(r) / bnorm}
}
