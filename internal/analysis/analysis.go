// Package analysis is a self-contained static-analysis suite enforcing
// the invariants the virtual-time runtime's headline guarantees rest on:
// bitwise-identical per-rank clocks, GOMAXPROCS-independent schedules and
// reproducible solver output. It mirrors the golang.org/x/tools
// go/analysis architecture (Analyzer, Pass, diagnostics, testdata-driven
// fixtures) but is built purely on the standard library's go/ast and
// go/types so the module stays dependency-free.
//
// Four analyzers ship with the suite, each guarding one invariant class:
//
//   - determinism: no host wall-clock or timers, no process-seeded
//     math/rand, no map-iteration order leaking into results inside the
//     simulation-critical packages.
//   - mpiuse: no collectives lexically inside rank-conditioned branches
//     (deadlock/mismatch), no discarded or never-awaited Requests.
//   - poolsafety: no use of a pooled message after releaseMessage, no
//     pooled payload or *message escaping into long-lived storage.
//   - floatreduce: no float accumulation in map- or goroutine-order.
//
// A diagnostic is silenced with a reviewed suppression comment on the
// same line or the line above:
//
//	//lint:allow <rule> <reason>
//
// The reason is mandatory; cmd/cpxlint rejects bare suppressions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named rule set, runnable over a type-checked package.
type Analyzer struct {
	// Name is the rule name used in diagnostics and //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// SimCriticalOnly restricts the analyzer to the simulation-critical
	// packages (IsSimCritical); host-side tooling is exempt.
	SimCriticalOnly bool
	// Run reports diagnostics through the pass.
	Run func(*Pass)
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer    *Analyzer
	Fset        *token.FileSet
	Files       []*ast.File
	Pkg         *types.Package
	Info        *types.Info
	SimCritical bool

	Diagnostics []Diagnostic

	// payloadAliases is per-function scratch state for the poolsafety
	// analyzer: locals aliasing a pooled payload, keyed by object.
	payloadAliases map[types.Object]string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Diagnostics = append(p.Diagnostics, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, MPIUse, PoolSafety, FloatReduce, CommMatch, HotAlloc}
}

// AnalyzerNames returns the valid rule names for suppression validation.
// The perfgate compiler-fact gate (perfgate.go) reports under its own
// rule name without being a Pass-based analyzer, so it is added
// explicitly.
func AnalyzerNames() map[string]bool {
	names := map[string]bool{PerfGateAnalyzer.Name: true}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// simCriticalPackages are the internal packages whose code runs under (or
// feeds) the virtual clock, where determinism is a correctness property.
var simCriticalPackages = map[string]bool{
	"mpi": true, "coupler": true, "harness": true, "mgcfd": true,
	"simpic": true, "amg": true, "sparse": true, "pressure": true,
	"spray": true, "mesh": true, "partition": true, "perfmodel": true,
	"fault": true, "serve": true, "telemetry": true, "particle": true,
}

// IsSimCritical reports whether an import path belongs to the
// simulation-critical set the determinism and floatreduce analyzers cover.
func IsSimCritical(importPath string) bool {
	rest, ok := strings.CutPrefix(importPath, "cpx/internal/")
	if !ok {
		return false
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return simCriticalPackages[rest]
}

// ---- shared AST/type helpers -----------------------------------------------

// typeOf returns the type of e, or nil.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// calleeFunc resolves the *types.Func a call invokes (package function or
// method), or nil for builtins, function-typed variables and conversions.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// namedTypeName returns the name of t's (pointer-stripped) named type, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return named.Obj().Name()
		}
	}
	return ""
}

// methodCall matches call as a method invocation x.Name(...) and returns
// the selector; ok is false for plain function calls.
func methodCall(call *ast.CallExpr) (*ast.SelectorExpr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return sel, ok
}

// declaredWithin reports whether id resolves to an object declared inside
// node's source range (e.g. a range-statement's own variables).
func (p *Pass) declaredWithin(id *ast.Ident, node ast.Node) bool {
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// isFloat reports whether t is a floating-point basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprString renders an expression compactly (types.ExprString).
func exprString(e ast.Expr) string { return types.ExprString(e) }

// appendCall matches call as the builtin append and returns its arguments.
func appendCall(p *Pass, call *ast.CallExpr) ([]ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil, false
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	return call.Args, true
}
