// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against `// want` comments, in
// the style of golang.org/x/tools/go/analysis/analysistest but built on
// the standard library only.
//
// A fixture line expecting a diagnostic carries a comment of the form
//
//	code() // want `regexp`
//
// with one or more backquoted or double-quoted regexps, each matching one
// diagnostic reported on that line. Diagnostics with no matching want,
// and wants with no matching diagnostic, fail the test. Fixtures may also
// carry //lint:allow suppressions; suppressed diagnostics must NOT be
// matched by a want and are checked for being silenced.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cpx/internal/analysis"
)

// Run loads testdata/src/<pkg> relative to dir, applies the analyzer
// (treating the fixture as simulation-critical so gated analyzers run),
// filters //lint:allow suppressions, and diffs against // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	pkgDir := filepath.Join(dir, "testdata", "src", pkg)
	fset := token.NewFileSet()

	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgDir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", pkgDir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { t.Errorf("fixture type error: %v", err) },
	}
	tpkg, _ := conf.Check(pkg, fset, files, info)

	pass := &analysis.Pass{
		Analyzer:    a,
		Fset:        fset,
		Files:       files,
		Pkg:         tpkg,
		Info:        info,
		SimCritical: true,
	}
	a.Run(pass)

	supps := analysis.CollectSuppressions(fset, files, analysis.AnalyzerNames())
	for _, m := range supps.Malformed {
		t.Errorf("malformed suppression in fixture: %s", m)
	}
	kept, _ := supps.Filter(pass.Diagnostics)

	diffWants(t, fset, files, kept)
}

// want is one expected-diagnostic regexp at a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("// want ((?:[`\"][^`\"]*[`\"]\\s*)+)")
var wantArgRE = regexp.MustCompile("[`\"]([^`\"]*)[`\"]")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, arg[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: arg[1]})
				}
			}
		}
	}
	return wants
}

func diffWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic matching %s", fmt.Sprintf("%s:%d", w.file, w.line), w.raw)
		}
	}
}
