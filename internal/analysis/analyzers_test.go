package analysis_test

import (
	"testing"

	"cpx/internal/analysis"
	"cpx/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, ".", analysis.Determinism, "determinism")
}

func TestMPIUse(t *testing.T) {
	analysistest.Run(t, ".", analysis.MPIUse, "mpiuse")
}

func TestPoolSafety(t *testing.T) {
	analysistest.Run(t, ".", analysis.PoolSafety, "poolsafety")
}

func TestFloatReduce(t *testing.T) {
	analysistest.Run(t, ".", analysis.FloatReduce, "floatreduce")
}

func TestCommMatch(t *testing.T) {
	analysistest.Run(t, ".", analysis.CommMatch, "commmatch")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, ".", analysis.HotAlloc, "hotalloc")
}

func TestIsSimCritical(t *testing.T) {
	for path, want := range map[string]bool{
		"cpx/internal/mpi":       true,
		"cpx/internal/amg":       true,
		"cpx/internal/coupler":   true,
		"cpx/internal/telemetry": true,
		"cpx/internal/trace":     false,
		"cpx/internal/analysis":  false,
		"cpx/cmd/cpx":            false,
		"other/internal/mpi":     false,
	} {
		if got := analysis.IsSimCritical(path); got != want {
			t.Errorf("IsSimCritical(%q) = %v, want %v", path, got, want)
		}
	}
}
