package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// CommMatch is the flow-sensitive, whole-package MPI protocol analyzer.
// It builds per-function def-use chains (flow.go) to resolve the rank,
// peer, tag and communicator of every Send/Isend/Recv/Irecv/RecvAll and
// collective call, then matches the two sides of each protocol:
//
//   - a rank-conditioned send whose constant tag no receive in the
//     package could ever match (unmatched send, tag mismatch, or a
//     receive that exists only on a different communicator);
//   - collective call sequences that diverge between the two arms of a
//     rank-conditioned branch (rank sets would execute different
//     collectives and mismatch);
//   - cyclic waits-for patterns between rank-pinned branches — each
//     rank blocking in a Recv from the other before its first send to
//     it — which the event executor only catches at runtime as a
//     deadlock; the diagnostic names both endpoints.
//
// Diagnostics report at the send (or branch) site and embed the other
// endpoint's position, turning the runtime's fail-fast into a
// compile-time report.
var CommMatch = &Analyzer{
	Name: "commmatch",
	Doc: "match Send/Isend against Recv/Irecv/RecvAll by (comm, peer, tag) " +
		"and flag unmatched rank-conditioned sends, tag/comm mismatches, " +
		"diverging collective sequences and cyclic recv-before-send waits",
	Run: runCommMatch,
}

// opKind classifies one communication call site.
type opKind uint8

const (
	opSend opKind = iota
	opRecv
	opColl
)

// sendMethods maps blocking and nonblocking send methods to the argument
// indices of (peer, tag).
var sendMethods = map[string][2]int{
	"Send": {0, 1}, "SendInts": {0, 1}, "SendBytes": {0, 1},
	"SendVirtual": {0, 1}, "Isend": {0, 1},
}

// recvMethods maps receive methods to the argument indices of (peer,
// tag); a peer index of -1 means the receive matches any source.
var recvMethods = map[string][2]int{
	"Recv": {0, 1}, "RecvInts": {0, 1}, "RecvBytes": {0, 1},
	"Irecv": {0, 1}, "RecvAll": {-1, 1},
}

// blockingRecv marks the receive methods that park the calling rank
// until a message arrives (Irecv completes at Wait time instead).
var blockingRecv = map[string]bool{
	"Recv": true, "RecvInts": true, "RecvBytes": true, "RecvAll": true,
}

// condFact is one enclosing branch condition that reads a rank.
type condFact struct {
	comm string // identity of the communicator read ("?" for rank-named idents)
	eq   bool   // the taken branch pins comm's rank to exactly val
	val  int64
}

// commOp is one communication call site with its resolved protocol
// coordinates and the rank conditions guarding it.
type commOp struct {
	kind    opKind
	method  string
	comm    string
	peer    symVal
	anyPeer bool
	tag     symVal
	pos     token.Pos
	conds   []condFact
	blocks  bool // blocking receive
}

// pinnedRank returns the (comm, rank) this op's conditions pin it to,
// if any condition is an exact equality.
func (op *commOp) pinnedRank() (comm string, val int64, ok bool) {
	for _, c := range op.conds {
		if c.eq {
			return c.comm, c.val, true
		}
	}
	return "", 0, false
}

func runCommMatch(pass *Pass) {
	var fnOps [][]*commOp
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fl := newFuncFlow(pass, fd.Body)
			ops := collectCommOps(pass, fl, fd.Body)
			if len(ops) > 0 {
				fnOps = append(fnOps, ops)
			}
			checkCollectiveDivergence(pass, fl, fd.Body)
		}
	}

	// Package-wide receive index for send matching.
	var allRecvs []*commOp
	for _, ops := range fnOps {
		for _, op := range ops {
			if op.kind == opRecv {
				allRecvs = append(allRecvs, op)
			}
		}
	}
	for _, ops := range fnOps {
		checkUnmatchedSends(pass, ops, allRecvs)
		checkWaitCycles(pass, ops)
	}
}

// collectCommOps walks one function body in program order, maintaining
// the stack of rank conditions, and records every communication call.
func collectCommOps(pass *Pass, fl *funcFlow, body *ast.BlockStmt) []*commOp {
	var ops []*commOp
	var walk func(n ast.Node, conds []condFact)
	walkList := func(list []ast.Stmt, conds []condFact) {
		for _, s := range list {
			walk(s, conds)
		}
	}
	push := func(conds []condFact, facts []condFact) []condFact {
		if len(facts) == 0 {
			return conds
		}
		return append(append([]condFact{}, conds...), facts...)
	}
	walk = func(n ast.Node, conds []condFact) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			walk(n.Init, conds)
			walk(n.Cond, conds)
			walkList(n.Body.List, push(conds, condFacts(pass, fl, n.Cond, false)))
			walk(n.Else, push(conds, condFacts(pass, fl, n.Cond, true)))
		case *ast.SwitchStmt:
			walk(n.Init, conds)
			for _, cc := range n.Body.List {
				clause := cc.(*ast.CaseClause)
				facts := switchFacts(pass, fl, n.Tag, clause.List)
				walkList(clause.Body, push(conds, facts))
			}
		case *ast.BlockStmt:
			walkList(n.List, conds)
		case *ast.CallExpr:
			if op := matchCommOp(pass, fl, n, conds); op != nil {
				ops = append(ops, op...)
			}
			walk(n.Fun, conds)
			for _, a := range n.Args {
				walk(a, conds)
			}
		default:
			children(n, func(c ast.Node) { walk(c, conds) })
		}
	}
	walkList(body.List, nil)
	return ops
}

// matchCommOp classifies one call expression as zero or more commOps
// (SendRecv contributes both a send and a receive).
func matchCommOp(pass *Pass, fl *funcFlow, call *ast.CallExpr, conds []condFact) []*commOp {
	sel, ok := methodCall(call)
	if !ok || !isCommReceiver(pass, sel.X) {
		return nil
	}
	name := sel.Sel.Name
	comm := fl.commID(sel.X)
	conds = append([]condFact{}, conds...)
	mk := func(kind opKind, peerIdx, tagIdx int) *commOp {
		op := &commOp{
			kind: kind, method: name, comm: comm,
			pos: call.Pos(), conds: conds,
		}
		if peerIdx < 0 {
			op.anyPeer = true
		} else if peerIdx < len(call.Args) {
			op.peer = fl.resolve(call.Args[peerIdx])
		}
		if tagIdx >= 0 && tagIdx < len(call.Args) {
			op.tag = fl.resolve(call.Args[tagIdx])
		}
		return op
	}
	if idx, ok := sendMethods[name]; ok {
		return []*commOp{mk(opSend, idx[0], idx[1])}
	}
	if idx, ok := recvMethods[name]; ok {
		op := mk(opRecv, idx[0], idx[1])
		op.blocks = blockingRecv[name]
		return []*commOp{op}
	}
	if name == "SendRecv" {
		// SendRecv(to, sendTag, data, from, recvTag): both halves.
		s := mk(opSend, 0, 1)
		r := mk(opRecv, 3, 4)
		r.blocks = true
		return []*commOp{s, r}
	}
	if collectiveMethods[name] {
		return []*commOp{mk(opColl, -1, -1)}
	}
	return nil
}

// condFacts extracts rank facts from one branch condition. negated is
// true for the else arm.
func condFacts(pass *Pass, fl *funcFlow, cond ast.Expr, negated bool) []condFact {
	if cond == nil {
		return nil
	}
	var facts []condFact
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if !negated {
				// Both conjuncts hold in the taken branch.
				return append(condFacts(pass, fl, e.X, false), condFacts(pass, fl, e.Y, false)...)
			}
			// !(a && b): either side may have failed — weaken both.
			return append(weaken(condFacts(pass, fl, e.X, false)), weaken(condFacts(pass, fl, e.Y, false))...)
		case token.LOR:
			if negated {
				return append(condFacts(pass, fl, e.X, true), condFacts(pass, fl, e.Y, true)...)
			}
			return append(weaken(condFacts(pass, fl, e.X, false)), weaken(condFacts(pass, fl, e.Y, false))...)
		case token.EQL, token.NEQ:
			x, y := fl.resolve(e.X), fl.resolve(e.Y)
			if x.kind == symConst && y.kind == symRank {
				x, y = y, x
			}
			if x.kind == symRank && y.kind == symConst {
				pins := (e.Op == token.EQL) != negated
				return []condFact{{comm: x.comm, eq: pins, val: y.val - x.val}}
			}
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			x, y := fl.resolve(e.X), fl.resolve(e.Y)
			if x.kind == symRank || y.kind == symRank {
				comm := x.comm
				if y.kind == symRank {
					comm = y.comm
				}
				return []condFact{{comm: comm}}
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return condFacts(pass, fl, e.X, !negated)
		}
	}
	// Fallback: any rank read inside the condition leaves a non-equality
	// fact; rank-named identifiers with no traceable origin are wildcards.
	recvs, wildcard := condRankReceivers(pass, cond, nil)
	for _, r := range sortedCondComms(recvs) {
		facts = append(facts, condFact{comm: r})
	}
	if wildcard && !rankCompareToConst(pass, fl, cond, &facts, negated) {
		facts = append(facts, condFact{comm: "?"})
	}
	return facts
}

// rankCompareToConst handles `rank == 0` where rank is a rank-named
// identifier with no traceable origin (a parameter): it still pins the
// wildcard communicator's rank for the cycle check.
func rankCompareToConst(pass *Pass, fl *funcFlow, cond ast.Expr, facts *[]condFact, negated bool) bool {
	e, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (e.Op != token.EQL && e.Op != token.NEQ) {
		return false
	}
	id, c := ast.Unparen(e.X), e.Y
	if _, isIdent := id.(*ast.Ident); !isIdent {
		id, c = ast.Unparen(e.Y), e.X
	}
	ident, ok := id.(*ast.Ident)
	if !ok || !rankWordIdents[strings.ToLower(ident.Name)] {
		return false
	}
	v := fl.resolve(c)
	if v.kind != symConst {
		return false
	}
	pins := (e.Op == token.EQL) != negated
	*facts = append(*facts, condFact{comm: "?", eq: pins, val: v.val})
	return true
}

// weaken strips the equality pin off facts (the branch still depends on
// the rank, but no longer pins it to one value).
func weaken(facts []condFact) []condFact {
	out := make([]condFact, len(facts))
	for i, f := range facts {
		out[i] = condFact{comm: f.comm}
	}
	return out
}

func sortedCondComms(recvs map[string]bool) []string {
	out := make([]string, 0, len(recvs))
	for r := range recvs {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// switchFacts derives facts for one switch case: `switch rank { case 0: }`
// pins the rank; rank reads in tagless case expressions weaken.
func switchFacts(pass *Pass, fl *funcFlow, tag ast.Expr, caseExprs []ast.Expr) []condFact {
	var facts []condFact
	if tag != nil {
		if v := fl.resolve(tag); v.kind == symRank {
			if len(caseExprs) == 1 {
				if c := fl.resolve(caseExprs[0]); c.kind == symConst {
					return []condFact{{comm: v.comm, eq: true, val: c.val - v.val}}
				}
			}
			if len(caseExprs) > 0 {
				return []condFact{{comm: v.comm}}
			}
			// default clause: rank-dependent but unpinned.
			return []condFact{{comm: v.comm}}
		}
		return nil
	}
	for _, e := range caseExprs {
		facts = append(facts, condFacts(pass, fl, e, false)...)
	}
	return weaken(facts)
}

// ---- check 1: unmatched rank-conditioned sends ------------------------------

func checkUnmatchedSends(pass *Pass, ops []*commOp, allRecvs []*commOp) {
	var localRecvs []*commOp
	for _, op := range ops {
		if op.kind == opRecv {
			localRecvs = append(localRecvs, op)
		}
	}
	for _, s := range ops {
		if s.kind != opSend || len(s.conds) == 0 || s.tag.kind != symConst {
			continue
		}
		// Matched if any receive in the package could take this tag —
		// same-function receives must also agree on the communicator,
		// cross-function ones match on tag alone (their comm identities
		// are not comparable across scopes).
		matched := false
		for _, r := range allRecvs {
			if !sameTag(s.tag, r.tag) {
				continue
			}
			if inSameSet(r, localRecvs) && r.comm != s.comm {
				continue
			}
			matched = true
			break
		}
		if matched {
			continue
		}
		// Unmatched: pick the most useful evidence for the report.
		if r := nearestRecv(localRecvs, func(r *commOp) bool { return r.comm == s.comm && r.tag.kind == symConst }); r != nil {
			pass.Reportf(s.pos,
				"%s with tag %d on %s has no matching receive: the nearest receive on %s (%s) uses tag %d — constant tag mismatch",
				s.method, s.tag.val, s.comm, s.comm, pass.at(r.pos), r.tag.val)
			continue
		}
		if r := nearestRecv(localRecvs, func(r *commOp) bool { return sameTag(s.tag, r.tag) }); r != nil {
			pass.Reportf(s.pos,
				"%s with tag %d on %s has no matching receive on that communicator: the receive with this tag (%s) listens on %s — communicator mismatch",
				s.method, s.tag.val, s.comm, pass.at(r.pos), r.comm)
			continue
		}
		pass.Reportf(s.pos,
			"rank-conditioned %s with tag %d on %s has no reachable matching receive in this package: the destination rank would wait forever",
			s.method, s.tag.val, s.comm)
	}
}

func inSameSet(op *commOp, set []*commOp) bool {
	for _, o := range set {
		if o == op {
			return true
		}
	}
	return false
}

func nearestRecv(recvs []*commOp, match func(*commOp) bool) *commOp {
	for _, r := range recvs {
		if match(r) {
			return r
		}
	}
	return nil
}

// at renders a position compactly for embedding in a diagnostic message.
func (p *Pass) at(pos token.Pos) string {
	position := p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(position.Filename), position.Line)
}

// ---- check 2: diverging collective sequences --------------------------------

// checkCollectiveDivergence compares the ordered collective sequences of
// the two arms of every rank-conditioned if/else: different sequences
// mean the two rank sets execute different collectives and mismatch.
func checkCollectiveDivergence(pass *Pass, fl *funcFlow, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Else == nil {
			return true
		}
		if len(condFacts(pass, fl, ifs.Cond, false)) == 0 {
			return true
		}
		thenSeq := collectiveSeq(pass, ifs.Body)
		elseSeq := collectiveSeq(pass, ifs.Else)
		if len(thenSeq) == 0 && len(elseSeq) == 0 {
			return true
		}
		if !equalSeq(thenSeq, elseSeq) {
			pass.Reportf(ifs.Pos(),
				"collective sequence diverges across this rank-conditioned branch: [%s] vs [%s] — the two rank sets would mismatch collectives",
				strings.Join(thenSeq, " "), strings.Join(elseSeq, " "))
		}
		return true
	})
}

func collectiveSeq(pass *Pass, n ast.Node) []string {
	var seq []string
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := methodCall(call); ok && collectiveMethods[sel.Sel.Name] && isCommReceiver(pass, sel.X) {
			seq = append(seq, sel.Sel.Name)
		}
		return true
	})
	return seq
}

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- check 3: cyclic waits-for between rank-pinned branches -----------------

// checkWaitCycles builds a waits-for graph between rank-pinned branches
// of one function: an edge K→L means rank K blocks in a receive from
// rank L before its first send to L (sends are eager, so a send before
// the receive would unblock L). A cycle is a guaranteed runtime
// deadlock; the diagnostic names every endpoint.
func checkWaitCycles(pass *Pass, ops []*commOp) {
	// Group ops by (cond comm, pinned rank), preserving program order.
	type branchKey struct {
		comm string
		rank int64
	}
	branches := map[branchKey][]*commOp{}
	var keys []branchKey
	for _, op := range ops {
		comm, val, ok := op.pinnedRank()
		if !ok {
			continue
		}
		k := branchKey{comm, val}
		if _, seen := branches[k]; !seen {
			keys = append(keys, k)
		}
		branches[k] = append(branches[k], op)
	}
	if len(keys) < 2 {
		return
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].comm != keys[j].comm {
			return keys[i].comm < keys[j].comm
		}
		return keys[i].rank < keys[j].rank
	})

	// waitEdge[K] = the blocking receive op and peer L it waits on.
	type edge struct {
		to   branchKey
		recv *commOp
	}
	edges := map[branchKey][]edge{}
	for _, k := range keys {
		firstSend := map[int64]int{}
		for i, op := range branches[k] {
			if op.kind == opSend && op.peer.kind == symConst {
				if _, seen := firstSend[op.peer.val]; !seen {
					firstSend[op.peer.val] = i
				}
			}
		}
		for i, op := range branches[k] {
			if op.kind != opRecv || !op.blocks || op.peer.kind != symConst {
				continue
			}
			l := branchKey{k.comm, op.peer.val}
			if l == k {
				continue
			}
			if s, ok := firstSend[op.peer.val]; ok && s < i {
				continue // sent to the peer before blocking on it
			}
			edges[k] = append(edges[k], edge{to: l, recv: op})
			break // only the first blocking wait per branch can deadlock it
		}
	}

	// DFS for a cycle over the small branch graph.
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := map[branchKey]int{}
	var stack []edge
	var stackKeys []branchKey
	var cycle []edge
	var dfs func(k branchKey) bool
	dfs = func(k branchKey) bool {
		state[k] = inStack
		stackKeys = append(stackKeys, k)
		for _, e := range edges[k] {
			if _, exists := branches[e.to]; !exists {
				continue // waits on a rank with no pinned branch here
			}
			switch state[e.to] {
			case inStack:
				// Found a cycle: slice the stack from e.to onward.
				stack = append(stack, e)
				for i, sk := range stackKeys {
					if sk == e.to {
						cycle = append([]edge{}, stack[i:]...)
						return true
					}
				}
				cycle = append([]edge{}, stack...)
				return true
			case unvisited:
				stack = append(stack, e)
				if dfs(e.to) {
					return true
				}
				stack = stack[:len(stack)-1]
			}
		}
		stackKeys = stackKeys[:len(stackKeys)-1]
		state[k] = done
		return false
	}
	for _, k := range keys {
		if state[k] == unvisited {
			stack = stack[:0]
			stackKeys = stackKeys[:0]
			if dfs(k) {
				break
			}
		}
	}
	if len(cycle) == 0 {
		return
	}
	var legs []string
	for _, e := range cycle {
		comm, val, _ := e.recv.pinnedRank()
		legs = append(legs, fmt.Sprintf("rank %d of %s blocks in %s from rank %d (%s) before any send to it",
			val, comm, e.recv.method, e.recv.peer.val, pass.at(e.recv.pos)))
	}
	pass.Reportf(cycle[0].recv.pos,
		"cyclic waits-for between rank-pinned branches — guaranteed deadlock the event executor would only catch at runtime: %s",
		strings.Join(legs, "; "))
}
