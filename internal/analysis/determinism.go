package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the virtual-time reproducibility contract inside
// the simulation-critical packages: simulated code must never read the
// host clock, never draw from the process-global math/rand state, and
// never let Go's randomised map iteration order leak into results.
//
// Files carrying a //lint:eventdriven pragma comment are additionally
// held to the event-executor hot-path contract: they run on the
// single-threaded event loop, whose ordering guarantees rest on there
// being no concurrency inside it, so goroutine spawns, channel traffic
// and sync-package locking are flagged (sync/atomic is exempt — the
// abort flag is the one sanctioned cross-thread signal).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid host wall-clock reads, global math/rand and " +
		"order-dependent map iteration in simulation-critical packages, " +
		"and concurrency primitives in //lint:eventdriven hot-path files",
	SimCriticalOnly: true,
	Run:             runDeterminism,
}

// eventDrivenPragma marks a file as event-executor hot-path code.
const eventDrivenPragma = "lint:eventdriven"

// isEventDrivenFile reports whether f carries the //lint:eventdriven
// pragma (anywhere in the file, conventionally in the package doc).
func isEventDrivenFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if strings.TrimSpace(text) == eventDrivenPragma {
				return true
			}
		}
	}
	return false
}

// forbiddenTimeFuncs are the package-level time functions that observe or
// schedule against the host clock. Host-side code that legitimately needs
// them (the deadlock watchdog, benchmarks) carries a reviewed
// //lint:allow determinism suppression.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the math/rand package-level constructors that feed
// an explicitly seeded generator; everything else at package level draws
// from the shared process-seeded source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		hot := isEventDrivenFile(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkHostTimeAndRand(pass, n)
				if hot {
					checkEventDrivenCall(pass, n)
				}
			case *ast.RangeStmt:
				checkMapRangeOrder(pass, n)
			case *ast.GoStmt:
				if hot {
					pass.Reportf(n.Pos(),
						"go statement in an event-driven hot-path file; ranks are coroutines on the loop thread — schedule work through the event heap instead of spawning goroutines")
				}
			case *ast.SendStmt:
				if hot {
					pass.Reportf(n.Pos(),
						"channel send in an event-driven hot-path file; the event loop is single-threaded — wake ranks through the loop's queues, not channels")
				}
			case *ast.UnaryExpr:
				if hot && n.Op == token.ARROW {
					pass.Reportf(n.Pos(),
						"channel receive in an event-driven hot-path file; the event loop is single-threaded — blocking operations must park via coroutine yield, not channels")
				}
			case *ast.SelectStmt:
				if hot {
					pass.Reportf(n.Pos(),
						"select in an event-driven hot-path file; the event loop is single-threaded — multiplex wakeups through the event heap, not channels")
				}
			}
			return true
		})
	}
}

// checkEventDrivenCall flags concurrency-primitive calls inside
// //lint:eventdriven files: channel construction/teardown and
// sync-package locking (sync/atomic stays exempt — the abort flag is the
// sanctioned cross-thread signal).
func checkEventDrivenCall(pass *Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			if (b.Name() == "make" || b.Name() == "close") && len(call.Args) > 0 {
				if t := pass.typeOf(call.Args[0]); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(call.Pos(),
							"%s of a channel in an event-driven hot-path file; the event loop is single-threaded — use the loop's queues", b.Name())
					}
				}
			}
			return
		}
	}
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if tn := namedTypeName(sig.Recv().Type()); tn != "" {
			name = tn + "." + name
		}
	}
	pass.Reportf(call.Pos(),
		"sync.%s call in an event-driven hot-path file; the loop's hot path must stay lock-free (sync/atomic is exempt)", name)
}

func checkHostTimeAndRand(pass *Pass, call *ast.CallExpr) {
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Float64, (*time.Timer).Stop) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads or schedules against the host clock; simulated code must take time from the mpi virtual clock (host-side code needs a //lint:allow determinism suppression)",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the process-global generator; thread a seeded *rand.Rand instead", fn.Name())
		}
	}
}

// checkMapRangeOrder flags `range` over a map whose body's side effects
// depend on iteration order: appending to an outer slice, writing through
// an index of an outer slice, or sending on a channel. The standard fix
// is sorted-key iteration (order.SortedKeys). The collect-keys idiom —
// a body that only appends the loop variables to one outer slice, to be
// sorted afterwards — is exempt, since it is the first half of that fix.
func checkMapRangeOrder(pass *Pass, rs *ast.RangeStmt) {
	t := pass.typeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if isKeyCollectLoop(pass, rs) {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkOrderedWrite(pass, rs, lhs, n)
			}
		case *ast.IncDecStmt:
			checkOrderedWrite(pass, rs, n.X, nil)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration publishes results in map order; iterate sorted keys (order.SortedKeys)")
		}
		return true
	})
}

// checkOrderedWrite reports order-dependent writes from within a map
// range: appends to an outer slice and index writes into an outer slice.
func checkOrderedWrite(pass *Pass, rs *ast.RangeStmt, lhs ast.Expr, assign *ast.AssignStmt) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		base := ast.Unparen(lhs.X)
		bt := pass.typeOf(base)
		if bt == nil {
			return
		}
		if _, ok := bt.Underlying().(*types.Slice); !ok {
			return // map writes are keyed, not ordered; arrays behave like slices but are rare
		}
		if id, ok := base.(*ast.Ident); ok && pass.declaredWithin(id, rs) {
			return
		}
		pass.Reportf(lhs.Pos(),
			"write to %s[...] inside map iteration depends on map order when indices collide or values accumulate; iterate sorted keys (order.SortedKeys)",
			exprString(base))
	case *ast.Ident, *ast.SelectorExpr:
		if assign == nil {
			return
		}
		if id, ok := lhs.(*ast.Ident); ok && pass.declaredWithin(id, rs) {
			return
		}
		// slice = append(slice, ...) growing an outer slice in map order.
		for _, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if args, ok := appendCall(pass, call); ok && len(args) > 0 &&
				exprString(ast.Unparen(args[0])) == exprString(lhs) {
				pass.Reportf(lhs.Pos(),
					"append to %s inside map iteration records results in map order; collect keys, sort them, then iterate (order.SortedKeys)",
					exprString(lhs))
			}
		}
	}
}

// isKeyCollectLoop matches the allowed idiom: a body consisting solely of
// one append of the loop variables into an outer slice —
//
//	for k := range m { keys = append(keys, k) }
//
// — which is deterministic once the caller sorts the collected keys.
func isKeyCollectLoop(pass *Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	args, ok := appendCall(pass, call)
	if !ok || len(args) < 2 {
		return false
	}
	if exprString(ast.Unparen(args[0])) != exprString(ast.Unparen(assign.Lhs[0])) {
		return false
	}
	key, ok := ast.Unparen(rs.Key).(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := pass.Info.Defs[key]
	if keyObj == nil {
		keyObj = pass.Info.Uses[key]
	}
	for _, arg := range args[1:] {
		// Only the key may be collected: keys are re-sorted by the caller,
		// whereas collecting values preserves map order.
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || keyObj == nil || pass.Info.Uses[id] != keyObj {
			return false
		}
	}
	return true
}
