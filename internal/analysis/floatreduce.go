package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatReduce guards reproducible floating-point reductions in the
// simulation-critical packages. Float addition is not associative, so an
// accumulation whose term order is nondeterministic — iterating a map, or
// merging goroutine results as they arrive — produces run-to-run drift
// that the bitwise-reproducibility tests then catch far from the cause.
// Flagged:
//
//   - sum += expr (or sum = sum + expr, sum -= expr) on a float inside
//     `range` over a map, unless the loop iterates sorted keys;
//   - the same accumulation inside `range` over a channel or a
//     select/receive loop, where arrival order is scheduler-dependent.
//
// The fix is order.SortedKeys (or order.SumSorted) for maps, and a
// rank/index-ordered merge for concurrent producers.
var FloatReduce = &Analyzer{
	Name: "floatreduce",
	Doc: "flag floating-point accumulation over map-ordered or " +
		"goroutine-ordered data in simulation-critical packages",
	SimCriticalOnly: true,
	Run:             runFloatReduce,
}

func runFloatReduce(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.typeOf(rs.X)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				checkFloatAccum(pass, rs, "map iteration order")
			case *types.Chan:
				checkFloatAccum(pass, rs, "channel arrival order")
			}
			return true
		})
	}
}

// checkFloatAccum flags float accumulations into variables declared
// outside the loop. Accumulating into a loop-local (e.g. a per-key
// sub-sum that is then stored keyed) is fine; it is the cross-iteration
// accumulator whose result depends on term order.
func checkFloatAccum(pass *Pass, rs *ast.RangeStmt, orderKind string) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 {
			return true
		}
		lhs := ast.Unparen(assign.Lhs[0])
		lt := pass.typeOf(lhs)
		if lt == nil || !isFloat(lt) {
			return true
		}
		accumulates := false
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
			accumulates = true
		case token.ASSIGN:
			// sum = sum + x / sum = x + sum
			if bin, ok := ast.Unparen(assign.Rhs[0]).(*ast.BinaryExpr); ok &&
				(bin.Op == token.ADD || bin.Op == token.SUB || bin.Op == token.MUL) {
				ls := exprString(lhs)
				accumulates = exprString(ast.Unparen(bin.X)) == ls || exprString(ast.Unparen(bin.Y)) == ls
			}
		}
		if !accumulates {
			return true
		}
		if id, ok := lhs.(*ast.Ident); ok && pass.declaredWithin(id, rs) {
			return true // loop-local sub-accumulator
		}
		// Keyed writes acc[k] += v are order-independent per key only if the
		// index is the loop key itself; conservatively allow index writes —
		// the determinism analyzer covers colliding index writes separately.
		if _, ok := lhs.(*ast.IndexExpr); ok {
			return true
		}
		pass.Reportf(assign.Pos(),
			"float accumulation into %s depends on %s: addition is not associative, so the sum drifts run to run; iterate sorted keys (order.SortedKeys/SumSorted) or merge in a fixed order",
			exprString(lhs), orderKind)
		return true
	})
}
