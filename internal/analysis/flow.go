package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// This file is the suite's shared dataflow core: per-function def-use
// chains over the type-checked AST, used to resolve rank, tag, peer and
// communicator expressions to symbolic values (reaching definitions).
// It is deliberately lightweight — a local variable resolves through its
// definition only when exactly one assignment reaches every use (single
// static definition, address never taken); everything else degrades to
// an opaque value, so analyses built on it err toward silence rather
// than false positives.

// symKind classifies a resolved expression.
type symKind uint8

const (
	// symOpaque is an expression the flow core cannot pin down.
	symOpaque symKind = iota
	// symConst is an integer constant (literal, named const, folded expr).
	symConst
	// symRank is comm.Rank() (or comm.WorldRank(), or the runtime's own
	// rank field) plus a constant delta: rank, rank+1, rank-2, ...
	symRank
)

// symVal is the symbolic value of one expression.
type symVal struct {
	kind symKind
	// val is the constant for symConst, the delta for symRank.
	val int64
	// comm identifies the communicator whose rank symRank reads.
	comm string
}

func constSym(v int64) symVal { return symVal{kind: symConst, val: v} }

// funcFlow holds the reaching-definition chains of one function body.
type funcFlow struct {
	pass *Pass
	// defs maps each local object to every expression assigned to it; a
	// nil entry records an untraceable definition (tuple assignment,
	// range variable, ++/--).
	defs map[types.Object][]ast.Expr
	// addrTaken marks objects whose address escapes (&x): any aliased
	// write invalidates the chain, so resolution stops at them.
	addrTaken map[types.Object]bool
}

// newFuncFlow builds the def-use chains for fn's body (including nested
// function literals, whose assignments conservatively join the chains).
func newFuncFlow(pass *Pass, body *ast.BlockStmt) *funcFlow {
	fl := &funcFlow{
		pass:      pass,
		defs:      make(map[types.Object][]ast.Expr),
		addrTaken: make(map[types.Object]bool),
	}
	record := func(id *ast.Ident, rhs ast.Expr) {
		if id.Name == "_" {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil {
			fl.defs[obj] = append(fl.defs[obj], rhs)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			} else {
				// Tuple assignment from one call: untraceable.
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, nil)
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok {
				record(id, nil)
			}
		case *ast.RangeStmt:
			for _, e := range [2]ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					record(id, nil)
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if i < len(vs.Values) {
						record(id, vs.Values[i])
					}
					// A var with no initializer keeps zero defs: the zero
					// value is not a protocol-relevant constant.
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						fl.addrTaken[obj] = true
					}
				}
			}
		}
		return true
	})
	return fl
}

// singleDef returns the unique traceable definition of obj, if there is
// exactly one and obj's address is never taken.
func (fl *funcFlow) singleDef(obj types.Object) (ast.Expr, bool) {
	if fl.addrTaken[obj] {
		return nil, false
	}
	defs := fl.defs[obj]
	if len(defs) != 1 || defs[0] == nil {
		return nil, false
	}
	return defs[0], true
}

// resolve reduces e to a symbolic value by chasing constants, Rank()
// calls and single-definition locals.
func (fl *funcFlow) resolve(e ast.Expr) symVal {
	return fl.resolveGuarded(e, make(map[types.Object]bool))
}

func (fl *funcFlow) resolveGuarded(e ast.Expr, visiting map[types.Object]bool) symVal {
	if e == nil {
		return symVal{}
	}
	// Constants first: go/types has already folded const expressions.
	if tv, ok := fl.pass.Info.Types[e]; ok && tv.Value != nil {
		if tv.Value.Kind() == constant.Int {
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				return constSym(v)
			}
		}
		return symVal{}
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := fl.pass.Info.Uses[e]
		if obj == nil || visiting[obj] {
			return symVal{}
		}
		def, ok := fl.singleDef(obj)
		if !ok {
			return symVal{}
		}
		visiting[obj] = true
		v := fl.resolveGuarded(def, visiting)
		delete(visiting, obj)
		return v
	case *ast.CallExpr:
		if recv, ok := rankCall(fl.pass, e); ok {
			return symVal{kind: symRank, comm: fl.commIDOfRendered(e, recv)}
		}
	case *ast.SelectorExpr:
		// The runtime's own rank field (c.rank) inside internal/mpi.
		if (e.Sel.Name == "rank" || e.Sel.Name == "worldRank") && isCommReceiver(fl.pass, e.X) {
			return symVal{kind: symRank, comm: fl.commID(e.X)}
		}
	case *ast.BinaryExpr:
		x := fl.resolveGuarded(e.X, visiting)
		y := fl.resolveGuarded(e.Y, visiting)
		switch e.Op {
		case token.ADD:
			if x.kind == symRank && y.kind == symConst {
				return symVal{kind: symRank, comm: x.comm, val: x.val + y.val}
			}
			if x.kind == symConst && y.kind == symRank {
				return symVal{kind: symRank, comm: y.comm, val: y.val + x.val}
			}
		case token.SUB:
			if x.kind == symRank && y.kind == symConst {
				return symVal{kind: symRank, comm: x.comm, val: x.val - y.val}
			}
		}
	}
	return symVal{}
}

// commID resolves a communicator expression to an identity string:
// single-definition locals unwrap to their defining expression, so `w :=
// c` and later uses of w compare equal to c within one function.
func (fl *funcFlow) commID(e ast.Expr) string {
	return fl.commIDGuarded(e, make(map[types.Object]bool))
}

// commIDOfRendered is commID for a receiver already rendered by
// rankCall; re-resolves from the call's receiver expression so local
// aliases still unify.
func (fl *funcFlow) commIDOfRendered(call *ast.CallExpr, rendered string) string {
	if sel, ok := methodCall(call); ok {
		return fl.commID(sel.X)
	}
	return rendered
}

func (fl *funcFlow) commIDGuarded(e ast.Expr, visiting map[types.Object]bool) string {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if obj := fl.pass.Info.Uses[id]; obj != nil && !visiting[obj] {
			if def, ok := fl.singleDef(obj); ok && isCommReceiver(fl.pass, def) {
				visiting[obj] = true
				s := fl.commIDGuarded(def, visiting)
				delete(visiting, obj)
				return s
			}
		}
	}
	return exprString(e)
}

// sameTag reports whether a send tag could match a recv tag: equal
// constants match, and an opaque side is assumed compatible.
func sameTag(send, recv symVal) bool {
	if send.kind != symConst || recv.kind != symConst {
		return true
	}
	return send.val == recv.val
}
