package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc flags heap-allocating constructs introduced into code marked
// as a performance hot path. A file-level `//perf:hotpath` comment marks
// every function in the file; the same marker in a function's doc
// comment marks just that function. Inside marked code the analyzer
// reports:
//
//   - function literals (closures allocate their environment);
//   - make/new and address-taken or reference-typed composite literals;
//   - append (growth reallocates the backing array);
//   - implicit boxing: a concrete value passed, assigned, returned or
//     converted into an interface.
//
// These are exactly the constructs that silently moved the runtime's
// per-op allocation count before the pooled-message work; reviewed
// occurrences (amortised growth, setup paths) carry a //lint:allow with
// the reason.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag new heap-allocating constructs (closures, boxing, append " +
		"growth, make/new) in code marked //perf:hotpath",
	Run: runHotAlloc,
}

const hotpathMarker = "perf:hotpath"

// hasMarker reports whether any comment in the group is the marker.
func hasMarker(groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			if strings.HasPrefix(strings.TrimSpace(text), hotpathMarker) {
				return true
			}
		}
	}
	return false
}

// fileMarked reports whether the file carries a top-level marker: in
// the package doc comment or any comment group above the package
// clause. Markers further down belong to individual declarations.
func fileMarked(f *ast.File) bool {
	if hasMarker(f.Doc) {
		return true
	}
	for _, g := range f.Comments {
		if g.End() < f.Package && hasMarker(g) {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Files {
		whole := fileMarked(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if whole || hasMarker(fd.Doc) {
				checkHotFunc(pass, fd)
			}
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates its environment on the hot path; hoist it or predeclare the function")
			return false // the literal's body is cold until invoked elsewhere
		case *ast.CallExpr:
			checkHotCall(pass, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address-taken composite literal allocates on the hot path")
				}
			}
		case *ast.CompositeLit:
			if t := pass.typeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s literal allocates its backing store on the hot path", exprString(n.Type))
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					checkBoxing(pass, pass.typeOf(n.Lhs[i]), rhs, "assignment")
				}
			}
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr) {
	// Builtins and interface conversions first.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array on the hot path; preallocate or reuse a buffer")
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates on the hot path", b.Name())
			}
			return
		}
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x): boxing when T is an interface.
		if len(call.Args) == 1 {
			checkBoxing(pass, tv.Type, call.Args[0], "conversion")
		}
		return
	}
	sig, _ := pass.typeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice: no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxing(pass, pt, arg, "argument")
	}
}

// checkBoxing reports a concrete value flowing into an interface.
func checkBoxing(pass *Pass, dst types.Type, src ast.Expr, what string) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	st := pass.typeOf(src)
	if st == nil {
		return
	}
	if _, ok := st.Underlying().(*types.Interface); ok {
		return // interface-to-interface: no new box
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if _, ok := st.Underlying().(*types.Pointer); ok {
		return // pointers fit an iface word without allocating
	}
	pass.Reportf(src.Pos(), "%s boxes %s into an interface on the hot path; the box allocates", what, exprString(src))
}
