package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader discovers, parses and type-checks the module's packages using
// only the standard library: module-internal imports are resolved
// recursively from source, everything else goes through the compiler's
// source importer (which type-checks the standard library from GOROOT).
// This is what lets cpxlint run without golang.org/x/tools.
type Loader struct {
	Fset *token.FileSet
	// IncludeTests adds _test.go files of the package itself (not
	// external _test packages) to the analysis.
	IncludeTests bool

	moduleRoot string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
	typeErrs   []error
}

// NewLoader creates a loader rooted at the module directory containing
// go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: loader needs a module root: %w", err)
	}
	modulePath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modulePath = strings.TrimSpace(rest)
			break
		}
	}
	if modulePath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", moduleRoot)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleRoot: moduleRoot,
		modulePath: modulePath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// Import implements types.Importer: module-internal paths load from
// source; everything else (stdlib) delegates to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps an import path inside the module to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.modulePath {
		return l.moduleRoot
	}
	rel := strings.TrimPrefix(path, l.modulePath+"/")
	return filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
}

// load parses and type-checks one module package (cached, cycle-checked).
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// With IncludeTests, external test packages (package foo_test) cannot
	// join the same type-checked unit; keep only the package's own files.
	if len(files) > 1 {
		base := basePackageName(files)
		var kept []*ast.File
		for _, f := range files {
			if f.Name.Name == base {
				kept = append(kept, f)
			}
		}
		files = kept
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			l.typeErrs = append(l.typeErrs, err)
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg := &Package{ImportPath: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// basePackageName picks the non-_test package name among files.
func basePackageName(files []*ast.File) string {
	for _, f := range files {
		if name := f.Name.Name; !strings.HasSuffix(name, "_test") {
			return name
		}
	}
	return files[0].Name.Name
}

// TypeErrors returns every type-checking error seen so far. The tree is
// expected to compile (the tier-1 gate builds it), so cpxlint treats any
// entry here as a load failure.
func (l *Loader) TypeErrors() []error { return l.typeErrs }

// LoadAll walks the module and loads every package, skipping testdata,
// vendor and hidden directories. Results are sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.moduleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.moduleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "node_modules") {
			return filepath.SkipDir
		}
		hasGo := false
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
				if strings.HasSuffix(e.Name(), "_test.go") && !l.IncludeTests {
					continue
				}
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.moduleRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.modulePath)
		} else {
			paths = append(paths, l.modulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, fmt.Errorf("analysis: loading %s: %w", p, err)
		}
		out = append(out, pkg)
	}
	return out, nil
}
