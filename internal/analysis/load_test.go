package analysis_test

import (
	"os/exec"
	"sort"
	"strings"
	"testing"

	"cpx/internal/analysis"
)

// TestLoaderCoversWholeModule asserts the Loader's sweep matches the go
// tool's own package list — in particular that cmd/... and the root
// package are analyzed, not just internal/.... A package the loader
// misses is a package the lint gate silently stops guarding.
func TestLoaderCoversWholeModule(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	root := "../.."
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	var got []string
	sawCmd := false
	for _, p := range pkgs {
		got = append(got, p.ImportPath)
		if strings.HasPrefix(p.ImportPath, "cpx/cmd/") {
			sawCmd = true
		}
	}
	if !sawCmd {
		t.Fatalf("loader swept no cpx/cmd/... packages: %v", got)
	}

	cmd := exec.Command("go", "list", "./...")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		t.Skipf("go list unavailable: %v", err)
	}
	var want []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			want = append(want, line)
		}
	}
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("loader package set diverges from `go list ./...`:\n  loader: %v\n  go list: %v", got, want)
	}
}
