package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MPIUse enforces correct use of the mpi runtime's communicator API:
// collectives must be reached by every rank of their communicator (a
// collective lexically inside a branch conditioned on that communicator's
// rank is the classic deadlock/mismatch), and every *Request returned by
// Isend/Irecv must reach a Wait.
var MPIUse = &Analyzer{
	Name: "mpiuse",
	Doc: "flag collectives inside rank-conditioned branches and " +
		"Isend/Irecv requests that never reach a Wait",
	Run: runMPIUse,
}

// collectiveMethods are the Comm methods every member rank must call.
var collectiveMethods = map[string]bool{
	"Barrier": true, "Bcast": true, "Reduce": true,
	"Allreduce": true, "AllreduceScalar": true, "AllreduceInt": true,
	"Gather": true, "GatherInts": true, "Allgather": true, "AllgatherInts": true,
	"Alltoallv": true, "AlltoallvInts": true, "Scatter": true,
	"ExscanSum": true, "Split": true, "Dup": true,
}

// rankWordIdents are bare identifier names treated as holding a rank even
// when their origin cannot be traced to a Rank() call (e.g. parameters).
var rankWordIdents = map[string]bool{
	"rank": true, "myrank": true, "worldrank": true, "rnk": true,
}

func runMPIUse(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRankConditionedCollectives(pass, fd.Body)
			checkRequests(pass, fd.Body)
		}
	}
}

// isCommReceiver reports whether expr has the communicator type (a named
// type called Comm, by value or pointer — matched by name so fixtures and
// future comm wrappers are covered alike).
func isCommReceiver(pass *Pass, expr ast.Expr) bool {
	return namedTypeName(pass.typeOf(expr)) == "Comm"
}

// rankCall matches x.Rank() / x.WorldRank() on a Comm and returns the
// receiver rendering.
func rankCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := methodCall(call)
	if !ok || (sel.Sel.Name != "Rank" && sel.Sel.Name != "WorldRank") {
		return "", false
	}
	if !isCommReceiver(pass, sel.X) {
		return "", false
	}
	return exprString(ast.Unparen(sel.X)), true
}

// condRankReceivers analyzes a branch condition and returns the rendered
// receivers of every communicator whose rank the condition reads, plus a
// wildcard flag for rank-named identifiers with no traceable origin.
func condRankReceivers(pass *Pass, cond ast.Expr, rankVars map[types.Object]string) (recvs map[string]bool, wildcard bool) {
	recvs = map[string]bool{}
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if r, ok := rankCall(pass, n); ok {
				recvs[r] = true
			}
		case *ast.SelectorExpr:
			// Internal field access (c.rank) inside the mpi package itself.
			if (n.Sel.Name == "rank" || n.Sel.Name == "worldRank") && isCommReceiver(pass, n.X) {
				recvs[exprString(ast.Unparen(n.X))] = true
			}
		case *ast.Ident:
			if obj := pass.Info.Uses[n]; obj != nil {
				if r, ok := rankVars[obj]; ok {
					recvs[r] = true
					return true
				}
			}
			if rankWordIdents[strings.ToLower(n.Name)] {
				wildcard = true
			}
		}
		return true
	})
	return recvs, wildcard
}

// collectRankVars maps local variables assigned from x.Rank() or
// x.WorldRank() to the rendering of x.
func collectRankVars(pass *Pass, body *ast.BlockStmt) map[types.Object]string {
	out := map[types.Object]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			recv, ok := rankCall(pass, call)
			if !ok {
				continue
			}
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				out[obj] = recv
			} else if obj := pass.Info.Uses[id]; obj != nil {
				out[obj] = recv
			}
		}
		return true
	})
	return out
}

// rankCond is one enclosing if/switch condition that reads a rank.
type rankCond struct {
	recvs    map[string]bool
	wildcard bool
}

func checkRankConditionedCollectives(pass *Pass, body *ast.BlockStmt) {
	rankVars := collectRankVars(pass, body)

	var walk func(n ast.Node, conds []rankCond)
	walkList := func(list []ast.Stmt, conds []rankCond) {
		for _, s := range list {
			walk(s, conds)
		}
	}
	pushCond := func(conds []rankCond, exprs ...ast.Expr) []rankCond {
		merged := rankCond{recvs: map[string]bool{}}
		for _, e := range exprs {
			if e == nil {
				continue
			}
			recvs, wild := condRankReceivers(pass, e, rankVars)
			for r := range recvs {
				merged.recvs[r] = true
			}
			merged.wildcard = merged.wildcard || wild
		}
		if len(merged.recvs) == 0 && !merged.wildcard {
			return conds
		}
		return append(append([]rankCond{}, conds...), merged)
	}
	walk = func(n ast.Node, conds []rankCond) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			walk(n.Init, conds)
			inner := pushCond(conds, n.Cond)
			walkList(n.Body.List, inner)
			walk(n.Else, inner)
		case *ast.SwitchStmt:
			walk(n.Init, conds)
			// The tag alone decides which case runs; case expressions can
			// also read ranks in a tagless switch.
			for _, cc := range n.Body.List {
				clause := cc.(*ast.CaseClause)
				inner := pushCond(conds, append([]ast.Expr{n.Tag}, clause.List...)...)
				walkList(clause.Body, inner)
			}
		case *ast.BlockStmt:
			walkList(n.List, conds)
		case *ast.CallExpr:
			if sel, ok := methodCall(n); ok && collectiveMethods[sel.Sel.Name] && isCommReceiver(pass, sel.X) {
				recv := exprString(ast.Unparen(sel.X))
				for _, c := range conds {
					if c.recvs[recv] || c.wildcard {
						pass.Reportf(n.Pos(),
							"collective %s.%s inside a branch conditioned on the rank: every rank of the communicator must reach a collective, or ranks deadlock/mismatch",
							recv, sel.Sel.Name)
						break
					}
				}
			}
			for _, child := range n.Args {
				walk(child, conds)
			}
			walk(n.Fun, conds)
		default:
			// Generic traversal preserving the condition stack.
			children(n, func(c ast.Node) { walk(c, conds) })
		}
	}
	walkList(body.List, nil)
}

// children invokes fn on each direct child of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}

// ---- request tracking -------------------------------------------------------

// checkRequests flags Isend/Irecv whose *Request is discarded outright or
// assigned to a variable that never reaches a Wait (or any other
// consuming use: passed to a call such as WaitAll, stored, returned).
func checkRequests(pass *Pass, body *ast.BlockStmt) {
	reqCall := func(e ast.Expr) (*ast.CallExpr, string, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, "", false
		}
		sel, ok := methodCall(call)
		if !ok || (sel.Sel.Name != "Isend" && sel.Sel.Name != "Irecv") {
			return nil, "", false
		}
		if !isCommReceiver(pass, sel.X) {
			return nil, "", false
		}
		return call, sel.Sel.Name, true
	}

	tracked := map[types.Object]string{} // request var -> originating method
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, name, ok := reqCall(n.X); ok {
				pass.Reportf(call.Pos(), "%s result discarded: the *Request must reach a Wait or WaitAll", name)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, name, ok := reqCall(rhs)
				if !ok {
					continue
				}
				id, isIdent := n.Lhs[i].(*ast.Ident)
				if !isIdent {
					continue // stored straight into a field/slice: consuming
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "%s result discarded: the *Request must reach a Wait or WaitAll", name)
					continue
				}
				if obj := pass.Info.Defs[id]; obj != nil {
					tracked[obj] = name
				}
			}
		}
		return true
	})

	for obj, origin := range tracked {
		if !requestConsumed(pass, body, obj) {
			pass.Reportf(obj.Pos(), "*Request %s from %s never reaches a Wait/WaitAll", obj.Name(), origin)
		}
	}
}

// requestConsumed reports whether any use of obj inside body consumes the
// request: a .Wait* method call, being passed to any call (WaitAll,
// append, helper), stored into a field/slice/map, sent, or returned.
func requestConsumed(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	consumed := false
	var stack []ast.Node
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		stack = append(stack, n)
		defer func() { stack = stack[:len(stack)-1] }()
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			if identConsumes(stack) {
				consumed = true
			}
		}
		for _, c := range childNodes(n) {
			if consumed {
				return
			}
			visit(c)
		}
	}
	visit(body)
	return consumed
}

// identConsumes inspects the enclosing node chain of a request-variable
// use (innermost last) and decides whether that use consumes the request.
func identConsumes(stack []ast.Node) bool {
	// stack[len-1] is the ident itself.
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.SelectorExpr:
			// r.Wait() — or any method that could complete it.
			return strings.HasPrefix(n.Sel.Name, "Wait")
		case *ast.CallExpr:
			// Passed as an argument (WaitAll(reqs...), append, helpers).
			return true
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.IndexExpr, *ast.KeyValueExpr:
			return true
		case *ast.AssignStmt:
			// On the RHS of a further assignment: aliased, assume consumed.
			for _, rhs := range n.Rhs {
				if containsPos(rhs, stack[len(stack)-1].Pos()) {
					return true
				}
			}
			return false
		case *ast.ExprStmt, *ast.BlockStmt:
			return false
		}
	}
	return false
}

func containsPos(n ast.Node, p token.Pos) bool {
	return n.Pos() <= p && p < n.End()
}

// childNodes collects the direct children of n.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	children(n, func(c ast.Node) { out = append(out, c) })
	return out
}
