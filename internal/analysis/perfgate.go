package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// This file is the perfgate: a compiler-fact gate that proves the
// repo's performance invariants at lint time instead of trusting code
// review. It runs `go build -gcflags='-m -m'` on the packages carrying
// perf annotations, parses the inlining and escape diagnostics the gc
// compiler emits, and checks them against two annotations placed in a
// function's doc comment:
//
//	//perf:inline    the function must stay within the inliner budget:
//	                 the compiler must report "can inline" for it. The
//	                 telemetry hooks and runtime charge paths carry this —
//	                 their measured overhead (BENCH_telemetry.json) is
//	                 only valid while they inline into the charge sites.
//
//	//perf:noescape  no parameter (receiver included) may leak to the
//	                 heap ("leaking param: x") and no local may be moved
//	                 to the heap inside the body ("moved to heap: x") —
//	                 i.e. calling the function never forces the caller's
//	                 arguments or its own locals into an allocation.
//	                 ("leaking param content" is deliberately exempt: it
//	                 does not force the argument itself off the stack.)
//
// A regression — a hook pushed over the inliner budget, a parameter
// escaping — fails `make check` with the compiler's own reason in the
// diagnostic. Findings are suppressible like any other rule with
// //lint:allow perfgate <reason>.

// PerfGateAnalyzer carries the rule name and documentation for perfgate
// diagnostics. It is not part of Analyzers(): PerfGate needs the module
// root and an external compiler run, so cmd/cpxlint invokes it
// separately with a Pass built on this analyzer.
var PerfGateAnalyzer = &Analyzer{
	Name: "perfgate",
	Doc: "verify //perf:inline and //perf:noescape annotations against the " +
		"gc compiler's inlining and escape-analysis facts (-gcflags='-m -m')",
}

// perfInlineMarker and perfNoescapeMarker are matched against doc
// comment lines.
const (
	perfInlineMarker   = "perf:inline"
	perfNoescapeMarker = "perf:noescape"
)

// perfAnnotation is one annotated function declaration.
type perfAnnotation struct {
	fn       *ast.FuncDecl
	name     string // rendered name, e.g. (*Collector).Received
	inline   bool
	noescape bool
}

// scanPerfAnnotations collects the //perf:inline and //perf:noescape
// annotations in a package's files.
func scanPerfAnnotations(files []*ast.File) []*perfAnnotation {
	var out []*perfAnnotation
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			a := &perfAnnotation{fn: fd, name: funcDisplayName(fd)}
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				switch {
				case strings.HasPrefix(text, perfInlineMarker):
					a.inline = true
				case strings.HasPrefix(text, perfNoescapeMarker):
					a.noescape = true
				}
			}
			if a.inline || a.noescape {
				out = append(out, a)
			}
		}
	}
	return out
}

// funcDisplayName renders fd the way the compiler's -m output does:
// Name for functions, (*Recv).Name or (Recv).Name for methods.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		return fmt.Sprintf("(*%s).%s", exprString(star.X), fd.Name.Name)
	}
	return fmt.Sprintf("(%s).%s", exprString(recv), fd.Name.Name)
}

// compilerFact is one parsed -m diagnostic, located by (file base, line).
type compilerFact struct {
	file string // basename of the source file
	line int
	kind factKind
	name string // function name (inline facts) or variable (escape facts)
	text string // the fact's message, for embedding in diagnostics
}

type factKind uint8

const (
	factCanInline factKind = iota
	factCannotInline
	factLeakingParam
	factMovedToHeap
)

var factRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// parseCompilerFacts extracts the facts perfgate checks from one
// `go build -gcflags=-m -m` stderr stream.
func parseCompilerFacts(out []byte) []compilerFact {
	var facts []compilerFact
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := factRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		line, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		fact := compilerFact{file: filepath.Base(m[1]), line: line, text: m[4]}
		msg := m[4]
		switch {
		case strings.HasPrefix(msg, "can inline "):
			fact.kind = factCanInline
			fact.name = strings.TrimPrefix(msg, "can inline ")
			if i := strings.Index(fact.name, " with cost"); i >= 0 {
				fact.name = fact.name[:i]
			}
		case strings.HasPrefix(msg, "cannot inline "):
			fact.kind = factCannotInline
			rest := strings.TrimPrefix(msg, "cannot inline ")
			if i := strings.Index(rest, ": "); i >= 0 {
				fact.name, fact.text = rest[:i], rest[i+2:]
			} else {
				fact.name, fact.text = rest, "no reason given"
			}
		case strings.HasPrefix(msg, "leaking param: "):
			fact.kind = factLeakingParam
			fact.name = strings.TrimSpace(strings.TrimPrefix(msg, "leaking param: "))
			// Keep only the summary form; the verbose flow lines repeat
			// the same fact with "with derefs" noise.
			if i := strings.IndexByte(fact.name, ' '); i >= 0 {
				continue
			}
		case strings.HasPrefix(msg, "moved to heap: "):
			fact.kind = factMovedToHeap
			fact.name = strings.TrimSpace(strings.TrimPrefix(msg, "moved to heap: "))
		default:
			continue
		}
		facts = append(facts, fact)
	}
	return facts
}

// PerfGate checks the pass's //perf:inline and //perf:noescape
// annotations against the gc compiler's own inlining and escape
// analysis, appending findings to pass.Diagnostics. It is a no-op (and
// runs no compiler) for packages without annotations. The pass should
// be built on PerfGateAnalyzer; err reports a failed build, which
// callers should treat like a load error.
func PerfGate(moduleRoot string, pass *Pass) error {
	annotations := scanPerfAnnotations(pass.Files)
	if len(annotations) == 0 {
		return nil
	}
	importPath := pass.Pkg.Path()
	cmd := exec.Command("go", "build", "-gcflags=-m -m", importPath)
	cmd.Dir = moduleRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("perfgate: go build -gcflags=-m -m %s: %v\n%s", importPath, err, out)
	}
	facts := parseCompilerFacts(out)

	// Index inline facts by (file, line) of the declaration and escape
	// facts by file for range scans.
	type key struct {
		file string
		line int
	}
	inlineFacts := map[key]compilerFact{}
	escapeByFile := map[string][]compilerFact{}
	for _, f := range facts {
		switch f.kind {
		case factCanInline, factCannotInline:
			inlineFacts[key{f.file, f.line}] = f
		case factLeakingParam, factMovedToHeap:
			escapeByFile[f.file] = append(escapeByFile[f.file], f)
		}
	}

	for _, a := range annotations {
		declPos := pass.Fset.Position(a.fn.Pos())
		base := filepath.Base(declPos.Filename)
		endLine := pass.Fset.Position(a.fn.End()).Line
		sigEnd := endLine
		if a.fn.Body != nil {
			sigEnd = pass.Fset.Position(a.fn.Body.Pos()).Line
		}
		if a.inline {
			switch f, ok := inlineFacts[key{base, declPos.Line}]; {
			case !ok:
				pass.Reportf(a.fn.Pos(),
					"%s is marked //perf:inline but the compiler emitted no inlining fact for it (unexported build issue?)", a.name)
			case f.kind == factCannotInline:
				pass.Reportf(a.fn.Pos(),
					"%s is marked //perf:inline but no longer inlines: %s — the hook overhead measured in the benchmarks assumes this call disappears",
					a.name, f.text)
			}
		}
		if a.noescape {
			for _, f := range escapeByFile[base] {
				switch f.kind {
				case factLeakingParam:
					// Parameters are declared between the func keyword and
					// the body's opening brace.
					if f.line >= declPos.Line && f.line <= sigEnd {
						pass.Reportf(a.fn.Pos(),
							"%s is marked //perf:noescape but parameter %s leaks to the heap: callers' arguments are forced into an allocation",
							a.name, f.name)
					}
				case factMovedToHeap:
					if f.line >= declPos.Line && f.line <= endLine {
						pass.Reportf(a.fn.Pos(),
							"%s is marked //perf:noescape but local %s is moved to the heap: the function allocates per call",
							a.name, f.name)
					}
				}
			}
		}
	}
	return nil
}
