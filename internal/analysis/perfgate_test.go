package analysis_test

import (
	"strings"
	"testing"

	"cpx/internal/analysis"
)

// loadPerfGateFixture loads the standalone fixture module under
// testdata/perfgate and runs the gate over its root package.
func runPerfGateFixture(t *testing.T) []analysis.Diagnostic {
	t.Helper()
	root := "testdata/perfgate"
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if errs := loader.TypeErrors(); len(errs) > 0 {
		t.Fatalf("type errors in fixture: %v", errs)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture module has %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	pass := &analysis.Pass{
		Analyzer: analysis.PerfGateAnalyzer,
		Fset:     loader.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := analysis.PerfGate(root, pass); err != nil {
		t.Fatalf("PerfGate: %v", err)
	}
	return pass.Diagnostics
}

// TestPerfGateFailures proves the gate actually fails when a
// //perf:inline function is pushed over the inliner budget or a
// //perf:noescape parameter/local escapes — and stays silent for the
// inlinable, non-escaping control.
func TestPerfGateFailures(t *testing.T) {
	diags := runPerfGateFixture(t)

	wants := []struct {
		fn, substr string
	}{
		{"tooBig", "marked //perf:inline but no longer inlines"},
		{"leaks", "parameter p leaks to the heap"},
		{"heapLocal", "local v is moved to the heap"},
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, w.fn) && strings.Contains(d.Message, w.substr) {
				found = true
				if d.Rule != "perfgate" {
					t.Errorf("%s: diagnostic rule = %q, want perfgate", w.fn, d.Rule)
				}
			}
		}
		if !found {
			t.Errorf("no diagnostic for %s containing %q; got %v", w.fn, w.substr, diags)
		}
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "fastAdd") {
			t.Errorf("control function fastAdd was flagged: %v", d)
		}
	}
	if len(diags) != len(wants) {
		t.Errorf("got %d diagnostics, want %d: %v", len(diags), len(wants), diags)
	}
}

// TestPerfGateNoAnnotationsIsFree asserts the gate never shells out for
// packages without perf annotations: an empty file set must return
// instantly with no findings and no error even with a bogus module root.
func TestPerfGateNoAnnotationsIsFree(t *testing.T) {
	pass := &analysis.Pass{Analyzer: analysis.PerfGateAnalyzer}
	if err := analysis.PerfGate("/nonexistent", pass); err != nil {
		t.Fatalf("PerfGate on unannotated package: %v", err)
	}
	if len(pass.Diagnostics) != 0 {
		t.Fatalf("unexpected diagnostics: %v", pass.Diagnostics)
	}
}
