package analysis

import (
	"go/ast"
	"go/types"
)

// PoolSafety guards the pooled-message lifecycle of the mpi runtime:
// a *message obtained from the pool (Recv, mailbox take) is only valid
// until releaseMessage returns it, and its Data payload aliases pooled or
// arena-owned storage. Three failure classes are flagged:
//
//  1. use of a message variable after releaseMessage(m) in the same block
//     (use-after-release: the pool may have already re-handed the memory);
//  2. storing a pooled payload (m.Data or an arena clone) into a struct
//     field, global or closure that outlives the handler scope;
//  3. storing the *message itself into long-lived storage.
//
// The safe patterns are copying the payload (copy, append to fresh slice)
// or copying the message value (latest = *m) before release.
var PoolSafety = &Analyzer{
	Name: "poolsafety",
	Doc: "flag use-after-release of pooled messages and pooled payload " +
		"slices escaping into long-lived storage",
	Run: runPoolSafety,
}

func runPoolSafety(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUseAfterRelease(pass, fd.Body)
			checkPayloadEscapes(pass, fd)
		}
	}
}

// isMessagePtr reports whether t is *message (the pooled runtime message
// type, matched by name so fixtures can declare their own stub).
func isMessagePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "message"
}

// releasedVar matches releaseMessage(m) / pool-release helpers and
// returns the released variable's object.
func releasedVar(pass *Pass, call *ast.CallExpr) types.Object {
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Name() != "releaseMessage" || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.Uses[id]
}

// checkUseAfterRelease walks each block linearly: once releaseMessage(m)
// executes, any later read of m (or m.Data etc.) in the same block is
// flagged until m is reassigned. Nested blocks are scanned recursively
// with a fresh released-set, so conditional releases do not poison the
// outer flow (a deliberate precision trade-off).
func checkUseAfterRelease(pass *Pass, body *ast.BlockStmt) {
	var scan func(b *ast.BlockStmt)
	scan = func(b *ast.BlockStmt) {
		released := map[types.Object]bool{}
		for _, stmt := range b.List {
			// Reads of released vars anywhere in this statement — except the
			// release call itself and reassignment targets.
			if len(released) > 0 {
				reportReleasedUses(pass, stmt, released)
			}
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					if obj := releasedVar(pass, call); obj != nil {
						released[obj] = true
					}
				}
			case *ast.AssignStmt:
				// Reassignment makes the variable safe again.
				for _, lhs := range s.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj := pass.Info.Uses[id]; obj != nil {
							delete(released, obj)
						} else if obj := pass.Info.Defs[id]; obj != nil {
							delete(released, obj)
						}
					}
				}
			}
			// Recurse into nested blocks with fresh state.
			ast.Inspect(stmt, func(n ast.Node) bool {
				if inner, ok := n.(*ast.BlockStmt); ok {
					scan(inner)
					return false
				}
				return true
			})
		}
	}
	scan(body)
}

// reportReleasedUses flags identifier reads of released message vars in
// stmt, skipping reassignment LHS positions and further release calls.
func reportReleasedUses(pass *Pass, stmt ast.Stmt, released map[types.Object]bool) {
	// Collect LHS idents of assignments so `m = ...` is not a "use".
	lhsIdents := map[*ast.Ident]bool{}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if assign, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range assign.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					lhsIdents[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(stmt, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || lhsIdents[id] {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !released[obj] {
			return true
		}
		if !isMessagePtr(obj.Type()) {
			return true
		}
		pass.Reportf(id.Pos(),
			"use of %s after releaseMessage(%s): the pooled message may already be reused; copy what you need before releasing",
			id.Name, id.Name)
		return true
	})
}

// ---- payload escape ---------------------------------------------------------

// pooledPayload reports whether e reads pooled/arena-owned storage: the
// Data field of a *message, or the result of an arena clone call.
func pooledPayload(pass *Pass, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if e.Sel.Name == "Data" && isMessagePtr(pass.typeOf(e.X)) {
			return exprString(e), true
		}
	case *ast.CallExpr:
		if sel, ok := methodCall(e); ok && sel.Sel.Name == "clone" &&
			namedTypeName(pass.typeOf(sel.X)) == "f64Arena" {
			return exprString(e), true
		}
	case *ast.SliceExpr:
		return pooledPayload(pass, e.X)
	case *ast.Ident:
		// A local alias of a pooled payload: data := m.Data; s.buf = data.
		if obj := pass.Info.Uses[e]; obj != nil {
			if src, ok := pass.payloadAliases[obj]; ok {
				return src, true
			}
		}
	}
	return "", false
}

// checkPayloadEscapes flags assignments that store a pooled payload or a
// *message into storage outliving the handler: struct fields, globals,
// map/slice elements of outer data structures, or captured closures'
// outer variables.
func checkPayloadEscapes(pass *Pass, fd *ast.FuncDecl) {
	// First pass: record local aliases `data := m.Data`.
	pass.payloadAliases = map[types.Object]string{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			src, ok := pooledPayload(pass, rhs)
			if !ok {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					pass.payloadAliases[obj] = src
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			target := ast.Unparen(assign.Lhs[i])
			if !escapesScope(pass, target, fd) {
				continue
			}
			if src, ok := pooledPayload(pass, rhs); ok {
				pass.Reportf(assign.Pos(),
					"storing pooled payload %s into %s outlives the message's lifetime: the slice is recycled on release; copy into a fresh slice instead",
					src, exprString(target))
				continue
			}
			if t := pass.typeOf(rhs); t != nil && isMessagePtr(t) {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil && pass.declaredWithin(id, fd) {
						pass.Reportf(assign.Pos(),
							"storing *message %s into %s outlives the pooled lifetime; copy the message value or its payload instead",
							id.Name, exprString(target))
					}
				}
			}
		}
		return true
	})
	pass.payloadAliases = nil
}

// escapesScope reports whether an assignment target outlives the function
// body: struct fields (s.field), globals, and element writes into
// non-local containers.
func escapesScope(pass *Pass, target ast.Expr, fd *ast.FuncDecl) bool {
	switch target := target.(type) {
	case *ast.SelectorExpr:
		// A field of anything — receiver, parameter, global — outlives the
		// handler unless the base itself is a local composite.
		if id, ok := ast.Unparen(target.X).(*ast.Ident); ok {
			return !localNonEscaping(pass, id, fd)
		}
		return true
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(target.X).(*ast.Ident); ok {
			return !localNonEscaping(pass, id, fd)
		}
		return true
	case *ast.Ident:
		obj := pass.Info.Uses[target]
		if obj == nil {
			return false // := definition of a local
		}
		// Package-level variable.
		return obj.Parent() == pass.Pkg.Scope()
	}
	return false
}

// localNonEscaping reports whether id is a variable declared inside fd —
// a plain local whose fields/elements die with the call.
func localNonEscaping(pass *Pass, id *ast.Ident, fd *ast.FuncDecl) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() > fd.Body.Pos() && obj.Pos() < fd.Body.End()
}
