package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression is one parsed //lint:allow directive.
type Suppression struct {
	Pos    token.Position
	Rule   string
	Reason string
}

// SuppressionSet indexes the //lint:allow directives of a package. A
// directive silences matching diagnostics on its own line and on the
// line immediately below it (so it can trail the offending statement or
// sit on its own line above it).
type SuppressionSet struct {
	// byFileLine maps filename -> line -> rules allowed on that line.
	byFileLine map[string]map[int][]Suppression
	// Malformed holds directives with a missing reason or unknown rule;
	// cmd/cpxlint reports these as errors so suppressions stay reviewed.
	Malformed []Diagnostic
}

const allowMarker = "lint:allow"

// CollectSuppressions parses every //lint:allow directive in files.
// validRules, when non-nil, is used to reject unknown rule names.
func CollectSuppressions(fset *token.FileSet, files []*ast.File, validRules map[string]bool) *SuppressionSet {
	set := &SuppressionSet{byFileLine: make(map[string]map[int][]Suppression)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				set.parseComment(fset, c)
			}
		}
	}
	if validRules != nil {
		kept := set.byFileLine
		set.byFileLine = make(map[string]map[int][]Suppression)
		for file, lines := range kept {
			for line, supps := range lines {
				for _, s := range supps {
					if !validRules[s.Rule] {
						set.Malformed = append(set.Malformed, Diagnostic{
							Pos: s.Pos, Rule: "lint",
							Message: "suppression names unknown rule " + quote(s.Rule),
						})
						continue
					}
					set.add(file, line, s)
				}
			}
		}
	}
	return set
}

func quote(s string) string { return "\"" + s + "\"" }

func (set *SuppressionSet) add(file string, line int, s Suppression) {
	lines := set.byFileLine[file]
	if lines == nil {
		lines = make(map[int][]Suppression)
		set.byFileLine[file] = lines
	}
	lines[line] = append(lines[line], s)
}

// parseComment extracts every lint:allow directive in one comment. Only
// comments that BEGIN with the marker are directives — prose that merely
// mentions it (docs, examples) is ignored. A single directive comment may
// carry several directives; each runs up to the next marker.
func (set *SuppressionSet) parseComment(fset *token.FileSet, c *ast.Comment) {
	text := c.Text
	for _, prefix := range [2]string{"//", "/*"} {
		if rest, ok := strings.CutPrefix(text, prefix); ok {
			text = rest
			break
		}
	}
	if !strings.HasPrefix(strings.TrimLeft(text, " \t"), allowMarker) {
		return
	}
	pos := fset.Position(c.Pos())
	for {
		i := strings.Index(text, allowMarker)
		if i < 0 {
			return
		}
		text = text[i+len(allowMarker):]
		body := text
		if j := strings.Index(body, allowMarker); j >= 0 {
			body = body[:j]
		}
		fields := strings.Fields(body)
		s := Suppression{Pos: pos}
		if len(fields) > 0 {
			s.Rule = fields[0]
			s.Reason = strings.Join(fields[1:], " ")
		}
		switch {
		case s.Rule == "":
			set.Malformed = append(set.Malformed, Diagnostic{
				Pos: pos, Rule: "lint", Message: "suppression is missing a rule name: //lint:allow <rule> <reason>",
			})
		case s.Reason == "":
			set.Malformed = append(set.Malformed, Diagnostic{
				Pos: pos, Rule: "lint", Message: "suppression of " + quote(s.Rule) + " is missing a reason: //lint:allow <rule> <reason>",
			})
		default:
			set.add(pos.Filename, pos.Line, s)
		}
	}
}

// Allows reports whether a diagnostic of rule at pos is suppressed.
func (set *SuppressionSet) Allows(d Diagnostic) bool {
	lines := set.byFileLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, s := range lines[line] {
			if s.Rule == d.Rule {
				return true
			}
		}
	}
	return false
}

// Filter splits diagnostics into kept (unsuppressed) and suppressed.
func (set *SuppressionSet) Filter(diags []Diagnostic) (kept, suppressed []Diagnostic) {
	for _, d := range diags {
		if set.Allows(d) {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}
