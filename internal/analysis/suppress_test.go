package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"cpx/internal/analysis"
)

// collectFrom parses src as one file and returns its suppressions.
func collectFrom(t *testing.T, src string, validRules map[string]bool) (*token.FileSet, *analysis.SuppressionSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "supp.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, analysis.CollectSuppressions(fset, []*ast.File{f}, validRules)
}

// diagAt builds a diagnostic of rule at the given line of the parsed file.
func diagAt(rule string, line int) analysis.Diagnostic {
	return analysis.Diagnostic{
		Pos:  token.Position{Filename: "supp.go", Line: line, Column: 1},
		Rule: rule,
	}
}

// TestSuppressSameLineVsLineAbove pins the two placements a directive
// supports: trailing the offending line, or on its own line directly
// above it — and nothing further away.
func TestSuppressSameLineVsLineAbove(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:allow determinism trailing placement
	//lint:allow hotalloc line-above placement
	_ = 2
	_ = 3
}
`
	_, set := collectFrom(t, src, nil)

	if !set.Allows(diagAt("determinism", 4)) {
		t.Error("same-line directive did not suppress a diagnostic on its own line")
	}
	if set.Allows(diagAt("determinism", 3)) {
		t.Error("same-line directive leaked upward to the line above")
	}
	if !set.Allows(diagAt("hotalloc", 6)) {
		t.Error("line-above directive did not suppress the line below it")
	}
	if !set.Allows(diagAt("hotalloc", 5)) {
		t.Error("directive did not suppress a diagnostic on its own line")
	}
	if set.Allows(diagAt("hotalloc", 7)) {
		t.Error("directive leaked two lines down")
	}
	if set.Allows(diagAt("hotalloc", 4)) {
		t.Error("line-above directive leaked to the line above itself")
	}
}

// TestSuppressMultipleRulesOneComment pins the multi-directive form: one
// comment can carry several lint:allow directives, each with its own
// rule and reason, and only the named rules are silenced.
func TestSuppressMultipleRulesOneComment(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:allow commmatch peer validated at startup lint:allow hotalloc buffer recycled
}
`
	_, set := collectFrom(t, src, nil)

	if !set.Allows(diagAt("commmatch", 4)) {
		t.Error("first directive in a multi-directive comment was dropped")
	}
	if !set.Allows(diagAt("hotalloc", 4)) {
		t.Error("second directive in a multi-directive comment was dropped")
	}
	if set.Allows(diagAt("determinism", 4)) {
		t.Error("multi-directive comment suppressed a rule it never named")
	}
	if set.Malformed != nil {
		t.Errorf("well-formed multi-directive comment reported malformed: %v", set.Malformed)
	}
}

// TestSuppressMalformedDirectives pins rejection of directives with a
// missing reason or (with validation on) an unknown rule name.
func TestSuppressMalformedDirectives(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:allow commmatch
	_ = 2 //lint:allow nosuchrule a perfectly good reason
	_ = 3 //lint:allow perfgate hook must stay under budget
}
`
	_, set := collectFrom(t, src, analysis.AnalyzerNames())

	if len(set.Malformed) != 2 {
		t.Fatalf("got %d malformed directives, want 2: %v", len(set.Malformed), set.Malformed)
	}
	if set.Allows(diagAt("commmatch", 4)) {
		t.Error("reason-less directive still suppressed its rule")
	}
	if set.Allows(diagAt("nosuchrule", 5)) {
		t.Error("unknown-rule directive still suppressed")
	}
	if !set.Allows(diagAt("perfgate", 6)) {
		t.Error("valid perfgate directive was rejected")
	}
}

// TestSuppressCycleReportedSiteOnly pins where a commmatch deadlock
// diagnostic must be suppressed: it names two (or more) call sites but
// is reported at exactly one of them, and only a directive at the
// reported site silences it — a suppression at the other leg of the
// cycle does not apply. The companion fixture (testdata/src/commmatch/
// cycle.go, halfSuppressedCycle) proves the same end-to-end through the
// analyzer.
func TestSuppressCycleReportedSiteOnly(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:allow commmatch head-to-head exchange is resolved by the eager-send runtime
	_ = 2
}
`
	_, set := collectFrom(t, src, nil)

	reported := diagAt("commmatch", 4)   // the cycle's reported recv
	otherLeg := diagAt("commmatch", 14)  // the matching recv in the peer branch
	if !set.Allows(reported) {
		t.Error("directive at the reported site did not suppress the cycle diagnostic")
	}
	if set.Allows(otherLeg) {
		t.Error("directive at one call site suppressed a diagnostic reported at another")
	}
}
