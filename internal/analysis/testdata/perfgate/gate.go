// Package perfgate is a standalone fixture module for the perfgate
// compiler-fact gate: each function below pins one gate behaviour
// (inlinable control, over-budget inline breach, leaking parameter,
// heap-moved local). perfgate_test.go loads this module and asserts
// the exact set of findings.
package perfgate

// fastAdd is the passing control: tiny, no escapes.
//
//perf:inline
//perf:noescape
func fastAdd(a, b float64) float64 {
	return a + b
}

// tooBig is deliberately pushed far over the gc inliner budget (80):
// perfgate must fail its //perf:inline annotation with the compiler's
// cost in the message.
//
//perf:inline
func tooBig(xs []float64) float64 {
	s := 0.0
	for i := range xs {
		v := xs[i]
		s += v
		s += v * v
		s += v * v * v
		s += v / (v + 1)
		s += v / (v + 2)
		s += v / (v + 3)
		s += v / (v + 4)
		s += v / (v + 5)
		s += v / (v + 6)
		s += v / (v + 7)
		s += v / (v + 8)
		s += v / (v + 9)
		s += v / (v + 10)
		s += v / (v + 11)
		s += v / (v + 12)
		s += v / (v + 13)
		s += v / (v + 14)
		s += v / (v + 15)
		s += v / (v + 16)
	}
	return s
}

var sink *int

// leaks stores its parameter in a global, so the compiler reports
// "leaking param: p": the //perf:noescape annotation must fail.
//
//perf:noescape
func leaks(p *int) {
	sink = p
}

// heapLocal returns the address of a local, so the compiler reports
// "moved to heap: v": the //perf:noescape annotation must fail.
//
//perf:noescape
func heapLocal(n int) *int {
	v := n * 2
	return &v
}
