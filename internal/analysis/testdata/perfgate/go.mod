module perfgate

go 1.24
