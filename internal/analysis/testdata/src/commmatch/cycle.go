package commmatch

// ---- cyclic waits-for (recv-before-send) deadlocks --------------------------

// headToHead: rank 0 blocks receiving from rank 1 while rank 1 blocks
// receiving from rank 0 — neither send is ever reached. The runtime's
// event executor reports this as a deadlock only once it runs; the
// analyzer reports both endpoints statically. Each send's tag is
// received by the peer branch, so only the cycle fires.
func headToHead(c *Comm, data []float64) {
	r := c.Rank()
	if r == 0 {
		c.Recv(1, 401) // want `cyclic waits-for between rank-pinned branches — guaranteed deadlock .*rank 0 of c blocks in Recv from rank 1 \(cycle\.go:\d+\).*rank 1 of c blocks in Recv from rank 0 \(cycle\.go:\d+\)`
		c.Send(1, 402, data)
	} else if r == 1 {
		c.Recv(0, 402)
		c.Send(0, 401, data)
	}
}

// orderedExchange: rank 0 sends before it receives, so rank 1's blocked
// receive is satisfied and the exchange drains — no cycle.
func orderedExchange(c *Comm, data []float64) {
	r := c.Rank()
	if r == 0 {
		c.Send(1, 411, data)
		c.Recv(1, 412)
	} else if r == 1 {
		c.Recv(0, 411)
		c.Send(0, 412, data)
	}
}

// nonblockingBreaksCycle: Irecv does not park the rank, so crossed
// receives complete at Wait time after both sends are in flight.
func nonblockingBreaksCycle(c *Comm, data []float64) {
	r := c.Rank()
	if r == 0 {
		req := c.Irecv(1, 421)
		c.Send(1, 422, data)
		req.Wait()
	} else if r == 1 {
		req := c.Irecv(0, 422)
		c.Send(0, 421, data)
		req.Wait()
	}
}

// threeCycle: the waits-for relation can be cyclic through any number
// of ranks — 0 waits on 1, 1 waits on 2, 2 waits on 0.
func threeCycle(c *Comm, data []float64) {
	r := c.Rank()
	if r == 0 {
		c.Recv(1, 431) // want `cyclic waits-for between rank-pinned branches`
		c.Send(2, 433, data)
	} else if r == 1 {
		c.Recv(2, 432)
		c.Send(0, 431, data)
	} else if r == 2 {
		c.Recv(0, 433)
		c.Send(1, 432, data)
	}
}

func suppressedCycle(c *Comm, data []float64) {
	r := c.Rank()
	if r == 0 {
		// The harness injects rank 1's message before this run begins.
		c.Recv(1, 441) //lint:allow commmatch pre-seeded mailbox breaks the cycle at startup
		c.Send(1, 442, data)
	} else if r == 1 {
		c.Recv(0, 442)
		c.Send(0, 441, data)
	}
}

// halfSuppressedCycle: the cycle diagnostic names both call sites but is
// reported at exactly one (the first rank-pinned branch's receive). A
// suppression on the OTHER leg does not apply — the diagnostic still
// fires at the reported site.
func halfSuppressedCycle(c *Comm, data []float64) {
	r := c.Rank()
	if r == 0 {
		c.Recv(1, 451) // want `cyclic waits-for between rank-pinned branches`
		c.Send(1, 452, data)
	} else if r == 1 {
		c.Recv(0, 452) //lint:allow commmatch suppression on the wrong leg must not silence the cycle
		c.Send(0, 451, data)
	}
}
