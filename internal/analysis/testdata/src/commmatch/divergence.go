package commmatch

// ---- diverging collective sequences -----------------------------------------

func divergingCollectives(c *Comm, data []float64) {
	r := c.Rank()
	if r == 0 { // want `collective sequence diverges across this rank-conditioned branch: \[Bcast Barrier\] vs \[Barrier\]`
		c.Bcast(0, data)
		c.Barrier()
	} else {
		c.Barrier()
	}
}

func divergingKinds(c *Comm, data []float64) {
	if c.Rank() < 2 { // want `collective sequence diverges across this rank-conditioned branch: \[Bcast\] vs \[Reduce\]`
		c.Bcast(0, data)
	} else {
		c.Reduce(0, data)
	}
}

// sameSequenceIsFine: both arms run the same collective sequence (the
// arguments may differ — kind-level matching keeps the check quiet on
// root-switching patterns).
func sameSequenceIsFine(c *Comm, data []float64) {
	if c.Rank() == 0 {
		c.Bcast(0, data)
		c.Barrier()
	} else {
		c.Bcast(0, data)
		c.Barrier()
	}
}

// nonRankBranchIsFine: divergence only matters when the branch splits
// the rank space.
func nonRankBranchIsFine(c *Comm, n int, data []float64) {
	if n > 4 {
		c.Bcast(0, data)
	} else {
		c.Reduce(0, data)
	}
}

func suppressedDivergence(c *Comm, data []float64) {
	//lint:allow commmatch ranks re-join at the barrier inside the helper below
	if c.Rank() == 0 {
		c.Bcast(0, data)
		c.Barrier()
	} else {
		c.Barrier()
	}
}
