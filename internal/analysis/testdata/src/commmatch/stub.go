// Package commmatch exercises the commmatch protocol analyzer with a
// local stub of the runtime's communicator API. Tag constants are
// unique per scenario because send/receive matching is package-wide.
package commmatch

// Comm mirrors the runtime communicator (matched by type name).
type Comm struct {
	rank int
}

func (c *Comm) Rank() int      { return c.rank }
func (c *Comm) WorldRank() int { return c.rank }

func (c *Comm) Send(to, tag int, data []float64)        {}
func (c *Comm) SendInts(to, tag int, data []int)        {}
func (c *Comm) Isend(to, tag int, data []float64) *Request { return &Request{} }
func (c *Comm) Recv(from, tag int) ([]float64, int, int) { return nil, 0, 0 }
func (c *Comm) RecvInts(from, tag int) ([]int, int, int) { return nil, 0, 0 }
func (c *Comm) Irecv(from, tag int) *Request            { return &Request{} }
func (c *Comm) RecvAll(n, tag int) ([][]float64, []int) { return nil, nil }
func (c *Comm) SendRecv(to, sendTag int, send []float64, from, recvTag int) []float64 {
	return nil
}

func (c *Comm) Barrier()                       {}
func (c *Comm) Bcast(root int, data []float64) []float64 { return data }
func (c *Comm) Reduce(root int, data []float64) []float64 { return data }

// Request mirrors the runtime's nonblocking handle.
type Request struct{}

func (r *Request) Wait() {}
