package commmatch

// ---- constant tag / communicator mismatches ---------------------------------

// tagMismatch: both endpoints are in view and their constant tags
// disagree; the diagnostic names the receive so the report carries both
// call sites.
func tagMismatch(c *Comm, data []float64) {
	r := c.Rank()
	if r == 0 {
		c.Send(1, 201, data) // want `Send with tag 201 on c has no matching receive: the nearest receive on c \(tagmismatch\.go:\d+\) uses tag 202 — constant tag mismatch`
	} else if r == 1 {
		c.Recv(0, 202)
	}
}

func suppressedTagMismatch(c *Comm, data []float64) {
	r := c.Rank()
	if r == 0 {
		// Tag 212 is rewritten in-flight by the harness interposer.
		c.Send(1, 211, data) //lint:allow commmatch harness rewrites the tag before delivery
	} else if r == 1 {
		c.Recv(0, 212)
	}
}

// commMismatch: the receive for the tag exists but listens on a
// different communicator.
func commMismatch(world, sub *Comm, data []float64) {
	r := world.Rank()
	if r == 0 {
		world.Send(1, 301, data) // want `Send with tag 301 on world has no matching receive on that communicator: the receive with this tag \(tagmismatch\.go:\d+\) listens on sub — communicator mismatch`
	} else if r == 1 {
		sub.Recv(0, 301)
	}
}

// aliasedCommMatches: a single-definition alias of the communicator
// resolves to the same identity, so no mismatch is reported.
func aliasedCommMatches(world *Comm, data []float64) {
	w := world
	r := world.Rank()
	if r == 0 {
		world.Send(1, 302, data)
	} else if r == 1 {
		w.Recv(0, 302)
	}
}
