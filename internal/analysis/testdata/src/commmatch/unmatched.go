package commmatch

// ---- unmatched rank-conditioned sends ---------------------------------------

func unmatchedSend(c *Comm, data []float64) {
	r := c.Rank()
	if r == 0 {
		c.Send(1, 101, data) // want `rank-conditioned Send with tag 101 on c has no reachable matching receive`
	}
}

func unmatchedIsend(c *Comm, data []float64) {
	if c.Rank() == 0 {
		req := c.Isend(1, 105, data) // want `rank-conditioned Isend with tag 105 on c has no reachable matching receive`
		req.Wait()
	}
}

func suppressedUnmatched(c *Comm, data []float64) {
	if c.Rank() == 0 {
		// The matching receive lives in a sibling package's collector loop.
		c.Send(1, 102, data) //lint:allow commmatch receiver is external to this package by design
	}
}

// matchedAcrossFunctions: the receive lives in another function of the
// same package — matched on the constant tag, no diagnostic.
func matchedSender(c *Comm, data []float64) {
	if c.Rank() == 0 {
		c.Send(1, 103, data)
	}
}

func matchedReceiver(c *Comm) []float64 {
	if c.Rank() == 1 {
		got, _, _ := c.Recv(0, 103)
		return got
	}
	return nil
}

// opaqueTagIsFine: without a constant tag the matcher stays silent.
func opaqueTagSend(c *Comm, tag int, data []float64) {
	if c.Rank() == 0 {
		c.Send(1, tag, data)
	}
}

// unconditionedIsFine: only rank-conditioned sends are protocol-shaped
// enough to demand a package-local receive.
func unconditionedSend(c *Comm, data []float64) {
	c.Send(1, 104, data)
}

// selfContainedExchange: SendRecv carries both halves and matches itself.
func selfContainedExchange(c *Comm, data []float64) []float64 {
	return c.SendRecv(1, 106, data, 1, 106)
}
