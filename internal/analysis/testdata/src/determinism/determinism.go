// Package determinism exercises the determinism analyzer: host-clock
// reads, global math/rand draws, and order-dependent map iteration.
package determinism

import (
	"math/rand"
	"time"
)

func sink(args ...interface{}) {}

// ---- host clock -------------------------------------------------------------

func hostClock() {
	t0 := time.Now()        // want `time\.Now reads or schedules against the host clock`
	sink(time.Since(t0))    // want `time\.Since reads or schedules against the host clock`
	time.Sleep(time.Second) // want `time\.Sleep reads or schedules against the host clock`
}

func allowedHostClock() {
	// The deadlock watchdog legitimately runs on the host clock.
	t := time.Now() //lint:allow determinism watchdog runs on host time by design
	sink(t)
}

func timeValuesAreFine(t time.Time) {
	// Methods and constructors that do not observe the clock are fine.
	sink(t.Unix(), time.Unix(0, 0), time.Duration(5))
}

// ---- global rand ------------------------------------------------------------

func globalRand() {
	sink(rand.Intn(10))    // want `rand\.Intn draws from the process-global generator`
	sink(rand.Float64())   // want `rand\.Float64 draws from the process-global generator`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global generator`
}

func seededRand(seed int64) {
	rng := rand.New(rand.NewSource(seed)) // constructors are allowed
	sink(rng.Intn(10), rng.Float64())     // methods on a seeded *rand.Rand are fine
}

// ---- map iteration order ----------------------------------------------------

func mapOrderLeaks(m map[int]float64, out []float64, ch chan float64) {
	var results []float64
	for _, v := range m {
		results = append(results, v) // want `append to results inside map iteration records results in map order`
	}
	for k, v := range m {
		out[k%2] = v // want `write to out\[\.\.\.\] inside map iteration depends on map order`
	}
	for _, v := range m {
		ch <- v // want `channel send inside map iteration publishes results in map order`
	}
	sink(results)
}

func collectKeysIdiom(m map[int]float64) []int {
	// The first half of the sorted-iteration fix is exempt.
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func orderIndependent(m map[int]float64) map[int]float64 {
	// Keyed writes and loop-local state do not depend on iteration order.
	dst := make(map[int]float64, len(m))
	for k, v := range m {
		scaled := v * 2
		dst[k] = scaled
	}
	return dst
}

func suppressedMapOrder(m map[int]float64) []float64 {
	var vals []float64
	for _, v := range m {
		//lint:allow determinism values are re-sorted by the caller
		vals = append(vals, v)
	}
	return vals
}
