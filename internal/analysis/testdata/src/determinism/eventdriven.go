// Event-driven hot-path fixture: this file carries the pragma below, so
// the determinism analyzer additionally forbids goroutine spawns,
// channel traffic and sync-package locking here. The sibling fixture
// files carry no pragma, so their (absent) concurrency is never checked
// — only the classic clock/rand/map rules apply there.
//
//lint:eventdriven
package determinism

import (
	"sync"
	"sync/atomic"
)

func spawns() {
	go sink() // want `go statement in an event-driven hot-path file`
}

func channelTraffic(ch chan int) {
	ch <- 1    // want `channel send in an event-driven hot-path file`
	sink(<-ch) // want `channel receive in an event-driven hot-path file`
	select {   // want `select in an event-driven hot-path file`
	default:
	}
	c := make(chan int, 4) // want `make of a channel in an event-driven hot-path file`
	close(c)               // want `close of a channel in an event-driven hot-path file`
}

func locking(mu *sync.Mutex, wg *sync.WaitGroup, once *sync.Once) {
	mu.Lock()             // want `sync\.Mutex\.Lock call in an event-driven hot-path file`
	mu.Unlock()           // want `sync\.Mutex\.Unlock call in an event-driven hot-path file`
	wg.Wait()             // want `sync\.WaitGroup\.Wait call in an event-driven hot-path file`
	once.Do(func() {})    // want `sync\.Once\.Do call in an event-driven hot-path file`
	cond := sync.NewCond(mu) // want `sync\.NewCond call in an event-driven hot-path file`
	sink(cond)
}

func atomicsAreFine(flag *atomic.Bool) {
	// The abort flag is the one sanctioned cross-thread signal.
	if flag.Load() {
		flag.Store(false)
	}
	var n int64
	atomic.AddInt64(&n, 1)
}

func plainSlicesAreFine() {
	// Non-channel make stays legal.
	buf := make([]int, 8)
	sink(buf)
}
