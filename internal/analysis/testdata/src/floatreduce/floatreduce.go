// Package floatreduce exercises the floatreduce analyzer: float
// accumulation in map order and in goroutine/channel arrival order.
package floatreduce

func sink(args ...interface{}) {}

func mapOrderSum(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `float accumulation into sum depends on map iteration order`
	}
	return sum
}

func mapOrderExplicitForm(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `float accumulation into total depends on map iteration order`
	}
	return total
}

func mapOrderProduct(m map[int]float64) float64 {
	prod := 1.0
	for _, v := range m {
		prod *= v // want `float accumulation into prod depends on map iteration order`
	}
	return prod
}

func channelOrderSum(ch chan float64) float64 {
	sum := 0.0
	for v := range ch {
		sum += v // want `float accumulation into sum depends on channel arrival order`
	}
	return sum
}

func sortedKeysSum(m map[int]float64, keys []int) float64 {
	// Iterating a sorted key slice is the fix: term order is fixed.
	sum := 0.0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

func loopLocalSubSum(groups map[int][]float64) map[int]float64 {
	// A per-key sub-accumulator declared inside the loop is fine: its
	// term order comes from the slice, and the result is stored keyed.
	out := make(map[int]float64, len(groups))
	for k, vs := range groups {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
	return out
}

func keyedAccumIsFine(m map[int]float64, acc map[int]float64) {
	// Keyed writes are order-independent per key.
	for k, v := range m {
		acc[k] += v
	}
}

func intAccumIsFine(m map[int]int) int {
	// Integer addition is associative; only floats drift.
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func suppressedSum(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v //lint:allow floatreduce tolerance-checked diagnostic only, never feeds state
	}
	return sum
}
