//perf:hotpath
// Package hotalloc exercises the hotalloc analyzer: the marker above
// the package clause marks every function in this file as hot.
package hotalloc

type payload struct {
	vals []float64
}

func sink(v any) {}

func hotEverything(xs []float64, n int) []float64 {
	buf := make([]float64, n) // want `make allocates on the hot path`
	for i := range xs {
		buf = append(buf, xs[i]) // want `append may grow its backing array on the hot path`
	}
	p := &payload{vals: buf} // want `address-taken composite literal allocates on the hot path`
	f := func() int { return n } // want `closure allocates its environment on the hot path`
	_ = f
	sink(n) // want `argument boxes n into an interface on the hot path`
	return p.vals
}

func hotBoxing(x float64) {
	var v any
	v = x // want `assignment boxes x into an interface on the hot path`
	_ = v
	_ = any(x) // want `conversion boxes x into an interface on the hot path`
}

func hotSliceLit() []int {
	return []int{1, 2, 3} // want `\[\]int literal allocates its backing store on the hot path`
}

// hotClean touches no allocator: field math and indexing stay silent.
func hotClean(p *payload, i int) float64 {
	if i < len(p.vals) {
		return p.vals[i] * 2
	}
	return 0
}

func hotSuppressed(xs []float64) []float64 {
	// Growth is amortised: the buffer doubles and is recycled run-to-run.
	return append(xs, 1.0) //lint:allow hotalloc amortised growth on a recycled buffer
}

// pointerNoBox: pointers fit the interface word; no allocation report.
func pointerNoBox(p *payload) {
	sink(p)
}
