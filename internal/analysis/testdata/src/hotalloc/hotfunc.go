package hotalloc

// This file carries no file-level marker: only the annotated function
// is checked.

// deliver is the per-message fast path.
//
//perf:hotpath
func deliver(dst *payload, v float64) {
	dst.vals = append(dst.vals, v) // want `append may grow its backing array on the hot path`
}

// setup runs once per simulation; its allocations are fine.
func setup(n int) *payload {
	vals := make([]float64, 0, n)
	return &payload{vals: vals}
}
