// Package mpiuse exercises the mpiuse analyzer with a local stub of the
// runtime's communicator API: rank-conditioned collectives and
// discarded/never-awaited requests.
package mpiuse

// Comm mirrors the runtime communicator (matched by type name).
type Comm struct {
	rank int
}

func (c *Comm) Rank() int      { return c.rank }
func (c *Comm) WorldRank() int { return c.rank }

func (c *Comm) Barrier()                           {}
func (c *Comm) Bcast(root int, data []float64)     {}
func (c *Comm) Allreduce(data []float64)           {}
func (c *Comm) Send(dst, tag int, data []float64)  {}
func (c *Comm) Recv(src, tag int) []float64        { return nil }
func (c *Comm) Isend(dst, tag int, data []float64) *Request { return &Request{} }
func (c *Comm) Irecv(src, tag int) *Request        { return &Request{} }

// Request mirrors the runtime's nonblocking handle.
type Request struct{}

func (r *Request) Wait() {}

func WaitAll(reqs ...*Request) {}

// ---- rank-conditioned collectives -------------------------------------------

func directRankCond(c *Comm, data []float64) {
	if c.Rank() == 0 {
		c.Barrier() // want `collective c\.Barrier inside a branch conditioned on the rank`
	}
}

func rankVarCond(c *Comm, data []float64) {
	r := c.Rank()
	if r == 0 {
		c.Bcast(0, data) // want `collective c\.Bcast inside a branch conditioned on the rank`
	}
}

func rankParamCond(c *Comm, rank int, data []float64) {
	if rank == 0 {
		c.Allreduce(data) // want `collective c\.Allreduce inside a branch conditioned on the rank`
	}
}

func switchRankCond(c *Comm) {
	switch c.Rank() {
	case 0:
		c.Barrier() // want `collective c\.Barrier inside a branch conditioned on the rank`
	}
}

func elseBranchCond(c *Comm, data []float64) {
	if c.Rank() == 0 {
		c.Send(1, 0, data)
	} else {
		c.Allreduce(data) // want `collective c\.Allreduce inside a branch conditioned on the rank`
	}
}

func pointToPointIsFine(c *Comm, data []float64) {
	// Rank-conditioned P2P is the normal pattern, not a collective hazard.
	if c.Rank() == 0 {
		c.Send(1, 0, data)
	} else if c.Rank() == 1 {
		data = c.Recv(0, 0)
	}
	_ = data
}

func unconditionedIsFine(c *Comm, data []float64) {
	c.Barrier()
	c.Allreduce(data)
}

func sizeCondIsFine(c *Comm, n int, data []float64) {
	// Conditions on anything other than the rank are fine.
	if n > 1 {
		c.Allreduce(data)
	}
}

func suppressedRankCond(c *Comm) {
	if c.Rank() == 0 {
		c.Barrier() //lint:allow mpiuse all ranks take this branch in lockstep via replicated state
	}
}

// ---- request lifecycle ------------------------------------------------------

func discardedRequest(c *Comm, data []float64) {
	c.Isend(1, 0, data)      // want `Isend result discarded`
	_ = c.Irecv(0, 0)        // want `Irecv result discarded`
}

func neverAwaited(c *Comm, data []float64) {
	req := c.Isend(1, 0, data) // want `\*Request req from Isend never reaches a Wait`
	if req == nil {
		return
	}
}

func awaited(c *Comm, data []float64) {
	req := c.Isend(1, 0, data)
	req.Wait()
}

func awaitedViaWaitAll(c *Comm, data []float64) {
	var reqs []*Request
	reqs = append(reqs, c.Isend(1, 0, data))
	r2 := c.Irecv(0, 0)
	reqs = append(reqs, r2)
	WaitAll(reqs...)
}
