// Package poolsafety exercises the poolsafety analyzer with local stubs
// of the runtime's pooled message and arena types.
package poolsafety

// message mirrors the runtime's pooled message (matched by type name).
type message struct {
	Data []float64
	seq  int
}

func getMessage() *message      { return &message{} }
func releaseMessage(m *message) {}

// f64Arena mirrors the runtime's bump allocator.
type f64Arena struct{}

func (a *f64Arena) clone(d []float64) []float64 { return d }

func sink(args ...interface{}) {}

// ---- use after release ------------------------------------------------------

func useAfterRelease() {
	m := getMessage()
	releaseMessage(m)
	sink(m.Data) // want `use of m after releaseMessage`
}

func copyBeforeRelease() float64 {
	m := getMessage()
	latest := *m
	releaseMessage(m)
	return latest.Data[0]
}

func reassignedIsFresh() {
	m := getMessage()
	releaseMessage(m)
	m = getMessage()
	sink(m.Data)
	releaseMessage(m)
}

// ---- payload escapes --------------------------------------------------------

type holder struct {
	buf []float64
}

type msgHolder struct {
	last *message
}

var globalBuf []float64

func fieldEscape(h *holder, m *message) {
	h.buf = m.Data // want `storing pooled payload m\.Data into h\.buf`
}

func globalEscape(m *message) {
	globalBuf = m.Data // want `storing pooled payload m\.Data into globalBuf`
}

func aliasEscape(h *holder, m *message) {
	d := m.Data
	h.buf = d // want `storing pooled payload m\.Data into h\.buf`
}

func cloneEscape(h *holder, a *f64Arena, d []float64) {
	h.buf = a.clone(d) // want `storing pooled payload a\.clone\(d\) into h\.buf`
}

func messageEscape(h *msgHolder, m *message) {
	h.last = m // want `storing \*message m into h\.last`
}

func copiedPayloadIsFine(h *holder, m *message) {
	h.buf = append([]float64(nil), m.Data...)
}

func localUseIsFine(m *message) float64 {
	var tmp holder
	tmp.buf = m.Data
	return tmp.buf[0]
}

func suppressedOwnership(h *msgHolder, m *message) {
	h.last = m //lint:allow poolsafety holder owns queued messages until take, mirroring the mailbox
}
