// Package cluster models the target HPC machine: its node structure,
// per-core compute rates and its interconnect. It converts abstract work
// descriptions (flops moved, bytes streamed) and message sizes into
// virtual seconds, which the mpi runtime charges against rank clocks.
//
// The shipped ARCHER2 model reproduces the machine used throughout the
// paper: an HPE-Cray EX with dual 64-core AMD EPYC 7742 nodes (128
// cores/node) and a Slingshot interconnect. Its constants are calibrated
// (see DESIGN.md §6) so the mini-apps' parallel-efficiency knees land
// where the paper's measurements put them.
package cluster

import (
	"fmt"
	"math"
)

// Work describes an amount of computation in machine-independent units.
// Time is charged with a roofline rule: the slower of the flop time and the
// memory-streaming time, so memory-bound kernels (SpMV, particle push) are
// automatically bandwidth-limited.
type Work struct {
	Flops float64 // floating point operations
	Bytes float64 // bytes streamed to/from memory
}

// Add returns the element-wise sum of two work descriptions.
func (w Work) Add(o Work) Work { return Work{w.Flops + o.Flops, w.Bytes + o.Bytes} }

// Scale returns the work multiplied by s.
func (w Work) Scale(s float64) Work { return Work{w.Flops * s, w.Bytes * s} }

// Machine describes one HPC system.
type Machine struct {
	Name         string
	CoresPerNode int

	// Compute rates, per core. Effective (sustained) rather than peak.
	FlopRate float64 // flops/second/core
	MemBW    float64 // bytes/second/core of sustained stream bandwidth

	// Point-to-point network parameters (Hockney alpha-beta model).
	IntraNodeLatency float64 // seconds, shared-memory transport
	IntraNodeBW      float64 // bytes/second within a node
	InterNodeLatency float64 // seconds, NIC + fabric
	InterNodeBW      float64 // bytes/second achievable by one rank off-node

	// NICBW is the injection bandwidth of a whole node. When many ranks on
	// a node send off-node concurrently they share it; the runtime models
	// this statically through EffectiveInterBW.
	NICBW float64

	// SendOverhead is CPU time consumed on the sender per message
	// (matching, packing, descriptor setup). RecvOverhead likewise.
	SendOverhead float64
	RecvOverhead float64

	// ContendingRanks is the assumed number of ranks per node competing
	// for the NIC during communication-heavy phases. Calibrated, static,
	// deterministic. Zero means "no contention".
	ContendingRanks int

	// Stable-storage terms for coordinated checkpointing: a per-operation
	// latency (metadata, open/sync) and the bandwidth one rank sustains to
	// the parallel filesystem once its node-level and filesystem-level
	// shares are accounted for. Zero StorageBW means "free checkpoints"
	// (only the latency is charged), which keeps the fields optional for
	// machines that never checkpoint.
	StorageLatency float64 // seconds per checkpoint write
	StorageBW      float64 // bytes/second/rank to stable storage
}

// ARCHER2 returns the model of the HPE-Cray EX system used in the paper:
// 2x 64-core AMD EPYC 7742 (2.25 GHz) per node, 256 GB/node, Slingshot-10.
//
// Rates are sustained figures for the irregular, memory-bound kernels in
// this workload (unstructured FV fluxes, SpMV, particle push), not peak:
// roughly 2.2 GF/s/core and 3.1 GB/s/core of stream bandwidth when all
// 128 cores are active (≈400 GB/s/node aggregate, DDR4-3200 8-channel x2).
func ARCHER2() *Machine {
	return &Machine{
		Name:             "ARCHER2 (HPE-Cray EX, 2x AMD EPYC 7742/node)",
		CoresPerNode:     128,
		FlopRate:         2.2e9,
		MemBW:            3.1e9,
		IntraNodeLatency: 0.4e-6,
		IntraNodeBW:      6.0e9,
		InterNodeLatency: 2.0e-6,
		InterNodeBW:      1.8e9,
		NICBW:            25e9, // Slingshot-10: 100 Gb/s x2 per node
		SendOverhead:     0.3e-6,
		RecvOverhead:     0.3e-6,
		ContendingRanks:  32,
		// Lustre /work: hundreds of GB/s aggregate; with collective
		// buffering a checkpointing rank sustains a few hundred MB/s of
		// the shared filesystem even at the paper's rank counts.
		StorageLatency: 2e-3,
		StorageBW:      2e8,
	}
}

// Cirrus32 returns a model of the 32-cores/node system class the
// production pressure solver was originally profiled on (Section II-B
// notes the hardware difference: 32 cores/node vs ARCHER2's 128). Fewer
// ranks share each NIC, so per-rank effective bandwidth is higher, which
// is why direct cross-machine comparisons in the paper are qualified.
func Cirrus32() *Machine {
	return &Machine{
		Name:             "32-core/node cluster (pressure-solver test system class)",
		CoresPerNode:     32,
		FlopRate:         2.0e9,
		MemBW:            4.0e9,
		IntraNodeLatency: 0.4e-6,
		IntraNodeBW:      5.0e9,
		InterNodeLatency: 1.5e-6,
		InterNodeBW:      2.5e9,
		NICBW:            12.5e9,
		SendOverhead:     0.3e-6,
		RecvOverhead:     0.3e-6,
		ContendingRanks:  8,
		StorageLatency:   1e-3,
		StorageBW:        1e8,
	}
}

// SmallCluster returns a modest commodity-cluster model, useful in tests
// and examples where ARCHER2-scale constants would hide effects at small
// rank counts (higher latency, fewer cores per node).
func SmallCluster() *Machine {
	return &Machine{
		Name:             "small commodity cluster (16 cores/node)",
		CoresPerNode:     16,
		FlopRate:         3.0e9,
		MemBW:            4.0e9,
		IntraNodeLatency: 0.5e-6,
		IntraNodeBW:      5.0e9,
		InterNodeLatency: 15.0e-6,
		InterNodeBW:      1.0e9,
		NICBW:            10e9,
		SendOverhead:     0.5e-6,
		RecvOverhead:     0.5e-6,
		ContendingRanks:  8,
		StorageLatency:   5e-3,
		StorageBW:        100e6,
	}
}

// Validate reports whether the machine description is internally usable.
func (m *Machine) Validate() error {
	switch {
	case m.CoresPerNode <= 0:
		return fmt.Errorf("cluster: %s: CoresPerNode must be positive", m.Name)
	case m.FlopRate <= 0 || m.MemBW <= 0:
		return fmt.Errorf("cluster: %s: compute rates must be positive", m.Name)
	case m.IntraNodeBW <= 0 || m.InterNodeBW <= 0:
		return fmt.Errorf("cluster: %s: bandwidths must be positive", m.Name)
	case m.IntraNodeLatency < 0 || m.InterNodeLatency < 0:
		return fmt.Errorf("cluster: %s: latencies must be non-negative", m.Name)
	case m.StorageLatency < 0 || m.StorageBW < 0:
		return fmt.Errorf("cluster: %s: storage terms must be non-negative", m.Name)
	}
	return nil
}

// CheckpointTime returns the modelled time for one rank to write a
// checkpoint of the given size to stable storage: the storage latency
// plus the streaming time at the rank's storage-bandwidth share. With no
// StorageBW configured only the latency is charged.
func (m *Machine) CheckpointTime(bytes int) float64 {
	t := m.StorageLatency
	if m.StorageBW > 0 && bytes > 0 {
		t += float64(bytes) / m.StorageBW
	}
	return t
}

// Node returns the node index hosting the given rank under the default
// block mapping (ranks fill nodes in order, as with slurm --distribution=block).
func (m *Machine) Node(rank int) int { return rank / m.CoresPerNode }

// SameNode reports whether two ranks share a node.
func (m *Machine) SameNode(a, b int) bool { return m.Node(a) == m.Node(b) }

// ComputeTime converts work into virtual seconds on one core using the
// roofline rule max(flop time, memory time).
func (m *Machine) ComputeTime(w Work) float64 {
	return math.Max(w.Flops/m.FlopRate, w.Bytes/m.MemBW)
}

// EffectiveInterBW is the off-node bandwidth one rank achieves once NIC
// sharing is accounted for: the per-rank link rate capped by an equal share
// of the node's injection bandwidth among the assumed contending ranks.
func (m *Machine) EffectiveInterBW() float64 {
	bw := m.InterNodeBW
	if m.ContendingRanks > 0 {
		if share := m.NICBW / float64(m.ContendingRanks); share < bw {
			bw = share
		}
	}
	return bw
}

// Link returns the Hockney alpha-beta terms of the path between two
// ranks: the latency in seconds and the achievable bandwidth in
// bytes/second, chosen by the rank-to-node mapping (self-message,
// intra-node, or inter-node with NIC sharing). TransferTime and the mpi
// runtime's analytic collective recurrences both evaluate message delays
// as latency + bytes/bandwidth from these exact terms, which is what
// keeps the two paths bitwise identical.
func (m *Machine) Link(src, dst int) (latency, bandwidth float64) {
	if src == dst {
		// Self-message: memcpy through shared memory.
		return 0, m.IntraNodeBW
	}
	if m.SameNode(src, dst) {
		return m.IntraNodeLatency, m.IntraNodeBW
	}
	return m.InterNodeLatency, m.EffectiveInterBW()
}

// TransferTime returns the virtual-time network delay for a message of the
// given size between two ranks: alpha + bytes/beta with intra-/inter-node
// parameters chosen by the rank-to-node mapping (see Link). Sender and
// receiver CPU overheads are charged separately by the runtime.
func (m *Machine) TransferTime(src, dst, bytes int) float64 {
	if bytes < 0 {
		bytes = 0
	}
	lat, bw := m.Link(src, dst)
	return lat + float64(bytes)/bw
}

// Nodes returns the number of nodes needed to host p ranks.
func (m *Machine) Nodes(p int) int {
	return (p + m.CoresPerNode - 1) / m.CoresPerNode
}
