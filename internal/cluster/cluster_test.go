package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestARCHER2Valid(t *testing.T) {
	m := ARCHER2()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.CoresPerNode != 128 {
		t.Errorf("ARCHER2 CoresPerNode = %d, want 128", m.CoresPerNode)
	}
}

func TestSmallClusterValid(t *testing.T) {
	if err := SmallCluster().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCirrus32Valid(t *testing.T) {
	m := Cirrus32()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.CoresPerNode != 32 {
		t.Errorf("Cirrus32 cores/node = %d", m.CoresPerNode)
	}
	// Fewer ranks share each NIC than on ARCHER2: per-rank effective
	// bandwidth must be at least ARCHER2's.
	if m.EffectiveInterBW() < ARCHER2().EffectiveInterBW() {
		t.Error("32-core/node system should have >= per-rank bandwidth")
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	cases := []Machine{
		{Name: "no cores", FlopRate: 1, MemBW: 1, IntraNodeBW: 1, InterNodeBW: 1},
		{Name: "no flops", CoresPerNode: 4, MemBW: 1, IntraNodeBW: 1, InterNodeBW: 1},
		{Name: "no bw", CoresPerNode: 4, FlopRate: 1, MemBW: 1, InterNodeBW: 1},
		{Name: "neg lat", CoresPerNode: 4, FlopRate: 1, MemBW: 1, IntraNodeBW: 1, InterNodeBW: 1, InterNodeLatency: -1},
	}
	for _, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%q) = nil, want error", m.Name)
		}
	}
}

func TestNodeMapping(t *testing.T) {
	m := ARCHER2()
	if m.Node(0) != 0 || m.Node(127) != 0 || m.Node(128) != 1 {
		t.Errorf("block node mapping wrong: %d %d %d", m.Node(0), m.Node(127), m.Node(128))
	}
	if !m.SameNode(5, 100) {
		t.Error("ranks 5 and 100 should share node 0")
	}
	if m.SameNode(127, 128) {
		t.Error("ranks 127 and 128 should be on different nodes")
	}
}

func TestNodesCount(t *testing.T) {
	m := ARCHER2()
	for _, tc := range []struct{ p, want int }{{1, 1}, {128, 1}, {129, 2}, {40000, 313}} {
		if got := m.Nodes(tc.p); got != tc.want {
			t.Errorf("Nodes(%d) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

func TestComputeTimeRoofline(t *testing.T) {
	m := &Machine{Name: "t", CoresPerNode: 1, FlopRate: 10, MemBW: 5,
		IntraNodeBW: 1, InterNodeBW: 1}
	// Flop-bound: 100 flops, no bytes -> 10 s.
	if got := m.ComputeTime(Work{Flops: 100}); math.Abs(got-10) > 1e-12 {
		t.Errorf("flop-bound time = %v, want 10", got)
	}
	// Memory-bound: 10 flops (1 s) but 50 bytes (10 s) -> 10 s.
	if got := m.ComputeTime(Work{Flops: 10, Bytes: 50}); math.Abs(got-10) > 1e-12 {
		t.Errorf("memory-bound time = %v, want 10", got)
	}
}

func TestTransferTimeOrdering(t *testing.T) {
	m := ARCHER2()
	const bytes = 1 << 20
	self := m.TransferTime(3, 3, bytes)
	intra := m.TransferTime(0, 64, bytes)
	inter := m.TransferTime(0, 128, bytes)
	if !(self < intra && intra < inter) {
		t.Errorf("expected self < intra < inter, got %v %v %v", self, intra, inter)
	}
}

func TestTransferTimeNegativeBytesClamped(t *testing.T) {
	m := ARCHER2()
	if got := m.TransferTime(0, 200, -5); got != m.InterNodeLatency {
		t.Errorf("negative bytes: got %v, want latency only %v", got, m.InterNodeLatency)
	}
}

func TestEffectiveInterBWContention(t *testing.T) {
	m := ARCHER2()
	if eff := m.EffectiveInterBW(); eff > m.InterNodeBW {
		t.Errorf("effective inter BW %v exceeds link BW %v", eff, m.InterNodeBW)
	}
	m2 := *m
	m2.ContendingRanks = 0
	if eff := m2.EffectiveInterBW(); eff != m2.InterNodeBW {
		t.Errorf("no contention: got %v, want %v", eff, m2.InterNodeBW)
	}
	m3 := *m
	m3.ContendingRanks = 1000 // heavy contention must reduce bandwidth
	if !(m3.EffectiveInterBW() < m.EffectiveInterBW()) {
		t.Error("more contending ranks should lower effective bandwidth")
	}
}

func TestWorkAlgebra(t *testing.T) {
	w := Work{Flops: 2, Bytes: 3}.Add(Work{Flops: 5, Bytes: 7}).Scale(2)
	if w.Flops != 14 || w.Bytes != 20 {
		t.Errorf("work algebra got %+v", w)
	}
}

// Property: transfer time is monotone non-decreasing in message size.
func TestTransferMonotoneProperty(t *testing.T) {
	m := ARCHER2()
	f := func(a, b uint16, src, dst uint8) bool {
		s, l := int(a), int(b)
		if s > l {
			s, l = l, s
		}
		return m.TransferTime(int(src), int(dst), s) <= m.TransferTime(int(src), int(dst), l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: compute time scales linearly with work.
func TestComputeLinearProperty(t *testing.T) {
	m := ARCHER2()
	f := func(fl, by uint32) bool {
		w := Work{Flops: float64(fl), Bytes: float64(by)}
		t1 := m.ComputeTime(w)
		t2 := m.ComputeTime(w.Scale(3))
		return math.Abs(t2-3*t1) <= 1e-9*math.Max(1, t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
