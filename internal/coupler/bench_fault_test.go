package coupler

import (
	"testing"

	"cpx/internal/fault"
)

// BenchmarkRunResilientFaultFree measures the host cost of the
// resilient wrapper with checkpointing on but no faults — the price of
// staging snapshots and the CheckpointSync collectives on a clean run.
func BenchmarkRunResilientFaultFree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := resilienceSim().RunResilient(runCfg(), ResilienceOptions{CheckpointEvery: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunResilientWithCrash measures a full
// crash-detect-rollback-replay cycle: one injected failure late in the
// run, recovered from the last committed checkpoint.
func BenchmarkRunResilientWithCrash(b *testing.B) {
	base, err := resilienceSim().RunResilient(runCfg(), ResilienceOptions{})
	if err != nil {
		b.Fatal(err)
	}
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 2, At: 0.9 * base.Elapsed}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := resilienceSim().RunResilient(runCfg(), ResilienceOptions{
			Plan:            plan,
			CheckpointEvery: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Attempts != 2 {
			b.Fatalf("attempts = %d, want 2", res.Attempts)
		}
	}
}
