package coupler

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// bigSim is large enough that it cannot finish within the test's
// cancellation deadline, so the deadline reliably lands mid-run.
func bigSim() *Simulation {
	s := twoRowSim(Tree)
	s.Instances[0].MeshCells = 262144
	s.Instances[1].MeshCells = 262144
	s.DensitySteps = 50
	return s
}

// TestRunContextDeadlineUnwindsRanks: a timed-out coupled run must
// abort every rank goroutine (no leak) and surface the context error.
func TestRunContextDeadlineUnwindsRanks(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := bigSim().RunContext(ctx, runCfg())
	if err == nil {
		t.Fatal("run completed despite the 10ms deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d before the run", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunContextCompletesAndMatchesRun: with no cancellation the
// context path must be invisible — same report as plain Run, bit for
// bit, because the watcher only observes and the virtual-time run is
// deterministic.
func TestRunContextCompletesAndMatchesRun(t *testing.T) {
	want, err := twoRowSim(Tree).Run(runCfg())
	if err != nil {
		t.Fatal(err)
	}
	got, err := twoRowSim(Tree).RunContext(context.Background(), runCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got.Elapsed != want.Elapsed {
		t.Fatalf("RunContext elapsed %v, Run elapsed %v (not identical)", got.Elapsed, want.Elapsed)
	}
	for i := range want.InstanceTime {
		if got.InstanceTime[i] != want.InstanceTime[i] {
			t.Fatalf("instance %d time %v vs %v", i, got.InstanceTime[i], want.InstanceTime[i])
		}
	}
}

// TestRunContextPreCancelled: an already-cancelled context must fail
// fast with context.Canceled rather than run the whole simulation.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := twoRowSim(Tree).RunContext(ctx, runCfg())
	if err == nil {
		t.Fatal("pre-cancelled context did not fail the run")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
