package coupler

import (
	"bytes"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// TestCoupledTraceRunIdenticalAcrossHostParallelism is the differential
// determinism gate for the coupled path: the same small coupled
// simulation, run with event tracing on under GOMAXPROCS=1 and under
// full host parallelism, must produce bitwise-equal statistics, trace
// summaries, per-rank timelines and critical paths. Host scheduling must
// be entirely invisible in everything the run reports.
func TestCoupledTraceRunIdenticalAcrossHostParallelism(t *testing.T) {
	run := func() *Report {
		rep, err := twoRowSim(Tree).Run(tracedRunCfg())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	parallel := run()
	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(prev)

	if parallel.Elapsed != serial.Elapsed {
		t.Errorf("Elapsed %v vs %v", parallel.Elapsed, serial.Elapsed)
	}
	ps, ss := parallel.Stats, serial.Stats
	for r := range ps.Clocks {
		if ps.Clocks[r] != ss.Clocks[r] {
			t.Errorf("rank %d clock %v vs %v", r, ps.Clocks[r], ss.Clocks[r])
		}
		if ps.Compute[r] != ss.Compute[r] {
			t.Errorf("rank %d compute %v vs %v", r, ps.Compute[r], ss.Compute[r])
		}
		if ps.Comm[r] != ss.Comm[r] {
			t.Errorf("rank %d comm %v vs %v", r, ps.Comm[r], ss.Comm[r])
		}
	}
	for r := range ps.Timelines {
		if !reflect.DeepEqual(ps.Timelines[r], ss.Timelines[r]) {
			t.Errorf("rank %d timeline differs between host parallelism levels", r)
		}
	}
	if !reflect.DeepEqual(ps.CommMatrix, ss.CommMatrix) {
		t.Error("comm matrix differs between host parallelism levels")
	}
	if parallel.Critical.Total() != serial.Critical.Total() {
		t.Errorf("critical path total %v vs %v", parallel.Critical.Total(), serial.Critical.Total())
	}
	sumJSON := func(rep *Report) string {
		var buf bytes.Buffer
		if err := rep.Stats.Summary().WriteJSON(&buf); err != nil {
			t.Fatalf("summary JSON: %v", err)
		}
		return buf.String()
	}
	if a, b := sumJSON(parallel), sumJSON(serial); a != b {
		t.Errorf("run summaries differ:\nparallel: %s\nserial:   %s", a, b)
	}
}

// TestAnnulusPointsRandMatchesSeededWrapper: threading an explicit
// generator must reproduce the seeded wrapper exactly.
func TestAnnulusPointsRandMatchesSeededWrapper(t *testing.T) {
	want := AnnulusPoints(64, 11)
	got := AnnulusPointsRand(64, rand.New(rand.NewSource(11)))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("AnnulusPointsRand(seeded rng) differs from AnnulusPoints(seed)")
	}
}
