package coupler

import "testing"

// TestFastCollectivesCoupledRunIdentical is the coupled-run differential
// test for the runtime's analytic-collective fast path: a small
// engine-style simulation (two instances plus a coupling unit, i.e. the
// fig8 topology in miniature) must produce bitwise-identical per-rank
// virtual clocks and accounting with mpi.Config.FastCollectives on and
// off.
func TestFastCollectivesCoupledRunIdentical(t *testing.T) {
	slow, err := twoRowSim(Tree).Run(runCfg())
	if err != nil {
		t.Fatal(err)
	}
	fastCfg := runCfg()
	fastCfg.FastCollectives = true
	fast, err := twoRowSim(Tree).Run(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Elapsed != fast.Elapsed {
		t.Errorf("Elapsed: p2p %v fast %v", slow.Elapsed, fast.Elapsed)
	}
	for r := range slow.Stats.Clocks {
		if slow.Stats.Clocks[r] != fast.Stats.Clocks[r] {
			t.Errorf("rank %d clock: p2p %v fast %v", r, slow.Stats.Clocks[r], fast.Stats.Clocks[r])
		}
		if slow.Stats.Compute[r] != fast.Stats.Compute[r] || slow.Stats.Comm[r] != fast.Stats.Comm[r] {
			t.Errorf("rank %d compute/comm split differs between fast paths", r)
		}
	}
	for i := range slow.InstanceTime {
		if slow.InstanceTime[i] != fast.InstanceTime[i] {
			t.Errorf("instance %d time: p2p %v fast %v", i, slow.InstanceTime[i], fast.InstanceTime[i])
		}
	}
	for u := range slow.UnitTime {
		if slow.UnitTime[u] != fast.UnitTime[u] {
			t.Errorf("unit %d time: p2p %v fast %v", u, slow.UnitTime[u], fast.UnitTime[u])
		}
	}
}
