// Package coupler implements CPX, the mini-coupler of the paper [13]:
// coupling units (CUs) that move boundary data between solver instances.
// Sliding-plane interactions (density-density) recompute the donor
// mapping every exchange because the rotor rows move relative to the
// stators; steady-state interactions (density-pressure) compute it once.
// Three search strategies reproduce the paper's progression: brute force,
// a k-d tree, and the tree with donor prefetching from the previous
// exchange — the optimisation that cut coupling overhead to <0.5% of
// run-time in the production coupler [31].
package coupler

import "sort"

// Point2 is a point on a coupling interface plane.
type Point2 struct {
	X, Y float64
	Idx  int // original index
}

func sqDist(a, b Point2) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// KDTree is a 2-D k-d tree over interface points.
type KDTree struct {
	pts  []Point2 // stored in tree order
	axis []int8   // split axis per node
}

// BuildKDTree constructs a balanced tree (median splits). The input slice
// is not modified.
func BuildKDTree(points []Point2) *KDTree {
	pts := make([]Point2, len(points))
	copy(pts, points)
	t := &KDTree{pts: pts, axis: make([]int8, len(pts))}
	t.build(0, len(pts), 0)
	return t
}

// build arranges pts[lo:hi] into subtree form: the median element at the
// middle position, smaller coordinates left, larger right.
func (t *KDTree) build(lo, hi int, depth int8) {
	if hi-lo <= 1 {
		if hi-lo == 1 {
			t.axis[lo] = depth % 2
		}
		return
	}
	axis := depth % 2
	mid := (lo + hi) / 2
	sub := t.pts[lo:hi]
	sort.Slice(sub, func(a, b int) bool {
		if axis == 0 {
			if sub[a].X != sub[b].X {
				return sub[a].X < sub[b].X
			}
		} else {
			if sub[a].Y != sub[b].Y {
				return sub[a].Y < sub[b].Y
			}
		}
		return sub[a].Idx < sub[b].Idx
	})
	t.axis[mid] = axis
	t.build(lo, mid, depth+1)
	t.build(mid+1, hi, depth+1)
}

// neighbour is one k-NN result.
type neighbour struct {
	pt   Point2
	dist float64 // squared distance
}

// KNearest returns the k nearest stored points to q, closest first.
func (t *KDTree) KNearest(q Point2, k int) []neighbour {
	if k <= 0 || len(t.pts) == 0 {
		return nil
	}
	if k > len(t.pts) {
		k = len(t.pts)
	}
	best := make([]neighbour, 0, k)
	var visit func(lo, hi int)
	worst := func() float64 {
		if len(best) < k {
			return 1e308
		}
		return best[len(best)-1].dist
	}
	insert := func(p Point2) {
		d := sqDist(p, q)
		if len(best) == k && d >= worst() {
			return
		}
		pos := sort.Search(len(best), func(i int) bool { return best[i].dist > d })
		best = append(best, neighbour{})
		copy(best[pos+1:], best[pos:])
		best[pos] = neighbour{p, d}
		if len(best) > k {
			best = best[:k]
		}
	}
	visit = func(lo, hi int) {
		if hi <= lo {
			return
		}
		mid := (lo + hi) / 2
		insert(t.pts[mid])
		var qc, mc float64
		if t.axis[mid] == 0 {
			qc, mc = q.X, t.pts[mid].X
		} else {
			qc, mc = q.Y, t.pts[mid].Y
		}
		near, farLo, farHi := 0, 0, 0
		if qc < mc {
			near = -1
			farLo, farHi = mid+1, hi
		} else {
			near = 1
			farLo, farHi = lo, mid
		}
		if near < 0 {
			visit(lo, mid)
		} else {
			visit(mid+1, hi)
		}
		d := qc - mc
		if d*d < worst() {
			visit(farLo, farHi)
		}
	}
	visit(0, len(t.pts))
	return best
}

// Nearest returns the single nearest point to q.
func (t *KDTree) Nearest(q Point2) Point2 {
	return t.KNearest(q, 1)[0].pt
}

// bruteKNearest is the reference O(n) search used by the brute-force CU
// mode and by tests.
func bruteKNearest(pts []Point2, q Point2, k int) []neighbour {
	if k > len(pts) {
		k = len(pts)
	}
	all := make([]neighbour, len(pts))
	for i, p := range pts {
		all[i] = neighbour{p, sqDist(p, q)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].dist != all[b].dist {
			return all[a].dist < all[b].dist
		}
		return all[a].pt.Idx < all[b].pt.Idx
	})
	return all[:k]
}
