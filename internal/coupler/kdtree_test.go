package coupler

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPoints(n int, seed int64) []Point2 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point2, n)
	for i := range pts {
		pts[i] = Point2{X: rng.Float64(), Y: rng.Float64(), Idx: i}
	}
	return pts
}

func TestKDTreeMatchesBruteForce(t *testing.T) {
	pts := randomPoints(500, 1)
	tree := BuildKDTree(pts)
	queries := randomPoints(50, 2)
	for _, q := range queries {
		for _, k := range []int{1, 4, 10} {
			got := tree.KNearest(q, k)
			want := bruteKNearest(pts, q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				if got[i].dist != want[i].dist {
					t.Fatalf("k=%d result %d: dist %v, want %v", k, i, got[i].dist, want[i].dist)
				}
			}
		}
	}
}

func TestKDTreeNearestSelf(t *testing.T) {
	pts := randomPoints(100, 3)
	tree := BuildKDTree(pts)
	for _, p := range pts[:10] {
		if got := tree.Nearest(p); got.Idx != p.Idx {
			t.Fatalf("nearest to stored point %d = %d", p.Idx, got.Idx)
		}
	}
}

func TestKDTreeEdgeCases(t *testing.T) {
	// Empty tree.
	if out := BuildKDTree(nil).KNearest(Point2{}, 3); out != nil {
		t.Error("empty tree should return nil")
	}
	// k <= 0.
	tree := BuildKDTree(randomPoints(5, 4))
	if out := tree.KNearest(Point2{}, 0); out != nil {
		t.Error("k=0 should return nil")
	}
	// k > n clamps.
	if out := tree.KNearest(Point2{}, 100); len(out) != 5 {
		t.Errorf("k>n returned %d", len(out))
	}
	// Single point.
	one := BuildKDTree([]Point2{{X: 1, Y: 2, Idx: 0}})
	if got := one.Nearest(Point2{X: 0, Y: 0}); got.Idx != 0 {
		t.Error("single-point tree wrong")
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	pts := make([]Point2, 20)
	for i := range pts {
		pts[i] = Point2{X: 0.5, Y: 0.5, Idx: i}
	}
	tree := BuildKDTree(pts)
	got := tree.KNearest(Point2{X: 0.5, Y: 0.5}, 4)
	if len(got) != 4 {
		t.Fatalf("duplicates: %d results", len(got))
	}
	for _, nb := range got {
		if nb.dist != 0 {
			t.Error("duplicate point distance nonzero")
		}
	}
}

func TestKDTreeDoesNotMutateInput(t *testing.T) {
	pts := randomPoints(50, 5)
	before := make([]Point2, len(pts))
	copy(before, pts)
	BuildKDTree(pts)
	for i := range pts {
		if pts[i] != before[i] {
			t.Fatal("BuildKDTree mutated its input")
		}
	}
}

func TestKDTreeProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%200 + 1
		k := int(kRaw)%8 + 1
		pts := randomPoints(n, seed)
		tree := BuildKDTree(pts)
		q := Point2{X: 0.3, Y: 0.7}
		got := tree.KNearest(q, k)
		want := bruteKNearest(pts, q, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].dist != want[i].dist {
				return false
			}
		}
		// Results sorted ascending.
		for i := 1; i < len(got); i++ {
			if got[i].dist < got[i-1].dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
