package coupler

import (
	"fmt"
	"math"
	"math/rand"

	"cpx/internal/cluster"
)

// Search selects the donor-search strategy of a coupling unit.
type Search int

// Search strategies (Section V-B / [31]).
const (
	BruteForce   Search = iota // O(targets * donors) reference
	Tree                       // k-d tree rebuilt per exchange
	TreePrefetch               // k-d tree + donor cache warm-started from the previous exchange
)

func (s Search) String() string {
	switch s {
	case BruteForce:
		return "brute-force"
	case Tree:
		return "kd-tree"
	default:
		return "kd-tree+prefetch"
	}
}

// Search work constants (per candidate distance evaluation, per tree node
// visit, per tree-build comparison).
const (
	distEvalFlops  = 8.0
	distEvalBytes  = 24.0
	treeVisitFlops = 40.0
	treeVisitBytes = 64.0
	buildFlops     = 30.0
	buildBytes     = 48.0
)

// DonorsPerTarget is the interpolation stencil size.
const DonorsPerTarget = 4

// Mapping is a computed interface mapping: for each target point, the
// donor indices (into the donor point array) and inverse-distance
// weights.
type Mapping struct {
	Donors  [][]int
	Weights [][]float64
}

// Mapper computes interface mappings with a configurable strategy and
// carries the donor cache between exchanges for TreePrefetch.
type Mapper struct {
	Kind  Search
	cache [][]int // previous donors per target

	// last is the most recent mapping (kept by coupling units between
	// exchanges for steady-state interfaces).
	last *Mapping

	// hit/miss statistics of the last Map call (prefetch mode).
	LastHits, LastMisses int
}

// Map computes the donor mapping from donors to targets. Pure real
// computation on the given (possibly scaled-down) point sets.
func (m *Mapper) Map(targets, donors []Point2) *Mapping {
	if len(donors) == 0 {
		panic("coupler: Map with no donor points")
	}
	out := &Mapping{
		Donors:  make([][]int, len(targets)),
		Weights: make([][]float64, len(targets)),
	}
	m.LastHits, m.LastMisses = 0, 0
	var tree *KDTree
	if m.Kind != BruteForce {
		tree = BuildKDTree(donors)
	}
	// Acceptance radius for cached donors: twice the mean donor spacing.
	var accept2 float64
	if m.Kind == TreePrefetch && m.cache != nil {
		spacing := meanSpacing(donors)
		accept2 = 4 * spacing * spacing
	}
	for ti, q := range targets {
		var nbrs []neighbour
		switch {
		case m.Kind == BruteForce:
			nbrs = bruteKNearest(donors, q, DonorsPerTarget)
		case m.Kind == TreePrefetch && m.cache != nil && ti < len(m.cache):
			// Validate the cached donors at their new positions.
			cand := m.cache[ti]
			bestD := math.MaxFloat64
			for _, di := range cand {
				if di < len(donors) {
					if d := sqDist(donors[di], q); d < bestD {
						bestD = d
					}
				}
			}
			if bestD <= accept2 {
				m.LastHits++
				nbrs = make([]neighbour, 0, len(cand))
				for _, di := range cand {
					if di < len(donors) {
						nbrs = append(nbrs, neighbour{donors[di], sqDist(donors[di], q)})
					}
				}
			} else {
				m.LastMisses++
				nbrs = tree.KNearest(q, DonorsPerTarget)
			}
		default:
			nbrs = tree.KNearest(q, DonorsPerTarget)
		}
		idx := make([]int, len(nbrs))
		w := make([]float64, len(nbrs))
		wSum := 0.0
		for i, nb := range nbrs {
			idx[i] = nb.pt.Idx
			w[i] = 1.0 / (math.Sqrt(nb.dist) + 1e-12)
			wSum += w[i]
		}
		for i := range w {
			w[i] /= wSum
		}
		out.Donors[ti] = idx
		out.Weights[ti] = w
	}
	// Refresh the cache with positions in the donor array (not original
	// indices): donor arrays keep a stable order between exchanges.
	if m.Kind == TreePrefetch {
		m.cache = make([][]int, len(targets))
		pos := make(map[int]int, len(donors))
		for i, d := range donors {
			pos[d.Idx] = i
		}
		for ti, idx := range out.Donors {
			c := make([]int, len(idx))
			for i, id := range idx {
				c[i] = pos[id]
			}
			m.cache[ti] = c
		}
	}
	return out
}

// meanSpacing estimates the mean nearest-neighbour spacing of a point set
// from a sample.
func meanSpacing(pts []Point2) float64 {
	if len(pts) < 2 {
		return 1
	}
	tree := BuildKDTree(pts)
	n := len(pts)
	step := n / 16
	if step == 0 {
		step = 1
	}
	sum, cnt := 0.0, 0
	for i := 0; i < n; i += step {
		nb := tree.KNearest(pts[i], 2) // nearest excluding self
		d := nb[len(nb)-1].dist
		sum += math.Sqrt(d)
		cnt++
	}
	return sum / float64(cnt)
}

// MapWork returns the roofline work of one mapping at the true interface
// sizes, for the strategy used, using the hit rate observed on the
// simulated points. rebuild reports whether the tree had to be (re)built
// (always for sliding planes; once for steady state).
func (m *Mapper) MapWork(trueTargets, trueDonors float64, rebuild bool) cluster.Work {
	var w cluster.Work
	logD := math.Log2(math.Max(trueDonors, 2))
	switch m.Kind {
	case BruteForce:
		w.Flops = distEvalFlops * trueTargets * trueDonors
		w.Bytes = distEvalBytes * trueTargets * trueDonors
	case Tree:
		if rebuild {
			w.Flops += buildFlops * trueDonors * logD
			w.Bytes += buildBytes * trueDonors * logD
		}
		w.Flops += treeVisitFlops * trueTargets * logD
		w.Bytes += treeVisitBytes * trueTargets * logD
	case TreePrefetch:
		hitRate := 1.0
		if m.LastHits+m.LastMisses > 0 {
			hitRate = float64(m.LastHits) / float64(m.LastHits+m.LastMisses)
		}
		if rebuild {
			// The tree is rebuilt lazily only for the misses' benefit; the
			// production implementation amortises it, modelled as a build
			// over the miss fraction of donors.
			w.Flops += buildFlops * trueDonors * logD * (1 - hitRate)
			w.Bytes += buildBytes * trueDonors * logD * (1 - hitRate)
		}
		hits := trueTargets * hitRate
		misses := trueTargets - hits
		w.Flops += distEvalFlops*float64(DonorsPerTarget)*hits + treeVisitFlops*misses*logD
		w.Bytes += distEvalBytes*float64(DonorsPerTarget)*hits + treeVisitBytes*misses*logD
	}
	return w
}

// Interpolate applies a mapping to donor values, producing target values.
func (mp *Mapping) Interpolate(donorVals []float64) []float64 {
	out := make([]float64, len(mp.Donors))
	for ti, idx := range mp.Donors {
		s := 0.0
		for i, di := range idx {
			s += mp.Weights[ti][i] * donorVals[di]
		}
		out[ti] = s
	}
	return out
}

// InterpolateConservative applies the transpose mapping so the total of
// the transferred quantity is preserved — the conservative transfer mode
// couplers such as preCICE and MCT offer for fluxes (heat, mass) as
// opposed to the consistent IDW mode used for state fields. donorVals are
// *extensive* quantities; each donor's value is scattered to the targets
// that reference it, normalised per donor.
func (mp *Mapping) InterpolateConservative(donorVals []float64, numDonors int) []float64 {
	// Per-donor total referencing weight.
	wsum := make([]float64, numDonors)
	for ti, idx := range mp.Donors {
		for i, di := range idx {
			wsum[di] += mp.Weights[ti][i]
		}
	}
	out := make([]float64, len(mp.Donors))
	for ti, idx := range mp.Donors {
		s := 0.0
		for i, di := range idx {
			if wsum[di] > 0 {
				s += mp.Weights[ti][i] / wsum[di] * donorVals[di]
			}
		}
		out[ti] = s
	}
	return out
}

// InterpolateWork returns the roofline cost of applying the mapping at
// true sizes.
func InterpolateWork(trueTargets float64) cluster.Work {
	return cluster.Work{
		Flops: 2 * float64(DonorsPerTarget) * trueTargets,
		Bytes: 24 * float64(DonorsPerTarget) * trueTargets,
	}
}

// AnnulusPoints generates n jittered points on an annular interface
// (r in [0.8, 1.0]), deterministic per seed. Idx fields are 0..n-1.
func AnnulusPoints(n int, seed int64) []Point2 {
	return AnnulusPointsRand(n, rand.New(rand.NewSource(seed)))
}

// AnnulusPointsRand is AnnulusPoints drawing from an explicit generator,
// for callers that thread one seeded stream through a whole setup phase.
func AnnulusPointsRand(n int, rng *rand.Rand) []Point2 {
	pts := make([]Point2, n)
	for i := range pts {
		r := 0.8 + 0.2*rng.Float64()
		th := 2 * math.Pi * rng.Float64()
		pts[i] = Point2{X: r * math.Cos(th), Y: r * math.Sin(th), Idx: i}
	}
	return pts
}

// Rotate returns the points rotated by dtheta about the origin — the
// per-step motion of a rotor row's sliding-plane interface.
func Rotate(pts []Point2, dtheta float64) []Point2 {
	c, s := math.Cos(dtheta), math.Sin(dtheta)
	out := make([]Point2, len(pts))
	for i, p := range pts {
		out[i] = Point2{X: c*p.X - s*p.Y, Y: s*p.X + c*p.Y, Idx: p.Idx}
	}
	return out
}

// Validate sanity-checks a mapping: every target has donors with weights
// summing to one.
func (mp *Mapping) Validate() error {
	for ti, idx := range mp.Donors {
		if len(idx) == 0 {
			return fmt.Errorf("coupler: target %d has no donors", ti)
		}
		sum := 0.0
		for _, w := range mp.Weights[ti] {
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("coupler: target %d weights sum to %v", ti, sum)
		}
	}
	return nil
}
