package coupler

import (
	"math"
	"testing"
)

func TestMapperStrategiesAgreeOnDonors(t *testing.T) {
	donors := AnnulusPoints(400, 1)
	targets := AnnulusPoints(100, 2)
	brute := (&Mapper{Kind: BruteForce}).Map(targets, donors)
	tree := (&Mapper{Kind: Tree}).Map(targets, donors)
	for ti := range brute.Donors {
		// Same donor distance profile (indices can differ on ties).
		for i := range brute.Donors[ti] {
			db := sqDist(donors[brute.Donors[ti][i]], targets[ti])
			dt := sqDist(donors[tree.Donors[ti][i]], targets[ti])
			if math.Abs(db-dt) > 1e-12 {
				t.Fatalf("target %d donor %d: brute dist %v vs tree %v", ti, i, db, dt)
			}
		}
	}
}

func TestMappingValidates(t *testing.T) {
	donors := AnnulusPoints(200, 3)
	targets := AnnulusPoints(50, 4)
	for _, kind := range []Search{BruteForce, Tree, TreePrefetch} {
		m := (&Mapper{Kind: kind}).Map(targets, donors)
		if err := m.Validate(); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

func TestInterpolateConstantField(t *testing.T) {
	// IDW with weights summing to 1 must reproduce constants exactly.
	donors := AnnulusPoints(300, 5)
	targets := AnnulusPoints(80, 6)
	mp := (&Mapper{Kind: Tree}).Map(targets, donors)
	vals := make([]float64, len(donors))
	for i := range vals {
		vals[i] = 7.25
	}
	out := mp.Interpolate(vals)
	for ti, v := range out {
		if math.Abs(v-7.25) > 1e-9 {
			t.Fatalf("target %d: constant field interpolated to %v", ti, v)
		}
	}
}

func TestInterpolateSmoothField(t *testing.T) {
	// A linear field must interpolate with small error on a dense donor set.
	donors := AnnulusPoints(5000, 7)
	targets := AnnulusPoints(50, 8)
	mp := (&Mapper{Kind: Tree}).Map(targets, donors)
	vals := make([]float64, len(donors))
	for i, d := range donors {
		vals[i] = 2*d.X + 3*d.Y
	}
	out := mp.Interpolate(vals)
	for ti, v := range out {
		want := 2*targets[ti].X + 3*targets[ti].Y
		if math.Abs(v-want) > 0.2 {
			t.Fatalf("target %d: linear field %v, want %v", ti, v, want)
		}
	}
}

func TestPrefetchHitsAfterSmallRotation(t *testing.T) {
	donors := AnnulusPoints(2000, 9)
	targets := AnnulusPoints(300, 10)
	m := &Mapper{Kind: TreePrefetch}
	m.Map(targets, donors)
	if m.LastHits != 0 {
		t.Error("first mapping cannot have cache hits")
	}
	// Tiny rotation: nearly every cached donor remains valid.
	rotated := Rotate(donors, 0.001)
	m.Map(targets, rotated)
	total := m.LastHits + m.LastMisses
	if total == 0 {
		t.Fatal("no prefetch statistics")
	}
	if rate := float64(m.LastHits) / float64(total); rate < 0.9 {
		t.Errorf("prefetch hit rate %v after tiny rotation; want > 0.9", rate)
	}
	// Large rotation: many misses expected.
	m2 := &Mapper{Kind: TreePrefetch}
	m2.Map(targets, donors)
	m2.Map(targets, Rotate(donors, math.Pi/2))
	if m2.LastMisses == 0 {
		t.Error("quarter-turn rotation should produce cache misses")
	}
}

func TestMapWorkOrdering(t *testing.T) {
	const nt, nd = 50_000, 200_000
	brute := (&Mapper{Kind: BruteForce}).MapWork(nt, nd, true)
	tree := (&Mapper{Kind: Tree}).MapWork(nt, nd, true)
	pf := &Mapper{Kind: TreePrefetch, LastHits: 95, LastMisses: 5}
	prefetch := pf.MapWork(nt, nd, true)
	if !(tree.Flops < brute.Flops) {
		t.Errorf("tree (%v) not cheaper than brute (%v)", tree.Flops, brute.Flops)
	}
	if !(prefetch.Flops < tree.Flops) {
		t.Errorf("prefetch (%v) not cheaper than tree (%v)", prefetch.Flops, tree.Flops)
	}
	// Steady state (no rebuild) cheaper than sliding (rebuild).
	steady := (&Mapper{Kind: Tree}).MapWork(nt, nd, false)
	if !(steady.Flops < tree.Flops) {
		t.Error("no-rebuild mapping should be cheaper")
	}
}

func TestInterpolateWorkScales(t *testing.T) {
	small := InterpolateWork(100)
	big := InterpolateWork(10_000)
	if !(big.Flops > small.Flops) {
		t.Error("interpolate work should grow with targets")
	}
}

func TestRotatePreservesRadius(t *testing.T) {
	pts := AnnulusPoints(100, 11)
	rot := Rotate(pts, 1.234)
	for i := range pts {
		r0 := math.Hypot(pts[i].X, pts[i].Y)
		r1 := math.Hypot(rot[i].X, rot[i].Y)
		if math.Abs(r0-r1) > 1e-12 {
			t.Fatalf("rotation changed radius: %v vs %v", r0, r1)
		}
		if rot[i].Idx != pts[i].Idx {
			t.Fatal("rotation changed indices")
		}
	}
}

func TestAnnulusDeterministic(t *testing.T) {
	a := AnnulusPoints(50, 12)
	b := AnnulusPoints(50, 12)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("AnnulusPoints not deterministic")
		}
	}
	for _, p := range a {
		r := math.Hypot(p.X, p.Y)
		if r < 0.8-1e-9 || r > 1.0+1e-9 {
			t.Fatalf("point radius %v outside annulus", r)
		}
	}
}

func TestMapEmptyDonorsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty donors accepted")
		}
	}()
	(&Mapper{Kind: Tree}).Map(AnnulusPoints(5, 1), nil)
}

func TestConservativeTransferPreservesTotals(t *testing.T) {
	donors := AnnulusPoints(800, 15)
	targets := AnnulusPoints(500, 16)
	mp := (&Mapper{Kind: Tree}).Map(targets, donors)
	flux := make([]float64, len(donors))
	total := 0.0
	for i := range flux {
		flux[i] = 1 + 0.5*math.Sin(float64(i))
		total += flux[i]
	}
	out := mp.InterpolateConservative(flux, len(donors))
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	// Donors never referenced by any target lose their flux; with dense
	// targets almost every donor is referenced, so totals must agree to
	// within the unreferenced fraction.
	if math.Abs(sum-total)/total > 0.15 {
		t.Errorf("conservative transfer lost flux: %v of %v", sum, total)
	}
	// A transfer where every donor is referenced conserves exactly: map a
	// small donor set onto many targets.
	fewDonors := AnnulusPoints(40, 17)
	manyTargets := AnnulusPoints(400, 18)
	mp2 := (&Mapper{Kind: Tree}).Map(manyTargets, fewDonors)
	f2 := make([]float64, len(fewDonors))
	tot2 := 0.0
	for i := range f2 {
		f2[i] = float64(i + 1)
		tot2 += f2[i]
	}
	out2 := mp2.InterpolateConservative(f2, len(fewDonors))
	sum2 := 0.0
	for _, v := range out2 {
		sum2 += v
	}
	if math.Abs(sum2-tot2) > 1e-9*tot2 {
		t.Errorf("fully-referenced conservative transfer inexact: %v vs %v", sum2, tot2)
	}
}
