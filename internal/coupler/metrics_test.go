package coupler

import (
	"reflect"
	"runtime"
	"testing"

	"cpx/internal/telemetry"
)

// TestCoupledMetricsRunIdenticalAcrossHostParallelism extends the
// coupled determinism gate to the telemetry layer: with the virtual-time
// sampler on, the per-rank and per-component series must be bitwise
// identical across host parallelism levels, and the clocks must match a
// metrics-off run exactly.
func TestCoupledMetricsRunIdenticalAcrossHostParallelism(t *testing.T) {
	metricsRun := func() *Report {
		cfg := tracedRunCfg()
		cfg.Metrics = &telemetry.Config{Interval: 1e-3}
		rep, err := twoRowSim(Tree).Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	parallel := metricsRun()
	prev := runtime.GOMAXPROCS(1)
	serial := metricsRun()
	runtime.GOMAXPROCS(prev)

	if parallel.Metrics == nil || serial.Metrics == nil {
		t.Fatal("sampled coupled run carries no metrics")
	}
	if !reflect.DeepEqual(parallel.Metrics, serial.Metrics) {
		t.Error("metric series differ between host parallelism levels")
	}

	// Metrics must not perturb the run: clocks bitwise-equal to the
	// unsampled run.
	plain, err := twoRowSim(Tree).Run(tracedRunCfg())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Elapsed != parallel.Elapsed {
		t.Errorf("Elapsed %v with metrics, %v without", parallel.Elapsed, plain.Elapsed)
	}
	for r := range plain.Stats.Clocks {
		if plain.Stats.Clocks[r] != parallel.Stats.Clocks[r] {
			t.Errorf("rank %d clock %v with metrics, %v without",
				r, parallel.Stats.Clocks[r], plain.Stats.Clocks[r])
		}
	}
	for r := range plain.Stats.Timelines {
		if !reflect.DeepEqual(plain.Stats.Timelines[r], parallel.Stats.Timelines[r]) {
			t.Errorf("rank %d timeline differs with metrics on", r)
		}
	}
}

// TestCoupledMetricsComponentAttribution: the coupler must aggregate the
// rank series into one component series per instance and coupling unit,
// with rank counts matching the layout and totals summing the members.
func TestCoupledMetricsComponentAttribution(t *testing.T) {
	sim := twoRowSim(Tree)
	cfg := tracedRunCfg()
	cfg.Metrics = &telemetry.Config{Interval: 1e-3}
	rep, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil {
		t.Fatal("no metrics on sampled run")
	}
	want := map[string]int{}
	for _, is := range sim.Instances {
		want[is.Name] += is.Ranks
	}
	for _, us := range sim.Units {
		want[us.Name] += us.Ranks
	}
	got := map[string]int{}
	for _, ls := range rep.Metrics.Components {
		got[ls.Label] += ls.Ranks
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("component rank attribution = %v, want %v", got, want)
	}
	// Summing each label's members in rank order reproduces the
	// aggregation exactly (same additions in the same order).
	wantCompute := map[string]float64{}
	for _, rs := range rep.Metrics.Ranks {
		wantCompute[sim.ComponentName(rs.Rank)] += rs.Totals.Compute
	}
	for _, ls := range rep.Metrics.Components {
		if ls.Totals.Compute != wantCompute[ls.Label] {
			t.Errorf("component %q compute %v, member sum %v",
				ls.Label, ls.Totals.Compute, wantCompute[ls.Label])
		}
	}
}
