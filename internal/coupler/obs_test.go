package coupler

import (
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"cpx/internal/mpi"
	"cpx/internal/trace"
)

// lopsidedSim couples a small and a much larger MG-CFD instance so the
// big one unambiguously owns the critical path. Exchanging every other
// step leaves the final density step exchange-free, so the run ends on
// the big instance's own compute rather than on a synchronising CU recv.
func lopsidedSim() *Simulation {
	return &Simulation{
		Instances: []InstanceSpec{
			{Name: "small", Kind: KindMGCFD, MeshCells: 1024, Ranks: 4, Seed: 1},
			{Name: "big", Kind: KindMGCFD, MeshCells: 262144, Ranks: 4, Seed: 2},
		},
		Units: []UnitSpec{
			{Name: "cu", A: 0, B: 1, Kind: SlidingPlane, Points: 2000, Ranks: 2, Search: Tree, ExchangeEvery: 2},
		},
		DensitySteps:    3,
		RotationPerStep: 0.001,
		Scale:           Scale{MaxPointsPerSide: 256},
	}
}

func tracedRunCfg() mpi.Config {
	cfg := runCfg()
	cfg.Trace = true
	return cfg
}

// TestCoupledTraceExports is the acceptance test for the observability
// tentpole: a fig8-style coupled run must yield a loadable Chrome trace,
// a comm-matrix CSV, and a critical path that telescopes to the elapsed
// virtual time and names the instance of the max-clock rank.
func TestCoupledTraceExports(t *testing.T) {
	rep, err := lopsidedSim().Run(tracedRunCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats == nil || rep.Stats.Timelines == nil {
		t.Fatal("traced run did not populate Stats.Timelines")
	}
	if rep.Critical == nil {
		t.Fatal("traced run did not compute the critical path")
	}

	// (c) Critical path telescopes to Stats.Elapsed within 1e-9 and the
	// dominant component matches the max-clock rank's instance.
	if diff := math.Abs(rep.Critical.Total() - rep.Stats.Elapsed); diff > 1e-9 {
		t.Errorf("critical path total %g vs elapsed %g (diff %g)",
			rep.Critical.Total(), rep.Stats.Elapsed, diff)
	}
	sim := lopsidedSim()
	wantComp := sim.ComponentName(rep.Stats.MaxClockRank())
	if got := rep.DominantComponent(); got != wantComp {
		t.Errorf("dominant component = %q, max-clock rank %d belongs to %q",
			got, rep.Stats.MaxClockRank(), wantComp)
	}
	if wantComp != "big" {
		t.Errorf("max-clock rank is in %q, expected the big instance to dominate", wantComp)
	}
	var share float64
	for _, ls := range rep.CriticalComponents {
		if ls.Label == "big" {
			share = ls.Share
		}
	}
	if share < 0.5 {
		t.Errorf("big instance carries %.2f of the path, want a clear majority", share)
	}

	// (a) Chrome trace-event JSON: valid JSON in the shape Perfetto loads.
	var traceBuf strings.Builder
	if err := trace.WriteChromeTrace(&traceBuf, rep.Stats.Timelines); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(traceBuf.String()), &chrome); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if chrome.DisplayTimeUnit == "" || len(chrome.TraceEvents) < sim.TotalRanks() {
		t.Errorf("trace export too small: %d events", len(chrome.TraceEvents))
	}
	seenRanks := map[int]bool{}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "X" {
			seenRanks[ev.Tid] = true
		}
	}
	if len(seenRanks) != sim.TotalRanks() {
		t.Errorf("trace covers %d ranks, want %d", len(seenRanks), sim.TotalRanks())
	}

	// (b) Comm-matrix CSV parses and accounts real traffic.
	var commBuf strings.Builder
	if err := rep.Stats.CommMatrix.WriteCSV(&commBuf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(commBuf.String())).ReadAll()
	if err != nil {
		t.Fatalf("comm matrix export is not valid CSV: %v", err)
	}
	if len(recs) < 2 {
		t.Fatalf("comm matrix is empty:\n%s", commBuf.String())
	}
	msgs, bytes := rep.Stats.CommMatrix.Totals()
	if msgs == 0 || bytes == 0 {
		t.Errorf("comm matrix totals = %d msgs, %d bytes", msgs, bytes)
	}

	// JSON run summary round-trips with the component attribution attached.
	sum := rep.Stats.Summary()
	sum.CriticalPath.Components = rep.CriticalComponents
	var sumBuf strings.Builder
	if err := sum.WriteJSON(&sumBuf); err != nil {
		t.Fatal(err)
	}
	var back trace.RunSummary
	if err := json.Unmarshal([]byte(sumBuf.String()), &back); err != nil {
		t.Fatalf("run summary is not valid JSON: %v", err)
	}
	if back.CriticalPath == nil || len(back.CriticalPath.Components) == 0 {
		t.Error("run summary lost the critical-path components")
	}
}

// TestTracingLeavesCoupledRunIdentical: the same coupled simulation with
// and without tracing must produce bitwise-identical virtual times.
func TestTracingLeavesCoupledRunIdentical(t *testing.T) {
	plain, err := lopsidedSim().Run(runCfg())
	if err != nil {
		t.Fatal(err)
	}
	traced, err := lopsidedSim().Run(tracedRunCfg())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Elapsed != traced.Elapsed {
		t.Errorf("Elapsed differs: plain %v traced %v", plain.Elapsed, traced.Elapsed)
	}
	for i := range plain.InstanceTime {
		if plain.InstanceTime[i] != traced.InstanceTime[i] {
			t.Errorf("instance %d time differs: %v vs %v", i, plain.InstanceTime[i], traced.InstanceTime[i])
		}
	}
	for u := range plain.UnitTime {
		if plain.UnitTime[u] != traced.UnitTime[u] {
			t.Errorf("unit %d time differs: %v vs %v", u, plain.UnitTime[u], traced.UnitTime[u])
		}
	}
	if plain.Critical != nil || plain.CriticalComponents != nil {
		t.Error("untraced report carries critical-path data")
	}
	if plain.DominantComponent() != "" {
		t.Error("untraced DominantComponent() should be empty")
	}
}
