package coupler

import (
	"runtime"
	"testing"

	"cpx/internal/fault"
	"cpx/internal/particle"
)

// particleSim couples a flow row to a Lagrangian particle instance
// through a per-step coupling unit: droplet source terms flow one way,
// interpolated gas fields the other — the MiniCombust layout with
// dedicated particle ranks.
func particleSim(st particle.Strategy) *Simulation {
	return &Simulation{
		Instances: []InstanceSpec{
			{Name: "flow", Kind: KindMGCFD, MeshCells: 4096, Ranks: 4, Seed: 1},
			{Name: "spray", Kind: KindParticle, MeshCells: 160_000, Ranks: 4, Seed: 3,
				Particle: &particle.Config{ConeFraction: 0.1, EvapSteps: 40,
					Strategy: st, ImbalanceThreshold: 1.2}},
		},
		Units: []UnitSpec{
			{Name: "spray-cu", A: 0, B: 1, Kind: SteadyState, Points: 2000, Ranks: 2,
				Search: Tree, ExchangeEvery: 1},
		},
		DensitySteps: 4,
		Scale: Scale{
			Particle:         particle.ScaleOpts{MaxDropletsPerRank: 128},
			MaxPointsPerSide: 256,
		},
	}
}

// TestCoupledParticleRunCompletes runs the coupled particle workload
// under every balancing strategy and checks the load report surfaces
// through the coupler like any other solver's accounting.
func TestCoupledParticleRunCompletes(t *testing.T) {
	for _, st := range particle.Strategies() {
		rep, err := particleSim(st).Run(runCfg())
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if rep.Elapsed <= 0 {
			t.Fatalf("%v: no elapsed time", st)
		}
		if rep.ParticleLoads[0] != nil {
			t.Errorf("%v: flow instance has a particle load report", st)
		}
		lr := rep.ParticleLoads[1]
		if lr == nil {
			t.Fatalf("%v: particle instance missing load report", st)
		}
		if lr.Strategy != st.String() || lr.Ranks != 4 {
			t.Errorf("%v: load report %+v", st, lr)
		}
		if lr.PeakImbalance < 1 {
			t.Errorf("%v: peak imbalance %v below 1", st, lr.PeakImbalance)
		}
		if st == particle.WorkSteal && lr.Stolen == 0 {
			t.Errorf("steal strategy never stole on a clustered cloud")
		}
		if st == particle.Repartition && lr.Repartitions == 0 {
			t.Errorf("repartition strategy never fired under threshold 1.2")
		}
	}
}

// TestCoupledParticleDefaultsDroplets checks the MeshCells/4 default
// (the paper's 7M droplets per 28M cells) and that instance validation
// errors surface with the instance name.
func TestCoupledParticleDefaultsDroplets(t *testing.T) {
	sim := particleSim(particle.StaticSplit)
	sim.Instances[1].Particle = nil // all defaults: Droplets = MeshCells/4
	if _, err := sim.Run(runCfg()); err != nil {
		t.Fatal(err)
	}
	bad := particleSim(particle.StaticSplit)
	bad.Instances[1].MeshCells = 0
	bad.Instances[1].Particle = nil
	if _, err := bad.Run(runCfg()); err == nil {
		t.Error("zero-droplet particle instance accepted")
	}
}

// TestCoupledParticleExecutorsIdentical is the subsystem's coupled
// determinism gate: the full particle↔flow simulation must produce
// bitwise-identical virtual clocks and state digests on the goroutine
// and event-driven executors and under GOMAXPROCS=1, for every strategy.
func TestCoupledParticleExecutorsIdentical(t *testing.T) {
	for _, st := range particle.Strategies() {
		run := func(event bool) *Report {
			cfg := runCfg()
			cfg.EventDriven = event
			rep, err := particleSim(st).Run(cfg)
			if err != nil {
				t.Fatalf("%v: %v", st, err)
			}
			return rep
		}
		base := run(false)
		event := run(true)
		prev := runtime.GOMAXPROCS(1)
		serial := run(false)
		runtime.GOMAXPROCS(prev)
		for name, other := range map[string]*Report{"event": event, "serial": serial} {
			if other.Elapsed != base.Elapsed {
				t.Errorf("%v/%s: elapsed %v vs %v", st, name, other.Elapsed, base.Elapsed)
			}
			for r := range base.Stats.Clocks {
				if other.Stats.Clocks[r] != base.Stats.Clocks[r] {
					t.Errorf("%v/%s: rank %d clock %v vs %v",
						st, name, r, other.Stats.Clocks[r], base.Stats.Clocks[r])
				}
			}
			for r := range base.RankDigests {
				if other.RankDigests[r] != base.RankDigests[r] {
					t.Errorf("%v/%s: rank %d digest %#x vs %#x",
						st, name, r, other.RankDigests[r], base.RankDigests[r])
				}
			}
		}
	}
}

// TestCoupledParticleTraceAttribution checks the critical-path analyser
// sees the particle component like any other: a traced run attributes
// shares to the named instances/units including the spray.
func TestCoupledParticleTraceAttribution(t *testing.T) {
	cfg := runCfg()
	cfg.Trace = true
	rep, err := particleSim(particle.StaticSplit).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Critical == nil || len(rep.CriticalComponents) == 0 {
		t.Fatal("traced run missing critical path attribution")
	}
	seen := map[string]bool{}
	for _, c := range rep.CriticalComponents {
		seen[c.Label] = true
	}
	for _, want := range []string{"flow", "spray", "spray-cu"} {
		if !seen[want] {
			t.Errorf("critical path attribution missing component %q (got %v)", want, rep.CriticalComponents)
		}
	}
}

// TestCoupledParticleResilience injects a particle-rank crash into a
// checkpointed coupled run: recovery must restore from the last
// checkpoint and finish with final state digests bitwise identical to
// the fault-free run — including the repartition balancer's tree, which
// travels through the checkpoint.
func TestCoupledParticleResilience(t *testing.T) {
	for _, st := range []particle.Strategy{particle.StaticSplit, particle.Repartition} {
		mk := func() *Simulation {
			s := particleSim(st)
			s.DensitySteps = 8
			return s
		}
		base, err := mk().RunResilient(runCfg(), ResilienceOptions{CheckpointEvery: 2})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if base.Attempts != 1 {
			t.Fatalf("%v: baseline restarted: %d attempts", st, base.Attempts)
		}
		// Rank 5 is the second particle rank (flow holds 0-3).
		plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 5, At: 0.9 * base.Elapsed}}}
		faulty, err := mk().RunResilient(runCfg(), ResilienceOptions{
			Plan: plan, CheckpointEvery: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if faulty.Attempts != 2 {
			t.Fatalf("%v: attempts = %d, want 2", st, faulty.Attempts)
		}
		if faulty.Elapsed <= base.Elapsed {
			t.Errorf("%v: faulty elapsed %v not above fault-free %v", st, faulty.Elapsed, base.Elapsed)
		}
		for r := range base.RankDigests {
			if faulty.RankDigests[r] != base.RankDigests[r] {
				t.Errorf("%v: rank %d digest %#x != fault-free %#x",
					st, r, faulty.RankDigests[r], base.RankDigests[r])
			}
		}
	}
}
