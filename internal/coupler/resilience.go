package coupler

// Coordinated checkpoint/restart for coupled runs (DESIGN.md Section 7).
//
// The checkpoint protocol piggybacks on the coupler's step structure: at
// the end of a density step on a checkpoint boundary, every world rank
// snapshots its mutable state (solver fields for instance ranks, donor
// caches and mappings for coupling-unit ranks) and joins a world-wide
// CheckpointSync that charges the modelled stable-storage write and
// synchronises all rank clocks to the commit time. Because every message
// of a density step is matched within that step, the cut is globally
// consistent by construction — no in-flight messages cross it.
//
// Recovery restarts the whole world (ULFM shrink-and-respawn is modelled
// as a full restart with re-setup), restores every rank from the last
// committed snapshot, and jumps the rank clocks to the checkpoint's
// synchronised commit time. A restarted attempt therefore replays the
// virtual timeline of the fault-free run bit for bit, which is what lets
// RunResilient charge failures as an additive overhead:
//
//	elapsed(faulty) = elapsed(fault-free) + rework + detection + restart
//
// with exact float equality for crash-only fault plans (stragglers and
// degraded links perturb the replayed timeline itself, so for those the
// identity holds only for the state digests, not the clocks).

import (
	"errors"
	"fmt"

	"cpx/internal/cluster"
	"cpx/internal/fault"
	"cpx/internal/mpi"
)

// mapperCheckpoint is a deep copy of a Mapper's mutable state: the donor
// cache carried between exchanges, the retained mapping, and the
// hit/miss counters (which feed MapWork's modelled cost, so they must
// survive a restart bit for bit).
type mapperCheckpoint struct {
	Cache      [][]int
	Last       *Mapping
	Hits, Miss int
}

func (m *Mapper) checkpoint() *mapperCheckpoint {
	ck := &mapperCheckpoint{Hits: m.LastHits, Miss: m.LastMisses}
	if m.cache != nil {
		ck.Cache = make([][]int, len(m.cache))
		for i, c := range m.cache {
			ck.Cache[i] = append([]int(nil), c...)
		}
	}
	if m.last != nil {
		ck.Last = m.last.clone()
	}
	return ck
}

func (m *Mapper) restore(ck *mapperCheckpoint) {
	m.cache = nil
	if ck.Cache != nil {
		m.cache = make([][]int, len(ck.Cache))
		for i, c := range ck.Cache {
			m.cache[i] = append([]int(nil), c...)
		}
	}
	m.last = nil
	if ck.Last != nil {
		m.last = ck.Last.clone()
	}
	m.LastHits, m.LastMisses = ck.Hits, ck.Miss
}

func (mp *Mapping) clone() *Mapping {
	out := &Mapping{
		Donors:  make([][]int, len(mp.Donors)),
		Weights: make([][]float64, len(mp.Weights)),
	}
	for i, d := range mp.Donors {
		out.Donors[i] = append([]int(nil), d...)
	}
	for i, w := range mp.Weights {
		out.Weights[i] = append([]float64(nil), w...)
	}
	return out
}

// digest hashes the exact bit patterns of the mapper's mutable state.
func (m *Mapper) digest(d *fault.Digest) {
	d.Int(len(m.cache))
	for _, c := range m.cache {
		for _, v := range c {
			d.Int(v)
		}
	}
	if m.last != nil {
		for _, idx := range m.last.Donors {
			for _, v := range idx {
				d.Int(v)
			}
		}
		for _, w := range m.last.Weights {
			d.Floats(w)
		}
	}
	d.Int(m.LastHits)
	d.Int(m.LastMisses)
}

// cuCheckpoint is a coupling-unit rank's snapshot.
type cuCheckpoint struct {
	MapAB, MapBA *mapperCheckpoint
	First        bool
}

// cuCheckpointBytes is the true (full-scale) size of a CU rank's share of
// the mapping state written to stable storage: this rank's targets on
// both sides, each with DonorsPerTarget (index, weight) pairs.
func cuCheckpointBytes(us UnitSpec, cuRanks int) int {
	perSide := float64(us.effectivePoints()) / float64(cuRanks)
	return int(perSide * 2 * DonorsPerTarget * 16)
}

// resilientCtx carries the checkpoint/restart state of one RunResilient
// attempt through rankMain. A nil ctx (plain Run) disables everything;
// all methods are nil-receiver safe.
type resilientCtx struct {
	cp *fault.Checkpointer
	// resume state: restart from snapshot step/clock of the last commit.
	resume bool
	step   int
	clock  float64
}

func (rc *resilientCtx) resuming() bool { return rc != nil && rc.resume }

func (rc *resilientCtx) due(completed, total int) bool {
	return rc != nil && rc.cp.Due(completed, total)
}

// checkpoint stages this rank's snapshot and joins the world-wide commit.
func (rc *resilientCtx) checkpoint(world *mpi.Comm, step int, state any, bytes int) {
	rc.cp.Checkpoint(world, fault.Snapshot{Step: step, Bytes: bytes, State: state})
}

// restoreFrom loads this rank's committed snapshot, hands it to apply,
// and jumps the rank clock to the checkpoint's synchronised commit time.
// Returns the density step to resume from.
func (rc *resilientCtx) restoreFrom(world *mpi.Comm, apply func(any) error) (int, error) {
	snap, ok := rc.cp.Store.Load(world.Rank())
	if !ok {
		return 0, fmt.Errorf("coupler: rank %d has no snapshot for restart at step %d", world.Rank(), rc.step)
	}
	if err := apply(snap.State); err != nil {
		return 0, err
	}
	world.ResetClock(rc.clock)
	return rc.step, nil
}

// ResilienceOptions configures RunResilient.
type ResilienceOptions struct {
	// Plan is the fault plan injected into the run (nil for a fault-free
	// run, e.g. the baseline of a differential comparison).
	Plan *fault.Plan
	// CheckpointEvery takes a coordinated checkpoint each time this many
	// density steps complete (0 disables checkpointing; a crash then
	// restarts from the beginning).
	CheckpointEvery int
	// RestartCost is the modelled virtual-time cost of tearing down and
	// relaunching the coupled job after a failure (communicator rebuild,
	// respawn, solver re-setup). 0 means fault.DefaultRestartCost;
	// negative means free restarts.
	RestartCost float64
	// MaxRestarts bounds the recovery attempts (0 means 8).
	MaxRestarts int
}

// ResilienceReport is a Report plus the recovery accounting. Elapsed
// includes the failure overhead; the per-component times are those of
// the final (successful) attempt.
type ResilienceReport struct {
	*Report
	// Attempts is 1 + the number of restarts.
	Attempts int
	// Overhead = Rework + Detection + Restart, already folded into
	// Elapsed.
	Overhead  float64
	Rework    float64 // virtual time lost between last commit and each crash
	Detection float64 // modelled failure-detection latency, per failure
	Restart   float64 // modelled relaunch cost, per failure
	// Failures records each observed failure: the first crashed rank and
	// the virtual time of the earliest death.
	Failures []fault.Crash
}

// RunResilient executes the coupled simulation under a fault plan with
// coordinated checkpoint/restart. On a rank failure it rolls the world
// back to the last committed checkpoint, charges rework + detection +
// restart to virtual time, drops the already-fired faults from the plan,
// and replays. FastCollectives is forced off: both failure detection and
// the checkpoint clock synchronisation need the real message path.
func (sim *Simulation) RunResilient(cfg mpi.Config, ro ResilienceOptions) (*ResilienceReport, error) {
	if err := sim.Validate(); err != nil {
		return nil, err
	}
	cfg.FastCollectives = false
	machine := cfg.Machine
	if machine == nil {
		machine = cluster.ARCHER2()
	}
	restartCost := ro.RestartCost
	switch {
	case restartCost == 0:
		restartCost = fault.DefaultRestartCost
	case restartCost < 0:
		restartCost = 0
	}
	maxRestarts := ro.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 8
	}
	plan := ro.Plan
	store := fault.NewStore(sim.TotalRanks())
	res := &ResilienceReport{}
	for {
		rc := &resilientCtx{cp: &fault.Checkpointer{
			Store: store,
			Every: ro.CheckpointEvery,
			Cost:  machine.CheckpointTime,
		}}
		if step, clock, ok := store.Last(); ok {
			rc.resume, rc.step, rc.clock = true, step, clock
		}
		cfg.Faults = plan
		rep, err := sim.run(cfg, rc)
		res.Attempts++
		if err == nil {
			rep.Elapsed += res.Overhead
			res.Report = rep
			return res, nil
		}
		var rf *fault.RanksFailed
		if !errors.As(err, &rf) {
			return nil, err
		}
		if res.Attempts > maxRestarts {
			return nil, fmt.Errorf("coupler: giving up after %d attempts: %w", res.Attempts, err)
		}
		ckClock := 0.0
		if _, clock, ok := store.Last(); ok {
			ckClock = clock
		}
		rework := rf.FailedAt - ckClock
		if rework < 0 {
			rework = 0
		}
		detection := plan.Detection()
		res.Rework += rework
		res.Detection += detection
		res.Restart += restartCost
		res.Overhead += rework + detection + restartCost
		res.Failures = append(res.Failures, fault.Crash{Rank: rf.Crashed[0], At: rf.FailedAt})
		plan = plan.After(rf.FailedAt)
	}
}
