package coupler

import (
	"errors"
	"testing"

	"cpx/internal/fault"
)

// resilienceSim is twoRowSim with enough density steps for several
// checkpoint boundaries.
func resilienceSim() *Simulation {
	s := twoRowSim(TreePrefetch)
	s.DensitySteps = 8
	return s
}

// TestResilientFaultFreeMatchesPlainRun: with no plan and no
// checkpointing, RunResilient is exactly Run.
func TestResilientFaultFreeMatchesPlainRun(t *testing.T) {
	plain, err := resilienceSim().Run(runCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := resilienceSim().RunResilient(runCfg(), ResilienceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 || res.Overhead != 0 {
		t.Fatalf("fault-free run: attempts=%d overhead=%v", res.Attempts, res.Overhead)
	}
	if res.Elapsed != plain.Elapsed {
		t.Errorf("elapsed %v != plain %v", res.Elapsed, plain.Elapsed)
	}
	for r := range plain.RankDigests {
		if res.RankDigests[r] != plain.RankDigests[r] {
			t.Errorf("rank %d digest %#x != plain %#x", r, res.RankDigests[r], plain.RankDigests[r])
		}
	}
}

// TestDifferentialResilience is the subsystem's acceptance test: a
// coupled run with an injected rank crash must recover from the last
// checkpoint and finish with final physics state bitwise identical to
// the fault-free run of the same seed, its virtual elapsed exceeding the
// fault-free elapsed by exactly the modelled detection + restart +
// rework cost.
func TestDifferentialResilience(t *testing.T) {
	base, err := resilienceSim().RunResilient(runCfg(), ResilienceOptions{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if base.Attempts != 1 {
		t.Fatalf("baseline restarted: %d attempts", base.Attempts)
	}

	// Kill an instance rank late in the run, well after several
	// checkpoints have committed.
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 2, At: 0.9 * base.Elapsed}}}
	faulty, err := resilienceSim().RunResilient(runCfg(), ResilienceOptions{
		Plan:            plan,
		CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one crash, one recovery)", faulty.Attempts)
	}
	if len(faulty.Failures) != 1 || faulty.Failures[0].Rank != 2 {
		t.Fatalf("failures = %+v, want one failure of rank 2", faulty.Failures)
	}

	// Bitwise-identical final physics state on every rank.
	for r := range base.RankDigests {
		if faulty.RankDigests[r] != base.RankDigests[r] {
			t.Errorf("rank %d: digest %#x != fault-free %#x", r, faulty.RankDigests[r], base.RankDigests[r])
		}
	}

	// Exact virtual-time accounting: the recovered run costs precisely
	// the modelled overhead more than the fault-free run.
	if got, want := faulty.Elapsed, base.Elapsed+faulty.Overhead; got != want {
		t.Errorf("elapsed = %v, want fault-free + overhead = %v (diff %v)", got, want, got-want)
	}
	if got, want := faulty.Overhead, faulty.Rework+faulty.Detection+faulty.Restart; got != want {
		t.Errorf("overhead = %v, want rework+detection+restart = %v", got, want)
	}
	if faulty.Detection != plan.Detection() {
		t.Errorf("detection = %v, want %v", faulty.Detection, plan.Detection())
	}
	if faulty.Restart != fault.DefaultRestartCost {
		t.Errorf("restart = %v, want default %v", faulty.Restart, fault.DefaultRestartCost)
	}
	// Rework strictly below the crash time proves recovery used a
	// committed checkpoint rather than restarting from scratch.
	if faulty.Rework <= 0 || faulty.Rework >= faulty.Failures[0].At {
		t.Errorf("rework = %v, want in (0, %v): checkpoint not used", faulty.Rework, faulty.Failures[0].At)
	}
}

// TestResilienceWithoutCheckpointsRestartsFromScratch: a crash with
// checkpointing disabled replays the whole run; the identity and the
// bitwise final state still hold, with rework equal to the full lost
// time.
func TestResilienceWithoutCheckpointsRestartsFromScratch(t *testing.T) {
	base, err := resilienceSim().RunResilient(runCfg(), ResilienceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	crashAt := 0.5 * base.Elapsed
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 9, At: crashAt}}}
	faulty, err := resilienceSim().RunResilient(runCfg(), ResilienceOptions{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", faulty.Attempts)
	}
	if faulty.Rework != faulty.Failures[0].At {
		t.Errorf("rework = %v, want full lost time %v", faulty.Rework, faulty.Failures[0].At)
	}
	if got, want := faulty.Elapsed, base.Elapsed+faulty.Overhead; got != want {
		t.Errorf("elapsed = %v, want %v", got, want)
	}
	for r := range base.RankDigests {
		if faulty.RankDigests[r] != base.RankDigests[r] {
			t.Errorf("rank %d digest mismatch after scratch restart", r)
		}
	}
}

// TestPeerDeathSurfacesInsteadOfDeadlock: when a peer instance dies
// mid-exchange, the surviving instance's ranks get a rank-failure error
// after the modelled detection latency — the run returns promptly
// instead of hanging until the watchdog.
func TestPeerDeathSurfacesInsteadOfDeadlock(t *testing.T) {
	sim := resilienceSim()
	cfg := runCfg()
	// Rank 0 is a row1 boundary rank: row2 only ever hears from it
	// through the CU, so its death must cascade CU -> row2.
	cfg.Faults = &fault.Plan{Crashes: []fault.Crash{{Rank: 0, At: 1e-4}}}
	_, err := sim.Run(cfg)
	if err == nil {
		t.Fatal("run with a killed rank succeeded")
	}
	var rf *fault.RanksFailed
	if !errors.As(err, &rf) {
		t.Fatalf("error %v (%T), want *fault.RanksFailed", err, err)
	}
	if len(rf.Crashed) != 1 || rf.Crashed[0] != 0 {
		t.Errorf("crashed = %v, want [0]", rf.Crashed)
	}
	if len(rf.Detections) == 0 {
		t.Error("no survivor reported a RankFailure detection")
	}
	for _, d := range rf.Detections {
		if d.DetectedAt < d.FailedAt {
			t.Errorf("detection at %v precedes failure at %v", d.DetectedAt, d.FailedAt)
		}
	}
}

// TestMapperCheckpointRoundTrip: restoring a mapper snapshot reproduces
// cache, mapping, and counters exactly.
func TestMapperCheckpointRoundTrip(t *testing.T) {
	donors := AnnulusPoints(128, 3)
	targets := AnnulusPoints(64, 4)
	m := &Mapper{Kind: TreePrefetch}
	m.last = m.Map(targets, donors)
	m.last = m.Map(targets, Rotate(donors, 0.001)) // warm cache, nonzero hits
	ck := m.checkpoint()

	d0 := fault.NewDigest()
	m.digest(d0)

	m2 := &Mapper{Kind: TreePrefetch}
	m2.restore(ck)
	d1 := fault.NewDigest()
	m2.digest(d1)
	if d0.Sum64() != d1.Sum64() {
		t.Fatal("restored mapper digest differs")
	}

	// The snapshot is a deep copy: mutating the restored mapper must not
	// leak back into the checkpoint.
	m2.cache[0][0] = -1
	m2.last.Weights[0][0] = 42
	if ck.Cache[0][0] == -1 || ck.Last.Weights[0][0] == 42 {
		t.Fatal("checkpoint aliases restored mapper state")
	}
}

// TestResilienceIdenticalAcrossExecutors: a full checkpoint/restart run
// with an injected crash must produce identical failure reports, virtual
// elapsed and bitwise-identical final physics state whether the ranks
// run as goroutines or as coroutines on the discrete-event executor.
func TestResilienceIdenticalAcrossExecutors(t *testing.T) {
	base, err := resilienceSim().RunResilient(runCfg(), ResilienceOptions{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 2, At: 0.9 * base.Elapsed}}}
	opts := ResilienceOptions{Plan: plan, CheckpointEvery: 2}

	gor, err := resilienceSim().RunResilient(runCfg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	evCfg := runCfg()
	evCfg.EventDriven = true
	ev, err := resilienceSim().RunResilient(evCfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	if gor.Elapsed != ev.Elapsed {
		t.Errorf("elapsed differs: goroutine %v, event %v", gor.Elapsed, ev.Elapsed)
	}
	if gor.Attempts != ev.Attempts || gor.Overhead != ev.Overhead ||
		gor.Rework != ev.Rework || gor.Detection != ev.Detection || gor.Restart != ev.Restart {
		t.Errorf("recovery accounting differs:\ngoroutine: %+v\nevent:     %+v", gor, ev)
	}
	if len(gor.Failures) != len(ev.Failures) {
		t.Fatalf("failures differ: %+v vs %+v", gor.Failures, ev.Failures)
	}
	for i := range gor.Failures {
		if gor.Failures[i] != ev.Failures[i] {
			t.Errorf("failure %d differs: %+v vs %+v", i, gor.Failures[i], ev.Failures[i])
		}
	}
	for r := range gor.RankDigests {
		if gor.RankDigests[r] != ev.RankDigests[r] {
			t.Errorf("rank %d digest %#x (goroutine) != %#x (event)", r, gor.RankDigests[r], ev.RankDigests[r])
		}
	}
}
