package coupler

import (
	"context"
	"errors"
	"fmt"
	"math"

	"cpx/internal/fault"
	"cpx/internal/fem"
	"cpx/internal/mgcfd"
	"cpx/internal/mpi"
	"cpx/internal/particle"
	"cpx/internal/simpic"
	"cpx/internal/telemetry"
	"cpx/internal/trace"
)

// femShellFor sizes a casing shell so its element count matches the
// requested mesh size, with a 10:1 circumference-to-length aspect.
func femShellFor(cells int64) fem.Config {
	if cells < 6 {
		cells = 6
	}
	nc := int(math.Sqrt(float64(cells) * 10))
	if nc < 3 {
		nc = 3
	}
	na := int(cells) / nc
	if na < 2 {
		na = 2
	}
	return fem.Config{NAxial: na, NCirc: nc, Steps: 1}
}

// SolverKind identifies the mini-app behind an instance.
type SolverKind int

// Solver kinds.
const (
	KindMGCFD    SolverKind = iota // density-solver proxy (compressor/turbine rows)
	KindSIMPIC                     // pressure-solver performance proxy (combustor)
	KindFEM                        // casing thermal FEM (the paper's stated extension)
	KindParticle                   // coupled Lagrangian particle component (MiniCombust-style particle ranks)
)

func (k SolverKind) String() string {
	switch k {
	case KindSIMPIC:
		return "SIMPIC"
	case KindFEM:
		return "FEM-thermal"
	case KindParticle:
		return "Particle"
	default:
		return "MG-CFD"
	}
}

// InterfaceKind selects the coupling interaction type.
type InterfaceKind int

// Interface kinds (Section II-A).
const (
	// SlidingPlane: rotor/stator rows move relative to each other; the
	// mapping is recomputed every exchange. Interface ~0.42% of the mesh.
	SlidingPlane InterfaceKind = iota
	// SteadyState: density-pressure interaction; the mapping is computed
	// once. Interface ~5% of the mesh, exchanged every 20 iterations.
	SteadyState
)

// Interface fractions of the mesh (paper, Section II-A).
const (
	SlidingFraction = 0.0042
	SteadyFraction  = 0.05
)

// InstanceSpec describes one solver instance of the coupled simulation.
type InstanceSpec struct {
	Name      string
	Kind      SolverKind
	MeshCells int64 // mesh size (for SIMPIC: the pressure-solver equivalent)
	Ranks     int
	// StepsPerDensity is the instance's time-steps per density-solver
	// step (defaults: MG-CFD 1, SIMPIC 2 — the pressure solver's
	// time-step is about half as long).
	StepsPerDensity int
	// Simpic overrides the SIMPIC configuration (Base vs Optimized STC).
	Simpic *simpic.Config
	// FEM overrides the casing thermal configuration; if nil, a shell is
	// sized so its element count matches MeshCells.
	FEM *fem.Config
	// Particle overrides the Lagrangian particle configuration (balancing
	// strategy, imbalance threshold, cone fraction). A zero Droplets field
	// defaults to MeshCells/4 — the paper's test-case ratio of 7M droplets
	// per 28M cells — and the instance Seed always wins, like the other
	// solver kinds.
	Particle *particle.Config
	Seed     int64
}

func (is InstanceSpec) stepsPerDensity() int {
	if is.StepsPerDensity > 0 {
		return is.StepsPerDensity
	}
	if is.Kind == KindSIMPIC {
		return 2
	}
	return 1
}

// UnitSpec describes one coupling unit connecting two instances.
type UnitSpec struct {
	Name   string
	A, B   int // instance indices
	Kind   InterfaceKind
	Points int // true interface points per side
	Ranks  int
	Search Search
	// ExchangeEvery in density steps (defaults: sliding 1, steady 20).
	ExchangeEvery int
	// Overlap >= 1 enables the overlapping/composite-domain approach of
	// Section II-A ("overset"-style): a larger portion of each mesh is
	// exchanged and mapped, multiplying the effective interface size.
	// Zero or 1 disables.
	Overlap float64
}

// effectivePoints returns the true interface size including any
// composite-domain overlap.
func (us UnitSpec) effectivePoints() int {
	if us.Overlap > 1 {
		return int(float64(us.Points) * us.Overlap)
	}
	return us.Points
}

func (us UnitSpec) exchangeEvery() int {
	if us.ExchangeEvery > 0 {
		return us.ExchangeEvery
	}
	if us.Kind == SteadyState {
		return 20
	}
	return 1
}

// Scale bounds the working sets of a coupled run.
type Scale struct {
	MGCFD            mgcfd.ScaleOpts
	Simpic           simpic.ScaleOpts
	Particle         particle.ScaleOpts
	MaxPointsPerSide int // interface point cap per side per CU
}

// ProductionScale returns the capping used by the large harness runs
// (sized so 40,000-rank coupled runs fit in a few GB of host memory).
func ProductionScale() Scale {
	return Scale{
		MGCFD:            mgcfd.ScaleOpts{MaxCellsPerRank: 512},
		Simpic:           simpic.ScaleOpts{MaxCellsPerRank: 2048, MaxParticlesPerRank: 2048},
		Particle:         particle.ScaleOpts{MaxDropletsPerRank: 2048},
		MaxPointsPerSide: 1024,
	}
}

// Simulation is a full coupled configuration.
type Simulation struct {
	Instances    []InstanceSpec
	Units        []UnitSpec
	DensitySteps int // coupled duration in density-solver steps
	Scale        Scale
	// RotationPerStep is the sliding-plane rotation per density step.
	RotationPerStep float64
}

// TotalRanks returns the ranks the simulation occupies.
func (sim *Simulation) TotalRanks() int {
	total := 0
	for _, is := range sim.Instances {
		total += is.Ranks
	}
	for _, us := range sim.Units {
		total += us.Ranks
	}
	return total
}

// Validate checks the wiring.
func (sim *Simulation) Validate() error {
	if len(sim.Instances) == 0 {
		return fmt.Errorf("coupler: no instances")
	}
	if sim.DensitySteps < 1 {
		return fmt.Errorf("coupler: DensitySteps must be positive")
	}
	for i, is := range sim.Instances {
		if is.Ranks < 1 {
			return fmt.Errorf("coupler: instance %d (%s) has no ranks", i, is.Name)
		}
	}
	for u, us := range sim.Units {
		if us.A < 0 || us.A >= len(sim.Instances) || us.B < 0 || us.B >= len(sim.Instances) || us.A == us.B {
			return fmt.Errorf("coupler: unit %d (%s) connects invalid instances %d-%d", u, us.Name, us.A, us.B)
		}
		if us.Ranks < 1 {
			return fmt.Errorf("coupler: unit %d (%s) has no ranks", u, us.Name)
		}
		if us.Points < 1 {
			return fmt.Errorf("coupler: unit %d (%s) has no interface points", u, us.Name)
		}
	}
	return nil
}

// role describes what a world rank does.
type role struct {
	isUnit bool
	index  int // instance or unit index
	local  int // rank within the group
}

// roleOf resolves a world rank against the layout
// [inst0][inst1]...[unit0][unit1]...
func (sim *Simulation) roleOf(worldRank int) role {
	off := 0
	for i, is := range sim.Instances {
		if worldRank < off+is.Ranks {
			return role{false, i, worldRank - off}
		}
		off += is.Ranks
	}
	for u, us := range sim.Units {
		if worldRank < off+us.Ranks {
			return role{true, u, worldRank - off}
		}
		off += us.Ranks
	}
	panic(fmt.Sprintf("coupler: rank %d beyond layout (%d total)", worldRank, sim.TotalRanks()))
}

// ComponentName returns the name of the instance or coupling unit a
// world rank belongs to, for critical-path and trace attribution.
func (sim *Simulation) ComponentName(worldRank int) string {
	r := sim.roleOf(worldRank)
	if r.isUnit {
		return sim.Units[r.index].Name
	}
	return sim.Instances[r.index].Name
}

// groupRanks returns the world ranks of an instance or unit group.
func (sim *Simulation) groupRanks(isUnit bool, index int) (lo, hi int) {
	off := 0
	for i, is := range sim.Instances {
		if !isUnit && i == index {
			return off, off + is.Ranks
		}
		off += is.Ranks
	}
	for u, us := range sim.Units {
		if isUnit && u == index {
			return off, off + us.Ranks
		}
		off += us.Ranks
	}
	panic("coupler: unknown group")
}

// boundaryRanks is how many ranks of an instance handle interface traffic.
func boundaryRanks(instanceRanks int) int {
	if instanceRanks < 4 {
		return instanceRanks
	}
	if instanceRanks > 8 {
		return 8
	}
	return instanceRanks
}

// Report summarises a coupled run.
type Report struct {
	Elapsed       float64
	InstanceTime  []float64 // max rank clock per instance
	InstanceComp  []float64 // max rank compute time per instance
	InstanceSetup []float64 // max setup (pre-stepping) clock per instance
	InstanceMark  []float64 // max clock at the half-way density step
	UnitTime      []float64 // max rank clock per unit
	UnitComp      []float64 // max rank compute (busy) time per unit
	UnitSetup     []float64 // max setup (initialisation-mapping) clock per unit
	DensitySteps  int
	// CouplingShare is the max per-unit steady busy time (setup mapping
	// excluded — production couplers amortise it) over the elapsed time.
	CouplingShare float64
	// Stats is the raw run statistics; its Timelines and CommMatrix are
	// populated when the run was traced (mpi.Config.Trace).
	Stats *mpi.Stats
	// Critical is the virtual-time critical path of the coupled run and
	// CriticalComponents its attribution to instances/units, sorted by
	// descending share. Both are nil unless the run was traced.
	Critical           *trace.CriticalPath
	CriticalComponents []trace.LabelShare
	// RankDigests are per-world-rank FNV hashes over the exact bit
	// patterns of each rank's final solver/mapper state, used by the
	// differential resilience tests to assert bitwise restart equivalence.
	RankDigests []uint64
	// ParticleLoads holds, per instance, the aggregated load-balancing
	// accounting of KindParticle instances (droplet migrations, steals,
	// repartitions, final/peak imbalance); nil entries for other kinds.
	ParticleLoads []*particle.LoadReport
	// Metrics is the run's virtual-time metric series (nil unless
	// mpi.Config.Metrics was set), with Components filled by the
	// rank→instance/unit attribution. Present on failed runs too, so
	// partial artifacts keep their progress series.
	Metrics *telemetry.RunSeries
}

// DominantComponent returns the instance/unit carrying the largest share
// of the critical path ("" when the run was not traced).
func (rep *Report) DominantComponent() string {
	if len(rep.CriticalComponents) == 0 {
		return ""
	}
	return rep.CriticalComponents[0].Label
}

// ScaledInstanceTime extrapolates instance i's run-time from the sampled
// density steps to fullSteps using the steady-state rate measured over
// the second half of the sample — the first half absorbs the exchange
// pipeline's fill transient, which a long production run amortises but a
// naive per-step scaling would multiply.
func (rep *Report) ScaledInstanceTime(i, fullSteps int) float64 {
	half := rep.DensitySteps - rep.DensitySteps/2
	if rep.DensitySteps < 4 || rep.InstanceMark == nil || rep.InstanceMark[i] <= 0 {
		// Too short a sample for rate separation: plain scaling.
		stepping := rep.InstanceTime[i] - rep.InstanceSetup[i]
		if stepping < 0 {
			stepping = 0
		}
		return rep.InstanceSetup[i] + stepping*float64(fullSteps)/float64(rep.DensitySteps)
	}
	rate := (rep.InstanceTime[i] - rep.InstanceMark[i]) / float64(half)
	if rate < 0 {
		rate = 0
	}
	return rep.InstanceTime[i] + rate*float64(fullSteps-rep.DensitySteps)
}

// ScaledElapsed extrapolates the whole coupled run-time to fullSteps with
// the same steady-state-rate rule.
func (rep *Report) ScaledElapsed(fullSteps int) float64 {
	out := 0.0
	for i := range rep.InstanceTime {
		if t := rep.ScaledInstanceTime(i, fullSteps); t > out {
			out = t
		}
	}
	return out
}

// Run executes the coupled simulation and reports per-component times.
func (sim *Simulation) Run(cfg mpi.Config) (*Report, error) {
	return sim.run(cfg, nil)
}

// RunContext is Run with a context: when ctx is cancelled (deadline or
// explicit), the virtual-time runtime aborts, every rank goroutine
// unwinds through the mpi abort fan-out, and the error wraps ctx.Err()
// (so errors.Is(err, context.DeadlineExceeded) works as callers
// expect). This is the entry point the serving layer uses to give
// simulation jobs real per-request deadlines.
func (sim *Simulation) RunContext(ctx context.Context, cfg mpi.Config) (*Report, error) {
	cfg.Cancel = ctx.Done()
	rep, err := sim.run(cfg, nil)
	if errors.Is(err, mpi.ErrCanceled) {
		if cerr := ctx.Err(); cerr != nil {
			return rep, fmt.Errorf("coupler: run canceled: %w", cerr)
		}
	}
	return rep, err
}

// run is the common driver behind Run and RunResilient's attempts. On a
// failed run (abort, watchdog or fault-plan crash) it still returns a
// minimal Report carrying the partial Stats alongside the error, so
// callers can export partial traces of aborted runs.
func (sim *Simulation) run(cfg mpi.Config, rc *resilientCtx) (*Report, error) {
	if err := sim.Validate(); err != nil {
		return nil, err
	}
	// Per-rank setup and half-way clocks, final state digests and particle
	// load accounting, written once by each rank (disjoint slots).
	setupClocks := make([]float64, sim.TotalRanks())
	markClocks := make([]float64, sim.TotalRanks())
	digests := make([]uint64, sim.TotalRanks())
	loads := make([]particle.RankLoad, sim.TotalRanks())
	stats, err := mpi.Run(sim.TotalRanks(), cfg, func(c *mpi.Comm) error {
		return sim.rankMain(c, setupClocks, markClocks, digests, loads, rc)
	})
	if err != nil {
		if stats != nil {
			return &Report{
				Stats:        stats,
				Elapsed:      stats.Elapsed,
				DensitySteps: sim.DensitySteps,
				Metrics:      sim.componentMetrics(stats),
			}, err
		}
		return nil, err
	}
	rep := &Report{
		Stats:         stats,
		Elapsed:       stats.Elapsed,
		InstanceTime:  make([]float64, len(sim.Instances)),
		InstanceComp:  make([]float64, len(sim.Instances)),
		InstanceSetup: make([]float64, len(sim.Instances)),
		InstanceMark:  make([]float64, len(sim.Instances)),
		UnitTime:      make([]float64, len(sim.Units)),
		UnitComp:      make([]float64, len(sim.Units)),
		UnitSetup:     make([]float64, len(sim.Units)),
		DensitySteps:  sim.DensitySteps,
		RankDigests:   digests,
		ParticleLoads: make([]*particle.LoadReport, len(sim.Instances)),
	}
	for i, spec := range sim.Instances {
		if spec.Kind != KindParticle {
			continue
		}
		lo, hi := sim.groupRanks(false, i)
		lr := particle.AggregateLoads(sim.particleConfig(spec).Strategy.String(), loads[lo:hi])
		rep.ParticleLoads[i] = &lr
	}
	for i := range sim.Instances {
		lo, hi := sim.groupRanks(false, i)
		for r := lo; r < hi; r++ {
			rep.InstanceTime[i] = math.Max(rep.InstanceTime[i], stats.Clocks[r])
			rep.InstanceComp[i] = math.Max(rep.InstanceComp[i], stats.Compute[r])
			rep.InstanceSetup[i] = math.Max(rep.InstanceSetup[i], setupClocks[r])
			rep.InstanceMark[i] = math.Max(rep.InstanceMark[i], markClocks[r])
		}
	}
	for u := range sim.Units {
		lo, hi := sim.groupRanks(true, u)
		for r := lo; r < hi; r++ {
			rep.UnitTime[u] = math.Max(rep.UnitTime[u], stats.Clocks[r])
			rep.UnitComp[u] = math.Max(rep.UnitComp[u], stats.Compute[r])
			rep.UnitSetup[u] = math.Max(rep.UnitSetup[u], setupClocks[r])
		}
		if rep.Elapsed > 0 {
			busy := rep.UnitComp[u] - rep.UnitSetup[u]
			if busy < 0 {
				busy = 0
			}
			rep.CouplingShare = math.Max(rep.CouplingShare, busy/rep.Elapsed)
		}
	}
	if stats.Timelines != nil {
		cp, cperr := stats.CriticalPath()
		if cperr != nil {
			return nil, fmt.Errorf("coupler: critical path: %w", cperr)
		}
		rep.Critical = cp
		rep.CriticalComponents = cp.ByLabel(sim.ComponentName)
	}
	rep.Metrics = sim.componentMetrics(stats)
	return rep, nil
}

// componentMetrics attributes a run's metric series to the simulation's
// instances and coupling units and returns it (nil when the run was not
// sampled).
func (sim *Simulation) componentMetrics(stats *mpi.Stats) *telemetry.RunSeries {
	if stats.Metrics == nil {
		return nil
	}
	stats.Metrics.Components = stats.Metrics.AggregateBy(sim.ComponentName)
	return stats.Metrics
}

// Message tags: each unit gets a tag block.
const (
	tagUnitBase   = 1000
	tagUnitStride = 16
	tagToCU_A     = 0 // A-side boundary data to CU
	tagToCU_B     = 1
	tagFromCU_A   = 2 // interpolated values back to A
	tagFromCU_B   = 3
)

func (sim *Simulation) unitTag(u, which int) int {
	return tagUnitBase + u*tagUnitStride + which
}

// simPoints returns the simulated (capped) point count for a unit side.
func (sim *Simulation) simPoints(us UnitSpec) int {
	n := us.Points
	if sim.Scale.MaxPointsPerSide > 0 && n > sim.Scale.MaxPointsPerSide {
		n = sim.Scale.MaxPointsPerSide
	}
	return n
}

// rankMain is the per-rank program of the coupled run.
func (sim *Simulation) rankMain(c *mpi.Comm, setupClocks, markClocks []float64, digests []uint64, loads []particle.RankLoad, rc *resilientCtx) error {
	r := sim.roleOf(c.Rank())
	if r.isUnit {
		return sim.unitMain(c, r, setupClocks, digests, rc)
	}
	return sim.instanceMain(c, r, setupClocks, markClocks, digests, loads, rc)
}

// particleConfig resolves a KindParticle instance's effective particle
// configuration (overrides applied, droplet default from the mesh size,
// instance seed).
func (sim *Simulation) particleConfig(spec InstanceSpec) particle.Config {
	pc := particle.Config{}
	if spec.Particle != nil {
		pc = *spec.Particle
	}
	if pc.Droplets == 0 {
		// The paper's test-case ratio: 7M droplets per 28M cells.
		pc.Droplets = spec.MeshCells / 4
	}
	pc.Seed = spec.Seed
	return pc
}

// particleDT is the coupled particle time-step per density step.
const particleDT = 0.02

// groupComm derives the private communicator of a rank's group without
// any communication (the layout is contiguous by construction), so even
// 30,000-rank instances need no world-wide exchange or O(p) group lists.
func (sim *Simulation) groupComm(world *mpi.Comm, r role) *mpi.Comm {
	id := r.index
	if r.isUnit {
		id += len(sim.Instances)
	}
	lo, hi := sim.groupRanks(r.isUnit, r.index)
	return world.RangeComm(id, lo, hi-lo)
}

// instanceMain runs a solver instance rank.
func (sim *Simulation) instanceMain(world *mpi.Comm, r role, setupClocks, markClocks []float64, digests []uint64, loads []particle.RankLoad, rc *resilientCtx) error {
	spec := sim.Instances[r.index]
	group := sim.groupComm(world, r)

	// Build the solver. snapshot/restore/digest expose its mutable state
	// to the checkpoint/restart machinery (resilience.go).
	var step func() error
	var sample func(n int) []float64
	var absorb func([]float64)
	var snapshot func() (any, int)
	var restore func(any) error
	var digest func() uint64
	var loadOf func() particle.RankLoad
	switch spec.Kind {
	case KindMGCFD:
		s, err := mgcfd.New(group, mgcfd.Config{
			MeshCells: spec.MeshCells, Steps: 1, Seed: spec.Seed,
		}, sim.Scale.MGCFD)
		if err != nil {
			return fmt.Errorf("instance %s: %w", spec.Name, err)
		}
		step = func() error { s.Step(); return nil }
		sample = s.BoundarySample
		absorb = s.AbsorbBoundary
		snapshot = func() (any, int) { return s.Checkpoint(), s.CheckpointBytes() }
		restore = func(st any) error {
			ck, ok := st.(*mgcfd.Checkpoint)
			if !ok {
				return fmt.Errorf("snapshot holds %T, want *mgcfd.Checkpoint", st)
			}
			s.Restore(ck)
			return nil
		}
		digest = s.StateDigest
	case KindSIMPIC:
		cfg := simpic.BaseSTC(spec.MeshCells)
		if spec.Simpic != nil {
			cfg = *spec.Simpic
		}
		cfg.Seed = spec.Seed
		s, err := simpic.New(group, cfg, sim.Scale.Simpic)
		if err != nil {
			return fmt.Errorf("instance %s: %w", spec.Name, err)
		}
		// Each coupled "pressure step" stands for StepsPerPressureStep
		// SIMPIC micro-steps under the STC equivalence (Fig. 3): run one
		// representative micro-step and stretch its cost to the block.
		spp := cfg.StepsPerPressureStep()
		step = func() error { s.StepBlock(1, spp); return nil }
		sample = s.BoundarySample
		absorb = s.AbsorbBoundary
		snapshot = func() (any, int) { return s.Checkpoint(), s.CheckpointBytes() }
		restore = func(st any) error {
			ck, ok := st.(*simpic.Checkpoint)
			if !ok {
				return fmt.Errorf("snapshot holds %T, want *simpic.Checkpoint", st)
			}
			s.Restore(ck)
			return nil
		}
		digest = s.StateDigest
	case KindFEM:
		cfg := femShellFor(spec.MeshCells)
		if spec.FEM != nil {
			cfg = *spec.FEM
		}
		cfg.Seed = spec.Seed
		if cfg.Steps == 0 {
			cfg.Steps = 1
		}
		s, err := fem.New(group, cfg)
		if err != nil {
			return fmt.Errorf("instance %s: %w", spec.Name, err)
		}
		step = func() error { _, err := s.Step(); return err }
		sample = s.BoundarySample
		absorb = s.AbsorbBoundary
		snapshot = func() (any, int) { return s.Checkpoint(), s.CheckpointBytes() }
		restore = func(st any) error {
			ck, ok := st.(*fem.Checkpoint)
			if !ok {
				return fmt.Errorf("snapshot holds %T, want *fem.Checkpoint", st)
			}
			s.Restore(ck)
			return nil
		}
		digest = s.StateDigest
	case KindParticle:
		s, err := particle.New(group, sim.particleConfig(spec), sim.Scale.Particle)
		if err != nil {
			return fmt.Errorf("instance %s: %w", spec.Name, err)
		}
		step = func() error { s.Step(particleDT); return nil }
		sample = s.BoundarySample
		absorb = s.AbsorbBoundary
		snapshot = func() (any, int) { return s.Checkpoint(), s.CheckpointBytes() }
		restore = func(st any) error {
			ck, ok := st.(*particle.Checkpoint)
			if !ok {
				return fmt.Errorf("snapshot holds %T, want *particle.Checkpoint", st)
			}
			return s.Restore(ck)
		}
		digest = s.StateDigest
		loadOf = s.Load
	default:
		return fmt.Errorf("instance %s: unknown kind %d", spec.Name, spec.Kind)
	}
	setupClocks[world.Rank()] = world.Clock()

	start := 0
	if rc.resuming() {
		var err error
		if start, err = rc.restoreFrom(world, restore); err != nil {
			return fmt.Errorf("instance %s: %w", spec.Name, err)
		}
	}

	// Units adjacent to this instance.
	type adj struct {
		unit  int
		side  byte // 'A' or 'B'
		every int
	}
	var adjacent []adj
	for u, us := range sim.Units {
		if us.A == r.index {
			adjacent = append(adjacent, adj{u, 'A', us.exchangeEvery()})
		}
		if us.B == r.index {
			adjacent = append(adjacent, adj{u, 'B', us.exchangeEvery()})
		}
	}
	nb := boundaryRanks(spec.Ranks)
	isBoundary := r.local < nb

	for d := start; d < sim.DensitySteps; d++ {
		for s := 0; s < spec.stepsPerDensity(); s++ {
			if err := step(); err != nil {
				return err
			}
		}
		for _, a := range adjacent {
			if (d+1)%a.every != 0 {
				continue
			}
			if isBoundary {
				sim.exchangeWithUnit(world, a.unit, a.side, r.local, nb, sample, absorb)
			}
		}
		if d+1 == sim.DensitySteps/2 {
			markClocks[world.Rank()] = world.Clock()
		}
		if rc.due(d+1, sim.DensitySteps) {
			st, bytes := snapshot()
			rc.checkpoint(world, d+1, st, bytes)
		}
	}
	digests[world.Rank()] = digest()
	if loadOf != nil {
		loads[world.Rank()] = loadOf()
	}
	return nil
}

// exchangeWithUnit performs one boundary rank's part of a CU exchange:
// send this rank's interface slice to every CU rank, then receive the
// interpolated values coming back.
func (sim *Simulation) exchangeWithUnit(world *mpi.Comm, u int, side byte, localIdx, nb int,
	sample func(int) []float64, absorb func([]float64)) {
	us := sim.Units[u]
	cuLo, cuHi := sim.groupRanks(true, u)
	cuRanks := cuHi - cuLo
	simPts := sim.simPoints(us)
	slice := sliceOf(simPts, nb, localIdx)
	vals := sample(slice)

	toTag, fromTag := sim.unitTag(u, tagToCU_A), sim.unitTag(u, tagFromCU_A)
	if side == 'B' {
		toTag, fromTag = sim.unitTag(u, tagToCU_B), sim.unitTag(u, tagFromCU_B)
	}
	// True bytes: this rank's share of the true interface (5 fields),
	// spread across CU ranks with a 2x donor-overlap factor.
	trueSlice := float64(us.effectivePoints()) / float64(nb)
	perCUBytes := int(trueSlice * 5 * 8 * 2 / float64(cuRanks))
	for cu := cuLo; cu < cuHi; cu++ {
		world.SendVirtual(cu, toTag, vals, perCUBytes)
	}
	// Receive interpolated values from the CU ranks that own targets
	// mapping to this boundary slice.
	for cu := cuLo; cu < cuHi; cu++ {
		if cuTargetOwner(cu-cuLo, cuRanks, nb) == localIdx {
			d, _, _ := world.Recv(cu, fromTag)
			absorb(d)
		}
	}
}

// cuTargetOwner maps CU rank j to the boundary rank receiving its
// computed targets.
func cuTargetOwner(j, cuRanks, nb int) int { return j % nb }

// sliceOf splits n points across nb holders; holder i gets the remainder
// spread evenly.
func sliceOf(n, nb, i int) int {
	return (i+1)*n/nb - i*n/nb
}

// unitMain runs one coupling-unit rank: per exchange event, gather both
// sides' interface data, compute/refresh the mapping, interpolate, and
// return results.
func (sim *Simulation) unitMain(world *mpi.Comm, r role, setupClocks []float64, digests []uint64, rc *resilientCtx) error {
	us := sim.Units[r.index]

	simPts := sim.simPoints(us)
	nbA := boundaryRanks(sim.Instances[us.A].Ranks)
	nbB := boundaryRanks(sim.Instances[us.B].Ranks)
	cuLo, cuHi := sim.groupRanks(true, r.index)
	cuRanks := cuHi - cuLo

	// Interface geometry: both sides jittered annuli (distinct seeds).
	ptsA := AnnulusPoints(simPts, int64(r.index)*2+1)
	ptsB := AnnulusPoints(simPts, int64(r.index)*2+2)
	mapAB := &Mapper{Kind: us.Search} // donors A -> targets B
	mapBA := &Mapper{Kind: us.Search} // donors B -> targets A
	every := us.exchangeEvery()
	firstMapping := true

	// This CU rank owns a share of the targets on each side.
	tLoB, tHiB := shareOf(simPts, cuRanks, r.local)
	tLoA, tHiA := shareOf(simPts, cuRanks, r.local)
	scalePts := float64(us.effectivePoints()) / float64(simPts)

	// Initialisation exchange: production couplers build the first donor
	// mapping during setup so the expensive cold search (all prefetch
	// misses, full tree build) is off the stepping critical path.
	if us.Search == TreePrefetch {
		mapAB.Map(ptsB[tLoB:tHiB], ptsA)
		world.Compute(mapAB.MapWork(float64(tHiB-tLoB)*scalePts, float64(us.effectivePoints()), true))
		mapBA.Map(ptsA[tLoA:tHiA], ptsB)
		world.Compute(mapBA.MapWork(float64(tHiA-tLoA)*scalePts, float64(us.effectivePoints()), true))
	}
	setupClocks[world.Rank()] = world.Clock()

	start := 0
	if rc.resuming() {
		var err error
		start, err = rc.restoreFrom(world, func(st any) error {
			ck, ok := st.(*cuCheckpoint)
			if !ok {
				return fmt.Errorf("unit %s: snapshot holds %T, want *cuCheckpoint", us.Name, st)
			}
			mapAB.restore(ck.MapAB)
			mapBA.restore(ck.MapBA)
			firstMapping = ck.First
			return nil
		})
		if err != nil {
			return err
		}
	}
	cuSnapshot := func() (any, int) {
		return &cuCheckpoint{
			MapAB: mapAB.checkpoint(), MapBA: mapBA.checkpoint(), First: firstMapping,
		}, cuCheckpointBytes(us, cuRanks)
	}

	for d := start; d < sim.DensitySteps; d++ {
		if (d+1)%every != 0 {
			if rc.due(d+1, sim.DensitySteps) {
				st, bytes := cuSnapshot()
				rc.checkpoint(world, d+1, st, bytes)
			}
			continue
		}
		// Gather both sides' values (one message per boundary rank).
		valsA := gatherSide(world, sim, us.A, nbA, sim.unitTag(r.index, tagToCU_A), simPts)
		valsB := gatherSide(world, sim, us.B, nbB, sim.unitTag(r.index, tagToCU_B), simPts)

		// Sliding planes rotate side A each exchange; the mapping must be
		// recomputed. Steady state maps once.
		donorsA := ptsA
		if us.Kind == SlidingPlane {
			donorsA = Rotate(ptsA, sim.RotationPerStep*float64(d+1))
		}
		rebuild := us.Kind == SlidingPlane || firstMapping
		if rebuild {
			mAB := mapAB.Map(ptsB[tLoB:tHiB], donorsA)
			world.Compute(mapAB.MapWork(float64(tHiB-tLoB)*scalePts, float64(us.effectivePoints()), true))
			mBA := mapBA.Map(donorsA[tLoA:tHiA], ptsB)
			world.Compute(mapBA.MapWork(float64(tHiA-tLoA)*scalePts, float64(us.effectivePoints()), true))
			mapAB.last, mapBA.last = mAB, mBA
			firstMapping = false
		}
		// Interpolate and return.
		outB := mapAB.last.Interpolate(valsA)
		world.Compute(InterpolateWork(float64(tHiB-tLoB) * scalePts))
		outA := mapBA.last.Interpolate(valsB)
		world.Compute(InterpolateWork(float64(tHiA-tLoA) * scalePts))

		dstB := sim.instanceWorldRank(us.B, cuTargetOwner(r.local, cuRanks, nbB))
		dstA := sim.instanceWorldRank(us.A, cuTargetOwner(r.local, cuRanks, nbA))
		trueOut := float64(us.effectivePoints()) / float64(cuRanks) * 5 * 8
		world.SendVirtual(dstB, sim.unitTag(r.index, tagFromCU_B), outB, int(trueOut))
		world.SendVirtual(dstA, sim.unitTag(r.index, tagFromCU_A), outA, int(trueOut))
		if rc.due(d+1, sim.DensitySteps) {
			st, bytes := cuSnapshot()
			rc.checkpoint(world, d+1, st, bytes)
		}
	}
	d := fault.NewDigest()
	mapAB.digest(d)
	mapBA.digest(d)
	if firstMapping {
		d.Int(1)
	}
	digests[world.Rank()] = d.Sum64()
	return nil
}

// instanceWorldRank returns the world rank of an instance's local rank.
func (sim *Simulation) instanceWorldRank(instance, local int) int {
	lo, _ := sim.groupRanks(false, instance)
	return lo + local
}

// shareOf splits n targets across k owners; owner i gets [lo, hi).
func shareOf(n, k, i int) (lo, hi int) { return i * n / k, (i + 1) * n / k }

// gatherSide receives the boundary slices of one instance side and
// concatenates them in boundary-rank order.
func gatherSide(world *mpi.Comm, sim *Simulation, instance, nb, tag, simPts int) []float64 {
	out := make([]float64, 0, simPts)
	parts := make([][]float64, nb)
	for i := 0; i < nb; i++ {
		src := sim.instanceWorldRank(instance, i)
		d, _, _ := world.Recv(src, tag)
		parts[i] = d
	}
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
