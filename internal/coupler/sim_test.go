package coupler

import (
	"strings"
	"testing"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
	"cpx/internal/simpic"
)

func runCfg() mpi.Config {
	return mpi.Config{Machine: cluster.SmallCluster(), Watchdog: 120 * time.Second}
}

// twoRowSim is a minimal compressor pair: two MG-CFD instances and one
// sliding-plane CU.
func twoRowSim(search Search) *Simulation {
	return &Simulation{
		Instances: []InstanceSpec{
			{Name: "row1", Kind: KindMGCFD, MeshCells: 4096, Ranks: 4, Seed: 1},
			{Name: "row2", Kind: KindMGCFD, MeshCells: 4096, Ranks: 4, Seed: 2},
		},
		Units: []UnitSpec{
			{Name: "cu", A: 0, B: 1, Kind: SlidingPlane, Points: 2000, Ranks: 2, Search: search},
		},
		DensitySteps:    3,
		RotationPerStep: 0.001,
		Scale:           Scale{MaxPointsPerSide: 256},
	}
}

func TestValidateCatchesBadWiring(t *testing.T) {
	s := twoRowSim(Tree)
	s.Units[0].B = 0 // self-coupling
	if err := s.Validate(); err == nil {
		t.Error("self-coupled unit accepted")
	}
	s2 := twoRowSim(Tree)
	s2.DensitySteps = 0
	if err := s2.Validate(); err == nil {
		t.Error("zero steps accepted")
	}
	s3 := twoRowSim(Tree)
	s3.Units[0].Points = 0
	if err := s3.Validate(); err == nil {
		t.Error("pointless interface accepted")
	}
}

func TestRoleLayout(t *testing.T) {
	s := twoRowSim(Tree)
	if s.TotalRanks() != 10 {
		t.Fatalf("total ranks = %d, want 10", s.TotalRanks())
	}
	r := s.roleOf(0)
	if r.isUnit || r.index != 0 || r.local != 0 {
		t.Errorf("rank 0 role %+v", r)
	}
	r = s.roleOf(5)
	if r.isUnit || r.index != 1 || r.local != 1 {
		t.Errorf("rank 5 role %+v", r)
	}
	r = s.roleOf(9)
	if !r.isUnit || r.index != 0 || r.local != 1 {
		t.Errorf("rank 9 role %+v", r)
	}
}

func TestCoupledRunCompletes(t *testing.T) {
	for _, search := range []Search{BruteForce, Tree, TreePrefetch} {
		rep, err := twoRowSim(search).Run(runCfg())
		if err != nil {
			t.Fatalf("%v: %v", search, err)
		}
		if rep.Elapsed <= 0 {
			t.Fatalf("%v: no elapsed time", search)
		}
		for i, it := range rep.InstanceTime {
			if it <= 0 {
				t.Errorf("%v: instance %d has no time", search, i)
			}
		}
	}
}

func TestTreeSearchCheaperThanBrute(t *testing.T) {
	// With a large true interface, the CU busy time must order
	// brute > tree > prefetch.
	busy := func(search Search) float64 {
		s := twoRowSim(search)
		s.Units[0].Points = 500_000
		rep, err := s.Run(runCfg())
		if err != nil {
			t.Fatal(err)
		}
		return rep.UnitComp[0]
	}
	b, tr, pf := busy(BruteForce), busy(Tree), busy(TreePrefetch)
	if !(tr < b) {
		t.Errorf("tree busy %v not below brute %v", tr, b)
	}
	if !(pf <= tr) {
		t.Errorf("prefetch busy %v not below tree %v", pf, tr)
	}
}

func TestSteadyStateMapsOnce(t *testing.T) {
	// A steady-state CU exchanging every step must be much cheaper than a
	// sliding-plane CU with the same traffic (mapping computed once).
	busy := func(kind InterfaceKind) float64 {
		s := twoRowSim(Tree)
		s.Units[0].Kind = kind
		s.Units[0].ExchangeEvery = 1
		s.Units[0].Points = 500_000
		s.DensitySteps = 6
		rep, err := s.Run(runCfg())
		if err != nil {
			t.Fatal(err)
		}
		return rep.UnitComp[0]
	}
	sliding, steady := busy(SlidingPlane), busy(SteadyState)
	if !(steady < sliding/2) {
		t.Errorf("steady-state CU busy %v not clearly below sliding %v", steady, sliding)
	}
}

func TestTripleComponentWithSIMPIC(t *testing.T) {
	// Compressor row -> combustor (SIMPIC) -> turbine row: the full
	// HPC-Combustor-HPT pattern in miniature.
	stc := simpic.Config{Cells: 512, ParticlesPerCell: 10, Steps: 10, Seed: 3}
	s := &Simulation{
		Instances: []InstanceSpec{
			{Name: "hpc", Kind: KindMGCFD, MeshCells: 4096, Ranks: 3, Seed: 1},
			{Name: "combustor", Kind: KindSIMPIC, MeshCells: 28_000_000, Ranks: 4, Simpic: &stc, Seed: 2},
			{Name: "hpt", Kind: KindMGCFD, MeshCells: 4096, Ranks: 3, Seed: 3},
		},
		Units: []UnitSpec{
			{Name: "hpc-comb", A: 0, B: 1, Kind: SteadyState, Points: 5000, Ranks: 1, Search: TreePrefetch, ExchangeEvery: 2},
			{Name: "comb-hpt", A: 1, B: 2, Kind: SteadyState, Points: 5000, Ranks: 1, Search: TreePrefetch, ExchangeEvery: 2},
		},
		DensitySteps:    4,
		RotationPerStep: 0.001,
		Scale:           Scale{MaxPointsPerSide: 128},
	}
	rep, err := s.Run(runCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed <= 0 || len(rep.InstanceTime) != 3 {
		t.Fatalf("report %+v", rep)
	}
	// SIMPIC runs 2 steps per density step; its time must be recorded.
	if rep.InstanceTime[1] <= 0 {
		t.Error("SIMPIC instance recorded no time")
	}
}

func TestOverlapIncreasesCouplingCost(t *testing.T) {
	// The composite-domain (overset-style) interface of Section II-A
	// exchanges and maps a larger mesh portion: the CU must cost more.
	busy := func(overlap float64) float64 {
		s := twoRowSim(Tree)
		s.Units[0].Points = 200_000
		s.Units[0].Overlap = overlap
		rep, err := s.Run(runCfg())
		if err != nil {
			t.Fatal(err)
		}
		return rep.UnitComp[0]
	}
	if !(busy(2.0) > busy(0)) {
		t.Error("overlap=2 should increase CU busy time")
	}
}

func TestFEMCasingCoupling(t *testing.T) {
	// CFD row thermally coupled to the casing FEM: the paper's stated
	// extension (conclusions: coupled CFD + Combustion + Structural).
	s := &Simulation{
		Instances: []InstanceSpec{
			{Name: "row", Kind: KindMGCFD, MeshCells: 4096, Ranks: 3, Seed: 1},
			{Name: "casing", Kind: KindFEM, MeshCells: 500, Ranks: 2, Seed: 2},
		},
		Units: []UnitSpec{
			{Name: "thermal", A: 0, B: 1, Kind: SteadyState, Points: 1000,
				Ranks: 1, Search: TreePrefetch, ExchangeEvery: 2},
		},
		DensitySteps:    4,
		RotationPerStep: 0.001,
		Scale:           Scale{MaxPointsPerSide: 128},
	}
	rep, err := s.Run(runCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.InstanceTime[1] <= 0 {
		t.Error("FEM instance recorded no time")
	}
}

func TestCouplingShareSmallWithPrefetch(t *testing.T) {
	s := twoRowSim(TreePrefetch)
	s.DensitySteps = 5
	rep, err := s.Run(runCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.CouplingShare > 0.5 {
		t.Errorf("coupling share %v too large for prefetch search", rep.CouplingShare)
	}
}

func TestFailureInInstancePropagates(t *testing.T) {
	// Failure injection: an instance that cannot be built (SIMPIC with
	// too few cells for its ranks) must abort the whole coupled world
	// with a descriptive error, not deadlock the other components.
	bad := simpic.Config{Cells: 4, ParticlesPerCell: 1, Steps: 10}
	s := &Simulation{
		Instances: []InstanceSpec{
			{Name: "ok-row", Kind: KindMGCFD, MeshCells: 4096, Ranks: 4, Seed: 1},
			{Name: "doomed", Kind: KindSIMPIC, MeshCells: 28_000_000, Ranks: 8, Simpic: &bad, Seed: 2},
		},
		Units: []UnitSpec{
			{Name: "cu", A: 0, B: 1, Kind: SteadyState, Points: 100, Ranks: 1, Search: Tree},
		},
		DensitySteps: 3,
		Scale:        Scale{MaxPointsPerSide: 64},
	}
	_, err := s.Run(runCfg())
	if err == nil {
		t.Fatal("doomed instance did not fail the run")
	}
	if !strings.Contains(err.Error(), "doomed") && !strings.Contains(err.Error(), "simpic") {
		t.Errorf("error does not identify the failing instance: %v", err)
	}
}

func TestSliceAndShareCoverEverything(t *testing.T) {
	// sliceOf: boundary-rank slices partition the sim points exactly.
	for _, tc := range []struct{ n, nb int }{{100, 3}, {7, 7}, {1024, 8}, {5, 2}} {
		total := 0
		for i := 0; i < tc.nb; i++ {
			s := sliceOf(tc.n, tc.nb, i)
			if s < 0 {
				t.Fatalf("negative slice n=%d nb=%d i=%d", tc.n, tc.nb, i)
			}
			total += s
		}
		if total != tc.n {
			t.Errorf("sliceOf(%d,%d) covers %d", tc.n, tc.nb, total)
		}
	}
	// shareOf: CU target shares partition [0,n).
	for _, tc := range []struct{ n, k int }{{100, 3}, {10, 10}, {1024, 7}} {
		prev := 0
		for i := 0; i < tc.k; i++ {
			lo, hi := shareOf(tc.n, tc.k, i)
			if lo != prev || hi < lo {
				t.Fatalf("shareOf(%d,%d,%d) = [%d,%d), prev end %d", tc.n, tc.k, i, lo, hi, prev)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Errorf("shareOf(%d,%d) ends at %d", tc.n, tc.k, prev)
		}
	}
}

func TestEffectivePoints(t *testing.T) {
	us := UnitSpec{Points: 1000}
	if us.effectivePoints() != 1000 {
		t.Error("no-overlap effective points wrong")
	}
	us.Overlap = 2.5
	if us.effectivePoints() != 2500 {
		t.Errorf("overlap effective points = %d", us.effectivePoints())
	}
	us.Overlap = 0.5 // below 1 disables
	if us.effectivePoints() != 1000 {
		t.Error("sub-unity overlap should be ignored")
	}
}

func TestFemShellSizing(t *testing.T) {
	cfg := femShellFor(10_000)
	if cfg.NAxial < 2 || cfg.NCirc < 3 {
		t.Fatalf("shell %dx%d invalid", cfg.NAxial, cfg.NCirc)
	}
	got := cfg.NAxial * cfg.NCirc
	if got < 5_000 || got > 20_000 {
		t.Errorf("shell of %d elements far from requested 10k", got)
	}
	tiny := femShellFor(1)
	if tiny.NAxial < 2 || tiny.NCirc < 3 {
		t.Error("tiny shell below minimums")
	}
}

func TestDeterministicCoupledRun(t *testing.T) {
	once := func() float64 {
		rep, err := twoRowSim(Tree).Run(runCfg())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Elapsed
	}
	if a, b := once(), once(); a != b {
		t.Errorf("coupled run not deterministic: %v vs %v", a, b)
	}
}

func TestRoleAndGroupRanksConsistent(t *testing.T) {
	s := &Simulation{
		Instances: []InstanceSpec{
			{Name: "a", Kind: KindMGCFD, MeshCells: 100, Ranks: 3},
			{Name: "b", Kind: KindSIMPIC, MeshCells: 100, Ranks: 5},
			{Name: "c", Kind: KindMGCFD, MeshCells: 100, Ranks: 2},
		},
		Units: []UnitSpec{
			{Name: "u0", A: 0, B: 1, Points: 10, Ranks: 2},
			{Name: "u1", A: 1, B: 2, Points: 10, Ranks: 4},
		},
		DensitySteps: 1,
	}
	// Every world rank's role must map back to a group containing it.
	for w := 0; w < s.TotalRanks(); w++ {
		r := s.roleOf(w)
		lo, hi := s.groupRanks(r.isUnit, r.index)
		if w < lo || w >= hi {
			t.Fatalf("rank %d role %+v outside its group [%d,%d)", w, r, lo, hi)
		}
		if r.local != w-lo {
			t.Fatalf("rank %d local index %d, want %d", w, r.local, w-lo)
		}
	}
	// Groups must tile the world exactly.
	covered := 0
	for i := range s.Instances {
		lo, hi := s.groupRanks(false, i)
		covered += hi - lo
	}
	for u := range s.Units {
		lo, hi := s.groupRanks(true, u)
		covered += hi - lo
	}
	if covered != s.TotalRanks() {
		t.Fatalf("groups cover %d of %d ranks", covered, s.TotalRanks())
	}
}

func TestBoundaryRanksBounds(t *testing.T) {
	for _, tc := range []struct{ ranks, want int }{
		{1, 1}, {3, 3}, {4, 4}, {8, 8}, {9, 8}, {5000, 8},
	} {
		if got := boundaryRanks(tc.ranks); got != tc.want {
			t.Errorf("boundaryRanks(%d) = %d, want %d", tc.ranks, got, tc.want)
		}
	}
}

func TestScaledTimes(t *testing.T) {
	rep := &Report{
		InstanceTime:  []float64{10},
		InstanceSetup: []float64{2},
		Elapsed:       10,
		DensitySteps:  4,
	}
	// setup 2 + stepping 8 scaled x25 = 202.
	if got := rep.ScaledInstanceTime(0, 100); got != 202 {
		t.Errorf("scaled instance time %v, want 202", got)
	}
	if got := rep.ScaledElapsed(100); got != 202 {
		t.Errorf("scaled elapsed %v, want 202", got)
	}
}
