package fault

import (
	"fmt"
	"math"
	"sync"
)

// RankFailure is the ULFM-style error a receive (or a collective built
// on receives) surfaces when its peer died: the runtime advances the
// survivor's clock to the modelled detection time and unwinds with this
// error instead of hanging until the watchdog.
type RankFailure struct {
	Rank       int     // world rank that died
	FailedAt   float64 // virtual time of death
	DetectedAt float64 // virtual time the survivor learned of it
}

func (e *RankFailure) Error() string {
	return fmt.Sprintf("fault: rank %d failed at t=%.6gs (detected t=%.6gs)", e.Rank, e.FailedAt, e.DetectedAt)
}

// RanksFailed is the run-level error mpi.Run returns when a fault plan
// killed ranks: the world did not abort — survivors unwound with
// RankFailure errors or finished — and the job needs recovery.
type RanksFailed struct {
	Crashed  []int   // ranks killed by the plan, ascending
	FailedAt float64 // earliest crash time (start of lost work)
	// Detections are the survivors' failure observations, by world rank
	// ascending.
	Detections []RankFailure
}

func (e *RanksFailed) Error() string {
	return fmt.Sprintf("fault: %d rank(s) failed (first at t=%.6gs): %v", len(e.Crashed), e.FailedAt, e.Crashed)
}

// Snapshot is one rank's contribution to a coordinated checkpoint:
// an in-process deep copy of its solver state plus the true (full-scale)
// byte size used for the modelled I/O cost.
type Snapshot struct {
	Step  int // completed steps at the checkpoint
	Bytes int // true state size written to storage
	State any
}

// Store holds coordinated checkpoints for one job across restart
// attempts. Checkpoints commit in two phases: every rank stages its
// snapshot, the runtime synchronises clocks (a collective — it fails if
// any rank died), and each survivor then confirms. Only when all ranks
// confirm does the checkpoint become the recovery point, so a crash
// mid-checkpoint rolls back to the previous complete one, exactly like
// an atomic-rename checkpoint file set.
type Store struct {
	mu    sync.Mutex
	ranks int

	staged    map[int]Snapshot // by rank, for the in-flight step
	stageStep int
	confirmed int

	snaps []Snapshot // last committed checkpoint, by rank
	step  int        // its step count
	clock float64    // its synchronized virtual time
	ok    bool
}

// NewStore creates a checkpoint store for a world of the given size.
func NewStore(ranks int) *Store {
	return &Store{ranks: ranks, staged: make(map[int]Snapshot)}
}

// Stage records a rank's snapshot for the checkpoint at `step`. Staging
// a new step discards any incomplete previous stage.
func (st *Store) Stage(rank int, snap Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if snap.Step != st.stageStep {
		st.staged = make(map[int]Snapshot)
		st.stageStep = snap.Step
		st.confirmed = 0
	}
	st.staged[rank] = snap
}

// Confirm marks a rank's staged snapshot as synchronised at virtual time
// t. When every rank has confirmed, the checkpoint commits and becomes
// the recovery point.
func (st *Store) Confirm(rank, step int, t float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if step != st.stageStep {
		return
	}
	if _, ok := st.staged[rank]; !ok {
		return
	}
	st.confirmed++
	if st.confirmed < st.ranks {
		return
	}
	snaps := make([]Snapshot, st.ranks)
	for r := 0; r < st.ranks; r++ {
		snaps[r] = st.staged[r]
	}
	st.snaps, st.step, st.clock, st.ok = snaps, step, t, true
	st.staged = make(map[int]Snapshot)
	st.confirmed = 0
}

// Last returns the committed checkpoint's step and synchronized clock;
// ok is false when no checkpoint has committed yet.
func (st *Store) Last() (step int, clock float64, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.step, st.clock, st.ok
}

// Load returns a rank's snapshot from the committed checkpoint.
func (st *Store) Load(rank int) (Snapshot, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.ok || rank < 0 || rank >= len(st.snaps) {
		return Snapshot{}, false
	}
	return st.snaps[rank], true
}

// Runtime is the slice of the mpi communicator the checkpoint helper
// needs; *mpi.Comm satisfies it. CheckpointSync must synchronise every
// rank's clock to max(entry clocks) + max(costs) and return that value.
type Runtime interface {
	WorldRank() int
	CheckpointSync(cost float64) float64
}

// Checkpointer drives the coordinated-checkpoint protocol for one rank:
// stage the snapshot, synchronise clocks charging the modelled I/O cost,
// confirm. Cost returns the per-rank I/O seconds for a snapshot size
// (typically cluster.Machine.CheckpointTime).
type Checkpointer struct {
	Store *Store
	// Every is the checkpoint cadence in steps; <= 0 disables.
	Every int
	Cost  func(bytes int) float64
}

// Due reports whether a checkpoint is scheduled after `completed` steps
// of `total`: on every cadence boundary except the final step, whose
// checkpoint no recovery could ever use.
func (cp *Checkpointer) Due(completed, total int) bool {
	if cp == nil || cp.Every <= 0 || completed <= 0 || completed >= total {
		return false
	}
	return completed%cp.Every == 0
}

// Checkpoint runs one rank's part of a coordinated checkpoint and
// returns the synchronized virtual time. Collective over the world.
func (cp *Checkpointer) Checkpoint(rt Runtime, snap Snapshot) float64 {
	cp.Store.Stage(rt.WorldRank(), snap)
	cost := 0.0
	if cp.Cost != nil {
		cost = cp.Cost(snap.Bytes)
	}
	t := rt.CheckpointSync(cost)
	cp.Store.Confirm(rt.WorldRank(), snap.Step, t)
	return t
}

// Digest is an FNV-1a hash over exact float64 bit patterns, used by the
// differential resilience tests to compare final physics states bitwise.
type Digest struct{ h uint64 }

// NewDigest returns an initialised digest.
func NewDigest() *Digest { return &Digest{h: 14695981039346656037} }

func (d *Digest) word(w uint64) {
	for i := 0; i < 8; i++ {
		d.h ^= w & 0xff
		d.h *= 1099511628211
		w >>= 8
	}
}

// Float folds one float64's bit pattern into the digest.
func (d *Digest) Float(x float64) { d.word(math.Float64bits(x)) }

// Floats folds a slice in order.
func (d *Digest) Floats(xs []float64) {
	for _, x := range xs {
		d.Float(x)
	}
}

// Int folds an integer.
func (d *Digest) Int(i int) { d.word(uint64(i)) }

// Sum64 returns the digest value.
func (d *Digest) Sum64() uint64 { return d.h }
