// Package fault is the deterministic fault model of the virtual-time
// runtime (DESIGN.md §7). A Plan schedules three failure classes against
// virtual time:
//
//   - rank crashes: a rank's clock can never pass its crash timestamp;
//     the runtime kills the rank the moment a charge would cross it.
//   - straggler nodes: per-node compute-rate multipliers over virtual-time
//     windows, stretching every compute charge that overlaps a window.
//   - degraded links: per-epoch multipliers on the Hockney alpha/beta
//     terms of messages departing inside the epoch.
//
// Everything is a pure function of (plan, machine model): given the same
// seed and cluster, every run sees bitwise-identical failure times, so
// traced runs and the differential checkpoint/restart tests stay exactly
// reproducible. Plans are immutable once handed to a run.
//
// The package also provides the coordinated-checkpoint store and the
// rank-failure error types the mpi runtime surfaces ULFM-style (see
// checkpoint.go). It deliberately imports only cluster, so mpi can
// depend on it without a cycle.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cpx/internal/cluster"
)

// Default model constants. DetectionLatency is the time a ULFM-style
// failure detector (heartbeats, RAS events) needs to flag a dead peer;
// RestartCost is the scheduler/relaunch time of one recovery.
const (
	DefaultDetectionLatency = 5e-3
	DefaultRestartCost      = 1.0
)

// Crash kills one rank at a virtual timestamp.
type Crash struct {
	Rank int
	At   float64 // virtual seconds
}

// Straggler multiplies the compute time of every rank on one node by
// Factor (>= 1) for virtual times in [From, To). Node == -1 applies to
// all nodes (a machine-wide slowdown such as thermal throttling).
type Straggler struct {
	Node     int
	Factor   float64
	From, To float64
}

// LinkFault degrades the network path of messages departing in
// [From, To): latency is multiplied by Alpha and bandwidth divided by
// Beta for any message whose source or destination lives on Node
// (Node == -1 degrades every link). Zero multipliers mean "unchanged".
type LinkFault struct {
	Node     int
	From, To float64
	Alpha    float64 // latency multiplier
	Beta     float64 // bandwidth divisor
}

// Plan is one immutable fault schedule. The zero value injects nothing.
type Plan struct {
	Crashes    []Crash
	Stragglers []Straggler
	LinkFaults []LinkFault
	// DetectionLatency is the virtual time between a rank's death and a
	// peer's receive failing with a RankFailure. Zero selects
	// DefaultDetectionLatency.
	DetectionLatency float64
}

// Detection returns the effective failure-detection latency.
func (p *Plan) Detection() float64 {
	if p.DetectionLatency > 0 {
		return p.DetectionLatency
	}
	return DefaultDetectionLatency
}

// Validate checks the schedule's invariants.
func (p *Plan) Validate() error {
	for i, c := range p.Crashes {
		if c.Rank < 0 || c.At < 0 {
			return fmt.Errorf("fault: crash %d: rank and time must be non-negative", i)
		}
	}
	for i, s := range p.Stragglers {
		if s.Factor < 1 {
			return fmt.Errorf("fault: straggler %d: factor %v < 1", i, s.Factor)
		}
		if s.To <= s.From || s.From < 0 {
			return fmt.Errorf("fault: straggler %d: bad window [%v,%v)", i, s.From, s.To)
		}
	}
	for i, l := range p.LinkFaults {
		if l.To <= l.From || l.From < 0 {
			return fmt.Errorf("fault: link fault %d: bad window [%v,%v)", i, l.From, l.To)
		}
		if l.Alpha < 0 || l.Beta < 0 {
			return fmt.Errorf("fault: link fault %d: multipliers must be non-negative", i)
		}
	}
	if p.DetectionLatency < 0 {
		return fmt.Errorf("fault: DetectionLatency must be non-negative")
	}
	return nil
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Stragglers) == 0 && len(p.LinkFaults) == 0)
}

// CrashTime returns the earliest crash timestamp scheduled for a rank,
// or +Inf if the rank never crashes.
func (p *Plan) CrashTime(rank int) float64 {
	at := math.Inf(1)
	for _, c := range p.Crashes {
		if c.Rank == rank && c.At < at {
			at = c.At
		}
	}
	return at
}

// After returns a copy of the plan with every crash at or before t
// removed — the schedule a restarted attempt faces once the failures up
// to t have been consumed. Stragglers and link faults are kept: a slow
// node stays slow across restarts.
func (p *Plan) After(t float64) *Plan {
	out := &Plan{
		Stragglers:       p.Stragglers,
		LinkFaults:       p.LinkFaults,
		DetectionLatency: p.DetectionLatency,
	}
	for _, c := range p.Crashes {
		if c.At > t {
			out.Crashes = append(out.Crashes, c)
		}
	}
	return out
}

// rateAt returns the product of straggler factors active on a node at
// virtual time t, and the next window boundary after t (+Inf if none).
func (p *Plan) rateAt(node int, t float64) (factor, until float64) {
	factor, until = 1, math.Inf(1)
	for _, s := range p.Stragglers {
		if s.Node != -1 && s.Node != node {
			continue
		}
		if t >= s.From && t < s.To {
			factor *= s.Factor
			if s.To < until {
				until = s.To
			}
		} else if t < s.From && s.From < until {
			until = s.From
		}
	}
	return factor, until
}

// ComputeSeconds stretches a nominal compute charge starting at virtual
// time `start` on `node` through the straggler windows it overlaps: the
// charge is integrated piecewise, each window segment running at
// 1/factor of the nominal rate. With no stragglers it returns the
// nominal value unchanged (bit for bit).
func (p *Plan) ComputeSeconds(node int, start, nominal float64) float64 {
	if len(p.Stragglers) == 0 || nominal <= 0 {
		return nominal
	}
	t, rem, total := start, nominal, 0.0
	for rem > 0 {
		f, until := p.rateAt(node, t)
		span := rem * f // virtual span if this factor held to the end
		if t+span <= until {
			return total + span
		}
		d := until - t
		total += d
		rem -= d / f
		t = until
	}
	return total
}

// TransferTime is the fault-aware Hockney delay of a message of the
// given size departing at virtual time `at`: the machine's alpha/beta
// terms for the (src, dst) path, degraded by every link fault whose
// epoch covers the departure and whose node matches either endpoint.
func (p *Plan) TransferTime(m *cluster.Machine, src, dst, bytes int, at float64) float64 {
	lat, bw := m.Link(src, dst)
	for _, l := range p.LinkFaults {
		if at < l.From || at >= l.To {
			continue
		}
		if l.Node >= 0 && l.Node != m.Node(src) && l.Node != m.Node(dst) {
			continue
		}
		if l.Alpha > 0 {
			lat *= l.Alpha
		}
		if l.Beta > 0 {
			bw /= l.Beta
		}
	}
	if bytes < 0 {
		bytes = 0
	}
	return lat + float64(bytes)/bw
}

// Spec parameterises random plan generation. Crash inter-arrival times
// are exponential with mean MTBF (the whole-job mean time between
// failures), crash ranks uniform — the standard Young/Daly failure
// process. Straggler and link-fault events are optional Poisson streams.
type Spec struct {
	Seed    int64
	Ranks   int
	Horizon float64 // generate events in [0, Horizon)

	MTBF float64 // mean virtual time between rank crashes; 0 disables

	StragglerEvery  float64 // mean time between straggler onsets; 0 disables
	StragglerFactor float64 // compute slowdown (default 4)
	StragglerLen    float64 // window length (default MTBF/4 or 1)

	LinkEvery float64 // mean time between link-degradation epochs; 0 disables
	LinkAlpha float64 // latency multiplier (default 8)
	LinkBeta  float64 // bandwidth divisor (default 4)
	LinkLen   float64 // epoch length (default StragglerLen rule)

	DetectionLatency float64

	// Machine maps ranks to nodes for straggler/link targets; defaults to
	// cluster.ARCHER2().
	Machine *cluster.Machine

	// Periodic replaces the exponential crash process with crashes at
	// exactly MTBF, 2*MTBF, ... — the deterministic schedule Daly's
	// first-order analysis assumes, useful for clean interval sweeps.
	Periodic bool
}

// maxEvents bounds generated event streams against degenerate specs
// (horizon >> rate).
const maxEvents = 4096

func (sp Spec) windowLen(explicit float64) float64 {
	if explicit > 0 {
		return explicit
	}
	if sp.MTBF > 0 {
		return sp.MTBF / 4
	}
	return 1
}

// NewPlan generates the deterministic fault schedule of a spec. The same
// spec always yields the same plan.
func NewPlan(sp Spec) (*Plan, error) {
	if sp.Ranks <= 0 {
		return nil, fmt.Errorf("fault: Spec.Ranks must be positive")
	}
	if sp.Horizon <= 0 {
		return nil, fmt.Errorf("fault: Spec.Horizon must be positive")
	}
	m := sp.Machine
	if m == nil {
		m = cluster.ARCHER2()
	}
	nodes := m.Nodes(sp.Ranks)
	rng := rand.New(rand.NewSource(sp.Seed))
	p := &Plan{DetectionLatency: sp.DetectionLatency}
	if sp.MTBF > 0 {
		for t := 0.0; len(p.Crashes) < maxEvents; {
			if sp.Periodic {
				t += sp.MTBF
			} else {
				t += rng.ExpFloat64() * sp.MTBF
			}
			if t >= sp.Horizon {
				break
			}
			p.Crashes = append(p.Crashes, Crash{Rank: rng.Intn(sp.Ranks), At: t})
		}
	}
	if sp.StragglerEvery > 0 {
		factor := sp.StragglerFactor
		if factor < 1 {
			factor = 4
		}
		length := sp.windowLen(sp.StragglerLen)
		for t := 0.0; len(p.Stragglers) < maxEvents; {
			t += rng.ExpFloat64() * sp.StragglerEvery
			if t >= sp.Horizon {
				break
			}
			p.Stragglers = append(p.Stragglers, Straggler{
				Node: rng.Intn(nodes), Factor: factor, From: t, To: t + length,
			})
		}
	}
	if sp.LinkEvery > 0 {
		alpha, beta := sp.LinkAlpha, sp.LinkBeta
		if alpha <= 0 {
			alpha = 8
		}
		if beta <= 0 {
			beta = 4
		}
		length := sp.windowLen(sp.LinkLen)
		for t := 0.0; len(p.LinkFaults) < maxEvents; {
			t += rng.ExpFloat64() * sp.LinkEvery
			if t >= sp.Horizon {
				break
			}
			p.LinkFaults = append(p.LinkFaults, LinkFault{
				Node: rng.Intn(nodes), From: t, To: t + length, Alpha: alpha, Beta: beta,
			})
		}
	}
	sort.Slice(p.Crashes, func(a, b int) bool { return p.Crashes[a].At < p.Crashes[b].At })
	return p, nil
}

// YoungInterval is Young's first-order optimal checkpoint interval
// sqrt(2 * C * MTBF) for a per-checkpoint cost C, the optimum the
// resilience experiment's sweep reproduces.
func YoungInterval(ckptCost, mtbf float64) float64 {
	if ckptCost <= 0 || mtbf <= 0 {
		return 0
	}
	return math.Sqrt(2 * ckptCost * mtbf)
}
