package fault

import (
	"math"
	"testing"

	"cpx/internal/cluster"
)

func TestNewPlanDeterministic(t *testing.T) {
	sp := Spec{Seed: 7, Ranks: 64, Horizon: 100, MTBF: 5, StragglerEvery: 20, LinkEvery: 30}
	a, err := NewPlan(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Crashes) == 0 || len(a.Stragglers) == 0 || len(a.LinkFaults) == 0 {
		t.Fatalf("plan empty: %d crashes, %d stragglers, %d links",
			len(a.Crashes), len(a.Stragglers), len(a.LinkFaults))
	}
	for i := range a.Crashes {
		if a.Crashes[i] != b.Crashes[i] {
			t.Fatalf("crash %d differs between identical specs", i)
		}
	}
	for i := range a.Stragglers {
		if a.Stragglers[i] != b.Stragglers[i] {
			t.Fatalf("straggler %d differs", i)
		}
	}
	for i := range a.LinkFaults {
		if a.LinkFaults[i] != b.LinkFaults[i] {
			t.Fatalf("link fault %d differs", i)
		}
	}
	c, _ := NewPlan(Spec{Seed: 8, Ranks: 64, Horizon: 100, MTBF: 5})
	if len(c.Crashes) == len(a.Crashes) {
		same := true
		for i := range c.Crashes {
			if c.Crashes[i] != a.Crashes[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical crash schedules")
		}
	}
}

func TestNewPlanCrashesSortedAndBounded(t *testing.T) {
	p, err := NewPlan(Spec{Seed: 1, Ranks: 8, Horizon: 1e9, MTBF: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != maxEvents {
		t.Fatalf("degenerate spec generated %d crashes, want cap %d", len(p.Crashes), maxEvents)
	}
	for i := 1; i < len(p.Crashes); i++ {
		if p.Crashes[i].At < p.Crashes[i-1].At {
			t.Fatal("crashes not sorted by time")
		}
	}
	for _, c := range p.Crashes {
		if c.Rank < 0 || c.Rank >= 8 {
			t.Fatalf("crash rank %d out of range", c.Rank)
		}
	}
}

func TestPeriodicPlanMatchesDaly(t *testing.T) {
	p, err := NewPlan(Spec{Seed: 1, Ranks: 4, Horizon: 10, MTBF: 3, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != 3 {
		t.Fatalf("got %d crashes, want 3 (at 3,6,9)", len(p.Crashes))
	}
	for i, c := range p.Crashes {
		if want := 3 * float64(i+1); c.At != want {
			t.Errorf("crash %d at %v, want %v", i, c.At, want)
		}
	}
}

func TestCrashTime(t *testing.T) {
	p := &Plan{Crashes: []Crash{{Rank: 2, At: 5}, {Rank: 2, At: 3}, {Rank: 1, At: 1}}}
	if got := p.CrashTime(2); got != 3 {
		t.Errorf("CrashTime(2) = %v, want earliest 3", got)
	}
	if got := p.CrashTime(0); !math.IsInf(got, 1) {
		t.Errorf("CrashTime(0) = %v, want +Inf", got)
	}
}

func TestAfterDropsConsumedCrashes(t *testing.T) {
	p := &Plan{
		Crashes:    []Crash{{Rank: 1, At: 1}, {Rank: 2, At: 2}, {Rank: 3, At: 3}},
		Stragglers: []Straggler{{Node: 0, Factor: 2, From: 0, To: 10}},
	}
	q := p.After(2)
	if len(q.Crashes) != 1 || q.Crashes[0].Rank != 3 {
		t.Fatalf("After(2) kept %+v, want only rank 3", q.Crashes)
	}
	if len(q.Stragglers) != 1 {
		t.Fatal("After dropped stragglers; slow nodes must persist across restarts")
	}
}

func TestComputeSecondsNoStragglersIsIdentity(t *testing.T) {
	p := &Plan{}
	for _, s := range []float64{0, 1e-9, 0.3, 7.125} {
		if got := p.ComputeSeconds(0, 2, s); got != s {
			t.Errorf("ComputeSeconds(%v) = %v, want bitwise identity", s, got)
		}
	}
}

func TestComputeSecondsPiecewiseStretch(t *testing.T) {
	// Factor-4 window over [1, 2): a 1s charge starting at 0.5 runs
	// 0.5s at full rate, then the remaining 0.5s of work takes 2s of
	// window (0.5*4 > window remainder fails: window is 1s long, holds
	// 0.25s of nominal work), then 0.25s past the window.
	p := &Plan{Stragglers: []Straggler{{Node: 0, Factor: 4, From: 1, To: 2}}}
	got := p.ComputeSeconds(0, 0.5, 1)
	want := 0.5 + 1 + 0.25
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("stretched charge = %v, want %v", got, want)
	}
	// Entirely inside the window: plain multiplication.
	if got := p.ComputeSeconds(0, 1, 0.1); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("in-window charge = %v, want 0.4", got)
	}
	// Other nodes unaffected.
	if got := p.ComputeSeconds(3, 1, 0.1); got != 0.1 {
		t.Errorf("other node stretched: %v", got)
	}
	// Node -1 hits every node.
	all := &Plan{Stragglers: []Straggler{{Node: -1, Factor: 2, From: 0, To: 100}}}
	if got := all.ComputeSeconds(5, 1, 0.1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("machine-wide straggler = %v, want 0.2", got)
	}
}

func TestComputeSecondsOverlappingWindowsCompound(t *testing.T) {
	p := &Plan{Stragglers: []Straggler{
		{Node: 0, Factor: 2, From: 0, To: 10},
		{Node: 0, Factor: 3, From: 0, To: 10},
	}}
	if got := p.ComputeSeconds(0, 1, 0.5); math.Abs(got-3) > 1e-12 {
		t.Errorf("compound factors = %v, want 0.5*6 = 3", got)
	}
}

func TestTransferTimeMatchesMachineWithoutFaults(t *testing.T) {
	m := cluster.SmallCluster()
	p := &Plan{}
	for _, bytes := range []int{0, 8, 4096, 1 << 20} {
		want := m.TransferTime(0, m.CoresPerNode, bytes)
		if got := p.TransferTime(m, 0, m.CoresPerNode, bytes, 0.5); got != want {
			t.Errorf("bytes=%d: fault-free TransferTime %v != machine %v (must be bitwise)", bytes, got, want)
		}
	}
}

func TestTransferTimeDegradesInsideEpoch(t *testing.T) {
	m := cluster.SmallCluster()
	p := &Plan{LinkFaults: []LinkFault{{Node: -1, From: 1, To: 2, Alpha: 8, Beta: 4}}}
	src, dst := 0, m.CoresPerNode // inter-node path
	clean := m.TransferTime(src, dst, 1<<20)
	during := p.TransferTime(m, src, dst, 1<<20, 1.5)
	before := p.TransferTime(m, src, dst, 1<<20, 0.5)
	after := p.TransferTime(m, src, dst, 1<<20, 2.0) // epochs are [From, To)
	if before != clean || after != clean {
		t.Errorf("outside epoch: %v / %v, want clean %v", before, after, clean)
	}
	if during <= clean {
		t.Errorf("inside epoch %v not slower than clean %v", during, clean)
	}
	lat, bw := m.Link(src, dst)
	want := lat*8 + float64(1<<20)/(bw/4)
	if math.Abs(during-want) > 1e-15*want {
		t.Errorf("degraded delay %v, want %v", during, want)
	}
	// Node-targeted fault leaves unrelated paths alone.
	tp := &Plan{LinkFaults: []LinkFault{{Node: 99, From: 0, To: 10, Alpha: 8, Beta: 4}}}
	if got := tp.TransferTime(m, src, dst, 4096, 1); got != m.TransferTime(src, dst, 4096) {
		t.Error("fault on unrelated node degraded this path")
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []*Plan{
		{Crashes: []Crash{{Rank: -1, At: 1}}},
		{Crashes: []Crash{{Rank: 0, At: -1}}},
		{Stragglers: []Straggler{{Node: 0, Factor: 0.5, From: 0, To: 1}}},
		{Stragglers: []Straggler{{Node: 0, Factor: 2, From: 1, To: 1}}},
		{LinkFaults: []LinkFault{{Node: 0, From: 2, To: 1, Alpha: 2}}},
		{LinkFaults: []LinkFault{{Node: 0, From: 0, To: 1, Alpha: -2}}},
		{DetectionLatency: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
	good := &Plan{Crashes: []Crash{{Rank: 0, At: 1}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestDetectionDefaults(t *testing.T) {
	if got := (&Plan{}).Detection(); got != DefaultDetectionLatency {
		t.Errorf("zero latency = %v, want default", got)
	}
	if got := (&Plan{DetectionLatency: 0.25}).Detection(); got != 0.25 {
		t.Errorf("explicit latency = %v, want 0.25", got)
	}
}

func TestYoungInterval(t *testing.T) {
	if got := YoungInterval(2, 100); math.Abs(got-20) > 1e-12 {
		t.Errorf("YoungInterval(2,100) = %v, want 20", got)
	}
	if YoungInterval(0, 100) != 0 || YoungInterval(1, 0) != 0 {
		t.Error("degenerate inputs must return 0")
	}
}

func TestStoreTwoPhaseCommit(t *testing.T) {
	st := NewStore(3)
	if _, _, ok := st.Last(); ok {
		t.Fatal("fresh store claims a checkpoint")
	}
	for r := 0; r < 3; r++ {
		st.Stage(r, Snapshot{Step: 4, Bytes: 100, State: r})
	}
	// Only two ranks confirm: no commit (crash mid-checkpoint).
	st.Confirm(0, 4, 1.5)
	st.Confirm(1, 4, 1.5)
	if _, _, ok := st.Last(); ok {
		t.Fatal("checkpoint committed without all confirmations")
	}
	st.Confirm(2, 4, 1.5)
	step, clock, ok := st.Last()
	if !ok || step != 4 || clock != 1.5 {
		t.Fatalf("Last = (%d, %v, %v), want (4, 1.5, true)", step, clock, ok)
	}
	snap, ok := st.Load(1)
	if !ok || snap.State.(int) != 1 {
		t.Fatalf("Load(1) = %+v, %v", snap, ok)
	}

	// A later incomplete stage must not disturb the committed one.
	st.Stage(0, Snapshot{Step: 8, State: "partial"})
	st.Confirm(0, 8, 3.0)
	if step, _, _ := st.Last(); step != 4 {
		t.Fatal("incomplete stage overwrote the committed checkpoint")
	}
	// Restaging a new step discards the old stage entirely.
	for r := 0; r < 3; r++ {
		st.Stage(r, Snapshot{Step: 12, State: r * 10})
	}
	for r := 0; r < 3; r++ {
		st.Confirm(r, 12, 6.0)
	}
	if step, clock, _ := st.Last(); step != 12 || clock != 6.0 {
		t.Fatalf("second commit Last = (%d, %v)", step, clock)
	}
}

func TestCheckpointerDue(t *testing.T) {
	cp := &Checkpointer{Every: 4}
	cases := []struct {
		completed, total int
		want             bool
	}{
		{4, 16, true}, {8, 16, true}, {3, 16, false}, {0, 16, false},
		{16, 16, false}, // final step: useless checkpoint
		{12, 12, false},
	}
	for _, c := range cases {
		if got := cp.Due(c.completed, c.total); got != c.want {
			t.Errorf("Due(%d, %d) = %v, want %v", c.completed, c.total, got, c.want)
		}
	}
	var nilCP *Checkpointer
	if nilCP.Due(4, 16) {
		t.Error("nil checkpointer claims a checkpoint is due")
	}
	if (&Checkpointer{Every: 0}).Due(4, 16) {
		t.Error("Every=0 claims a checkpoint is due")
	}
}

func TestDigestOrderAndValueSensitivity(t *testing.T) {
	d1 := NewDigest()
	d1.Floats([]float64{1, 2, 3})
	d2 := NewDigest()
	d2.Floats([]float64{1, 3, 2})
	if d1.Sum64() == d2.Sum64() {
		t.Error("digest insensitive to order")
	}
	d3 := NewDigest()
	d3.Float(0.0)
	d4 := NewDigest()
	d4.Float(math.Copysign(0, -1))
	if d3.Sum64() == d4.Sum64() {
		t.Error("digest conflates +0 and -0: not bitwise")
	}
	d5 := NewDigest()
	d5.Floats([]float64{1, 2, 3})
	if d5.Sum64() != d1.Sum64() {
		t.Error("digest not deterministic")
	}
}
