package fem

import "cpx/internal/fault"

// Checkpoint is a deep copy of the solver's mutable state: owned
// temperatures and heat loads. The system matrix, AMG hierarchy and
// lumped masses are assembled deterministically from the configuration
// and never change, so restoring T and Q resumes the run bit for bit.
type Checkpoint struct {
	T, Q           []float64
	LastIterations int
}

// Checkpoint captures the current state.
func (s *Solver) Checkpoint() *Checkpoint {
	return &Checkpoint{
		T:              append([]float64(nil), s.T...),
		Q:              append([]float64(nil), s.Q...),
		LastIterations: s.LastIterations,
	}
}

// Restore overwrites the solver state with a checkpoint taken from an
// identically configured instance.
func (s *Solver) Restore(ck *Checkpoint) {
	copy(s.T, ck.T)
	copy(s.Q, ck.Q)
	s.LastIterations = ck.LastIterations
}

// CheckpointBytes is the state size a rank writes to stable storage
// (the FEM shell runs unscaled, so simulated size is true size).
func (s *Solver) CheckpointBytes() int {
	return (len(s.T) + len(s.Q)) * 8
}

// StateDigest hashes the exact bit patterns of the mutable state.
func (s *Solver) StateDigest() uint64 {
	d := fault.NewDigest()
	d.Floats(s.T)
	d.Floats(s.Q)
	d.Int(s.LastIterations)
	return d.Sum64()
}
