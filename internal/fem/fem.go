// Package fem implements the finite-element thermal solver the paper's
// conclusions name as the next coupling target: "work is ongoing to
// include FEM solvers for thermal coupling of the engine casing, allowing
// us to run coupled CFD, Combustion and Structural simulations".
//
// The casing is modelled as an annular shell meshed with 4-node bilinear
// quadrilateral elements. Element stiffness and lumped-mass matrices are
// assembled for the transient heat equation
//
//	rho*c * dT/dt = div(k grad T) + q
//
// and each time-step solves the backward-Euler system
// (M/dt + K) T = M/dt T_prev + Q with AMG-preconditioned conjugate
// gradients over a row-block distribution — the same solver stack as the
// pressure correction, exercised on a genuinely assembled FEM operator.
package fem

import (
	"fmt"
	"math"

	"cpx/internal/amg"
	"cpx/internal/cluster"
	"cpx/internal/mpi"
	"cpx/internal/sparse"
)

// Config describes a casing thermal problem.
type Config struct {
	// Shell discretisation: NAxial x NCirc quadrilateral elements.
	NAxial, NCirc int
	// Geometry: casing radius and axial length (unit defaults).
	Radius, Length float64
	// Material: conductivity, density*specific-heat (unit defaults).
	Conductivity float64
	RhoC         float64
	// Dt is the implicit time-step (default 0.01).
	Dt    float64
	Steps int
	Seed  int64
}

func (c Config) withDefaults() Config {
	if c.Radius == 0 {
		c.Radius = 1
	}
	if c.Length == 0 {
		c.Length = 2
	}
	if c.Conductivity == 0 {
		c.Conductivity = 1
	}
	if c.RhoC == 0 {
		c.RhoC = 1
	}
	if c.Dt == 0 {
		c.Dt = 0.01
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NAxial < 2 || c.NCirc < 3 {
		return fmt.Errorf("fem: shell needs at least 2x3 elements, got %dx%d", c.NAxial, c.NCirc)
	}
	if c.Steps < 1 {
		return fmt.Errorf("fem: need at least one step")
	}
	// The casing system is assembled globally (shells are small compared
	// to the flow meshes); keep that tractable.
	if int64(c.NumNodes()) > 2_000_000 {
		return fmt.Errorf("fem: shell of %d nodes too large for global assembly (max 2M)", c.NumNodes())
	}
	return nil
}

// NumNodes returns the node count of the shell: (NAxial+1) axial rings of
// NCirc nodes (periodic in the circumferential direction).
func (c Config) NumNodes() int { return (c.NAxial + 1) * c.NCirc }

// nodeID flattens (axial ring i, circumferential j) with periodic wrap.
func (c Config) nodeID(i, j int) int {
	j = ((j % c.NCirc) + c.NCirc) % c.NCirc
	return i*c.NCirc + j
}

// quadStiffness returns the 4x4 element stiffness of a bilinear quad of
// size a x b with conductivity k, from the standard closed-form
// integration of grad(Ni).grad(Nj) over the element.
func quadStiffness(a, b, k float64) [4][4]float64 {
	// Closed form for a rectangle (local nodes: 00,10,11,01):
	// K = k/(6ab) * [ 2(a^2+b^2) ...] — derived from the bilinear shape
	// functions; symmetric with zero row sums.
	r := a / b
	s := b / a
	k1 := k / 6 * (2*r + 2*s)
	k2 := k / 6 * (r - 2*s)
	k3 := k / 6 * (-r - s)
	k4 := k / 6 * (-2*r + s)
	return [4][4]float64{
		{k1, k4, k3, k2},
		{k4, k1, k2, k3},
		{k3, k2, k1, k4},
		{k2, k3, k4, k1},
	}
}

// Assemble builds the global stiffness matrix K and the lumped mass
// vector M for the shell.
func Assemble(cfg Config) (*sparse.CSR, []float64) {
	cfg = cfg.withDefaults()
	n := cfg.NumNodes()
	// Element dimensions on the developed (unrolled) shell surface.
	a := cfg.Length / float64(cfg.NAxial)              // axial
	b := 2 * math.Pi * cfg.Radius / float64(cfg.NCirc) // circumferential
	ke := quadStiffness(a, b, cfg.Conductivity)
	var ri, ci []int
	var v []float64
	mass := make([]float64, n)
	elemMass := cfg.RhoC * a * b / 4 // lumped
	for i := 0; i < cfg.NAxial; i++ {
		for j := 0; j < cfg.NCirc; j++ {
			nodes := [4]int{
				cfg.nodeID(i, j), cfg.nodeID(i+1, j),
				cfg.nodeID(i+1, j+1), cfg.nodeID(i, j+1),
			}
			for p := 0; p < 4; p++ {
				mass[nodes[p]] += elemMass
				for q := 0; q < 4; q++ {
					ri = append(ri, nodes[p])
					ci = append(ci, nodes[q])
					v = append(v, ke[p][q])
				}
			}
		}
	}
	return sparse.FromCOO(n, n, ri, ci, v), mass
}

// AssembleWork estimates the roofline cost of one assembly pass.
func AssembleWork(cfg Config) cluster.Work {
	elems := float64(cfg.NAxial * cfg.NCirc)
	return cluster.Work{Flops: 200 * elems, Bytes: 600 * elems}
}

// Solver is the per-rank transient thermal solver state.
type Solver struct {
	comm *mpi.Comm
	cfg  Config

	dist *sparse.Dist // system matrix M/dt + K, row-block distributed
	amgS *amg.DistSolver
	mass []float64 // owned lumped masses / dt
	T    []float64 // owned temperatures
	Q    []float64 // owned heat loads

	// LastIterations is the CG iteration count of the latest step.
	LastIterations int
}

// New assembles and distributes the thermal system. Collective over c.
func New(c *mpi.Comm, cfg Config) (*Solver, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k, mass := Assemble(cfg)
	c.Compute(AssembleWork(cfg))
	// System matrix A = M/dt + K (backward Euler); anchored by the mass
	// term, so A is SPD even though pure-Neumann K is singular.
	n := k.Rows
	var ri, ci []int
	var v []float64
	for i := 0; i < n; i++ {
		ri = append(ri, i)
		ci = append(ci, i)
		v = append(v, mass[i]/cfg.Dt)
	}
	a := sparse.Add(k, sparse.FromCOO(n, n, ri, ci, v), 1, 1)
	d := sparse.NewDistFromGlobal(c, a, 70)
	s := &Solver{comm: c, cfg: cfg, dist: d}
	solver, err := amg.NewDistSolver(d, amg.DefaultOptions())
	if err != nil {
		return nil, err
	}
	s.amgS = solver
	own := d.OwnedRows()
	s.mass = make([]float64, own)
	for i := 0; i < own; i++ {
		s.mass[i] = mass[d.RowLo+i] / cfg.Dt
	}
	s.T = make([]float64, own)
	s.Q = make([]float64, own)
	// Initial condition: ambient temperature 300 with a seeded ripple.
	for i := range s.T {
		s.T[i] = 300 + 0.1*math.Sin(float64(d.RowLo+i)*0.01+float64(cfg.Seed))
	}
	return s, nil
}

// OwnedRange returns this rank's global node ownership [lo, hi).
func (s *Solver) OwnedRange() (lo, hi int) { return s.dist.RowLo, s.dist.RowHi }

// SetHeatLoad sets the heat source on an owned node (global id).
func (s *Solver) SetHeatLoad(globalNode int, q float64) {
	if globalNode >= s.dist.RowLo && globalNode < s.dist.RowHi {
		s.Q[globalNode-s.dist.RowLo] = q
	}
}

// Step advances one implicit time-step, returning the CG iterations used.
func (s *Solver) Step() (int, error) {
	own := len(s.T)
	rhs := make([]float64, own)
	for i := 0; i < own; i++ {
		rhs[i] = s.mass[i]*s.T[i] + s.Q[i]
	}
	res := s.amgS.Solve(rhs, s.T, 1e-8, 500)
	if !res.Converged {
		return res.Iterations, fmt.Errorf("fem: thermal solve stalled at residual %.2e", res.Residual)
	}
	s.LastIterations = res.Iterations
	return res.Iterations, nil
}

// MeanTemperature returns the mass-weighted global mean temperature
// (collective) — conserved by pure conduction with no loads.
func (s *Solver) MeanTemperature() float64 {
	localTM, localM := 0.0, 0.0
	for i := range s.T {
		localTM += s.mass[i] * s.T[i]
		localM += s.mass[i]
	}
	sum := s.comm.Allreduce([]float64{localTM, localM}, mpi.Sum)
	return sum[0] / sum[1]
}

// MaxTemperature returns the global max temperature (collective).
func (s *Solver) MaxTemperature() float64 {
	m := math.Inf(-1)
	for _, t := range s.T {
		if t > m {
			m = t
		}
	}
	return s.comm.AllreduceScalar(m, mpi.Max)
}

// BoundarySample extracts n wall-temperature values for coupling
// transfers (cycling over owned nodes).
func (s *Solver) BoundarySample(n int) []float64 {
	out := make([]float64, n)
	if len(s.T) == 0 {
		return out
	}
	for i := range out {
		out[i] = s.T[i%len(s.T)]
	}
	return out
}

// AbsorbBoundary converts received near-wall gas temperatures into heat
// loads on the inner casing surface (convective flux h*(Tgas - Twall)).
func (s *Solver) AbsorbBoundary(vals []float64) {
	const h = 0.05 // convective film coefficient (model units)
	for i, tg := range vals {
		if i >= len(s.Q) {
			break
		}
		if tg > 0 && tg < 5000 {
			s.Q[i] = h * (tg - s.T[i])
		}
	}
}
