package fem

import (
	"fmt"
	"math"
	"testing"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
	"cpx/internal/sparse"
)

func cfgM() mpi.Config {
	return mpi.Config{Machine: cluster.SmallCluster(), Watchdog: 60 * time.Second}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{NAxial: 1, NCirc: 8, Steps: 1}).Validate(); err == nil {
		t.Error("too-thin shell accepted")
	}
	if err := (Config{NAxial: 4, NCirc: 8, Steps: 0}).Validate(); err == nil {
		t.Error("zero steps accepted")
	}
	if err := (Config{NAxial: 4, NCirc: 8, Steps: 1}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestQuadStiffnessProperties(t *testing.T) {
	ke := quadStiffness(0.5, 0.3, 2.0)
	for p := 0; p < 4; p++ {
		// Symmetry.
		for q := 0; q < 4; q++ {
			if math.Abs(ke[p][q]-ke[q][p]) > 1e-14 {
				t.Fatalf("element stiffness not symmetric at (%d,%d)", p, q)
			}
		}
		// Zero row sums (constant temperature gives zero flux).
		sum := 0.0
		for q := 0; q < 4; q++ {
			sum += ke[p][q]
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("row %d sums to %v, want 0", p, sum)
		}
		// Positive diagonal.
		if ke[p][p] <= 0 {
			t.Fatalf("diagonal %d not positive", p)
		}
	}
}

func TestAssembleGlobalProperties(t *testing.T) {
	cfg := Config{NAxial: 4, NCirc: 6, Steps: 1}.withDefaults()
	k, mass := Assemble(cfg)
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if k.Rows != cfg.NumNodes() {
		t.Fatalf("K is %d rows, want %d nodes", k.Rows, cfg.NumNodes())
	}
	// Global K symmetric with zero row sums (pure Neumann conduction).
	if !k.EqualWithin(k.Transpose(), 1e-12) {
		t.Error("global stiffness not symmetric")
	}
	for i := 0; i < k.Rows; i++ {
		sum := 0.0
		for kk := k.RowPtr[i]; kk < k.RowPtr[i+1]; kk++ {
			sum += k.Val[kk]
		}
		if math.Abs(sum) > 1e-10 {
			t.Fatalf("K row %d sums to %v", i, sum)
		}
	}
	// Total lumped mass = rho*c * shell area.
	total := 0.0
	for _, m := range mass {
		total += m
	}
	area := cfg.Length * 2 * math.Pi * cfg.Radius
	if math.Abs(total-cfg.RhoC*area)/area > 1e-10 {
		t.Errorf("total mass %v, want %v", total, cfg.RhoC*area)
	}
}

func TestPeriodicWrap(t *testing.T) {
	cfg := Config{NAxial: 2, NCirc: 5, Steps: 1}
	if cfg.nodeID(0, 5) != cfg.nodeID(0, 0) {
		t.Error("circumferential wrap broken")
	}
	if cfg.nodeID(1, -1) != cfg.nodeID(1, 4) {
		t.Error("negative wrap broken")
	}
	// The wrap couples the seam: K[0, NCirc-1] must be nonzero.
	k, _ := Assemble(cfg.withDefaults())
	if k.At(0, 4) == 0 {
		t.Error("seam nodes not coupled: shell is not periodic")
	}
}

func TestMeanTemperatureConserved(t *testing.T) {
	// Pure conduction with no loads conserves energy exactly.
	cfg := Config{NAxial: 6, NCirc: 8, Steps: 10, Seed: 1}
	for _, p := range []int{1, 3} {
		_, err := mpi.Run(p, cfgM(), func(c *mpi.Comm) error {
			s, err := New(c, cfg)
			if err != nil {
				return err
			}
			before := s.MeanTemperature()
			for i := 0; i < cfg.Steps; i++ {
				if _, err := s.Step(); err != nil {
					return err
				}
			}
			after := s.MeanTemperature()
			if math.Abs(after-before) > 1e-6*before {
				return fmt.Errorf("p=%d: mean T drifted %v -> %v", p, before, after)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDiffusionSmoothsRipple(t *testing.T) {
	cfg := Config{NAxial: 6, NCirc: 8, Steps: 50, Seed: 2}
	_, err := mpi.Run(2, cfgM(), func(c *mpi.Comm) error {
		s, err := New(c, cfg)
		if err != nil {
			return err
		}
		// Sharpest spatial mode: alternating hot/cold nodes decay fastest.
		lo, _ := s.OwnedRange()
		for i := range s.T {
			if (lo+i)%2 == 0 {
				s.T[i] = 310
			} else {
				s.T[i] = 290
			}
		}
		spreadBefore := s.MaxTemperature() - s.MeanTemperature()
		for i := 0; i < cfg.Steps; i++ {
			if _, err := s.Step(); err != nil {
				return err
			}
		}
		spreadAfter := s.MaxTemperature() - s.MeanTemperature()
		if !(spreadAfter < spreadBefore/2) {
			return fmt.Errorf("diffusion did not smooth: spread %v -> %v", spreadBefore, spreadAfter)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeatLoadRaisesTemperature(t *testing.T) {
	cfg := Config{NAxial: 4, NCirc: 6, Steps: 20, Seed: 3}
	_, err := mpi.Run(2, cfgM(), func(c *mpi.Comm) error {
		s, err := New(c, cfg)
		if err != nil {
			return err
		}
		before := s.MeanTemperature()
		lo, _ := s.OwnedRange()
		s.SetHeatLoad(lo, 5.0)
		for i := 0; i < cfg.Steps; i++ {
			if _, err := s.Step(); err != nil {
				return err
			}
		}
		if after := s.MeanTemperature(); !(after > before) {
			return fmt.Errorf("heating did not raise mean T: %v -> %v", before, after)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	cfg := Config{NAxial: 5, NCirc: 7, Steps: 5, Seed: 4}
	finalT := func(p int) []float64 {
		out := make([]float64, cfg.NumNodes())
		_, err := mpi.Run(p, cfgM(), func(c *mpi.Comm) error {
			s, err := New(c, cfg)
			if err != nil {
				return err
			}
			for i := 0; i < cfg.Steps; i++ {
				if _, err := s.Step(); err != nil {
					return err
				}
			}
			all := c.Gather(0, s.T)
			if c.Rank() == 0 {
				i := 0
				for _, part := range all {
					copy(out[i:], part)
					i += len(part)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := finalT(1), finalT(4)
	for i := range a {
		// The iterates differ only by the CG tolerance (the block
		// preconditioner depends on the partition).
		if math.Abs(a[i]-b[i]) > 1e-3 {
			t.Fatalf("node %d differs between 1 and 4 ranks: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAbsorbBoundaryCreatesLoads(t *testing.T) {
	cfg := Config{NAxial: 4, NCirc: 6, Steps: 1, Seed: 5}
	_, err := mpi.Run(1, cfgM(), func(c *mpi.Comm) error {
		s, err := New(c, cfg)
		if err != nil {
			return err
		}
		hot := make([]float64, 5)
		for i := range hot {
			hot[i] = 1500 // hot gas
		}
		s.AbsorbBoundary(hot)
		if s.Q[0] <= 0 {
			return fmt.Errorf("hot gas produced no heat load: %v", s.Q[0])
		}
		// Out-of-range values guarded.
		s.AbsorbBoundary([]float64{1e9})
		if s.Q[0] > 1000 {
			return fmt.Errorf("non-physical transfer accepted: %v", s.Q[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSystemMatrixSPD(t *testing.T) {
	cfg := Config{NAxial: 3, NCirc: 5, Steps: 1}.withDefaults()
	k, mass := Assemble(cfg)
	n := k.Rows
	var ri, ci []int
	var v []float64
	for i := 0; i < n; i++ {
		ri = append(ri, i)
		ci = append(ci, i)
		v = append(v, mass[i]/cfg.Dt)
	}
	a := sparse.Add(k, sparse.FromCOO(n, n, ri, ci, v), 1, 1)
	// SPD check: x'Ax > 0 for a few random-ish vectors.
	for trial := 0; trial < 5; trial++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(i*(trial+1)) * 0.37)
		}
		y := make([]float64, n)
		a.MulVec(x, y)
		dot := 0.0
		for i := range x {
			dot += x[i] * y[i]
		}
		if dot <= 0 {
			t.Fatalf("system matrix not positive definite (trial %d: %v)", trial, dot)
		}
	}
}
