package harness

import (
	"fmt"

	"cpx/internal/amg"
	"cpx/internal/coupler"
	"cpx/internal/sparse"
)

// mapperForKind builds a Mapper with a representative prefetch hit rate.
func mapperForKind(kind int) *coupler.Mapper {
	return &coupler.Mapper{Kind: coupler.Search(kind), LastHits: 95, LastMisses: 5}
}

// AMGAblation isolates each Section IV optimisation on a reference
// pressure-correction operator: smoother choice, interpolation operator,
// cycle type and SpGEMM kernel, reporting PCG iterations, operator
// complexity and the modelled setup/cycle costs on the target machine.
func (o Options) AMGAblation() (*Table, error) {
	n := 24
	if o.Quick {
		n = 12
	}
	a := sparse.Poisson3D(n, n, n)
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = float64(i%7) - 3
	}

	type variant struct {
		name string
		opts amg.Options
	}
	base := amg.DefaultOptions()
	variants := []variant{
		{"base (aggregation, Jacobi, V, two-pass)", base},
	}
	v := base
	v.Smoother = amg.GaussSeidel
	variants = append(variants, variant{"+ Gauss-Seidel smoother", v})
	v = base
	v.Smoother = amg.HybridGS
	variants = append(variants, variant{"+ hybrid GS smoother [51]", v})
	v = base
	v.Smoother = amg.Chebyshev
	variants = append(variants, variant{"+ Chebyshev polynomial smoother [51]", v})
	v = base
	v.Interp = amg.Smoothed
	variants = append(variants, variant{"+ smoothed aggregation P", v})
	v = base
	v.Coarsening = amg.PMISSplit
	v.Interp = amg.Direct
	variants = append(variants, variant{"PMIS + direct interpolation", v})
	v = base
	v.Coarsening = amg.PMISSplit
	v.Interp = amg.ExtendedI
	variants = append(variants, variant{"PMIS + extended+i interpolation [52]", v})
	v = base
	v.Interp = amg.Smoothed
	v.Cycle = amg.KCycle
	variants = append(variants, variant{"+ K-cycle acceleration [50]", v})
	v = base
	v.SpGEMM = amg.SpGEMMSPA
	variants = append(variants, variant{"+ SPA single-pass SpGEMM [48]", v})
	v = base
	v.Coarsening = amg.PMISSplit
	v.Interp = amg.Direct
	v.IdentityOpt = true
	variants = append(variants, variant{"+ identity-block transfer SpMV [48]", v})
	variants = append(variants, variant{"fully optimized (Section IV recipe)", amg.OptimizedOptions()})

	t := &Table{
		ID:    "amg-ablation",
		Title: fmt.Sprintf("AMG design-choice ablation on a %d^3 pressure operator", n),
		Headers: []string{"configuration", "PCG iters", "levels", "op complexity",
			"setup Mflops", "cycle Mflops"},
	}
	for _, vr := range variants {
		h, err := amg.Setup(a, vr.opts)
		if err != nil {
			return nil, fmt.Errorf("amg ablation %q: %w", vr.name, err)
		}
		x := make([]float64, a.Rows)
		res := h.PCG(rhs, x, 1e-8, 400)
		if !res.Converged {
			return nil, fmt.Errorf("amg ablation %q did not converge (%d iters, res %.2e)",
				vr.name, res.Iterations, res.Residual)
		}
		cyc := h.CycleWork()
		t.AddRow(vr.name, d(res.Iterations), d(h.NumLevels()),
			f2(h.OperatorComplexity()),
			f2(h.SetupWork.Flops/1e6), f2(cyc.Flops/1e6))
	}
	t.Notes = append(t.Notes,
		"the optimized recipe trades operator complexity (denser interpolation) for fewer, cheaper-per-byte iterations",
		"SPA SpGEMM changes the setup cost only; results are bit-identical to two-pass")
	return t, nil
}

// SearchAblation compares the three CPX donor-search strategies at
// production interface sizes — the optimisation that removed the coupling
// bottleneck between [13] and [31].
func (o Options) SearchAblation() (*Table, error) {
	donors := 200_000
	targets := 50_000
	if o.Quick {
		donors, targets = 20_000, 5_000
	}
	t := &Table{
		ID:      "search-ablation",
		Title:   fmt.Sprintf("Sliding-plane donor search: %d targets over %d donors, per exchange", targets, donors),
		Headers: []string{"strategy", "modelled time (ms)", "vs brute force"},
	}
	m := o.Machine
	var bruteMs float64
	for _, s := range []struct {
		name string
		kind int
	}{
		{"brute force", 0},
		{"kd-tree", 1},
		{"kd-tree + prefetch", 2},
	} {
		mp := mapperForKind(s.kind)
		w := mp.MapWork(float64(targets), float64(donors), true)
		ms := m.ComputeTime(w) * 1000
		if s.kind == 0 {
			bruteMs = ms
		}
		t.AddRow(s.name, f3(ms), f1(bruteMs/ms)+"x")
	}
	t.Notes = append(t.Notes,
		"the production coupler's tree+prefetch search cut coupling overhead to <0.5% of run-time [31]")
	return t, nil
}
