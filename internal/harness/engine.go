package harness

import (
	"fmt"
	"math"

	"cpx/internal/coupler"
	"cpx/internal/mesh"
	"cpx/internal/mgcfd"
	"cpx/internal/perfmodel"
	"cpx/internal/simpic"
)

// ---- Curve fitting from standalone runs -------------------------------------

// fitMGCFD benchmarks the MG-CFD proxy standalone and fits its curve.
// The curve's base time corresponds to `steps` time-steps.
func (o Options) fitMGCFD(meshCells int64, steps int, coresList []int) (*perfmodel.Curve, error) {
	samples := make([]perfmodel.Sample, 0, len(coresList))
	for _, p := range coresList {
		o.logf("  fit mgcfd %dM @ %d", meshCells/1_000_000, p)
		rt, err := o.MGCFDRuntime(mgcfd.Config{MeshCells: meshCells, Steps: steps, Seed: 1}, p)
		if err != nil {
			return nil, err
		}
		samples = append(samples, perfmodel.Sample{Cores: p, Runtime: rt})
	}
	return perfmodel.FitCurve(samples)
}

// fitSimpic benchmarks a SIMPIC configuration standalone and fits its
// curve. The base time corresponds to the configuration's full Steps.
func (o Options) fitSimpic(cfg simpic.Config, coresList []int) (*perfmodel.Curve, error) {
	samples := make([]perfmodel.Sample, 0, len(coresList))
	for _, p := range coresList {
		o.logf("  fit simpic cells=%d ppc=%d @ %d", cfg.Cells, cfg.ParticlesPerCell, p)
		rt, err := o.SimpicRuntime(cfg, p)
		if err != nil {
			return nil, err
		}
		samples = append(samples, perfmodel.Sample{Cores: p, Runtime: rt})
	}
	return perfmodel.FitCurve(samples)
}

// cuCurve builds the analytic run-time curve of a coupling unit for ONE
// exchange: each CU rank maps and interpolates its share of the targets
// and moves its share of the interface bytes.
func (o Options) cuCurve(points int, kind coupler.InterfaceKind, search coupler.Search) (*perfmodel.Curve, error) {
	m := o.Machine
	timeAt := func(p int) float64 {
		targets := float64(points) / float64(p)
		mapper := &coupler.Mapper{Kind: search, LastHits: 95, LastMisses: 5}
		rebuild := kind == coupler.SlidingPlane
		w := mapper.MapWork(targets, float64(points), rebuild)
		w = w.Add(coupler.InterpolateWork(targets))
		bytes := targets * 5 * 8 * 2 // both directions, 5 fields
		return m.ComputeTime(w) + bytes/m.EffectiveInterBW() + 4*m.InterNodeLatency
	}
	var samples []perfmodel.Sample
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		samples = append(samples, perfmodel.Sample{Cores: p, Runtime: timeAt(p)})
	}
	return perfmodel.FitCurve(samples)
}

// ---- Fig. 8: small coupled validation ---------------------------------------

// fig8DensitySteps is the full duration of the small validation scenario.
const fig8DensitySteps = 100

// Fig8 reproduces the small coupled test: two MG-CFD instances on the
// 150M Rotor37 mesh plus one SIMPIC unit standing in for a 28M-cell
// pressure solve, on a 5,000-core budget. The model allocates ranks and
// predicts per-instance run-times, the coupled mini-app simulation is
// executed at that allocation, and the prediction errors are reported.
func (o Options) Fig8() (*Table, error) {
	budget := 5000
	steps := fig8DensitySteps
	sample := 8
	mgCores := []int{100, 200, 400, 800, 1600}
	spCores := []int{200, 800, 1600, 3200, 4800}
	if o.Quick {
		budget, steps, sample = 60, 8, 4
		mgCores = []int{8, 16, 24}
		spCores = []int{8, 16, 24}
	}
	mgMesh := int64(150_000_000)
	spMesh := int64(28_000_000)
	if o.Quick {
		mgMesh, spMesh = 40_000, 40_000
	}

	o.logf("fig8: fitting standalone curves")
	mgCurve, err := o.fitMGCFD(mgMesh, steps, mgCores)
	if err != nil {
		return nil, err
	}
	stc := simpic.BaseSTC(spMesh)
	if o.Quick {
		stc = simpic.Config{Cells: 4096, ParticlesPerCell: 20, Steps: 2 * steps}
	}
	spCurve, err := o.fitSimpic(stc, spCores)
	if err != nil {
		return nil, err
	}
	slidingPts := mesh.InterfaceCells(mesh.CubeDims(mgMesh), coupler.SlidingFraction)
	steadyPts := mesh.InterfaceCells(mesh.CubeDims(spMesh), coupler.SteadyFraction)
	cuSlide, err := o.cuCurve(slidingPts, coupler.SlidingPlane, coupler.TreePrefetch)
	if err != nil {
		return nil, err
	}
	cuSteady, err := o.cuCurve(steadyPts, coupler.SteadyState, coupler.TreePrefetch)
	if err != nil {
		return nil, err
	}

	// Model components. IterRatio converts each curve's base duration to
	// this scenario's: MG-CFD curves were fitted at `steps` steps (ratio
	// 1); SIMPIC's at its full Steps; CU curves per exchange.
	comps := []perfmodel.Component{
		{Name: "MG-CFD row 1 (150M)", Curve: mgCurve},
		{Name: "MG-CFD row 2 (150M)", Curve: mgCurve},
		// The SIMPIC curve's base time is its full configuration, which
		// stands for PressureStepsEquivalent (10) pressure-solver steps;
		// the scenario runs 2 pressure steps per density step.
		{Name: "SIMPIC (28M equiv)", Curve: spCurve, IterRatio: float64(2*steps) / 10.0},
		{Name: "CU rows 1-2 (sliding)", Curve: cuSlide, IsCU: true, IterRatio: float64(steps)},
		{Name: "CU row-combustor (steady)", Curve: cuSteady, IsCU: true, IterRatio: float64(steps) / 20},
	}
	alloc, err := perfmodel.Allocate(comps, budget)
	if err != nil {
		return nil, err
	}
	o.logf("fig8 allocation:\n%s", alloc.String())

	// Execute the coupled simulation at the allocated ranks.
	sim := &coupler.Simulation{
		Instances: []coupler.InstanceSpec{
			{Name: comps[0].Name, Kind: coupler.KindMGCFD, MeshCells: mgMesh, Ranks: alloc.Cores[0], Seed: 1},
			{Name: comps[1].Name, Kind: coupler.KindMGCFD, MeshCells: mgMesh, Ranks: alloc.Cores[1], Seed: 2},
			{Name: comps[2].Name, Kind: coupler.KindSIMPIC, MeshCells: spMesh, Ranks: alloc.Cores[2], Simpic: &stc, Seed: 3},
		},
		Units: []coupler.UnitSpec{
			{Name: comps[3].Name, A: 0, B: 1, Kind: coupler.SlidingPlane, Points: slidingPts,
				Ranks: alloc.Cores[3], Search: coupler.TreePrefetch},
			{Name: comps[4].Name, A: 1, B: 2, Kind: coupler.SteadyState, Points: steadyPts,
				Ranks: alloc.Cores[4], Search: coupler.TreePrefetch, ExchangeEvery: 20},
		},
		DensitySteps:    sample,
		RotationPerStep: 0.002,
		Scale:           coupler.ProductionScale(),
	}
	o.logf("fig8: running coupled simulation on %d ranks", sim.TotalRanks())
	rep, err := sim.Run(o.coupledConfig())
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "fig8",
		Title:   fmt.Sprintf("Small coupled validation (150M/28M) on a %d-core budget", budget),
		Headers: []string{"component", "ranks", "predicted(s)", "measured(s)", "err"},
	}
	var worst float64
	for i := range sim.Instances {
		measured := rep.ScaledInstanceTime(i, steps)
		e := perfmodel.RelativeError(alloc.Times[i], measured)
		if e > worst {
			worst = e
		}
		t.AddRow(comps[i].Name, d(alloc.Cores[i]), f2(alloc.Times[i]), f2(measured), pct(e))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("max per-instance prediction error %.0f%% (paper: 18%%)", 100*worst),
		fmt.Sprintf("paper allocation for comparison: 331 + 331 MG-CFD, 4,253 SIMPIC, 63 + 22 CU ranks"),
		fmt.Sprintf("unallocated cores (past PE knees): %d", alloc.Unallocated))
	t.Notes = append(t.Notes, criticalPathNotes(rep)...)
	return t, nil
}

// criticalPathNotes renders a traced coupled report's critical-path
// attribution as table notes (empty when tracing was off).
func criticalPathNotes(rep *coupler.Report) []string {
	if rep.Critical == nil {
		return nil
	}
	notes := []string{fmt.Sprintf("critical path: %s carries %.2f s of %.2f s (%.0f%%); wait share %.0f%%",
		rep.CriticalComponents[0].Label, rep.CriticalComponents[0].Seconds,
		rep.Critical.Elapsed, 100*rep.CriticalComponents[0].Share,
		100*rep.Critical.ByKind()["wait"]/rep.Critical.Elapsed)}
	for _, ls := range rep.CriticalComponents[1:] {
		if ls.Share < 0.01 {
			break
		}
		notes = append(notes, fmt.Sprintf("critical path: %s %.2f s (%.0f%%)", ls.Label, ls.Seconds, 100*ls.Share))
	}
	return notes
}

// ---- Fig. 9: full-engine simulation -----------------------------------------

// engineInstance describes one row of the Fig. 9b instance table.
type engineInstance struct {
	name string
	kind coupler.SolverKind
	mesh int64
}

// engineInstances returns the 16-instance HPC-Combustor-HPT layout of
// Fig. 9b: one 8M inlet row, eleven 24M compressor rows, a 150M row, the
// 380M-equivalent combustor (SIMPIC), and the 150M + 300M turbine rows.
func engineInstances() []engineInstance {
	out := []engineInstance{{"row01 (8M)", coupler.KindMGCFD, 8_000_000}}
	for i := 2; i <= 12; i++ {
		out = append(out, engineInstance{fmt.Sprintf("row%02d (24M)", i), coupler.KindMGCFD, 24_000_000})
	}
	out = append(out,
		engineInstance{"row13 (150M)", coupler.KindMGCFD, 150_000_000},
		engineInstance{"combustor (380M equiv)", coupler.KindSIMPIC, 380_000_000},
		engineInstance{"row15 (150M)", coupler.KindMGCFD, 150_000_000},
		engineInstance{"row16 (300M)", coupler.KindMGCFD, 300_000_000},
	)
	return out
}

// EngineResult carries the model and measurement of one engine variant.
type EngineResult struct {
	Alloc      *perfmodel.Allocation
	Sim        *coupler.Simulation
	Rep        *coupler.Report
	FullSteps  int
	Measured   []float64 // per instance, scaled to FullSteps
	Predicted  []float64 // per component (instances first)
	TotalRanks int
}

// engineDensitySteps is the "1 revolution" duration (the paper: 1,000
// density-solver steps; we predict for that and measure a sampled run).
const engineDensitySteps = 1000

// RunEngine fits curves, allocates the budget, and executes the sampled
// coupled full-engine simulation for one STC variant.
func (o Options) RunEngine(optimized bool, budget int) (*EngineResult, error) {
	insts := engineInstances()
	fullSteps := engineDensitySteps
	sampleSteps := 20
	minRanks := 100
	// Fit one curve per distinct MG-CFD mesh size.
	mgCores := map[int64][]int{
		8_000_000:   {64, 128, 384},
		24_000_000:  {64, 256, 1024},
		150_000_000: {100, 500, 2000},
		300_000_000: {100, 800, 4000},
	}
	if o.Quick {
		// Smoke-test geometry: meshes shrunk 1000x, tiny budget.
		fullSteps, sampleSteps, minRanks = 40, 20, 4
		mgCores = map[int64][]int{
			8_000:   {2, 4, 8},
			24_000:  {2, 4, 8},
			150_000: {4, 8, 16},
			300_000: {4, 8, 16},
		}
		for i := range insts {
			insts[i].mesh /= 1000
		}
	}
	o.logf("engine(optimized=%v): fitting curves", optimized)
	curves := map[int64]*perfmodel.Curve{}
	for sz, list := range mgCores {
		c, err := o.fitMGCFD(sz, fullSteps, list)
		if err != nil {
			return nil, err
		}
		curves[sz] = c
	}
	stc := simpic.BaseSTC(380_000_000)
	spCores := []int{1000, 6000, 16000}
	if optimized {
		stc = simpic.OptimizedSTC()
		// The Optimized-STC weight is calibrated against the *28M*
		// optimized pressure solver (Fig. 6b/c); the engine's combustor is
		// the 380M case, 13.6x larger.
		stc.ParticleWeight *= 380.0 / 28.0
		spCores = []int{1000, 12000, 32000}
	}
	if o.Quick {
		stc = simpic.Config{Cells: 2048, ParticlesPerCell: 10, Steps: 2 * fullSteps}
		if optimized {
			stc.ParticlesPerCell = 5
		}
		spCores = []int{4, 8, 16}
	}
	spCurve, err := o.fitSimpic(stc, spCores)
	if err != nil {
		return nil, err
	}

	// Components: instances then CUs. CU i couples instance i and i+1.
	var comps []perfmodel.Component
	simSpec := &coupler.Simulation{DensitySteps: sampleSteps, RotationPerStep: 0.002, Scale: coupler.ProductionScale()}
	for i, inst := range insts {
		cp := perfmodel.Component{Name: inst.name, MinRanks: minRanks}
		if inst.kind == coupler.KindSIMPIC {
			cp.Curve = spCurve
			// The combustor runs 2 pressure steps per density step; the
			// curve's base time represents 10 pressure steps (the STC
			// equivalence of Fig. 3).
			cp.IterRatio = float64(2*fullSteps) / 10.0
		} else {
			cp.Curve = curves[inst.mesh]
			cp.IterRatio = 1 // curves fitted at fullSteps steps
		}
		comps = append(comps, cp)
		spec := coupler.InstanceSpec{Name: inst.name, Kind: inst.kind, MeshCells: inst.mesh, Seed: int64(i + 1)}
		if inst.kind == coupler.KindSIMPIC {
			cfg := stc
			spec.Simpic = &cfg
		}
		simSpec.Instances = append(simSpec.Instances, spec)
	}
	for i := 0; i+1 < len(insts); i++ {
		a, b := insts[i], insts[i+1]
		kind := coupler.SlidingPlane
		frac := coupler.SlidingFraction
		every := 1
		if a.kind == coupler.KindSIMPIC || b.kind == coupler.KindSIMPIC {
			kind = coupler.SteadyState
			frac = coupler.SteadyFraction
			every = 20
		}
		small := a.mesh
		if b.mesh < small {
			small = b.mesh
		}
		points := mesh.InterfaceCells(mesh.CubeDims(small), frac)
		curve, err := o.cuCurve(points, kind, coupler.TreePrefetch)
		if err != nil {
			return nil, err
		}
		comps = append(comps, perfmodel.Component{
			Name:      fmt.Sprintf("CU %02d-%02d", i+1, i+2),
			Curve:     curve,
			IsCU:      true,
			IterRatio: float64(fullSteps) / float64(every),
			MinRanks:  1,
		})
		simSpec.Units = append(simSpec.Units, coupler.UnitSpec{
			Name: comps[len(comps)-1].Name, A: i, B: i + 1, Kind: kind,
			Points: points, Search: coupler.TreePrefetch, ExchangeEvery: every,
		})
	}

	alloc, err := perfmodel.Allocate(comps, budget)
	if err != nil {
		return nil, err
	}
	for i := range simSpec.Instances {
		simSpec.Instances[i].Ranks = alloc.Cores[i]
	}
	for u := range simSpec.Units {
		simSpec.Units[u].Ranks = alloc.Cores[len(insts)+u]
	}
	o.logf("engine(optimized=%v): running coupled sim on %d ranks", optimized, simSpec.TotalRanks())
	rep, err := simSpec.Run(o.coupledConfig())
	if err != nil {
		return nil, err
	}
	res := &EngineResult{
		Alloc: alloc, Sim: simSpec, Rep: rep,
		FullSteps:  fullSteps,
		TotalRanks: simSpec.TotalRanks(),
	}
	// Per-instance validation (Fig. 9a): the paper compares the model's
	// predictions against the *standalone* run-time of each mini-app
	// instance at its allocated rank count (Section V-B), so the fit
	// quality is measured apart from the coupled exchange dynamics.
	type standaloneKey struct {
		kind coupler.SolverKind
		mesh int64
		p    int
	}
	cache := map[standaloneKey]float64{}
	for i, inst := range insts {
		key := standaloneKey{inst.kind, inst.mesh, alloc.Cores[i]}
		measured, ok := cache[key]
		if !ok {
			var err error
			if inst.kind == coupler.KindSIMPIC {
				o.logf("engine: standalone combustor @ %d ranks", alloc.Cores[i])
				rt, rerr := o.SimpicRuntime(stc, alloc.Cores[i])
				// The component represents IterRatio x the curve's base
				// configuration; scale the standalone measurement the same.
				measured, err = rt*comps[i].IterRatio, rerr
			} else {
				o.logf("engine: standalone %s @ %d ranks", inst.name, alloc.Cores[i])
				measured, err = o.MGCFDRuntime(mgcfd.Config{MeshCells: inst.mesh, Steps: fullSteps, Seed: 1}, alloc.Cores[i])
			}
			if err != nil {
				return nil, err
			}
			cache[key] = measured
		}
		res.Measured = append(res.Measured, measured)
		res.Predicted = append(res.Predicted, alloc.Times[i])
	}
	return res, nil
}

// Fig9 reproduces the full-engine experiment set: the rank allocation
// table (9b), per-instance model errors for both STC variants (9a), and
// the predicted vs measured Optimized/Base speedup (9c).
func (o Options) Fig9() ([]*Table, error) {
	budget := 40_000
	base, err := o.RunEngine(false, budget)
	if err != nil {
		return nil, fmt.Errorf("fig9 base: %w", err)
	}
	opt, err := o.RunEngine(true, budget)
	if err != nil {
		return nil, fmt.Errorf("fig9 optimized: %w", err)
	}
	insts := engineInstances()

	// 9b: rank allocation.
	t9b := &Table{
		ID:      "fig9b",
		Title:   "Full engine (1.25Bn-cell equivalent): rank allocation at a 40,000-core budget",
		Headers: []string{"instance", "mesh", "ranks (Base-STC)", "ranks (Optimized-STC)"},
	}
	for i, inst := range insts {
		t9b.AddRow(inst.name, fmt.Sprintf("%dM", inst.mesh/1_000_000),
			d(base.Alloc.Cores[i]), d(opt.Alloc.Cores[i]))
	}
	t9b.AddRow("(idle past PE knees)", "-", d(base.Alloc.Unallocated), d(opt.Alloc.Unallocated))
	t9b.Notes = append(t9b.Notes,
		"paper allocation: MG-CFD 8M->100, 24M->100/163, 150M->167/1218, 300M->338/3357; SIMPIC->13428/32201")

	// 9a: per-instance prediction errors.
	t9a := &Table{
		ID:      "fig9a",
		Title:   "Per-instance model error, 20 pressure-solver steps equivalent",
		Headers: []string{"instance", "Base pred(s)", "Base meas(s)", "Base err", "Opt pred(s)", "Opt meas(s)", "Opt err"},
	}
	stats := func(res *EngineResult) (mean, worst float64) {
		for i := range insts {
			e := perfmodel.RelativeError(res.Predicted[i], res.Measured[i])
			mean += e
			if e > worst {
				worst = e
			}
		}
		return mean / float64(len(insts)), worst
	}
	for i, inst := range insts {
		eb := perfmodel.RelativeError(base.Predicted[i], base.Measured[i])
		eo := perfmodel.RelativeError(opt.Predicted[i], opt.Measured[i])
		t9a.AddRow(inst.name, f2(base.Predicted[i]), f2(base.Measured[i]), pct(eb),
			f2(opt.Predicted[i]), f2(opt.Measured[i]), pct(eo))
	}
	bMean, bWorst := stats(base)
	oMean, oWorst := stats(opt)
	t9a.Notes = append(t9a.Notes,
		fmt.Sprintf("Base-STC: mean error %.0f%%, worst %.0f%%; Optimized-STC: mean %.0f%%, worst %.0f%% (paper: mean 12%%, worst 25%%)",
			100*bMean, 100*bWorst, 100*oMean, 100*oWorst))

	// 9c: predicted vs measured speedup over one revolution. The paper
	// measures half a revolution and doubles it; the sampled coupled run
	// plays that role here.
	predSpeedup := perfmodel.PredictSpeedup(base.Alloc, opt.Alloc)
	measBase := base.Rep.ScaledElapsed(base.FullSteps/2) * 2
	measOpt := opt.Rep.ScaledElapsed(opt.FullSteps/2) * 2
	t9c := &Table{
		ID:      "fig9c",
		Title:   "Optimized-STC vs Base-STC speedup, 1 revolution (1,000 density steps)",
		Headers: []string{"quantity", "Base-STC", "Optimized-STC"},
	}
	t9c.AddRow("predicted run-time (s)", f2(base.Alloc.Predicted), f2(opt.Alloc.Predicted))
	t9c.AddRow("measured run-time (s)", f2(measBase), f2(measOpt))
	t9c.AddRow("prediction error", pct(perfmodel.RelativeError(base.Alloc.Predicted, measBase)),
		pct(perfmodel.RelativeError(opt.Alloc.Predicted, measOpt)))
	t9c.AddRow("coupling share of run-time", pct(base.Rep.CouplingShare), pct(opt.Rep.CouplingShare))
	measSpeedup := math.Inf(1)
	if measOpt > 0 {
		measSpeedup = measBase / measOpt
	}
	t9c.Notes = append(t9c.Notes,
		fmt.Sprintf("predicted speedup %.1fx, measured speedup %.1fx (paper: predicted ~6x, measured ~4x, errors <25%%)", predSpeedup, measSpeedup),
		"paper anchor: coupling overhead <0.5% of run-time with the tree+prefetch search")
	for _, v := range []struct {
		name string
		rep  *coupler.Report
	}{{"Base-STC", base.Rep}, {"Optimized-STC", opt.Rep}} {
		for _, n := range criticalPathNotes(v.rep) {
			t9c.Notes = append(t9c.Notes, v.name+" "+n)
		}
	}
	return []*Table{t9a, t9b, t9c}, nil
}

// Sensitivity reproduces the Section V-C bounds: best-case and worst-case
// speedups of the optimised pressure solver under varying assumptions.
// The run-time shares are extrapolated to the ~30,000-core operating
// point, where the spray's O(p) alltoallv has grown to dominate the base
// solver (spray ~52%, pressure field ~36%, well-scaling rest ~12%).
func (o Options) Sensitivity() (*Table, error) {
	const (
		shareSpray = 0.52
		shareField = 0.36
		shareRest  = 0.12
	)
	speedup := func(fieldFactor, sprayResidual, restFactor float64) float64 {
		return 1.0 / (shareField/fieldFactor + shareRest*restFactor + shareSpray*sprayResidual)
	}
	type scenario struct {
		name                          string
		fieldFactor, sprayRes, restFx float64
	}
	scenarios := []scenario{
		// Expected: 5x field kernels [48], async spray off the critical
		// path [32], rest untouched.
		{"expected (5x field, async spray)", 5.0, 0.04, 1.0},
		// Best: kernels hit the quoted peak and the AMG improvements also
		// accelerate the shared SpMV in the transport solves.
		{"best case (7.5x field, SpMV gains in transport)", 7.5 * 1.4, 0.02, 0.85},
		// Worst: particle optimisations land but the field only gains 30%
		// and its parallel efficiency does not improve.
		{"worst case (1.4x field, no field PE gain)", 1.4, 0.04, 1.0},
	}
	t := &Table{
		ID:      "sensitivity",
		Title:   "Section V-C sensitivity: pressure-solver speedup bounds at ~30k cores",
		Headers: []string{"scenario", "predicted speedup"},
	}
	for _, sc := range scenarios {
		t.AddRow(sc.name, f1(speedup(sc.fieldFactor, sc.sprayRes, sc.restFx))+"x")
	}
	t.Notes = append(t.Notes,
		"paper bounds: ~7.5x best case, 2.3x worst case, overall engine speedup 4-6x",
		"base shares at ~30k cores extrapolated from the Fig. 5 profile with the spray's O(p) redistribution growth")
	return t, nil
}
