package harness

import (
	"fmt"
	"math"

	"cpx/internal/coupler"
	"cpx/internal/pressure"
	"cpx/internal/simpic"
)

// OverlapStudy quantifies the overhead of the overlapping
// (composite-domain / overset-style) interface approach Section II-A
// sets out to explore: the same coupled pair run with increasing overlap
// factors, reporting the coupling-unit cost and the run-time impact.
func (o Options) OverlapStudy() (*Table, error) {
	t := &Table{
		ID:      "overlap",
		Title:   "Overlapping-interface overhead (Section II-A exploration)",
		Headers: []string{"overlap factor", "runtime(s)", "CU busy(s)", "coupling share"},
	}
	meshCells := int64(100_000)
	points := 500_000
	ranks := 6
	if o.Quick {
		meshCells, points, ranks = 10_000, 50_000, 3
	}
	for _, overlap := range []float64{1.0, 1.5, 2.0, 3.0} {
		sim := &coupler.Simulation{
			Instances: []coupler.InstanceSpec{
				{Name: "rowA", Kind: coupler.KindMGCFD, MeshCells: meshCells, Ranks: ranks, Seed: 1},
				{Name: "rowB", Kind: coupler.KindMGCFD, MeshCells: meshCells, Ranks: ranks, Seed: 2},
			},
			Units: []coupler.UnitSpec{
				{Name: "cu", A: 0, B: 1, Kind: coupler.SlidingPlane, Points: points,
					Ranks: 2, Search: coupler.TreePrefetch, Overlap: overlap},
			},
			DensitySteps:    6,
			RotationPerStep: 0.002,
			Scale:           coupler.ProductionScale(),
		}
		rep, err := sim.Run(o.coupledConfig())
		if err != nil {
			return nil, err
		}
		t.AddRow(f1(overlap), f3(rep.Elapsed), f3(rep.UnitComp[0]), pct(rep.CouplingShare))
	}
	t.Notes = append(t.Notes,
		"overlap multiplies the effective interface exchanged and mapped each step",
		"with the tree+prefetch search the overhead grows roughly linearly in the overlap")
	return t, nil
}

// Fig3 reproduces the test-case equivalence table: the production
// pressure-solver mesh sizes and the SIMPIC configurations hand-picked to
// replicate their performance behaviour.
func (o Options) Fig3() (*Table, error) {
	t := &Table{
		ID:      "fig3",
		Title:   "Pressure-solver test cases and equivalent SIMPIC configurations",
		Headers: []string{"pressure mesh", "SIMPIC cells", "particles/cell", "timesteps"},
	}
	for _, mesh := range []int64{28_000_000, 84_000_000, 380_000_000} {
		cfg := simpic.BaseSTC(mesh)
		t.AddRow(fmt.Sprintf("%dM", mesh/1_000_000), d(cfg.Cells), d(cfg.ParticlesPerCell), d(cfg.Steps))
	}
	t.Notes = append(t.Notes, "Base-STC anchors from Fig. 3 of the paper; other mesh sizes interpolate linearly")
	return t, nil
}

// fig4Cores is the core axis of the pressure-solver validation sweeps.
var fig4Cores = []int{128, 256, 512, 1024, 2048, 3072}

// Fig4ab reproduces the speedup (4a) and parallel-efficiency (4b)
// comparison of the pressure solver and its SIMPIC proxy on the 28M and
// 84M test cases, reporting the proxy's run-time prediction error.
func (o Options) Fig4ab() (*Table, error) {
	t := &Table{
		ID:    "fig4ab",
		Title: "Pressure solver vs SIMPIC proxy: speedup, parallel efficiency, prediction error",
		Headers: []string{"mesh", "cores", "pressure rt(s)", "simpic rt(s)",
			"press speedup", "simpic speedup", "press PE", "simpic PE", "err"},
	}
	var worst, sum float64
	var count int
	for _, mesh := range []int64{28_000_000, 84_000_000} {
		cores := o.sweepCores(fig4Cores)
		press := Sweep{Cores: cores}
		spic := Sweep{Cores: cores}
		for _, p := range cores {
			o.logf("fig4: mesh %dM cores %d", mesh/1_000_000, p)
			prt, _, err := o.PressureRuntime(pressure.Config{MeshCells: mesh, Steps: 10, Seed: 1}, p, false)
			if err != nil {
				return nil, err
			}
			srt, err := o.SimpicRuntime(simpic.BaseSTC(mesh), p)
			if err != nil {
				return nil, err
			}
			press.Runtimes = append(press.Runtimes, prt)
			spic.Runtimes = append(spic.Runtimes, srt)
		}
		pSp, sSp := press.Speedup(), spic.Speedup()
		pPE, sPE := press.PE(), spic.PE()
		for i, p := range cores {
			e := math.Abs(spic.Runtimes[i]-press.Runtimes[i]) / press.Runtimes[i]
			sum += e
			count++
			if e > worst {
				worst = e
			}
			t.AddRow(fmt.Sprintf("%dM", mesh/1_000_000), d(p),
				f2(press.Runtimes[i]), f2(spic.Runtimes[i]),
				f2(pSp[i]), f2(sSp[i]), pct(pPE[i]), pct(sPE[i]), pct(e))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("SIMPIC predicts the pressure-solver run-time with mean error %.0f%%, max %.0f%% (paper: mean <9%%, max 22%%)",
			100*sum/float64(count), 100*worst),
		"paper anchor: pressure-solver PE drops below 50% at ~3,000 cores")
	return t, nil
}

// Fig4c reproduces the large Base-STC test: SIMPIC configured for the
// 380M-cell full-scale pressure case, swept from 1,000 to 10,000 cores.
func (o Options) Fig4c() (*Table, error) {
	t := &Table{
		ID:      "fig4c",
		Title:   "SIMPIC 380M-equivalent Base-STC: speedup and PE, 1,000-10,000 cores",
		Headers: []string{"cores", "runtime(s)", "speedup", "PE"},
	}
	cores := o.sweepCores([]int{1000, 2000, 4000, 6000, 8000, 10000})
	sw := Sweep{Cores: cores}
	for _, p := range cores {
		o.logf("fig4c: cores %d", p)
		rt, err := o.SimpicRuntime(simpic.BaseSTC(380_000_000), p)
		if err != nil {
			return nil, err
		}
		sw.Runtimes = append(sw.Runtimes, rt)
	}
	sp, pe := sw.Speedup(), sw.PE()
	for i, p := range cores {
		t.AddRow(d(p), f2(sw.Runtimes[i]), f2(sp[i]), pct(pe[i]))
	}
	t.Notes = append(t.Notes,
		"paper anchor: PE approaches 50% at 10,000 cores; maximum speedup about 6x")
	return t, nil
}

// pressureRegions are the profiled functions of the pressure solver in
// display order.
var pressureRegions = []string{"pressure_field", "spray", "momentum", "scalars", "combustion"}

// Fig5a reproduces the per-function run-time breakdown of the 28M
// pressure solve at 2,048 cores, split into compute and communication.
func (o Options) Fig5a() (*Table, error) {
	cores := 2048
	if o.Quick {
		cores = 256
	}
	o.logf("fig5a: profiling 28M at %d cores", cores)
	_, prof, err := o.PressureRuntime(pressure.Config{MeshCells: 28_000_000, Steps: 10, Seed: 1}, cores, true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5a",
		Title:   fmt.Sprintf("Pressure solver (28M): per-function share of run-time at %d cores", cores),
		Headers: []string{"function", "compute share", "comm share", "total share"},
	}
	for _, region := range pressureRegions {
		e := prof.Entry(region)
		comp, comm := prof.Total()
		total := comp + comm
		t.AddRow(region, pct(e.Compute/total), pct(e.Comm/total), pct(e.Total()/total))
	}
	t.Notes = append(t.Notes,
		"paper anchors: pressure field 46% of run-time (21% comm + 25% compute); spray ~96% communication")
	return t, nil
}

// Fig5b reproduces the per-function parallel-efficiency curves of the
// pressure solver from 128 to 2,048 cores.
func (o Options) Fig5b() (*Table, error) {
	cores := o.sweepCores([]int{128, 256, 512, 1024, 2048})
	perFn := map[string][]float64{}
	var overall []float64
	for _, p := range cores {
		o.logf("fig5b: cores %d", p)
		rt, prof, err := o.PressureRuntime(pressure.Config{MeshCells: 28_000_000, Steps: 10, Seed: 1}, p, true)
		if err != nil {
			return nil, err
		}
		overall = append(overall, rt)
		for _, region := range pressureRegions {
			perFn[region] = append(perFn[region], prof.Entry(region).Total())
		}
	}
	t := &Table{
		ID:      "fig5b",
		Title:   "Pressure solver (28M): per-function parallel efficiency",
		Headers: append([]string{"cores"}, append(append([]string{}, pressureRegions...), "overall")...),
	}
	for i, p := range cores {
		row := []string{d(p)}
		for _, region := range pressureRegions {
			// Per-function PE from summed profile time: T_f here is total
			// across ranks, so PE = T_f(base) / T_f(p) directly (ideal
			// scaling keeps the summed time constant).
			pe := perFn[region][0] / perFn[region][i]
			row = append(row, pct(pe))
		}
		ideal := float64(p) / float64(cores[0])
		row = append(row, pct(overall[0]/overall[i]/ideal))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper anchor: spray drops below 50% PE at 256 cores (2 nodes); pressure field ~60% at 2,048")
	return t, nil
}

// Fig6a reproduces the predicted parallel efficiency of the pressure
// solver before and after the particle and solver optimisations.
func (o Options) Fig6a() (*Table, error) {
	cores := o.sweepCores([]int{128, 256, 512, 1024, 2048})
	base := Sweep{Cores: cores}
	opt := Sweep{Cores: cores}
	for _, p := range cores {
		o.logf("fig6a: cores %d", p)
		brt, _, err := o.PressureRuntime(pressure.Config{MeshCells: 28_000_000, Steps: 10, Seed: 1}, p, false)
		if err != nil {
			return nil, err
		}
		ort, _, err := o.PressureRuntime(pressure.Config{MeshCells: 28_000_000, Steps: 10, Variant: pressure.Optimized, Seed: 1}, p, false)
		if err != nil {
			return nil, err
		}
		base.Runtimes = append(base.Runtimes, brt)
		opt.Runtimes = append(opt.Runtimes, ort)
	}
	t := &Table{
		ID:      "fig6a",
		Title:   "Pressure solver (28M) PE before and after particle + AMG optimisations",
		Headers: []string{"cores", "base rt(s)", "optimized rt(s)", "base PE", "optimized PE", "opt/base speedup"},
	}
	bPE, oPE := base.PE(), opt.PE()
	for i, p := range cores {
		t.AddRow(d(p), f2(base.Runtimes[i]), f2(opt.Runtimes[i]),
			pct(bPE[i]), pct(oPE[i]), f2(base.Runtimes[i]/opt.Runtimes[i]))
	}
	t.Notes = append(t.Notes,
		"optimisations: async task-based spray, SPA single-pass SpGEMM, hybrid Gauss-Seidel, extended+i interpolation, identity-block transfer SpMV (Section IV)",
		"paper applies a 5x kernel speedup to the pressure field [48] and 100% spray PE [32]")
	return t, nil
}

// Fig6bc reproduces the optimized pressure solver vs Optimized-STC
// comparison: speedups of both and the proxy's run-time error.
func (o Options) Fig6bc() (*Table, error) {
	cores := o.sweepCores([]int{128, 256, 512, 1024, 2048})
	press := Sweep{Cores: cores}
	spic := Sweep{Cores: cores}
	var worst, sum float64
	for _, p := range cores {
		o.logf("fig6bc: cores %d", p)
		prt, _, err := o.PressureRuntime(pressure.Config{MeshCells: 28_000_000, Steps: 10, Variant: pressure.Optimized, Seed: 1}, p, false)
		if err != nil {
			return nil, err
		}
		srt, err := o.SimpicRuntime(simpic.OptimizedSTC(), p)
		if err != nil {
			return nil, err
		}
		press.Runtimes = append(press.Runtimes, prt)
		spic.Runtimes = append(spic.Runtimes, srt)
	}
	t := &Table{
		ID:      "fig6bc",
		Title:   "Optimized pressure solver vs Optimized-STC: speedup and prediction error",
		Headers: []string{"cores", "opt pressure rt(s)", "opt STC rt(s)", "press speedup", "STC speedup", "err"},
	}
	pSp, sSp := press.Speedup(), spic.Speedup()
	for i, p := range cores {
		e := math.Abs(spic.Runtimes[i]-press.Runtimes[i]) / press.Runtimes[i]
		sum += e
		if e > worst {
			worst = e
		}
		t.AddRow(d(p), f2(press.Runtimes[i]), f2(spic.Runtimes[i]), f2(pSp[i]), f2(sSp[i]), pct(e))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Optimized-STC predicts the optimized pressure solver with mean error %.0f%%, max %.0f%% (paper: <7%%)",
			100*sum/float64(len(cores)), 100*worst),
		"Optimized-STC: 1.18M cells, 60,000 particles/cell, 450 steps (Section IV-C)")
	return t, nil
}
