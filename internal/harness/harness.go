// Package harness reproduces every table and figure of the paper's
// evaluation (Sections III-V): it runs the mini-apps standalone on the
// virtual-time ARCHER2 model to produce speedup/parallel-efficiency
// sweeps, profiles the pressure-solver proxy per function, builds and
// validates the empirical performance model, and executes the coupled
// mini-app engine simulations. Each experiment returns a Table whose rows
// mirror what the paper reports; cmd/cpxbench prints them and
// bench_test.go wraps them as Go benchmarks.
package harness

import (
	"fmt"
	"strings"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/mgcfd"
	"cpx/internal/mpi"
	"cpx/internal/pressure"
	"cpx/internal/simpic"
	"cpx/internal/trace"
)

// Table is one reproduced figure or table.
type Table struct {
	ID      string // e.g. "fig4b"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			} else {
				sb.WriteString(c + "  ")
			}
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Options configure the harness runs.
type Options struct {
	Machine *cluster.Machine
	// Quick shrinks the core-count sweeps for fast smoke runs (used by
	// unit tests); full sweeps reproduce the paper's axes.
	Quick bool
	// Verbose emits progress to stdout.
	Verbose  bool
	Watchdog time.Duration
	// Trace enables event tracing on the coupled runs (fig8, fig9,
	// overlap): the resulting reports carry the virtual-time critical
	// path and its per-instance/per-CU attribution. Standalone fitting
	// sweeps are never traced.
	Trace bool
	// FastCollectives switches the runtime's Barrier/Bcast/Allreduce to
	// the analytic fast path (mpi.Config.FastCollectives). Virtual-time
	// results are bitwise identical; the host runs the big sweeps
	// severalfold faster. Ignored on traced coupled runs, which need the
	// full event timelines.
	FastCollectives bool
	// EventDriven runs ranks on the single-threaded discrete-event
	// executor (mpi.Config.EventDriven) instead of goroutine-per-rank.
	// Virtual-time results are bitwise identical.
	EventDriven bool
}

// DefaultOptions runs the full sweeps on the ARCHER2 model.
func DefaultOptions() Options {
	return Options{Machine: cluster.ARCHER2(), Watchdog: 2 * time.Hour}
}

func (o Options) mpiConfig(profile bool) mpi.Config {
	wd := o.Watchdog
	if wd == 0 {
		wd = 2 * time.Hour
	}
	return mpi.Config{Machine: o.Machine, Profile: profile, Watchdog: wd,
		FastCollectives: o.FastCollectives, EventDriven: o.EventDriven}
}

// coupledConfig is mpiConfig plus event tracing when Options.Trace is
// set; used for the coupled simulations only.
func (o Options) coupledConfig() mpi.Config {
	cfg := o.mpiConfig(false)
	cfg.Trace = o.Trace
	return cfg
}

func (o Options) logf(format string, args ...any) {
	if o.Verbose {
		fmt.Printf(format+"\n", args...)
	}
}

// ---- Standalone runtimes ----------------------------------------------------

// scaleSampled converts a sampled run into the full-configuration
// run-time: the one-off setup plus the stepping phase scaled by the
// sampled fraction.
func scaleSampled(elapsed, setup, fraction float64) float64 {
	stepping := elapsed - setup
	if stepping < 0 {
		stepping = 0
	}
	return setup + stepping*fraction
}

// SimpicRuntime runs a SIMPIC configuration standalone on `cores` ranks
// and returns the virtual run-time of the full configuration (sampled
// steps scaled up).
func (o Options) SimpicRuntime(cfg simpic.Config, cores int) (float64, error) {
	sc := simpic.Production()
	var setup float64
	st, err := mpi.Run(cores, o.mpiConfig(false), func(c *mpi.Comm) error {
		r, err := simpic.Run(c, cfg, sc)
		if err == nil && c.Rank() == 0 {
			setup = r.SetupTime
		}
		return err
	})
	if err != nil {
		return 0, fmt.Errorf("simpic on %d cores: %w", cores, err)
	}
	return scaleSampled(st.Elapsed, setup, simpic.SampledFraction(cfg, sc)), nil
}

// PressureRuntime runs the pressure-solver proxy standalone, returning
// the scaled virtual run-time and the merged per-function profile.
func (o Options) PressureRuntime(cfg pressure.Config, cores int, profile bool) (float64, *trace.Profile, error) {
	sc := pressure.Production()
	var setup float64
	st, err := mpi.Run(cores, o.mpiConfig(profile), func(c *mpi.Comm) error {
		r, err := pressure.Run(c, cfg, sc)
		if err == nil && c.Rank() == 0 {
			setup = r.SetupTime
		}
		return err
	})
	if err != nil {
		return 0, nil, fmt.Errorf("pressure on %d cores: %w", cores, err)
	}
	return scaleSampled(st.Elapsed, setup, pressure.SampledFraction(cfg, sc)), st.MergedProfile(), nil
}

// MGCFDRuntime runs the MG-CFD proxy standalone.
func (o Options) MGCFDRuntime(cfg mgcfd.Config, cores int) (float64, error) {
	sc := mgcfd.Production()
	var setup float64
	st, err := mpi.Run(cores, o.mpiConfig(false), func(c *mpi.Comm) error {
		r, err := mgcfd.Run(c, cfg, sc)
		if err == nil && c.Rank() == 0 {
			setup = r.SetupTime
		}
		return err
	})
	if err != nil {
		return 0, fmt.Errorf("mgcfd on %d cores: %w", cores, err)
	}
	return scaleSampled(st.Elapsed, setup, mgcfd.SampledFraction(cfg, sc)), nil
}

// Sweep holds a core-count sweep of runtimes.
type Sweep struct {
	Cores    []int
	Runtimes []float64
}

// Speedup returns runtime(base)/runtime(p) per point.
func (s *Sweep) Speedup() []float64 {
	out := make([]float64, len(s.Cores))
	for i := range s.Cores {
		out[i] = s.Runtimes[0] / s.Runtimes[i]
	}
	return out
}

// PE returns the parallel efficiency per point, relative to the first.
func (s *Sweep) PE() []float64 {
	out := make([]float64, len(s.Cores))
	for i := range s.Cores {
		ideal := float64(s.Cores[i]) / float64(s.Cores[0])
		out[i] = (s.Runtimes[0] / s.Runtimes[i]) / ideal
	}
	return out
}

// sweepCores returns the paper's core axes, shrunk in Quick mode.
func (o Options) sweepCores(full []int) []int {
	if !o.Quick {
		return full
	}
	// Keep the first, one middle, and the last point.
	if len(full) <= 3 {
		return full
	}
	return []int{full[0], full[len(full)/2], full[len(full)-1]}
}

func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }
func d(x int) string       { return fmt.Sprintf("%d", x) }
