package harness

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/simpic"
)

// quick returns smoke-test options: tiny sweeps, small machine-agnostic
// scale, short watchdog.
func quick() Options {
	return Options{Machine: cluster.ARCHER2(), Quick: true, Watchdog: 10 * time.Minute}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Headers: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "a note")
	s := tb.String()
	for _, want := range []string{"demo", "bb", "a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestSweepMath(t *testing.T) {
	s := Sweep{Cores: []int{100, 200, 400}, Runtimes: []float64{8, 4, 4}}
	sp := s.Speedup()
	if sp[0] != 1 || sp[1] != 2 || sp[2] != 2 {
		t.Errorf("speedup = %v", sp)
	}
	pe := s.PE()
	if pe[0] != 1 || pe[1] != 1 || pe[2] != 0.5 {
		t.Errorf("PE = %v", pe)
	}
}

func TestScaleSampled(t *testing.T) {
	// 10s total with 2s setup, sampled at 1/4 of the steps:
	// full = 2 + 8*4 = 34.
	if got := scaleSampled(10, 2, 4); got != 34 {
		t.Errorf("scaleSampled = %v, want 34", got)
	}
	// Negative stepping clamps.
	if got := scaleSampled(1, 2, 4); got != 2 {
		t.Errorf("clamped = %v, want 2", got)
	}
}

func TestSweepCoresQuick(t *testing.T) {
	o := quick()
	full := []int{1, 2, 3, 4, 5, 6}
	got := o.sweepCores(full)
	if len(got) != 3 || got[0] != 1 || got[2] != 6 {
		t.Errorf("quick sweep = %v", got)
	}
	o.Quick = false
	if len(o.sweepCores(full)) != 6 {
		t.Error("full sweep truncated")
	}
}

func TestFig3Static(t *testing.T) {
	tb, err := quick().Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("fig3 rows = %d, want 3", len(tb.Rows))
	}
	if tb.Rows[2][2] != "1800" {
		t.Errorf("380M ppc cell = %q, want 1800", tb.Rows[2][2])
	}
}

func TestStandaloneRuntimesPositive(t *testing.T) {
	o := quick()
	rt, err := o.SimpicRuntime(simpic.Config{Cells: 1024, ParticlesPerCell: 10, Steps: 100}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rt <= 0 {
		t.Error("simpic runtime not positive")
	}
}

func TestCUCurveShapes(t *testing.T) {
	o := quick()
	sliding, err := o.cuCurve(100_000, 0, 2) // SlidingPlane, TreePrefetch
	if err != nil {
		t.Fatal(err)
	}
	if !(sliding.Runtime(2) < sliding.Runtime(1)) {
		t.Error("CU work should parallelise")
	}
}

func TestSensitivityTable(t *testing.T) {
	tb, err := quick().Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("sensitivity rows = %d", len(tb.Rows))
	}
	// Best case must beat worst case.
	if tb.Rows[1][1] <= tb.Rows[2][1] {
		t.Errorf("best %q not above worst %q", tb.Rows[1][1], tb.Rows[2][1])
	}
}

func TestSchedScalingQuick(t *testing.T) {
	tb, err := quick().SchedScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("sched-scaling rows = %d, want 2 in quick mode", len(tb.Rows))
	}
	// SchedScaling itself asserts virtual-time identity across the two
	// executors before emitting a row; here just sanity-check the shape.
	for _, row := range tb.Rows {
		if len(row) != 5 {
			t.Fatalf("sched-scaling row %v has %d cells, want 5", row, len(row))
		}
	}
}

func TestParticleScalingQuick(t *testing.T) {
	tb, err := quick().ParticleScaling()
	if err != nil {
		t.Fatal(err)
	}
	// 3 suites x 3 strategies x 2 rank points in quick mode.
	if len(tb.Rows) != 18 {
		t.Fatalf("particle-scaling rows = %d, want 18 in quick mode", len(tb.Rows))
	}
	// ParticleScaling itself asserts bitwise virtual-time identity across
	// the executors per row; check each suite ran every strategy and that
	// the balancers actually acted on the clustered cone.
	seen := map[string]int{}
	for _, row := range tb.Rows {
		if len(row) != 11 {
			t.Fatalf("particle-scaling row %v has %d cells, want 11", row, len(row))
		}
		seen[row[0]+"/"+row[1]]++
		if row[1] == "steal" && row[9] == "0" {
			t.Errorf("steal row %v granted nothing", row)
		}
		if row[1] == "repartition" && row[10] == "0" {
			t.Errorf("repartition row %v never repartitioned", row)
		}
	}
	for _, suite := range []string{"particle-weak", "mesh-weak", "strong"} {
		for _, st := range []string{"static", "steal", "repartition"} {
			if seen[suite+"/"+st] != 2 {
				t.Errorf("suite %s strategy %s has %d rows, want 2", suite, st, seen[suite+"/"+st])
			}
		}
	}
}

func TestAMGAblation(t *testing.T) {
	tb, err := quick().AMGAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 {
		t.Fatalf("ablation rows = %d, want 11", len(tb.Rows))
	}
	// The fully-optimized recipe must use no more iterations than base
	// (compare numerically, not lexically).
	var optIt, baseIt int
	fmt.Sscanf(tb.Rows[len(tb.Rows)-1][1], "%d", &optIt)
	fmt.Sscanf(tb.Rows[0][1], "%d", &baseIt)
	if optIt > baseIt {
		t.Errorf("optimized iterations %s worse than base %s", tb.Rows[9][1], tb.Rows[0][1])
	}
}

func TestSearchAblation(t *testing.T) {
	tb, err := quick().SearchAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("search ablation rows = %d", len(tb.Rows))
	}
}

func TestOverlapStudyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled smoke run")
	}
	tb, err := quick().OverlapStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("overlap rows = %d", len(tb.Rows))
	}
}

func TestFig8QuickEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled smoke run")
	}
	tb, err := quick().Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("fig8 rows = %d, want 3 instances", len(tb.Rows))
	}
	out := tb.String()
	if !strings.Contains(out, "max per-instance prediction error") &&
		len(tb.Notes) == 0 {
		t.Error("fig8 notes missing")
	}
}

func TestEngineQuickEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled smoke run")
	}
	res, err := quick().RunEngine(false, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measured) != 16 || len(res.Predicted) < 16 {
		t.Fatalf("engine result shape: %d measured, %d predicted", len(res.Measured), len(res.Predicted))
	}
	for i, m := range res.Measured {
		if m <= 0 {
			t.Errorf("instance %d measured %v", i, m)
		}
	}
	if res.Rep.CouplingShare < 0 || res.Rep.CouplingShare > 1 {
		t.Errorf("coupling share %v", res.Rep.CouplingShare)
	}
}
