package harness

import (
	"fmt"

	"cpx/internal/coupler"
	"cpx/internal/particle"
)

// particleSuite is one of MiniCombust's three scaling suites: how the
// flow mesh and droplet population grow with the particle rank count.
type particleSuite struct {
	name string
	// configure returns the flow/particle geometry for one sweep point.
	configure func(idx, partRanks int) (flowRanks int, meshCells, droplets int64)
}

// ParticleScaling reproduces MiniCombust's three scaling suites on the
// coupled flow↔particle workload, once per load-balancing strategy:
//
//   - particle-weak: fixed flow mesh, droplets proportional to the
//     particle rank count (constant droplets per rank);
//   - mesh-weak: mesh cells per flow rank constant, droplet population
//     at the paper's MeshCells/4 ratio, so both sides grow together;
//   - strong: fixed mesh and fixed droplet population, particle ranks
//     sweep.
//
// Every row runs on both rank executors and asserts the virtual times
// agree bitwise before it is emitted; the goroutine run is traced, so
// each row carries the particle instance's critical-path share. The
// balancing outcome (peak max/mean imbalance, migrations, steals,
// repartitions) comes from the coupler's per-instance load report.
// `cpxbench -exp particle-scaling` prints the table into
// results/particle-scaling.txt.
func (o Options) ParticleScaling() (*Table, error) {
	partRanks := []int{4, 8, 16}
	steps := 6
	if o.Quick {
		partRanks = []int{4, 8}
		steps = 4
	}
	suites := []particleSuite{
		{name: "particle-weak", configure: func(idx, pr int) (int, int64, int64) {
			return 8, 32_768, int64(pr) * 65_536
		}},
		{name: "mesh-weak", configure: func(idx, pr int) (int, int64, int64) {
			fr := 4 << idx
			return fr, int64(fr) * 8_192, 0 // droplets default: MeshCells/4
		}},
		{name: "strong", configure: func(idx, pr int) (int, int64, int64) {
			return 8, 65_536, 1_048_576
		}},
	}
	t := &Table{
		ID:    "particle-scaling",
		Title: fmt.Sprintf("MiniCombust scaling suites on the coupled flow+particle workload (%d density steps, ARCHER2)", steps),
		Headers: []string{"suite", "strategy", "flow", "particle", "droplets",
			"virtual(s)", "spray_crit", "peak_imb", "moved", "stolen", "reparts"},
		Notes: []string{
			"particle-weak: 65,536 droplets per particle rank on a fixed 32,768-cell mesh",
			"mesh-weak: 8,192 cells per flow rank, droplets at the paper's MeshCells/4 ratio",
			"strong: fixed 65,536-cell mesh and 1,048,576 droplets, particle ranks sweep",
			"virtual(s) asserted bitwise identical across the goroutine and event executors per row",
			"spray_crit is the particle instance's share of the traced virtual-time critical path",
		},
	}
	for _, suite := range suites {
		for _, st := range particle.Strategies() {
			for idx, pr := range partRanks {
				flowRanks, meshCells, droplets := suite.configure(idx, pr)
				sim := func() *coupler.Simulation {
					return &coupler.Simulation{
						Instances: []coupler.InstanceSpec{
							{Name: "flow", Kind: coupler.KindMGCFD, MeshCells: meshCells,
								Ranks: flowRanks, Seed: 1},
							{Name: "spray", Kind: coupler.KindParticle, MeshCells: meshCells,
								Ranks: pr, Seed: 3,
								Particle: &particle.Config{
									Droplets: droplets, ConeFraction: 0.1, EvapSteps: 50,
									Strategy: st, ImbalanceThreshold: 1.2,
								}},
						},
						Units: []coupler.UnitSpec{
							{Name: "spray-cu", A: 0, B: 1, Kind: coupler.SteadyState,
								Points: 2000, Ranks: 2, Search: coupler.Tree, ExchangeEvery: 1},
						},
						DensitySteps: steps,
						Scale: coupler.Scale{
							MGCFD:            coupler.ProductionScale().MGCFD,
							Particle:         particle.ScaleOpts{MaxDropletsPerRank: 256},
							MaxPointsPerSide: 512,
						},
					}
				}
				cfg := o.coupledConfig()
				cfg.Trace = true
				rep, err := sim().Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("particle-scaling %s/%v %d ranks: %w", suite.name, st, pr, err)
				}
				evCfg := o.coupledConfig()
				evCfg.EventDriven = true
				evRep, err := sim().Run(evCfg)
				if err != nil {
					return nil, fmt.Errorf("particle-scaling %s/%v %d ranks (event): %w", suite.name, st, pr, err)
				}
				if evRep.Elapsed != rep.Elapsed {
					return nil, fmt.Errorf("particle-scaling %s/%v %d ranks: virtual time diverged: goroutine %v vs event %v",
						suite.name, st, pr, rep.Elapsed, evRep.Elapsed)
				}
				for r := range rep.Stats.Clocks {
					if evRep.Stats.Clocks[r] != rep.Stats.Clocks[r] {
						return nil, fmt.Errorf("particle-scaling %s/%v %d ranks: rank %d clock diverged: %v vs %v",
							suite.name, st, pr, r, rep.Stats.Clocks[r], evRep.Stats.Clocks[r])
					}
				}
				var sprayShare float64
				for _, ls := range rep.CriticalComponents {
					if ls.Label == "spray" {
						sprayShare = ls.Share
					}
				}
				lr := rep.ParticleLoads[1]
				if lr == nil {
					return nil, fmt.Errorf("particle-scaling %s/%v %d ranks: missing load report", suite.name, st, pr)
				}
				effDroplets := droplets
				if effDroplets == 0 {
					effDroplets = meshCells / 4
				}
				t.AddRow(suite.name, st.String(), d(flowRanks), d(pr),
					fmt.Sprintf("%d", effDroplets), fmt.Sprintf("%.6f", rep.Elapsed),
					pct(sprayShare), f3(lr.PeakImbalance),
					d(lr.Moved), d(lr.Stolen), d(lr.Repartitions))
				o.logf("particle-scaling: %s %v flow=%d particle=%d virtual=%.6f",
					suite.name, st, flowRanks, pr, rep.Elapsed)
			}
		}
	}
	return t, nil
}
