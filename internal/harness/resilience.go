package harness

import (
	"fmt"
	"math"

	"cpx/internal/coupler"
	"cpx/internal/fault"
)

// resilienceSim is the coupled pair the resilience sweep runs: two
// MG-CFD rows and a sliding-plane CU, long enough in density steps that
// the checkpoint-interval axis has room on both sides of the optimum.
func (o Options) resilienceSim() *coupler.Simulation {
	meshCells := int64(100_000)
	points := 200_000
	ranks := 6
	steps := 48
	if o.Quick {
		meshCells, points, ranks, steps = 10_000, 20_000, 3, 24
	}
	return &coupler.Simulation{
		Instances: []coupler.InstanceSpec{
			{Name: "rowA", Kind: coupler.KindMGCFD, MeshCells: meshCells, Ranks: ranks, Seed: 1},
			{Name: "rowB", Kind: coupler.KindMGCFD, MeshCells: meshCells, Ranks: ranks, Seed: 2},
		},
		Units: []coupler.UnitSpec{
			{Name: "cu", A: 0, B: 1, Kind: coupler.SlidingPlane, Points: points,
				Ranks: 2, Search: coupler.TreePrefetch},
		},
		DensitySteps:    steps,
		RotationPerStep: 0.002,
		Scale:           coupler.ProductionScale(),
	}
}

// resilienceIntervals is the checkpoint-interval axis in density steps;
// 0 means no checkpointing (restart from scratch).
func (o Options) resilienceIntervals() []int {
	if o.Quick {
		return []int{0, 1, 2, 4, 8, 12}
	}
	return []int{0, 1, 2, 4, 6, 8, 12, 16, 24}
}

// Resilience sweeps the coordinated-checkpoint interval of a coupled run
// against a fixed failure process and reports the completed virtual time
// of each setting. The curve is the classic Young/Daly trade-off:
// checkpointing every step pays maximal I/O overhead, never
// checkpointing pays maximal rework per failure, and the minimum sits
// near the first-order optimum tau* = sqrt(2 * C * MTBF).
func (o Options) Resilience() (*Table, error) {
	t := &Table{
		ID:    "resilience",
		Title: "Checkpoint interval vs MTBF: completed time under a fixed failure process",
		Headers: []string{"ckpt every (steps)", "runtime(s)", "overhead(s)",
			"rework(s)", "ckpt+detect+restart(s)", "restarts"},
	}
	sim := o.resilienceSim()
	cfg := o.coupledConfig()

	// Fault-free, checkpoint-free baseline: the run the faulty sweeps are
	// measured against.
	base, err := sim.RunResilient(cfg, coupler.ResilienceOptions{})
	if err != nil {
		return nil, fmt.Errorf("resilience baseline: %w", err)
	}
	o.logf("resilience: baseline elapsed %.3fs", base.Elapsed)

	// Deterministic periodic failure process (the schedule Daly's
	// analysis assumes): a handful of crashes across the nominal run.
	mtbf := base.Elapsed / 4
	plan, err := fault.NewPlan(fault.Spec{
		Seed:     3,
		Ranks:    sim.TotalRanks(),
		Horizon:  base.Elapsed * 0.999, // keep the last crash inside the run
		MTBF:     mtbf,
		Periodic: true,
		Machine:  o.Machine,
	})
	if err != nil {
		return nil, err
	}

	bestElapsed, bestEvery := math.Inf(1), 0
	noCkptElapsed := 0.0
	for _, every := range o.resilienceIntervals() {
		if every > sim.DensitySteps/2 {
			continue
		}
		o.logf("resilience: sweep interval %d", every)
		rep, err := sim.RunResilient(cfg, coupler.ResilienceOptions{
			Plan:            plan,
			CheckpointEvery: every,
			// Relaunch cost scaled to the job instead of the 1s default,
			// which would swamp a sub-second virtual run. Constant per
			// failure, so it shifts every row equally and leaves the
			// interval optimum untouched.
			RestartCost: mtbf / 4,
			MaxRestarts: 2 * len(plan.Crashes),
		})
		if err != nil {
			return nil, fmt.Errorf("resilience interval %d: %w", every, err)
		}
		// Checkpoint I/O shows up inside the stepping clocks, not in the
		// restart overhead; separate it out against the clean baseline.
		ckptIO := rep.Elapsed - rep.Overhead - base.Elapsed
		if ckptIO < 0 {
			ckptIO = 0
		}
		label := d(every)
		if every == 0 {
			label = "none"
			noCkptElapsed = rep.Elapsed
		}
		t.AddRow(label, f3(rep.Elapsed), f3(rep.Elapsed-base.Elapsed),
			f3(rep.Rework), f3(ckptIO+rep.Detection+rep.Restart), d(rep.Attempts-1))
		if rep.Elapsed < bestElapsed {
			bestElapsed, bestEvery = rep.Elapsed, every
		}
	}

	// Calibrate the per-checkpoint cost C from a fault-free checkpointed
	// run, and note Young's first-order optimum on the same axis.
	calEvery := 4
	cal, err := sim.RunResilient(cfg, coupler.ResilienceOptions{CheckpointEvery: calEvery})
	if err != nil {
		return nil, err
	}
	nCkpts := (sim.DensitySteps - 1) / calEvery
	ckptCost := (cal.Elapsed - base.Elapsed) / float64(nCkpts)
	stepTime := base.Elapsed / float64(sim.DensitySteps)
	tauStar := fault.YoungInterval(ckptCost, mtbf)
	t.Notes = append(t.Notes,
		fmt.Sprintf("baseline (fault-free) %.3fs; %d periodic crashes, MTBF %.3fs; per-checkpoint cost C=%.4fs",
			base.Elapsed, len(plan.Crashes), mtbf, ckptCost),
		fmt.Sprintf("Young tau* = sqrt(2*C*MTBF) = %.3fs ~= %.1f density steps; sweep minimum at %d steps (%.3fs)",
			tauStar, tauStar/stepTime, bestEvery, bestElapsed),
		fmt.Sprintf("no checkpointing pays full rework per crash: %.3fs vs %.3fs at the optimum",
			noCkptElapsed, bestElapsed))
	return t, nil
}
