package harness

import (
	"strconv"
	"strings"
	"testing"
)

// TestResilienceExperimentQuick runs the checkpoint-interval sweep in
// smoke geometry and checks the Young/Daly shape: every faulty run costs
// more than the fault-free baseline, and some interior checkpoint
// interval beats both extremes (checkpoint every step, never
// checkpoint).
func TestResilienceExperimentQuick(t *testing.T) {
	o := quick()
	tb, err := o.Resilience()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 4 {
		t.Fatalf("sweep produced only %d rows:\n%s", len(tb.Rows), tb.String())
	}
	runtimes := map[string]float64{}
	for _, row := range tb.Rows {
		rt, err := strconv.ParseFloat(row[1], 64)
		if err != nil || rt <= 0 {
			t.Fatalf("bad runtime %q in row %v", row[1], row)
		}
		runtimes[row[0]] = rt
		if restarts, _ := strconv.Atoi(row[5]); restarts < 1 {
			t.Errorf("interval %s saw no restarts; the plan injected none?", row[0])
		}
	}
	none, ok := runtimes["none"]
	if !ok {
		t.Fatalf("no checkpoint-free row:\n%s", tb.String())
	}
	everyStep, ok := runtimes["1"]
	if !ok {
		t.Fatalf("no every-step row:\n%s", tb.String())
	}
	best := none
	for _, rt := range runtimes {
		if rt < best {
			best = rt
		}
	}
	if best >= none || best >= everyStep {
		t.Errorf("no interior optimum: best %.3f vs none %.3f, every-step %.3f\n%s",
			best, none, everyStep, tb.String())
	}
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "tau*") {
			found = true
		}
	}
	if !found {
		t.Error("notes missing the Young tau* comparison")
	}
}
