package harness

import (
	"fmt"
	"math"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
)

// SchedScaling compares the host cost of the two rank executors —
// goroutine-per-rank and the single-threaded discrete-event loop
// (mpi.Config.EventDriven) — on a collective-heavy workload across rank
// counts, and verifies along the way that the virtual run-times agree
// exactly (they must: the executors are differentially tested to be
// bitwise identical). Host wall-clock is the dependent variable here,
// not a determinism leak: the experiment measures the simulator itself.
// `cpxbench -exp sched-scaling` prints the table; BENCH_sched.json
// records the benchmark-grade medians.
func (o Options) SchedScaling() (*Table, error) {
	ranks := []int{8, 64, 512, 4096}
	reps := 5
	if o.Quick {
		ranks = []int{8, 64}
		reps = 2
	}
	t := &Table{
		ID:      "sched-scaling",
		Title:   "executor scaling on the collectives workload (best-of-reps host ms per run, SmallCluster, fast collectives)",
		Headers: []string{"ranks", "goroutine(ms)", "event(ms)", "event_speedup", "virtual(s)"},
		Notes: []string{
			"workload: 10x (compute + Allreduce(8 floats, Sum) + Bcast + Barrier) per rank",
			"virtual(s) is asserted identical across executors before a row is emitted",
		},
	}
	body := func(c *mpi.Comm) error {
		buf := []float64{1, 2, 3, 4, 5, 6, 7, 8}
		for i := 0; i < 10; i++ {
			c.ComputeSeconds(1e-6 * float64(c.Rank()%5+1))
			c.Allreduce(buf, mpi.Sum)
			c.Bcast(i%c.Size(), buf)
			c.Barrier()
		}
		return nil
	}
	for _, p := range ranks {
		var hostMS, virtual [2]float64
		for si, ev := range [2]bool{false, true} {
			cfg := mpi.Config{
				Machine:         cluster.SmallCluster(),
				Watchdog:        o.Watchdog,
				FastCollectives: true,
				EventDriven:     ev,
			}
			if cfg.Watchdog == 0 {
				cfg.Watchdog = 2 * time.Hour
			}
			best := math.Inf(1)
			for r := 0; r < reps; r++ {
				start := time.Now() //lint:allow determinism host wall-clock is this experiment's measured quantity
				st, err := mpi.Run(p, cfg, body)
				if err != nil {
					return nil, fmt.Errorf("sched-scaling %d ranks (event=%v): %w", p, ev, err)
				}
				ms := time.Since(start).Seconds() * 1e3 //lint:allow determinism host wall-clock is this experiment's measured quantity
				if ms < best {
					best = ms
				}
				virtual[si] = st.Elapsed
			}
			hostMS[si] = best
			o.logf("sched-scaling: %d ranks event=%v: %.2f ms/run", p, ev, best)
		}
		if virtual[0] != virtual[1] {
			return nil, fmt.Errorf("sched-scaling: virtual time diverged at %d ranks: goroutine %v vs event %v",
				p, virtual[0], virtual[1])
		}
		t.AddRow(d(p), f2(hostMS[0]), f2(hostMS[1]), f2(hostMS[0]/hostMS[1]), fmt.Sprintf("%.6f", virtual[0]))
	}
	return t, nil
}
