// Package mesh generates and decomposes the synthetic unstructured meshes
// the mini-apps run on. Global meshes in the paper reach 1.2Bn cells, far
// beyond what can be instantiated; like production codes the mini-apps
// never hold the global mesh. Instead a Decomp describes a block
// decomposition of a hex-dominant duct/annulus mesh analytically: every
// rank derives its own box, its halo faces and its neighbours in O(1),
// which scales to the paper's 40,000-rank runs.
//
// For the virtual-time runs each rank may cap its *allocated* working set
// (Local.Sim) while costs are charged for the *true* box (Local.True);
// the Scale factor connects the two (DESIGN.md §5.2).
package mesh

import (
	"fmt"
	"math"
	"math/rand"

	"cpx/internal/partition"
)

// Dims are the cell dimensions of a structured block.
type Dims struct {
	NI, NJ, NK int
}

// Cells returns the total cell count.
func (d Dims) Cells() int64 { return int64(d.NI) * int64(d.NJ) * int64(d.NK) }

// Nodes returns the vertex count of the block.
func (d Dims) Nodes() int64 { return int64(d.NI+1) * int64(d.NJ+1) * int64(d.NK+1) }

// Coarsen halves each dimension (rounding up, floor 1), the geometric
// multigrid coarsening rule MG-CFD uses.
func (d Dims) Coarsen() Dims {
	h := func(n int) int {
		if n <= 1 {
			return 1
		}
		return (n + 1) / 2
	}
	return Dims{h(d.NI), h(d.NJ), h(d.NK)}
}

// Levels returns n multigrid levels, finest first.
func Levels(d Dims, n int) []Dims {
	out := make([]Dims, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d)
		d = d.Coarsen()
	}
	return out
}

// CubeDims returns roughly cubic dimensions holding at least `cells` cells.
// Used to express paper test cases ("28M cells") as blocks.
func CubeDims(cells int64) Dims {
	if cells < 1 {
		cells = 1
	}
	n := int(math.Cbrt(float64(cells)))
	for int64(n)*int64(n)*int64(n) < cells {
		n++
	}
	return Dims{n, n, n}
}

// Box is a half-open cell-index range per axis: [Lo, Hi).
type Box struct {
	Lo, Hi [3]int
}

// Dims returns the box extents as Dims.
func (b Box) Dims() Dims { return Dims{b.Hi[0] - b.Lo[0], b.Hi[1] - b.Lo[1], b.Hi[2] - b.Lo[2]} }

// Cells returns the box cell count.
func (b Box) Cells() int64 { return b.Dims().Cells() }

// Decomp is a block decomposition of a global mesh across P = product of
// Grid ranks arranged as a 3-D process grid.
type Decomp struct {
	Dims Dims
	Grid [3]int
}

// NewDecomp chooses a process grid for p ranks over the global dims,
// minimising the per-rank halo surface.
func NewDecomp(d Dims, p int) (*Decomp, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mesh: decomposition needs positive rank count, got %d", p)
	}
	if int64(p) > d.Cells() {
		return nil, fmt.Errorf("mesh: %d ranks exceed %d cells", p, d.Cells())
	}
	grid, err := FactorGrid(p, d)
	if err != nil {
		return nil, err
	}
	return &Decomp{Dims: d, Grid: grid}, nil
}

// NewDecompBestEffort is NewDecomp but tolerates rank counts that cannot
// be factored within the mesh dimensions (e.g. a large prime on a small
// mesh): it uses the largest decomposable count <= p and leaves the
// remaining ranks idle, as production job scripts do. The caller can
// compare Ranks() against p to see how many ranks participate.
func NewDecompBestEffort(d Dims, p int) (*Decomp, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mesh: decomposition needs positive rank count, got %d", p)
	}
	if int64(p) > d.Cells() {
		p = int(d.Cells())
	}
	for q := p; q >= 1; q-- {
		if grid, err := FactorGrid(q, d); err == nil {
			return &Decomp{Dims: d, Grid: grid}, nil
		}
	}
	return nil, fmt.Errorf("mesh: no decomposition of %+v for any rank count <= %d", d, p)
}

// FactorGrid factorises p into a 3-D grid (gx, gy, gz), gx*gy*gz = p,
// with each factor no larger than the matching mesh dimension, choosing
// the triple with the smallest per-rank communication surface.
func FactorGrid(p int, d Dims) ([3]int, error) {
	dims := [3]float64{float64(d.NI), float64(d.NJ), float64(d.NK)}
	best := [3]int{-1, -1, -1}
	bestCost := math.Inf(1)
	bestSpread := math.Inf(1)
	for a := 1; a <= p; a++ {
		if p%a != 0 || a > d.NI {
			continue
		}
		q := p / a
		for b := 1; b <= q; b++ {
			if q%b != 0 || b > d.NJ {
				continue
			}
			c := q / b
			if c > d.NK {
				continue
			}
			g := [3]int{a, b, c}
			cost := 0.0
			// Per-rank surface: two faces per split axis.
			lx, ly, lz := dims[0]/float64(a), dims[1]/float64(b), dims[2]/float64(c)
			if a > 1 {
				cost += 2 * ly * lz
			}
			if b > 1 {
				cost += 2 * lx * lz
			}
			if c > 1 {
				cost += 2 * lx * ly
			}
			// Tie-break equal-surface grids toward cube-like local boxes
			// (fewer, larger messages and better cache blocking).
			spread := math.Max(lx, math.Max(ly, lz)) - math.Min(lx, math.Min(ly, lz))
			if cost < bestCost || (cost == bestCost && spread < bestSpread) {
				bestCost = cost
				bestSpread = spread
				best = g
			}
		}
	}
	if best[0] < 0 {
		return best, fmt.Errorf("mesh: cannot factor %d ranks into grid within %+v", p, d)
	}
	return best, nil
}

// Ranks returns the total rank count of the decomposition.
func (dc *Decomp) Ranks() int { return dc.Grid[0] * dc.Grid[1] * dc.Grid[2] }

// Coords returns the process-grid coordinates of a rank (x fastest).
func (dc *Decomp) Coords(rank int) [3]int {
	gx, gy := dc.Grid[0], dc.Grid[1]
	return [3]int{rank % gx, (rank / gx) % gy, rank / (gx * gy)}
}

// Rank is the inverse of Coords.
func (dc *Decomp) Rank(c [3]int) int {
	return (c[2]*dc.Grid[1]+c[1])*dc.Grid[0] + c[0]
}

// chunk splits n cells into g chunks; chunk k covers [k*n/g, (k+1)*n/g).
func chunk(n, g, k int) (lo, hi int) { return k * n / g, (k + 1) * n / g }

// Box returns the cell box owned by a rank.
func (dc *Decomp) Box(rank int) Box {
	c := dc.Coords(rank)
	var b Box
	n := [3]int{dc.Dims.NI, dc.Dims.NJ, dc.Dims.NK}
	for a := 0; a < 3; a++ {
		b.Lo[a], b.Hi[a] = chunk(n[a], dc.Grid[a], c[a])
	}
	return b
}

// Neighbor describes one face-adjacent peer of a rank.
type Neighbor struct {
	Rank      int // peer rank
	Axis      int // 0,1,2 for i,j,k
	Dir       int // -1 or +1
	FaceCells int // cells on the shared face (halo layer size)
}

// Neighbors lists the face neighbours of a rank (up to 6).
func (dc *Decomp) Neighbors(rank int) []Neighbor {
	c := dc.Coords(rank)
	b := dc.Box(rank)
	d := b.Dims()
	faces := [3]int{d.NJ * d.NK, d.NI * d.NK, d.NI * d.NJ}
	var out []Neighbor
	for a := 0; a < 3; a++ {
		for _, dir := range [2]int{-1, 1} {
			nc := c
			nc[a] += dir
			if nc[a] < 0 || nc[a] >= dc.Grid[a] {
				continue
			}
			out = append(out, Neighbor{
				Rank: dc.Rank(nc), Axis: a, Dir: dir, FaceCells: faces[a],
			})
		}
	}
	return out
}

// Local is a rank's view of its subdomain: the true box it owns and the
// (possibly capped) working set it actually allocates.
type Local struct {
	Rank      int
	True      Dims    // true owned box extents
	Sim       Dims    // allocated extents (<= True, shape-preserving)
	Scale     float64 // True.Cells() / Sim.Cells(); 1 when uncapped
	Neighbors []Neighbor
}

// Local derives rank's local view. capCells <= 0 disables capping.
func (dc *Decomp) Local(rank, capCells int) *Local {
	b := dc.Box(rank)
	d := b.Dims()
	sim := CapDims(d, capCells)
	scale := 1.0
	if sim != d {
		scale = float64(d.Cells()) / float64(sim.Cells())
	}
	return &Local{
		Rank:      rank,
		True:      d,
		Sim:       sim,
		Scale:     scale,
		Neighbors: dc.Neighbors(rank),
	}
}

// CapDims shrinks dims shape-preservingly so the cell count does not
// exceed capCells (<=0 means no cap). Minimum 1 cell per axis.
func CapDims(d Dims, capCells int) Dims {
	if capCells <= 0 || d.Cells() <= int64(capCells) {
		return d
	}
	f := math.Cbrt(float64(capCells) / float64(d.Cells()))
	shrink := func(n int) int {
		m := int(float64(n) * f)
		if m < 1 {
			m = 1
		}
		return m
	}
	out := Dims{shrink(d.NI), shrink(d.NJ), shrink(d.NK)}
	// The cube-root scaling can overshoot on very thin boxes; trim greedily.
	for out.Cells() > int64(capCells) {
		switch {
		case out.NI >= out.NJ && out.NI >= out.NK && out.NI > 1:
			out.NI--
		case out.NJ >= out.NK && out.NJ > 1:
			out.NJ--
		case out.NK > 1:
			out.NK--
		default:
			return out
		}
	}
	return out
}

// Edge connects two node indices of a structured block.
type Edge struct {
	A, B int32
}

// nodeIndex flattens (i,j,k) node coordinates of a block with d cell dims.
func nodeIndex(d Dims, i, j, k int) int32 {
	return int32((k*(d.NJ+1)+j)*(d.NI+1) + i)
}

// StructuredEdges generates the node-to-node edge list of a hex block —
// the edge-based connectivity MG-CFD's flux loops iterate over.
func StructuredEdges(d Dims) []Edge {
	ni, nj, nk := d.NI+1, d.NJ+1, d.NK+1
	count := (ni-1)*nj*nk + ni*(nj-1)*nk + ni*nj*(nk-1)
	edges := make([]Edge, 0, count)
	for k := 0; k < nk; k++ {
		for j := 0; j < nj; j++ {
			for i := 0; i < ni; i++ {
				a := nodeIndex(d, i, j, k)
				if i+1 < ni {
					edges = append(edges, Edge{a, nodeIndex(d, i+1, j, k)})
				}
				if j+1 < nj {
					edges = append(edges, Edge{a, nodeIndex(d, i, j+1, k)})
				}
				if k+1 < nk {
					edges = append(edges, Edge{a, nodeIndex(d, i, j, k+1)})
				}
			}
		}
	}
	return edges
}

// NodeCoords returns jittered node coordinates for a block, giving the
// synthetic mesh an unstructured character (distinct spacings, non-grid
// point locations) for partitioners and coupler searches. Deterministic
// for a given seed.
func NodeCoords(d Dims, jitter float64, seed int64) []partition.Point {
	return NodeCoordsRand(d, jitter, rand.New(rand.NewSource(seed)))
}

// NodeCoordsRand is NodeCoords drawing from an explicit generator, for
// callers that thread one seeded stream through a whole setup phase.
func NodeCoordsRand(d Dims, jitter float64, rng *rand.Rand) []partition.Point {
	ni, nj, nk := d.NI+1, d.NJ+1, d.NK+1
	pts := make([]partition.Point, 0, ni*nj*nk)
	for k := 0; k < nk; k++ {
		for j := 0; j < nj; j++ {
			for i := 0; i < ni; i++ {
				p := partition.Point{
					float64(i) + jitter*(rng.Float64()-0.5),
					float64(j) + jitter*(rng.Float64()-0.5),
					float64(k) + jitter*(rng.Float64()-0.5),
				}
				pts = append(pts, p)
			}
		}
	}
	return pts
}

// InterfaceCells returns the number of cells a coupling interface spans
// when it covers `fraction` of a mesh (the paper: 0.42% for sliding
// planes, 5% for the density-pressure interface).
func InterfaceCells(d Dims, fraction float64) int {
	n := int(float64(d.Cells()) * fraction)
	if n < 1 {
		n = 1
	}
	return n
}

// SurfaceCells returns the i-plane face size, the natural inlet/outlet
// interface of a duct block.
func SurfaceCells(d Dims) int { return d.NJ * d.NK }
