package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDimsCells(t *testing.T) {
	d := Dims{10, 20, 30}
	if d.Cells() != 6000 {
		t.Errorf("Cells = %d", d.Cells())
	}
	if d.Nodes() != 11*21*31 {
		t.Errorf("Nodes = %d", d.Nodes())
	}
}

func TestCoarsen(t *testing.T) {
	d := Dims{9, 8, 1}
	c := d.Coarsen()
	if c != (Dims{5, 4, 1}) {
		t.Errorf("Coarsen = %+v", c)
	}
	// Floor at 1.
	if (Dims{1, 1, 1}).Coarsen() != (Dims{1, 1, 1}) {
		t.Error("Coarsen below 1")
	}
}

func TestLevels(t *testing.T) {
	ls := Levels(Dims{16, 16, 16}, 3)
	if len(ls) != 3 || ls[0] != (Dims{16, 16, 16}) || ls[1] != (Dims{8, 8, 8}) || ls[2] != (Dims{4, 4, 4}) {
		t.Errorf("Levels = %+v", ls)
	}
}

func TestCubeDims(t *testing.T) {
	d := CubeDims(28_000_000)
	if d.Cells() < 28_000_000 {
		t.Errorf("CubeDims(28M).Cells() = %d too small", d.Cells())
	}
	if d.NI != d.NJ || d.NJ != d.NK {
		t.Errorf("CubeDims not cubic: %+v", d)
	}
	if CubeDims(0) != (Dims{1, 1, 1}) {
		t.Error("CubeDims(0) should clamp to unit")
	}
}

func TestFactorGridExact(t *testing.T) {
	d := Dims{100, 100, 100}
	for _, p := range []int{1, 2, 8, 100, 128, 1000} {
		g, err := FactorGrid(p, d)
		if err != nil {
			t.Fatalf("FactorGrid(%d): %v", p, err)
		}
		if g[0]*g[1]*g[2] != p {
			t.Errorf("grid %v product != %d", g, p)
		}
	}
}

func TestFactorGridPrefersBalanced(t *testing.T) {
	g, err := FactorGrid(8, Dims{64, 64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if g != [3]int{2, 2, 2} {
		t.Errorf("FactorGrid(8, cube) = %v, want 2x2x2", g)
	}
}

func TestFactorGridRespectsDims(t *testing.T) {
	// Only 4 cells along I: a grid of 8x1x1 is invalid, 4x2x1 or 2x2x2 ok.
	g, err := FactorGrid(8, Dims{4, 64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if g[0] > 4 {
		t.Errorf("grid %v exceeds NI=4", g)
	}
	if _, err := FactorGrid(7, Dims{2, 2, 1}); err == nil {
		t.Error("FactorGrid should fail when prime > all dims")
	}
}

func TestNewDecompErrors(t *testing.T) {
	if _, err := NewDecomp(Dims{2, 2, 2}, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NewDecomp(Dims{2, 2, 2}, 100); err == nil {
		t.Error("more ranks than cells accepted")
	}
}

func TestBestEffortDecomp(t *testing.T) {
	// 7 is prime and exceeds every dim: fall back to fewer active ranks.
	dc, err := NewDecompBestEffort(Dims{4, 4, 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Ranks() > 7 || dc.Ranks() < 1 {
		t.Errorf("best-effort ranks = %d", dc.Ranks())
	}
	// Oversubscription clamps to cell count.
	dc2, err := NewDecompBestEffort(Dims{2, 2, 1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if dc2.Ranks() > 4 {
		t.Errorf("oversubscribed ranks = %d, want <= 4", dc2.Ranks())
	}
}

func TestBoxPartitionCoversMesh(t *testing.T) {
	d := Dims{10, 7, 5}
	dc, err := NewDecomp(d, 6)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for r := 0; r < dc.Ranks(); r++ {
		total += dc.Box(r).Cells()
	}
	if total != d.Cells() {
		t.Errorf("boxes cover %d cells, mesh has %d", total, d.Cells())
	}
}

func TestCoordsRankRoundTrip(t *testing.T) {
	dc := &Decomp{Dims: Dims{8, 8, 8}, Grid: [3]int{2, 2, 2}}
	for r := 0; r < dc.Ranks(); r++ {
		if got := dc.Rank(dc.Coords(r)); got != r {
			t.Errorf("round trip %d -> %v -> %d", r, dc.Coords(r), got)
		}
	}
}

func TestNeighborsInterior(t *testing.T) {
	dc := &Decomp{Dims: Dims{27, 27, 27}, Grid: [3]int{3, 3, 3}}
	// Center rank (1,1,1) has 6 neighbours.
	center := dc.Rank([3]int{1, 1, 1})
	nbs := dc.Neighbors(center)
	if len(nbs) != 6 {
		t.Fatalf("interior rank has %d neighbours, want 6", len(nbs))
	}
	for _, nb := range nbs {
		if nb.FaceCells != 81 {
			t.Errorf("face cells = %d, want 81", nb.FaceCells)
		}
	}
	// Corner rank (0,0,0) has 3.
	if nbs := dc.Neighbors(0); len(nbs) != 3 {
		t.Errorf("corner rank has %d neighbours, want 3", len(nbs))
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	dc := &Decomp{Dims: Dims{12, 12, 12}, Grid: [3]int{2, 3, 2}}
	for r := 0; r < dc.Ranks(); r++ {
		for _, nb := range dc.Neighbors(r) {
			back := false
			for _, nb2 := range dc.Neighbors(nb.Rank) {
				if nb2.Rank == r {
					back = true
				}
			}
			if !back {
				t.Errorf("neighbour relation not symmetric: %d -> %d", r, nb.Rank)
			}
		}
	}
}

func TestLocalScaleCapping(t *testing.T) {
	d := Dims{100, 100, 100}
	dc, err := NewDecomp(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	l := dc.Local(0, 1000)
	if l.Sim.Cells() > 1000 {
		t.Errorf("capped local has %d cells, cap 1000", l.Sim.Cells())
	}
	wantScale := float64(d.Cells()) / float64(l.Sim.Cells())
	if l.Scale != wantScale {
		t.Errorf("scale = %v, want %v", l.Scale, wantScale)
	}
	// Uncapped.
	l2 := dc.Local(0, 0)
	if l2.Scale != 1.0 || l2.Sim != l2.True {
		t.Errorf("uncapped local altered: %+v", l2)
	}
}

func TestCapDimsRespectsCap(t *testing.T) {
	f := func(ni, nj, nk uint8, cap uint16) bool {
		d := Dims{int(ni)%60 + 1, int(nj)%60 + 1, int(nk)%60 + 1}
		c := int(cap)%5000 + 1
		out := CapDims(d, c)
		return out.Cells() <= max64(int64(c), 1) && out.NI >= 1 && out.NJ >= 1 && out.NK >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestStructuredEdgesCount(t *testing.T) {
	d := Dims{2, 2, 2} // 3x3x3 nodes
	edges := StructuredEdges(d)
	want := 2 * 3 * 3 * 3 // per direction: (n-1)*m*l = 2*9 = 18, x3 dirs = 54
	if len(edges) != want {
		t.Errorf("edges = %d, want %d", len(edges), want)
	}
	// All endpoints valid.
	n := int32(d.Nodes())
	for _, e := range edges {
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n || e.A == e.B {
			t.Fatalf("bad edge %+v", e)
		}
	}
}

func TestNodeCoordsDeterministicAndJittered(t *testing.T) {
	d := Dims{3, 3, 3}
	a := NodeCoords(d, 0.3, 42)
	b := NodeCoords(d, 0.3, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("NodeCoords not deterministic for fixed seed")
		}
	}
	c := NodeCoords(d, 0.3, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical coords")
	}
	// Zero jitter = exact lattice.
	z := NodeCoords(d, 0, 1)
	if z[0] != [3]float64{0, 0, 0} {
		t.Errorf("lattice origin = %v", z[0])
	}
}

func TestInterfaceCells(t *testing.T) {
	d := CubeDims(1000)
	if got := InterfaceCells(d, 0.05); got < 45 || got > 55 {
		t.Errorf("5%% interface of 1000 cells = %d", got)
	}
	if InterfaceCells(Dims{1, 1, 1}, 0.0001) != 1 {
		t.Error("interface should clamp to at least one cell")
	}
}

func TestSurfaceCells(t *testing.T) {
	if got := SurfaceCells(Dims{10, 4, 5}); got != 20 {
		t.Errorf("SurfaceCells = %d, want 20", got)
	}
}

// Property: every valid FactorGrid result multiplies to p and respects
// the mesh dimensions.
func TestFactorGridProperty(t *testing.T) {
	f := func(pRaw uint16, niRaw, njRaw, nkRaw uint8) bool {
		p := int(pRaw)%500 + 1
		d := Dims{int(niRaw)%50 + 10, int(njRaw)%50 + 10, int(nkRaw)%50 + 10}
		g, err := FactorGrid(p, d)
		if err != nil {
			// Only acceptable when p genuinely has no valid factorisation.
			return true
		}
		return g[0]*g[1]*g[2] == p && g[0] <= d.NI && g[1] <= d.NJ && g[2] <= d.NK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: decomposition boxes are disjoint and cover the mesh for
// arbitrary decomposable rank counts.
func TestDecompBoxesProperty(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := int(pRaw)%60 + 1
		d := Dims{12, 10, 8}
		dc, err := NewDecompBestEffort(d, p)
		if err != nil {
			return false
		}
		var total int64
		for r := 0; r < dc.Ranks(); r++ {
			b := dc.Box(r)
			if b.Dims().NI < 1 || b.Dims().NJ < 1 || b.Dims().NK < 1 {
				return false
			}
			total += b.Cells()
		}
		return total == d.Cells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestNodeCoordsRandMatchesSeededWrapper: threading an explicit
// generator must reproduce the seeded wrapper exactly, so callers can
// migrate to NodeCoordsRand without moving any golden results.
func TestNodeCoordsRandMatchesSeededWrapper(t *testing.T) {
	d := Dims{4, 5, 6}
	want := NodeCoords(d, 0.3, 42)
	got := NodeCoordsRand(d, 0.3, rand.New(rand.NewSource(42)))
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}
