package mgcfd

import "cpx/internal/fault"

// Checkpoint is a deep copy of the solver's mutable state: the conserved
// variables of every multigrid level. Residual accumulators are scratch
// (zeroed at the start of each flux evaluation) and dt and the
// decomposition are deterministic functions of the configuration, so
// restoring Q alone resumes the run bit for bit.
type Checkpoint struct {
	Q [][][]float64 // per level: NVAR x nodes
}

// Checkpoint captures the current state (idle ranks return an empty one).
func (s *Sim) Checkpoint() *Checkpoint {
	ck := &Checkpoint{Q: make([][][]float64, len(s.levels))}
	for l, lv := range s.levels {
		ck.Q[l] = make([][]float64, len(lv.q))
		for v, q := range lv.q {
			ck.Q[l][v] = append([]float64(nil), q...)
		}
	}
	return ck
}

// Restore overwrites the solver state with a checkpoint taken from an
// identically configured instance.
func (s *Sim) Restore(ck *Checkpoint) {
	for l, lv := range s.levels {
		for v := range lv.q {
			copy(lv.q[v], ck.Q[l][v])
		}
	}
}

// CheckpointBytes is the true (full-scale) size of the state a rank
// writes to stable storage, used for the modelled checkpoint I/O cost:
// the per-level node counts scaled back up by the true/simulated work
// ratio.
func (s *Sim) CheckpointBytes() int {
	total := 0
	for _, lv := range s.levels {
		total += int(float64(lv.nodes)*lv.workMult) * NVAR * 8
	}
	return total
}

// StateDigest hashes the exact bit patterns of the mutable state, for
// bitwise restart-equivalence checks.
func (s *Sim) StateDigest() uint64 {
	d := fault.NewDigest()
	for _, lv := range s.levels {
		for _, q := range lv.q {
			d.Floats(q)
		}
	}
	return d.Sum64()
}
