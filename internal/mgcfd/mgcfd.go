// Package mgcfd implements the MG-CFD mini-app [16]: an edge-based,
// unstructured finite-volume Euler solver with geometric multigrid,
// the established performance proxy for the production density solver
// (Rolls-Royce Hydra) used for the compressor and turbine rows. Each
// time-step runs Runge-Kutta stages of an edge-loop flux accumulation
// (central flux plus scalar dissipation), a halo exchange of face states
// with every block neighbour, a residual allreduce, and a multigrid
// cascade of restricted coarse-grid smoothing iterations.
//
// At scale the per-rank box is capped (mesh.Local) and compute costs are
// charged for the true box; halo message costs always use the true face
// sizes (DESIGN.md §5.2).
package mgcfd

import (
	"fmt"
	"math"

	"cpx/internal/cluster"
	"cpx/internal/mesh"
	"cpx/internal/mpi"
)

// NVAR is the number of conserved flow variables (rho, rho*u, rho*v,
// rho*w, rho*E).
const NVAR = 5

// Per-edge and per-node work constants calibrated for MG-CFD's flux and
// update kernels on EPYC-class cores.
const (
	fluxFlopsPerEdge  = 130.0
	fluxBytesPerEdge  = 180.0
	updateFlopsPerNod = 30.0
	updateBytesPerNod = 120.0
)

// Message tag base for mgcfd exchanges (one tag per level).
const tagHalo = 20

// Config describes an MG-CFD instance.
type Config struct {
	MeshCells int64 // global mesh size (e.g. 8M, 24M, 150M, 300M)
	Steps     int   // time-steps for the full run
	MGLevels  int   // multigrid depth; default 3
	RKStages  int   // Runge-Kutta stages per step; default 3
	CFL       float64
	Seed      int64
}

func (c Config) withDefaults() Config {
	if c.MGLevels == 0 {
		c.MGLevels = 3
	}
	if c.RKStages == 0 {
		c.RKStages = 3
	}
	if c.CFL == 0 {
		c.CFL = 0.8
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MeshCells < 8 {
		return fmt.Errorf("mgcfd: mesh of %d cells too small", c.MeshCells)
	}
	if c.Steps < 1 {
		return fmt.Errorf("mgcfd: need at least one step")
	}
	return nil
}

// ScaleOpts bound the in-memory working set; zero value disables capping.
type ScaleOpts struct {
	MaxCellsPerRank int
	SampleSteps     int
}

// Production returns the capping used by large harness runs.
func Production() ScaleOpts { return ScaleOpts{MaxCellsPerRank: 2048, SampleSteps: 2} }

// SampledFraction returns full-run steps / executed steps (>= 1).
func SampledFraction(cfg Config, sc ScaleOpts) float64 {
	if sc.SampleSteps > 0 && sc.SampleSteps < cfg.Steps {
		return float64(cfg.Steps) / float64(sc.SampleSteps)
	}
	return 1
}

// level is one multigrid level's local state.
type level struct {
	dims     mesh.Dims // simulated local dims at this level
	nodes    int
	edges    []mesh.Edge
	q        [][]float64 // NVAR x nodes conserved variables
	res      [][]float64 // NVAR x nodes residual accumulator
	faces    []faceInfo  // neighbour faces at this level
	workMult float64     // true/simulated work ratio at this level
}

type faceInfo struct {
	rank      int   // peer rank
	nodeIdx   []int // local node indices on this face (sim dims)
	trueCells int   // true face size at this level (for message cost)
}

// Sim is the per-rank MG-CFD state.
type Sim struct {
	comm   *mpi.Comm
	cfg    Config
	levels []*level
	scale  float64 // true/sim cell ratio on the finest level
	dt     float64
	// Instance-wide decomposition info.
	decomp *mesh.Decomp
	active bool // false for idle ranks (beyond the decomposition)
}

// New builds the per-rank state. Collective over c. Ranks beyond what the
// mesh can decompose into become idle participants (they still join
// collectives).
func New(c *mpi.Comm, cfg Config, sc ScaleOpts) (*Sim, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dims := mesh.CubeDims(cfg.MeshCells)
	dc, err := mesh.NewDecompBestEffort(dims, c.Size())
	if err != nil {
		return nil, err
	}
	s := &Sim{comm: c, cfg: cfg, decomp: dc, active: c.Rank() < dc.Ranks()}
	if !s.active {
		return s, nil
	}
	local := dc.Local(c.Rank(), sc.MaxCellsPerRank)
	s.scale = local.Scale

	simDims := local.Sim
	trueDims := local.True
	for l := 0; l < cfg.MGLevels; l++ {
		lv := &level{dims: simDims}
		lv.nodes = int(simDims.Nodes())
		lv.edges = mesh.StructuredEdges(simDims)
		lv.q = allocVars(lv.nodes)
		lv.res = allocVars(lv.nodes)
		lv.workMult = float64(trueDims.Cells()) / float64(simDims.Cells())
		// Neighbour faces: node lists on each face of the sim box; true
		// sizes from the true box, both coarsened per level.
		for _, nb := range localNeighbours(local, l) {
			lv.faces = append(lv.faces, faceInfo{
				rank:      nb.Rank,
				nodeIdx:   faceNodes(simDims, nb.Axis, nb.Dir),
				trueCells: nb.FaceCells,
			})
		}
		s.levels = append(s.levels, lv)
		simDims = simDims.Coarsen()
		trueDims = trueDims.Coarsen()
	}
	s.initFlow()
	// dt from a fixed reference state (uniform flow, sound speed ~1).
	h := 1.0 / float64(dims.NI)
	s.dt = cfg.CFL * h / 2.0
	// Setup cost: mesh/edge generation over the true box.
	trueNodes := float64(local.True.Nodes())
	c.Compute(cluster.Work{Flops: 50 * trueNodes, Bytes: 200 * trueNodes})
	return s, nil
}

func allocVars(n int) [][]float64 {
	out := make([][]float64, NVAR)
	for v := range out {
		out[v] = make([]float64, n)
	}
	return out
}

// localNeighbours coarsens the face sizes of the true decomposition per
// level (a face shrinks by ~4x per level).
func localNeighbours(local *mesh.Local, lvl int) []mesh.Neighbor {
	out := make([]mesh.Neighbor, len(local.Neighbors))
	copy(out, local.Neighbors)
	shrink := 1
	for i := 0; i < lvl; i++ {
		shrink *= 4
	}
	for i := range out {
		fc := out[i].FaceCells / shrink
		if fc < 1 {
			fc = 1
		}
		out[i].FaceCells = fc
	}
	return out
}

// faceNodes lists the node indices on the given face of a block.
func faceNodes(d mesh.Dims, axis, dir int) []int {
	ni, nj, nk := d.NI+1, d.NJ+1, d.NK+1
	idx := func(i, j, k int) int { return (k*nj+j)*ni + i }
	var out []int
	switch axis {
	case 0:
		i := 0
		if dir > 0 {
			i = ni - 1
		}
		for k := 0; k < nk; k++ {
			for j := 0; j < nj; j++ {
				out = append(out, idx(i, j, k))
			}
		}
	case 1:
		j := 0
		if dir > 0 {
			j = nj - 1
		}
		for k := 0; k < nk; k++ {
			for i := 0; i < ni; i++ {
				out = append(out, idx(i, j, k))
			}
		}
	default:
		k := 0
		if dir > 0 {
			k = nk - 1
		}
		for j := 0; j < nj; j++ {
			for i := 0; i < ni; i++ {
				out = append(out, idx(i, j, k))
			}
		}
	}
	return out
}

// initFlow sets a uniform free-stream state with a deterministic smooth
// perturbation, like MG-CFD's initialisation from far-field conditions.
func (s *Sim) initFlow() {
	for _, l := range s.levels {
		for n := 0; n < l.nodes; n++ {
			pert := 0.01 * math.Sin(float64(n)*0.1+float64(s.cfg.Seed))
			l.q[0][n] = 1.0 + pert // density
			l.q[1][n] = 0.5        // x-momentum (free stream)
			l.q[2][n] = 0
			l.q[3][n] = 0
			l.q[4][n] = 2.5 + pert // total energy
		}
	}
}

// pressure computes the perfect-gas pressure of node n at level l.
func pressureOf(q [][]float64, n int) float64 {
	const gamma = 1.4
	rho := q[0][n]
	if rho <= 0 {
		rho = 1e-10
	}
	ke := (q[1][n]*q[1][n] + q[2][n]*q[2][n] + q[3][n]*q[3][n]) / (2 * rho)
	p := (gamma - 1) * (q[4][n] - ke)
	if p <= 0 {
		p = 1e-10
	}
	return p
}

// computeFlux runs the edge loop at one level: central flux differences
// with scalar (Rusanov) dissipation accumulate into the residual arrays.
// This is MG-CFD's compute_flux_edge kernel.
func (s *Sim) computeFlux(l *level) {
	for v := 0; v < NVAR; v++ {
		r := l.res[v]
		for i := range r {
			r[i] = 0
		}
	}
	q := l.q
	for _, e := range l.edges {
		a, b := int(e.A), int(e.B)
		// Scalar dissipation: local max wave speed estimate.
		pa, pb := pressureOf(q, a), pressureOf(q, b)
		ca := math.Sqrt(1.4 * pa / math.Max(q[0][a], 1e-10))
		cb := math.Sqrt(1.4 * pb / math.Max(q[0][b], 1e-10))
		ua := q[1][a] / math.Max(q[0][a], 1e-10)
		ub := q[1][b] / math.Max(q[0][b], 1e-10)
		lam := math.Max(math.Abs(ua)+ca, math.Abs(ub)+cb)
		for v := 0; v < NVAR; v++ {
			// Central difference of the convective flux (projected on the
			// edge direction) plus dissipation.
			fa := q[v][a] * ua
			fb := q[v][b] * ub
			if v == 1 {
				fa += pa
				fb += pb
			}
			if v == 4 {
				fa += pa * ua
				fb += pb * ub
			}
			flux := 0.5*(fa+fb) - 0.5*lam*(q[v][b]-q[v][a])
			l.res[v][a] -= flux
			l.res[v][b] += flux
		}
	}
	s.comm.Compute(cluster.Work{
		Flops: fluxFlopsPerEdge * float64(len(l.edges)) * l.workMult,
		Bytes: fluxBytesPerEdge * float64(len(l.edges)) * l.workMult,
	})
}

// exchangeHalo trades face states with every block neighbour at a level.
// Received states relax the local face nodes toward the neighbour's
// values, coupling the subdomains.
func (s *Sim) exchangeHalo(l *level, lvlIdx int) {
	if len(l.faces) == 0 {
		return
	}
	tag := tagHalo + lvlIdx
	// Send all faces first (eager), then receive: standard Isend/Irecv
	// halo pattern.
	for _, f := range l.faces {
		buf := make([]float64, len(f.nodeIdx)*NVAR)
		for v := 0; v < NVAR; v++ {
			for i, n := range f.nodeIdx {
				buf[v*len(f.nodeIdx)+i] = l.q[v][n]
			}
		}
		s.comm.SendVirtual(f.rank, tag, buf, f.trueCells*NVAR*8)
	}
	for _, f := range l.faces {
		d, _, _ := s.comm.Recv(f.rank, tag)
		// Face buffers may differ in sim length across ranks (capping is
		// per-rank); relax with what overlaps.
		per := len(d) / NVAR
		m := min(per, len(f.nodeIdx))
		for v := 0; v < NVAR; v++ {
			for i := 0; i < m; i++ {
				n := f.nodeIdx[i]
				l.q[v][n] = 0.5*l.q[v][n] + 0.5*d[v*per+i]
			}
		}
	}
}

// update applies one forward-Euler stage with the accumulated residual.
func (s *Sim) update(l *level, dtStage float64) {
	volInv := 1.0 // unit cell volumes in the proxy
	for v := 0; v < NVAR; v++ {
		q, r := l.q[v], l.res[v]
		for n := range q {
			q[n] += dtStage * volInv * r[n]
		}
	}
	s.comm.Compute(cluster.Work{
		Flops: updateFlopsPerNod * float64(l.nodes) * l.workMult,
		Bytes: updateBytesPerNod * float64(l.nodes) * l.workMult,
	})
}

// restrictTo injects the fine solution into the coarse level (volume
// averaging over 2x2x2 blocks).
func (s *Sim) restrictTo(fine, coarse *level) {
	fd, cd := fine.dims, coarse.dims
	fni, fnj := fd.NI+1, fd.NJ+1
	cni, cnj, cnk := cd.NI+1, cd.NJ+1, cd.NK+1
	for v := 0; v < NVAR; v++ {
		for k := 0; k < cnk; k++ {
			for j := 0; j < cnj; j++ {
				for i := 0; i < cni; i++ {
					fi, fj, fk := min(2*i, fni-1), min(2*j, fnj-1), min(2*k, fd.NK)
					coarse.q[v][(k*cnj+j)*cni+i] = fine.q[v][(fk*fnj+fj)*fni+fi]
				}
			}
		}
	}
	s.comm.Compute(cluster.Work{
		Flops: 8 * float64(coarse.nodes) * coarse.workMult,
		Bytes: 80 * float64(coarse.nodes) * coarse.workMult,
	})
}

// prolongFrom adds the coarse correction back to the fine level with
// nearest-neighbour prolongation and a damping factor.
func (s *Sim) prolongFrom(coarse, fine *level, before [][]float64, damp float64) {
	fd, cd := fine.dims, coarse.dims
	fni, fnj, fnk := fd.NI+1, fd.NJ+1, fd.NK+1
	cni, cnj := cd.NI+1, cd.NJ+1
	for v := 0; v < NVAR; v++ {
		for k := 0; k < fnk; k++ {
			for j := 0; j < fnj; j++ {
				for i := 0; i < fni; i++ {
					ci, cj, ck := min(i/2, cd.NI), min(j/2, cd.NJ), min(k/2, cd.NK)
					cn := (ck*cnj+cj)*cni + ci
					fn := (k*fnj+j)*fni + i
					fine.q[v][fn] += damp * (coarse.q[v][cn] - before[v][cn])
				}
			}
		}
	}
	s.comm.Compute(cluster.Work{
		Flops: 4 * float64(fine.nodes) * fine.workMult,
		Bytes: 48 * float64(fine.nodes) * fine.workMult,
	})
}

// region runs fn inside a named trace region, mirroring MG-CFD's named
// kernels for ARM-MAP-style profiles (no-op when profiling is off).
func (s *Sim) region(name string, fn func()) {
	if p := s.comm.Profile(); p != nil {
		defer p.Scoped(name)()
	}
	fn()
}

// Step advances one time-step: RK stages on the fine grid, then a
// multigrid cascade, then the residual allreduce MG-CFD performs for
// convergence monitoring.
func (s *Sim) Step() float64 {
	if !s.active {
		// Idle ranks still join the step's collective.
		return s.comm.AllreduceScalar(0, mpi.Max)
	}
	fine := s.levels[0]
	rkAlpha := []float64{0.1481, 0.4, 1.0}
	for st := 0; st < s.cfg.RKStages; st++ {
		a := rkAlpha[min(st, len(rkAlpha)-1)]
		s.region("halo_exchange", func() { s.exchangeHalo(fine, 0) })
		s.region("compute_flux_edge", func() { s.computeFlux(fine) })
		s.region("time_step", func() { s.update(fine, a*s.dt) })
	}
	// Multigrid cascade: restrict, smooth, prolong correction.
	s.region("mg_restrict", func() {
		for li := 1; li < len(s.levels); li++ {
			s.restrictTo(s.levels[li-1], s.levels[li])
		}
	})
	for li := len(s.levels) - 1; li >= 1; li-- {
		l := s.levels[li]
		before := allocVars(l.nodes)
		for v := 0; v < NVAR; v++ {
			copy(before[v], l.q[v])
		}
		s.region("halo_exchange", func() { s.exchangeHalo(l, li) })
		s.region("compute_flux_edge", func() { s.computeFlux(l) })
		s.region("time_step", func() { s.update(l, 0.5*s.dt) })
		s.region("mg_prolong", func() { s.prolongFrom(l, s.levels[li-1], before, 0.3) })
	}
	// Residual norm allreduce (convergence monitor).
	var res float64
	s.region("residual", func() {
		local := 0.0
		for n := range fine.res[0] {
			local += fine.res[0][n] * fine.res[0][n]
		}
		s.comm.Compute(cluster.Work{Flops: 2 * float64(fine.nodes) * fine.workMult,
			Bytes: 8 * float64(fine.nodes) * fine.workMult})
		res = math.Sqrt(s.comm.AllreduceScalar(local, mpi.Sum))
	})
	return res
}

// Stats summarises a completed run on one rank.
type Stats struct {
	StepsRun    int
	ScaledSteps int
	Residual    float64
	Active      bool
	// SetupTime is the virtual time consumed before stepping began (max
	// over ranks); harnesses scale only the stepping phase when sampling.
	SetupTime float64
}

// Run executes the configured (or sampled) number of steps.
func Run(c *mpi.Comm, cfg Config, sc ScaleOpts) (*Stats, error) {
	s, err := New(c, cfg, sc)
	if err != nil {
		return nil, err
	}
	setup := c.AllreduceScalar(c.Clock(), mpi.Max)
	cfg = cfg.withDefaults()
	steps := cfg.Steps
	if sc.SampleSteps > 0 && sc.SampleSteps < steps {
		steps = sc.SampleSteps
	}
	res := 0.0
	for i := 0; i < steps; i++ {
		res = s.Step()
	}
	return &Stats{StepsRun: steps, ScaledSteps: cfg.Steps, Residual: res, Active: s.active, SetupTime: setup}, nil
}

// MassTotal returns the global sum of density over owned nodes
// (collective); conserved up to boundary fluxes.
func (s *Sim) MassTotal() float64 {
	local := 0.0
	if s.active {
		for _, rho := range s.levels[0].q[0] {
			local += rho
		}
	}
	return s.comm.AllreduceScalar(local, mpi.Sum)
}

// Density returns the fine-level density field (for tests).
func (s *Sim) Density() []float64 {
	if !s.active {
		return nil
	}
	return s.levels[0].q[0]
}

// Active reports whether this rank participates in the decomposition.
func (s *Sim) Active() bool { return s.active }

// BoundarySample extracts n representative interface values (density at
// the first n fine-level nodes, cycling) for coupling transfers.
func (s *Sim) BoundarySample(n int) []float64 {
	out := make([]float64, n)
	if !s.active || n == 0 {
		return out
	}
	rho := s.levels[0].q[0]
	for i := range out {
		out[i] = rho[i%len(rho)]
	}
	return out
}

// AbsorbBoundary relaxes the inlet-region density toward values received
// from a coupled neighbour instance.
func (s *Sim) AbsorbBoundary(vals []float64) {
	if !s.active {
		return
	}
	rho := s.levels[0].q[0]
	for i, v := range vals {
		if i >= len(rho) {
			break
		}
		if v > 0.1 && v < 10 { // guard against non-physical transfers
			rho[i] = 0.95*rho[i] + 0.05*v
		}
	}
}
