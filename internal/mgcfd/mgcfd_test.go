package mgcfd

import (
	"fmt"
	"math"
	"testing"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/mesh"
	"cpx/internal/mpi"
)

func cfg() mpi.Config {
	return mpi.Config{Machine: cluster.SmallCluster(), Watchdog: 60 * time.Second}
}

func smallConfig() Config {
	return Config{MeshCells: 4096, Steps: 5, Seed: 1}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{MeshCells: 4, Steps: 1}).Validate(); err == nil {
		t.Error("tiny mesh accepted")
	}
	if err := (Config{MeshCells: 1000, Steps: 0}).Validate(); err == nil {
		t.Error("zero steps accepted")
	}
	if err := smallConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestFaceNodesCounts(t *testing.T) {
	d := mesh.Dims{NI: 4, NJ: 3, NK: 2} // nodes 5x4x3
	for axis, want := range map[int]int{0: 4 * 3, 1: 5 * 3, 2: 5 * 4} {
		for _, dir := range []int{-1, 1} {
			got := faceNodes(d, axis, dir)
			if len(got) != want {
				t.Errorf("axis %d dir %d: %d nodes, want %d", axis, dir, len(got), want)
			}
			n := int(d.Nodes())
			for _, idx := range got {
				if idx < 0 || idx >= n {
					t.Fatalf("face node %d out of range", idx)
				}
			}
		}
	}
}

func TestFaceNodesDistinctPerFace(t *testing.T) {
	d := mesh.Dims{NI: 3, NJ: 3, NK: 3}
	lo := faceNodes(d, 0, -1)
	hi := faceNodes(d, 0, 1)
	seen := map[int]bool{}
	for _, n := range lo {
		seen[n] = true
	}
	for _, n := range hi {
		if seen[n] {
			t.Fatal("opposite faces share nodes")
		}
	}
}

func TestRunSingleRank(t *testing.T) {
	_, err := mpi.Run(1, cfg(), func(c *mpi.Comm) error {
		st, err := Run(c, smallConfig(), ScaleOpts{})
		if err != nil {
			return err
		}
		if st.StepsRun != 5 || !st.Active {
			return fmt.Errorf("stats = %+v", st)
		}
		if math.IsNaN(st.Residual) || math.IsInf(st.Residual, 0) {
			return fmt.Errorf("residual blew up: %v", st.Residual)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiRankStable(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		_, err := mpi.Run(p, cfg(), func(c *mpi.Comm) error {
			s, err := New(c, smallConfig(), ScaleOpts{})
			if err != nil {
				return err
			}
			for i := 0; i < 5; i++ {
				res := s.Step()
				if math.IsNaN(res) || math.IsInf(res, 0) {
					return fmt.Errorf("p=%d step %d: residual %v", p, i, res)
				}
			}
			// Density must stay positive everywhere.
			for _, rho := range s.Density() {
				if rho <= 0 || math.IsNaN(rho) {
					return fmt.Errorf("p=%d: non-physical density %v", p, rho)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestIdleRanksParticipate(t *testing.T) {
	// 7 ranks on a mesh that only decomposes to fewer active ranks must
	// still complete (idle ranks join collectives).
	_, err := mpi.Run(7, cfg(), func(c *mpi.Comm) error {
		s, err := New(c, Config{MeshCells: 27, Steps: 1, MGLevels: 1}, ScaleOpts{})
		if err != nil {
			return err
		}
		s.Step()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMassApproximatelyConserved(t *testing.T) {
	_, err := mpi.Run(4, cfg(), func(c *mpi.Comm) error {
		s, err := New(c, smallConfig(), ScaleOpts{})
		if err != nil {
			return err
		}
		before := s.MassTotal()
		for i := 0; i < 5; i++ {
			s.Step()
		}
		after := s.MassTotal()
		if math.Abs(after-before) > 0.2*math.Abs(before) {
			return fmt.Errorf("mass drifted: %v -> %v", before, after)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultigridLevelsBuilt(t *testing.T) {
	_, err := mpi.Run(1, cfg(), func(c *mpi.Comm) error {
		s, err := New(c, Config{MeshCells: 4096, Steps: 1, MGLevels: 3}, ScaleOpts{})
		if err != nil {
			return err
		}
		if len(s.levels) != 3 {
			return fmt.Errorf("levels = %d, want 3", len(s.levels))
		}
		for li := 1; li < 3; li++ {
			if s.levels[li].nodes >= s.levels[li-1].nodes {
				return fmt.Errorf("level %d not coarser: %d vs %d",
					li, s.levels[li].nodes, s.levels[li-1].nodes)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScaleCappingChargesTrueWork(t *testing.T) {
	base := Config{MeshCells: 32768, Steps: 2, Seed: 2}
	elapsed := func(sc ScaleOpts) float64 {
		st, err := mpi.Run(2, cfg(), func(c *mpi.Comm) error {
			_, err := Run(c, base, sc)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	full := elapsed(ScaleOpts{})
	capped := elapsed(ScaleOpts{MaxCellsPerRank: 512})
	if ratio := capped / full; ratio < 0.4 || ratio > 2.5 {
		t.Errorf("capped virtual time %v vs full %v (ratio %v)", capped, full, ratio)
	}
}

func TestLargerMeshCostsMore(t *testing.T) {
	elapsed := func(cells int64) float64 {
		st, err := mpi.Run(2, cfg(), func(c *mpi.Comm) error {
			_, err := Run(c, Config{MeshCells: cells, Steps: 2},
				ScaleOpts{MaxCellsPerRank: 512})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	if !(elapsed(1_000_000) > elapsed(10_000)) {
		t.Error("100x mesh should cost more virtual time")
	}
}

func TestDeterministic(t *testing.T) {
	once := func() float64 {
		st, err := mpi.Run(3, cfg(), func(c *mpi.Comm) error {
			_, err := Run(c, smallConfig(), ScaleOpts{})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	if a, b := once(), once(); a != b {
		t.Errorf("not deterministic: %v vs %v", a, b)
	}
}

func TestSampledFractionScaling(t *testing.T) {
	c := Config{MeshCells: 1000, Steps: 500}
	if f := SampledFraction(c, ScaleOpts{SampleSteps: 5}); f != 100 {
		t.Errorf("fraction %v, want 100", f)
	}
	if f := SampledFraction(c, ScaleOpts{}); f != 1 {
		t.Errorf("fraction %v, want 1", f)
	}
}

func TestHaloCouplingSpreadsInformation(t *testing.T) {
	// With two ranks, a perturbation seeded by rank-dependent init must
	// influence the neighbour within a few steps (halo exchange works).
	_, err := mpi.Run(2, cfg(), func(c *mpi.Comm) error {
		s, err := New(c, Config{MeshCells: 1024, Steps: 1, MGLevels: 1, Seed: int64(c.Rank())}, ScaleOpts{})
		if err != nil {
			return err
		}
		before := make([]float64, len(s.Density()))
		copy(before, s.Density())
		for i := 0; i < 3; i++ {
			s.Step()
		}
		changed := false
		for i, rho := range s.Density() {
			if math.Abs(rho-before[i]) > 1e-12 {
				changed = true
				break
			}
		}
		if !changed {
			return fmt.Errorf("rank %d state froze; halo coupling inert", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoundarySampleAndAbsorb(t *testing.T) {
	_, err := mpi.Run(1, cfg(), func(c *mpi.Comm) error {
		s, err := New(c, smallConfig(), ScaleOpts{})
		if err != nil {
			return err
		}
		vals := s.BoundarySample(10)
		if len(vals) != 10 {
			return fmt.Errorf("sample length %d", len(vals))
		}
		for _, v := range vals {
			if v <= 0 {
				return fmt.Errorf("non-physical density sample %v", v)
			}
		}
		// Absorb pulls boundary density toward the received values.
		before := s.Density()[0]
		s.AbsorbBoundary([]float64{before + 1})
		if !(s.Density()[0] > before) {
			return fmt.Errorf("absorb did not move density")
		}
		// Garbage values are rejected.
		cur := s.Density()[0]
		s.AbsorbBoundary([]float64{1e9})
		if s.Density()[0] != cur {
			return fmt.Errorf("non-physical transfer accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKernelProfileRegions(t *testing.T) {
	st, err := mpi.Run(2, mpi.Config{Machine: cluster.SmallCluster(), Profile: true, Watchdog: time.Minute},
		func(c *mpi.Comm) error {
			_, err := Run(c, smallConfig(), ScaleOpts{})
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	prof := st.MergedProfile()
	for _, region := range []string{"compute_flux_edge", "time_step", "halo_exchange", "mg_restrict", "mg_prolong", "residual"} {
		if prof.Entry(region).Total() <= 0 {
			t.Errorf("kernel region %q recorded no time", region)
		}
	}
	// The edge-based flux loop is MG-CFD's hot kernel.
	flux := prof.Entry("compute_flux_edge").Compute
	if flux < prof.Entry("time_step").Compute {
		t.Error("flux kernel should outweigh the update kernel")
	}
}
