package mpi

import (
	"fmt"
	"testing"
	"time"

	"cpx/internal/cluster"
)

// Host-side microbenchmarks for the runtime fast paths, recorded in
// BENCH_mpi.json. BenchmarkRunP2P measures the pooled-message/indexed-
// mailbox point-to-point path; BenchmarkRunCollectives measures
// collective-heavy runs with the analytic fast path off and on.
// `make bench-mpi` re-measures; `make check` runs each once so a
// regression that breaks them fails CI loudly.

const benchIters = 10

func benchMPIConfig(fast bool) Config {
	return Config{
		Machine:         cluster.SmallCluster(),
		Watchdog:        5 * time.Minute,
		FastCollectives: fast,
	}
}

func benchP2P(c *Comm) error {
	buf := make([]float64, 64)
	next := (c.Rank() + 1) % c.Size()
	prev := (c.Rank() + c.Size() - 1) % c.Size()
	for i := 0; i < benchIters; i++ {
		c.ComputeSeconds(1e-6 * float64(c.Rank()%5+1))
		c.Send(next, 0, buf)
		c.Recv(prev, 0)
	}
	return nil
}

func benchCollectives(c *Comm) error {
	buf := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < benchIters; i++ {
		c.ComputeSeconds(1e-6 * float64(c.Rank()%5+1))
		c.Allreduce(buf, Sum)
		c.Bcast(i%c.Size(), buf)
		c.Barrier()
	}
	return nil
}

func BenchmarkRunP2P(b *testing.B) {
	for _, p := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(p, benchMPIConfig(false), benchP2P); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRunCollectives(b *testing.B) {
	for _, p := range []int{8, 64, 512} {
		for _, fast := range []bool{false, true} {
			b.Run(fmt.Sprintf("ranks=%d/fast=%v", p, fast), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Run(p, benchMPIConfig(fast), benchCollectives); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRunSched compares the goroutine executor against the
// discrete-event executor on the collective-heavy workload at fig8/fig9
// rank counts, both with the analytic fast path on. Recorded in
// BENCH_sched.json; `make bench-sched` re-measures.
func BenchmarkRunSched(b *testing.B) {
	for _, p := range []int{8, 64, 512, 4096} {
		for _, sched := range []string{"goroutine", "event"} {
			b.Run(fmt.Sprintf("ranks=%d/sched=%s", p, sched), func(b *testing.B) {
				cfg := benchMPIConfig(true)
				cfg.EventDriven = sched == "event"
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Run(p, cfg, benchCollectives); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
