package mpi

import (
	"fmt"
	"testing"

	"cpx/internal/telemetry"
)

// BenchmarkRunMetrics measures the host-side cost of the virtual-time
// metrics sampler on a mixed p2p + collective workload, metrics off and
// on, recorded in BENCH_telemetry.json. The acceptance bar is <= 10%
// overhead at 512 ranks. The name matches `make bench-smoke`'s
// 'BenchmarkRun' filter so a regression fails `make check` loudly.

func benchTelemetry(c *Comm) error {
	buf := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	next := (c.Rank() + 1) % c.Size()
	prev := (c.Rank() + c.Size() - 1) % c.Size()
	for i := 0; i < benchIters; i++ {
		c.ComputeSeconds(1e-6 * float64(c.Rank()%5+1))
		c.Send(next, 0, buf)
		c.Recv(prev, 0)
		c.Allreduce(buf, Sum)
		c.Barrier()
	}
	return nil
}

func BenchmarkRunMetrics(b *testing.B) {
	for _, p := range []int{8, 64, 512} {
		for _, metrics := range []bool{false, true} {
			b.Run(fmt.Sprintf("ranks=%d/metrics=%v", p, metrics), func(b *testing.B) {
				cfg := benchMPIConfig(false)
				if metrics {
					// ~10-20 samples over the run's virtual duration —
					// the granularity the serving layer actually uses.
					cfg.Metrics = &telemetry.Config{Interval: 1e-4}
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Run(p, cfg, benchTelemetry); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
