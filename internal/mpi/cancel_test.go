package mpi

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"cpx/internal/cluster"
)

// waitForGoroutines polls until the process goroutine count drops back
// to at most base, proving every rank goroutine (and the cancel
// watcher) unwound. Polling is needed because wg.Wait in Run returns
// before the runtime reaps the exited goroutines' records.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d before the run", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelUnblocksDeadlockedRanks cancels a world where every rank is
// blocked in Recv on a message that will never arrive. The abort
// fan-out must wake all of them, Run must return ErrCanceled, and no
// rank goroutine may leak.
func TestCancelUnblocksDeadlockedRanks(t *testing.T) {
	base := runtime.NumGoroutine()
	cancel := make(chan struct{})
	started := make(chan struct{}, 8)
	done := make(chan error, 1)
	go func() {
		cfg := Config{Machine: cluster.SmallCluster(), Watchdog: 60 * time.Second, Cancel: cancel}
		_, err := Run(8, cfg, func(c *Comm) error {
			started <- struct{}{}
			c.Recv((c.Rank()+1)%c.Size(), 99) // nobody sends: blocks until aborted
			return nil
		})
		done <- err
	}()
	for i := 0; i < 8; i++ {
		<-started
	}
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("Run returned %v, want ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	waitForGoroutines(t, base)
}

// TestCancelMidExchange cancels a long-running ring exchange partway
// through and checks the partial Stats still describe the aborted run.
func TestCancelMidExchange(t *testing.T) {
	base := runtime.NumGoroutine()
	cancel := make(chan struct{})
	rank0Reached := make(chan struct{})
	go func() {
		<-rank0Reached
		close(cancel)
	}()
	cfg := Config{Machine: cluster.SmallCluster(), Watchdog: 60 * time.Second, Cancel: cancel}
	stats, err := Run(4, cfg, func(c *Comm) error {
		for iter := 0; iter < 1_000_000; iter++ {
			c.ComputeSeconds(1e-6)
			c.Send((c.Rank()+1)%c.Size(), iter, []float64{float64(iter)})
			c.Recv((c.Rank()+3)%c.Size(), iter)
			if c.Rank() == 0 && iter == 100 {
				close(rank0Reached) // the exchange is mid-flight: cancel now
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("run completed despite cancellation")
	}
	if stats == nil {
		t.Fatal("aborted run returned no partial stats")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	waitForGoroutines(t, base)
}

// TestCancelNeverFiredIsFree: a Run given a Cancel channel that stays
// open must complete normally and reap its watcher goroutine.
func TestCancelNeverFiredIsFree(t *testing.T) {
	base := runtime.NumGoroutine()
	cancel := make(chan struct{})
	defer close(cancel)
	cfg := Config{Machine: cluster.SmallCluster(), Cancel: cancel}
	stats, err := Run(4, cfg, func(c *Comm) error {
		c.ComputeSeconds(1e-3)
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	waitForGoroutines(t, base+1) // the deferred close has not run yet; only the watcher may remain
}
