package mpi

import "fmt"

// Op is a reduction operator for Reduce/Allreduce.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Max
	Min
)

func (op Op) apply(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mpi: reduce length mismatch: %d vs %d", len(dst), len(src)))
	}
	switch op {
	case Sum:
		for i, v := range src {
			dst[i] += v
		}
	case Max:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case Min:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		panic(fmt.Sprintf("mpi: unknown reduction op %d", op))
	}
}

// Barrier blocks until every rank in the communicator has entered it.
// Implemented with the dissemination algorithm: ceil(log2 p) rounds of
// pairwise messages, so its virtual cost scales as the real thing does.
func (c *Comm) Barrier() {
	if c.world.fastColl {
		c.rendezvous(collBarrier, 0, Sum, nil)
		return
	}
	defer c.proc.pushOp("barrier")()
	p := c.Size()
	for k := 1; k < p; k *= 2 {
		to := (c.rank + k) % p
		from := (c.rank - k + p) % p
		c.sendRaw(to, tagCollective, nil)
		c.recvRaw(from, tagCollective)
	}
}

// Bcast distributes root's data to every rank using a binomial tree and
// returns each rank's copy. Non-root callers may pass nil.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	if c.world.fastColl {
		return c.rendezvous(collBcast, root, Sum, data)
	}
	defer c.proc.pushOp("bcast")()
	p := c.Size()
	if p == 1 {
		return data
	}
	// Work in a rotated space where the root is rank 0 (MPICH binomial).
	vrank := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % p
			data, _, _ = c.Recv(parent, tagCollective)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank+mask < p {
			child := (vrank + mask + root) % p
			c.Send(child, tagCollective, data)
		}
	}
	return data
}

// Reduce combines data element-wise across ranks with op, delivering the
// result at root (nil elsewhere). Binomial-tree reduction.
func (c *Comm) Reduce(root int, data []float64, op Op) []float64 {
	defer c.proc.pushOp("reduce")()
	p := c.Size()
	acc := make([]float64, len(data))
	copy(acc, data)
	if p == 1 {
		if c.rank == root {
			return acc
		}
		return nil
	}
	vrank := (c.rank - root + p) % p
	for k := 1; k < p; k *= 2 {
		if vrank&k != 0 {
			parent := ((vrank &^ k) + root) % p
			c.Send(parent, tagCollective, acc)
			return nil
		}
		childV := vrank | k
		if childV < p {
			child, _, _ := c.Recv((childV+root)%p, tagCollective)
			op.apply(acc, child)
		}
	}
	return acc
}

// Allreduce combines data element-wise across all ranks with op and
// returns the result on every rank. Uses recursive doubling, with a fold
// step for non-power-of-two sizes (the MPICH algorithm family).
func (c *Comm) Allreduce(data []float64, op Op) []float64 {
	if c.world.fastColl {
		return c.rendezvous(collAllreduce, 0, op, data)
	}
	defer c.proc.pushOp("allreduce")()
	p := c.Size()
	acc := make([]float64, len(data))
	copy(acc, data)
	if p == 1 {
		return acc
	}
	// pow2 is the largest power of two <= p.
	pow2 := 1
	for pow2*2 <= p {
		pow2 *= 2
	}
	extra := p - pow2
	// Fold: ranks >= pow2 send their data to rank-pow2 and wait for result.
	if c.rank >= pow2 {
		c.Send(c.rank-pow2, tagCollective, acc)
		res, _, _ := c.Recv(c.rank-pow2, tagCollective)
		return res
	}
	if c.rank < extra {
		d, _, _ := c.Recv(c.rank+pow2, tagCollective)
		op.apply(acc, d)
	}
	// Recursive doubling among the first pow2 ranks.
	for k := 1; k < pow2; k *= 2 {
		partner := c.rank ^ k
		c.Send(partner, tagCollective, acc)
		d, _, _ := c.Recv(partner, tagCollective)
		op.apply(acc, d)
	}
	// Unfold: return results to the extra ranks.
	if c.rank < extra {
		c.Send(c.rank+pow2, tagCollective, acc)
	}
	return acc
}

// AllreduceScalar reduces a single float64 across all ranks.
func (c *Comm) AllreduceScalar(x float64, op Op) float64 {
	return c.Allreduce([]float64{x}, op)[0]
}

// AllreduceInt reduces a single int across all ranks.
func (c *Comm) AllreduceInt(x int, op Op) int {
	return int(c.AllreduceScalar(float64(x), op))
}

// Gather collects each rank's slice at root, returned as one slice per
// source rank in rank order (nil on non-roots). Linear gather; payload
// sizes may differ per rank.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	defer c.proc.pushOp("gather")()
	p := c.Size()
	if c.rank != root {
		c.Send(root, tagCollective, data)
		return nil
	}
	out := make([][]float64, p)
	for r := 0; r < p; r++ {
		if r == root {
			cp := make([]float64, len(data))
			copy(cp, data)
			out[r] = cp
			continue
		}
		d, _, _ := c.Recv(r, tagCollective)
		out[r] = d
	}
	return out
}

// GatherInts collects each rank's int slice at root.
func (c *Comm) GatherInts(root int, data []int) [][]int {
	defer c.proc.pushOp("gather")()
	p := c.Size()
	if c.rank != root {
		c.SendInts(root, tagCollective, data)
		return nil
	}
	out := make([][]int, p)
	for r := 0; r < p; r++ {
		if r == root {
			cp := make([]int, len(data))
			copy(cp, data)
			out[r] = cp
			continue
		}
		d, _, _ := c.RecvInts(r, tagCollective)
		out[r] = d
	}
	return out
}

// Allgather collects every rank's slice on every rank, returned in rank
// order. Bruck's algorithm: ceil(log2 p) rounds with doubling block
// counts — the MPICH choice for small payloads, and what keeps the
// virtual (and host) cost logarithmic at the paper's 10,000+ rank scale.
// Blocks may have different lengths per rank.
func (c *Comm) Allgather(data []float64) [][]float64 {
	defer c.proc.pushOp("allgather")()
	p := c.Size()
	// blocks[i] holds the block of rank (c.rank + i) % p once filled.
	blocks := make([][]float64, 1, p)
	cp := make([]float64, len(data))
	copy(cp, data)
	blocks[0] = cp
	for k := 1; k < p; k *= 2 {
		cnt := k
		if p-k < cnt {
			cnt = p - k
		}
		// Pack the first cnt blocks into one message with a length header.
		buf := packBlocks(blocks[:cnt])
		to := (c.rank - k + p) % p
		from := (c.rank + k) % p
		c.Send(to, tagCollective, buf)
		d, _, _ := c.Recv(from, tagCollective)
		blocks = append(blocks, unpackBlocks(d)...)
	}
	out := make([][]float64, p)
	for i, b := range blocks {
		out[(c.rank+i)%p] = b
	}
	return out
}

// packBlocks concatenates blocks with length headers.
func packBlocks(blocks [][]float64) []float64 {
	total := 1
	for _, b := range blocks {
		total += 1 + len(b)
	}
	buf := make([]float64, 0, total)
	buf = append(buf, float64(len(blocks)))
	for _, b := range blocks {
		buf = append(buf, float64(len(b)))
		buf = append(buf, b...)
	}
	return buf
}

func unpackBlocks(buf []float64) [][]float64 {
	n := int(buf[0])
	out := make([][]float64, 0, n)
	pos := 1
	for i := 0; i < n; i++ {
		l := int(buf[pos])
		pos++
		out = append(out, buf[pos:pos+l:pos+l])
		pos += l
	}
	return out
}

// AllgatherInts collects every rank's int slice on every rank (Bruck).
func (c *Comm) AllgatherInts(data []int) [][]int {
	defer c.proc.pushOp("allgather")()
	p := c.Size()
	blocks := make([][]int, 1, p)
	cp := make([]int, len(data))
	copy(cp, data)
	blocks[0] = cp
	for k := 1; k < p; k *= 2 {
		cnt := k
		if p-k < cnt {
			cnt = p - k
		}
		total := 1
		for _, b := range blocks[:cnt] {
			total += 1 + len(b)
		}
		buf := make([]int, 0, total)
		buf = append(buf, cnt)
		for _, b := range blocks[:cnt] {
			buf = append(buf, len(b))
			buf = append(buf, b...)
		}
		to := (c.rank - k + p) % p
		from := (c.rank + k) % p
		c.SendInts(to, tagCollective, buf)
		d, _, _ := c.RecvInts(from, tagCollective)
		n := d[0]
		pos := 1
		for i := 0; i < n; i++ {
			l := d[pos]
			pos++
			blocks = append(blocks, d[pos:pos+l:pos+l])
			pos += l
		}
	}
	out := make([][]int, p)
	for i, b := range blocks {
		out[(c.rank+i)%p] = b
	}
	return out
}

// Alltoallv exchanges send[i] to rank i from every rank, returning the
// slice received from each rank. Pairwise-exchange schedule: p-1 steps,
// step s pairing rank with rank+s and rank-s.
func (c *Comm) Alltoallv(send [][]float64) [][]float64 {
	defer c.proc.pushOp("alltoallv")()
	p := c.Size()
	if len(send) != p {
		panic(fmt.Sprintf("mpi: Alltoallv needs %d send buffers, got %d", p, len(send)))
	}
	out := make([][]float64, p)
	cp := make([]float64, len(send[c.rank]))
	copy(cp, send[c.rank])
	out[c.rank] = cp
	for step := 1; step < p; step++ {
		to := (c.rank + step) % p
		from := (c.rank - step + p) % p
		c.Send(to, tagCollective, send[to])
		d, _, _ := c.Recv(from, tagCollective)
		out[from] = d
	}
	return out
}

// AlltoallvInts is Alltoallv for int payloads.
func (c *Comm) AlltoallvInts(send [][]int) [][]int {
	defer c.proc.pushOp("alltoallv")()
	p := c.Size()
	if len(send) != p {
		panic(fmt.Sprintf("mpi: AlltoallvInts needs %d send buffers, got %d", p, len(send)))
	}
	out := make([][]int, p)
	cp := make([]int, len(send[c.rank]))
	copy(cp, send[c.rank])
	out[c.rank] = cp
	for step := 1; step < p; step++ {
		to := (c.rank + step) % p
		from := (c.rank - step + p) % p
		c.SendInts(to, tagCollective, send[to])
		d, _, _ := c.RecvInts(from, tagCollective)
		out[from] = d
	}
	return out
}

// Scatter distributes parts[i] from root to rank i (linear). Every rank
// returns its own part; non-root callers pass nil parts.
func (c *Comm) Scatter(root int, parts [][]float64) []float64 {
	defer c.proc.pushOp("scatter")()
	p := c.Size()
	if c.rank == root {
		if len(parts) != p {
			panic(fmt.Sprintf("mpi: Scatter needs %d parts, got %d", p, len(parts)))
		}
		for r := 0; r < p; r++ {
			if r != root {
				c.Send(r, tagCollective, parts[r])
			}
		}
		cp := make([]float64, len(parts[root]))
		copy(cp, parts[root])
		return cp
	}
	d, _, _ := c.Recv(root, tagCollective)
	return d
}

// ExscanSum returns the exclusive prefix sum of x across ranks (rank 0
// gets 0). Linear chain; used for global numbering.
func (c *Comm) ExscanSum(x float64) float64 {
	defer c.proc.pushOp("exscan")()
	p := c.Size()
	acc := 0.0
	if c.rank > 0 {
		d, _, _ := c.Recv(c.rank-1, tagCollective)
		acc = d[0]
	}
	if c.rank < p-1 {
		c.Send(c.rank+1, tagCollective, []float64{acc + x})
	}
	return acc
}
