package mpi

import (
	"fmt"
	"math"
	"testing"
)

// sizes exercises power-of-two and awkward communicator sizes.
var sizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 33}

func TestBarrierCompletes(t *testing.T) {
	for _, p := range sizes {
		run(t, p, func(c *Comm) error {
			c.Barrier()
			c.Barrier()
			return nil
		})
	}
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, p := range sizes {
		for root := 0; root < p; root += max(1, p/3) {
			rt := root
			run(t, p, func(c *Comm) error {
				var in []float64
				if c.Rank() == rt {
					in = []float64{3.14, float64(rt)}
				}
				out := c.Bcast(rt, in)
				if len(out) != 2 || out[0] != 3.14 || out[1] != float64(rt) {
					return fmt.Errorf("p=%d root=%d rank=%d got %v", p, rt, c.Rank(), out)
				}
				return nil
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range sizes {
		pp := p
		run(t, p, func(c *Comm) error {
			res := c.Reduce(0, []float64{float64(c.Rank()), 1}, Sum)
			if c.Rank() == 0 {
				want := float64(pp*(pp-1)) / 2
				if res[0] != want || res[1] != float64(pp) {
					return fmt.Errorf("p=%d reduce got %v, want [%v %v]", pp, res, want, pp)
				}
			} else if res != nil {
				return fmt.Errorf("non-root got non-nil reduce result")
			}
			return nil
		})
	}
}

func TestReduceNonZeroRoot(t *testing.T) {
	run(t, 5, func(c *Comm) error {
		res := c.Reduce(3, []float64{1}, Sum)
		if c.Rank() == 3 && res[0] != 5 {
			return fmt.Errorf("reduce at root 3 got %v", res)
		}
		return nil
	})
}

func TestAllreduceOps(t *testing.T) {
	for _, p := range sizes {
		pp := p
		run(t, p, func(c *Comm) error {
			x := float64(c.Rank())
			if got := c.AllreduceScalar(x, Sum); got != float64(pp*(pp-1))/2 {
				return fmt.Errorf("sum got %v", got)
			}
			if got := c.AllreduceScalar(x, Max); got != float64(pp-1) {
				return fmt.Errorf("max got %v", got)
			}
			if got := c.AllreduceScalar(x, Min); got != 0 {
				return fmt.Errorf("min got %v", got)
			}
			if got := c.AllreduceInt(2, Sum); got != 2*pp {
				return fmt.Errorf("int sum got %v", got)
			}
			return nil
		})
	}
}

func TestAllreduceVector(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		v := []float64{float64(c.Rank()), -float64(c.Rank()), 1}
		got := c.Allreduce(v, Sum)
		if got[0] != 15 || got[1] != -15 || got[2] != 6 {
			return fmt.Errorf("vector allreduce got %v", got)
		}
		// Input must be untouched.
		if v[2] != 1 {
			return fmt.Errorf("allreduce mutated input")
		}
		return nil
	})
}

func TestGatherVariableLengths(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		mine := make([]float64, c.Rank()+1)
		for i := range mine {
			mine[i] = float64(c.Rank())
		}
		all := c.Gather(2, mine)
		if c.Rank() != 2 {
			if all != nil {
				return fmt.Errorf("non-root gather result non-nil")
			}
			return nil
		}
		for r, d := range all {
			if len(d) != r+1 || (len(d) > 0 && d[0] != float64(r)) {
				return fmt.Errorf("gather slot %d = %v", r, d)
			}
		}
		return nil
	})
}

func TestGatherInts(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		all := c.GatherInts(0, []int{c.Rank() * 10})
		if c.Rank() == 0 {
			for r, d := range all {
				if d[0] != r*10 {
					return fmt.Errorf("gatherints slot %d = %v", r, d)
				}
			}
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		run(t, p, func(c *Comm) error {
			all := c.Allgather([]float64{float64(c.Rank() * c.Rank())})
			for r, d := range all {
				if len(d) != 1 || d[0] != float64(r*r) {
					return fmt.Errorf("allgather slot %d = %v", r, d)
				}
			}
			return nil
		})
	}
}

func TestAllgatherInts(t *testing.T) {
	run(t, 7, func(c *Comm) error {
		all := c.AllgatherInts([]int{c.Rank(), c.Rank() + 1})
		for r, d := range all {
			if d[0] != r || d[1] != r+1 {
				return fmt.Errorf("allgatherints slot %d = %v", r, d)
			}
		}
		return nil
	})
}

func TestAlltoallv(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		send := make([][]float64, 4)
		for i := range send {
			send[i] = []float64{float64(c.Rank()*100 + i)}
		}
		recv := c.Alltoallv(send)
		for r, d := range recv {
			want := float64(r*100 + c.Rank())
			if d[0] != want {
				return fmt.Errorf("alltoallv from %d = %v, want %v", r, d, want)
			}
		}
		return nil
	})
}

func TestScatter(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		var parts [][]float64
		if c.Rank() == 1 {
			parts = [][]float64{{0}, {10}, {20}, {30}}
		}
		mine := c.Scatter(1, parts)
		if mine[0] != float64(10*c.Rank()) {
			return fmt.Errorf("scatter got %v", mine)
		}
		return nil
	})
}

func TestExscanSum(t *testing.T) {
	run(t, 5, func(c *Comm) error {
		got := c.ExscanSum(float64(c.Rank() + 1))
		// exclusive prefix of 1,2,3,4,5: 0,1,3,6,10
		want := float64(c.Rank() * (c.Rank() + 1) / 2)
		if got != want {
			return fmt.Errorf("exscan rank %d = %v, want %v", c.Rank(), got, want)
		}
		return nil
	})
}

func TestCollectiveVirtualCostGrowsWithRanks(t *testing.T) {
	cost := func(p int) float64 {
		st := run(t, p, func(c *Comm) error {
			c.Allreduce(make([]float64, 1024), Sum)
			return nil
		})
		return st.Elapsed
	}
	if !(cost(64) > cost(4)) {
		t.Error("allreduce on 64 ranks should cost more virtual time than on 4")
	}
}

func TestSplitByParity(t *testing.T) {
	run(t, 9, func(c *Comm) error {
		sub := c.Split(c.Rank()%2, c.Rank())
		wantSize := 5
		if c.Rank()%2 == 1 {
			wantSize = 4
		}
		if sub.Size() != wantSize {
			return fmt.Errorf("sub size = %d, want %d", sub.Size(), wantSize)
		}
		if sub.Rank() != c.Rank()/2 {
			return fmt.Errorf("sub rank = %d, want %d", sub.Rank(), c.Rank()/2)
		}
		// Collective on the sub-communicator only sums members.
		sum := sub.AllreduceScalar(1, Sum)
		if int(sum) != wantSize {
			return fmt.Errorf("sub allreduce = %v, want %d", sum, wantSize)
		}
		return nil
	})
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		// Reverse order via key.
		sub := c.Split(0, -c.Rank())
		if sub.Rank() != 3-c.Rank() {
			return fmt.Errorf("key ordering wrong: world %d -> sub %d", c.Rank(), sub.Rank())
		}
		return nil
	})
}

func TestSplitUndefinedOptsOut(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, c.Rank())
		if c.Rank() == 3 {
			if sub != nil {
				return fmt.Errorf("opted-out rank got a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size = %d, want 3", sub.Size())
		}
		sub.Barrier()
		return nil
	})
}

func TestSplitIsolatesContexts(t *testing.T) {
	// Messages on a sub-communicator must not be visible to the parent.
	run(t, 4, func(c *Comm) error {
		sub := c.Split(c.Rank()/2, c.Rank())
		if sub.Rank() == 0 {
			sub.Send(1, 0, []float64{float64(c.Rank())})
		} else {
			d, _, _ := sub.Recv(0, 0)
			want := float64(c.Rank() - 1)
			if d[0] != want {
				return fmt.Errorf("cross-context leak: got %v, want %v", d, want)
			}
		}
		return nil
	})
}

func TestDupSeparatesTraffic(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		dup := c.Dup()
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1})
			dup.Send(1, 0, []float64{2})
		} else {
			d2, _, _ := dup.Recv(0, 0)
			d1, _, _ := c.Recv(0, 0)
			if d1[0] != 1 || d2[0] != 2 {
				return fmt.Errorf("dup traffic mixed: %v %v", d1, d2)
			}
		}
		return nil
	})
}

func TestTranslate(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		sub := c.Split(c.Rank()%2, c.Rank())
		// sub rank 0 of even group is world rank 0.
		if c.Rank()%2 == 0 {
			if got := c.Translate(sub, 0); got != 0 {
				return fmt.Errorf("translate sub 0 -> world %d, want 0", got)
			}
		} else {
			if got := c.Translate(sub, 1); got != 3 {
				return fmt.Errorf("translate odd-sub 1 -> world %d, want 3", got)
			}
		}
		return nil
	})
}

func TestNestedSplit(t *testing.T) {
	run(t, 8, func(c *Comm) error {
		half := c.Split(c.Rank()/4, c.Rank())
		quarter := half.Split(half.Rank()/2, half.Rank())
		if quarter.Size() != 2 {
			return fmt.Errorf("nested split size = %d, want 2", quarter.Size())
		}
		sum := quarter.AllreduceScalar(float64(c.Rank()), Sum)
		// Partners are consecutive world ranks 2k,2k+1.
		base := (c.Rank() / 2) * 2
		if sum != float64(base+base+1) {
			return fmt.Errorf("nested split wrong members: sum %v", sum)
		}
		return nil
	})
}

func TestIsendIrecvWaitAll(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		p := c.Size()
		next, prev := (c.Rank()+1)%p, (c.Rank()-1+p)%p
		s := c.Isend(next, 1, []float64{float64(c.Rank())})
		r := c.Irecv(prev, 1)
		WaitAll(s, r, nil)
		if got := r.Wait(); got[0] != float64(prev) {
			return fmt.Errorf("irecv got %v, want %d", got, prev)
		}
		return nil
	})
}

func TestHaloExchange(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		p := c.Size()
		nbs := []int{(c.Rank() + 1) % p, (c.Rank() - 1 + p) % p}
		bufs := [][]float64{{float64(c.Rank())}, {float64(c.Rank())}}
		got := c.HaloExchange(2, nbs, bufs)
		if got[0][0] != float64(nbs[0]) || got[1][0] != float64(nbs[1]) {
			return fmt.Errorf("halo exchange got %v", got)
		}
		return nil
	})
}

func TestHaloExchangeMismatchPanics(t *testing.T) {
	_, err := Run(2, testCfg(), func(c *Comm) error {
		c.HaloExchange(0, []int{0}, nil)
		return nil
	})
	if err == nil {
		t.Fatal("mismatched halo exchange did not fail")
	}
}

func TestReduceMaxMinVector(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		got := c.Allreduce([]float64{float64(c.Rank()), float64(-c.Rank())}, Max)
		if got[0] != 3 || got[1] != 0 {
			return fmt.Errorf("vector max = %v", got)
		}
		got = c.Allreduce([]float64{float64(c.Rank())}, Min)
		if got[0] != 0 {
			return fmt.Errorf("vector min = %v", got)
		}
		return nil
	})
}

func TestBcastPreservesValuesAcrossVirtualTimeSkew(t *testing.T) {
	// Ranks start with very different clocks; bcast must still deliver and
	// leave every clock at least at the root's send time.
	run(t, 6, func(c *Comm) error {
		c.ComputeSeconds(float64(c.Rank()) * 0.1)
		out := c.Bcast(5, []float64{9})
		if out[0] != 9 {
			return fmt.Errorf("bcast value lost")
		}
		if c.Clock() < 0.5-1e-9 {
			return fmt.Errorf("clock %v below root's send time", c.Clock())
		}
		return nil
	})
}

func TestAllreduceAssociativityProperty(t *testing.T) {
	// Sum over ranks must equal the analytic total regardless of p.
	for p := 1; p <= 17; p += 4 {
		pp := p
		run(t, p, func(c *Comm) error {
			x := math.Sqrt(float64(c.Rank() + 1))
			got := c.AllreduceScalar(x, Sum)
			want := 0.0
			for i := 1; i <= pp; i++ {
				want += math.Sqrt(float64(i))
			}
			if math.Abs(got-want) > 1e-9 {
				return fmt.Errorf("p=%d sum=%v want %v", pp, got, want)
			}
			return nil
		})
	}
}
