// Event-driven executor (Config.EventDriven). One host goroutine drives
// every simulated rank as a resumable coroutine (iter.Pull): a blocking
// operation parks the rank on its wait condition and yields back to the
// loop, which resumes whichever rank the next virtual-time event makes
// runnable. The hot path takes no locks and signals no condition
// variables — delivery appends to the receiver's mailbox FIFO and, when
// the receiver is parked on a matching pattern, pushes one entry onto
// the event heap. The only cross-thread traffic is the atomic abort
// flag, set by the watchdog/cancel watchers and polled by the loop
// between resumes; all wakeups happen on the loop thread.
//
// Scheduling order is pure policy, not semantics: per-rank clocks depend
// only on each rank's program order and on sender-stamped arrival times,
// so any deterministic resume order yields clocks, Stats, traces and
// metric series bitwise identical to the goroutine runtime's
// (event_test.go enforces this differentially). Two queues implement
// that policy: a min-(time, rank) binary heap for singleton wakeups
// (message arrivals, startup, death re-probes) and a FIFO cohort ring
// for station completions, which resume all members of a finished
// collective in rank order without churning the heap.
//
//lint:eventdriven
package mpi

import (
	"fmt"
	"iter"

	"cpx/internal/fault"
)

// evState is one rank's scheduling state.
type evState uint8

const (
	evRunnable evState = iota
	evRunning
	evParkedRecv // blocked in take; wait pattern in want*
	evParkedColl // parked at a fast-collective station
	evDone
)

// evRank is one rank's coroutine handle plus scheduling state.
//
// Queue invariant: a rank has at most one live entry across the heap and
// the cohort ring. Wakeups are only issued for parked ranks, a parked
// rank is never queued (it was dequeued before it ran and parked), and a
// queued rank is evRunnable until the loop pops and runs it.
type evRank struct {
	state  evState
	resume func() (struct{}, bool)
	stop   func()
	yield  func(struct{}) bool
	// Receive wait pattern, valid while state == evParkedRecv.
	wantCtx, wantSrc, wantTag int
}

// park yields the rank's coroutine back to the loop with the given
// parked state. It returns when the loop resumes the rank; if the
// executor is tearing down instead (yield reports the consumer is gone),
// the rank unwinds through the standard abort path.
func (er *evRank) park(state evState) {
	er.state = state
	if !er.yield(struct{}{}) {
		panic(errAborted)
	}
}

// growStack forces a fresh coroutine's stack past the runtime's initial
// segment in one shot, while only a couple of tiny frames are live: a
// single oversized frame makes newstack size the stack once (doubling
// until the frame fits) and copystack move a few hundred bytes, instead
// of two or three incremental growths firing mid-run under every rank's
// first deep rendezvous call chain — at 512+ ranks those growths are a
// measurable slice of a whole run.
//
//go:noinline
func growStack(n int) byte {
	var pad [3 << 10]byte
	pad[0] = byte(n)
	return pad[n]
}

// evItem is one event-heap entry: resume rank at virtual time t.
type evItem struct {
	t    float64
	rank int32
}

func (it evItem) before(o evItem) bool {
	if it.t != o.t {
		return it.t < o.t
	}
	return it.rank < o.rank
}

// eventLoop is the executor state: the rank coroutines and the two ready
// queues.
type eventLoop struct {
	w     *World
	ranks []evRank
	heap  []evItem // min-(t, rank) heap: singleton wakeups
	// cohort is the FIFO ring of station-completion wakeups, drained
	// before the heap so a finished collective's members resume in rank
	// order without p heap operations per collective.
	cohort     []int32
	cohortHead int
	live       int
}

func newEventLoop(w *World, size int) *eventLoop {
	return &eventLoop{w: w, ranks: make([]evRank, size)}
}

// run drives every rank coroutine to completion on the calling
// goroutine. errs is the per-rank outcome slice shared with Run.
func (ev *eventLoop) run(fn func(*Comm) error, errs []error) {
	w := ev.w
	for r := range ev.ranks {
		rank := r
		er := &ev.ranks[r]
		er.resume, er.stop = iter.Pull(func(yield func(struct{}) bool) {
			er.yield = yield
			growStack(6)
			w.rankBody(rank, fn, errs)
		})
		// Seed the heap directly: all ranks start at t=0 in rank order,
		// which is already a valid min-heap layout.
		ev.heap = append(ev.heap, evItem{0, int32(rank)})
	}
	ev.live = len(ev.ranks)
	abortDrained := false
	for ev.live > 0 {
		if w.aborted() && !abortDrained {
			// Wake every parked rank exactly once so it observes the abort
			// and unwinds; post-abort, blocking sites panic before parking
			// again, so one drain suffices.
			abortDrained = true
			ev.wakeAllParked()
		}
		rank, ok := ev.next()
		if !ok {
			// Live ranks remain but none is runnable and no event is
			// pending: no future wakeup can exist, so the program is
			// deadlocked. The goroutine runtime would stall here until the
			// watchdog fires; the event loop can prove the condition and
			// fail immediately.
			w.fail(ev.deadlockError())
			continue
		}
		er := &ev.ranks[rank]
		er.state = evRunning
		if _, more := er.resume(); !more {
			er.state = evDone
			ev.live--
		}
	}
	for r := range ev.ranks {
		ev.ranks[r].stop()
	}
}

// next pops the next runnable rank: cohort FIFO first, then the heap.
func (ev *eventLoop) next() (int, bool) {
	for ev.cohortHead < len(ev.cohort) {
		r := ev.cohort[ev.cohortHead]
		ev.cohortHead++
		if ev.cohortHead == len(ev.cohort) {
			ev.cohort = ev.cohort[:0]
			ev.cohortHead = 0
		}
		if ev.ranks[r].state == evRunnable {
			return int(r), true
		}
	}
	for len(ev.heap) > 0 {
		r := ev.popHeap()
		if ev.ranks[r].state == evRunnable {
			return int(r), true
		}
	}
	return 0, false
}

// wake marks a parked rank runnable at virtual time t via the heap.
func (ev *eventLoop) wake(rank int32, t float64) {
	ev.ranks[rank].state = evRunnable
	ev.pushHeap(t, rank)
}

// wakeCohort marks a parked rank runnable via the FIFO ring.
func (ev *eventLoop) wakeCohort(rank int32) {
	ev.ranks[rank].state = evRunnable
	ev.cohort = append(ev.cohort, rank)
}

// wakeRecvParked re-probes every receive-blocked rank after a death
// record, mirroring the goroutine runtime's mailbox interrupt broadcast.
func (ev *eventLoop) wakeRecvParked() {
	for r := range ev.ranks {
		if ev.ranks[r].state == evParkedRecv {
			ev.wake(int32(r), ev.w.procs[r].clock)
		}
	}
}

// wakeAllParked wakes every parked rank (abort drain).
func (ev *eventLoop) wakeAllParked() {
	for r := range ev.ranks {
		if s := ev.ranks[r].state; s == evParkedRecv || s == evParkedColl {
			ev.wake(int32(r), ev.w.procs[r].clock)
		}
	}
}

// deliver appends a message to the destination mailbox and wakes the
// receiver if it is parked on a matching pattern. Runs on the loop
// thread (inside the sending rank's resume), so no locking is needed.
func (ev *eventLoop) deliver(dst int, m *message) {
	ev.w.boxes[dst].putDirect(m)
	er := &ev.ranks[dst]
	if er.state == evParkedRecv && m.ctx == er.wantCtx && match(er.wantSrc, er.wantTag, m) {
		ev.wake(int32(dst), m.arrival)
	}
}

// take is the event-mode blocking receive: drain the mailbox, probe
// failure detection, then park on the wait pattern until a matching
// delivery (or a death record, or an abort) wakes the rank.
func (ev *eventLoop) take(rank, ctx, src, tag int, deadCheck func() *fault.RankFailure) (*message, *fault.RankFailure) {
	b := ev.w.boxes[rank]
	er := &ev.ranks[rank]
	for {
		if m := b.tryTake(ctx, src, tag); m != nil {
			return m, nil
		}
		if ev.w.aborted() {
			panic(errAborted)
		}
		if deadCheck != nil {
			if rf := deadCheck(); rf != nil {
				return nil, rf
			}
		}
		er.wantCtx, er.wantSrc, er.wantTag = ctx, src, tag
		er.park(evParkedRecv)
	}
}

// deadlockError describes the stuck wait set.
func (ev *eventLoop) deadlockError() error {
	recv, coll := 0, 0
	for r := range ev.ranks {
		switch ev.ranks[r].state {
		case evParkedRecv:
			recv++
		case evParkedColl:
			coll++
		}
	}
	return fmt.Errorf("mpi: deadlock: %d rank(s) blocked in receives and %d in collectives with no pending event", recv, coll)
}

// ---- event heap ------------------------------------------------------------

// pushHeap inserts a wakeup into the time-ordered event heap. The heap's
// backing array is sized once at loop start and reused run-long.
//
//perf:hotpath
func (ev *eventLoop) pushHeap(t float64, rank int32) {
	h := append(ev.heap, evItem{t, rank}) //lint:allow hotalloc amortised growth on the run-long heap array
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !h[i].before(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	ev.heap = h
}

// popHeap removes and returns the rank with the earliest wakeup.
//
//perf:hotpath
func (ev *eventLoop) popHeap() int32 {
	h := ev.heap
	top := h[0].rank
	n := len(h) - 1
	h[0] = h[n]
	h[n] = evItem{}
	h = h[:n]
	ev.heap = h
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].before(h[l]) {
			m = r
		}
		if !h[m].before(h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}
