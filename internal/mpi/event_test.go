package mpi

import (
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"cpx/internal/cluster"
	"cpx/internal/fault"
)

func evCfg(base Config) Config {
	base.EventDriven = true
	return base
}

// TestEventDrivenBitwiseIdentical is the executor acceptance test: the
// discrete-event executor must reproduce the goroutine runtime's
// per-rank clocks, accounting and results bit for bit, on both the
// message-level and the analytic-collective paths, including
// non-power-of-two sizes and Split subcommunicators.
func TestEventDrivenBitwiseIdentical(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13, 16} {
		for _, base := range []Config{testCfg(), fastCfg()} {
			label := "event vs goroutine"
			if base.FastCollectives {
				label += " (fastcoll)"
			}
			gor, gorSums := runMixed(t, p, base)
			ev, evSums := runMixed(t, p, evCfg(base))
			assertStatsIdentical(t, label, gor, ev, gorSums, evSums)
		}
	}
}

// TestEventDrivenTraceIdentical: with tracing on (which forces
// message-level collectives), the event executor must produce identical
// timelines, comm matrices and run summaries — per-rank event order is
// program order, not host scheduling order, under either executor.
func TestEventDrivenTraceIdentical(t *testing.T) {
	const p = 8
	base := testCfg()
	base.Trace = true
	gor, gorSums := runMixed(t, p, base)
	ev, evSums := runMixed(t, p, evCfg(base))
	assertStatsIdentical(t, "trace event vs goroutine", gor, ev, gorSums, evSums)
	for r := range gor.Timelines {
		if !reflect.DeepEqual(gor.Timelines[r], ev.Timelines[r]) {
			t.Errorf("rank %d timeline differs between executors", r)
		}
		if !reflect.DeepEqual(gor.Profiles[r], ev.Profiles[r]) {
			t.Errorf("rank %d profile differs between executors", r)
		}
	}
	if !reflect.DeepEqual(gor.CommMatrix, ev.CommMatrix) {
		t.Error("comm matrix differs between executors")
	}
	if a, b := traceSummaryJSON(t, gor), traceSummaryJSON(t, ev); a != b {
		t.Errorf("run summaries differ:\ngoroutine: %s\nevent:     %s", a, b)
	}
}

// TestEventDrivenMetricsIdentical: the virtual-time metrics series is a
// pure function of the charges, so the executors must sample identical
// series — on the message-level path and on the analytic fast path
// (where sampling disables the bare replay but not the stations).
func TestEventDrivenMetricsIdentical(t *testing.T) {
	const p = 8
	for _, base := range []Config{testCfg(), fastCfg()} {
		cfg := metricsCfg(base)
		gor, gorSums := runMixed(t, p, cfg)
		ev, evSums := runMixed(t, p, evCfg(cfg))
		assertStatsIdentical(t, "metrics event vs goroutine", gor, ev, gorSums, evSums)
		if !reflect.DeepEqual(gor.Metrics, ev.Metrics) {
			t.Errorf("metric series differ between executors (fastcoll=%v)", base.FastCollectives)
		}
	}
}

// TestEventDrivenProfileIdentical covers the analytic path with
// profiling on: profiles are per-charge observers, so they force the
// observed (non-bare) replay under both executors.
func TestEventDrivenProfileIdentical(t *testing.T) {
	prog := func(c *Comm) error {
		c.Profile().Push("solve")
		c.ComputeSeconds(1e-4 * float64(c.Rank()+1))
		c.Allreduce([]float64{1, 2}, Sum)
		c.Barrier()
		c.Profile().Pop()
		return nil
	}
	cfg := fastCfg()
	cfg.Profile = true
	gor, err := Run(6, cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Run(6, evCfg(cfg), prog)
	if err != nil {
		t.Fatal(err)
	}
	for r := range gor.Profiles {
		ge, ee := gor.Profiles[r].Entry("solve"), ev.Profiles[r].Entry("solve")
		if ge.Comm != ee.Comm || ge.Compute != ee.Compute {
			t.Errorf("rank %d profile: goroutine %+v event %+v", r, ge, ee)
		}
	}
}

// TestEventDrivenFaultRunsIdentical: under a fault plan the executors
// must agree on every clock, every detection and the flight-recorder
// tails — deaths, detections and cascades are virtual-time facts, not
// host-scheduling ones.
func TestEventDrivenFaultRunsIdentical(t *testing.T) {
	plan, err := fault.NewPlan(fault.Spec{
		Seed: 11, Ranks: 6, Horizon: 2, MTBF: 0.8,
		StragglerEvery: 0.5, LinkEvery: 0.7, Machine: cluster.SmallCluster(),
	})
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Comm) error {
		for i := 0; i < 20; i++ {
			c.ComputeSeconds(0.01)
			c.Send((c.Rank()+1)%c.Size(), 1, []float64{float64(i)})
			c.Recv((c.Rank()+c.Size()-1)%c.Size(), 1)
		}
		return nil
	}
	gor, errG := Run(6, faultCfg(plan), prog)
	ev, errE := Run(6, evCfg(faultCfg(plan)), prog)
	if (errG == nil) != (errE == nil) {
		t.Fatalf("outcomes differ: goroutine %v vs event %v", errG, errE)
	}
	for r := range gor.Clocks {
		if gor.Clocks[r] != ev.Clocks[r] || gor.Compute[r] != ev.Compute[r] || gor.Comm[r] != ev.Comm[r] {
			t.Errorf("rank %d accounting differs: clock %v/%v compute %v/%v comm %v/%v", r,
				gor.Clocks[r], ev.Clocks[r], gor.Compute[r], ev.Compute[r], gor.Comm[r], ev.Comm[r])
		}
	}
	var rfG, rfE *fault.RanksFailed
	if errors.As(errG, &rfG) != errors.As(errE, &rfE) {
		t.Fatalf("failure reports differ in kind: %v vs %v", errG, errE)
	}
	if rfG != nil && !reflect.DeepEqual(rfG, rfE) {
		t.Errorf("failure reports differ:\ngoroutine: %+v\nevent:     %+v", rfG, rfE)
	}
	if !reflect.DeepEqual(gor.Flight, ev.Flight) {
		t.Errorf("flight tails differ:\ngoroutine: %+v\nevent:     %+v", gor.Flight, ev.Flight)
	}
}

// TestEventDrivenCheckpointSyncIdentical: CheckpointSync (the
// checkpoint/restart clock coordination) must align clocks to the same
// bit pattern under both executors, with and without fast collectives.
func TestEventDrivenCheckpointSyncIdentical(t *testing.T) {
	prog := func(out []float64) func(c *Comm) error {
		return func(c *Comm) error {
			c.ComputeSeconds(0.01 * float64(c.Rank()+1))
			out[c.Rank()] = c.CheckpointSync(0.002)
			c.ComputeSeconds(0.005)
			return nil
		}
	}
	for _, base := range []Config{testCfg(), fastCfg()} {
		gorT := make([]float64, 5)
		evT := make([]float64, 5)
		gor, err := Run(5, base, prog(gorT))
		if err != nil {
			t.Fatal(err)
		}
		ev, err := Run(5, evCfg(base), prog(evT))
		if err != nil {
			t.Fatal(err)
		}
		for r := range gorT {
			if gorT[r] != evT[r] {
				t.Errorf("rank %d checkpoint time %v vs %v (fastcoll=%v)", r, gorT[r], evT[r], base.FastCollectives)
			}
			if gor.Clocks[r] != ev.Clocks[r] {
				t.Errorf("rank %d clock %v vs %v (fastcoll=%v)", r, gor.Clocks[r], ev.Clocks[r], base.FastCollectives)
			}
		}
	}
}

// TestEventDrivenRecvAllIdentical covers the Waitall-style wildcard
// drain, whose clock advance must not depend on delivery order under
// either executor.
func TestEventDrivenRecvAllIdentical(t *testing.T) {
	const p = 6
	prog := func(sums []float64) func(c *Comm) error {
		return func(c *Comm) error {
			if c.Rank() == 0 {
				data, sources := c.RecvAll(p-1, 7)
				s := 0.0
				for i := range data {
					s += data[i][0] * float64(sources[i]+1)
				}
				sums[0] = s
				return nil
			}
			c.ComputeSeconds(1e-4 * float64(c.Rank()))
			c.Send(0, 7, []float64{float64(c.Rank() * 10)})
			sums[c.Rank()] = 1
			return nil
		}
	}
	gorSums := make([]float64, p)
	evSums := make([]float64, p)
	gor, err := Run(p, testCfg(), prog(gorSums))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Run(p, evCfg(testCfg()), prog(evSums))
	if err != nil {
		t.Fatal(err)
	}
	assertStatsIdentical(t, "recvall event vs goroutine", gor, ev, gorSums, evSums)
}

// TestEventDrivenClocksIdenticalAcrossHostParallelism: the event loop is
// single-threaded by construction, but the contract is still asserted —
// GOMAXPROCS must not leak into any virtual-time quantity.
func TestEventDrivenClocksIdenticalAcrossHostParallelism(t *testing.T) {
	const p = 13
	prev := runtime.GOMAXPROCS(1)
	serial, serialSums := runMixed(t, p, evCfg(fastCfg()))
	runtime.GOMAXPROCS(prev)
	parallel, parallelSums := runMixed(t, p, evCfg(fastCfg()))
	assertStatsIdentical(t, "GOMAXPROCS=1 vs parallel (event)", serial, parallel, serialSums, parallelSums)
}

// TestEventDrivenDeadlockFailsFast: with every live rank parked and no
// pending event, the executor can prove the program deadlocked and fail
// immediately instead of stalling until the watchdog fires.
func TestEventDrivenDeadlockFailsFast(t *testing.T) {
	_, err := Run(2, evCfg(testCfg()), func(c *Comm) error {
		c.Recv(1-c.Rank(), 5) // both ranks wait; nobody sends
		return nil
	})
	if err == nil {
		t.Fatal("deadlocked run succeeded")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock diagnosis", err)
	}
}

// TestEventDrivenCancelAborts: the cancel watcher runs on a host thread
// and may only touch the atomic abort flag; the loop notices it at the
// next resume boundary and drains every parked rank.
func TestEventDrivenCancelAborts(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	cfg := evCfg(testCfg())
	cfg.Cancel = cancel
	_, err := Run(2, cfg, func(c *Comm) error {
		for {
			c.Send(1-c.Rank(), 2, []float64{1})
			c.Recv(1-c.Rank(), 2)
		}
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestEventDrivenMismatchedCollectivesFailLoudly: a rank panic inside a
// resumed coroutine must abort the world cleanly, exactly like a rank
// goroutine panicking.
func TestEventDrivenMismatchedCollectivesFailLoudly(t *testing.T) {
	_, err := Run(2, evCfg(fastCfg()), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Barrier()
		} else {
			c.Bcast(0, []float64{1})
		}
		return nil
	})
	if err == nil {
		t.Fatal("mismatched collectives succeeded")
	}
	if !strings.Contains(err.Error(), "mismatched collectives") {
		t.Errorf("err = %v, want mismatched-collective panic", err)
	}
}
