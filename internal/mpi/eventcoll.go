// Event-mode fast collectives: the station rendezvous of fastcoll.go
// re-expressed as coroutine yield points. Members park at the station
// (no mutex, no condvar — the loop is single-threaded); the last arrival
// replays the schedule and wakes the cohort in rank order. The replay
// itself (fastcoll.go, fastreplay.go) is shared with the goroutine
// runtime, so both executors perform identical floating-point operations
// in identical order.
//
//lint:eventdriven
package mpi

import "fmt"

// stationCached returns the communicator's rendezvous station, caching
// the pointer on the Comm so repeated collectives skip the stations-map
// lookup and its lock. Comms are per-rank, so the cache is written only
// by its owning rank.
func (c *Comm) stationCached() *station {
	st := c.station
	if st == nil {
		st = c.world.stationFor(c)
		c.station = st
	}
	return st
}

// rendezvousEvent is the event-driven rendezvous: park until the
// communicator is complete, with the last arrival leading the replay and
// waking the members. Generation counting distinguishes a completed
// replay from a spurious wake (abort drain, death re-probe).
func (c *Comm) rendezvousEvent(kind collKind, root int, op Op, data []float64) []float64 {
	// The fast path bypasses pushOp; count the outermost collective here
	// so the metrics counter agrees with the message-level path. (Fault
	// plans force the message-level path, so no flight recording needed.)
	if p := c.proc; p.metrics != nil && p.op == "" {
		p.metrics.Collective()
	}
	st := c.stationCached()
	if st.arrived == 0 {
		st.kind, st.root, st.op = kind, root, op
	} else if st.kind != kind || st.root != root || st.op != op {
		panic(fmt.Sprintf("mpi: mismatched collectives on one communicator: rank %d entered %v, others %v",
			c.rank, kind, st.kind))
	}
	// procs and comm never change between generations on one station;
	// writing them only once keeps repeat collectives free of pointer
	// write barriers on the hot path.
	if st.procs[c.rank] == nil {
		st.procs[c.rank] = c.proc
		st.comm = c
	}
	st.data[c.rank] = data
	st.arrived++
	ev := c.world.ev
	if st.arrived < st.size {
		myGen := st.gen
		er := &ev.ranks[c.proc.worldRank]
		for st.gen == myGen {
			if c.world.aborted() {
				panic(errAborted)
			}
			er.park(evParkedColl)
		}
	} else {
		st.replay(c.world)
		st.arrived = 0
		st.gen++
		if st.wranks == nil {
			st.wranks = make([]int32, st.size)
			for r := 0; r < st.size; r++ {
				st.wranks[r] = int32(c.worldRankOf(r))
			}
		}
		// Wake the cohort in rank order. The state check keeps an abort
		// drain (which already queued the members) from enqueueing them a
		// second time.
		self := int32(c.proc.worldRank)
		for _, wr := range st.wranks {
			if wr == self {
				continue
			}
			if er := &ev.ranks[wr]; er.state == evParkedColl {
				er.state = evRunnable
				ev.cohort = append(ev.cohort, wr)
			}
		}
	}
	res := st.out[c.rank]
	st.out[c.rank] = nil
	st.data[c.rank] = nil
	return res
}
