package mpi

import (
	"fmt"
	"sync"

	"cpx/internal/trace"
)

// Analytic collectives (Config.FastCollectives). The message-level
// Barrier/Bcast/Allreduce implementations exchange O(p log p) real
// messages, and at fig8/fig9 scale the host cost of that traffic —
// mailbox operations, goroutine wakeups, payload clones — dominates the
// simulator's wall-clock. The fast path removes the messages entirely:
// the ranks of a communicator rendezvous at a per-context station, the
// last arrival replays the exact virtual-time recurrence the message
// schedule induces against every member's clock, and all ranks leave
// with their results.
//
// The replay is bitwise-faithful, not approximate: for each rank it
// performs the same floating-point operations in the same order as the
// message-level path (send overhead, departure + cluster.Link transfer
// term, wait jump, receive overhead, reduction applies), so per-rank
// clocks, compute/comm accounting, profiles and reduction results are
// bit-for-bit identical with the fast path on or off. Differential tests
// in fastpath_test.go enforce this. Tracing forces the message-level
// path so event timelines and the comm matrix stay complete.

type collKind uint8

const (
	collBarrier collKind = iota
	collBcast
	collAllreduce
)

func (k collKind) String() string {
	switch k {
	case collBarrier:
		return "Barrier"
	case collBcast:
		return "Bcast"
	case collAllreduce:
		return "Allreduce"
	}
	return "?"
}

// station is the rendezvous point for one communicator's collectives.
// Ranks park here until the communicator is complete; the last arrival
// leads the replay while every other member is blocked in Wait, which is
// what makes mutating their procs safe.
type station struct {
	mu   sync.Mutex
	cond *sync.Cond
	size int

	arrived int
	gen     uint64
	comm    *Comm // any member's comm: used only for rank→world mapping
	kind    collKind
	root    int
	op      Op
	procs   []*proc
	data    [][]float64 // per-rank inputs
	out     [][]float64 // per-rank results

	// Replay scratch, reused across collectives on this communicator.
	arr  []float64   // pending arrival time per rank
	snap [][]float64 // pre-round payload snapshots (allreduce)

	// bare selects the inlined observer-free replay variants
	// (fastreplay.go); set at creation from World.bareColl. The cross
	// tables cache each round's intra-/inter-node classification per rank
	// (the rank→node mapping of a communicator never changes), and
	// scratch backs the pairwise allreduce snapshot.
	bare      bool
	barCross  [][]bool
	arCross   [][]bool
	foldCross []bool
	scratch   []float64

	// wranks caches the members' world ranks (the communicator's
	// rank→world mapping never changes), so per-collective member walks
	// skip the worldRankOf indirection.
	wranks []int32
}

// stationFor returns the rendezvous station of c's context, creating it
// on first use.
func (w *World) stationFor(c *Comm) *station {
	w.stMu.Lock()
	defer w.stMu.Unlock()
	st := w.stations[c.ctx]
	if st == nil {
		n := c.Size()
		st = &station{
			size:  n,
			bare:  w.bareColl,
			procs: make([]*proc, n),
			data:  make([][]float64, n),
			out:   make([][]float64, n),
			arr:   make([]float64, n),
		}
		st.cond = sync.NewCond(&st.mu)
		w.stations[c.ctx] = st
	}
	return st
}

// interrupt wakes parked ranks so they can observe an abort.
func (st *station) interrupt() {
	st.mu.Lock()
	st.cond.Broadcast()
	st.mu.Unlock()
}

// rendezvous parks the calling rank until all members of c have entered
// the same collective, replays the schedule once complete, and returns
// this rank's result.
func (c *Comm) rendezvous(kind collKind, root int, op Op, data []float64) []float64 {
	if c.world.ev != nil {
		return c.rendezvousEvent(kind, root, op, data)
	}
	// The fast path bypasses pushOp; count the outermost collective here
	// so the metrics counter agrees with the message-level path. (Fault
	// plans force the message-level path, so no flight recording needed.)
	if p := c.proc; p.metrics != nil && p.op == "" {
		p.metrics.Collective()
	}
	st := c.stationCached()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.arrived == 0 {
		st.kind, st.root, st.op = kind, root, op
	} else if st.kind != kind || st.root != root || st.op != op {
		panic(fmt.Sprintf("mpi: mismatched collectives on one communicator: rank %d entered %v, others %v",
			c.rank, kind, st.kind))
	}
	// procs and comm never change between generations on one station;
	// writing them only once keeps repeat collectives free of pointer
	// write barriers on the hot path.
	if st.procs[c.rank] == nil {
		st.procs[c.rank] = c.proc
		st.comm = c
	}
	st.data[c.rank] = data
	st.arrived++
	if st.arrived < st.size {
		myGen := st.gen
		for st.gen == myGen {
			if c.world.aborted() {
				panic(errAborted)
			}
			st.cond.Wait()
		}
	} else {
		st.replay(c.world)
		st.arrived = 0
		st.gen++
		st.cond.Broadcast()
	}
	res := st.out[c.rank]
	st.out[c.rank] = nil
	st.data[c.rank] = nil
	return res
}

// replay runs the analytic recurrence for the pending collective.
// Called by the last arrival while every other member is parked (with
// st.mu held under the goroutine runtime; on the loop thread under the
// event-driven executor).
func (st *station) replay(w *World) {
	if st.bare {
		st.replayBare(w)
		return
	}
	switch st.kind {
	case collBarrier:
		st.replayBarrier(w)
	case collBcast:
		st.replayBcast(w)
	case collAllreduce:
		st.replayAllreduce(w)
	}
}

// replayBarrier mirrors the dissemination barrier: ceil(log2 p) rounds,
// round k sending to rank+k and receiving from rank-k. Within a round
// every rank charges its send first (stamping the partner's arrival),
// then completes its receive — exactly each rank's program order.
func (st *station) replayBarrier(w *World) {
	p := st.size
	mach := w.machine
	wr := st.comm.worldRankOf
	for k := 1; k < p; k *= 2 {
		for r := 0; r < p; r++ {
			pr := st.procs[r]
			to := (r + k) % p
			pr.chargeCommAs(mach.SendOverhead, trace.EvSend, wr(to), 0, tagCollective)
			st.arr[to] = pr.clock + mach.TransferTime(wr(r), wr(to), 0)
		}
		for r := 0; r < p; r++ {
			pr := st.procs[r]
			pr.advanceTo(st.arr[r])
			pr.chargeCommAs(mach.RecvOverhead, trace.EvRecv, wr((r-k+p)%p), 0, tagCollective)
		}
	}
}

// replayBcast mirrors the rotated binomial tree. Ranks are processed in
// virtual-rank order, so a parent's send departures are stamped before
// its children complete their receives.
func (st *station) replayBcast(w *World) {
	p := st.size
	root := st.root
	data := st.data[root]
	if p == 1 {
		st.out[root] = data
		return
	}
	mach := w.machine
	wr := st.comm.worldRankOf
	bytes := 8 * len(data)
	for v := 0; v < p; v++ {
		r := (v + root) % p
		pr := st.procs[r]
		mask := 1
		for mask < p {
			if v&mask != 0 {
				parent := (v - mask + root) % p
				pr.advanceTo(st.arr[v])
				pr.chargeCommAs(mach.RecvOverhead, trace.EvRecv, wr(parent), bytes, tagCollective)
				break
			}
			mask <<= 1
		}
		for mask >>= 1; mask > 0; mask >>= 1 {
			if v+mask < p {
				child := (v + mask + root) % p
				pr.chargeCommAs(mach.SendOverhead, trace.EvSend, wr(child), bytes, tagCollective)
				st.arr[v+mask] = pr.clock + mach.TransferTime(wr(r), wr(child), bytes)
			}
		}
		// The message-level path hands every non-root rank a private
		// clone made by its parent's send; the root returns its own
		// slice unchanged.
		if v == 0 {
			st.out[r] = data
		} else {
			//lint:allow poolsafety the clone mirrors the message-path handoff: the receiving rank owns it exactly like a Recv payload
			st.out[r] = pr.arena.clone(data)
		}
	}
}

// replayAllreduce mirrors recursive doubling with the non-power-of-two
// fold: ranks past the largest power of two fold their data onto a low
// partner, the low ranks run log2 rounds of pairwise exchanges, and the
// fold partners get the result back. Payloads are snapshotted before
// each round's applies, as the message-level clones are.
func (st *station) replayAllreduce(w *World) {
	p := st.size
	mach := w.machine
	wr := st.comm.worldRankOf
	op := st.op
	bytes := 0
	// acc per rank: the message-level path starts from a fresh copy of
	// the rank's input and returns it to the caller.
	for r := 0; r < p; r++ {
		acc := make([]float64, len(st.data[r]))
		copy(acc, st.data[r])
		st.out[r] = acc
		bytes = 8 * len(acc)
	}
	if p == 1 {
		return
	}
	pow2 := 1
	for pow2*2 <= p {
		pow2 *= 2
	}
	extra := p - pow2

	// Fold: high ranks charge their entry send...
	for r := pow2; r < p; r++ {
		pr := st.procs[r]
		pr.chargeCommAs(mach.SendOverhead, trace.EvSend, wr(r-pow2), bytes, tagCollective)
		st.arr[r-pow2] = pr.clock + mach.TransferTime(wr(r), wr(r-pow2), bytes)
	}
	// ...and their low partners receive and apply.
	for r := 0; r < extra; r++ {
		pr := st.procs[r]
		pr.advanceTo(st.arr[r])
		pr.chargeCommAs(mach.RecvOverhead, trace.EvRecv, wr(r+pow2), bytes, tagCollective)
		op.apply(st.out[r], st.out[r+pow2])
	}

	// Recursive doubling among the low pow2 ranks.
	if cap(st.snap) < pow2 {
		st.snap = make([][]float64, pow2)
	}
	snap := st.snap[:pow2]
	for k := 1; k < pow2; k *= 2 {
		for r := 0; r < pow2; r++ {
			pr := st.procs[r]
			partner := r ^ k
			pr.chargeCommAs(mach.SendOverhead, trace.EvSend, wr(partner), bytes, tagCollective)
			st.arr[partner] = pr.clock + mach.TransferTime(wr(r), wr(partner), bytes)
			if len(snap[r]) < len(st.out[r]) {
				snap[r] = make([]float64, len(st.out[r]))
			}
			copy(snap[r][:len(st.out[r])], st.out[r])
		}
		for r := 0; r < pow2; r++ {
			pr := st.procs[r]
			partner := r ^ k
			pr.advanceTo(st.arr[r])
			pr.chargeCommAs(mach.RecvOverhead, trace.EvRecv, wr(partner), bytes, tagCollective)
			op.apply(st.out[r], snap[partner][:len(st.out[r])])
		}
	}

	// Unfold: results travel back to the high ranks.
	for r := 0; r < extra; r++ {
		pr := st.procs[r]
		pr.chargeCommAs(mach.SendOverhead, trace.EvSend, wr(r+pow2), bytes, tagCollective)
		st.arr[r+pow2] = pr.clock + mach.TransferTime(wr(r), wr(r+pow2), bytes)
	}
	for r := pow2; r < p; r++ {
		pr := st.procs[r]
		pr.advanceTo(st.arr[r])
		pr.chargeCommAs(mach.RecvOverhead, trace.EvRecv, wr(r-pow2), bytes, tagCollective)
		// The message-level path returns the received clone of the low
		// partner's final acc.
		copy(st.out[r], st.out[r-pow2])
	}
}
