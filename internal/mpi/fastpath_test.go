package mpi

import (
	"bytes"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"cpx/internal/cluster"
)

func fastCfg() Config {
	cfg := testCfg()
	cfg.FastCollectives = true
	return cfg
}

// mixedProgram exercises every fast-path collective interleaved with
// imbalanced compute and point-to-point traffic, on the world
// communicator and on a Split-derived subcommunicator. Per-rank results
// are reduced into the returned checksum slice so value identity is
// checked alongside clock identity.
func mixedProgram(sums []float64) func(*Comm) error {
	return func(c *Comm) error {
		r := c.Rank()
		p := c.Size()
		check := 0.0
		for iter := 0; iter < 3; iter++ {
			c.ComputeSeconds(1e-4 * float64((r+iter)%p+1))
			got := c.Allreduce([]float64{float64(r + iter), 1}, Sum)
			check += got[0] + got[1]
			c.Send((r+1)%p, iter, []float64{float64(r)})
			d, _, _ := c.Recv((r+p-1)%p, iter)
			check += d[0]
			c.Barrier()
			b := c.Bcast(iter%p, []float64{float64(r) * 1.5, check})
			check += b[0]
			check += c.AllreduceScalar(float64(r)*0.25, Max)
			check += c.AllreduceScalar(float64(r)*0.25, Min)
		}
		if p > 1 {
			sub := c.Split(r%2, r)
			c.ComputeSeconds(1e-5 * float64(r+1))
			got := sub.Allreduce([]float64{check}, Sum)
			check += got[0]
			sub.Barrier()
			check += sub.Bcast(0, []float64{float64(sub.Rank())})[0]
		}
		sums[r] = check
		return nil
	}
}

func runMixed(t *testing.T, p int, cfg Config) (*Stats, []float64) {
	t.Helper()
	sums := make([]float64, p)
	st, err := Run(p, cfg, mixedProgram(sums))
	if err != nil {
		t.Fatalf("Run(%d, fast=%v): %v", p, cfg.FastCollectives, err)
	}
	return st, sums
}

// assertStatsIdentical requires bitwise equality of every per-rank
// virtual-time quantity — not approximate equality. The fast paths must
// be indistinguishable from the message-level implementation.
func assertStatsIdentical(t *testing.T, label string, a, b *Stats, sa, sb []float64) {
	t.Helper()
	if a.Elapsed != b.Elapsed {
		t.Errorf("%s: Elapsed %v vs %v", label, a.Elapsed, b.Elapsed)
	}
	for r := range a.Clocks {
		if a.Clocks[r] != b.Clocks[r] {
			t.Errorf("%s: rank %d clock %v vs %v", label, r, a.Clocks[r], b.Clocks[r])
		}
		if a.Compute[r] != b.Compute[r] {
			t.Errorf("%s: rank %d compute %v vs %v", label, r, a.Compute[r], b.Compute[r])
		}
		if a.Comm[r] != b.Comm[r] {
			t.Errorf("%s: rank %d comm %v vs %v", label, r, a.Comm[r], b.Comm[r])
		}
		if sa[r] != sb[r] {
			t.Errorf("%s: rank %d result checksum %v vs %v", label, r, sa[r], sb[r])
		}
	}
}

// TestFastCollectivesBitwiseIdentical is the tentpole acceptance test:
// per-rank clocks, accounting and collective results must be bitwise
// identical with FastCollectives on and off, including non-power-of-two
// sizes (the allreduce fold path) and Split subcommunicators.
func TestFastCollectivesBitwiseIdentical(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13, 16} {
		slow, slowSums := runMixed(t, p, testCfg())
		fast, fastSums := runMixed(t, p, fastCfg())
		assertStatsIdentical(t, "fast vs p2p", slow, fast, slowSums, fastSums)
	}
}

// TestFastCollectivesProfileIdentical: with profiling on, the per-region
// comm attribution must also be reproduced exactly.
func TestFastCollectivesProfileIdentical(t *testing.T) {
	prog := func(c *Comm) error {
		c.Profile().Push("solve")
		c.ComputeSeconds(1e-4 * float64(c.Rank()+1))
		c.Allreduce([]float64{1, 2}, Sum)
		c.Barrier()
		c.Profile().Pop()
		return nil
	}
	slowCfg := testCfg()
	slowCfg.Profile = true
	fastCfg := slowCfg
	fastCfg.FastCollectives = true
	slow, err := Run(6, slowCfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(6, fastCfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	for r := range slow.Profiles {
		se, fe := slow.Profiles[r].Entry("solve"), fast.Profiles[r].Entry("solve")
		if se.Comm != fe.Comm || se.Compute != fe.Compute {
			t.Errorf("rank %d profile: p2p %+v fast %+v", r, se, fe)
		}
	}
}

// TestTraceForcesMessageLevelCollectives: tracing needs complete event
// timelines, so FastCollectives must be ignored when Trace is set.
func TestTraceForcesMessageLevelCollectives(t *testing.T) {
	cfg := fastCfg()
	cfg.Trace = true
	st, err := Run(4, cfg, func(c *Comm) error {
		c.Allreduce([]float64{1}, Sum)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs := 0
	for _, tl := range st.Timelines {
		msgs += len(tl.Events)
	}
	if msgs == 0 {
		t.Fatal("traced run with FastCollectives recorded no events")
	}
	if st.CommMatrix == nil || len(st.CommMatrix.Edges) == 0 {
		t.Fatal("traced run with FastCollectives recorded no comm-matrix traffic")
	}
}

// TestClocksIdenticalAcrossHostParallelism: virtual time must not depend
// on host scheduling. Run the same program single-threaded and with full
// host parallelism, fast paths on and off, and require bitwise equality.
func TestClocksIdenticalAcrossHostParallelism(t *testing.T) {
	const p = 8
	for _, cfg := range []Config{testCfg(), fastCfg()} {
		parallel, parSums := runMixed(t, p, cfg)
		prev := runtime.GOMAXPROCS(1)
		serial, serSums := runMixed(t, p, cfg)
		runtime.GOMAXPROCS(prev)
		assertStatsIdentical(t, "GOMAXPROCS=1 vs parallel", parallel, serial, parSums, serSums)
	}
}

// TestWatchdogAbortsRunNotProcess: the watchdog must surface as an error
// from Run — not panic in a timer goroutine and kill the process.
func TestWatchdogAbortsRunNotProcess(t *testing.T) {
	cfg := Config{Machine: cluster.SmallCluster(), Watchdog: 50 * time.Millisecond}
	_, err := Run(2, cfg, func(c *Comm) error {
		if c.Rank() == 1 {
			c.Recv(0, 99) // never sent: deadlock until the watchdog fires
		}
		return nil
	})
	if err == nil {
		t.Fatal("deadlocked run returned no error")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("err = %v, want a watchdog error", err)
	}
}

// TestWatchdogAbortsFastCollectiveWait: ranks parked at a rendezvous
// station must also be woken by the abort.
func TestWatchdogAbortsFastCollectiveWait(t *testing.T) {
	cfg := fastCfg()
	cfg.Watchdog = 50 * time.Millisecond
	_, err := Run(3, cfg, func(c *Comm) error {
		if c.Rank() != 0 {
			c.Barrier() // rank 0 never joins
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("err = %v, want a watchdog error", err)
	}
}

// TestMismatchedFastCollectivesFailLoudly: with the fast path a
// mismatched collective (ranks entering different operations on one
// communicator) is detectable; it must fail the run, not hang it.
func TestMismatchedFastCollectivesFailLoudly(t *testing.T) {
	cfg := fastCfg()
	cfg.Watchdog = 5 * time.Second
	_, err := Run(2, cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Barrier()
		} else {
			c.Allreduce([]float64{1}, Sum)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "mismatched collectives") {
		t.Fatalf("err = %v, want mismatched-collectives error", err)
	}
}

// TestSendVirtualChargesVirtualBytes guards the deduplicated send path:
// SendVirtual must still charge the virtual size, not the payload size.
func TestSendVirtualChargesVirtualBytes(t *testing.T) {
	elapsed := func(virtual int) float64 {
		st := run(t, 2, func(c *Comm) error {
			if c.Rank() == 0 {
				c.SendVirtual(1, 0, []float64{1}, virtual)
			} else {
				d, _, _ := c.Recv(0, 0)
				if d[0] != 1 {
					t.Errorf("payload = %v, want [1]", d)
				}
			}
			return nil
		})
		return st.Elapsed
	}
	if !(elapsed(10_000_000) > elapsed(8)) {
		t.Error("larger virtual size did not cost more virtual time")
	}
}

// TestRecvAllDrainsManyToOne exercises the wildcard (AnySource) path of
// the indexed mailbox: every sender's payload must arrive exactly once
// and the clock must advance to the latest arrival.
func TestRecvAllDrainsManyToOne(t *testing.T) {
	const p = 16
	run(t, p, func(c *Comm) error {
		if c.Rank() == 0 {
			data, sources := c.RecvAll(p-1, 7)
			for i := range data {
				if sources[i] != i+1 {
					t.Errorf("sources[%d] = %d, want %d", i, sources[i], i+1)
				}
				if len(data[i]) != 1 || data[i][0] != float64(i+1) {
					t.Errorf("data[%d] = %v", i, data[i])
				}
			}
		} else {
			c.ComputeSeconds(1e-5 * float64(c.Rank()))
			c.Send(0, 7, []float64{float64(c.Rank())})
		}
		return nil
	})
}

// traceSummaryJSON renders a run's summary as JSON so trace-level
// determinism can be asserted byte-for-byte.
func traceSummaryJSON(t *testing.T, st *Stats) string {
	t.Helper()
	var buf bytes.Buffer
	if err := st.Summary().WriteJSON(&buf); err != nil {
		t.Fatalf("summary JSON: %v", err)
	}
	return buf.String()
}

// TestTraceIdenticalAcrossHostParallelism extends the host-parallelism
// invariant from clocks to the trace path: with event tracing on, the
// per-rank timelines, the comm matrix and the JSON run summary must all
// come out identical under GOMAXPROCS=1 and full host parallelism — the
// trace is part of the reproducibility contract, not a best-effort log.
func TestTraceIdenticalAcrossHostParallelism(t *testing.T) {
	const p = 8
	cfg := testCfg()
	cfg.Trace = true
	parallel, parSums := runMixed(t, p, cfg)
	prev := runtime.GOMAXPROCS(1)
	serial, serSums := runMixed(t, p, cfg)
	runtime.GOMAXPROCS(prev)

	assertStatsIdentical(t, "trace: GOMAXPROCS=1 vs parallel", parallel, serial, parSums, serSums)
	for r := range parallel.Timelines {
		if !reflect.DeepEqual(parallel.Timelines[r], serial.Timelines[r]) {
			t.Errorf("rank %d timeline differs between host parallelism levels", r)
		}
	}
	if !reflect.DeepEqual(parallel.CommMatrix, serial.CommMatrix) {
		t.Error("comm matrix differs between host parallelism levels")
	}
	if a, b := traceSummaryJSON(t, parallel), traceSummaryJSON(t, serial); a != b {
		t.Errorf("run summaries differ:\nparallel: %s\nserial:   %s", a, b)
	}
}
