package mpi

import "cpx/internal/cluster"

// Bare analytic-collective replays. When a run has no per-charge
// observers — no profiles, no timelines, no metrics, no fault plan —
// chargeCommAs reduces to {clock += s; comm += s} and advanceTo to
// {comm += arrival − clock; clock = arrival}. These variants replay the
// exact message schedules of fastcoll.go with those reduced updates
// inlined, with per-round intra-/inter-node link classifications cached
// per station (a communicator's rank→node mapping never changes), and
// with the per-edge transfer term precomputed once per collective. Every
// floating-point operation and its order is unchanged from the observed
// replays — and therefore from the message-level path — so clocks, comm
// accounting and reduction results stay bitwise identical
// (fastpath_test.go and event_test.go enforce this differentially).
// What the bare path removes is pure host overhead: function-call
// indirection, crash clamping against an infinite crash time, nil
// observer checks, per-rank snapshot allocations.

// ttPair returns the intra- and inter-node transfer times for one
// payload size, evaluated with exactly cluster.TransferTime's
// expression (latency + bytes/bandwidth from the same Link terms).
// It runs once per rank pair per replayed collective stage, so it must
// inline into the replay loops and keep the machine on the stack.
//
//perf:inline
//perf:noescape
//perf:hotpath
func ttPair(mach *cluster.Machine, bytes int) (intra, inter float64) {
	return mach.IntraNodeLatency + float64(bytes)/mach.IntraNodeBW,
		mach.InterNodeLatency + float64(bytes)/mach.EffectiveInterBW()
}

// replayBare dispatches the observer-free replay for the pending
// collective. Preconditions (established by World.bareColl): every
// member proc has nil profile/timeline/metrics/flight and an infinite
// crash time.
func (st *station) replayBare(w *World) {
	switch st.kind {
	case collBarrier:
		st.replayBarrierBare(w)
	case collBcast:
		st.replayBcastBare(w)
	case collAllreduce:
		st.replayAllreduceBare(w)
	}
}

// buildBarCross caches, per dissemination round, whether each rank's
// send to rank+k crosses a node boundary.
func (st *station) buildBarCross(w *World) {
	mach := w.machine
	wr := st.comm.worldRankOf
	p := st.size
	for k := 1; k < p; k *= 2 {
		row := make([]bool, p)
		for r := 0; r < p; r++ {
			to := r + k
			if to >= p {
				to -= p
			}
			row[r] = !mach.SameNode(wr(r), wr(to))
		}
		st.barCross = append(st.barCross, row)
	}
}

// replayBarrierBare is replayBarrier with the charges inlined: per round,
// every rank charges its send (stamping the partner's arrival), then
// completes its receive — exactly each rank's program order.
func (st *station) replayBarrierBare(w *World) {
	p := st.size
	if p == 1 {
		return
	}
	mach := w.machine
	so, ro := mach.SendOverhead, mach.RecvOverhead
	ti, tx := ttPair(mach, 0)
	if st.barCross == nil {
		st.buildBarCross(w)
	}
	arr := st.arr
	ki := 0
	for k := 1; k < p; k *= 2 {
		cross := st.barCross[ki]
		ki++
		for r := 0; r < p; r++ {
			pr := st.procs[r]
			pr.clock += so
			pr.comm += so
			to := r + k
			if to >= p {
				to -= p
			}
			t := ti
			if cross[r] {
				t = tx
			}
			arr[to] = pr.clock + t
		}
		for r := 0; r < p; r++ {
			pr := st.procs[r]
			if a := arr[r]; a > pr.clock {
				pr.comm += a - pr.clock
				pr.clock = a
			}
			pr.clock += ro
			pr.comm += ro
		}
	}
}

// replayBcastBare is replayBcast with the charges inlined, walking the
// rotated binomial tree in virtual-rank order.
func (st *station) replayBcastBare(w *World) {
	p := st.size
	root := st.root
	data := st.data[root]
	if p == 1 {
		st.out[root] = data
		return
	}
	mach := w.machine
	wr := st.comm.worldRankOf
	so, ro := mach.SendOverhead, mach.RecvOverhead
	ti, tx := ttPair(mach, 8*len(data))
	arr := st.arr
	// Every non-root rank leaves with a private copy of the payload; one
	// slab allocation per collective serves all of them (carved with
	// clamped caps, so callers appending reallocate exactly as they would
	// off a private clone).
	n := len(data)
	var slab []float64
	if n > 0 {
		slab = make([]float64, (p-1)*n)
	}
	for v := 0; v < p; v++ {
		r := v + root
		if r >= p {
			r -= p
		}
		pr := st.procs[r]
		mask := 1
		for mask < p {
			if v&mask != 0 {
				if a := arr[v]; a > pr.clock {
					pr.comm += a - pr.clock
					pr.clock = a
				}
				pr.clock += ro
				pr.comm += ro
				break
			}
			mask <<= 1
		}
		for mask >>= 1; mask > 0; mask >>= 1 {
			if v+mask < p {
				child := v + mask + root
				if child >= p {
					child -= p
				}
				pr.clock += so
				pr.comm += so
				t := ti
				if !mach.SameNode(wr(r), wr(child)) {
					t = tx
				}
				arr[v+mask] = pr.clock + t
			}
		}
		// The message-level path hands every non-root rank a private
		// clone made by its parent's send; the root returns its own
		// slice unchanged.
		switch {
		case v == 0:
			st.out[r] = data
		case n == 0:
			if data == nil {
				st.out[r] = nil
			} else {
				st.out[r] = []float64{}
			}
		default:
			buf := slab[:n:n]
			slab = slab[n:]
			copy(buf, data)
			st.out[r] = buf
		}
	}
}

// buildArCross caches the recursive-doubling and fold link
// classifications for the allreduce replay.
func (st *station) buildArCross(w *World, pow2 int) {
	mach := w.machine
	wr := st.comm.worldRankOf
	for k := 1; k < pow2; k *= 2 {
		row := make([]bool, pow2)
		for r := 0; r < pow2; r++ {
			row[r] = !mach.SameNode(wr(r), wr(r^k))
		}
		st.arCross = append(st.arCross, row)
	}
	st.foldCross = make([]bool, st.size-pow2)
	for r := pow2; r < st.size; r++ {
		st.foldCross[r-pow2] = !mach.SameNode(wr(r), wr(r-pow2))
	}
}

// replayAllreduceBare is replayAllreduce with the charges inlined. The
// per-round payload snapshots become one pairwise scratch buffer: for a
// partner pair (a, b), out[b] is still the pre-round value when a
// applies it, and b applies the scratch copy of a's pre-round value —
// the same operand values as the message-level clones, so reduction
// results are bitwise identical.
func (st *station) replayAllreduceBare(w *World) {
	p := st.size
	mach := w.machine
	op := st.op
	bytes := 0
	// Per-rank result accumulators, carved from one slab allocation per
	// collective (ownership transfers to the callers, exactly like the
	// fresh per-rank copies of the message-level path; clamped caps keep
	// append behaviour identical to private allocations).
	total := 0
	for r := 0; r < p; r++ {
		total += len(st.data[r])
	}
	var slab []float64
	if total > 0 {
		slab = make([]float64, total)
	}
	for r := 0; r < p; r++ {
		d := st.data[r]
		if len(d) == 0 {
			// Match the message path's make([]float64, 0) exactly,
			// including non-nilness.
			st.out[r] = make([]float64, 0)
		} else {
			n := len(d)
			buf := slab[:n:n]
			slab = slab[n:]
			copy(buf, d)
			st.out[r] = buf
		}
		bytes = 8 * len(d)
	}
	if p == 1 {
		return
	}
	pow2 := 1
	for pow2*2 <= p {
		pow2 *= 2
	}
	extra := p - pow2
	if st.arCross == nil {
		st.buildArCross(w, pow2)
	}
	so, ro := mach.SendOverhead, mach.RecvOverhead
	ti, tx := ttPair(mach, bytes)
	arr := st.arr

	// Fold: high ranks charge their entry send...
	for r := pow2; r < p; r++ {
		pr := st.procs[r]
		pr.clock += so
		pr.comm += so
		t := ti
		if st.foldCross[r-pow2] {
			t = tx
		}
		arr[r-pow2] = pr.clock + t
	}
	// ...and their low partners receive and apply.
	for r := 0; r < extra; r++ {
		pr := st.procs[r]
		if a := arr[r]; a > pr.clock {
			pr.comm += a - pr.clock
			pr.clock = a
		}
		pr.clock += ro
		pr.comm += ro
		op.apply(st.out[r], st.out[r+pow2])
	}

	// Recursive doubling among the low pow2 ranks, processed pairwise:
	// each pair exchanges sends, waits, and applies the partner's
	// pre-round value.
	n := len(st.out[0])
	if cap(st.scratch) < n {
		st.scratch = make([]float64, n)
	}
	scratch := st.scratch[:n]
	sum := op == Sum
	ki := 0
	for k := 1; k < pow2; k *= 2 {
		cross := st.arCross[ki]
		ki++
		for a := 0; a < pow2; a++ {
			b := a ^ k
			if b < a {
				continue
			}
			pa, pb := st.procs[a], st.procs[b]
			// Link classification is symmetric: cross[a] == cross[b].
			t := ti
			if cross[a] {
				t = tx
			}
			pa.clock += so
			pa.comm += so
			arrB := pa.clock + t
			pb.clock += so
			pb.comm += so
			arrA := pb.clock + t
			if arrA > pa.clock {
				pa.comm += arrA - pa.clock
				pa.clock = arrA
			}
			pa.clock += ro
			pa.comm += ro
			if arrB > pb.clock {
				pb.comm += arrB - pb.clock
				pb.clock = arrB
			}
			pb.clock += ro
			pb.comm += ro
			da, db := st.out[a], st.out[b]
			copy(scratch, da)
			if sum && len(da) == n && len(db) == n {
				// Sum inlined: the same element order and operand values
				// as op.apply on both directions of the pair.
				for i, v := range db {
					da[i] += v
				}
				for i, v := range scratch {
					db[i] += v
				}
			} else {
				op.apply(da, db)
				op.apply(db, scratch)
			}
		}
	}

	// Unfold: results travel back to the high ranks.
	for r := 0; r < extra; r++ {
		pr := st.procs[r]
		pr.clock += so
		pr.comm += so
		t := ti
		if st.foldCross[r] {
			t = tx
		}
		arr[r+pow2] = pr.clock + t
	}
	for r := pow2; r < p; r++ {
		pr := st.procs[r]
		if a := arr[r]; a > pr.clock {
			pr.comm += a - pr.clock
			pr.clock = a
		}
		pr.clock += ro
		pr.comm += ro
		// The message-level path returns the received clone of the low
		// partner's final acc.
		copy(st.out[r], st.out[r-pow2])
	}
}
