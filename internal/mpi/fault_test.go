package mpi

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/fault"
	"cpx/internal/trace"
)

func faultCfg(p *fault.Plan) Config {
	return Config{Machine: cluster.SmallCluster(), Watchdog: 30 * time.Second, Faults: p}
}

// TestCrashSurfacesAsRanksFailed: a receive from a crashed rank unwinds
// with a RankFailure after the modelled detection latency instead of
// hanging until the watchdog, and Run reports the whole episode as
// *fault.RanksFailed.
func TestCrashSurfacesAsRanksFailed(t *testing.T) {
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 1, At: 0.5}}}
	detected := make([]float64, 2)
	st, err := Run(2, faultCfg(plan), func(c *Comm) error {
		if c.Rank() == 0 {
			c.ComputeSeconds(0.1) // blocks in Recv well before the death
			c.Recv(1, 3)
		} else {
			c.ComputeSeconds(1.0) // dies at t=0.5 inside this charge
			c.Send(0, 3, []float64{1})
		}
		detected[c.Rank()] = c.Clock()
		return nil
	})
	if err == nil {
		t.Fatal("run with a killed rank succeeded")
	}
	var rf *fault.RanksFailed
	if !errors.As(err, &rf) {
		t.Fatalf("err = %v (%T), want *fault.RanksFailed", err, err)
	}
	if len(rf.Crashed) != 1 || rf.Crashed[0] != 1 || rf.FailedAt != 0.5 {
		t.Fatalf("RanksFailed = %+v, want rank 1 at t=0.5", rf)
	}
	if len(rf.Detections) != 1 {
		t.Fatalf("detections = %+v, want one (rank 0's)", rf.Detections)
	}
	d := rf.Detections[0]
	if d.Rank != 1 || d.FailedAt != 0.5 {
		t.Errorf("detection %+v, want rank 1 failed at 0.5", d)
	}
	if want := 0.5 + plan.Detection(); d.DetectedAt != want {
		t.Errorf("DetectedAt = %v, want failure + detection latency = %v", d.DetectedAt, want)
	}
	// Partial stats must still come back for trace hardening.
	if st == nil {
		t.Fatal("no partial stats on a failed run")
	}
	if st.Clocks[1] != 0.5 {
		t.Errorf("dead rank clock = %v, want clamped to crash time 0.5", st.Clocks[1])
	}
}

// TestCrashClampsMidCompute: the dying rank's clock can never pass its
// crash timestamp, whatever charge was in flight.
func TestCrashClampsMidCompute(t *testing.T) {
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 0, At: 0.25}}}
	st, err := Run(1, faultCfg(plan), func(c *Comm) error {
		c.ComputeSeconds(10)
		t.Error("rank survived past its crash time")
		return nil
	})
	var rf *fault.RanksFailed
	if !errors.As(err, &rf) {
		t.Fatalf("err = %v, want RanksFailed", err)
	}
	if st.Clocks[0] != 0.25 {
		t.Errorf("clock = %v, want exactly 0.25", st.Clocks[0])
	}
}

// TestPendingMessagesWinOverDeath: a rank that sends and then dies still
// delivers; only the receive with no pending message fails. This is what
// keeps detection deterministic under host scheduling.
func TestPendingMessagesWinOverDeath(t *testing.T) {
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 1, At: 0.5}}}
	_, err := Run(2, faultCfg(plan), func(c *Comm) error {
		if c.Rank() == 1 {
			c.Send(0, 1, []float64{42}) // departs ~t=0, well before death
			c.ComputeSeconds(1)         // dies here
			return nil
		}
		c.ComputeSeconds(2) // ensure the message arrived and rank 1 is long dead
		data, _, _ := c.Recv(1, 1)
		if data[0] != 42 {
			t.Errorf("payload %v, want the dead rank's 42", data[0])
		}
		// Second receive has nothing pending: must fail, not deadlock.
		c.Recv(1, 2)
		t.Error("receive from dead rank with no pending message returned")
		return nil
	})
	var rf *fault.RanksFailed
	if !errors.As(err, &rf) {
		t.Fatalf("err = %v, want RanksFailed", err)
	}
}

// TestCollectiveSurvivorsUnwind: a crash inside an allreduce unwinds
// every survivor rather than deadlocking the tree.
func TestCollectiveSurvivorsUnwind(t *testing.T) {
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 2, At: 0.1}}}
	start := time.Now()
	_, err := Run(8, faultCfg(plan), func(c *Comm) error {
		c.ComputeSeconds(0.2)
		for i := 0; i < 4; i++ {
			c.AllreduceScalar(float64(c.Rank()), Sum)
		}
		return nil
	})
	var rf *fault.RanksFailed
	if !errors.As(err, &rf) {
		t.Fatalf("err = %v, want RanksFailed", err)
	}
	if host := time.Since(start); host > 10*time.Second {
		t.Errorf("unwinding took %v of host time: detection is not working", host)
	}
}

// TestFaultRunsDeterministic: two identical faulty runs observe
// bitwise-identical clocks and detections.
func TestFaultRunsDeterministic(t *testing.T) {
	plan, err := fault.NewPlan(fault.Spec{
		Seed: 11, Ranks: 6, Horizon: 2, MTBF: 0.8,
		StragglerEvery: 0.5, LinkEvery: 0.7, Machine: cluster.SmallCluster(),
	})
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Comm) error {
		for i := 0; i < 20; i++ {
			c.ComputeSeconds(0.01)
			c.Send((c.Rank()+1)%c.Size(), 1, []float64{float64(i)})
			c.Recv((c.Rank()+c.Size()-1)%c.Size(), 1)
		}
		return nil
	}
	st1, err1 := Run(6, faultCfg(plan), prog)
	st2, err2 := Run(6, faultCfg(plan), prog)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("outcomes differ: %v vs %v", err1, err2)
	}
	for r := range st1.Clocks {
		if st1.Clocks[r] != st2.Clocks[r] {
			t.Errorf("rank %d clock %v != %v across identical runs", r, st1.Clocks[r], st2.Clocks[r])
		}
	}
	var rf1, rf2 *fault.RanksFailed
	if errors.As(err1, &rf1) && errors.As(err2, &rf2) {
		if len(rf1.Crashed) != len(rf2.Crashed) || rf1.FailedAt != rf2.FailedAt {
			t.Errorf("failure reports differ: %+v vs %+v", rf1, rf2)
		}
	}
}

// TestStragglerStretchesElapsed: a straggler window slows the run by a
// deterministic amount; without faults the plan is a bitwise no-op.
func TestStragglerStretchesElapsed(t *testing.T) {
	prog := func(c *Comm) error {
		for i := 0; i < 10; i++ {
			c.ComputeSeconds(0.05)
			c.Barrier()
		}
		return nil
	}
	clean, err := Run(4, faultCfg(nil), prog)
	if err != nil {
		t.Fatal(err)
	}
	// An empty plan must not perturb a single bit.
	empty, err := Run(4, faultCfg(&fault.Plan{}), prog)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Elapsed != clean.Elapsed {
		t.Errorf("empty plan changed elapsed: %v != %v", empty.Elapsed, clean.Elapsed)
	}
	slow, err := Run(4, faultCfg(&fault.Plan{
		Stragglers: []fault.Straggler{{Node: -1, Factor: 3, From: 0, To: 100}},
	}), prog)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Elapsed <= clean.Elapsed {
		t.Errorf("straggler run %v not slower than clean %v", slow.Elapsed, clean.Elapsed)
	}
}

// TestLinkFaultSlowsMessages: a degraded epoch stretches transfer times
// for messages departing inside it.
func TestLinkFaultSlowsMessages(t *testing.T) {
	prog := func(c *Comm) error {
		buf := make([]float64, 1<<14)
		if c.Rank() == 0 {
			c.Send(c.Size()-1, 1, buf)
		} else if c.Rank() == c.Size()-1 {
			c.Recv(0, 1)
		}
		return nil
	}
	m := cluster.SmallCluster()
	clean, err := Run(m.CoresPerNode+1, faultCfg(nil), prog)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(m.CoresPerNode+1, faultCfg(&fault.Plan{
		LinkFaults: []fault.LinkFault{{Node: -1, From: 0, To: 10, Alpha: 10, Beta: 10}},
	}), prog)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Elapsed <= clean.Elapsed {
		t.Errorf("degraded run %v not slower than clean %v", slow.Elapsed, clean.Elapsed)
	}
}

// TestCheckpointSyncAlignsClocks: after CheckpointSync every rank holds
// the identical synchronized time maxClock + maxCost.
func TestCheckpointSyncAlignsClocks(t *testing.T) {
	times := make([]float64, 4)
	st, err := Run(4, faultCfg(nil), func(c *Comm) error {
		c.ComputeSeconds(float64(c.Rank()) * 0.1) // skewed clocks
		cost := 0.0
		if c.Rank() == 2 {
			cost = 0.5 // one rank writes a big snapshot
		}
		times[c.Rank()] = c.CheckpointSync(cost)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if times[r] != times[0] {
			t.Errorf("rank %d sync time %v != rank 0's %v", r, times[r], times[0])
		}
	}
	for r := 0; r < 4; r++ {
		if st.Clocks[r] < times[0] {
			t.Errorf("rank %d clock %v below sync time %v", r, st.Clocks[r], times[0])
		}
	}
}

// TestResetClockRestartJump: the restart primitive lands on exactly the
// requested time going forward and backward.
func TestResetClockRestartJump(t *testing.T) {
	st, err := Run(1, faultCfg(nil), func(c *Comm) error {
		c.ResetClock(3.25)
		if c.Clock() != 3.25 {
			t.Errorf("forward reset clock = %v, want 3.25", c.Clock())
		}
		c.ResetClock(1.5)
		if c.Clock() != 1.5 {
			t.Errorf("backward reset clock = %v, want 1.5", c.Clock())
		}
		c.ComputeSeconds(0.5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Elapsed != 2.0 {
		t.Errorf("elapsed = %v, want 2.0", st.Elapsed)
	}
}

// TestResetClockIntoCrashKills: a restart jump that crosses the rank's
// scheduled crash time kills it (the plan owns virtual time, not the
// restart logic).
func TestResetClockIntoCrashKills(t *testing.T) {
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 0, At: 1.0}}}
	_, err := Run(1, faultCfg(plan), func(c *Comm) error {
		c.ResetClock(2.0)
		t.Error("rank survived a reset across its crash time")
		return nil
	})
	var rf *fault.RanksFailed
	if !errors.As(err, &rf) {
		t.Fatalf("err = %v, want RanksFailed", err)
	}
}

// TestFastCollectivesDisabledUnderFaults: analytic collective replay
// cannot model rank death, so a fault plan must force the message path.
func TestFastCollectivesDisabledUnderFaults(t *testing.T) {
	cfg := faultCfg(&fault.Plan{Crashes: []fault.Crash{{Rank: 1, At: 0.05}}})
	cfg.FastCollectives = true
	_, err := Run(4, cfg, func(c *Comm) error {
		c.ComputeSeconds(0.1)
		c.AllreduceScalar(1, Sum)
		return nil
	})
	var rf *fault.RanksFailed
	if !errors.As(err, &rf) {
		t.Fatalf("err = %v, want RanksFailed (fast collectives must be off under a plan)", err)
	}
}

// TestPartialRunExportsSafely: a crashed traced run must still yield
// stats whose exporters (Chrome trace, comm-matrix CSV, JSON summary)
// produce well-formed output rather than panicking on the partial data.
func TestPartialRunExportsSafely(t *testing.T) {
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 1, At: 0.2}}}
	cfg := faultCfg(plan)
	cfg.Trace = true
	st, err := Run(2, cfg, func(c *Comm) error {
		c.ComputeSeconds(0.5)
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("run with a killed rank succeeded")
	}
	if st == nil {
		t.Fatal("no partial stats")
	}
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, st.Timelines); err != nil {
		t.Fatalf("partial Chrome trace: %v", err)
	}
	buf.Reset()
	if err := st.CommMatrix.WriteCSV(&buf); err != nil {
		t.Fatalf("partial comm CSV: %v", err)
	}
	buf.Reset()
	if err := st.Summary().WriteJSON(&buf); err != nil {
		t.Fatalf("partial summary: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("partial summary is not valid JSON")
	}

	// Zero-value stats (a run that died before charging anything) must
	// summarize without dividing by zero or indexing empty slices.
	empty := (&Stats{}).Summary()
	if empty.AvgCompute != 0 || empty.AvgComm != 0 {
		t.Errorf("empty stats averages = %v/%v, want 0/0", empty.AvgCompute, empty.AvgComm)
	}
}

// TestAnySourceRecvDetectsDeadPeers is the regression test for the
// wildcard dead-check: an AnySource receive used to pass a nil probe
// into the mailbox wait and could block forever (until the watchdog) on
// a crashed peer. It must now fail once every other communicator member
// is dead, with the detection anchored to the last death. Both
// executors must agree bit for bit.
func TestAnySourceRecvDetectsDeadPeers(t *testing.T) {
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 1, At: 0.25}, {Rank: 2, At: 0.5}}}
	prog := func(detected []float64) func(c *Comm) error {
		return func(c *Comm) error {
			if c.Rank() == 0 {
				c.Recv(AnySource, 3) // no survivor ever sends
				return nil
			}
			c.ComputeSeconds(1.0) // both peers die mid-compute
			c.Send(0, 3, []float64{1})
			return nil
		}
	}
	for _, ev := range []bool{false, true} {
		cfg := faultCfg(plan)
		cfg.EventDriven = ev
		detected := make([]float64, 3)
		st, err := Run(3, cfg, prog(detected))
		if err == nil {
			t.Fatalf("event=%v: wildcard receive from dead peers succeeded", ev)
		}
		var rf *fault.RanksFailed
		if !errors.As(err, &rf) {
			t.Fatalf("event=%v: err = %v (%T), want *fault.RanksFailed", ev, err, err)
		}
		if len(rf.Detections) != 1 {
			t.Fatalf("event=%v: detections = %+v, want one (rank 0's)", ev, rf.Detections)
		}
		d := rf.Detections[0]
		// The failure that completes the wildcard condition is the last
		// death (rank 2 at t=0.5); detection follows the modelled latency.
		if d.Rank != 2 || d.FailedAt != 0.5 {
			t.Errorf("event=%v: detection %+v, want rank 2 failed at 0.5", ev, d)
		}
		if want := 0.5 + plan.Detection(); d.DetectedAt != want {
			t.Errorf("event=%v: DetectedAt = %v, want %v", ev, d.DetectedAt, want)
		}
		if st == nil {
			t.Fatal("no partial stats")
		}
	}
}

// TestAnySourceRecvStillDrainsLiveSenders: the wildcard dead-check must
// not fire while any potential sender is alive — a live rank's later
// send must be received normally even though another peer is already
// dead, and a dead rank's pre-death send must still win over its death.
func TestAnySourceRecvStillDrainsLiveSenders(t *testing.T) {
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 1, At: 0.2}}}
	for _, ev := range []bool{false, true} {
		cfg := faultCfg(plan)
		cfg.EventDriven = ev
		got := make([]float64, 3)
		_, err := Run(3, cfg, func(c *Comm) error {
			switch c.Rank() {
			case 0:
				d, src, _ := c.Recv(AnySource, 9)
				got[0] = d[0] + 100*float64(src)
			case 1:
				c.ComputeSeconds(0.1) // sends before its death at 0.2
				c.Send(0, 9, []float64{7})
				c.ComputeSeconds(1.0) // dies here
			case 2:
				c.ComputeSeconds(2.0) // outlives everything, sends nothing
			}
			return nil
		})
		var rf *fault.RanksFailed
		if !errors.As(err, &rf) {
			t.Fatalf("event=%v: err = %v, want *fault.RanksFailed (rank 1 still crashes)", ev, err)
		}
		if len(rf.Detections) != 0 {
			t.Errorf("event=%v: unexpected detections %+v; the wildcard receive was satisfied by a real message", ev, rf.Detections)
		}
		if got[0] != 7+100*1 {
			t.Errorf("event=%v: rank 0 received %v, want payload 7 from source 1", ev, got[0])
		}
	}
}

// TestRecvAllDetectsDeadPeers: the Waitall-style drain passes the same
// wildcard dead-check, so a crashed sender fails the wait instead of
// hanging it until the watchdog.
func TestRecvAllDetectsDeadPeers(t *testing.T) {
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 1, At: 0.25}, {Rank: 2, At: 0.3}}}
	for _, ev := range []bool{false, true} {
		cfg := faultCfg(plan)
		cfg.EventDriven = ev
		_, err := Run(3, cfg, func(c *Comm) error {
			if c.Rank() == 0 {
				c.RecvAll(2, 4) // peers die before sending
				return nil
			}
			c.ComputeSeconds(1.0)
			c.Send(0, 4, []float64{1})
			return nil
		})
		var rf *fault.RanksFailed
		if !errors.As(err, &rf) {
			t.Fatalf("event=%v: err = %v, want *fault.RanksFailed", ev, err)
		}
		if len(rf.Detections) != 1 || rf.Detections[0].Rank != 2 {
			t.Errorf("event=%v: detections = %+v, want rank 0 detecting the last death (rank 2)", ev, rf.Detections)
		}
	}
}
