package mpi

import (
	"sync"

	"cpx/internal/fault"
)

// The mailbox is the per-rank incoming message queue. Matching is FIFO
// per (communicator, source, tag) — MPI's non-overtaking rule — so the
// queue is indexed by exactly that key: each (ctx, src, tag) triple owns
// a small FIFO bucket, and an exact-match receive is a map hit plus a
// head pop instead of the linear scan over every pending message the
// first implementation used. Wildcard receives (AnySource/AnyTag) pick
// the pending message with the smallest arrival sequence number among
// matching bucket heads, which reproduces the old scan-in-arrival-order
// semantics exactly.
//
// Each mailbox has a single consumer (only the owning rank receives from
// it), so the wait protocol is a targeted wakeup: the receiver publishes
// the (ctx, src, tag) pattern it is blocked on and senders signal only
// when they deliver a message that matches it. Dense many-to-one traffic
// no longer wakes the receiver once per non-matching delivery.

// bkey indexes one FIFO bucket.
type bkey struct{ ctx, src, tag int }

// bucket is one (ctx, src, tag) FIFO. Buckets are recycled through the
// mailbox freelist when they drain, so steady-state traffic allocates no
// bucket memory.
type bucket struct {
	msgs []*message
	head int
	next *bucket // freelist link
}

func (bk *bucket) empty() bool { return bk.head == len(bk.msgs) }

// push appends to the FIFO tail. Growth is amortised: buckets are
// recycled through the mailbox free list with capacity intact.
//
//perf:hotpath
func (bk *bucket) push(m *message) {
	bk.msgs = append(bk.msgs, m) //lint:allow hotalloc amortised growth on a free-listed bucket
}

// pop removes and returns the FIFO head. The vacated slot is nilled so
// the slice tail never retains a consumed message (or its payload)
// against the GC.
//
//perf:hotpath
func (bk *bucket) pop() *message {
	m := bk.msgs[bk.head]
	bk.msgs[bk.head] = nil
	bk.head++
	if bk.head == len(bk.msgs) {
		bk.msgs = bk.msgs[:0]
		bk.head = 0
	}
	return m
}

// mailbox is the per-rank incoming message queue. The zero value is
// ready to use: the bucket map and the wait condvar are created on first
// need, so a run whose ranks never exchange point-to-point messages
// (analytic collectives only) pays nothing per mailbox beyond the struct
// itself, and the event-driven executor — which never blocks on a
// mailbox — allocates no condvars at all.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buckets map[bkey]*bucket
	pending int    // total queued messages
	seq     uint64 // next arrival sequence number
	free    *bucket

	// Receiver wait state: valid while waiting is true. There is at most
	// one waiter (the owning rank), so a matching put issues one Signal.
	waiting                   bool
	wantCtx, wantSrc, wantTag int
}

func (b *mailbox) getBucket() *bucket {
	if bk := b.free; bk != nil {
		b.free = bk.next
		bk.next = nil
		return bk
	}
	return &bucket{}
}

func (b *mailbox) putBucket(bk *bucket) {
	// Don't let one burst pin a huge backing array forever.
	if cap(bk.msgs) > 256 {
		bk.msgs = nil
	}
	bk.next = b.free
	b.free = bk
}

func match(src, tag int, m *message) bool {
	return (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag)
}

// put delivers a message, waking the receiver only if it is blocked on a
// matching pattern.
func (b *mailbox) put(m *message) {
	b.mu.Lock()
	b.enqueue(m)
	if b.waiting && m.ctx == b.wantCtx && match(b.wantSrc, b.wantTag, m) {
		b.cond.Signal()
	}
	b.mu.Unlock()
}

// putDirect enqueues a message without locking or signalling. Only the
// event-driven executor uses it: every delivery happens on the single
// loop thread, and the loop performs its own receiver wakeups.
func (b *mailbox) putDirect(m *message) { b.enqueue(m) }

// enqueue stamps the arrival sequence and appends to the (ctx, src, tag)
// FIFO bucket. Caller holds b.mu (or is the event loop's only thread).
//
//perf:hotpath
func (b *mailbox) enqueue(m *message) {
	m.seq = b.seq
	b.seq++
	k := bkey{m.ctx, m.src, m.tag}
	if b.buckets == nil {
		b.buckets = make(map[bkey]*bucket) //lint:allow hotalloc one bucket map per mailbox, created on first message
	}
	bk := b.buckets[k]
	if bk == nil {
		bk = b.getBucket()
		b.buckets[k] = bk
	}
	bk.push(m)
	b.pending++
}

// tryTake removes and returns the first message matching (ctx, src, tag),
// or nil. Caller holds b.mu (or is the event loop's only thread).
func (b *mailbox) tryTake(ctx, src, tag int) *message {
	if b.pending == 0 {
		return nil
	}
	if src != AnySource && tag != AnyTag {
		k := bkey{ctx, src, tag}
		bk := b.buckets[k]
		if bk == nil {
			return nil
		}
		m := bk.pop()
		if bk.empty() {
			delete(b.buckets, k)
			b.putBucket(bk)
		}
		b.pending--
		return m
	}
	// Wildcard: earliest arrival among matching bucket heads. Map
	// iteration order is random, but the min-seq winner is not.
	var best *bucket
	var bestKey bkey
	for k, bk := range b.buckets {
		if k.ctx != ctx || bk.empty() {
			continue
		}
		if src != AnySource && k.src != src {
			continue
		}
		if tag != AnyTag && k.tag != tag {
			continue
		}
		if best == nil || bk.msgs[bk.head].seq < best.msgs[best.head].seq {
			best, bestKey = bk, k
		}
	}
	if best == nil {
		return nil
	}
	m := best.pop()
	if best.empty() {
		delete(b.buckets, bestKey)
		b.putBucket(best)
	}
	b.pending--
	return m
}

// take removes and returns the first message matching (ctx, src, tag),
// blocking until one is available or the world aborts. A non-nil
// deadCheck is probed whenever no message is pending: if it reports the
// source dead, take returns the failure instead of blocking forever.
// Pending messages win over a death (a rank that sent before dying
// still delivers), which keeps the outcome independent of host
// scheduling: whether a message exists at a virtual time is decided by
// the plan, not by goroutine interleaving.
func (b *mailbox) take(w *World, ctx, src, tag int, deadCheck func() *fault.RankFailure) (*message, *fault.RankFailure) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if m := b.tryTake(ctx, src, tag); m != nil {
			return m, nil
		}
		if w.aborted() {
			panic(errAborted)
		}
		if deadCheck != nil {
			if rf := deadCheck(); rf != nil {
				return nil, rf
			}
		}
		b.wantCtx, b.wantSrc, b.wantTag = ctx, src, tag
		b.waiting = true
		if b.cond == nil {
			b.cond = sync.NewCond(&b.mu)
		}
		b.cond.Wait()
		b.waiting = false
	}
}

// interrupt wakes a blocked receiver so it can observe an abort.
func (b *mailbox) interrupt() {
	b.mu.Lock()
	if b.cond != nil {
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}
