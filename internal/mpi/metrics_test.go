package mpi

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"cpx/internal/fault"
	"cpx/internal/telemetry"
)

func metricsCfg(base Config) Config {
	base.Metrics = &telemetry.Config{Interval: 1e-4}
	return base
}

// TestMetricsDoNotPerturbRun is the telemetry acceptance test: enabling
// the sampler must leave every simulation output bitwise identical —
// clocks, accounting, per-rank results, event timelines, the comm
// matrix and the JSON run summary. The sampler observes charges; it
// never participates in them.
func TestMetricsDoNotPerturbRun(t *testing.T) {
	const p = 8
	base := testCfg()
	base.Trace = true
	plain, plainSums := runMixed(t, p, base)
	sampled, sampledSums := runMixed(t, p, metricsCfg(base))

	assertStatsIdentical(t, "metrics off vs on", plain, sampled, plainSums, sampledSums)
	for r := range plain.Timelines {
		if !reflect.DeepEqual(plain.Timelines[r], sampled.Timelines[r]) {
			t.Errorf("rank %d timeline differs with metrics on", r)
		}
	}
	if !reflect.DeepEqual(plain.CommMatrix, sampled.CommMatrix) {
		t.Error("comm matrix differs with metrics on")
	}
	// The summary JSON must also match: the sampler feeds Stats.Metrics,
	// not the summary, so the artifact is byte-identical.
	if a, b := traceSummaryJSON(t, plain), traceSummaryJSON(t, sampled); a != b {
		t.Errorf("run summaries differ:\nplain:   %s\nsampled: %s", a, b)
	}
	if sampled.Metrics == nil || len(sampled.Metrics.Ranks) != p {
		t.Fatalf("sampled run carries no metrics series: %+v", sampled.Metrics)
	}
	if plain.Metrics != nil {
		t.Error("unsampled run carries a metrics series")
	}
}

// TestMetricsSeriesIdenticalAcrossHostParallelism extends the
// reproducibility contract to the series themselves: the sampled
// time-series is a pure function of virtual time, so GOMAXPROCS=1 and
// full host parallelism must produce identical samples, and the fast
// collective path must reproduce the message-level series exactly.
func TestMetricsSeriesIdenticalAcrossHostParallelism(t *testing.T) {
	const p = 8
	for _, base := range []Config{testCfg(), fastCfg()} {
		cfg := metricsCfg(base)
		parallel, _ := runMixed(t, p, cfg)
		prev := runtime.GOMAXPROCS(1)
		serial, _ := runMixed(t, p, cfg)
		runtime.GOMAXPROCS(prev)
		if !reflect.DeepEqual(parallel.Metrics, serial.Metrics) {
			t.Errorf("fast=%v: metrics series differ between host parallelism levels",
				base.FastCollectives)
		}
	}
}

// TestMetricsSeriesInvariants checks the structural guarantees of a
// finalized series: samples sit on the virtual-time grid, cumulative
// fields never decrease, mailbox depth is never negative, and totals
// dominate the last stored sample.
func TestMetricsSeriesInvariants(t *testing.T) {
	const p = 8
	cfg := metricsCfg(testCfg())
	st, _ := runMixed(t, p, cfg)
	if st.Metrics == nil {
		t.Fatal("no metrics series")
	}
	if st.Metrics.Interval != cfg.Metrics.Interval {
		t.Errorf("series interval = %v, want %v", st.Metrics.Interval, cfg.Metrics.Interval)
	}
	for _, rank := range st.Metrics.Ranks {
		var prev telemetry.Sample
		for i, s := range rank.Samples {
			if want := float64(i+1) * cfg.Metrics.Interval; s.T != want {
				t.Errorf("rank %d sample %d at T=%v, want grid point %v", rank.Rank, i, s.T, want)
			}
			if s.Compute < prev.Compute || s.Comm < prev.Comm || s.Wait < prev.Wait ||
				s.MsgsSent < prev.MsgsSent || s.MsgsRecv < prev.MsgsRecv ||
				s.BytesSent < prev.BytesSent || s.BytesRecv < prev.BytesRecv ||
				s.Collectives < prev.Collectives {
				t.Errorf("rank %d sample %d regressed a cumulative counter", rank.Rank, i)
			}
			if s.MailboxDepth < 0 {
				t.Errorf("rank %d sample %d mailbox depth %d < 0", rank.Rank, i, s.MailboxDepth)
			}
			prev = s
		}
		tot := rank.Totals
		if tot.Compute < prev.Compute || tot.MsgsSent < prev.MsgsSent || tot.T < prev.T {
			t.Errorf("rank %d totals %+v behind last sample %+v", rank.Rank, tot, prev)
		}
		if tot.Compute+tot.Comm+tot.Wait == 0 {
			t.Errorf("rank %d recorded no time at all", rank.Rank)
		}
	}
}

// TestMetricsCollectiveCountParity: the analytic fast path bypasses the
// message-level collective implementations, so its count hook lives in
// the rendezvous. Both paths must agree on how many collectives each
// rank entered.
func TestMetricsCollectiveCountParity(t *testing.T) {
	for _, p := range []int{2, 5, 8} {
		slow, _ := runMixed(t, p, metricsCfg(testCfg()))
		fast, _ := runMixed(t, p, metricsCfg(fastCfg()))
		for r := range slow.Metrics.Ranks {
			sc := slow.Metrics.Ranks[r].Totals.Collectives
			fc := fast.Metrics.Ranks[r].Totals.Collectives
			if sc != fc {
				t.Errorf("p=%d rank %d: %d collectives message-level, %d fast-path", p, r, sc, fc)
			}
			if sc == 0 {
				t.Errorf("p=%d rank %d counted no collectives", p, r)
			}
		}
	}
}

// TestMetricsObserverStreamsLiveProgress: the observer fires during the
// run with monotonically non-decreasing per-rank virtual time — the
// feed the serving layer turns into SSE progress events.
func TestMetricsObserverStreamsLiveProgress(t *testing.T) {
	const p = 4
	last := make([]float64, p)
	calls := make([]int, p)
	cfg := testCfg()
	cfg.Metrics = &telemetry.Config{Interval: 1e-4, Observer: func(rank int, s telemetry.Sample) {
		// Called from the rank's own goroutine: per-rank slots need no lock.
		if s.T < last[rank] {
			t.Errorf("rank %d observer T went backwards: %v -> %v", rank, last[rank], s.T)
		}
		last[rank] = s.T
		calls[rank]++
	}}
	sums := make([]float64, p)
	if _, err := Run(p, cfg, mixedProgram(sums)); err != nil {
		t.Fatal(err)
	}
	for r, n := range calls {
		if n == 0 {
			t.Errorf("rank %d observer never fired", r)
		}
	}
}

// TestFlightRecorderDumpsCrashedRankTail: when a fault plan kills ranks,
// the partial Stats must carry a flight-recorder tail for every crashed
// rank, chronologically ordered and ending at or before the death time.
func TestFlightRecorderDumpsCrashedRankTail(t *testing.T) {
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 1, At: 0.5}}}
	st, err := Run(2, faultCfg(plan), func(c *Comm) error {
		for i := 0; i < 8; i++ {
			c.ComputeSeconds(0.1) // rank 1 dies at t=0.5, mid loop
			peer := 1 - c.Rank()
			c.Send(peer, i, []float64{float64(i)})
			c.Recv(peer, i)
			c.Barrier()
		}
		return nil
	})
	var rf *fault.RanksFailed
	if !errors.As(err, &rf) {
		t.Fatalf("err = %v, want *fault.RanksFailed", err)
	}
	if st == nil || len(st.Flight) == 0 {
		t.Fatal("failed run carries no flight-recorder tails")
	}
	byRank := map[int]telemetry.RankTail{}
	for _, tail := range st.Flight {
		byRank[tail.Rank] = tail
	}
	for _, r := range rf.Crashed {
		tail, ok := byRank[r]
		if !ok {
			t.Fatalf("no flight tail for crashed rank %d (have %+v)", r, byRank)
		}
		if tail.FailedAt != rf.FailedAt {
			t.Errorf("rank %d tail FailedAt = %v, want %v", r, tail.FailedAt, rf.FailedAt)
		}
		if len(tail.Events) == 0 {
			t.Errorf("rank %d tail has no events", r)
		}
		if tail.Total < uint64(len(tail.Events)) {
			t.Errorf("rank %d total %d < retained %d", r, tail.Total, len(tail.Events))
		}
		prev := -1.0
		for i, ev := range tail.Events {
			if ev.T < prev {
				t.Errorf("rank %d event %d out of order: %v after %v", r, i, ev.T, prev)
			}
			prev = ev.T
			if ev.T > tail.FailedAt {
				t.Errorf("rank %d event %d at t=%v after death at %v", r, i, ev.T, tail.FailedAt)
			}
			if ev.Kind == "" {
				t.Errorf("rank %d event %d has no kind", r, i)
			}
		}
	}
	// The summary must surface the tails so cpxsim's partial JSON
	// artifact carries them without extra plumbing.
	if sum := st.Summary(); len(sum.Flight) != len(st.Flight) {
		t.Errorf("summary carries %d tails, stats %d", len(sum.Flight), len(st.Flight))
	}
	// A healthy run must not allocate recorders or dump tails.
	ok, err2 := Run(2, testCfg(), func(c *Comm) error { return nil })
	if err2 != nil {
		t.Fatal(err2)
	}
	if ok.Flight != nil {
		t.Errorf("healthy run carries flight tails: %+v", ok.Flight)
	}
}

// TestFlightRecorderExplicitCapacity: FlightEvents > 0 arms the recorder
// without a fault plan, so watchdog/cancel aborts also leave a trail;
// the ring must retain only the last FlightEvents events.
func TestFlightRecorderExplicitCapacity(t *testing.T) {
	cfg := testCfg()
	cfg.FlightEvents = 4
	cancel := make(chan struct{})
	close(cancel) // abort immediately: first blocking op unwinds
	cfg.Cancel = cancel
	st, err := Run(2, cfg, func(c *Comm) error {
		for i := 0; i < 10; i++ {
			peer := 1 - c.Rank()
			c.Send(peer, i, []float64{1})
			c.Recv(peer, i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if st == nil || len(st.Flight) == 0 {
		t.Fatal("cancelled run carries no flight tails")
	}
	for _, tail := range st.Flight {
		if len(tail.Events) > 4 {
			t.Errorf("rank %d retained %d events, capacity 4", tail.Rank, len(tail.Events))
		}
	}
}
