// Package mpi is an in-process, virtual-time message-passing runtime with
// MPI-like semantics. It stands in for the MPI library the paper's
// mini-apps use on ARCHER2 (see DESIGN.md §2): point-to-point messages
// and collectives move real data, and every rank carries a logical clock
// that advances through modelled compute time and through message
// causality. Ranks run as goroutines by default, or as coroutines on a
// single-threaded discrete-event loop (Config.EventDriven, event.go);
// the two executors are differentially tested to produce bitwise
// identical results.
//
// Timing model (conservative logical-clock PDES):
//
//   - Comm.Compute charges cluster-modelled seconds to the rank clock.
//   - Send charges the sender a per-message CPU overhead; the message is
//     stamped with a virtual arrival time = departure + network delay from
//     the cluster model (Hockney alpha-beta with intra/inter-node terms).
//   - Recv blocks (in host time) until a matching message exists, then
//     advances the rank clock to max(clock, arrival) + receive overhead.
//     The jump is accounted as communication/wait time.
//
// The simulated run-time of a program is the maximum rank clock at exit.
// Sends are eager and buffered (no rendezvous), so any communication
// pattern that is deadlock-free under buffered MPI semantics is
// deadlock-free here. Matching is FIFO per (communicator, source, tag),
// which preserves MPI's non-overtaking rule.
package mpi

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/fault"
	"cpx/internal/telemetry"
	"cpx/internal/trace"
)

// Reserved tag used internally by collective operations. User code must
// use tags in [0, TagUser).
const (
	tagCollective = 1 << 28
	// TagUser is the exclusive upper bound for user-supplied tags.
	TagUser = tagCollective
)

// AnyTag matches a message with any tag in Recv.
const AnyTag = -1

// AnySource matches a message from any source rank in Recv.
const AnySource = -1

// message is an in-flight point-to-point message. Float payloads travel
// in the dedicated f64 field so the dominant Send/Recv path never boxes
// a slice into an interface; []int and []byte use the generic payload
// field. Structs are pooled (pool.go): the receive that consumes a
// message returns it for reuse.
type message struct {
	ctx       int       // communicator context id
	src       int       // source rank within the communicator
	srcWorld  int       // source world rank (for tracing/causality)
	tag       int       // message tag
	f64       []float64 // float payload (a private copy), nil otherwise
	payload   any       // []int or []byte payload (a private copy)
	bytes     int       // payload size used for network cost
	departure float64   // virtual time the message left the sender
	arrival   float64   // virtual time the message reaches the receiver
	seq       uint64    // mailbox arrival order, stamped by put
}

var errAborted = errors.New("mpi: world aborted due to failure on another rank")

// errKilled is the unwind sentinel of a rank reaching its fault-plan
// crash time. Unlike errAborted it does not abort the world: survivors
// keep running and observe the death through failure detection.
var errKilled = errors.New("mpi: rank killed by fault plan")

// World holds the shared state of one simulated job.
type World struct {
	size     int
	machine  *cluster.Machine
	boxes    []*mailbox
	procs    []*proc
	wcomms   []Comm // per-rank world communicators, batch-allocated
	fastColl bool   // Config.FastCollectives && !Config.Trace && no fault plan
	bareColl bool // fastColl && no per-charge observers: stations may replay bare
	plan     *fault.Plan

	// ev is the discrete-event executor state (Config.EventDriven); nil
	// selects the goroutine runtime. See event.go.
	ev *eventLoop

	// deadMu guards deadAt: per-rank virtual death times (< 0 = alive).
	// A rank is recorded dead only once its goroutine can no longer send,
	// so "dead with no pending message" is a stable, deterministic fact.
	deadMu sync.Mutex
	deadAt []float64

	ctxMu   sync.Mutex
	ctxs    map[ctxKey]int
	nextCtx int

	stMu     sync.Mutex
	stations map[int]*station // analytic-collective rendezvous, by ctx

	abort atomic.Bool

	failMu   sync.Mutex
	finished bool  // set once all ranks returned; silences the watchdog
	failErr  error // watchdog (or other runtime-level) failure
}

type ctxKey struct {
	parent, gen, color int
}

func (w *World) aborted() bool { return w.abort.Load() }

// setAborted publishes the abort flag and wakes every blocked rank so it
// can unwind. Under the goroutine runtime the fan-out broadcasts on the
// mailbox and station condvars; the event-driven loop instead polls the
// flag between resumes and performs its own wakeups on the loop thread
// (so host-side callers like the watchdog never touch loop state). Both
// runtimes re-check the flag before blocking again, so one fan-out is
// enough.
func (w *World) setAborted() {
	if w.abort.Swap(true) {
		return
	}
	if w.ev != nil {
		return
	}
	for _, b := range w.boxes {
		b.interrupt()
	}
	w.stMu.Lock()
	stations := make([]*station, 0, len(w.stations))
	for _, st := range w.stations {
		//lint:allow determinism abort fan-out order is host-side only; interrupt is idempotent and never advances virtual time
		stations = append(stations, st)
	}
	w.stMu.Unlock()
	for _, st := range stations {
		st.interrupt()
	}
}

// recordDeath marks a rank dead at a virtual time and wakes every
// blocked receiver so it can run failure detection. Called only after
// the dying rank has delivered its last message (it panics at a charge
// point, before any subsequent put), so receivers always drain pending
// traffic before observing the death.
func (w *World) recordDeath(rank int, at float64) {
	w.deadMu.Lock()
	if w.deadAt[rank] < 0 {
		w.deadAt[rank] = at
	}
	w.deadMu.Unlock()
	if w.ev != nil {
		// recordDeath runs on the loop thread (die() and the rank-body
		// unwind both execute inside a resumed coroutine), so waking the
		// parked receivers directly is safe.
		w.ev.wakeRecvParked()
		return
	}
	for _, b := range w.boxes {
		b.interrupt()
	}
}

// deliver hands an in-flight message to the destination rank's mailbox,
// waking the receiver if it is blocked on a matching pattern. The two
// executors differ only in the wake mechanism (condvar signal vs event
// enqueue); the mailbox FIFO state is shared.
func (w *World) deliver(dstWorld int, m *message) {
	if w.ev != nil {
		w.ev.deliver(dstWorld, m)
		return
	}
	w.boxes[dstWorld].put(m)
}

// take blocks rank's receive until a matching message (or failure
// detection) is available, under whichever executor runs the world.
func (w *World) take(rank, ctx, src, tag int, deadCheck func() *fault.RankFailure) (*message, *fault.RankFailure) {
	if w.ev != nil {
		return w.ev.take(rank, ctx, src, tag, deadCheck)
	}
	return w.boxes[rank].take(w, ctx, src, tag, deadCheck)
}

// failureFor returns the failure record of a dead rank, or nil.
func (w *World) failureFor(rank int) *fault.RankFailure {
	if w.plan == nil {
		return nil
	}
	w.deadMu.Lock()
	at := w.deadAt[rank]
	w.deadMu.Unlock()
	if at < 0 {
		return nil
	}
	return &fault.RankFailure{Rank: rank, FailedAt: at}
}

// fail records a runtime-level failure (e.g. the watchdog firing) and
// aborts the world, unless the run has already completed.
func (w *World) fail(err error) {
	w.failMu.Lock()
	if w.finished || w.failErr != nil {
		w.failMu.Unlock()
		return
	}
	w.failErr = err
	w.failMu.Unlock()
	w.setAborted()
}

// contextFor deterministically assigns a fresh context id for a split,
// identified by (parent ctx, per-comm split generation, color). All member
// ranks look up the same key and receive the same id.
func (w *World) contextFor(parent, gen, color int) int {
	w.ctxMu.Lock()
	defer w.ctxMu.Unlock()
	k := ctxKey{parent, gen, color}
	if id, ok := w.ctxs[k]; ok {
		return id
	}
	w.nextCtx++
	w.ctxs[k] = w.nextCtx
	return w.nextCtx
}

// commCell accumulates one row entry of the rank×rank comm matrix.
type commCell struct {
	msgs, bytes int64
}

// proc is the per-rank virtual-time state, shared by every communicator
// the rank belongs to.
type proc struct {
	worldRank int
	clock     float64
	compute   float64
	comm      float64
	arena     f64Arena // outgoing payload clones (owner-goroutine only)
	profile   *trace.Profile
	// Event-tracing state, nil/empty unless Config.Trace is set. comms is
	// this rank's sparse comm-matrix row (keyed by destination world
	// rank); op labels events with the enclosing collective operation.
	timeline *trace.Timeline
	comms    map[int]*commCell
	op       string

	// Fault-plan state (Config.Faults). crashAt is this rank's scheduled
	// death time (+Inf = never); the clock can never pass it — any charge
	// that would cross it is truncated and the rank dies. node feeds the
	// plan's straggler/link lookups; world backs the death record.
	world   *World
	crashAt float64
	node    int

	// Live-telemetry state, nil unless enabled. metrics samples counters
	// at virtual-time intervals (Config.Metrics); flight keeps the
	// bounded post-mortem event ring (fault plans, Config.FlightEvents).
	// Both only *observe* charges the runtime already makes — separate
	// accumulators, no change to any existing clock arithmetic — which
	// is what keeps runs bitwise identical with telemetry on or off.
	metrics *telemetry.Collector
	flight  *telemetry.FlightRecorder
	popOp   func() // preallocated pushOp closer (one alloc per rank, not per call)
}

// clamp truncates a clock target at the rank's crash time, reporting
// whether the rank dies at the end of this charge.
func (p *proc) clamp(t1 float64) (float64, bool) {
	if t1 < p.crashAt {
		return t1, false
	}
	return p.crashAt, true
}

// die records the rank's death at its current clock and unwinds. The
// death is published before the panic so no later send can exist.
func (p *proc) die() {
	p.world.recordDeath(p.worldRank, p.clock)
	panic(errKilled)
}

// chargeCompute advances the rank's clock by s seconds of compute.
// Runs once per Compute call — the densest charge path in a simulation.
//
//perf:hotpath
func (p *proc) chargeCompute(s float64) {
	if p.world != nil && p.world.plan != nil {
		s = p.world.plan.ComputeSeconds(p.node, p.clock, s)
	}
	t0 := p.clock
	t1, died := p.clamp(p.clock + s)
	if died {
		s = t1 - t0 // truncated at the crash
	}
	p.clock = t1
	p.compute += s
	if p.profile != nil {
		p.profile.AddCompute(s)
	}
	if p.timeline != nil {
		p.timeline.Add(trace.Event{Kind: trace.EvCompute, T0: t0, T1: p.clock,
			Region: p.profile.Current(), Op: p.op, Peer: -1})
	}
	if p.metrics != nil {
		p.metrics.AdvanceCompute(t0, p.clock)
	}
	if died {
		p.die()
	}
}

// chargeCommAs charges s seconds of communication, recording a timeline
// event of the given kind when tracing is on.
//
//perf:hotpath
func (p *proc) chargeCommAs(s float64, kind trace.EventKind, peer, bytes, tag int) {
	t0 := p.clock
	t1, died := p.clamp(p.clock + s)
	if died {
		s = t1 - t0 // truncated at the crash
	}
	p.clock = t1
	p.comm += s
	if p.profile != nil {
		p.profile.AddComm(s)
	}
	if p.timeline != nil {
		p.timeline.Add(trace.Event{Kind: kind, T0: t0, T1: p.clock,
			Region: p.profile.Current(), Op: p.op, Peer: peer, Bytes: bytes, Tag: tag})
	}
	if p.metrics != nil {
		if kind == trace.EvWait {
			p.metrics.AdvanceWait(t0, p.clock)
		} else {
			p.metrics.AdvanceComm(t0, p.clock)
		}
	}
	if died {
		p.die()
	}
}

// chargeComm charges plain communication time. The wrapper must stay
// under the inliner budget so the constant arguments fold at the sites.
//
//perf:inline
//perf:hotpath
func (p *proc) chargeComm(s float64) { p.chargeCommAs(s, trace.EvComm, -1, 0, 0) }

// waitUntil advances the clock to a message's arrival time, accounting
// the jump as communication/wait time and recording the causality edge
// (sender world rank + virtual departure time) when tracing is on.
func (p *proc) waitUntil(m *message) {
	if m.arrival <= p.clock {
		return
	}
	t1, died := p.clamp(m.arrival)
	wait := t1 - p.clock
	t0 := p.clock
	p.clock = t1
	p.comm += wait
	if p.profile != nil {
		p.profile.AddComm(wait)
	}
	if p.timeline != nil {
		p.timeline.Add(trace.Event{Kind: trace.EvWait, T0: t0, T1: t1,
			Region: p.profile.Current(), Op: p.op,
			Peer: m.srcWorld, Bytes: m.bytes, Tag: m.tag, SendT: m.departure})
	}
	if p.metrics != nil {
		p.metrics.AdvanceWait(t0, t1)
	}
	if died {
		p.die()
	}
}

// advanceTo performs the waitUntil clock/accounting updates for a
// message that exists only analytically (the fast-collective path, which
// never runs when tracing is on). The floating-point operations and
// their order are identical to waitUntil's, which is what keeps the two
// paths bitwise identical.
func (p *proc) advanceTo(arrival float64) {
	if arrival <= p.clock {
		return
	}
	wait := arrival - p.clock
	t0 := p.clock
	p.clock = arrival
	p.comm += wait
	if p.profile != nil {
		p.profile.AddComm(wait)
	}
	if p.metrics != nil {
		p.metrics.AdvanceWait(t0, arrival)
	}
}

// countMessage records one outgoing message in this rank's comm-matrix row.
func (p *proc) countMessage(dstWorld, bytes int) {
	if p.comms == nil {
		return
	}
	cell := p.comms[dstWorld]
	if cell == nil {
		cell = &commCell{}
		p.comms[dstWorld] = cell
	}
	cell.msgs++
	cell.bytes += int64(bytes)
}

// sharedNoop is returned by pushOp when no telemetry consumer is active
// or an outer collective already holds the label, so call sites can
// always defer it.
var sharedNoop = func() {}

// pushOp labels subsequent events with a collective-operation name until
// the returned function is called. The outermost label wins (a Split's
// internal allgather stays labelled "comm_split"). The outermost entry
// is also where the metrics collective counter and the flight recorder
// see the operation — nested building blocks are not double-counted.
func (p *proc) pushOp(name string) func() {
	if p.op != "" || (p.timeline == nil && p.metrics == nil && p.flight == nil) {
		return sharedNoop
	}
	p.op = name
	if p.metrics != nil {
		p.metrics.Collective()
	}
	if p.flight != nil {
		p.flight.Record(telemetry.FlightEvent{T: p.clock, Kind: telemetry.FlightCollective, Op: name})
	}
	if p.popOp == nil {
		p.popOp = func() { p.op = "" }
	}
	return p.popOp
}

// Comm is a communicator: a group of ranks with a private message-matching
// context. The world communicator covers all ranks; Split derives subsets.
type Comm struct {
	world *World
	proc  *proc
	ctx   int
	rank  int   // rank within this communicator
	group []int // group[i] = world rank of communicator rank i; nil = identity/range
	// Contiguous-range groups (RangeComm): world rank = base + rank,
	// with `size` members. Used instead of `group` so huge communicators
	// need O(1) memory per rank. base=0,size=0 with nil group means the
	// world communicator.
	base     int
	size     int
	splitGen int // number of Splits performed on this comm (for ctx derivation)
	// station caches this communicator's fast-collective rendezvous
	// station (lazily resolved), so repeated collectives skip the
	// stations-map lock. Per-rank like the Comm itself.
	station *station
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int {
	if c.group != nil {
		return len(c.group)
	}
	if c.size > 0 {
		return c.size
	}
	return c.world.size
}

// WorldRank returns the caller's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.proc.worldRank }

// worldRankOf maps a communicator rank to its world rank.
func (c *Comm) worldRankOf(r int) int {
	if c.group != nil {
		return c.group[r]
	}
	return c.base + r
}

// Machine returns the cluster model the world runs on.
func (c *Comm) Machine() *cluster.Machine { return c.world.machine }

// Clock returns the caller's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.proc.clock }

// Profile returns the rank's trace profile (may be nil if profiling is off).
func (c *Comm) Profile() *trace.Profile { return c.proc.profile }

// Compute charges the virtual cost of the described work to the rank clock.
func (c *Comm) Compute(w cluster.Work) { c.proc.chargeCompute(c.world.machine.ComputeTime(w)) }

// ComputeSeconds charges s virtual seconds of computation directly.
func (c *Comm) ComputeSeconds(s float64) {
	if s < 0 {
		panic("mpi: negative compute time")
	}
	c.proc.chargeCompute(s)
}

// ComputeTime returns the rank's accumulated virtual compute seconds.
func (c *Comm) ComputeTime() float64 { return c.proc.compute }

// CommTime returns the rank's accumulated virtual communication seconds.
func (c *Comm) CommTime() float64 { return c.proc.comm }

// StretchSince multiplies the virtual time accrued since the given marks
// by `factor`, preserving the compute/communication split. Used by
// representative sub-stepping: a few executed micro-steps stand in for a
// much longer block whose cost is charged at the measured per-step rate
// (DESIGN.md §5.2).
func (c *Comm) StretchSince(computeMark, commMark, factor float64) {
	if factor < 1 {
		panic("mpi: StretchSince factor must be >= 1")
	}
	dComp := (c.proc.compute - computeMark) * (factor - 1)
	dComm := (c.proc.comm - commMark) * (factor - 1)
	if dComp < 0 || dComm < 0 {
		panic("mpi: StretchSince marks are in the future")
	}
	c.proc.chargeCompute(dComp)
	c.proc.chargeComm(dComm)
}

// ChargeCommSeconds charges s virtual seconds of communication time
// directly. Used where a dense communication schedule's per-message CPU
// overheads are charged analytically while only the non-empty payloads
// travel as real messages (e.g. the spray alltoallv; DESIGN.md §5.2).
func (c *Comm) ChargeCommSeconds(s float64) {
	if s < 0 {
		panic("mpi: negative comm time")
	}
	c.proc.chargeComm(s)
}

// ResetClock sets the rank clock to exactly t — the restart primitive
// of checkpoint/restart: a recovered world rebuilds its solvers and
// resumes exactly at the checkpoint's synchronized virtual time, so a
// recovered run's stepping clocks are bitwise identical to a fault-free
// run's. A forward jump is charged as communication (checkpoint I/O and
// coordination wait), which also keeps traced timelines tiling; a small
// backward set (a rank ahead of a checkpoint-sync target) adjusts the
// clock silently. A reset that would cross the rank's scheduled crash
// time kills the rank.
func (c *Comm) ResetClock(t float64) {
	p := c.proc
	if t > p.clock {
		p.chargeCommAs(t-p.clock, trace.EvComm, -1, 0, 0)
		return
	}
	p.clock = t
	if _, died := p.clamp(t); died {
		p.die()
	}
}

// CheckpointSync is the clock coordination of one checkpoint: an
// allreduce of every rank's (entry clock, local I/O cost) maxima, after
// which each rank's clock is set to exactly maxClock + maxCost — the
// virtual time the coordinated checkpoint completes, identical across
// ranks bit for bit. Collective over the communicator; satisfies
// fault.Runtime.
func (c *Comm) CheckpointSync(cost float64) float64 {
	defer c.proc.pushOp("checkpoint")()
	r := c.Allreduce([]float64{c.proc.clock, cost}, Max)
	t := r[0] + r[1]
	c.ResetClock(t)
	return t
}

// payloadBytes reports the wire size of a supported generic payload.
// Float payloads never pass through here: they travel in message.f64 via
// sendF64, avoiding the interface boxing.
func payloadBytes(data any) int {
	switch d := data.(type) {
	case []int:
		return 8 * len(d)
	case []byte:
		return len(d)
	case nil:
		return 0
	default:
		panic(fmt.Sprintf("mpi: unsupported payload type %T", data))
	}
}

// clonePayload copies the payload so sender and receiver never alias.
func clonePayload(data any) any {
	switch d := data.(type) {
	case []int:
		out := make([]int, len(d))
		copy(out, d)
		return out
	case []byte:
		out := make([]byte, len(d))
		copy(out, d)
		return out
	case nil:
		return nil
	default:
		panic(fmt.Sprintf("mpi: unsupported payload type %T", data))
	}
}

func (c *Comm) checkPeer(r int, op string) {
	if r < 0 || r >= c.Size() {
		panic(fmt.Sprintf("mpi: %s: rank %d out of range [0,%d)", op, r, c.Size()))
	}
}

// finishSend stamps virtual times onto a prepared message and delivers
// it. chargedBytes is the wire size used for both the CPU overhead
// accounting and the network delay; it normally equals the payload size
// but SendVirtual substitutes the modelled full-scale size. This is the
// single implementation behind Send, SendInts, SendBytes and
// SendVirtual.
func (c *Comm) finishSend(to, tag int, m *message, chargedBytes int) {
	mach := c.world.machine
	srcWorld := c.proc.worldRank
	dstWorld := c.worldRankOf(to)
	c.proc.chargeCommAs(mach.SendOverhead, trace.EvSend, dstWorld, chargedBytes, tag)
	c.proc.countMessage(dstWorld, chargedBytes)
	departure := c.proc.clock
	m.ctx, m.src, m.srcWorld, m.tag = c.ctx, c.rank, srcWorld, tag
	m.bytes = chargedBytes
	m.departure = departure
	if plan := c.world.plan; plan != nil {
		m.arrival = departure + plan.TransferTime(mach, srcWorld, dstWorld, chargedBytes, departure)
	} else {
		m.arrival = departure + mach.TransferTime(srcWorld, dstWorld, chargedBytes)
	}
	if p := c.proc; p.metrics != nil {
		p.metrics.Sent(chargedBytes)
	}
	if p := c.proc; p.flight != nil {
		p.flight.Record(telemetry.FlightEvent{T: departure, Kind: telemetry.FlightSend,
			Peer: dstWorld, Bytes: chargedBytes, Tag: tag})
	}
	c.world.deliver(dstWorld, m)
}

// sendF64 is the float64 fast path: the clone comes from the rank's
// payload arena and the slice never passes through an interface.
func (c *Comm) sendF64(to, tag int, data []float64, chargedBytes int, op string) {
	c.checkPeer(to, op)
	m := getMessage()
	m.f64 = c.proc.arena.clone(data)
	c.finishSend(to, tag, m, chargedBytes)
}

// sendRaw performs an eager buffered send of an []int or []byte payload.
func (c *Comm) sendRaw(to, tag int, data any) {
	c.checkPeer(to, "Send")
	m := getMessage()
	m.payload = clonePayload(data)
	c.finishSend(to, tag, m, payloadBytes(data))
}

// failPeer surfaces a peer's death ULFM-style: the survivor's clock
// advances to the modelled detection time (death + detection latency,
// accounted as wait) and the receive unwinds with the RankFailure. The
// error propagates through any collective built on receives, so whole
// communicators learn of the failure instead of deadlocking.
func (c *Comm) failPeer(rf *fault.RankFailure) {
	detect := rf.FailedAt + c.world.plan.Detection()
	if detect > c.proc.clock {
		c.proc.chargeCommAs(detect-c.proc.clock, trace.EvWait, -1, 0, 0)
	}
	rf.DetectedAt = c.proc.clock
	panic(rf)
}

// deadCheckFor builds the failure probe a blocked receive runs against a
// specific source (or AnySource), or nil when failure detection cannot
// apply.
func (c *Comm) deadCheckFor(from int) func() *fault.RankFailure {
	if c.world.plan == nil {
		return nil
	}
	if from == AnySource {
		if c.Size() < 2 {
			return nil
		}
		return c.anySourceFailure
	}
	src := c.worldRankOf(from)
	return func() *fault.RankFailure { return c.world.failureFor(src) }
}

// anySourceFailure is the dead-check of a wildcard receive: it reports a
// failure only once *every* other member of the communicator is dead, the
// deterministic point at which no matching message can ever be sent
// again. (Failing on the first dead peer would race against live
// senders' deliveries in host time.) The failure reported is the death
// that completed the condition — the largest FailedAt, ties broken by the
// lowest world rank — so the survivor's detection time is the virtual
// moment its last potential sender died, independent of host scheduling.
// Pending messages still win: take drains the queue before probing.
func (c *Comm) anySourceFailure() *fault.RankFailure {
	w := c.world
	p := c.Size()
	last, lastAt := -1, -1.0
	w.deadMu.Lock()
	defer w.deadMu.Unlock()
	for r := 0; r < p; r++ {
		if r == c.rank {
			continue
		}
		at := w.deadAt[c.worldRankOf(r)]
		if at < 0 {
			return nil
		}
		if at > lastAt {
			last, lastAt = c.worldRankOf(r), at
		}
	}
	return &fault.RankFailure{Rank: last, FailedAt: lastAt}
}

// recvRaw blocks for a matching message and advances the virtual clock.
// The returned message must be handed back via releaseMessage once its
// payload has been taken. Under a fault plan, a receive from a dead rank
// with no pending message fails via failPeer; pending messages are
// always drained first (a rank that sent before dying still delivers).
func (c *Comm) recvRaw(from, tag int) *message {
	if from != AnySource {
		c.checkPeer(from, "Recv")
	}
	msg, rf := c.world.take(c.proc.worldRank, c.ctx, from, tag, c.deadCheckFor(from))
	if rf != nil {
		c.failPeer(rf)
	}
	// The jump to the arrival time is time this rank spent waiting.
	c.proc.waitUntil(msg)
	c.proc.chargeCommAs(c.world.machine.RecvOverhead, trace.EvRecv, msg.srcWorld, msg.bytes, msg.tag)
	if p := c.proc; p.metrics != nil {
		p.metrics.Received(uint64(msg.bytes), msg.arrival)
	}
	if p := c.proc; p.flight != nil {
		p.flight.Record(telemetry.FlightEvent{T: p.clock, Kind: telemetry.FlightRecv,
			Peer: msg.srcWorld, Bytes: msg.bytes, Tag: msg.tag})
	}
	return msg
}

// recvF64 receives a float payload, returning the message struct to the
// pool.
func (c *Comm) recvF64(from, tag int) ([]float64, int, int) {
	m := c.recvRaw(from, tag)
	if m.payload != nil {
		panic(fmt.Sprintf("mpi: Recv type mismatch: got %T, want []float64", m.payload))
	}
	d, src, mtag := m.f64, m.src, m.tag
	releaseMessage(m)
	return d, src, mtag
}

// Send transmits a []float64 to rank `to` with the given tag.
func (c *Comm) Send(to, tag int, data []float64) {
	c.sendF64(to, tag, data, 8*len(data), "Send")
}

// RecvAll receives n messages of the given tag from any sources, as if
// posted as n receives completed by one MPI_Waitall: the virtual clock
// advances to the latest arrival plus the per-message overheads, so the
// result is independent of host-side delivery order. Returns payloads
// sorted by source rank (ties by arrival), with sources aligned.
func (c *Comm) RecvAll(n, tag int) (data [][]float64, sources []int) {
	type got struct {
		src      int
		srcWorld int
		bytes    int
		arrival  float64
		payload  []float64
	}
	msgs := make([]got, 0, n)
	var latest message // the message whose arrival completes the Waitall
	deadCheck := c.deadCheckFor(AnySource)
	for i := 0; i < n; i++ {
		m, rf := c.world.take(c.proc.worldRank, c.ctx, AnySource, tag, deadCheck)
		if rf != nil {
			// A wildcard wait can only fail once every potential sender is
			// dead; unwind like any receive from a dead peer.
			c.failPeer(rf)
		}
		if m.payload != nil {
			panic(fmt.Sprintf("mpi: RecvAll type mismatch: got %T, want []float64", m.payload))
		}
		msgs = append(msgs, got{m.src, m.srcWorld, m.bytes, m.arrival, m.f64})
		if i == 0 || m.arrival > latest.arrival {
			latest = *m
		}
		releaseMessage(m)
	}
	if n > 0 {
		c.proc.waitUntil(&latest)
	}
	c.proc.chargeCommAs(float64(n)*c.world.machine.RecvOverhead, trace.EvRecv, -1, 0, tag)
	sort.Slice(msgs, func(a, b int) bool {
		if msgs[a].src != msgs[b].src {
			return msgs[a].src < msgs[b].src
		}
		return msgs[a].arrival < msgs[b].arrival
	})
	if p := c.proc; p.metrics != nil || p.flight != nil {
		// All n receives complete at the Waitall's final clock; counting
		// after the sort keeps the flight-recorder order deterministic.
		for _, m := range msgs {
			if p.metrics != nil {
				p.metrics.Received(uint64(m.bytes), m.arrival)
			}
			if p.flight != nil {
				p.flight.Record(telemetry.FlightEvent{T: p.clock, Kind: telemetry.FlightRecv,
					Peer: m.srcWorld, Bytes: m.bytes, Tag: tag})
			}
		}
	}
	data = make([][]float64, n)
	sources = make([]int, n)
	for i, m := range msgs {
		data[i] = m.payload
		sources[i] = m.src
	}
	return data, sources
}

// SendVirtual transmits data but charges the network cost of
// virtualBytes instead of the payload's real size. Mini-apps running
// scaled-down working sets use it so message costs reflect the true
// problem size (DESIGN.md §5.2).
func (c *Comm) SendVirtual(to, tag int, data []float64, virtualBytes int) {
	c.sendF64(to, tag, data, virtualBytes, "SendVirtual")
}

// Recv receives a []float64 from rank `from` (or AnySource) with the given
// tag (or AnyTag). It returns the payload, its source rank and tag.
func (c *Comm) Recv(from, tag int) ([]float64, int, int) {
	return c.recvF64(from, tag)
}

// SendInts transmits a []int.
func (c *Comm) SendInts(to, tag int, data []int) { c.sendRaw(to, tag, data) }

// RecvInts receives a []int.
func (c *Comm) RecvInts(from, tag int) ([]int, int, int) {
	m := c.recvRaw(from, tag)
	if m.f64 != nil {
		panic("mpi: RecvInts type mismatch: got []float64, want []int")
	}
	d, ok := m.payload.([]int)
	if !ok && m.payload != nil {
		panic(fmt.Sprintf("mpi: RecvInts type mismatch: got %T, want []int", m.payload))
	}
	src, mtag := m.src, m.tag
	releaseMessage(m)
	return d, src, mtag
}

// SendBytes transmits a raw []byte.
func (c *Comm) SendBytes(to, tag int, data []byte) { c.sendRaw(to, tag, data) }

// RecvBytes receives a raw []byte.
func (c *Comm) RecvBytes(from, tag int) ([]byte, int, int) {
	m := c.recvRaw(from, tag)
	if m.f64 != nil {
		panic("mpi: RecvBytes type mismatch: got []float64, want []byte")
	}
	d, ok := m.payload.([]byte)
	if !ok && m.payload != nil {
		panic(fmt.Sprintf("mpi: RecvBytes type mismatch: got %T, want []byte", m.payload))
	}
	src, mtag := m.src, m.tag
	releaseMessage(m)
	return d, src, mtag
}

// SendRecv sends to `to` and receives from `from` in one step, the staple
// of halo exchanges. Because sends are eager this cannot deadlock.
func (c *Comm) SendRecv(to, sendTag int, send []float64, from, recvTag int) []float64 {
	c.Send(to, sendTag, send)
	data, _, _ := c.Recv(from, recvTag)
	return data
}

// Stats summarises a completed run.
type Stats struct {
	Ranks    int
	Elapsed  float64 // simulated run-time: the maximum rank clock
	Clocks   []float64
	Compute  []float64 // per-rank virtual compute seconds
	Comm     []float64 // per-rank virtual communication+wait seconds
	Profiles []*trace.Profile
	// Timelines holds the per-rank event timelines and CommMatrix the
	// rank×rank message/byte counts; both are nil unless Config.Trace.
	Timelines  []*trace.Timeline
	CommMatrix *trace.CommMatrix
	// Metrics holds the per-rank virtual-time metric series; nil unless
	// Config.Metrics was set.
	Metrics *telemetry.RunSeries
	// Flight holds the flight-recorder tails of a failed run: the dead
	// ranks' last events when ranks died, or every rank's tail when an
	// enabled recorder saw the run abort (watchdog, cancellation). Nil
	// for successful runs and when recording was off.
	Flight []telemetry.RankTail
}

// MaxClockRank returns the rank whose clock set Elapsed.
func (s *Stats) MaxClockRank() int {
	best := 0
	for i, c := range s.Clocks {
		if c > s.Clocks[best] {
			best = i
		}
	}
	return best
}

// CriticalPath analyses the message-causality chain that sets Elapsed.
// It requires Config.Trace to have been set on the run.
func (s *Stats) CriticalPath() (*trace.CriticalPath, error) {
	if s.Timelines == nil {
		return nil, errors.New("mpi: CriticalPath requires Config.Trace")
	}
	return trace.ComputeCriticalPath(s.Timelines)
}

// Summary builds the machine-readable run summary, including the
// per-region profile, critical path and comm-matrix sections when the
// run recorded them.
func (s *Stats) Summary() *trace.RunSummary {
	sum := &trace.RunSummary{
		Ranks:        s.Ranks,
		Elapsed:      s.Elapsed,
		MaxClockRank: s.MaxClockRank(),
		AvgCompute:   s.AvgCompute(),
		AvgComm:      s.AvgComm(),
		CommFraction: s.CommFraction(),
	}
	if prof := s.MergedProfile(); prof != nil {
		for _, name := range prof.Regions() {
			e := prof.Entry(name)
			sum.Regions = append(sum.Regions, trace.RegionSummary{
				Region: name, Compute: e.Compute, Comm: e.Comm, Calls: e.Calls,
			})
		}
	}
	if cp, err := s.CriticalPath(); err == nil {
		sum.CriticalPath = cp.Summarize()
	}
	if s.CommMatrix != nil {
		msgs, bytes := s.CommMatrix.Totals()
		sum.Comm = &trace.CommSummary{Messages: msgs, Bytes: bytes, Pairs: len(s.CommMatrix.Edges)}
	}
	sum.Flight = s.Flight
	return sum
}

// MaxCompute returns the largest per-rank compute time.
func (s *Stats) MaxCompute() float64 { return maxOf(s.Compute) }

// AvgCompute returns the mean per-rank compute time.
func (s *Stats) AvgCompute() float64 {
	if s.Ranks == 0 {
		return 0
	}
	return sumOf(s.Compute) / float64(s.Ranks)
}

// AvgComm returns the mean per-rank communication time.
func (s *Stats) AvgComm() float64 {
	if s.Ranks == 0 {
		return 0
	}
	return sumOf(s.Comm) / float64(s.Ranks)
}

// CommFraction is the mean fraction of run-time spent communicating.
func (s *Stats) CommFraction() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return s.AvgComm() / s.Elapsed
}

// MergedProfile aggregates all rank profiles (nil if profiling was off).
func (s *Stats) MergedProfile() *trace.Profile {
	if len(s.Profiles) == 0 || s.Profiles[0] == nil {
		return nil
	}
	return trace.MergeAll(s.Profiles)
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func sumOf(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// Config controls a Run.
type Config struct {
	// Machine is the cluster model; defaults to cluster.ARCHER2().
	Machine *cluster.Machine
	// Profile enables per-rank trace profiles.
	Profile bool
	// Trace enables per-rank event timelines (virtual-time spans for
	// compute, send, recv/wait and collective phases) and the rank×rank
	// communication matrix, feeding the critical-path analysis and the
	// Perfetto/JSON exporters. Implies Profile. Off by default: the
	// un-traced fast path records nothing.
	Trace bool
	// TraceMaxEvents caps the events recorded per rank to bound memory;
	// <= 0 selects trace.DefaultMaxEvents. Ranks that exceed the cap
	// report dropped events and are rejected by the critical-path
	// analysis rather than yielding a truncated chain.
	TraceMaxEvents int
	// FastCollectives computes Barrier, Bcast and Allreduce centrally
	// instead of through point-to-point messages: the ranks rendezvous,
	// one goroutine replays the exact clock recurrence the message-level
	// algorithm induces (same floating-point operations in the same
	// order), and everyone leaves with bitwise-identical clocks, comm
	// accounting and results. This removes the mailbox and scheduler
	// traffic that dominates host time in collective-heavy runs at high
	// rank counts. Ignored when Trace is set: tracing forces the
	// message-level path so event timelines and the comm matrix stay
	// complete.
	FastCollectives bool
	// EventDriven selects the single-threaded discrete-event executor:
	// rank programs run as resumable coroutines ordered by a virtual-clock
	// event heap instead of one goroutine per rank, with no mutexes or
	// condition variables on the messaging hot path. Blocking operations
	// (Recv, collectives, fault-detection waits) become yield points that
	// park the rank until the matching virtual-time event fires. Clocks,
	// Stats, traces and metric series are bitwise identical to the
	// goroutine runtime's (event_test.go enforces this differentially);
	// the win is host time at high rank counts, where goroutine scheduling
	// and lock traffic dominate. A deadlocked program is detected
	// immediately (no runnable rank, live ranks parked) instead of
	// stalling until the watchdog fires.
	EventDriven bool
	// Watchdog aborts the run if it exceeds this much *host* time,
	// catching deadlocked communication patterns in tests. Defaults to
	// 120 s; negative disables.
	Watchdog time.Duration
	// Faults injects the deterministic failure schedule of a fault.Plan:
	// rank crashes, straggler nodes and degraded links (DESIGN.md §7).
	// When ranks crash, Run returns partial Stats plus a
	// *fault.RanksFailed error instead of aborting; survivors observe
	// dead peers as *fault.RankFailure errors after the plan's detection
	// latency. A fault plan forces the message-level collective path
	// (FastCollectives is ignored) so failures propagate through
	// collectives. The plan must not be mutated during the run.
	Faults *fault.Plan
	// Cancel, when non-nil, aborts the run as soon as the channel is
	// closed: the abort fan-out wakes every blocked rank, all rank
	// goroutines unwind, and Run returns ErrCanceled (with partial
	// Stats, like any other aborted run). This is how the serving
	// layer plumbs an HTTP request context into a simulation — pass
	// ctx.Done(). Cancellation is a host-side race against completion
	// by design; a run that finishes first returns normally.
	Cancel <-chan struct{}
	// Metrics enables the opt-in virtual-time metrics sampler: per-rank
	// counters and gauges sampled at fixed virtual-time intervals into
	// Stats.Metrics, with optional live snapshots via Config.Observer.
	// Sampling only observes the charges the runtime already makes, so
	// clocks, stats and traces are bitwise identical with metrics on or
	// off (metrics_test.go enforces this differentially). On the
	// analytic-collective fast path message counters cover only the
	// point-to-point traffic — the replayed collectives move no real
	// messages — while all time series remain exact.
	Metrics *telemetry.Config
	// FlightEvents controls the per-rank flight recorder, the bounded
	// ring of recent sends/receives/collectives dumped into
	// Stats.Flight when a run fails. > 0 sets the ring capacity; 0
	// enables it automatically (default depth) whenever a fault plan is
	// set; < 0 disables it entirely.
	FlightEvents int
}

// ErrCanceled reports that a run was aborted through Config.Cancel
// before completing. Callers match it with errors.Is.
var ErrCanceled = errors.New("mpi: run canceled")

// Run executes fn on `size` simulated ranks and returns timing statistics.
// Any rank returning an error or panicking aborts the whole world; the
// first failure is reported. Ranks killed by a fault plan (Config.Faults)
// do not abort: the run completes, survivors observing the death unwind
// with *fault.RankFailure, and Run returns a *fault.RanksFailed error.
// On any error the returned Stats still describe the partial run (clocks
// and timelines up to each rank's last charge), so aborted runs export
// cleanly; callers must treat them as incomplete.
func Run(size int, cfg Config, fn func(*Comm) error) (*Stats, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: size must be positive, got %d", size)
	}
	m := cfg.Machine
	if m == nil {
		m = cluster.ARCHER2()
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	plan := cfg.Faults
	if plan != nil {
		if err := plan.Validate(); err != nil {
			return nil, err
		}
		if plan.Empty() {
			plan = nil
		}
	}
	w := &World{
		size:     size,
		machine:  m,
		boxes:    make([]*mailbox, size),
		procs:    make([]*proc, size),
		ctxs:     make(map[ctxKey]int),
		stations: make(map[int]*station),
		fastColl: cfg.FastCollectives && !cfg.Trace && plan == nil,
		plan:     plan,
		deadAt:   make([]float64, size),
	}
	// With no per-charge observers (profiles, timelines, metrics) and no
	// plan, chargeCommAs/advanceTo reduce to plain clock/comm arithmetic,
	// so stations may run the inlined bare replays (fastreplay.go) — the
	// same floating-point operations in the same order, minus the
	// per-charge indirection.
	w.bareColl = w.fastColl && !cfg.Profile && !cfg.Trace && cfg.Metrics == nil
	var collectors []*telemetry.Collector
	if cfg.Metrics != nil {
		collectors = telemetry.NewCollectors(size, cfg.Metrics)
	}
	// Mailboxes and procs are carved from two batch allocations: at
	// fig8/fig9 rank counts, one-object-per-rank setup costs show up in
	// run-level benchmarks.
	bxs := make([]mailbox, size)
	ps := make([]proc, size)
	w.wcomms = make([]Comm, size)
	for i := range w.boxes {
		w.boxes[i] = &bxs[i]
		ps[i] = proc{worldRank: i, world: w, crashAt: math.Inf(1), node: m.Node(i)}
		w.procs[i] = &ps[i]
		w.deadAt[i] = -1
		if plan != nil {
			w.procs[i].crashAt = plan.CrashTime(i)
		}
		if cfg.Profile || cfg.Trace {
			w.procs[i].profile = trace.NewProfile()
		}
		if cfg.Trace {
			w.procs[i].timeline = trace.NewTimeline(i, cfg.TraceMaxEvents)
			w.procs[i].comms = make(map[int]*commCell)
		}
		if cfg.Metrics != nil {
			w.procs[i].metrics = collectors[i]
		}
		if cfg.FlightEvents > 0 || (plan != nil && cfg.FlightEvents == 0) {
			w.procs[i].flight = telemetry.NewFlightRecorder(cfg.FlightEvents)
		}
	}

	watchdog := cfg.Watchdog
	if watchdog == 0 {
		watchdog = 120 * time.Second
	}
	if watchdog > 0 {
		// On expiry the watchdog aborts the world through the normal
		// error path: blocked ranks wake, unwind via errAborted, and Run
		// returns the watchdog error. It must never panic — a panic in a
		// timer goroutine would kill the whole process.
		//lint:allow determinism the watchdog deliberately runs on host time to catch deadlocks; it never feeds the virtual clock
		t := time.AfterFunc(watchdog, func() {
			w.fail(fmt.Errorf("mpi: watchdog: run of %d ranks exceeded %v host time (deadlock?)", size, watchdog))
		})
		defer t.Stop()
	}

	if cfg.Cancel != nil {
		// The watcher reuses the watchdog's abort path: fail() marks the
		// world aborted and interrupts every mailbox and station, so
		// blocked ranks panic with errAborted and unwind. fail() is a
		// no-op once the run has finished, so a cancellation that loses
		// the race against completion changes nothing. The stop channel
		// (closed via defer, after wg.Wait) reaps the watcher itself.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-cfg.Cancel:
				w.fail(ErrCanceled)
			case <-stop:
			}
		}()
	}

	errs := make([]error, size)
	if cfg.EventDriven {
		w.ev = newEventLoop(w, size)
		w.ev.run(fn, errs)
	} else {
		var wg sync.WaitGroup
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				w.rankBody(rank, fn, errs)
			}(r)
		}
		wg.Wait()
	}
	w.failMu.Lock()
	w.finished = true
	runtimeErr := w.failErr
	w.failMu.Unlock()

	var firstErr error
	for _, e := range errs {
		if e != nil && !errors.Is(e, errAborted) && !errors.Is(e, errKilled) {
			var rf *fault.RankFailure
			if errors.As(e, &rf) {
				continue
			}
			firstErr = e
			break
		}
	}
	if firstErr == nil {
		firstErr = runtimeErr
	}
	if firstErr == nil && plan != nil {
		// Assemble the fault outcome: the ranks the plan killed plus the
		// survivors' detections, all in rank order.
		var crashed []int
		var detections []fault.RankFailure
		earliest := math.Inf(1)
		for r, e := range errs {
			if errors.Is(e, errKilled) {
				crashed = append(crashed, r)
				if at := w.deadAt[r]; at >= 0 && at < earliest {
					earliest = at
				}
			} else if e != nil {
				var rf *fault.RankFailure
				if errors.As(e, &rf) {
					detections = append(detections, *rf)
				}
			}
		}
		if len(crashed) > 0 || len(detections) > 0 {
			firstErr = &fault.RanksFailed{Crashed: crashed, FailedAt: earliest, Detections: detections}
		}
	}
	if firstErr == nil && w.aborted() {
		firstErr = errAborted
	}

	st := &Stats{
		Ranks:    size,
		Clocks:   make([]float64, size),
		Compute:  make([]float64, size),
		Comm:     make([]float64, size),
		Profiles: make([]*trace.Profile, size),
	}
	if cfg.Trace {
		st.Timelines = make([]*trace.Timeline, size)
		st.CommMatrix = &trace.CommMatrix{Ranks: size}
	}
	for i, p := range w.procs {
		st.Clocks[i] = p.clock
		st.Compute[i] = p.compute
		st.Comm[i] = p.comm
		st.Profiles[i] = p.profile
		if p.clock > st.Elapsed {
			st.Elapsed = p.clock
		}
		if cfg.Trace {
			st.Timelines[i] = p.timeline
			for dst, cell := range p.comms {
				st.CommMatrix.AddEdge(i, dst, cell.msgs, cell.bytes)
			}
		}
	}
	if st.CommMatrix != nil {
		st.CommMatrix.Sort()
	}
	if cfg.Metrics != nil {
		collectors := make([]*telemetry.Collector, size)
		for i, p := range w.procs {
			p.metrics.Finish(p.clock)
			collectors[i] = p.metrics
		}
		st.Metrics = telemetry.Finalize(collectors)
	}
	if firstErr != nil {
		st.Flight = w.flightTails()
	}
	return st, firstErr
}

// rankBody runs fn on one rank with the standard unwind handling; it is
// the body of one rank goroutine under the goroutine runtime and of one
// rank coroutine under the event-driven executor.
func (w *World) rankBody(rank int, fn func(*Comm) error, errs []error) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if err, ok := rec.(error); ok {
			switch {
			case err == errAborted:
				errs[rank] = errAborted
				w.setAborted()
				return
			case err == errKilled:
				// Death already recorded by die(); the world keeps
				// running so survivors can detect and unwind.
				errs[rank] = errKilled
				return
			}
			var rf *fault.RankFailure
			if errors.As(err, &rf) {
				// This rank observed a dead peer and unwound. It will
				// never send again, so it is dead to *its* peers too:
				// record the cascade so they unblock deterministically.
				errs[rank] = err
				w.recordDeath(rank, w.procs[rank].clock)
				return
			}
		}
		errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
		w.setAborted()
	}()
	comm := &w.wcomms[rank]
	*comm = Comm{world: w, proc: w.procs[rank], ctx: 0, rank: rank}
	if err := fn(comm); err != nil {
		var rf *fault.RankFailure
		if errors.As(err, &rf) {
			// fn propagated a failure detection as a return value.
			errs[rank] = err
			w.recordDeath(rank, w.procs[rank].clock)
			return
		}
		errs[rank] = fmt.Errorf("mpi: rank %d: %w", rank, err)
		w.setAborted()
	}
}

// flightTails dumps the post-mortem trails of a failed run: the tails
// of every dead rank (fault-plan crashes and detection cascades), or —
// when the run failed with no deaths (watchdog, cancellation, abort) —
// every recording rank's tail.
func (w *World) flightTails() []telemetry.RankTail {
	var tails []telemetry.RankTail
	anyDead := false
	for _, at := range w.deadAt {
		if at >= 0 {
			anyDead = true
			break
		}
	}
	for i, p := range w.procs {
		if p.flight == nil {
			continue
		}
		at := w.deadAt[i]
		if anyDead && at < 0 {
			continue
		}
		tail := telemetry.RankTail{Rank: i, Total: p.flight.Total(), Events: p.flight.Tail()}
		if at >= 0 {
			tail.FailedAt = at
		}
		tails = append(tails, tail)
	}
	return tails
}
