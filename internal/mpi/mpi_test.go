package mpi

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"cpx/internal/cluster"
)

func testCfg() Config {
	return Config{Machine: cluster.SmallCluster(), Watchdog: 30 * time.Second}
}

func run(t *testing.T, p int, fn func(*Comm) error) *Stats {
	t.Helper()
	st, err := Run(p, testCfg(), fn)
	if err != nil {
		t.Fatalf("Run(%d ranks): %v", p, err)
	}
	return st
}

func TestRunRejectsBadSize(t *testing.T) {
	if _, err := Run(0, testCfg(), func(*Comm) error { return nil }); err == nil {
		t.Fatal("Run(0) did not error")
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			data, src, tag := c.Recv(0, 7)
			if src != 0 || tag != 7 {
				return fmt.Errorf("src/tag = %d/%d, want 0/7", src, tag)
			}
			if len(data) != 3 || data[2] != 3 {
				return fmt.Errorf("payload = %v", data)
			}
		}
		return nil
	})
}

func TestSendCopiesPayload(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // mutate after send; receiver must not see it
		} else {
			data, _, _ := c.Recv(0, 0)
			if data[0] != 42 {
				return fmt.Errorf("received %v, want 42 (payload aliased?)", data[0])
			}
		}
		return nil
	})
}

func TestTagAndSourceMatching(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			c.Send(2, 5, []float64{5})
		case 1:
			c.Send(2, 9, []float64{9})
		case 2:
			// Receive tag 9 first even though tag 5 may arrive first.
			d9, _, _ := c.Recv(1, 9)
			d5, _, _ := c.Recv(0, 5)
			if d9[0] != 9 || d5[0] != 5 {
				return fmt.Errorf("matching wrong: %v %v", d9, d5)
			}
		}
		return nil
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1})
		} else {
			d, src, tag := c.Recv(AnySource, AnyTag)
			if src != 0 || tag != 3 || d[0] != 1 {
				return fmt.Errorf("wildcard recv got %v src %d tag %d", d, src, tag)
			}
		}
		return nil
	})
}

func TestNonOvertakingFIFO(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		const n = 20
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 0, []float64{float64(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				d, _, _ := c.Recv(0, 0)
				if d[0] != float64(i) {
					return fmt.Errorf("message %d arrived out of order: %v", i, d[0])
				}
			}
		}
		return nil
	})
}

func TestIntAndByteMessages(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendInts(1, 1, []int{10, 20})
			c.SendBytes(1, 2, []byte("cpx"))
		} else {
			is, _, _ := c.RecvInts(0, 1)
			bs, _, _ := c.RecvBytes(0, 2)
			if is[1] != 20 || string(bs) != "cpx" {
				return fmt.Errorf("typed payloads wrong: %v %q", is, bs)
			}
		}
		return nil
	})
}

func TestVirtualClockAdvancesOnCompute(t *testing.T) {
	st := run(t, 1, func(c *Comm) error {
		c.ComputeSeconds(2.5)
		if math.Abs(c.Clock()-2.5) > 1e-12 {
			return fmt.Errorf("clock = %v, want 2.5", c.Clock())
		}
		return nil
	})
	if math.Abs(st.Elapsed-2.5) > 1e-12 {
		t.Errorf("Elapsed = %v, want 2.5", st.Elapsed)
	}
	if math.Abs(st.Compute[0]-2.5) > 1e-12 {
		t.Errorf("Compute[0] = %v, want 2.5", st.Compute[0])
	}
}

func TestRecvWaitsForSenderVirtualTime(t *testing.T) {
	// Rank 0 computes 1s then sends; rank 1 receives immediately.
	// Rank 1's clock must end past 1s: causality via the message stamp.
	st := run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.ComputeSeconds(1.0)
			c.Send(1, 0, []float64{1})
		} else {
			c.Recv(0, 0)
			if c.Clock() < 1.0 {
				return fmt.Errorf("receiver clock %v < sender send time 1.0", c.Clock())
			}
		}
		return nil
	})
	if st.Comm[1] < 1.0 {
		t.Errorf("receiver wait time %v should include the 1s block", st.Comm[1])
	}
}

func TestComputeChargesWorkViaMachine(t *testing.T) {
	m := cluster.SmallCluster()
	st, err := Run(1, Config{Machine: m, Watchdog: 10 * time.Second}, func(c *Comm) error {
		c.Compute(cluster.Work{Flops: m.FlopRate}) // exactly one second flop-bound
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Elapsed-1.0) > 1e-9 {
		t.Errorf("Elapsed = %v, want 1.0", st.Elapsed)
	}
}

func TestNegativeComputePanicsIntoError(t *testing.T) {
	_, err := Run(1, testCfg(), func(c *Comm) error {
		c.ComputeSeconds(-1)
		return nil
	})
	if err == nil {
		t.Fatal("negative compute did not fail the run")
	}
}

func TestRankErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Run(4, testCfg(), func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		// Other ranks block forever; the abort must wake them.
		c.Recv(3, 99)
		return nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestRankPanicPropagates(t *testing.T) {
	_, err := Run(2, testCfg(), func(c *Comm) error {
		if c.Rank() == 1 {
			panic("solver blew up")
		}
		c.Recv(1, 0)
		return nil
	})
	if err == nil {
		t.Fatal("panic did not surface as error")
	}
}

func TestSendRecvCombined(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		other := 1 - c.Rank()
		got := c.SendRecv(other, 0, []float64{float64(c.Rank())}, other, 0)
		if got[0] != float64(other) {
			return fmt.Errorf("SendRecv got %v, want %d", got, other)
		}
		return nil
	})
}

func TestStatsAccounting(t *testing.T) {
	st := run(t, 2, func(c *Comm) error {
		c.ComputeSeconds(1)
		other := 1 - c.Rank()
		c.SendRecv(other, 0, []float64{0}, other, 0)
		return nil
	})
	if st.Ranks != 2 || len(st.Clocks) != 2 {
		t.Fatalf("stats shape wrong: %+v", st)
	}
	if st.AvgCompute() <= 0 || st.AvgComm() <= 0 {
		t.Errorf("compute/comm should both be positive: %v %v", st.AvgCompute(), st.AvgComm())
	}
	if st.MaxCompute() < st.AvgCompute() {
		t.Error("max compute < avg compute")
	}
	if cf := st.CommFraction(); cf <= 0 || cf >= 1 {
		t.Errorf("comm fraction %v out of (0,1)", cf)
	}
}

func TestProfileCapturesRegions(t *testing.T) {
	st, err := Run(2, Config{Machine: cluster.SmallCluster(), Profile: true, Watchdog: 10 * time.Second},
		func(c *Comm) error {
			c.Profile().Push("flux")
			c.ComputeSeconds(1)
			other := 1 - c.Rank()
			c.SendRecv(other, 0, []float64{0}, other, 0)
			c.Profile().Pop()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	merged := st.MergedProfile()
	if merged == nil {
		t.Fatal("no merged profile")
	}
	e := merged.Entry("flux")
	if e.Compute < 2.0-1e-9 {
		t.Errorf("flux compute = %v, want >= 2 (1s on each rank)", e.Compute)
	}
	if e.Comm <= 0 {
		t.Errorf("flux comm = %v, want > 0", e.Comm)
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() float64 {
		st, err := Run(8, testCfg(), func(c *Comm) error {
			for iter := 0; iter < 5; iter++ {
				c.ComputeSeconds(0.001 * float64(c.Rank()+1))
				c.Allreduce([]float64{float64(c.Rank())}, Sum)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Errorf("virtual time not deterministic: %v vs %v", a, b)
	}
}

func TestLargerMessagesTakeLonger(t *testing.T) {
	elapsed := func(n int) float64 {
		st := run(t, 2, func(c *Comm) error {
			if c.Rank() == 0 {
				c.Send(1, 0, make([]float64, n))
			} else {
				c.Recv(0, 0)
			}
			return nil
		})
		return st.Elapsed
	}
	if !(elapsed(100000) > elapsed(10)) {
		t.Error("large message should cost more virtual time than small one")
	}
}

func TestManyRanksScale(t *testing.T) {
	// Smoke test that a few thousand goroutine-ranks work.
	st := run(t, 2048, func(c *Comm) error {
		v := c.AllreduceScalar(1, Sum)
		if v != 2048 {
			return fmt.Errorf("allreduce sum = %v", v)
		}
		return nil
	})
	if st.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
}
