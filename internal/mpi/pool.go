package mpi

import "sync"

// Allocation fast path for the message-passing hot loop. Two mechanisms
// keep the per-message host cost near zero:
//
//   - message structs are recycled through a sync.Pool: a send gets a
//     struct from the pool and the matching receive returns it once the
//     payload has been handed to the caller. Nil-payload control
//     messages (barrier/dissemination traffic) therefore allocate
//     nothing at steady state.
//   - []float64 payload clones are carved from a per-rank bump arena:
//     one chunk allocation amortises across hundreds of small messages.
//     Ownership of the carved slice transfers to the receiver, so the
//     arena never reuses a carved region; a retained payload pins at
//     most one chunk (arenaChunk floats) against the GC.

// msgPool recycles message structs between a receive (which strips the
// payload) and the next send.
var msgPool = sync.Pool{New: func() any { return new(message) }}

func getMessage() *message { return msgPool.Get().(*message) }

// releaseMessage returns a consumed message to the pool. The caller must
// have taken ownership of any payload first; fields are cleared so the
// pool retains no payload or slice memory.
func releaseMessage(m *message) {
	*m = message{}
	msgPool.Put(m)
}

const (
	// arenaChunk is the size in float64s of one arena chunk.
	arenaChunk = 1024
	// arenaMax is the largest clone served from the arena; bigger
	// payloads get exact private allocations.
	arenaMax = arenaChunk / 4
)

// f64Arena is a per-rank bump allocator for outgoing payload clones. It
// is only ever touched by its owning rank goroutine (during sends) or by
// the fast-collective leader while the owner is parked at the station,
// so it needs no lock.
type f64Arena struct {
	chunk []float64 // remaining free space of the current chunk
}

// clone returns a private copy of d whose backing memory comes from the
// arena for small payloads. The copy is handed to the receiving rank and
// is never recycled.
func (a *f64Arena) clone(d []float64) []float64 {
	n := len(d)
	if n == 0 {
		if d == nil {
			return nil
		}
		return []float64{}
	}
	if n > arenaMax {
		out := make([]float64, n)
		copy(out, d)
		return out
	}
	if len(a.chunk) < n {
		a.chunk = make([]float64, arenaChunk)
	}
	out := a.chunk[:n:n]
	a.chunk = a.chunk[n:]
	copy(out, d)
	return out
}
