package mpi

import (
	"fmt"
	"testing"
)

func TestRangeCommBasics(t *testing.T) {
	run(t, 8, func(c *Comm) error {
		// Two contiguous groups: [0,3) and [3,8).
		var sub *Comm
		if c.Rank() < 3 {
			sub = c.RangeComm(0, 0, 3)
		} else {
			sub = c.RangeComm(1, 3, 5)
		}
		wantSize, wantRank := 3, c.Rank()
		if c.Rank() >= 3 {
			wantSize, wantRank = 5, c.Rank()-3
		}
		if sub.Size() != wantSize || sub.Rank() != wantRank {
			return fmt.Errorf("rank %d: sub size/rank = %d/%d", c.Rank(), sub.Size(), sub.Rank())
		}
		// Collectives stay inside the group.
		sum := sub.AllreduceScalar(1, Sum)
		if int(sum) != wantSize {
			return fmt.Errorf("rank %d: group allreduce = %v", c.Rank(), sum)
		}
		return nil
	})
}

func TestRangeCommIsolatesTraffic(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		var sub *Comm
		if c.Rank() < 2 {
			sub = c.RangeComm(0, 0, 2)
		} else {
			sub = c.RangeComm(1, 2, 2)
		}
		// Same (src=0, tag=0) in both groups must not cross.
		if sub.Rank() == 0 {
			sub.Send(1, 0, []float64{float64(c.Rank())})
		} else {
			d, _, _ := sub.Recv(0, 0)
			want := float64(c.Rank() - 1)
			if d[0] != want {
				return fmt.Errorf("rank %d: cross-group leak: got %v want %v", c.Rank(), d[0], want)
			}
		}
		return nil
	})
}

func TestRangeCommTranslate(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		if c.Rank() < 2 {
			c.RangeComm(0, 0, 2)
			return nil
		}
		sub := c.RangeComm(1, 2, 4)
		if got := sub.Translate(c, 3); got != 1 {
			return fmt.Errorf("translate world 3 -> %d, want 1", got)
		}
		if got := sub.Translate(c, 0); got != -1 {
			return fmt.Errorf("translate non-member -> %d, want -1", got)
		}
		return nil
	})
}

func TestRangeCommRejectsOutsiders(t *testing.T) {
	_, err := Run(2, testCfg(), func(c *Comm) error {
		if c.Rank() == 1 {
			c.RangeComm(0, 0, 1) // not a member
		}
		return nil
	})
	if err == nil {
		t.Fatal("outsider RangeComm accepted")
	}
}

func TestRecvAllOrderIndependence(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		if c.Rank() == 0 {
			data, srcs := c.RecvAll(3, 5)
			for i := 1; i < len(srcs); i++ {
				if srcs[i] <= srcs[i-1] {
					return fmt.Errorf("sources not sorted: %v", srcs)
				}
			}
			for i, d := range data {
				if d[0] != float64(srcs[i]) {
					return fmt.Errorf("payload misaligned: %v from %d", d, srcs[i])
				}
			}
		} else {
			c.ComputeSeconds(float64(c.Rank()) * 0.001)
			c.Send(0, 5, []float64{float64(c.Rank())})
		}
		return nil
	})
}

func TestRecvAllClockIsMaxArrival(t *testing.T) {
	st := run(t, 3, func(c *Comm) error {
		if c.Rank() == 0 {
			c.RecvAll(2, 1)
			if c.Clock() < 0.02 {
				return fmt.Errorf("clock %v below slowest sender", c.Clock())
			}
		} else {
			c.ComputeSeconds(0.01 * float64(c.Rank()))
			c.Send(0, 1, []float64{1})
		}
		return nil
	})
	if st.Elapsed < 0.02 {
		t.Errorf("elapsed %v below slowest sender's send time", st.Elapsed)
	}
}

func TestSendVirtualCostsVirtualBytes(t *testing.T) {
	elapsed := func(vbytes int) float64 {
		st := run(t, 2, func(c *Comm) error {
			if c.Rank() == 0 {
				c.SendVirtual(1, 0, []float64{1}, vbytes)
			} else {
				c.Recv(0, 0)
			}
			return nil
		})
		return st.Elapsed
	}
	if !(elapsed(10_000_000) > elapsed(8)) {
		t.Error("virtual byte size did not change the cost")
	}
}

func TestStretchSince(t *testing.T) {
	st := run(t, 2, func(c *Comm) error {
		comp, comm := c.ComputeTime(), c.CommTime()
		c.ComputeSeconds(0.01)
		other := 1 - c.Rank()
		c.SendRecv(other, 0, []float64{1}, other, 0)
		c.StretchSince(comp, comm, 10)
		// Compute must now be ~0.1s (10x the 0.01 measured).
		if c.ComputeTime() < 0.099 {
			return fmt.Errorf("stretched compute %v, want ~0.1", c.ComputeTime())
		}
		if c.CommTime() <= 0 {
			return fmt.Errorf("comm not stretched")
		}
		return nil
	})
	if st.Elapsed < 0.1 {
		t.Errorf("elapsed %v below stretched compute", st.Elapsed)
	}
}

func TestStretchSinceRejectsBadFactor(t *testing.T) {
	_, err := Run(1, testCfg(), func(c *Comm) error {
		c.StretchSince(0, 0, 0.5)
		return nil
	})
	if err == nil {
		t.Fatal("factor < 1 accepted")
	}
}
