package mpi

import (
	"fmt"
	"sort"
)

// Split partitions the communicator into disjoint sub-communicators, one
// per distinct color, exactly as MPI_Comm_split: ranks passing the same
// color land in the same new communicator, ordered by (key, old rank).
// A negative color returns nil (the rank opts out), mirroring
// MPI_UNDEFINED. Split is collective: every rank of c must call it.
func (c *Comm) Split(color, key int) *Comm {
	defer c.proc.pushOp("comm_split")()
	// Exchange (color, key) triples; everyone derives the same grouping.
	all := c.AllgatherInts([]int{color, key})
	type member struct{ color, key, rank int }
	members := make([]member, 0, len(all))
	colorSet := map[int]bool{}
	for r, ck := range all {
		if ck[0] >= 0 {
			members = append(members, member{ck[0], ck[1], r})
			colorSet[ck[0]] = true
		}
	}
	c.splitGen++
	if color < 0 {
		return nil
	}
	// Deterministic color index for context derivation.
	colors := make([]int, 0, len(colorSet))
	for col := range colorSet {
		colors = append(colors, col)
	}
	sort.Ints(colors)
	colorIdx := sort.SearchInts(colors, color)

	group := make([]member, 0)
	for _, mb := range members {
		if mb.color == color {
			group = append(group, mb)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].rank < group[j].rank
	})
	worldGroup := make([]int, len(group))
	myNewRank := -1
	for i, mb := range group {
		worldGroup[i] = c.worldRankOf(mb.rank)
		if mb.rank == c.rank {
			myNewRank = i
		}
	}
	if myNewRank < 0 {
		panic("mpi: Split internal error: caller missing from its own group")
	}
	ctx := c.world.contextFor(c.ctx, c.splitGen, colorIdx)
	return &Comm{
		world: c.world,
		proc:  c.proc,
		ctx:   ctx,
		rank:  myNewRank,
		group: worldGroup,
	}
}

// Dup returns a communicator with the same group but a private matching
// context, like MPI_Comm_dup. Collective over c.
func (c *Comm) Dup() *Comm { return c.Split(0, c.rank) }

// RangeComm returns a communicator over the contiguous world ranks
// [base, base+size) without any communication, like
// MPI_Comm_create_group over a range. Every member must call it with the
// same groupID (>= 0) and range; groupIDs must be unique per distinct
// group within a run and are kept disjoint from Split-derived contexts.
// The caller must be a member. The contiguous representation needs O(1)
// memory per rank, which matters at the paper's 40,000-rank scale.
func (c *Comm) RangeComm(groupID, base, size int) *Comm {
	if c.group != nil || c.base != 0 {
		panic("mpi: RangeComm must be called on the world communicator")
	}
	w := c.proc.worldRank
	if w < base || w >= base+size {
		panic(fmt.Sprintf("mpi: RangeComm caller %d outside [%d,%d)", w, base, base+size))
	}
	if groupID < 0 {
		panic("mpi: RangeComm groupID must be non-negative")
	}
	return &Comm{
		world: c.world,
		proc:  c.proc,
		ctx:   -(1 + groupID), // negative context space, disjoint from Split's
		rank:  w - base,
		base:  base,
		size:  size,
	}
}

// Translate maps a rank of comm `other` to the corresponding rank in c,
// or -1 if the process is not a member of c. Both communicators must
// belong to the same world.
func (c *Comm) Translate(other *Comm, rank int) int {
	w := other.worldRankOf(rank)
	if c.group != nil {
		for i, g := range c.group {
			if g == w {
				return i
			}
		}
		return -1
	}
	if c.size > 0 { // contiguous range
		if w >= c.base && w < c.base+c.size {
			return w - c.base
		}
		return -1
	}
	if w < c.world.size {
		return w
	}
	return -1
}

// Request represents a pending non-blocking operation.
type Request struct {
	comm *Comm
	// For receives:
	isRecv bool
	from   int
	tag    int
	// Completed payload (for receives after Wait).
	data []float64
	done bool
}

// Isend starts a non-blocking send. Because the runtime's sends are eager
// and buffered, the operation completes immediately; the returned request
// exists so call sites mirror real MPI halo-exchange structure.
func (c *Comm) Isend(to, tag int, data []float64) *Request {
	c.Send(to, tag, data)
	return &Request{comm: c, done: true}
}

// Irecv posts a non-blocking receive, matched and completed at Wait time.
func (c *Comm) Irecv(from, tag int) *Request {
	return &Request{comm: c, isRecv: true, from: from, tag: tag}
}

// Wait completes the request, returning the received payload for receives
// (nil for sends).
func (r *Request) Wait() []float64 {
	if r.done {
		return r.data
	}
	r.done = true
	if r.isRecv {
		r.data, _, _ = r.comm.Recv(r.from, r.tag)
	}
	return r.data
}

// WaitAll completes all requests. The caller's virtual clock ends at the
// max arrival over all receives, as with MPI_Waitall.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// HaloExchange performs the standard neighbour exchange: for each
// neighbour i, send sendBufs[i] and receive that neighbour's buffer.
// neighbours lists peer ranks in c; returns received data per neighbour
// index. Tags are derived from `tag` so multiple exchanges can be in
// flight on distinct tags.
func (c *Comm) HaloExchange(tag int, neighbours []int, sendBufs [][]float64) [][]float64 {
	defer c.proc.pushOp("halo_exchange")()
	if len(neighbours) != len(sendBufs) {
		panic(fmt.Sprintf("mpi: HaloExchange: %d neighbours but %d buffers", len(neighbours), len(sendBufs)))
	}
	for i, nb := range neighbours {
		c.Send(nb, tag, sendBufs[i])
	}
	// Receive in neighbour order, matching the Irecv/WaitAll completion
	// order the previous implementation used — but without allocating a
	// Request per neighbour on the mini-apps' hottest exchange path.
	out := make([][]float64, len(neighbours))
	for i, nb := range neighbours {
		out[i], _, _ = c.Recv(nb, tag)
	}
	return out
}
