package mpi

import (
	"math"
	"testing"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/trace"
)

func tracedCfg() Config {
	cfg := testCfg()
	cfg.Trace = true
	return cfg
}

// imbalancedRing makes rank clocks diverge: each rank computes an amount
// growing with its rank, then passes a token around the ring twice so
// late ranks force waits on their successors.
func imbalancedRing(c *Comm) error {
	for round := 0; round < 2; round++ {
		c.ComputeSeconds(1e-3 * float64(c.Rank()+1))
		c.Send((c.Rank()+1)%c.Size(), round, []float64{float64(c.Rank())})
		c.Recv((c.Rank()+c.Size()-1)%c.Size(), round)
	}
	c.Allreduce([]float64{1}, Sum)
	return nil
}

func TestMergedProfileNilWhenProfilingOff(t *testing.T) {
	st := run(t, 2, func(c *Comm) error {
		c.ComputeSeconds(1e-3)
		return nil
	})
	if st.Profiles[0] != nil {
		t.Fatal("profiling off but Profiles populated")
	}
	if got := st.MergedProfile(); got != nil {
		t.Errorf("MergedProfile() = %v, want nil when profiling is off", got)
	}
	if st.Timelines != nil || st.CommMatrix != nil {
		t.Error("tracing off but Timelines/CommMatrix populated")
	}
}

func TestCriticalPathRequiresTrace(t *testing.T) {
	st := run(t, 2, func(c *Comm) error { return nil })
	if _, err := st.CriticalPath(); err == nil {
		t.Fatal("CriticalPath() without Config.Trace did not error")
	}
}

// TestTimelinesTileClock checks the tentpole invariant the critical-path
// walk relies on: every rank's events cover [0, clock] with no gaps.
func TestTimelinesTileClock(t *testing.T) {
	st, err := Run(4, tracedCfg(), imbalancedRing)
	if err != nil {
		t.Fatal(err)
	}
	for r, tl := range st.Timelines {
		if tl == nil {
			t.Fatalf("rank %d: nil timeline", r)
		}
		if tl.Dropped != 0 {
			t.Fatalf("rank %d dropped %d events", r, tl.Dropped)
		}
		prev := 0.0
		for i, ev := range tl.Events {
			if ev.T0 != prev {
				t.Fatalf("rank %d event %d: gap [%g,%g)", r, i, prev, ev.T0)
			}
			if ev.T1 < ev.T0 {
				t.Fatalf("rank %d event %d: negative span %+v", r, i, ev)
			}
			prev = ev.T1
		}
		if prev != st.Clocks[r] {
			t.Errorf("rank %d timeline ends at %g, clock is %g", r, prev, st.Clocks[r])
		}
	}
}

func TestCriticalPathSumsToElapsed(t *testing.T) {
	st, err := Run(4, tracedCfg(), imbalancedRing)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := st.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.EndRank != st.MaxClockRank() {
		t.Errorf("EndRank = %d, MaxClockRank = %d", cp.EndRank, st.MaxClockRank())
	}
	if cp.Elapsed != st.Elapsed {
		t.Errorf("Elapsed = %g, Stats.Elapsed = %g", cp.Elapsed, st.Elapsed)
	}
	if diff := math.Abs(cp.Total() - st.Elapsed); diff > 1e-9 {
		t.Errorf("critical-path segments sum to %g, elapsed %g (diff %g)",
			cp.Total(), st.Elapsed, diff)
	}
	// Segments must be contiguous in time from 0 to Elapsed.
	prev := 0.0
	for i, s := range cp.Segments {
		if s.T0 != prev {
			t.Fatalf("segment %d starts at %g, previous ended at %g", i, s.T0, prev)
		}
		prev = s.T1
	}
	if prev != st.Elapsed {
		t.Errorf("path ends at %g, want %g", prev, st.Elapsed)
	}
}

// TestTraceOffTimingIdentical guards the acceptance criterion that
// enabling tracing must not perturb virtual time: the same program run
// with and without tracing yields bitwise-identical clocks.
func TestTraceOffTimingIdentical(t *testing.T) {
	plain, err := Run(4, testCfg(), imbalancedRing)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(4, tracedCfg(), imbalancedRing)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Elapsed != traced.Elapsed {
		t.Errorf("Elapsed differs: plain %v traced %v", plain.Elapsed, traced.Elapsed)
	}
	for r := range plain.Clocks {
		if plain.Clocks[r] != traced.Clocks[r] {
			t.Errorf("rank %d clock differs: plain %v traced %v", r, plain.Clocks[r], traced.Clocks[r])
		}
		if plain.Compute[r] != traced.Compute[r] || plain.Comm[r] != traced.Comm[r] {
			t.Errorf("rank %d compute/comm split differs", r)
		}
	}
}

func TestCollectiveOpLabels(t *testing.T) {
	st, err := Run(4, tracedCfg(), func(c *Comm) error {
		c.Allreduce([]float64{float64(c.Rank())}, Sum)
		sub := c.Split(c.Rank()%2, c.Rank())
		sub.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string]bool{}
	for _, tl := range st.Timelines {
		for _, ev := range tl.Events {
			if ev.Op != "" {
				ops[ev.Op] = true
			}
		}
	}
	for _, want := range []string{"allreduce", "comm_split", "barrier"} {
		if !ops[want] {
			t.Errorf("no event labelled %q; got ops %v", want, ops)
		}
	}
}

// TestOutermostOpLabelWins: Split is built from inner collectives, but
// the events it generates must carry the outer "comm_split" label, not
// the implementation detail.
func TestOutermostOpLabelWins(t *testing.T) {
	st, err := Run(2, tracedCfg(), func(c *Comm) error {
		c.Split(0, c.Rank())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tl := range st.Timelines {
		for _, ev := range tl.Events {
			if ev.Op != "" && ev.Op != "comm_split" {
				t.Errorf("rank %d: event inside Split labelled %q", tl.Rank, ev.Op)
			}
		}
	}
}

func TestCommMatrixCounts(t *testing.T) {
	st, err := Run(3, tracedCfg(), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2, 3}) // 24 bytes
			c.Send(1, 1, []float64{4})       // 8 bytes
			c.Send(2, 0, []float64{5, 6})    // 16 bytes
		}
		switch c.Rank() {
		case 1:
			c.Recv(0, 0)
			c.Recv(0, 1)
		case 2:
			c.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := st.CommMatrix
	if m.Ranks != 3 || len(m.Edges) != 2 {
		t.Fatalf("matrix = %+v, want 2 edges over 3 ranks", m)
	}
	want := []trace.CommEdge{
		{Src: 0, Dst: 1, Messages: 2, Bytes: 32},
		{Src: 0, Dst: 2, Messages: 1, Bytes: 16},
	}
	for i, w := range want {
		if m.Edges[i] != w {
			t.Errorf("edge %d = %+v, want %+v", i, m.Edges[i], w)
		}
	}
}

func TestRunSummaryFromTracedRun(t *testing.T) {
	cfg := tracedCfg()
	st, err := Run(4, cfg, imbalancedRing)
	if err != nil {
		t.Fatal(err)
	}
	sum := st.Summary()
	if sum.Ranks != 4 || sum.Elapsed != st.Elapsed || sum.MaxClockRank != st.MaxClockRank() {
		t.Errorf("headline summary = %+v", sum)
	}
	if sum.CriticalPath == nil {
		t.Fatal("traced summary missing critical path")
	}
	if diff := math.Abs(sum.CriticalPath.Total - st.Elapsed); diff > 1e-9 {
		t.Errorf("summary path total %g vs elapsed %g", sum.CriticalPath.Total, st.Elapsed)
	}
	if sum.Comm == nil || sum.Comm.Messages == 0 {
		t.Errorf("traced summary missing comm section: %+v", sum.Comm)
	}
}

// TestTraceCapDegradesGracefully: an undersized event cap must count
// drops and make the critical-path analysis fail loudly, not truncate.
func TestTraceCapDegradesGracefully(t *testing.T) {
	cfg := tracedCfg()
	cfg.TraceMaxEvents = 2
	st, err := Run(4, cfg, imbalancedRing)
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for _, tl := range st.Timelines {
		dropped += tl.Dropped
	}
	if dropped == 0 {
		t.Fatal("tiny cap dropped nothing")
	}
	if _, err := st.CriticalPath(); err == nil {
		t.Error("critical path on truncated timelines did not error")
	}
}

func benchConfig(traced bool) Config {
	return Config{Machine: cluster.SmallCluster(), Watchdog: time.Minute, Trace: traced}
}

func benchProgram(c *Comm) error {
	for i := 0; i < 200; i++ {
		c.ComputeSeconds(1e-6)
		c.Send((c.Rank()+1)%c.Size(), i, []float64{1})
		c.Recv((c.Rank()+c.Size()-1)%c.Size(), i)
	}
	return nil
}

// BenchmarkRunTraceOff/On measure the real-time cost of a small run with
// tracing disabled and enabled; compare them to bound tracing overhead.
func BenchmarkRunTraceOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(8, benchConfig(false), benchProgram); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunTraceOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(8, benchConfig(true), benchProgram); err != nil {
			b.Fatal(err)
		}
	}
}
