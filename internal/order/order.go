// Package order provides deterministic iteration helpers for the
// simulation-critical packages. Go randomises map iteration order on
// purpose; any loop whose side effects depend on that order (appending
// results, accumulating floats, sending messages) makes per-rank virtual
// clocks and solver output depend on the host scheduler. The cpxlint
// determinism and floatreduce analyzers (internal/analysis) flag such
// loops and point here: collect the keys, sort them, then iterate.
package order

import (
	"cmp"
	"slices"
)

// SortedKeys returns the keys of m in ascending order. Use it to replace
// `for k, v := range m` with `for _, k := range order.SortedKeys(m)`
// wherever the loop's effects must not depend on map iteration order.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// SumSorted accumulates the values of m in ascending key order, giving a
// reproducible floating-point reduction over map-held data.
func SumSorted[M ~map[K]float64, K cmp.Ordered](m M) float64 {
	s := 0.0
	for _, k := range SortedKeys(m) {
		s += m[k]
	}
	return s
}
