package order

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	if got, want := SortedKeys(m), []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("SortedKeys = %v, want %v", got, want)
	}
	if got := SortedKeys(map[string]int{"b": 2, "a": 1}); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("SortedKeys(string map) = %v", got)
	}
	if got := SortedKeys(map[int]int{}); len(got) != 0 {
		t.Errorf("SortedKeys(empty) = %v", got)
	}
}

func TestSumSortedIsOrderFixed(t *testing.T) {
	// Terms chosen so float addition order changes the result: summing
	// big+small+small... differs from small+...+big in the last bits.
	m := map[int]float64{}
	for i := 0; i < 64; i++ {
		m[i] = 1e-9 * float64(i+1)
	}
	m[64] = 1e9
	want := SumSorted(m)
	for run := 0; run < 8; run++ {
		if got := SumSorted(m); got != want {
			t.Fatalf("SumSorted not stable: %v vs %v", got, want)
		}
	}
	// And it must equal the explicit sorted-key loop.
	s := 0.0
	for _, k := range SortedKeys(m) {
		s += m[k]
	}
	if s != want {
		t.Fatalf("SumSorted %v != sorted-key loop %v", want, s)
	}
}
