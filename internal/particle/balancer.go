package particle

import (
	"fmt"
	"sync"

	"cpx/internal/cluster"
	"cpx/internal/fault"
	"cpx/internal/partition"
)

// Strategy selects the load-balancing implementation behind a particle
// component.
type Strategy int

// Balancing strategies.
const (
	// StaticSplit is the Base solver: a fixed spatial decomposition of
	// the unit domain over the particle ranks; every step ends with the
	// alltoallv-style redistribution plus the census reduction.
	StaticSplit Strategy = iota
	// WorkSteal keeps the static spatial ownership but follows every
	// migration with explicit steal requests/grants between particle
	// ranks: overloaded ranks lend droplets to underloaded ones for the
	// next step's compute, trading extra point-to-point traffic for
	// balanced droplet work.
	WorkSteal
	// Repartition rebuilds the spatial decomposition (an RCB tree over a
	// gathered droplet sample) whenever the max/mean per-rank load
	// crosses Config.ImbalanceThreshold, paying an explicit repartition
	// cost — the sample gather, the tree build, and a full second
	// redistribution — to restore balance.
	Repartition
)

func (st Strategy) String() string {
	switch st {
	case WorkSteal:
		return "steal"
	case Repartition:
		return "repartition"
	default:
		return "static"
	}
}

// ParseStrategy maps the wire names used by cpxsim configs and the
// serving layer ("static", "steal", "repartition"; empty means static).
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "static":
		return StaticSplit, nil
	case "steal", "worksteal":
		return WorkSteal, nil
	case "repartition":
		return Repartition, nil
	}
	return StaticSplit, fmt.Errorf("particle: unknown strategy %q (want static, steal or repartition)", name)
}

// Strategies lists every balancer, for sweeps.
func Strategies() []Strategy { return []Strategy{StaticSplit, WorkSteal, Repartition} }

// balancer is the pluggable ownership + per-step balancing behaviour.
// Implementations must be deterministic in virtual time: every decision
// derives from the shared census, never from host-side state.
type balancer interface {
	// owner returns the rank owning a position under the current map.
	owner(x, y, z float64) int
	// balance runs the strategy's post-advection exchange (migration,
	// census, and any balancing traffic). Collective over s.comm.
	balance(s *System)
	// encode returns the balancer's mutable state for checkpoints (nil
	// when stateless); restore applies a checkpointed encoding.
	encode() []float64
	restore(enc []float64) error
	// digest folds the mutable state into a rank digest.
	digest(d *fault.Digest)
}

func newBalancer(cfg Config, ranks int, seed uint64, side float64, simTotal int64) balancer {
	switch cfg.Strategy {
	case WorkSteal:
		return &stealBalancer{grid: gridFor(ranks)}
	case Repartition:
		b := &repartitionBalancer{threshold: cfg.ImbalanceThreshold, ranks: ranks}
		b.tree = initialTree(ranks, seed, side, simTotal)
		return b
	default:
		return &staticBalancer{grid: gridFor(ranks)}
	}
}

// gridFor factors the rank count into a 3-D process grid with dimensions
// as equal as possible, the largest along x (the droplets' drift axis).
func gridFor(p int) [3]int {
	best := [3]int{p, 1, 1}
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		q := p / a
		for b := a; b*b <= q; b++ {
			if q%b != 0 {
				continue
			}
			c := q / b // a <= b <= c
			if c < best[0] {
				best = [3]int{c, b, a}
			}
		}
	}
	return best
}

// gridOwner maps a position to its rank on a fixed process grid over the
// unit cube (the Base solver's spatial partitioning).
//
//perf:hotpath
func gridOwner(grid [3]int, x, y, z float64) int {
	cx := clampIdx(x, grid[0])
	cy := clampIdx(y, grid[1])
	cz := clampIdx(z, grid[2])
	return (cz*grid[1]+cy)*grid[0] + cx
}

//perf:hotpath
func clampIdx(v float64, g int) int {
	i := int(v * float64(g))
	if i < 0 {
		i = 0
	}
	if i >= g {
		i = g - 1
	}
	return i
}

// ---- Static spatial split ---------------------------------------------------

type staticBalancer struct {
	grid [3]int
}

func (b *staticBalancer) owner(x, y, z float64) int { return gridOwner(b.grid, x, y, z) }

func (b *staticBalancer) balance(s *System) {
	cs := s.migrate(b.owner)
	s.observe(cs)
}

func (b *staticBalancer) encode() []float64 { return nil }
func (b *staticBalancer) restore(enc []float64) error {
	if enc != nil {
		return fmt.Errorf("particle: static balancer has no state, checkpoint carries %d values", len(enc))
	}
	return nil
}
func (b *staticBalancer) digest(*fault.Digest) {}

// ---- Work stealing ----------------------------------------------------------

type stealBalancer struct {
	grid [3]int
}

func (b *stealBalancer) owner(x, y, z float64) int { return gridOwner(b.grid, x, y, z) }

// balance migrates on the static map, then executes the deterministic
// steal plan derived from the census's exact post-migration loads:
// thieves send a steal request to their paired victim, the victim
// answers with a grant carrying the droplets. Stolen droplets are
// computed by the thief on the next step and drift home through the
// normal migration — per-step stealing, the classic scheme.
func (b *stealBalancer) balance(s *System) {
	cs := s.migrate(b.owner)
	s.observe(cs)
	plan := stealPlan(cs.loads)
	r := s.comm.Rank()
	for _, tr := range plan {
		switch r {
		case tr.thief:
			s.comm.SendVirtual(tr.victim, tagStealReq, []float64{float64(tr.n)}, 64)
			d, _, _ := s.comm.Recv(tr.victim, tagStealGrant)
			for i := 0; i+dropletFields-1 < len(d); i += dropletFields {
				s.spawn(d[i], d[i+1], d[i+2], d[i+3], d[i+4], d[i+5], d[i+6])
			}
			s.load.Stolen += tr.n
		case tr.victim:
			s.comm.Recv(tr.thief, tagStealReq)
			cut := len(s.x) - tr.n
			buf := make([]float64, 0, tr.n*dropletFields)
			for i := cut; i < len(s.x); i++ {
				buf = append(buf, s.x[i], s.y[i], s.z[i], s.vx[i], s.vy[i], s.vz[i], s.rad[i])
			}
			s.x, s.y, s.z = s.x[:cut], s.y[:cut], s.z[:cut]
			s.vx, s.vy, s.vz = s.vx[:cut], s.vy[:cut], s.vz[:cut]
			s.rad = s.rad[:cut]
			s.comm.SendVirtual(tr.thief, tagStealGrant, buf, int(float64(len(buf))*8*s.partScale))
			s.load.Granted += tr.n
		}
	}
}

// transfer is one steal: victim hands n droplets to thief.
type transfer struct {
	victim, thief, n int
}

// stealPlan pairs overloaded ranks with underloaded ones from the shared
// load vector. Every rank computes the identical plan: victims in
// descending surplus (rank ascending on ties), thieves in descending
// deficit, greedy two-pointer matching, transfers below the chunk floor
// dropped (stealing single droplets costs more than it saves).
func stealPlan(loads []int) []transfer {
	p := len(loads)
	total := 0
	for _, l := range loads {
		total += l
	}
	target := (total + p - 1) / p
	minChunk := target / 16
	if minChunk < 1 {
		minChunk = 1
	}
	type entry struct{ rank, amount int }
	var victims, thieves []entry
	for r := 0; r < p; r++ {
		if s := loads[r] - target; s > 0 {
			victims = append(victims, entry{r, s})
		} else if d := target - loads[r]; d > 0 {
			thieves = append(thieves, entry{r, d})
		}
	}
	sortBy := func(es []entry) {
		for i := 1; i < len(es); i++ { // insertion sort: tiny, deterministic
			for j := i; j > 0 && (es[j].amount > es[j-1].amount ||
				(es[j].amount == es[j-1].amount && es[j].rank < es[j-1].rank)); j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
	}
	sortBy(victims)
	sortBy(thieves)
	var plan []transfer
	vi, ti := 0, 0
	for vi < len(victims) && ti < len(thieves) {
		n := victims[vi].amount
		if thieves[ti].amount < n {
			n = thieves[ti].amount
		}
		if n >= minChunk {
			plan = append(plan, transfer{victim: victims[vi].rank, thief: thieves[ti].rank, n: n})
		}
		victims[vi].amount -= n
		thieves[ti].amount -= n
		if victims[vi].amount < minChunk {
			vi++
		}
		if thieves[ti].amount < minChunk {
			ti++
		}
	}
	return plan
}

func (b *stealBalancer) encode() []float64 { return nil }
func (b *stealBalancer) restore(enc []float64) error {
	if enc != nil {
		return fmt.Errorf("particle: steal balancer has no state, checkpoint carries %d values", len(enc))
	}
	return nil
}
func (b *stealBalancer) digest(*fault.Digest) {}

// ---- Repartition on imbalance -----------------------------------------------

// Explicit repartition costs: rewriting per-droplet ownership plus the
// sample sort/tree build, charged on every rank when a rebuild fires.
const (
	repartitionFlopsPerDroplet = 40.0
	repartitionFlopsPerSample  = 500.0
)

// treeCache memoizes RCB tree builds on the gathered sample. Every rank
// of a communicator rebuilds from the identical point set, so without a
// cache the host pays p identical O(n log² n) builds per repartition —
// the dominant host cost at 512 ranks. The cache is pure host-side
// memoization: the tree is a deterministic function of (points, parts),
// hits verify the full sample (hash collisions are harmless), and
// cached trees are immutable, so virtual-time results are bit-identical
// with the cache on or off.
var treeCache = struct {
	sync.Mutex
	entries map[uint64]treeEntry
}{entries: map[uint64]treeEntry{}}

type treeEntry struct {
	parts  int
	points []partition.Point
	tree   *partition.RCBTree
}

func cachedBuildTree(points []partition.Point, parts int) *partition.RCBTree {
	d := fault.NewDigest()
	d.Int(parts)
	for _, p := range points {
		d.Floats(p[:])
	}
	key := d.Sum64()
	treeCache.Lock()
	defer treeCache.Unlock()
	if e, ok := treeCache.entries[key]; ok && e.parts == parts && samePoints(e.points, points) {
		return e.tree
	}
	t := partition.BuildRCBTree(points, parts)
	if len(treeCache.entries) >= 64 {
		treeCache.entries = map[uint64]treeEntry{}
	}
	treeCache.entries[key] = treeEntry{parts: parts, points: points, tree: t}
	return t
}

func samePoints(a, b []partition.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// samplesPerRank sizes the repartition sample: enough points per part
// for a meaningful median at small scale, bounded total (≈4096 points)
// at large scale — every rank sorts the full gathered sample, so an
// unbounded per-rank count would cost O(p² log p) host time.
func samplesPerRank(ranks int) int {
	s := 4096 / ranks
	if s > 32 {
		return 32
	}
	if s < 4 {
		return 4
	}
	return s
}

type repartitionBalancer struct {
	tree      *partition.RCBTree
	threshold float64
	ranks     int
}

// initialTree builds the starting ownership map from the globally agreed
// initial droplet states — identical on every rank, no communication.
func initialTree(ranks int, seed uint64, side float64, simTotal int64) *partition.RCBTree {
	n := int64(ranks * samplesPerRank(ranks))
	if n > simTotal {
		n = simTotal
	}
	points := make([]partition.Point, n)
	for k := int64(0); k < n; k++ {
		x, y, z, _, _, _ := InitialState(seed, uint64(k), side)
		points[k] = partition.Point{x, y, z}
	}
	return cachedBuildTree(points, ranks)
}

func (b *repartitionBalancer) owner(x, y, z float64) int {
	return b.tree.Locate(partition.Point{x, y, z})
}

// balance migrates on the current tree; when the census imbalance
// crosses the threshold it gathers a droplet sample, rebuilds the tree
// (identically on every rank), charges the explicit repartition cost and
// runs a full second redistribution onto the new ownership.
func (b *repartitionBalancer) balance(s *System) {
	cs := s.migrate(b.owner)
	imb := s.observe(cs)
	if imb <= b.threshold {
		return
	}
	b.rebuild(s)
	s.load.Repartitions++
	s.observe(s.migrate(b.owner))
}

// rebuild gathers a stride sample of every rank's droplets and rebuilds
// the RCB tree from the concatenation (rank order, so every rank builds
// the identical tree). Ranks with no droplets contribute the injector
// position, keeping the gather shape deterministic.
func (b *repartitionBalancer) rebuild(s *System) {
	spr := samplesPerRank(b.ranks)
	buf := make([]float64, 0, 3*spr)
	n := len(s.x)
	for i := 0; i < spr; i++ {
		if n == 0 {
			buf = append(buf, InjectorX, InjectorY, InjectorZ)
			continue
		}
		j := i * n / spr
		buf = append(buf, s.x[j], s.y[j], s.z[j])
	}
	all := s.comm.Allgather(buf)
	points := make([]partition.Point, 0, b.ranks*spr)
	for _, part := range all {
		for i := 0; i+2 < len(part); i += 3 {
			points = append(points, partition.Point{part[i], part[i+1], part[i+2]})
		}
	}
	b.tree = cachedBuildTree(points, b.ranks)
	s.comm.Compute(cluster.Work{
		Flops: repartitionFlopsPerDroplet*float64(n)*s.partScale +
			repartitionFlopsPerSample*float64(len(points)),
		Bytes: 24 * float64(n) * s.partScale,
	})
}

func (b *repartitionBalancer) encode() []float64 { return b.tree.Encode() }

func (b *repartitionBalancer) restore(enc []float64) error {
	t, err := partition.DecodeRCBTree(enc)
	if err != nil {
		return err
	}
	if t.Parts() != b.ranks {
		return fmt.Errorf("particle: checkpointed tree splits %d ways, communicator has %d ranks", t.Parts(), b.ranks)
	}
	b.tree = t
	return nil
}

func (b *repartitionBalancer) digest(d *fault.Digest) { d.Floats(b.tree.Encode()) }
