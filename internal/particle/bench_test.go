package particle

import (
	"fmt"
	"testing"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
)

// BenchmarkRunParticle measures the host-side cost of whole particle
// jobs (construction + 5 coupled steps, analytic fast path on) per
// balancing strategy at the paper's scaling rank counts. Recorded in
// BENCH_particle.json; `make bench-particle` re-measures.
func BenchmarkRunParticle(b *testing.B) {
	for _, p := range []int{8, 64, 512} {
		for _, st := range Strategies() {
			b.Run(fmt.Sprintf("ranks=%d/strategy=%s", p, st), func(b *testing.B) {
				cfg := mpi.Config{Machine: cluster.ARCHER2(), FastCollectives: true, Watchdog: -1}
				pc := Config{Droplets: 7_000_000, ConeFraction: 0.1, EvapSteps: 50,
					Strategy: st, ImbalanceThreshold: 1.3, Seed: 3}
				b.ReportAllocs()
				var virtual float64
				for i := 0; i < b.N; i++ {
					st, err := mpi.Run(p, cfg, func(c *mpi.Comm) error {
						s, err := New(c, pc, ScaleOpts{MaxDropletsPerRank: 64})
						if err != nil {
							return err
						}
						for step := 0; step < 5; step++ {
							s.Step(0.02)
						}
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
					virtual = st.Elapsed
				}
				b.ReportMetric(virtual, "virtual-s/run")
			})
		}
	}
}
