package particle

import "cpx/internal/fault"

// Checkpoint is a deep copy of the component's mutable state: the local
// droplet population, the global step counter driving deterministic
// re-injection, the coupled gas gain, the balancer's mutable state (the
// repartition tree; nil for the stateless strategies) and the
// load-balancing accounting. No RNG state exists — every stochastic term
// is hash-derived — so this set resumes a run bit for bit.
type Checkpoint struct {
	X, Y, Z    []float64
	VX, VY, VZ []float64
	Rad        []float64
	Step       int
	GasGain    float64
	Balancer   []float64
	Load       RankLoad
}

// Checkpoint captures the current state.
func (s *System) Checkpoint() *Checkpoint {
	return &Checkpoint{
		X: append([]float64(nil), s.x...), Y: append([]float64(nil), s.y...),
		Z: append([]float64(nil), s.z...), VX: append([]float64(nil), s.vx...),
		VY: append([]float64(nil), s.vy...), VZ: append([]float64(nil), s.vz...),
		Rad:      append([]float64(nil), s.rad...),
		Step:     s.step,
		GasGain:  s.gasGain,
		Balancer: s.bal.encode(),
		Load:     s.load,
	}
}

// Restore overwrites the component state with a checkpoint taken from an
// identically configured instance.
func (s *System) Restore(ck *Checkpoint) error {
	s.x = append(s.x[:0], ck.X...)
	s.y = append(s.y[:0], ck.Y...)
	s.z = append(s.z[:0], ck.Z...)
	s.vx = append(s.vx[:0], ck.VX...)
	s.vy = append(s.vy[:0], ck.VY...)
	s.vz = append(s.vz[:0], ck.VZ...)
	s.rad = append(s.rad[:0], ck.Rad...)
	s.step = ck.Step
	s.gasGain = ck.GasGain
	s.load = ck.Load
	return s.bal.restore(ck.Balancer)
}

// CheckpointBytes is the true (full-scale) state size a rank writes to
// stable storage: its share of the true droplet population, seven
// doubles per droplet.
func (s *System) CheckpointBytes() int {
	return int(float64(len(s.x))*s.partScale) * dropletFields * 8
}

// StateDigest hashes the exact bit patterns of the mutable state.
func (s *System) StateDigest() uint64 {
	d := fault.NewDigest()
	d.Floats(s.x)
	d.Floats(s.y)
	d.Floats(s.z)
	d.Floats(s.vx)
	d.Floats(s.vy)
	d.Floats(s.vz)
	d.Floats(s.rad)
	d.Int(s.step)
	d.Float(s.gasGain)
	s.bal.digest(d)
	d.Int(s.load.Moved)
	d.Int(s.load.Stolen)
	d.Int(s.load.Granted)
	d.Int(s.load.Repartitions)
	d.Float(s.load.LastImbalance)
	d.Float(s.load.PeakImbalance)
	return d.Sum64()
}
