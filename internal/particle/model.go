// Package particle implements the first-class coupled Lagrangian
// particle component: a droplet population partitioned independently of
// the flow mesh, running on its own ranks (MiniCombust-style particle
// ranks vs flow ranks) and exchanging real coupling traffic with a flow
// solver each step — droplet source terms out, interpolated gas fields
// back. Ownership of droplets is delegated to a pluggable load-balancing
// Balancer strategy (static spatial split, work stealing, or
// repartition-on-imbalance), so the virtual-time runtime can measure
// exactly where each strategy wins or loses: the paper identifies the
// spray's collective redistribution as the solver's worst bottleneck
// (96% of the spray routine's run-time is MPI at 2,048 cores, Fig. 5),
// and the source mini-apps explore precisely this design space.
//
// This file is the droplet physics model, shared with internal/spray
// (the flow-decomposition sub-model the subsystem grew out of) so the
// droplet constants live in one place. All stochastic terms here are
// hash-derived from droplet state, the population index and the step
// counter — never from per-rank generator state — which makes every
// droplet trajectory independent of which rank computes it. That is the
// property the differential tests lean on: the global droplet multiset
// is bitwise identical across all three balancing strategies, while the
// communication schedules (and therefore the virtual times) differ.
package particle

import "math"

// Per-droplet work constants: drag + evaporation + cell search per step.
// internal/spray charges the same constants.
const (
	DropletFlopsPerStep = 140.0
	DropletBytesPerStep = 160.0
)

// Tau is the droplet aerodynamic response time of the drag model.
const Tau = 0.05

// GasVelocity is the gas velocity model the droplets relax toward: an
// axial stream plus swirl. The axial component is returned unscaled;
// coupled runs modulate it by the absorbed flow field.
//
//perf:hotpath
func GasVelocity(y, z float64) (gx, gy, gz float64) {
	return 0.4, 0.2 * math.Sin(2*math.Pi*z), -0.2 * math.Sin(2*math.Pi*y)
}

// Reflect bounces a coordinate off the [0,1] lateral walls.
//
//perf:hotpath
func Reflect(pos, vel *float64) {
	if *pos < 0 {
		*pos = -*pos
		*vel = -*vel
	}
	if *pos > 1 {
		*pos = 2 - *pos
		*vel = -*vel
	}
}

// ConeSide returns the side length of the cone-ish injection box
// occupying the given fraction of the unit-domain volume.
func ConeSide(coneFraction float64) float64 { return math.Cbrt(coneFraction) }

// InjectorX/Y/Z is the probe position identifying the injector-owning
// rank (the rank that re-seeds evaporated droplets).
const (
	InjectorX = 0.01
	InjectorY = 0.5
	InjectorZ = 0.5
)

// splitmix64 is the 64-bit finalizer of the splitmix generator — the
// deterministic hash behind every stochastic term of the model.
//
//perf:hotpath
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Unit maps (seed, k) to a uniform value in [0, 1).
//
//perf:hotpath
func Unit(seed, k uint64) float64 {
	return float64(splitmix64(seed^splitmix64(k))>>11) / (1 << 53)
}

// EvapNoise returns the evaporation-rate modulation in [0, 2) for a
// droplet at the given position on the given step. It depends only on
// the droplet's exact state bits and the global step counter, so the
// value is identical no matter which rank owns the droplet.
//
//perf:hotpath
func EvapNoise(x, y, z float64, step int) float64 {
	h := math.Float64bits(x) ^ math.Float64bits(y)<<21 ^ math.Float64bits(z)<<42 ^ uint64(step)
	return 2 * (float64(splitmix64(h)>>11) / (1 << 53))
}

// Salt streams keep the model's independent hash draws uncorrelated.
const (
	saltInit uint64 = 0x243f6a8885a308d3 // initial cloud positions
	saltVel  uint64 = 0x13198a2e03707344 // initial velocities
	saltInj  uint64 = 0xa4093822299f31d0 // re-injection positions
)

// ModelSeed expands a configuration seed into the hash-stream seed
// feeding Unit/InitialState/InjectionState.
func ModelSeed(cfgSeed int64) uint64 {
	return splitmix64(uint64(cfgSeed) * 0x9e3779b97f4a7c15)
}

// InitialState returns droplet k's deterministic initial position and
// velocity inside the injection cone. Every rank evaluates the same
// function, so the initial cloud is a global agreement, not a per-rank
// sample — ownership can then be assigned by any strategy without
// changing the physics.
func InitialState(seed uint64, k uint64, side float64) (x, y, z, vx, vy, vz float64) {
	x = Unit(seed^saltInit, 3*k) * side
	y = 0.5 + (Unit(seed^saltInit, 3*k+1)-0.5)*side
	z = 0.5 + (Unit(seed^saltInit, 3*k+2)-0.5)*side
	vx = 0.3 + 0.1*(2*Unit(seed^saltVel, 3*k)-1)
	vy = 0.05 * (2*Unit(seed^saltVel, 3*k+1) - 1)
	vz = 0.05 * (2*Unit(seed^saltVel, 3*k+2) - 1)
	return
}

// InjectionState returns the deterministic respawn state of the j-th
// droplet re-seeded on a given step: near the injector at the x=0 face,
// inside the inner cone. Identical regardless of which rank hosts the
// injector, so re-seeding commutes with the balancing strategy.
func InjectionState(seed uint64, step int, j int, side float64) (x, y, z, vx, vy, vz float64) {
	k := uint64(step+1)<<24 + uint64(j)
	x = Unit(seed^saltInj, 3*k) * side * 0.2
	y = 0.5 + (Unit(seed^saltInj, 3*k+1)-0.5)*side*0.5
	z = 0.5 + (Unit(seed^saltInj, 3*k+2)-0.5)*side*0.5
	vx = 0.3 + 0.1*(2*Unit(seed^saltVel, 3*k)-1)
	vy = 0
	vz = 0
	return
}
