package particle

import (
	"fmt"
	"math"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
	"cpx/internal/order"
)

// Message tags (disjoint from the coupler's unit tag blocks and the
// spray migration tag; the particle component runs on its own group
// communicator anyway).
const (
	tagMigrate    = 48
	tagStealReq   = 49
	tagStealGrant = 50
)

// dropletFields is the per-droplet payload width of every exchange:
// position, velocity, radius.
const dropletFields = 7

// Config describes a coupled particle population.
type Config struct {
	// Droplets is the true steady-state droplet population (the paper's
	// test cases: 7M droplets per 28M cells).
	Droplets int64
	// ConeFraction is the fraction of the unit domain the droplet cloud
	// occupies (clustered near the injector); drives load imbalance.
	ConeFraction float64
	// EvapSteps is the mean droplet lifetime in steps (recycled by
	// re-injection to keep the population stationary).
	EvapSteps int
	// Strategy selects the load balancer (default StaticSplit).
	Strategy Strategy
	// ImbalanceThreshold triggers a repartition when the max/mean
	// per-rank droplet load crosses it (Repartition strategy only;
	// default 1.5). Must be >= 1 when set.
	ImbalanceThreshold float64
	Seed               int64
}

func (c Config) withDefaults() Config {
	if c.ConeFraction == 0 {
		c.ConeFraction = 0.25
	}
	if c.EvapSteps == 0 {
		c.EvapSteps = 200
	}
	if c.ImbalanceThreshold == 0 {
		c.ImbalanceThreshold = 1.5
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Droplets < 1 {
		return fmt.Errorf("particle: need at least one droplet, got %d", c.Droplets)
	}
	if c.ConeFraction < 0 || c.ConeFraction > 1 {
		return fmt.Errorf("particle: cone fraction %v out of [0,1]", c.ConeFraction)
	}
	if c.ImbalanceThreshold != 0 && c.ImbalanceThreshold < 1 {
		return fmt.Errorf("particle: imbalance threshold %v below 1 (max/mean load is never smaller)", c.ImbalanceThreshold)
	}
	if c.Strategy < StaticSplit || c.Strategy > Repartition {
		return fmt.Errorf("particle: unknown strategy %d", int(c.Strategy))
	}
	return nil
}

// ScaleOpts bound the simulated droplets per rank; zero disables capping.
type ScaleOpts struct {
	MaxDropletsPerRank int
}

// RankLoad is one rank's load-balancing accounting, surfaced through
// coupler.Report so harnesses and the serving layer can attribute where
// a strategy wins or loses.
type RankLoad struct {
	// Droplets is the rank's final local simulated droplet count.
	Droplets int
	// Moved counts droplets this rank migrated to another owner.
	Moved int
	// Stolen counts droplets this rank received through steal grants;
	// Granted counts droplets it handed to thieves.
	Stolen, Granted int
	// Repartitions counts ownership rebuilds this rank joined.
	Repartitions int
	// LastImbalance and PeakImbalance are the global max/mean droplet
	// load after the final step and its maximum over the run (identical
	// on every rank: both derive from the shared census).
	LastImbalance, PeakImbalance float64
}

// LoadReport aggregates the per-rank loads of one particle instance.
type LoadReport struct {
	Strategy                     string
	Ranks                        int
	Moved, Stolen, Granted       int
	Repartitions                 int
	LastImbalance, PeakImbalance float64
}

// AggregateLoads folds the per-rank accounting of one instance into a
// report. Imbalance fields are global values replicated on every rank;
// the first rank's copy is authoritative.
func AggregateLoads(strategy string, loads []RankLoad) LoadReport {
	rep := LoadReport{Strategy: strategy, Ranks: len(loads)}
	for i, l := range loads {
		rep.Moved += l.Moved
		rep.Stolen += l.Stolen
		rep.Granted += l.Granted
		if i == 0 {
			rep.Repartitions = l.Repartitions
			rep.LastImbalance = l.LastImbalance
			rep.PeakImbalance = l.PeakImbalance
		}
	}
	return rep
}

// System is the per-rank state of the coupled particle component.
type System struct {
	comm *mpi.Comm
	cfg  Config
	bal  balancer
	seed uint64
	side float64

	// Droplet state (SoA): position, velocity, radius.
	x, y, z    []float64
	vx, vy, vz []float64
	rad        []float64

	partScale float64 // true droplets per simulated droplet
	step      int     // global step counter (drives deterministic re-injection)
	// gasGain scales the axial gas velocity; coupled runs drive it from
	// the absorbed flow field (1.0 standalone).
	gasGain float64
	load    RankLoad
}

// New creates the particle component on communicator c — its own set of
// ranks, partitioned independently of any flow mesh. Collective over c.
func New(c *mpi.Comm, cfg Config, sc ScaleOpts) (*System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := c.Size()
	s := &System{
		comm: c, cfg: cfg, seed: ModelSeed(cfg.Seed),
		side: ConeSide(cfg.ConeFraction), gasGain: 1,
	}
	simTotal := int64(p) * 4096
	if simTotal > cfg.Droplets {
		simTotal = cfg.Droplets
	}
	if sc.MaxDropletsPerRank > 0 && simTotal > int64(sc.MaxDropletsPerRank)*int64(p) {
		simTotal = int64(sc.MaxDropletsPerRank) * int64(p)
	}
	s.partScale = float64(cfg.Droplets) / float64(simTotal)
	s.bal = newBalancer(cfg, p, s.seed, s.side, simTotal)

	// The initial cloud is a global agreement: every rank evaluates the
	// same hash-derived droplet states and keeps the ones it owns under
	// the strategy's initial ownership map.
	mine := 0
	r := c.Rank()
	for k := int64(0); k < simTotal; k++ {
		px, py, pz, pvx, pvy, pvz := InitialState(s.seed, uint64(k), s.side)
		if s.bal.owner(px, py, pz) != r {
			continue
		}
		s.spawn(px, py, pz, pvx, pvy, pvz, 1.0)
		mine++
	}
	// Loading cost for the true population share.
	c.Compute(cluster.Work{Flops: 20 * float64(mine) * s.partScale,
		Bytes: 64 * float64(mine) * s.partScale})
	return s, nil
}

func (s *System) spawn(px, py, pz, pvx, pvy, pvz, r float64) {
	s.x = append(s.x, px)
	s.y = append(s.y, py)
	s.z = append(s.z, pz)
	s.vx = append(s.vx, pvx)
	s.vy = append(s.vy, pvy)
	s.vz = append(s.vz, pvz)
	s.rad = append(s.rad, r)
}

// Strategy returns the active balancing strategy.
func (s *System) Strategy() Strategy { return s.cfg.Strategy }

// Local returns the rank-local simulated droplet count.
func (s *System) Local() int { return len(s.x) }

// Count returns the global simulated droplet count (collective).
func (s *System) Count() int { return s.comm.AllreduceInt(len(s.x), mpi.Sum) }

// TrueCount returns the represented true droplet population (collective).
func (s *System) TrueCount() float64 {
	return s.comm.AllreduceScalar(float64(len(s.x))*s.partScale, mpi.Sum)
}

// Imbalance returns max/mean droplets per rank (collective).
func (s *System) Imbalance() float64 {
	n := float64(len(s.x))
	maxN := s.comm.AllreduceScalar(n, mpi.Max)
	sumN := s.comm.AllreduceScalar(n, mpi.Sum)
	return imbalanceOf(maxN, sumN, s.comm.Size())
}

// imbalanceOf is the max/mean load metric (1 when the population is
// empty, matching partition.Imbalance's convention).
func imbalanceOf(maxN, sumN float64, ranks int) float64 {
	mean := sumN / float64(ranks)
	if mean == 0 {
		return 1
	}
	return maxN / mean
}

// Load returns this rank's accounting with the live droplet count.
func (s *System) Load() RankLoad {
	l := s.load
	l.Droplets = len(s.x)
	return l
}

// StepWork returns the true per-step droplet work this rank represents.
func (s *System) StepWork() cluster.Work {
	return cluster.Work{
		Flops: DropletFlopsPerStep * float64(len(s.x)) * s.partScale,
		Bytes: DropletBytesPerStep * float64(len(s.x)) * s.partScale,
	}
}

// Step advances the component one time-step: droplet physics, then the
// strategy's migration/balancing exchange. Collective over the particle
// communicator.
//
//perf:hotpath
func (s *System) Step(dt float64) {
	s.advect(dt)
	s.bal.balance(s)
	s.step++
}

// advect updates every local droplet: drag toward the gas velocity,
// evaporation, wall handling. Droplets that evaporate or escape are
// marked (negative radius) and replaced during migration by the
// injector-owning rank. All noise is hash-derived from droplet state and
// the step counter, so trajectories are independent of ownership.
//
//perf:hotpath
func (s *System) advect(dt float64) {
	evap := 1.0 / float64(s.cfg.EvapSteps)
	for i := 0; i < len(s.x); i++ {
		gx, gy, gz := GasVelocity(s.y[i], s.z[i])
		gx *= s.gasGain
		s.vx[i] += dt / Tau * (gx - s.vx[i])
		s.vy[i] += dt / Tau * (gy - s.vy[i])
		s.vz[i] += dt / Tau * (gz - s.vz[i])
		s.x[i] += dt * s.vx[i]
		s.y[i] += dt * s.vy[i]
		s.z[i] += dt * s.vz[i]
		s.rad[i] -= evap * EvapNoise(s.x[i], s.y[i], s.z[i], s.step)
		// Reflect at lateral walls, absorb at the outlet (x > 1).
		Reflect(&s.y[i], &s.vy[i])
		Reflect(&s.z[i], &s.vz[i])
		if s.x[i] < 0 {
			s.x[i] = -s.x[i]
			s.vx[i] = -s.vx[i]
		}
		if s.rad[i] <= 0 || s.x[i] >= 1 {
			s.rad[i] = -1 // lost: re-seeded at the injector during migration
		}
	}
	s.comm.Compute(cluster.Work{
		Flops: DropletFlopsPerStep * float64(len(s.x)) * s.partScale,
		Bytes: DropletBytesPerStep * float64(len(s.x)) * s.partScale,
	})
}

// census is the balancer's global view after one migration: the exact
// post-migration droplet load of every rank and the number of droplets
// lost this step. One p-wide reduction per migration — the collective
// the paper blames for spray scaling.
type census struct {
	loads []int // post-migration (and post-re-injection) load per rank
	lost  int
}

// migrate moves each droplet to the rank owning its position under the
// given ownership map, exactly like the spray's alltoallv-style
// redistribution: per-message CPU overheads of the dense pairwise
// schedule are charged analytically, the non-empty payloads travel as
// real messages, and a single combined reduction gives every rank both
// its inbound message count and the global post-migration load vector.
// The injector-owning rank then re-seeds the globally lost droplets.
func (s *System) migrate(owner func(x, y, z float64) int) census {
	p, r := s.comm.Size(), s.comm.Rank()
	buffers := map[int][]float64{}
	var kx, ky, kz, kvx, kvy, kvz, krad []float64
	removed := 0
	for i := 0; i < len(s.x); i++ {
		if s.rad[i] < 0 {
			removed++
			continue
		}
		o := owner(s.x[i], s.y[i], s.z[i])
		if o == r {
			kx = append(kx, s.x[i])
			ky = append(ky, s.y[i])
			kz = append(kz, s.z[i])
			kvx = append(kvx, s.vx[i])
			kvy = append(kvy, s.vy[i])
			kvz = append(kvz, s.vz[i])
			krad = append(krad, s.rad[i])
		} else {
			buffers[o] = append(buffers[o],
				s.x[i], s.y[i], s.z[i], s.vx[i], s.vy[i], s.vz[i], s.rad[i])
		}
	}
	// Combined census: [0,p) inbound-message indicator, [p,2p) exact
	// post-migration load contribution, [2p] lost droplets. Destination
	// order is fixed once here and reused for the sends below, whose
	// virtual timestamps depend on it.
	dests := order.SortedKeys(buffers)
	vec := make([]float64, 2*p+1)
	for _, d := range dests {
		vec[d] = 1
		vec[p+d] = float64(len(buffers[d]) / dropletFields)
	}
	vec[p+r] = float64(len(kx))
	vec[2*p] = float64(removed)
	sum := s.comm.Allreduce(vec, mpi.Sum)
	inbound := int(sum[r])
	cs := census{loads: make([]int, p), lost: int(sum[2*p])}
	for d := 0; d < p; d++ {
		cs.loads[d] = int(sum[p+d])
	}

	// Analytic charge for the dense pairwise schedule: every pair of the
	// alltoallv exchanges ownership updates plus the particle-flow
	// coupling payload, ~12 KiB per pair in the production code. This
	// O(p) per-rank schedule is what makes the spray routine 96%
	// communication at 2,048 cores (Fig. 5a).
	m := s.comm.Machine()
	const pairBytes = 12288
	pairCost := m.SendOverhead + m.RecvOverhead + m.InterNodeLatency + pairBytes/m.EffectiveInterBW()
	if n := (p - 1) - len(buffers); n > 0 {
		s.comm.ChargeCommSeconds(float64(n) * pairCost)
	}
	// Real payload messages, in the deterministic destination order
	// established above.
	for _, d := range dests {
		buf := buffers[d]
		s.load.Moved += len(buf) / dropletFields
		s.comm.SendVirtual(d, tagMigrate, buf, int(float64(len(buf))*8*s.partScale))
	}
	// Waitall-style batched receive: clock advance and droplet ordering
	// are both independent of host-side delivery order.
	batches, _ := s.comm.RecvAll(inbound, tagMigrate)
	for _, d := range batches {
		for i := 0; i+dropletFields-1 < len(d); i += dropletFields {
			kx = append(kx, d[i])
			ky = append(ky, d[i+1])
			kz = append(kz, d[i+2])
			kvx = append(kvx, d[i+3])
			kvy = append(kvy, d[i+4])
			kvz = append(kvz, d[i+5])
			krad = append(krad, d[i+6])
		}
	}
	s.x, s.y, s.z, s.vx, s.vy, s.vz, s.rad = kx, ky, kz, kvx, kvy, kvz, krad

	// The injector-owning rank re-seeds globally lost droplets from the
	// deterministic injection stream, keeping the population stationary
	// like a continuous fuel spray. The re-seeded states depend only on
	// (step, index), so re-injection commutes with the strategy choice.
	if inj := owner(InjectorX, InjectorY, InjectorZ); cs.lost > 0 && inj == r {
		for j := 0; j < cs.lost; j++ {
			px, py, pz, pvx, pvy, pvz := InjectionState(s.seed, s.step, j, s.side)
			s.spawn(px, py, pz, pvx, pvy, pvz, 1.0)
		}
	}
	if cs.lost > 0 {
		cs.loads[owner(InjectorX, InjectorY, InjectorZ)] += cs.lost
	}
	return cs
}

// observe records the census-derived global imbalance in the rank's
// accounting (identical on every rank).
func (s *System) observe(cs census) float64 {
	maxN, sumN := 0, 0
	for _, l := range cs.loads {
		if l > maxN {
			maxN = l
		}
		sumN += l
	}
	imb := imbalanceOf(float64(maxN), float64(sumN), len(cs.loads))
	s.load.LastImbalance = imb
	s.load.PeakImbalance = math.Max(s.load.PeakImbalance, imb)
	return imb
}

// ---- Coupling hooks (the coupler's solver interface) ------------------------

// BoundarySample extracts n interface values: the droplet source terms
// (evaporated-mass proxy from this rank's population share) a flow
// solver absorbs, laid out over the interface points.
func (s *System) BoundarySample(n int) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	sumR := 0.0
	for _, r := range s.rad {
		sumR += r
	}
	mean := 0.0
	if len(s.rad) > 0 {
		mean = sumR / float64(len(s.rad))
	}
	// Source-term magnitude around 1 (the flow side's absorb guards
	// reject non-physical transfers outside (0.1, 10)).
	base := 0.8 + 0.4*mean
	for i := range out {
		out[i] = base * (1 + 0.1*math.Sin(float64(i)*0.7))
	}
	return out
}

// AbsorbBoundary relaxes the axial gas velocity gain toward interpolated
// flow-field values received from the coupled flow solver.
func (s *System) AbsorbBoundary(vals []float64) {
	if len(vals) == 0 {
		return
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	g := sum / float64(len(vals))
	if g > 0.1 && g < 10 { // guard against non-physical transfers
		s.gasGain = 0.95*s.gasGain + 0.05*g
	}
}
