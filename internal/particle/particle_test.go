package particle

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"testing"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
)

func cfg() mpi.Config {
	return mpi.Config{Machine: cluster.SmallCluster(), Watchdog: 120 * time.Second}
}

func smallCfg(st Strategy) Config {
	return Config{Droplets: 40_000, ConeFraction: 0.15, EvapSteps: 40, Strategy: st, Seed: 7}
}

func smallScale() ScaleOpts { return ScaleOpts{MaxDropletsPerRank: 192} }

func TestConfigValidation(t *testing.T) {
	if err := (Config{Droplets: 0}).Validate(); err == nil {
		t.Error("zero droplets accepted")
	}
	if err := (Config{Droplets: 10, ConeFraction: 1.5}).Validate(); err == nil {
		t.Error("cone fraction > 1 accepted")
	}
	if err := (Config{Droplets: 10, ImbalanceThreshold: 0.5}).Validate(); err == nil {
		t.Error("imbalance threshold below 1 accepted")
	}
	if err := (Config{Droplets: 10, Strategy: Strategy(9)}).Validate(); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := smallCfg(Repartition).withDefaults().Validate(); err != nil {
		t.Error(err)
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{"": StaticSplit, "static": StaticSplit,
		"steal": WorkSteal, "worksteal": WorkSteal, "repartition": Repartition}
	for name, want := range cases {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseStrategy("round-robin"); err == nil {
		t.Error("unknown strategy name accepted")
	}
	for _, st := range Strategies() {
		back, err := ParseStrategy(st.String())
		if err != nil || back != st {
			t.Errorf("round trip %v -> %q -> %v, %v", st, st.String(), back, err)
		}
	}
}

func TestGridFor(t *testing.T) {
	cases := map[int][3]int{
		1: {1, 1, 1}, 2: {2, 1, 1}, 4: {2, 2, 1}, 7: {7, 1, 1},
		8: {2, 2, 2}, 12: {3, 2, 2}, 64: {4, 4, 4}, 512: {8, 8, 8},
	}
	for p, want := range cases {
		if got := gridFor(p); got != want {
			t.Errorf("gridFor(%d) = %v, want %v", p, got, want)
		}
	}
}

// TestStealPlanHandCase pins the deterministic steal plan on a
// hand-computed load vector: total 12 over 3 ranks, target ceil(12/3)=4,
// so rank 0 (load 10) donates 4 to rank 2 (load 0) and 2 to rank 1
// (load 2) — largest deficit first.
func TestStealPlanHandCase(t *testing.T) {
	plan := stealPlan([]int{10, 2, 0})
	want := []transfer{{victim: 0, thief: 2, n: 4}, {victim: 0, thief: 1, n: 2}}
	if len(plan) != len(want) {
		t.Fatalf("plan %v, want %v", plan, want)
	}
	for i := range want {
		if plan[i] != want[i] {
			t.Fatalf("plan %v, want %v", plan, want)
		}
	}
	if p := stealPlan([]int{4, 4, 4}); len(p) != 0 {
		t.Errorf("balanced loads produced plan %v", p)
	}
}

// TestImbalanceOfHandCase pins the max/mean metric against hand
// calculation: loads {6,2} → mean 4, imbalance 1.5; empty loads → 1.
func TestImbalanceOfHandCase(t *testing.T) {
	if got := imbalanceOf(6, 8, 2); got != 1.5 {
		t.Errorf("imbalance(6,8,2) = %v, want 1.5", got)
	}
	if got := imbalanceOf(0, 0, 4); got != 1 {
		t.Errorf("empty imbalance = %v, want 1", got)
	}
}

// TestPopulationStationary checks the re-injection loop: lost droplets
// (evaporated or advected past the outlet) are re-seeded, so the global
// simulated population is constant through the run for every strategy.
func TestPopulationStationary(t *testing.T) {
	for _, st := range Strategies() {
		_, err := mpi.Run(8, cfg(), func(c *mpi.Comm) error {
			s, err := New(c, smallCfg(st), smallScale())
			if err != nil {
				return err
			}
			want := s.Count()
			for i := 0; i < 30; i++ {
				s.Step(0.02)
				if got := s.Count(); got != want {
					return fmt.Errorf("step %d: population %d, want %d", i, got, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
	}
}

// gatherCloud collects the global droplet multiset, sorted, so runs with
// different ownership assignments compare bitwise.
func gatherCloud(s *System) []float64 {
	local := make([]float64, 0, len(s.x)*dropletFields)
	for i := range s.x {
		local = append(local, s.x[i], s.y[i], s.z[i], s.vx[i], s.vy[i], s.vz[i], s.rad[i])
	}
	parts := s.comm.Allgather(local)
	type row [dropletFields]float64
	var rows []row
	for _, part := range parts {
		for i := 0; i+dropletFields-1 < len(part); i += dropletFields {
			var r row
			copy(r[:], part[i:i+dropletFields])
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(a, b int) bool {
		for d := 0; d < dropletFields; d++ {
			if rows[a][d] != rows[b][d] {
				return rows[a][d] < rows[b][d]
			}
		}
		return false
	})
	out := make([]float64, 0, len(rows)*dropletFields)
	for _, r := range rows {
		out = append(out, r[:]...)
	}
	return out
}

// TestStrategiesPreservePhysics is the subsystem's differential oracle:
// every stochastic term is hash-derived from droplet state, never from
// rank state, so the global droplet multiset after N steps must be
// bitwise identical across all three balancing strategies — only the
// communication schedule (and hence virtual time) may differ.
func TestStrategiesPreservePhysics(t *testing.T) {
	clouds := make([][]float64, 0, 3)
	for _, st := range Strategies() {
		_, err := mpi.Run(8, cfg(), func(c *mpi.Comm) error {
			s, err := New(c, smallCfg(st), smallScale())
			if err != nil {
				return err
			}
			for i := 0; i < 20; i++ {
				s.Step(0.02)
			}
			if c.Rank() == 0 {
				clouds = append(clouds, gatherCloud(s))
			} else {
				gatherCloud(s)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
	}
	for i := 1; i < len(clouds); i++ {
		if len(clouds[i]) != len(clouds[0]) {
			t.Fatalf("strategy %v cloud size %d, static %d",
				Strategies()[i], len(clouds[i])/dropletFields, len(clouds[0])/dropletFields)
		}
		for j := range clouds[i] {
			if clouds[i][j] != clouds[0][j] {
				t.Fatalf("strategy %v droplet multiset diverges from static at value %d",
					Strategies()[i], j)
			}
		}
	}
}

// runOnce runs a fixed particle workload and returns the final stats.
func runOnce(t *testing.T, st Strategy, c mpi.Config) *mpi.Stats {
	t.Helper()
	stats, err := mpi.Run(8, c, func(cm *mpi.Comm) error {
		s, err := New(cm, smallCfg(st), smallScale())
		if err != nil {
			return err
		}
		for i := 0; i < 15; i++ {
			s.Step(0.02)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestExecutorsIdentical asserts bitwise-identical virtual time between
// the goroutine and event-driven executors, and under GOMAXPROCS=1, for
// every balancing strategy — the runtime's core invariant extended to
// the new subsystem's exchanges (migration, steal grants, repartition).
func TestExecutorsIdentical(t *testing.T) {
	for _, st := range Strategies() {
		base := runOnce(t, st, cfg())
		evCfg := cfg()
		evCfg.EventDriven = true
		event := runOnce(t, st, evCfg)
		prev := runtime.GOMAXPROCS(1)
		serial := runOnce(t, st, cfg())
		runtime.GOMAXPROCS(prev)
		for _, other := range []*mpi.Stats{event, serial} {
			if other.Elapsed != base.Elapsed {
				t.Errorf("%v: elapsed %v vs %v", st, other.Elapsed, base.Elapsed)
			}
			for r := range base.Clocks {
				if other.Clocks[r] != base.Clocks[r] {
					t.Errorf("%v: rank %d clock %v vs %v", st, r, other.Clocks[r], base.Clocks[r])
				}
			}
		}
	}
}

// TestCheckpointRestore checks bit-exact resume: checkpoint mid-run,
// keep stepping, then restore and replay — digests and the droplet state
// must match the original continuation exactly, for every strategy
// (including the repartition tree carried through the checkpoint).
func TestCheckpointRestore(t *testing.T) {
	for _, st := range Strategies() {
		c := smallCfg(st)
		c.ImbalanceThreshold = 1.1 // make repartitions likely inside the window
		_, err := mpi.Run(8, cfg(), func(cm *mpi.Comm) error {
			s, err := New(cm, c, smallScale())
			if err != nil {
				return err
			}
			for i := 0; i < 6; i++ {
				s.Step(0.02)
			}
			ck := s.Checkpoint()
			ckDigest := s.StateDigest()
			for i := 0; i < 6; i++ {
				s.Step(0.02)
			}
			want := s.StateDigest()
			if err := s.Restore(ck); err != nil {
				return err
			}
			if got := s.StateDigest(); got != ckDigest {
				return fmt.Errorf("digest after restore %x, at checkpoint %x", got, ckDigest)
			}
			for i := 0; i < 6; i++ {
				s.Step(0.02)
			}
			if got := s.StateDigest(); got != want {
				return fmt.Errorf("replayed digest %x, original %x", got, want)
			}
			if s.CheckpointBytes() <= 0 {
				return fmt.Errorf("checkpoint bytes %d", s.CheckpointBytes())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
	}
}

// TestRestoreRejectsForeignBalancerState checks the restore guards: the
// stateless balancers reject checkpoints carrying tree state and the
// repartition balancer rejects malformed encodings.
func TestRestoreRejectsForeignBalancerState(t *testing.T) {
	_, err := mpi.Run(2, cfg(), func(cm *mpi.Comm) error {
		s, err := New(cm, smallCfg(StaticSplit), smallScale())
		if err != nil {
			return err
		}
		ck := s.Checkpoint()
		ck.Balancer = []float64{1, 2, 3}
		if err := s.Restore(ck); err == nil {
			return fmt.Errorf("static balancer accepted tree state")
		}
		r, err := New(cm, smallCfg(Repartition), smallScale())
		if err != nil {
			return err
		}
		ck2 := r.Checkpoint()
		ck2.Balancer = []float64{1}
		if err := r.Restore(ck2); err == nil {
			return fmt.Errorf("repartition balancer accepted malformed tree")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorkStealBalancesLoad drives a heavily clustered cloud (tight
// injection cone) and checks the steal strategy actually moves work: the
// total granted equals the total stolen, both are non-zero, and after
// stealing the local counts sit strictly closer to the mean than the
// static split leaves them.
func TestWorkStealBalancesLoad(t *testing.T) {
	spread := func(st Strategy) (maxLocal, stolen, granted int) {
		_, err := mpi.Run(8, cfg(), func(c *mpi.Comm) error {
			cc := smallCfg(st)
			cc.ConeFraction = 0.05
			s, err := New(c, cc, smallScale())
			if err != nil {
				return err
			}
			for i := 0; i < 10; i++ {
				s.Step(0.02)
			}
			ml := c.AllreduceInt(s.Local(), mpi.Max)
			st := c.AllreduceInt(s.Load().Stolen, mpi.Sum)
			gr := c.AllreduceInt(s.Load().Granted, mpi.Sum)
			if c.Rank() == 0 {
				maxLocal, stolen, granted = ml, st, gr
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		return
	}
	staticMax, _, _ := spread(StaticSplit)
	stealMax, stolen, granted := spread(WorkSteal)
	if stolen == 0 || stolen != granted {
		t.Fatalf("stolen %d, granted %d; want equal and non-zero", stolen, granted)
	}
	if stealMax >= staticMax {
		t.Errorf("steal max local %d not below static max %d", stealMax, staticMax)
	}
}

// TestRepartitionTriggersOnImbalance checks the threshold semantics: a
// clustered cloud under a tight threshold repartitions and ends with a
// lower imbalance than the static split; a huge threshold never fires.
func TestRepartitionTriggersOnImbalance(t *testing.T) {
	run := func(st Strategy, threshold float64) (reps int, last float64) {
		_, err := mpi.Run(8, cfg(), func(c *mpi.Comm) error {
			cc := smallCfg(st)
			cc.ConeFraction = 0.05
			cc.ImbalanceThreshold = threshold
			s, err := New(c, cc, smallScale())
			if err != nil {
				return err
			}
			for i := 0; i < 10; i++ {
				s.Step(0.02)
			}
			if c.Rank() == 0 {
				reps = s.Load().Repartitions
				last = s.Load().LastImbalance
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		return
	}
	_, staticLast := run(StaticSplit, 1.5)
	reps, repLast := run(Repartition, 1.2)
	if reps == 0 {
		t.Fatal("tight threshold never repartitioned a clustered cloud")
	}
	if repLast >= staticLast {
		t.Errorf("repartition final imbalance %v not below static %v", repLast, staticLast)
	}
	if reps, _ := run(Repartition, 100); reps != 0 {
		t.Errorf("threshold 100 fired %d repartitions", reps)
	}
}

// TestImbalanceMatchesCensus cross-checks the collective Imbalance probe
// against the census-derived accounting the balancer records.
func TestImbalanceMatchesCensus(t *testing.T) {
	_, err := mpi.Run(4, cfg(), func(c *mpi.Comm) error {
		s, err := New(c, smallCfg(StaticSplit), smallScale())
		if err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			s.Step(0.02)
		}
		probe := s.Imbalance()
		if rec := s.Load().LastImbalance; math.Abs(rec-probe) > 1e-12 {
			return fmt.Errorf("recorded imbalance %v, probe %v", rec, probe)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAggregateLoads pins the instance-level roll-up on a hand case.
func TestAggregateLoads(t *testing.T) {
	rep := AggregateLoads("steal", []RankLoad{
		{Droplets: 10, Moved: 3, Stolen: 2, Granted: 0, Repartitions: 1, LastImbalance: 1.25, PeakImbalance: 2},
		{Droplets: 4, Moved: 1, Stolen: 0, Granted: 2, Repartitions: 1, LastImbalance: 1.25, PeakImbalance: 2},
	})
	want := LoadReport{Strategy: "steal", Ranks: 2, Moved: 4, Stolen: 2, Granted: 2,
		Repartitions: 1, LastImbalance: 1.25, PeakImbalance: 2}
	if rep != want {
		t.Errorf("AggregateLoads = %+v, want %+v", rep, want)
	}
}

// TestCoupling exercises the solver-interface hooks standalone: source
// terms stay inside the flow side's absorb guard band and absorbed gas
// fields move the gain.
func TestCoupling(t *testing.T) {
	_, err := mpi.Run(4, cfg(), func(c *mpi.Comm) error {
		s, err := New(c, smallCfg(StaticSplit), smallScale())
		if err != nil {
			return err
		}
		s.Step(0.02)
		vals := s.BoundarySample(16)
		if len(vals) != 16 {
			return fmt.Errorf("sample length %d", len(vals))
		}
		for _, v := range vals {
			if v <= 0.1 || v >= 10 {
				return fmt.Errorf("source term %v outside guard band", v)
			}
		}
		before := s.gasGain
		s.AbsorbBoundary([]float64{2, 2, 2})
		if s.gasGain <= before {
			return fmt.Errorf("gas gain %v did not move toward absorbed field", s.gasGain)
		}
		s.AbsorbBoundary([]float64{1e9}) // guarded: non-physical
		if s.gasGain > 10 {
			return fmt.Errorf("guard let non-physical gain through: %v", s.gasGain)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
