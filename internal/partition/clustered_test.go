package partition_test

import (
	"testing"

	"cpx/internal/particle"
	"cpx/internal/partition"
)

// coneCloud builds a heavily clustered droplet distribution: the
// particle model's deterministic injection-cone cloud at the given cone
// fraction (tight fractions concentrate all points near the injector
// face, the worst case for a static spatial split).
func coneCloud(seed int64, n int, coneFraction float64) []partition.Point {
	side := particle.ConeSide(coneFraction)
	ms := particle.ModelSeed(seed)
	pts := make([]partition.Point, n)
	for k := 0; k < n; k++ {
		x, y, z, _, _, _ := particle.InitialState(ms, uint64(k), side)
		pts[k] = partition.Point{x, y, z}
	}
	return pts
}

// TestRCBDeterministicOnClusteredClouds: RCB over the same clustered
// cloud must label identically on repeated calls, across a spread of
// seeds and cone fractions — ownership is a pure function of the input.
func TestRCBDeterministicOnClusteredClouds(t *testing.T) {
	for _, seed := range []int64{1, 2, 42, 1000} {
		for _, cone := range []float64{0.02, 0.1, 0.25} {
			pts := coneCloud(seed, 500, cone)
			a := partition.RCB(pts, 8)
			b := partition.RCB(pts, 8)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d cone %v: RCB labels differ at point %d", seed, cone, i)
				}
			}
		}
	}
}

// TestRCBTreeMatchesRCBLabels: Locate on the retained cut planes must
// reproduce the labels RCB assigned to the build points, even on tightly
// clustered clouds where many cuts sit inside the cone.
func TestRCBTreeMatchesRCBLabels(t *testing.T) {
	for _, seed := range []int64{3, 9, 77} {
		for _, cone := range []float64{0.02, 0.1, 0.25} {
			pts := coneCloud(seed, 400, cone)
			labels := partition.RCB(pts, 8)
			tree := partition.BuildRCBTree(pts, 8)
			for i, p := range pts {
				if got := tree.Locate(p); got != labels[i] {
					t.Fatalf("seed %d cone %v: point %d located to %d, RCB label %d",
						seed, cone, i, got, labels[i])
				}
			}
		}
	}
}

// TestRCBTreeDeterministicAcrossBuilds: the encoded cut structure is a
// pure function of the cloud, across seeds.
func TestRCBTreeDeterministicAcrossBuilds(t *testing.T) {
	for _, seed := range []int64{5, 11} {
		pts := coneCloud(seed, 300, 0.05)
		a := partition.BuildRCBTree(pts, 16).Encode()
		b := partition.BuildRCBTree(pts, 16).Encode()
		if len(a) != len(b) {
			t.Fatalf("seed %d: encodings %d vs %d values", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: encoded trees differ at value %d", seed, i)
			}
		}
	}
}

// TestRCBBalancesClusteredClouds: RCB must keep part sizes within one
// point of each other even when the whole cloud occupies 2% of the
// domain — the property the repartition balancer buys with its rebuild.
func TestRCBBalancesClusteredClouds(t *testing.T) {
	for _, seed := range []int64{1, 8, 21} {
		pts := coneCloud(seed, 512, 0.02)
		labels := partition.RCB(pts, 8)
		sizes := partition.PartSizes(labels, 8)
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Errorf("seed %d: clustered part sizes %v spread by %d", seed, sizes, max-min)
		}
		if imb := partition.Imbalance(labels, 8); imb > 1.02 {
			t.Errorf("seed %d: clustered RCB imbalance %v", seed, imb)
		}
	}
}

// TestImbalanceHandComputed pins the max/mean metric reported to
// telemetry on a hand-computed small case: 6 points over 3 parts as
// {3, 2, 1} → mean 2, imbalance 3/2; and the balanced {2, 2, 2} → 1.
func TestImbalanceHandComputed(t *testing.T) {
	part := []int{0, 0, 0, 1, 1, 2}
	if sizes := partition.PartSizes(part, 3); sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("part sizes %v, want [3 2 1]", sizes)
	}
	if got := partition.Imbalance(part, 3); got != 1.5 {
		t.Errorf("imbalance = %v, want 1.5", got)
	}
	if got := partition.Imbalance([]int{0, 0, 1, 1, 2, 2}, 3); got != 1 {
		t.Errorf("balanced imbalance = %v, want 1", got)
	}
}

// TestRCBTreeEncodeRoundTrip: decoding an encoded tree reproduces
// Locate exactly; malformed encodings are rejected.
func TestRCBTreeEncodeRoundTrip(t *testing.T) {
	pts := coneCloud(13, 256, 0.05)
	tree := partition.BuildRCBTree(pts, 8)
	dec, err := partition.DecodeRCBTree(tree.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Parts() != tree.Parts() {
		t.Fatalf("decoded parts %d, want %d", dec.Parts(), tree.Parts())
	}
	probe := coneCloud(14, 200, 0.5)
	for _, p := range probe {
		if dec.Locate(p) != tree.Locate(p) {
			t.Fatalf("decoded tree locates %v differently", p)
		}
	}
	if _, err := partition.DecodeRCBTree(nil); err == nil {
		t.Error("nil encoding accepted")
	}
	if _, err := partition.DecodeRCBTree([]float64{8, 2, 0, 0.5}); err == nil {
		t.Error("truncated encoding accepted")
	}
	bad := tree.Encode()
	bad[2] = 7 // axis out of range
	if _, err := partition.DecodeRCBTree(bad); err == nil {
		t.Error("malformed axis accepted")
	}
}
