// Package partition provides mesh/graph partitioning for the mini-apps:
// recursive coordinate bisection (RCB) for point sets with geometry and a
// greedy graph-growing partitioner for pure adjacency graphs, plus the
// quality metrics (edge cut, imbalance, halo size) that drive the
// communication volumes of the coupled simulation. Production runs in the
// paper partition offline with METIS-class tools; these algorithms fill
// the same role here.
package partition

import (
	"fmt"
	"sort"
)

// Graph is a compressed adjacency structure: the neighbours of vertex v
// are Adj[Ptr[v]:Ptr[v+1]]. Edges are expected in both directions.
type Graph struct {
	Ptr []int
	Adj []int
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Ptr) - 1 }

// Validate checks structural invariants.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n < 0 {
		return fmt.Errorf("partition: graph has no Ptr array")
	}
	if g.Ptr[0] != 0 || g.Ptr[n] != len(g.Adj) {
		return fmt.Errorf("partition: Ptr endpoints inconsistent with Adj length")
	}
	for v := 0; v < n; v++ {
		if g.Ptr[v] > g.Ptr[v+1] {
			return fmt.Errorf("partition: Ptr not monotone at %d", v)
		}
		for _, u := range g.Adj[g.Ptr[v]:g.Ptr[v+1]] {
			if u < 0 || u >= n {
				return fmt.Errorf("partition: neighbour %d of %d out of range", u, v)
			}
		}
	}
	return nil
}

// NewGraphFromEdges builds a symmetric adjacency graph from an edge list.
func NewGraphFromEdges(n int, edges [][2]int) *Graph {
	deg := make([]int, n)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	ptr := make([]int, n+1)
	for v := 0; v < n; v++ {
		ptr[v+1] = ptr[v] + deg[v]
	}
	adj := make([]int, ptr[n])
	fill := make([]int, n)
	copy(fill, ptr[:n])
	for _, e := range edges {
		adj[fill[e[0]]] = e[1]
		fill[e[0]]++
		adj[fill[e[1]]] = e[0]
		fill[e[1]]++
	}
	return &Graph{Ptr: ptr, Adj: adj}
}

// Point is a vertex coordinate for geometric partitioning.
type Point [3]float64

// RCB partitions points into `parts` pieces by recursive coordinate
// bisection: at each level the current point set is split at the median of
// its longest axis. Part sizes differ by at most one when parts divides
// unevenly. Returns part id per point.
func RCB(points []Point, parts int) []int {
	if parts <= 0 {
		panic("partition: RCB parts must be positive")
	}
	part := make([]int, len(points))
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	rcbRecurse(points, idx, 0, parts, part)
	return part
}

func rcbRecurse(points []Point, idx []int, base, parts int, out []int) {
	if parts == 1 {
		for _, i := range idx {
			out[i] = base
		}
		return
	}
	// Longest axis of this subset's bounding box.
	var lo, hi Point
	for d := 0; d < 3; d++ {
		lo[d], hi[d] = points[idx[0]][d], points[idx[0]][d]
	}
	for _, i := range idx {
		for d := 0; d < 3; d++ {
			if points[i][d] < lo[d] {
				lo[d] = points[i][d]
			}
			if points[i][d] > hi[d] {
				hi[d] = points[i][d]
			}
		}
	}
	axis := 0
	for d := 1; d < 3; d++ {
		if hi[d]-lo[d] > hi[axis]-lo[axis] {
			axis = d
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa[axis] != pb[axis] {
			return pa[axis] < pb[axis]
		}
		return idx[a] < idx[b] // deterministic tie-break
	})
	// Split proportionally to the part counts on each side.
	leftParts := parts / 2
	rightParts := parts - leftParts
	cut := len(idx) * leftParts / parts
	rcbRecurse(points, idx[:cut], base, leftParts, out)
	rcbRecurse(points, idx[cut:], base+leftParts, rightParts, out)
}

// GreedyGrow partitions a graph into `parts` pieces by greedy BFS region
// growing: each part grows from the lowest-numbered unassigned vertex
// until it reaches its size quota, preferring frontier vertices. Simple,
// deterministic, and produces connected parts on connected graphs.
func GreedyGrow(g *Graph, parts int) []int {
	n := g.NumVertices()
	if parts <= 0 {
		panic("partition: GreedyGrow parts must be positive")
	}
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	assigned := 0
	next := 0
	for p := 0; p < parts; p++ {
		quota := (n - assigned) / (parts - p)
		if quota == 0 && assigned < n {
			quota = 1
		}
		// Seed: first unassigned vertex.
		for next < n && part[next] != -1 {
			next++
		}
		if next >= n {
			break
		}
		frontier := []int{next}
		inFrontier := map[int]bool{next: true}
		count := 0
		for count < quota && len(frontier) > 0 {
			v := frontier[0]
			frontier = frontier[1:]
			if part[v] != -1 {
				continue
			}
			part[v] = p
			count++
			assigned++
			for _, u := range g.Adj[g.Ptr[v]:g.Ptr[v+1]] {
				if part[u] == -1 && !inFrontier[u] {
					frontier = append(frontier, u)
					inFrontier[u] = true
				}
			}
		}
		// If the component ran out, continue from the global scan.
		for count < quota {
			for next < n && part[next] != -1 {
				next++
			}
			if next >= n {
				break
			}
			part[next] = p
			count++
			assigned++
		}
	}
	// Sweep any stragglers into the last part.
	for v := 0; v < n; v++ {
		if part[v] == -1 {
			part[v] = parts - 1
		}
	}
	return part
}

// Refine runs a greedy Kernighan-Lin-style boundary refinement: boundary
// vertices move to the neighbouring part with the largest edge-cut gain,
// subject to a balance constraint (no part may exceed maxImbalance times
// the mean size). Returns the number of moves made. Deterministic:
// vertices are scanned in index order for a fixed number of passes.
func Refine(g *Graph, part []int, parts int, maxImbalance float64, passes int) int {
	if maxImbalance <= 1 {
		maxImbalance = 1.05
	}
	sizes := PartSizes(part, parts)
	limit := int(maxImbalance * float64(len(part)) / float64(parts))
	moves := 0
	for pass := 0; pass < passes; pass++ {
		moved := false
		for v := 0; v < g.NumVertices(); v++ {
			home := part[v]
			if sizes[home] <= 1 {
				continue
			}
			// Count connections per neighbouring part.
			conn := map[int]int{}
			for _, u := range g.Adj[g.Ptr[v]:g.Ptr[v+1]] {
				conn[part[u]]++
			}
			bestPart, bestGain := home, 0
			for p, c := range conn {
				if p == home || sizes[p] >= limit {
					continue
				}
				gain := c - conn[home]
				if gain > bestGain || (gain == bestGain && gain > 0 && p < bestPart) {
					bestPart, bestGain = p, gain
				}
			}
			if bestPart != home && bestGain > 0 {
				sizes[home]--
				sizes[bestPart]++
				part[v] = bestPart
				moves++
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return moves
}

// EdgeCut counts edges whose endpoints lie in different parts. Each
// undirected edge is counted once.
func EdgeCut(g *Graph, part []int) int {
	cut := 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Adj[g.Ptr[v]:g.Ptr[v+1]] {
			if u > v && part[u] != part[v] {
				cut++
			}
		}
	}
	return cut
}

// PartSizes returns the number of vertices in each part.
func PartSizes(part []int, parts int) []int {
	sizes := make([]int, parts)
	for _, p := range part {
		sizes[p]++
	}
	return sizes
}

// Imbalance returns max part size over mean part size (1.0 = perfect).
func Imbalance(part []int, parts int) float64 {
	sizes := PartSizes(part, parts)
	maxSz := 0
	for _, s := range sizes {
		if s > maxSz {
			maxSz = s
		}
	}
	mean := float64(len(part)) / float64(parts)
	if mean == 0 {
		return 1
	}
	return float64(maxSz) / mean
}

// HaloSizes returns, per part, the number of off-part vertices adjacent to
// it — the ghost/halo layer it must receive each exchange.
func HaloSizes(g *Graph, part []int, parts int) []int {
	halo := make([]int, parts)
	seen := make(map[[2]int]bool)
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Adj[g.Ptr[v]:g.Ptr[v+1]] {
			if part[u] != part[v] {
				key := [2]int{part[v], u}
				if !seen[key] {
					seen[key] = true
					halo[part[v]]++
				}
			}
		}
	}
	return halo
}
