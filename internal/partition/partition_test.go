package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// gridGraph builds an nx x ny 2-D lattice graph with coordinates.
func gridGraph(nx, ny int) (*Graph, []Point) {
	var edges [][2]int
	pts := make([]Point, 0, nx*ny)
	id := func(i, j int) int { return j*nx + i }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			pts = append(pts, Point{float64(i), float64(j), 0})
			if i+1 < nx {
				edges = append(edges, [2]int{id(i, j), id(i+1, j)})
			}
			if j+1 < ny {
				edges = append(edges, [2]int{id(i, j), id(i, j+1)})
			}
		}
	}
	return NewGraphFromEdges(nx*ny, edges), pts
}

func TestGraphFromEdgesValid(t *testing.T) {
	g, _ := gridGraph(5, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 20 {
		t.Errorf("vertices = %d, want 20", g.NumVertices())
	}
	// 2-D lattice edge count: (nx-1)*ny + nx*(ny-1), doubled in CSR.
	wantAdj := 2 * (4*4 + 5*3)
	if len(g.Adj) != wantAdj {
		t.Errorf("adj entries = %d, want %d", len(g.Adj), wantAdj)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g, _ := gridGraph(3, 3)
	g.Adj[0] = 99
	if err := g.Validate(); err == nil {
		t.Error("out-of-range neighbour not caught")
	}
	g2, _ := gridGraph(3, 3)
	g2.Ptr[1] = g2.Ptr[2] + 1
	if err := g2.Validate(); err == nil {
		t.Error("non-monotone Ptr not caught")
	}
}

func TestRCBBalancedAndComplete(t *testing.T) {
	_, pts := gridGraph(16, 16)
	for _, parts := range []int{1, 2, 3, 4, 7, 16} {
		part := RCB(pts, parts)
		sizes := PartSizes(part, parts)
		minSz, maxSz := len(pts), 0
		for _, s := range sizes {
			if s < minSz {
				minSz = s
			}
			if s > maxSz {
				maxSz = s
			}
		}
		if maxSz-minSz > 1 {
			t.Errorf("parts=%d imbalanced sizes %v", parts, sizes)
		}
	}
}

func TestRCBLocality(t *testing.T) {
	// RCB on a lattice should cut far fewer edges than a random assignment.
	g, pts := gridGraph(32, 32)
	part := RCB(pts, 8)
	rcbCut := EdgeCut(g, part)
	rng := rand.New(rand.NewSource(1))
	randPart := make([]int, len(pts))
	for i := range randPart {
		randPart[i] = rng.Intn(8)
	}
	randCut := EdgeCut(g, randPart)
	if rcbCut*3 > randCut {
		t.Errorf("RCB cut %d not clearly better than random cut %d", rcbCut, randCut)
	}
}

func TestRCBDeterministic(t *testing.T) {
	_, pts := gridGraph(10, 10)
	a := RCB(pts, 4)
	b := RCB(pts, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RCB not deterministic at %d", i)
		}
	}
}

func TestRCBPanicsOnBadParts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RCB(parts=0) did not panic")
		}
	}()
	RCB([]Point{{0, 0, 0}}, 0)
}

func TestGreedyGrowCoversAllVertices(t *testing.T) {
	g, _ := gridGraph(12, 9)
	for _, parts := range []int{1, 2, 5, 9} {
		part := GreedyGrow(g, parts)
		for v, p := range part {
			if p < 0 || p >= parts {
				t.Fatalf("vertex %d has invalid part %d", v, p)
			}
		}
		if imb := Imbalance(part, parts); imb > 1.5 {
			t.Errorf("parts=%d imbalance %v too high", parts, imb)
		}
	}
}

func TestGreedyGrowBeatsRandomCut(t *testing.T) {
	g, _ := gridGraph(24, 24)
	part := GreedyGrow(g, 6)
	cut := EdgeCut(g, part)
	rng := rand.New(rand.NewSource(2))
	randPart := make([]int, g.NumVertices())
	for i := range randPart {
		randPart[i] = rng.Intn(6)
	}
	if cut*2 > EdgeCut(g, randPart) {
		t.Errorf("greedy cut %d not better than random %d", cut, EdgeCut(g, randPart))
	}
}

func TestEdgeCutCountsOnce(t *testing.T) {
	// Two vertices, one edge, split -> cut of exactly 1.
	g := NewGraphFromEdges(2, [][2]int{{0, 1}})
	if cut := EdgeCut(g, []int{0, 1}); cut != 1 {
		t.Errorf("cut = %d, want 1", cut)
	}
	if cut := EdgeCut(g, []int{0, 0}); cut != 0 {
		t.Errorf("same-part cut = %d, want 0", cut)
	}
}

func TestHaloSizes(t *testing.T) {
	// Path 0-1-2 split as [0][1][2]: parts 0,2 have halo 1; part 1 has halo 2.
	g := NewGraphFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	halo := HaloSizes(g, []int{0, 1, 2}, 3)
	if halo[0] != 1 || halo[1] != 2 || halo[2] != 1 {
		t.Errorf("halo = %v, want [1 2 1]", halo)
	}
}

func TestImbalancePerfect(t *testing.T) {
	if imb := Imbalance([]int{0, 0, 1, 1}, 2); imb != 1.0 {
		t.Errorf("imbalance = %v, want 1.0", imb)
	}
	if imb := Imbalance([]int{0, 0, 0, 1}, 2); imb != 1.5 {
		t.Errorf("imbalance = %v, want 1.5", imb)
	}
}

// Property: RCB assigns every point a valid part and never loses points.
func TestRCBValidProperty(t *testing.T) {
	f := func(seed int64, n uint8, parts uint8) bool {
		np := int(n)%200 + 1
		k := int(parts)%np + 1
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Point, np)
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		part := RCB(pts, k)
		total := 0
		for _, s := range PartSizes(part, k) {
			total += s
		}
		return total == np
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRefineImprovesCut(t *testing.T) {
	g, pts := gridGraph(24, 24)
	// Start from a mediocre partition: RCB on shuffled-ish parts via
	// random assignment refined toward locality.
	rng := rand.New(rand.NewSource(7))
	part := RCB(pts, 6)
	// Perturb 15% of assignments to create refinement opportunities.
	for i := range part {
		if rng.Float64() < 0.15 {
			part[i] = rng.Intn(6)
		}
	}
	before := EdgeCut(g, part)
	moves := Refine(g, part, 6, 1.1, 8)
	after := EdgeCut(g, part)
	if moves == 0 {
		t.Fatal("no refinement moves on a perturbed partition")
	}
	if !(after < before) {
		t.Errorf("refinement did not cut edges: %d -> %d", before, after)
	}
	// Balance constraint respected.
	if imb := Imbalance(part, 6); imb > 1.15 {
		t.Errorf("refinement broke balance: %v", imb)
	}
}

func TestRefineIsDeterministic(t *testing.T) {
	g, pts := gridGraph(12, 12)
	mk := func() []int {
		part := RCB(pts, 4)
		for i := 0; i < len(part); i += 7 {
			part[i] = (part[i] + 1) % 4
		}
		Refine(g, part, 4, 1.1, 4)
		return part
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("refinement not deterministic at %d", i)
		}
	}
}

func TestRefineNoOpOnOptimal(t *testing.T) {
	// A clean RCB partition of a lattice is locally optimal-ish: very few
	// or zero gain moves should exist, and the cut must not get worse.
	g, pts := gridGraph(16, 16)
	part := RCB(pts, 4)
	before := EdgeCut(g, part)
	Refine(g, part, 4, 1.1, 4)
	if after := EdgeCut(g, part); after > before {
		t.Errorf("refinement worsened an optimal cut: %d -> %d", before, after)
	}
}
