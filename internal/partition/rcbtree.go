package partition

import (
	"fmt"
	"math"
	"sort"
)

// RCBTree retains the cut planes of a recursive coordinate bisection so
// arbitrary positions — not just the points the tree was built from —
// can be located to their owning part in O(log parts). The particle
// subsystem's repartition-on-imbalance balancer builds one from a
// gathered droplet sample and uses Locate as the ownership function
// until the next repartition; every rank builds the tree from the same
// gathered sample, so ownership is identical everywhere without any
// extra communication.
type RCBTree struct {
	nodes []rcbNode
	parts int
}

// rcbNode is one cut (internal) or one part id (leaf, left == -1).
type rcbNode struct {
	axis        int
	cut         float64
	left, right int
	part        int
}

// Parts returns the number of parts the tree splits into.
func (t *RCBTree) Parts() int { return t.parts }

// BuildRCBTree builds the cut structure over the given points. The cuts
// are the medians RCB would use: at each level the subset splits at the
// longest axis of its bounding box, proportionally to the part counts on
// each side, with the cut plane placed halfway between the two
// straddling points. Degenerate subsets (empty, or collapsed to a single
// coordinate) fall back to bisecting the subset's bounding box, so the
// tree always yields exactly `parts` leaves. Deterministic: equal
// coordinates tie-break on point index, like RCB.
func BuildRCBTree(points []Point, parts int) *RCBTree {
	if parts <= 0 {
		panic("partition: BuildRCBTree parts must be positive")
	}
	t := &RCBTree{parts: parts}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	box := boundingBox(points, idx)
	t.build(points, idx, box, 0, parts)
	return t
}

// boundingBox returns the bounding box of a subset (unit cube when the
// subset is empty, the domain the mini-apps use).
func boundingBox(points []Point, idx []int) [2]Point {
	if len(idx) == 0 {
		return [2]Point{{0, 0, 0}, {1, 1, 1}}
	}
	lo, hi := points[idx[0]], points[idx[0]]
	for _, i := range idx {
		for d := 0; d < 3; d++ {
			lo[d] = math.Min(lo[d], points[i][d])
			hi[d] = math.Max(hi[d], points[i][d])
		}
	}
	return [2]Point{lo, hi}
}

// build recursively emits nodes and returns the new node's index.
func (t *RCBTree) build(points []Point, idx []int, box [2]Point, base, parts int) int {
	self := len(t.nodes)
	if parts == 1 {
		t.nodes = append(t.nodes, rcbNode{left: -1, right: -1, part: base})
		return self
	}
	t.nodes = append(t.nodes, rcbNode{}) // placeholder, filled below
	if len(idx) > 0 {
		// Match RCB's axis choice exactly: the longest axis of the
		// subset's tight bounding box, not of the inherited cut region.
		box = boundingBox(points, idx)
	}
	axis := 0
	for d := 1; d < 3; d++ {
		if box[1][d]-box[0][d] > box[1][axis]-box[0][axis] {
			axis = d
		}
	}
	leftParts := parts / 2
	rightParts := parts - leftParts

	sort.Slice(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa[axis] != pb[axis] {
			return pa[axis] < pb[axis]
		}
		return idx[a] < idx[b]
	})
	cutIdx := len(idx) * leftParts / parts
	var cut float64
	if cutIdx > 0 && cutIdx < len(idx) &&
		points[idx[cutIdx-1]][axis] < points[idx[cutIdx]][axis] {
		cut = (points[idx[cutIdx-1]][axis] + points[idx[cutIdx]][axis]) / 2
	} else {
		// Degenerate: too few points or a tie straddling the cut. Bisect
		// the box proportionally so parts keep nesting.
		cut = box[0][axis] + (box[1][axis]-box[0][axis])*float64(leftParts)/float64(parts)
	}
	leftBox, rightBox := box, box
	leftBox[1][axis], rightBox[0][axis] = cut, cut
	left := t.build(points, idx[:cutIdx], leftBox, base, leftParts)
	right := t.build(points, idx[cutIdx:], rightBox, base+leftParts, rightParts)
	t.nodes[self] = rcbNode{axis: axis, cut: cut, left: left, right: right}
	return self
}

// Locate returns the part owning a position. Positions left of a cut
// (strictly less) descend left; the cut plane itself belongs to the
// right part.
//
//perf:hotpath
func (t *RCBTree) Locate(p Point) int {
	n := 0
	for t.nodes[n].left >= 0 {
		if p[t.nodes[n].axis] < t.nodes[n].cut {
			n = t.nodes[n].left
		} else {
			n = t.nodes[n].right
		}
	}
	return t.nodes[n].part
}

// Encode flattens the tree to a float64 slice (checkpointable state):
// [parts, nnodes, then per node: axis, cut, left, right, part]. Node
// indices and ids are small integers, exactly representable.
func (t *RCBTree) Encode() []float64 {
	out := make([]float64, 0, 2+5*len(t.nodes))
	out = append(out, float64(t.parts), float64(len(t.nodes)))
	for _, n := range t.nodes {
		out = append(out, float64(n.axis), n.cut, float64(n.left), float64(n.right), float64(n.part))
	}
	return out
}

// DecodeRCBTree rebuilds a tree from its Encode form.
func DecodeRCBTree(enc []float64) (*RCBTree, error) {
	if len(enc) < 2 {
		return nil, fmt.Errorf("partition: RCBTree encoding too short (%d values)", len(enc))
	}
	parts, n := int(enc[0]), int(enc[1])
	if parts < 1 || n < 1 || len(enc) != 2+5*n {
		return nil, fmt.Errorf("partition: RCBTree encoding inconsistent (parts=%d nodes=%d len=%d)", parts, n, len(enc))
	}
	t := &RCBTree{parts: parts, nodes: make([]rcbNode, n)}
	for i := 0; i < n; i++ {
		v := enc[2+5*i:]
		t.nodes[i] = rcbNode{axis: int(v[0]), cut: v[1], left: int(v[2]), right: int(v[3]), part: int(v[4])}
		if t.nodes[i].axis < 0 || t.nodes[i].axis > 2 || t.nodes[i].left >= n || t.nodes[i].right >= n {
			return nil, fmt.Errorf("partition: RCBTree node %d malformed", i)
		}
	}
	return t, nil
}
