package perfmodel

import (
	"fmt"
	"math"
	"testing"
)

// allocateReference is the pre-heap Algorithm 1 loop, kept verbatim as
// the differential oracle: per granted core it rescans every component
// for the two class maxima and re-evaluates the curve for each gain
// check. The fast path must reproduce its picks exactly.
func allocateReference(components []Component, budget int) (*Allocation, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("perfmodel: no components")
	}
	cores := make([]int, len(components))
	spent := 0
	for i := range components {
		cores[i] = components[i].minRanks()
		spent += cores[i]
	}
	if spent > budget {
		return nil, fmt.Errorf("perfmodel: minimum allocations (%d) exceed budget (%d)", spent, budget)
	}
	times := make([]float64, len(components))
	recompute := func(i int) { times[i] = components[i].Time(cores[i]) }
	for i := range components {
		recompute(i)
	}
	argmax := func(cu bool) int {
		best, bestT := -1, -1.0
		for i := range components {
			if components[i].IsCU == cu && times[i] > bestT {
				best, bestT = i, times[i]
			}
		}
		return best
	}
	remaining := budget - spent
	for ; remaining > 0; remaining-- {
		appMax := argmax(false)
		cuMax := argmax(true)
		gain := func(i int) float64 {
			if i < 0 {
				return math.Inf(-1)
			}
			return times[i] - components[i].Time(cores[i]+1)
		}
		pick := appMax
		if gain(cuMax) > gain(appMax) {
			pick = cuMax
		}
		if pick < 0 || gain(pick) <= 0 {
			break
		}
		cores[pick]++
		recompute(pick)
	}
	out := &Allocation{Components: components, Cores: cores, Times: times, Unallocated: remaining}
	for i := range components {
		if components[i].IsCU {
			out.MaxCU = math.Max(out.MaxCU, times[i])
		} else {
			out.MaxApp = math.Max(out.MaxApp, times[i])
		}
	}
	out.Predicted = out.MaxApp + out.MaxCU
	return out, nil
}

// paperScaleComponents builds a Fig. 9b-style problem: n components with
// staggered knees and base times, every third one a coupling unit.
func paperScaleComponents(n int) []Component {
	comps := make([]Component, n)
	for i := range comps {
		base := 20 + 37*float64(i%7)
		p50 := 500 + 900*float64(i%5)
		k := 1.1 + 0.2*float64(i%4)
		min := 1 + i%3
		if i%3 == 2 {
			// CUs: small base time, early knee, as in the paper.
			base, p50, min = 0.5+0.1*float64(i), 150+40*float64(i%4), 1
		}
		comps[i] = Component{
			Name:      fmt.Sprintf("comp-%02d", i),
			Curve:     &Curve{BaseCores: 100, BaseTime: base, P50: p50, K: k},
			IsCU:      i%3 == 2,
			MinRanks:  100 * min,
			SizeRatio: 1 + 0.5*float64(i%3),
			IterRatio: 1 + float64(i%2),
		}
	}
	return comps
}

func sameAllocation(t *testing.T, fast, ref *Allocation) {
	t.Helper()
	if len(fast.Cores) != len(ref.Cores) {
		t.Fatalf("component counts differ: %d vs %d", len(fast.Cores), len(ref.Cores))
	}
	for i := range ref.Cores {
		if fast.Cores[i] != ref.Cores[i] {
			t.Errorf("cores[%d] = %d, reference %d", i, fast.Cores[i], ref.Cores[i])
		}
		if fast.Times[i] != ref.Times[i] {
			t.Errorf("times[%d] = %v, reference %v (not bitwise identical)", i, fast.Times[i], ref.Times[i])
		}
	}
	if fast.Unallocated != ref.Unallocated {
		t.Errorf("unallocated = %d, reference %d", fast.Unallocated, ref.Unallocated)
	}
	if fast.Predicted != ref.Predicted || fast.MaxApp != ref.MaxApp || fast.MaxCU != ref.MaxCU {
		t.Errorf("summary (%v, %v, %v) differs from reference (%v, %v, %v)",
			fast.Predicted, fast.MaxApp, fast.MaxCU, ref.Predicted, ref.MaxApp, ref.MaxCU)
	}
}

// TestAllocateMatchesReference proves the heap-based fast path grants
// cores identically to the naive rescan loop, across problem shapes
// including exact-tie curves (identical components) where the
// first-index tie-break is what decides the allocation.
func TestAllocateMatchesReference(t *testing.T) {
	cases := []struct {
		name   string
		comps  []Component
		budget int
	}{
		{"paper-40k", paperScaleComponents(20), 40_000},
		{"small-mixed", paperScaleComponents(7), 2_000},
		{"single-app", paperScaleComponents(1), 500},
		{"ties", []Component{
			{Name: "a", Curve: &Curve{BaseCores: 1, BaseTime: 10, P50: 1000, K: 1.2}},
			{Name: "b", Curve: &Curve{BaseCores: 1, BaseTime: 10, P50: 1000, K: 1.2}},
			{Name: "c", Curve: &Curve{BaseCores: 1, BaseTime: 10, P50: 1000, K: 1.2}, IsCU: true},
			{Name: "d", Curve: &Curve{BaseCores: 1, BaseTime: 10, P50: 1000, K: 1.2}, IsCU: true},
		}, 801},
		{"saturating", []Component{
			{Name: "kneed", Curve: &Curve{BaseCores: 1, BaseTime: 100, P50: 50, K: 2}},
			{Name: "scaler", Curve: &Curve{BaseCores: 1, BaseTime: 100, P50: 1e7, K: 1}, IsCU: true},
		}, 3_000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fast, err := Allocate(tc.comps, tc.budget)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := allocateReference(tc.comps, tc.budget)
			if err != nil {
				t.Fatal(err)
			}
			sameAllocation(t, fast, ref)
		})
	}
}

// TestAllocateDegenerate covers the edge shapes of Algorithm 1.
func TestAllocateDegenerate(t *testing.T) {
	flat := func(base float64) *Curve { return &Curve{BaseCores: 1, BaseTime: base, P50: 1e6, K: 1.2} }
	t.Run("budget-equals-minimums", func(t *testing.T) {
		comps := []Component{
			{Name: "a", Curve: flat(10), MinRanks: 30},
			{Name: "cu", Curve: flat(1), MinRanks: 12, IsCU: true},
		}
		alloc, err := Allocate(comps, 42)
		if err != nil {
			t.Fatal(err)
		}
		if alloc.Cores[0] != 30 || alloc.Cores[1] != 12 {
			t.Errorf("cores %v, want the minimums [30 12]", alloc.Cores)
		}
		if alloc.Unallocated != 0 {
			t.Errorf("unallocated = %d, want 0", alloc.Unallocated)
		}
	})
	t.Run("all-CU", func(t *testing.T) {
		comps := []Component{
			{Name: "cu1", Curve: flat(2), IsCU: true},
			{Name: "cu2", Curve: flat(5), IsCU: true},
		}
		alloc, err := Allocate(comps, 300)
		if err != nil {
			t.Fatal(err)
		}
		if alloc.MaxApp != 0 {
			t.Errorf("MaxApp = %v, want 0 with no instances", alloc.MaxApp)
		}
		if alloc.Predicted != alloc.MaxCU {
			t.Errorf("Predicted = %v, want MaxCU %v", alloc.Predicted, alloc.MaxCU)
		}
		if alloc.Cores[0]+alloc.Cores[1]+alloc.Unallocated != 300 {
			t.Errorf("core accounting broken: %v + %d", alloc.Cores, alloc.Unallocated)
		}
		ref, _ := allocateReference(comps, 300)
		sameAllocation(t, alloc, ref)
	})
	t.Run("past-knee-at-minimum", func(t *testing.T) {
		// P50 far below the minimum allocation: an extra core only adds
		// overhead, so every core beyond the minimums must idle.
		comps := []Component{
			{Name: "saturated", Curve: &Curve{BaseCores: 1, BaseTime: 100, P50: 4, K: 2.5}, MinRanks: 50},
		}
		alloc, err := Allocate(comps, 500)
		if err != nil {
			t.Fatal(err)
		}
		if alloc.Cores[0] != 50 {
			t.Errorf("cores = %d, want the 50-rank minimum", alloc.Cores[0])
		}
		if alloc.Unallocated != 450 {
			t.Errorf("unallocated = %d, want 450", alloc.Unallocated)
		}
	})
}

// TestAllocateCopiesComponents: the returned Allocation must not alias
// the caller's slice — the serving cache retains allocations, and a
// caller reusing its scratch slice must not corrupt them.
func TestAllocateCopiesComponents(t *testing.T) {
	comps := []Component{
		{Name: "original", Curve: &Curve{BaseCores: 1, BaseTime: 10, P50: 1000, K: 1.2}},
	}
	alloc, err := Allocate(comps, 100)
	if err != nil {
		t.Fatal(err)
	}
	comps[0].Name = "mutated"
	comps[0].SizeRatio = 99
	if alloc.Components[0].Name != "original" || alloc.Components[0].SizeRatio != 0 {
		t.Errorf("Allocation.Components aliases the caller's slice: %+v", alloc.Components[0])
	}
}

// TestFitCurveKneeBelowBase: a component already past its 50%-efficiency
// knee at the smallest measured core count (P50 < BaseCores) must still
// be fittable — the P50 grid extends below the base core count.
func TestFitCurveKneeBelowBase(t *testing.T) {
	truth := Curve{BaseCores: 256, BaseTime: 80, P50: 100, K: 1.5}
	cores := []int{256, 512, 1024, 2048, 4096}
	fit, err := FitCurve(syntheticSamples(truth, cores, nil))
	if err != nil {
		t.Fatal(err)
	}
	if fit.P50 >= float64(truth.BaseCores) {
		t.Errorf("fitted P50 = %v, want below the %d-core base (truth %v)",
			fit.P50, truth.BaseCores, truth.P50)
	}
	for _, p := range []float64{300, 1000, 3000} {
		if RelativeError(fit.Runtime(p), truth.Runtime(p)) > 0.05 {
			t.Errorf("fit at %v cores: %v, want %v", p, fit.Runtime(p), truth.Runtime(p))
		}
	}
}

func benchmarkAllocate(b *testing.B, f func([]Component, int) (*Allocation, error)) {
	comps := paperScaleComponents(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f(comps, 40_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocate measures the heap fast path on the paper's Fig. 9b
// shape (40,000-core budget, 20 components); BenchmarkAllocateReference
// is the naive loop it replaced. BENCH_perfmodel.json records the gap.
func BenchmarkAllocate(b *testing.B)          { benchmarkAllocate(b, Allocate) }
func BenchmarkAllocateReference(b *testing.B) { benchmarkAllocate(b, allocateReference) }
