// Package perfmodel implements the paper's empirical performance model
// (Section V): parallel-efficiency curves fitted to standalone mini-app
// benchmarks, run-time scaling by mesh size and iteration count relative
// to a base case, and the greedy rank-allocation loop of Algorithm 1 that
// distributes a core budget across solver instances and coupling units so
// the coupled run-time — MAX(instances) + MAX(CUs) — is minimised.
package perfmodel

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one standalone benchmark point.
type Sample struct {
	Cores   int
	Runtime float64 // seconds
}

// Curve is a fitted run-time model for one application and problem size:
//
//	PE(p)   = g(p)/g(base),  g(p) = 1 / (1 + (p/P50)^K)
//	T(p)    = BaseTime * BaseCores / (p * PE(p))
//
// P50 is the core count where the unnormalised efficiency crosses 50%
// and K controls how sharply it falls — the same two-parameter knee
// description the paper reads off its PE graphs (Fig. 4b).
type Curve struct {
	BaseCores int
	BaseTime  float64
	P50       float64
	K         float64
}

func gval(p, p50, k float64) float64 {
	return 1.0 / (1.0 + math.Pow(p/p50, k))
}

// PE returns the parallel efficiency at p cores, normalised to 1 at the
// base core count.
func (c *Curve) PE(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return gval(p, c.P50, c.K) / gval(float64(c.BaseCores), c.P50, c.K)
}

// Runtime returns the modelled run-time at p cores.
func (c *Curve) Runtime(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return c.BaseTime * float64(c.BaseCores) / (p * c.PE(p))
}

// Speedup returns T(base)/T(p).
func (c *Curve) Speedup(p float64) float64 { return c.BaseTime / c.Runtime(p) }

// FitCurve fits (P50, K) to benchmark samples by least squares on
// log-runtime, with a coarse grid search refined by bisection — robust,
// dependency-free, and deterministic. The sample with the fewest cores
// anchors (BaseCores, BaseTime).
func FitCurve(samples []Sample) (*Curve, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("perfmodel: need at least 2 samples, got %d", len(samples))
	}
	ss := make([]Sample, len(samples))
	copy(ss, samples)
	sort.Slice(ss, func(a, b int) bool { return ss[a].Cores < ss[b].Cores })
	for _, s := range ss {
		if s.Cores <= 0 || s.Runtime <= 0 {
			return nil, fmt.Errorf("perfmodel: non-positive sample %+v", s)
		}
	}
	base := ss[0]
	maxCores := float64(ss[len(ss)-1].Cores)

	cost := func(p50, k float64) float64 {
		c := Curve{BaseCores: base.Cores, BaseTime: base.Runtime, P50: p50, K: k}
		e := 0.0
		for _, s := range ss {
			d := math.Log(c.Runtime(float64(s.Cores))) - math.Log(s.Runtime)
			e += d * d
		}
		return e
	}
	bestP50, bestK, bestE := maxCores, 1.0, math.Inf(1)
	// Coarse grid: P50 log-spaced from base to 100x the largest sample.
	for _, k := range []float64{0.5, 0.8, 1.0, 1.3, 1.6, 2.0, 2.5, 3.0} {
		p50 := float64(base.Cores)
		for p50 <= maxCores*100 {
			if e := cost(p50, k); e < bestE {
				bestE, bestP50, bestK = e, p50, k
			}
			p50 *= 1.15
		}
	}
	// Local refinement by coordinate descent.
	for iter := 0; iter < 40; iter++ {
		improved := false
		for _, f := range []float64{0.97, 1.03} {
			if e := cost(bestP50*f, bestK); e < bestE {
				bestE, bestP50, improved = e, bestP50*f, true
			}
			if e := cost(bestP50, bestK*f); e < bestE && bestK*f > 0.1 {
				bestE, bestK, improved = e, bestK*f, true
			}
		}
		if !improved {
			break
		}
	}
	return &Curve{BaseCores: base.Cores, BaseTime: base.Runtime, P50: bestP50, K: bestK}, nil
}

// AmdahlCurve is the alternative run-time model T(p) = serial + work/p +
// comm*log2(p): an explicit serial fraction plus perfectly-parallel work
// plus a logarithmically-growing communication term. Useful when the
// knee-form Curve fits poorly (e.g. collective-dominated kernels).
type AmdahlCurve struct {
	Serial float64
	Work   float64
	Comm   float64
}

// Runtime returns the modelled run-time at p cores.
func (a *AmdahlCurve) Runtime(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return a.Serial + a.Work/p + a.Comm*math.Log2(math.Max(p, 2))
}

// FitAmdahl fits the three-term model by non-negative least squares via
// coordinate descent on the residual (deterministic, dependency-free).
func FitAmdahl(samples []Sample) (*AmdahlCurve, error) {
	if len(samples) < 3 {
		return nil, fmt.Errorf("perfmodel: Amdahl fit needs >= 3 samples, got %d", len(samples))
	}
	for _, s := range samples {
		if s.Cores <= 0 || s.Runtime <= 0 {
			return nil, fmt.Errorf("perfmodel: non-positive sample %+v", s)
		}
	}
	cost := func(c AmdahlCurve) float64 {
		e := 0.0
		for _, s := range samples {
			d := c.Runtime(float64(s.Cores)) - s.Runtime
			e += d * d
		}
		return e
	}
	// Initialise from the extremes.
	maxRT := 0.0
	for _, s := range samples {
		if s.Runtime > maxRT {
			maxRT = s.Runtime
		}
	}
	best := AmdahlCurve{Serial: 0, Work: maxRT * float64(samples[0].Cores), Comm: 0}
	bestE := cost(best)
	step := maxRT / 4
	for iter := 0; iter < 200 && step > maxRT*1e-8; iter++ {
		improved := false
		for _, delta := range []AmdahlCurve{
			{Serial: step}, {Serial: -step},
			{Work: step * float64(samples[0].Cores)}, {Work: -step * float64(samples[0].Cores)},
			{Comm: step / 8}, {Comm: -step / 8},
		} {
			c := AmdahlCurve{
				Serial: math.Max(0, best.Serial+delta.Serial),
				Work:   math.Max(0, best.Work+delta.Work),
				Comm:   math.Max(0, best.Comm+delta.Comm),
			}
			if e := cost(c); e < bestE {
				best, bestE, improved = c, e, true
			}
		}
		if !improved {
			step /= 2
		}
	}
	return &best, nil
}

// Component is one entry of the allocation problem: a solver instance or
// a coupling unit, with its fitted curve and its size/iteration scaling
// relativeive to the curve's base case.
type Component struct {
	Name      string
	Curve     *Curve
	SizeRatio float64 // problem size / base-case size
	IterRatio float64 // iterations / base-case iterations
	IsCU      bool
	MinRanks  int // starting allocation (the paper uses 100 for the full engine)
}

// Time returns the modelled run-time of the component on the given cores.
func (cp *Component) Time(cores int) float64 {
	sr, ir := cp.SizeRatio, cp.IterRatio
	if sr == 0 {
		sr = 1
	}
	if ir == 0 {
		ir = 1
	}
	return cp.Curve.Runtime(float64(cores)) * sr * ir
}

func (cp *Component) minRanks() int {
	if cp.MinRanks > 0 {
		return cp.MinRanks
	}
	return 1
}

// Allocation is the result of the greedy distribution.
type Allocation struct {
	Components []Component
	Cores      []int
	Times      []float64
	// Predicted coupled run-time: MAX over instances + MAX over CUs.
	Predicted float64
	MaxApp    float64
	MaxCU     float64
	// Unallocated cores: the loop stops early once neither the slowest
	// instance nor the slowest CU gains run-time from another core (the
	// paper's Fig. 9b allocations sum to well under the 40,000 budget for
	// exactly this reason — past its PE knee a component cannot usefully
	// absorb more ranks).
	Unallocated int
}

// Allocate runs Algorithm 1: starting every component at its minimum
// allocation, repeatedly give one core to the slowest instance or the
// slowest coupling unit — whichever gains more run-time from it — until
// the budget is spent or no positive gain remains.
func Allocate(components []Component, budget int) (*Allocation, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("perfmodel: no components")
	}
	cores := make([]int, len(components))
	spent := 0
	for i := range components {
		cores[i] = components[i].minRanks()
		spent += cores[i]
	}
	if spent > budget {
		return nil, fmt.Errorf("perfmodel: minimum allocations (%d) exceed budget (%d)", spent, budget)
	}
	times := make([]float64, len(components))
	recompute := func(i int) { times[i] = components[i].Time(cores[i]) }
	for i := range components {
		recompute(i)
	}
	argmax := func(cu bool) int {
		best, bestT := -1, -1.0
		for i := range components {
			if components[i].IsCU == cu && times[i] > bestT {
				best, bestT = i, times[i]
			}
		}
		return best
	}
	remaining := budget - spent
	for ; remaining > 0; remaining-- {
		appMax := argmax(false)
		cuMax := argmax(true)
		gain := func(i int) float64 {
			if i < 0 {
				return math.Inf(-1)
			}
			return times[i] - components[i].Time(cores[i]+1)
		}
		pick := appMax
		if gain(cuMax) > gain(appMax) {
			pick = cuMax
		}
		if pick < 0 || gain(pick) <= 0 {
			break // nothing left to improve: idle the remaining cores
		}
		cores[pick]++
		recompute(pick)
	}
	out := &Allocation{Components: components, Cores: cores, Times: times, Unallocated: remaining}
	for i := range components {
		if components[i].IsCU {
			out.MaxCU = math.Max(out.MaxCU, times[i])
		} else {
			out.MaxApp = math.Max(out.MaxApp, times[i])
		}
	}
	out.Predicted = out.MaxApp + out.MaxCU
	return out, nil
}

// String renders the allocation as an aligned table (Fig. 9b style).
func (a *Allocation) String() string {
	s := fmt.Sprintf("%-24s %6s %12s %14s\n", "component", "type", "ranks", "time(s)")
	for i, cp := range a.Components {
		kind := "app"
		if cp.IsCU {
			kind = "CU"
		}
		s += fmt.Sprintf("%-24s %6s %12d %14.3f\n", cp.Name, kind, a.Cores[i], a.Times[i])
	}
	s += fmt.Sprintf("predicted run-time: %.3f s (apps %.3f + CUs %.3f)\n", a.Predicted, a.MaxApp, a.MaxCU)
	return s
}

// PredictSpeedup compares two allocations (e.g. Optimized-STC vs
// Base-STC at the same budget) as T(base)/T(other).
func PredictSpeedup(base, other *Allocation) float64 {
	if other.Predicted == 0 {
		return math.Inf(1)
	}
	return base.Predicted / other.Predicted
}

// RelativeError returns |predicted-actual| / actual.
func RelativeError(predicted, actual float64) float64 {
	if actual == 0 {
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / actual
}
