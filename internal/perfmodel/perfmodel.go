// Package perfmodel implements the paper's empirical performance model
// (Section V): parallel-efficiency curves fitted to standalone mini-app
// benchmarks, run-time scaling by mesh size and iteration count relative
// to a base case, and the greedy rank-allocation loop of Algorithm 1 that
// distributes a core budget across solver instances and coupling units so
// the coupled run-time — MAX(instances) + MAX(CUs) — is minimised.
package perfmodel

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one standalone benchmark point.
type Sample struct {
	Cores   int
	Runtime float64 // seconds
}

// Curve is a fitted run-time model for one application and problem size:
//
//	PE(p)   = g(p)/g(base),  g(p) = 1 / (1 + (p/P50)^K)
//	T(p)    = BaseTime * BaseCores / (p * PE(p))
//
// P50 is the core count where the unnormalised efficiency crosses 50%
// and K controls how sharply it falls — the same two-parameter knee
// description the paper reads off its PE graphs (Fig. 4b).
type Curve struct {
	BaseCores int
	BaseTime  float64
	P50       float64
	K         float64
}

func gval(p, p50, k float64) float64 {
	return 1.0 / (1.0 + math.Pow(p/p50, k))
}

// PE returns the parallel efficiency at p cores, normalised to 1 at the
// base core count.
func (c *Curve) PE(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return gval(p, c.P50, c.K) / gval(float64(c.BaseCores), c.P50, c.K)
}

// Runtime returns the modelled run-time at p cores.
func (c *Curve) Runtime(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return c.BaseTime * float64(c.BaseCores) / (p * c.PE(p))
}

// Speedup returns T(base)/T(p).
func (c *Curve) Speedup(p float64) float64 { return c.BaseTime / c.Runtime(p) }

// FitCurve fits (P50, K) to benchmark samples by least squares on
// log-runtime, with a coarse grid search refined by bisection — robust,
// dependency-free, and deterministic. The sample with the fewest cores
// anchors (BaseCores, BaseTime).
func FitCurve(samples []Sample) (*Curve, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("perfmodel: need at least 2 samples, got %d", len(samples))
	}
	ss := make([]Sample, len(samples))
	copy(ss, samples)
	sort.Slice(ss, func(a, b int) bool { return ss[a].Cores < ss[b].Cores })
	for _, s := range ss {
		if s.Cores <= 0 || s.Runtime <= 0 {
			return nil, fmt.Errorf("perfmodel: non-positive sample %+v", s)
		}
	}
	base := ss[0]
	maxCores := float64(ss[len(ss)-1].Cores)

	cost := func(p50, k float64) float64 {
		c := Curve{BaseCores: base.Cores, BaseTime: base.Runtime, P50: p50, K: k}
		e := 0.0
		for _, s := range ss {
			d := math.Log(c.Runtime(float64(s.Cores))) - math.Log(s.Runtime)
			e += d * d
		}
		return e
	}
	bestP50, bestK, bestE := maxCores, 1.0, math.Inf(1)
	// Coarse grid: P50 log-spaced from well below the base core count to
	// 100x the largest sample. The grid must extend below the base: a
	// component already past its 50%-efficiency knee at the smallest
	// measured core count has P50 < BaseCores, and coordinate descent
	// alone cannot reliably walk that far down from a floor at the base.
	gridLo := float64(base.Cores) / 64
	if gridLo < 0.5 {
		gridLo = 0.5
	}
	for _, k := range []float64{0.5, 0.8, 1.0, 1.3, 1.6, 2.0, 2.5, 3.0} {
		p50 := gridLo
		for p50 <= maxCores*100 {
			if e := cost(p50, k); e < bestE {
				bestE, bestP50, bestK = e, p50, k
			}
			p50 *= 1.15
		}
	}
	// Local refinement by coordinate descent.
	for iter := 0; iter < 40; iter++ {
		improved := false
		for _, f := range []float64{0.97, 1.03} {
			if e := cost(bestP50*f, bestK); e < bestE {
				bestE, bestP50, improved = e, bestP50*f, true
			}
			if e := cost(bestP50, bestK*f); e < bestE && bestK*f > 0.1 {
				bestE, bestK, improved = e, bestK*f, true
			}
		}
		if !improved {
			break
		}
	}
	return &Curve{BaseCores: base.Cores, BaseTime: base.Runtime, P50: bestP50, K: bestK}, nil
}

// AmdahlCurve is the alternative run-time model T(p) = serial + work/p +
// comm*log2(p): an explicit serial fraction plus perfectly-parallel work
// plus a logarithmically-growing communication term. Useful when the
// knee-form Curve fits poorly (e.g. collective-dominated kernels).
type AmdahlCurve struct {
	Serial float64
	Work   float64
	Comm   float64
}

// Runtime returns the modelled run-time at p cores.
func (a *AmdahlCurve) Runtime(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return a.Serial + a.Work/p + a.Comm*math.Log2(math.Max(p, 2))
}

// FitAmdahl fits the three-term model by non-negative least squares via
// coordinate descent on the residual (deterministic, dependency-free).
func FitAmdahl(samples []Sample) (*AmdahlCurve, error) {
	if len(samples) < 3 {
		return nil, fmt.Errorf("perfmodel: Amdahl fit needs >= 3 samples, got %d", len(samples))
	}
	for _, s := range samples {
		if s.Cores <= 0 || s.Runtime <= 0 {
			return nil, fmt.Errorf("perfmodel: non-positive sample %+v", s)
		}
	}
	cost := func(c AmdahlCurve) float64 {
		e := 0.0
		for _, s := range samples {
			d := c.Runtime(float64(s.Cores)) - s.Runtime
			e += d * d
		}
		return e
	}
	// Initialise from the extremes.
	maxRT := 0.0
	for _, s := range samples {
		if s.Runtime > maxRT {
			maxRT = s.Runtime
		}
	}
	best := AmdahlCurve{Serial: 0, Work: maxRT * float64(samples[0].Cores), Comm: 0}
	bestE := cost(best)
	step := maxRT / 4
	for iter := 0; iter < 200 && step > maxRT*1e-8; iter++ {
		improved := false
		for _, delta := range []AmdahlCurve{
			{Serial: step}, {Serial: -step},
			{Work: step * float64(samples[0].Cores)}, {Work: -step * float64(samples[0].Cores)},
			{Comm: step / 8}, {Comm: -step / 8},
		} {
			c := AmdahlCurve{
				Serial: math.Max(0, best.Serial+delta.Serial),
				Work:   math.Max(0, best.Work+delta.Work),
				Comm:   math.Max(0, best.Comm+delta.Comm),
			}
			if e := cost(c); e < bestE {
				best, bestE, improved = c, e, true
			}
		}
		if !improved {
			step /= 2
		}
	}
	return &best, nil
}

// Component is one entry of the allocation problem: a solver instance or
// a coupling unit, with its fitted curve and its size/iteration scaling
// relative to the curve's base case.
type Component struct {
	Name      string
	Curve     *Curve
	SizeRatio float64 // problem size / base-case size
	IterRatio float64 // iterations / base-case iterations
	IsCU      bool
	MinRanks  int // starting allocation (the paper uses 100 for the full engine)
}

// Time returns the modelled run-time of the component on the given cores.
func (cp *Component) Time(cores int) float64 {
	sr, ir := cp.SizeRatio, cp.IterRatio
	if sr == 0 {
		sr = 1
	}
	if ir == 0 {
		ir = 1
	}
	return cp.Curve.Runtime(float64(cores)) * sr * ir
}

func (cp *Component) minRanks() int {
	if cp.MinRanks > 0 {
		return cp.MinRanks
	}
	return 1
}

// Allocation is the result of the greedy distribution.
type Allocation struct {
	Components []Component
	Cores      []int
	Times      []float64
	// Predicted coupled run-time: MAX over instances + MAX over CUs.
	Predicted float64
	MaxApp    float64
	MaxCU     float64
	// Unallocated cores: the loop stops early once neither the slowest
	// instance nor the slowest CU gains run-time from another core (the
	// paper's Fig. 9b allocations sum to well under the 40,000 budget for
	// exactly this reason — past its PE knee a component cannot usefully
	// absorb more ranks).
	Unallocated int
}

// slowHeap is a max-heap of (run-time, component index) entries, ties
// broken towards the smaller index — exactly the order a linear
// first-max scan over the times slice produces, so the heap-based
// Allocate picks the same component as the naive loop on every
// iteration. Only the top's time ever changes between fixes, so a
// single sift-down restores the invariant.
type slowHeap struct {
	ents []heapEnt
}

type heapEnt struct {
	t   float64 // current modelled run-time
	idx int     // component index
}

func entBefore(a, b heapEnt) bool {
	if a.t != b.t {
		return a.t > b.t
	}
	return a.idx < b.idx
}

func (h *slowHeap) push(e heapEnt) {
	h.ents = append(h.ents, e)
	c := len(h.ents) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !entBefore(h.ents[c], h.ents[p]) {
			break
		}
		h.ents[c], h.ents[p] = h.ents[p], h.ents[c]
		c = p
	}
}

// fix restores heap order after the top's time was set to t.
func (h *slowHeap) fix(t float64) {
	ents := h.ents
	n := len(ents)
	e := heapEnt{t, ents[0].idx}
	p := 0
	for {
		c := 2*p + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && entBefore(ents[r], ents[c]) {
			c = r
		}
		if !entBefore(ents[c], e) {
			break
		}
		ents[p] = ents[c]
		p = c
	}
	ents[p] = e
}

// evalConst holds the loop-invariant terms of one component's run-time
// model, factored so an evaluation costs a single math.Pow.
type evalConst struct {
	p50, k, gbase, num, sr, ir float64
}

// eval returns the component's modelled run-time at c cores —
// bitwise identical to Component.Time(c) (same operations, same
// operand bits, same order).
func (e *evalConst) eval(c int) float64 {
	p := float64(c)
	pe := gval(p, e.p50, e.k) / e.gbase
	return e.num / (p * pe) * e.sr * e.ir
}

// Allocate runs Algorithm 1: starting every component at its minimum
// allocation, repeatedly give one core to the slowest instance or the
// slowest coupling unit — whichever gains more run-time from it — until
// the budget is spent or no positive gain remains.
//
// The loop grants one core at a time but never rescans the component
// list: two max-heaps (instances, CUs) track the slowest member of each
// class, and the run-time a component would have with one more core is
// cached per component and invalidated only for the picked one. One
// granted core therefore costs one curve evaluation and a sift-down,
// instead of the two full scans and four evaluations of the naive loop
// (see TestAllocateMatchesReference for the equivalence proof and
// BenchmarkAllocate for the measured gap).
func Allocate(components []Component, budget int) (*Allocation, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("perfmodel: no components")
	}
	cores := make([]int, len(components))
	spent := 0
	for i := range components {
		cores[i] = components[i].minRanks()
		spent += cores[i]
	}
	if spent > budget {
		return nil, fmt.Errorf("perfmodel: minimum allocations (%d) exceed budget (%d)", spent, budget)
	}
	times := make([]float64, len(components))
	// Per-component evaluation constants: gval at the base core count,
	// the BaseTime*BaseCores numerator and the defaulted ratios are fixed
	// for the whole loop, so each Time evaluation costs one math.Pow
	// instead of two. The factored expression performs the identical
	// floating-point operations on identical operands in the same order
	// as Component.Time, so the results are bitwise equal — which the
	// differential test against the naive loop asserts.
	consts := make([]evalConst, len(components))
	for i := range components {
		cv := components[i].Curve
		e := evalConst{
			p50: cv.P50, k: cv.K,
			gbase: gval(float64(cv.BaseCores), cv.P50, cv.K),
			num:   cv.BaseTime * float64(cv.BaseCores),
			sr:    components[i].SizeRatio, ir: components[i].IterRatio,
		}
		if e.sr == 0 {
			e.sr = 1
		}
		if e.ir == 0 {
			e.ir = 1
		}
		consts[i] = e
	}
	// Per-component mutable loop state, one cache line hit per access:
	// the granted core count and the cached one-more-core run-time (NaN =
	// stale; real run-times are never NaN).
	type compState struct {
		next  float64
		cores int
	}
	st := make([]compState, len(components))
	apps := &slowHeap{}
	cus := &slowHeap{}
	for i := range components {
		times[i] = consts[i].eval(cores[i])
		st[i] = compState{next: math.NaN(), cores: cores[i]}
		if components[i].IsCU {
			cus.push(heapEnt{times[i], i})
		} else {
			apps.push(heapEnt{times[i], i})
		}
	}
	// topGain returns the marginal gain of the class's slowest component,
	// filling its stale one-more-core cache if needed.
	topGain := func(h *slowHeap) float64 {
		if len(h.ents) == 0 {
			return math.Inf(-1)
		}
		e := h.ents[0]
		s := &st[e.idx]
		if s.next != s.next { // NaN: recompute the one-more-core time
			s.next = consts[e.idx].eval(s.cores + 1)
		}
		return e.t - s.next
	}
	remaining := budget - spent
	// Granting a core changes one heap only, so the other class's top
	// gain carries over between iterations as a cached float.
	gainApp, gainCU := topGain(apps), topGain(cus)
	// The class comparison must stay `gainCU > gainApp` (not >=): ties —
	// and NaN gains, which compare false — go to the instance class,
	// exactly as the naive scan decides them. An empty class carries
	// gain -Inf, so `g <= 0` doubles as the emptiness check and no heap
	// is indexed while empty. The grant body is duplicated per class so
	// each side touches its heap through a constant pointer.
	for ; remaining > 0; remaining-- {
		if gainCU > gainApp {
			if gainCU <= 0 {
				break // nothing left to improve: idle the remaining cores
			}
			pick := cus.ents[0].idx
			s := &st[pick]
			s.cores++
			// eval is pure, so the cached eval(cores+1) IS the new
			// current time — no re-evaluation, bit for bit. The heap
			// entry carries it; times[] is rebuilt after the loop.
			t := s.next
			s.next = math.NaN()
			cus.fix(t)
			// Refresh this class's gain inline: the heap cannot have
			// emptied (fix keeps its size) so the topGain guard is dead.
			e := cus.ents[0]
			ts := &st[e.idx]
			if ts.next != ts.next {
				// eval, spelled out so it inlines (same ops, same order).
				ec := &consts[e.idx]
				p := float64(ts.cores + 1)
				pe := gval(p, ec.p50, ec.k) / ec.gbase
				ts.next = ec.num / (p * pe) * ec.sr * ec.ir
			}
			gainCU = e.t - ts.next
		} else {
			if gainApp <= 0 {
				break
			}
			pick := apps.ents[0].idx
			s := &st[pick]
			s.cores++
			t := s.next
			s.next = math.NaN()
			apps.fix(t)
			e := apps.ents[0]
			ts := &st[e.idx]
			if ts.next != ts.next {
				ec := &consts[e.idx]
				p := float64(ts.cores + 1)
				pe := gval(p, ec.p50, ec.k) / ec.gbase
				ts.next = ec.num / (p * pe) * ec.sr * ec.ir
			}
			gainApp = e.t - ts.next
		}
	}
	for i := range st {
		cores[i] = st[i].cores
	}
	// The heap entries hold each component's final run-time (every grant
	// updated the entry in place); fold them back into times[].
	for _, e := range apps.ents {
		times[e.idx] = e.t
	}
	for _, e := range cus.ents {
		times[e.idx] = e.t
	}
	// Copy the caller's slice: the Allocation (and any cache retaining
	// it) must not see later mutations of the input, nor vice versa.
	held := make([]Component, len(components))
	copy(held, components)
	out := &Allocation{Components: held, Cores: cores, Times: times, Unallocated: remaining}
	for i := range components {
		if components[i].IsCU {
			out.MaxCU = math.Max(out.MaxCU, times[i])
		} else {
			out.MaxApp = math.Max(out.MaxApp, times[i])
		}
	}
	out.Predicted = out.MaxApp + out.MaxCU
	return out, nil
}

// String renders the allocation as an aligned table (Fig. 9b style).
func (a *Allocation) String() string {
	s := fmt.Sprintf("%-24s %6s %12s %14s\n", "component", "type", "ranks", "time(s)")
	for i, cp := range a.Components {
		kind := "app"
		if cp.IsCU {
			kind = "CU"
		}
		s += fmt.Sprintf("%-24s %6s %12d %14.3f\n", cp.Name, kind, a.Cores[i], a.Times[i])
	}
	s += fmt.Sprintf("predicted run-time: %.3f s (apps %.3f + CUs %.3f)\n", a.Predicted, a.MaxApp, a.MaxCU)
	return s
}

// PredictSpeedup compares two allocations (e.g. Optimized-STC vs
// Base-STC at the same budget) as T(base)/T(other).
func PredictSpeedup(base, other *Allocation) float64 {
	if other.Predicted == 0 {
		return math.Inf(1)
	}
	return base.Predicted / other.Predicted
}

// RelativeError returns |predicted-actual| / actual.
func RelativeError(predicted, actual float64) float64 {
	if actual == 0 {
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / actual
}
