package perfmodel

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

// syntheticSamples generates runtimes from a known curve with optional
// multiplicative noise factors.
func syntheticSamples(c Curve, cores []int, noise []float64) []Sample {
	out := make([]Sample, len(cores))
	for i, p := range cores {
		f := 1.0
		if noise != nil {
			f = noise[i]
		}
		out[i] = Sample{Cores: p, Runtime: c.Runtime(float64(p)) * f}
	}
	return out
}

func TestCurveBasics(t *testing.T) {
	c := Curve{BaseCores: 128, BaseTime: 100, P50: 3000, K: 1.5}
	if pe := c.PE(128); math.Abs(pe-1) > 1e-12 {
		t.Errorf("PE(base) = %v, want 1", pe)
	}
	// PE is monotone decreasing.
	prev := 1.0
	for p := 256.0; p <= 40000; p *= 2 {
		pe := c.PE(p)
		if pe >= prev {
			t.Fatalf("PE not decreasing at %v: %v >= %v", p, pe, prev)
		}
		prev = pe
	}
	// Runtime decreases then flattens; speedup bounded.
	if !(c.Runtime(256) < c.Runtime(128)) {
		t.Error("doubling cores near base should cut runtime")
	}
	if c.Speedup(128) != 1 {
		t.Error("speedup at base != 1")
	}
	if c.PE(0) != 0 || !math.IsInf(c.Runtime(0), 1) {
		t.Error("degenerate p=0 not handled")
	}
}

func TestFitCurveRecoversTruth(t *testing.T) {
	truth := Curve{BaseCores: 128, BaseTime: 50, P50: 2500, K: 1.4}
	cores := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	fit, err := FitCurve(syntheticSamples(truth, cores, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{300, 1000, 3000, 10000} {
		want := truth.Runtime(p)
		got := fit.Runtime(p)
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("fit at %v cores: %v, want %v", p, got, want)
		}
	}
}

func TestFitCurveWithNoise(t *testing.T) {
	truth := Curve{BaseCores: 64, BaseTime: 20, P50: 900, K: 1.1}
	cores := []int{64, 128, 256, 512, 1024, 2048}
	noise := []float64{1.02, 0.97, 1.05, 0.95, 1.03, 0.98}
	fit, err := FitCurve(syntheticSamples(truth, cores, noise))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{200, 800, 1600} {
		if RelativeError(fit.Runtime(p), truth.Runtime(p)) > 0.2 {
			t.Errorf("noisy fit at %v: %v vs %v", p, fit.Runtime(p), truth.Runtime(p))
		}
	}
}

func TestFitCurveRejectsBadInput(t *testing.T) {
	if _, err := FitCurve([]Sample{{128, 1}}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := FitCurve([]Sample{{128, 1}, {256, -1}}); err == nil {
		t.Error("negative runtime accepted")
	}
	if _, err := FitCurve([]Sample{{0, 1}, {256, 1}}); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestComponentScaling(t *testing.T) {
	c := &Curve{BaseCores: 100, BaseTime: 10, P50: 1e6, K: 1}
	cp := Component{Curve: c, SizeRatio: 3, IterRatio: 10}
	// At base cores: 10 * 3 * 10 = 300 (PE ~ 1 with huge P50).
	if tm := cp.Time(100); math.Abs(tm-300) > 1 {
		t.Errorf("scaled time %v, want ~300", tm)
	}
	// Zero ratios default to 1.
	cp2 := Component{Curve: c}
	if tm := cp2.Time(100); math.Abs(tm-10) > 0.1 {
		t.Errorf("unscaled time %v, want ~10", tm)
	}
}

func TestAllocateBalancesLoad(t *testing.T) {
	mk := func(base float64) *Curve {
		return &Curve{BaseCores: 1, BaseTime: base, P50: 1e7, K: 1}
	}
	comps := []Component{
		{Name: "small", Curve: mk(10)},
		{Name: "big", Curve: mk(100)},
		{Name: "cu", Curve: mk(1), IsCU: true},
	}
	alloc, err := Allocate(comps, 222)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range alloc.Cores {
		total += c
	}
	if total != 222 {
		t.Fatalf("allocated %d cores, budget 222", total)
	}
	// The big instance must get roughly 10x the small one's cores
	// (perfect-scaling curves -> proportional allocation).
	ratio := float64(alloc.Cores[1]) / float64(alloc.Cores[0])
	if ratio < 5 || ratio > 20 {
		t.Errorf("big/small core ratio %v, want ~10", ratio)
	}
	// Final times nearly equal across instances (balanced).
	if RelativeError(alloc.Times[0], alloc.Times[1]) > 0.3 {
		t.Errorf("unbalanced times %v vs %v", alloc.Times[0], alloc.Times[1])
	}
	if alloc.Predicted != alloc.MaxApp+alloc.MaxCU {
		t.Error("prediction != maxApp + maxCU")
	}
}

func TestAllocateRespectsMinRanks(t *testing.T) {
	c := &Curve{BaseCores: 1, BaseTime: 1, P50: 1e6, K: 1}
	comps := []Component{
		{Name: "a", Curve: c, MinRanks: 100},
		{Name: "b", Curve: c, MinRanks: 50},
	}
	alloc, err := Allocate(comps, 200)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Cores[0] < 100 || alloc.Cores[1] < 50 {
		t.Errorf("min ranks violated: %v", alloc.Cores)
	}
	if _, err := Allocate(comps, 100); err == nil {
		t.Error("budget below minimum allocations accepted")
	}
}

func TestAllocateStopsAtPEPlateau(t *testing.T) {
	// One instance with an early knee: once past the point where a core
	// buys nothing (its time would grow), the loop must stop and idle the
	// rest of the budget — the paper's Fig. 9b allocations sum to well
	// under the 40,000-core budget for this reason.
	comps := []Component{
		{Name: "kneed", Curve: &Curve{BaseCores: 1, BaseTime: 100, P50: 50, K: 2}},
		{Name: "scaler", Curve: &Curve{BaseCores: 1, BaseTime: 100, P50: 1e7, K: 1}},
	}
	alloc, err := Allocate(comps, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Unallocated == 0 {
		t.Error("expected idle cores once the knee component saturates")
	}
	// The kneed instance must stop near its optimum (~P50), not absorb
	// the whole budget.
	if alloc.Cores[0] > 200 {
		t.Errorf("kneed instance got %d cores; should saturate near its knee", alloc.Cores[0])
	}
	total := alloc.Cores[0] + alloc.Cores[1] + alloc.Unallocated
	if total != 2000 {
		t.Errorf("cores + unallocated = %d, want 2000", total)
	}
}

func TestAllocateEmptyErrors(t *testing.T) {
	if _, err := Allocate(nil, 100); err == nil {
		t.Error("empty component list accepted")
	}
}

func TestPredictSpeedup(t *testing.T) {
	a := &Allocation{Predicted: 100}
	b := &Allocation{Predicted: 25}
	if s := PredictSpeedup(a, b); s != 4 {
		t.Errorf("speedup %v, want 4", s)
	}
}

func TestRelativeError(t *testing.T) {
	if e := RelativeError(110, 100); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("error %v, want 0.1", e)
	}
	if e := RelativeError(90, 100); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("error %v, want 0.1", e)
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Error("zero actual should give +Inf")
	}
}

func TestAllocationString(t *testing.T) {
	c := &Curve{BaseCores: 1, BaseTime: 1, P50: 100, K: 1}
	alloc, err := Allocate([]Component{{Name: "x", Curve: c}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s := alloc.String(); len(s) == 0 {
		t.Error("empty table")
	}
}

// Property: allocation never exceeds the budget and times stay positive.
func TestAllocateBudgetProperty(t *testing.T) {
	f := func(b uint16, n uint8) bool {
		budget := int(b)%5000 + 10
		k := int(n)%5 + 1
		comps := make([]Component, k)
		for i := range comps {
			comps[i] = Component{
				Name:  "c",
				Curve: &Curve{BaseCores: 1, BaseTime: float64(i + 1), P50: 500, K: 1.2},
				IsCU:  i%2 == 1,
			}
		}
		if budget < k {
			return true
		}
		alloc, err := Allocate(comps, budget)
		if err != nil {
			return false
		}
		total := alloc.Unallocated
		for i, c := range alloc.Cores {
			if c < 1 || alloc.Times[i] <= 0 {
				return false
			}
			total += c
		}
		return total == budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCurveJSONRoundTrip(t *testing.T) {
	// Curves persist as plain JSON (used by cmd/cpxmodel workflows).
	c := &Curve{BaseCores: 128, BaseTime: 42.5, P50: 3100, K: 1.35}
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Curve
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != *c {
		t.Errorf("round trip changed curve: %+v vs %+v", back, *c)
	}
	for _, p := range []float64{128, 1000, 10000} {
		if back.Runtime(p) != c.Runtime(p) {
			t.Errorf("runtime differs after round trip at %v", p)
		}
	}
}

func TestFitAmdahlRecoversTruth(t *testing.T) {
	truth := AmdahlCurve{Serial: 2, Work: 10000, Comm: 0.5}
	var samples []Sample
	for _, p := range []int{16, 32, 64, 128, 256, 512, 1024} {
		samples = append(samples, Sample{Cores: p, Runtime: truth.Runtime(float64(p))})
	}
	fit, err := FitAmdahl(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{24, 100, 700, 2000} {
		if RelativeError(fit.Runtime(p), truth.Runtime(p)) > 0.1 {
			t.Errorf("Amdahl fit at %v: %v vs %v", p, fit.Runtime(p), truth.Runtime(p))
		}
	}
}

func TestFitAmdahlRejectsBadInput(t *testing.T) {
	if _, err := FitAmdahl([]Sample{{1, 1}, {2, 1}}); err == nil {
		t.Error("two samples accepted")
	}
	if _, err := FitAmdahl([]Sample{{1, 1}, {2, 1}, {4, -1}}); err == nil {
		t.Error("negative runtime accepted")
	}
}

func TestAmdahlDegenerateCores(t *testing.T) {
	c := AmdahlCurve{Serial: 1, Work: 10, Comm: 1}
	if !math.IsInf(c.Runtime(0), 1) {
		t.Error("p=0 should be +Inf")
	}
}
