// Package pressure implements the combustion pressure-solver proxy: a
// representative pressure-based LES combustion solver with the per-step
// structure of Fig. 2 — momentum and scalar transport, combustion source
// terms, a pressure-correction solve by AMG-preconditioned conjugate
// gradients, and a Lagrangian fuel-spray update. Every region is
// instrumented (trace) so the per-function compute/communication
// breakdown of Fig. 5 can be reproduced, and the Base/Optimized variants
// realise the Section IV optimisation study:
//
//	Base:      two-pass SpGEMM AMG setup, Jacobi smoothing, tentative
//	           interpolation, synchronous spatially-partitioned spray.
//	Optimized: SPA single-pass SpGEMM, hybrid Gauss-Seidel, PMIS +
//	           extended+i interpolation, identity-block transfer SpMV,
//	           async task-based spray off the critical path.
//
// The Optimized variant additionally charges pressure-field kernel work
// at the measured multi-core speedup of Park et al. [48] (the paper's 5x
// extrapolation) — the optimised algorithms really run; the constant maps
// their single-box costs to the production code's measured gains.
package pressure

import (
	"fmt"
	"math"

	"cpx/internal/amg"
	"cpx/internal/cluster"
	"cpx/internal/mesh"
	"cpx/internal/mpi"
	"cpx/internal/sparse"
	"cpx/internal/spray"
)

// Variant selects the Base or Optimized pressure solver.
type Variant int

// Solver variants.
const (
	Base Variant = iota
	Optimized
)

func (v Variant) String() string {
	if v == Optimized {
		return "Optimized"
	}
	return "Base"
}

// Message tags.
const (
	tagTransport = 60 // ..+4 for the individual fields
	tagPressure  = 80 // ..+3 for CG halos, async spray, setup and cycle level exchanges
)

// Per-cell work constants for the transport and source kernels
// (calibrated; see DESIGN.md §6).
const (
	transportFlopsPerCell  = 300.0 // per variable per sweep (incl. inner iterations)
	transportBytesPerCell  = 600.0
	transportSweeps        = 4      // halo-coupled sweeps per transport solve
	combustionFlopsPerCell = 3900.0 // EBU/PDF source evaluation, compute-bound
	combustionBytesPerCell = 480.0
	spmvFlopsPerCell       = 14.0 // 7-point stencil
	spmvBytesPerCell       = 90.0
)

// fieldKernelSpeedup is the measured SpMV/SpGEMM kernel speedup of the
// optimised AMG of [48] applied to the pressure-field work (Section IV-C
// applies 5x).
const fieldKernelSpeedup = 5.0

// Config describes a pressure-solver instance.
type Config struct {
	MeshCells int64 // e.g. 28M, 84M, 380M
	Steps     int
	Variant   Variant
	// DropletsPerCell scales the spray population (paper: 7M droplets on
	// 28M cells = 0.25). Zero takes 0.25.
	DropletsPerCell float64
	Seed            int64
	// PCG controls.
	Tol     float64 // default 1e-6
	MaxIter int     // default 60
}

func (c Config) withDefaults() Config {
	if c.DropletsPerCell == 0 {
		c.DropletsPerCell = 0.25
	}
	if c.Tol == 0 {
		// Production pressure corrections are solved to a loose inner
		// tolerance within the outer PISO/SIMPLE loop.
		c.Tol = 1e-3
	}
	if c.MaxIter == 0 {
		// Production correctors cap the inner pressure sweeps per step.
		c.MaxIter = 40
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MeshCells < 8 {
		return fmt.Errorf("pressure: mesh of %d cells too small", c.MeshCells)
	}
	if c.Steps < 1 {
		return fmt.Errorf("pressure: need at least one step")
	}
	return nil
}

// ScaleOpts bound per-rank working sets; zero disables capping.
type ScaleOpts struct {
	MaxCellsPerRank    int
	MaxDropletsPerRank int
	SampleSteps        int
}

// Production returns the capping used by large harness runs.
func Production() ScaleOpts {
	return ScaleOpts{MaxCellsPerRank: 1331, MaxDropletsPerRank: 2048, SampleSteps: 2}
}

// SampledFraction returns full-run steps / executed steps (>= 1).
func SampledFraction(cfg Config, sc ScaleOpts) float64 {
	if sc.SampleSteps > 0 && sc.SampleSteps < cfg.Steps {
		return float64(cfg.Steps) / float64(sc.SampleSteps)
	}
	return 1
}

// Solver is the per-rank pressure-solver state.
type Solver struct {
	comm *mpi.Comm
	cfg  Config

	local *mesh.Local
	dims  mesh.Dims // simulated local cell dims
	scale float64   // true/sim cell ratio

	// Flow fields on the sim box (cell-centred).
	u, v, w, pcorr, kTurb []float64

	// Pressure-correction machinery.
	localA *sparse.CSR
	hier   *amg.Hierarchy
	faces  []faceCells

	cloud *spray.Cloud // nil in Optimized (async) mode
	grid  [3]int

	// LastIterations records the most recent PCG iteration count.
	LastIterations int
}

type faceCells struct {
	rank      int
	idx       []int
	trueCells int
}

// New builds the per-rank solver. Collective over c.
func New(c *mpi.Comm, cfg Config, sc ScaleOpts) (*Solver, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dims := mesh.CubeDims(cfg.MeshCells)
	dc, err := mesh.NewDecompBestEffort(dims, c.Size())
	if err != nil {
		return nil, err
	}
	if dc.Ranks() != c.Size() {
		return nil, fmt.Errorf("pressure: %d ranks do not decompose %d cells (best effort %d)",
			c.Size(), cfg.MeshCells, dc.Ranks())
	}
	s := &Solver{comm: c, cfg: cfg, grid: dc.Grid}
	s.local = dc.Local(c.Rank(), sc.MaxCellsPerRank)
	s.dims = s.local.Sim
	s.scale = s.local.Scale
	// Capped working sets use a cubic block so the local AMG sees the
	// same operator shape at every rank count: the distributed solve's
	// iteration growth then depends only on the block count, keeping the
	// strong-scaling curves smooth.
	if sc.MaxCellsPerRank > 0 && s.local.Sim != s.local.True {
		side := int(math.Cbrt(float64(sc.MaxCellsPerRank)))
		if side < 2 {
			side = 2
		}
		s.dims = mesh.Dims{NI: side, NJ: side, NK: side}
		s.scale = float64(s.local.True.Cells()) / float64(s.dims.Cells())
	}

	n := int(s.dims.Cells())
	s.u = make([]float64, n)
	s.v = make([]float64, n)
	s.w = make([]float64, n)
	s.pcorr = make([]float64, n)
	s.kTurb = make([]float64, n)
	for i := range s.u {
		s.u[i] = 0.3 + 0.01*math.Sin(float64(i)*0.07+float64(cfg.Seed))
		s.kTurb[i] = 0.01
	}

	// Faces (cell lists) for halo-coupled kernels.
	for _, nb := range s.local.Neighbors {
		s.faces = append(s.faces, faceCells{
			rank:      nb.Rank,
			idx:       cellFace(s.dims, nb.Axis, nb.Dir),
			trueCells: nb.FaceCells,
		})
	}

	// Pressure operator: 7-point Laplacian on the sim box, AMG hierarchy
	// per the variant.
	s.region("pressure_field", func() {
		s.localA = sparse.Poisson3D(s.dims.NI, s.dims.NJ, s.dims.NK)
		opts := amg.DefaultOptions()
		if cfg.Variant == Optimized {
			opts = amg.OptimizedOptions()
		}
		opts.Seed = cfg.Seed
		h, herr := amg.Setup(s.localA, opts)
		if herr != nil {
			err = herr
			return
		}
		s.hier = h
	})
	if err != nil {
		return nil, err
	}

	// Spray: synchronous cloud in Base; async task-based in Optimized
	// (the spray leaves the critical path; see stepSpray).
	droplets := int64(float64(cfg.MeshCells) * cfg.DropletsPerCell)
	if cfg.Variant == Base {
		cl, cerr := spray.NewCloud(c, s.grid, spray.Config{
			Droplets: droplets, ConeFraction: 0.25, Seed: cfg.Seed,
		}, spray.ScaleOpts{MaxDropletsPerRank: sc.MaxDropletsPerRank})
		if cerr != nil {
			return nil, cerr
		}
		s.cloud = cl
	}
	return s, nil
}

// region runs fn inside a named trace region (no-op when profiling off).
func (s *Solver) region(name string, fn func()) {
	if p := s.comm.Profile(); p != nil {
		defer p.Scoped(name)()
	}
	fn()
}

// cellFace lists cell indices on a face of the box (i fastest).
func cellFace(d mesh.Dims, axis, dir int) []int {
	idx := func(i, j, k int) int { return (k*d.NJ+j)*d.NI + i }
	var out []int
	switch axis {
	case 0:
		i := 0
		if dir > 0 {
			i = d.NI - 1
		}
		for k := 0; k < d.NK; k++ {
			for j := 0; j < d.NJ; j++ {
				out = append(out, idx(i, j, k))
			}
		}
	case 1:
		j := 0
		if dir > 0 {
			j = d.NJ - 1
		}
		for k := 0; k < d.NK; k++ {
			for i := 0; i < d.NI; i++ {
				out = append(out, idx(i, j, k))
			}
		}
	default:
		k := 0
		if dir > 0 {
			k = d.NK - 1
		}
		for j := 0; j < d.NJ; j++ {
			for i := 0; i < d.NI; i++ {
				out = append(out, idx(i, j, k))
			}
		}
	}
	return out
}

// exchangeFaces trades the values of field at each face with the
// neighbours and returns the received buffers (aligned with s.faces).
func (s *Solver) exchangeFaces(field []float64, tag int) [][]float64 {
	for _, f := range s.faces {
		buf := make([]float64, len(f.idx))
		for i, c := range f.idx {
			buf[i] = field[c]
		}
		s.comm.SendVirtual(f.rank, tag, buf, f.trueCells*8)
	}
	out := make([][]float64, len(s.faces))
	for i, f := range s.faces {
		d, _, _ := s.comm.Recv(f.rank, tag)
		out[i] = d
	}
	return out
}

// transportSweep smooths a field with a 7-point stencil using halo data —
// one sweep of a segregated transport solve.
func (s *Solver) transportSweep(field []float64, tag int) {
	halo := s.exchangeFaces(field, tag)
	d := s.dims
	next := make([]float64, len(field))
	idx := func(i, j, k int) int { return (k*d.NJ+j)*d.NI + i }
	for k := 0; k < d.NK; k++ {
		for j := 0; j < d.NJ; j++ {
			for i := 0; i < d.NI; i++ {
				c := idx(i, j, k)
				sum, cnt := 0.0, 0
				if i > 0 {
					sum += field[idx(i-1, j, k)]
					cnt++
				}
				if i < d.NI-1 {
					sum += field[idx(i+1, j, k)]
					cnt++
				}
				if j > 0 {
					sum += field[idx(i, j-1, k)]
					cnt++
				}
				if j < d.NJ-1 {
					sum += field[idx(i, j+1, k)]
					cnt++
				}
				if k > 0 {
					sum += field[idx(i, j, k-1)]
					cnt++
				}
				if k < d.NK-1 {
					sum += field[idx(i, j, k+1)]
					cnt++
				}
				if cnt > 0 {
					next[c] = 0.5*field[c] + 0.5*sum/float64(cnt)
				} else {
					next[c] = field[c]
				}
			}
		}
	}
	// Fold in the halo: face cells relax toward neighbour values.
	for fi, f := range s.faces {
		m := min(len(halo[fi]), len(f.idx))
		for i := 0; i < m; i++ {
			next[f.idx[i]] = 0.5*next[f.idx[i]] + 0.5*halo[fi][i]
		}
	}
	copy(field, next)
	cells := float64(len(field))
	s.comm.Compute(cluster.Work{
		Flops: transportFlopsPerCell * cells * s.scale,
		Bytes: transportBytesPerCell * cells * s.scale,
	})
}

// stepMomentum advances the three velocity components.
func (s *Solver) stepMomentum() {
	for sweep := 0; sweep < transportSweeps; sweep++ {
		s.transportSweep(s.u, tagTransport)
		s.transportSweep(s.v, tagTransport+1)
		s.transportSweep(s.w, tagTransport+2)
	}
}

// stepScalars advances turbulence and combustion scalars (k-eps, mixture
// fraction, enthalpy).
func (s *Solver) stepScalars() {
	for sweep := 0; sweep < transportSweeps; sweep++ {
		s.transportSweep(s.kTurb, tagTransport+3)
	}
	// The remaining three scalars cost the same but need no distinct
	// state for the proxy: charge their work and run their halo traffic.
	cells := float64(len(s.kTurb))
	for sweep := 0; sweep < transportSweeps; sweep++ {
		s.comm.Compute(cluster.Work{
			Flops: 3 * transportFlopsPerCell * cells * s.scale,
			Bytes: 3 * transportBytesPerCell * cells * s.scale,
		})
		s.exchangeFaces(s.kTurb, tagTransport+4)
	}
}

// stepCombustion evaluates pointwise source terms (EBU / PDF models):
// compute-heavy, communication-free, scales perfectly.
func (s *Solver) stepCombustion() {
	for i := range s.kTurb {
		// Arrhenius-like source with turbulence limiting.
		r := math.Exp(-1.0/(0.2+math.Abs(s.kTurb[i]))) * (1 - s.kTurb[i])
		s.kTurb[i] += 1e-4 * r
	}
	cells := float64(len(s.kTurb))
	s.comm.Compute(cluster.Work{
		Flops: combustionFlopsPerCell * cells * s.scale,
		Bytes: combustionBytesPerCell * cells * s.scale,
	})
}

// pressureMatVec applies the stitched global operator: local 7-point
// Laplacian plus symmetric -1 couplings across block faces.
func (s *Solver) pressureMatVec(x, y []float64) {
	halo := s.exchangeFaces(x, tagPressure)
	s.localA.MulVec(x, y)
	for fi, f := range s.faces {
		m := min(len(halo[fi]), len(f.idx))
		for i := 0; i < m; i++ {
			y[f.idx[i]] -= halo[fi][i]
		}
	}
	cells := float64(len(x))
	work := cluster.Work{
		Flops: spmvFlopsPerCell * cells * s.scale,
		Bytes: spmvBytesPerCell * cells * s.scale,
	}
	if s.cfg.Variant == Optimized {
		work = work.Scale(1 / fieldKernelSpeedup)
	}
	s.comm.Compute(work)
}

// dot is a globally-reduced inner product.
func (s *Solver) dot(a, b []float64) float64 {
	t := 0.0
	for i := range a {
		t += a[i] * b[i]
	}
	s.comm.Compute(cluster.Work{Flops: 2 * float64(len(a)) * s.scale, Bytes: 16 * float64(len(a)) * s.scale})
	return s.comm.AllreduceScalar(t, mpi.Sum)
}

// levelExchange performs one halo exchange at hierarchy level l with the
// face sizes coarsened 4x per level (the per-level neighbour traffic of a
// distributed AMG cycle/setup). fieldsBytes is the per-cell payload.
func (s *Solver) levelExchange(l int, fieldBytes int, tag int) {
	shrink := 1
	for i := 0; i < l; i++ {
		shrink *= 4
	}
	for _, f := range s.faces {
		fc := f.trueCells / shrink
		if fc < 1 {
			fc = 1
		}
		s.comm.SendVirtual(f.rank, tag, nil, fc*fieldBytes)
	}
	// Receive exactly one message per neighbour (explicit sources): the
	// same tag carries every level's exchange, so a count-based wildcard
	// batch could steal a faster neighbour's next-level message.
	for _, f := range s.faces {
		s.comm.Recv(f.rank, tag)
	}
}

// amgSetup re-runs the AMG setup phase: the pressure-correction
// coefficients change every time-step, so the Galerkin products (SpGEMM)
// and the column renumbering are on the per-step critical path — the
// paper's profiling attributes the bulk of pressure-field compute to the
// multigrid cycles *and the setup phase*. Distributed RAP also exchanges
// matrix rows at every level.
func (s *Solver) amgSetup() {
	setup := s.hier.SetupWork.Scale(s.scale)
	if s.cfg.Variant == Optimized {
		setup = setup.Scale(1 / fieldKernelSpeedup)
	}
	s.comm.Compute(setup)
	for l := 0; l < s.hier.NumLevels()-1; l++ {
		// Matrix-row halo: ~7 nnz/row, 16 B per entry.
		s.levelExchange(l, 7*16, tagPressure+2)
	}
}

// stepPressure runs the pressure-correction solve: per-step AMG setup
// followed by AMG-preconditioned CG on the distributed operator, the
// paper's dominant cost (46% of run-time at 2,048 cores).
func (s *Solver) stepPressure() {
	s.amgSetup()
	n := len(s.pcorr)
	// Divergence source from the velocity field.
	b := make([]float64, n)
	for i := range b {
		b[i] = 1e-3 * (s.u[i] - 0.3)
	}
	x := s.pcorr
	for i := range x {
		x[i] = 0
	}
	r := make([]float64, n)
	s.pressureMatVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := math.Sqrt(s.dot(b, b))
	if bnorm == 0 {
		bnorm = 1
	}
	z := make([]float64, n)
	precond := func(res, out []float64) {
		for i := range out {
			out[i] = 0
		}
		s.hier.ApplyCycle(res, out)
		w := s.hier.CycleWork().Scale(s.scale)
		if s.cfg.Variant == Optimized {
			w = w.Scale(1 / fieldKernelSpeedup)
		}
		s.comm.Compute(w)
		// Distributed V-cycle: pre-smooth, post-smooth and residual each
		// exchange halos at every level.
		for l := 0; l < s.hier.NumLevels()-1; l++ {
			s.levelExchange(l, 3*8, tagPressure+3)
		}
	}
	precond(r, z)
	p := make([]float64, n)
	copy(p, z)
	ap := make([]float64, n)
	rz := s.dot(r, z)
	iters := 0
	for it := 1; it <= s.cfg.MaxIter; it++ {
		iters = it
		s.pressureMatVec(p, ap)
		pap := s.dot(p, ap)
		if pap == 0 {
			break
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		if math.Sqrt(s.dot(r, r))/bnorm < s.cfg.Tol {
			break
		}
		precond(r, z)
		rzNew := s.dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	s.LastIterations = iters
	// Apply the correction to the velocity (projection).
	for i := range s.u {
		s.u[i] -= 0.1 * x[i]
	}
}

// stepSpray advances the fuel spray. Base: synchronous spatial
// partitioning (redistribution + census on the critical path).
// Optimized: async task-based — the balanced droplet work proceeds
// concurrently on dedicated resources and only a window synchronisation
// touches the solver ranks, matching the measured near-perfect scaling
// of the optimised spray [32].
func (s *Solver) stepSpray() {
	if s.cloud != nil {
		s.cloud.Step(0.01)
		return
	}
	// Async mode: one-sided window exchange with a neighbour stands in
	// for the MPI-3 shared-memory synchronisation; droplet work itself is
	// perfectly balanced across the spray communicator and overlaps the
	// flow solve, so only the (tiny) sync cost lands here.
	p, r := s.comm.Size(), s.comm.Rank()
	if p > 1 {
		partner := r ^ 1
		if partner < p {
			s.comm.SendVirtual(partner, tagPressure+1, []float64{float64(len(s.u))}, 256)
			s.comm.Recv(partner, tagPressure+1)
		}
	}
}

// Step advances the solver one time-step through the Fig. 2 sequence.
func (s *Solver) Step() {
	s.region("momentum", s.stepMomentum)
	s.region("scalars", s.stepScalars)
	s.region("combustion", s.stepCombustion)
	s.region("pressure_field", s.stepPressure)
	s.region("spray", s.stepSpray)
}

// StepPhases is Step with a callback after every phase; used by the
// determinism diagnostics and tests.
func (s *Solver) StepPhases(after func()) {
	s.region("momentum", s.stepMomentum)
	after()
	s.region("scalars", s.stepScalars)
	after()
	s.region("combustion", s.stepCombustion)
	after()
	s.region("pressure_field", s.stepPressure)
	after()
	s.region("spray", s.stepSpray)
	after()
}

// Stats summarises a run.
type Stats struct {
	StepsRun      int
	ScaledSteps   int
	PCGIterations int // last step's count
	MeanVelocity  float64
	DropletCount  int
	// SetupTime is the virtual time consumed before stepping began (max
	// over ranks); harnesses scale only the stepping phase when sampling.
	SetupTime float64
}

// Run executes the configured (or sampled) number of steps.
func Run(c *mpi.Comm, cfg Config, sc ScaleOpts) (*Stats, error) {
	s, err := New(c, cfg, sc)
	if err != nil {
		return nil, err
	}
	setup := c.AllreduceScalar(c.Clock(), mpi.Max)
	cfg = cfg.withDefaults()
	steps := cfg.Steps
	if sc.SampleSteps > 0 && sc.SampleSteps < steps {
		steps = sc.SampleSteps
	}
	for i := 0; i < steps; i++ {
		s.Step()
	}
	mean := 0.0
	for _, v := range s.u {
		mean += v
	}
	mean = c.AllreduceScalar(mean, mpi.Sum) / c.AllreduceScalar(float64(len(s.u)), mpi.Sum)
	st := &Stats{StepsRun: steps, ScaledSteps: cfg.Steps, PCGIterations: s.LastIterations, MeanVelocity: mean, SetupTime: setup}
	if s.cloud != nil {
		st.DropletCount = s.cloud.Count()
	}
	return st, nil
}
