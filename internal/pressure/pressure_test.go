package pressure

import (
	"fmt"
	"math"
	"testing"
	"time"

	"cpx/internal/cluster"
	"cpx/internal/mpi"
)

func cfg(profile bool) mpi.Config {
	return mpi.Config{Machine: cluster.SmallCluster(), Profile: profile, Watchdog: 120 * time.Second}
}

func smallConfig(v Variant) Config {
	return Config{MeshCells: 8000, Steps: 2, Variant: v, Seed: 1}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{MeshCells: 2, Steps: 1}).Validate(); err == nil {
		t.Error("tiny mesh accepted")
	}
	if err := (Config{MeshCells: 1000, Steps: 0}).Validate(); err == nil {
		t.Error("zero steps accepted")
	}
	if err := smallConfig(Base).Validate(); err != nil {
		t.Error(err)
	}
}

func TestVariantString(t *testing.T) {
	if Base.String() != "Base" || Optimized.String() != "Optimized" {
		t.Error("variant names wrong")
	}
}

func TestRunBothVariants(t *testing.T) {
	for _, v := range []Variant{Base, Optimized} {
		for _, p := range []int{1, 2, 4} {
			_, err := mpi.Run(p, cfg(false), func(c *mpi.Comm) error {
				st, err := Run(c, smallConfig(v), ScaleOpts{})
				if err != nil {
					return err
				}
				if st.StepsRun != 2 {
					return fmt.Errorf("%v p=%d: steps %d", v, p, st.StepsRun)
				}
				if st.PCGIterations < 1 {
					return fmt.Errorf("%v p=%d: no PCG iterations", v, p)
				}
				if math.IsNaN(st.MeanVelocity) {
					return fmt.Errorf("%v p=%d: NaN velocity", v, p)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestProfileRegionsPresent(t *testing.T) {
	st, err := mpi.Run(2, cfg(true), func(c *mpi.Comm) error {
		_, err := Run(c, smallConfig(Base), ScaleOpts{})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := st.MergedProfile()
	if prof == nil {
		t.Fatal("no merged profile")
	}
	for _, region := range []string{"momentum", "scalars", "combustion", "pressure_field", "spray"} {
		e := prof.Entry(region)
		if e.Total() <= 0 {
			t.Errorf("region %q has no recorded time", region)
		}
	}
	// Pressure field must be a leading cost (it dominates at production
	// scale; on this tiny smoke mesh the local AMG converges quickly, so
	// only require it to be within 2x of the largest region).
	pf := prof.Entry("pressure_field").Total()
	for _, region := range []string{"momentum", "scalars", "combustion"} {
		if other := prof.Entry(region).Total(); other > 2*pf {
			t.Errorf("region %q (%v) dwarfs pressure_field (%v)", region, other, pf)
		}
	}
}

func TestSprayRegionCommHeavyAtScale(t *testing.T) {
	// With many ranks and few droplets per rank, the spray region must be
	// communication-dominated (paper: 96% comm at 2,048 cores).
	st, err := mpi.Run(16, cfg(true), func(c *mpi.Comm) error {
		_, err := Run(c, Config{MeshCells: 64000, Steps: 2, Variant: Base, Seed: 2},
			ScaleOpts{MaxCellsPerRank: 512, MaxDropletsPerRank: 64})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	e := st.MergedProfile().Entry("spray")
	if e.Total() <= 0 {
		t.Fatal("no spray time")
	}
	if frac := e.Comm / e.Total(); frac < 0.5 {
		t.Errorf("spray comm fraction %v at 16 ranks; expected communication-dominated", frac)
	}
}

func TestOptimizedFasterThanBase(t *testing.T) {
	elapsed := func(v Variant) float64 {
		st, err := mpi.Run(4, cfg(false), func(c *mpi.Comm) error {
			_, err := Run(c, Config{MeshCells: 32768, Steps: 2, Variant: v, Seed: 3},
				ScaleOpts{MaxCellsPerRank: 1000, MaxDropletsPerRank: 512})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	base, opt := elapsed(Base), elapsed(Optimized)
	if !(opt < base) {
		t.Errorf("optimized (%v) not faster than base (%v)", opt, base)
	}
}

func TestPCGIterationsGrowWithRanks(t *testing.T) {
	// Block-local AMG preconditioning weakens with more blocks: the
	// pressure-field PE decay mechanism.
	iters := func(p int) int {
		var out int
		_, err := mpi.Run(p, cfg(false), func(c *mpi.Comm) error {
			s, err := New(c, smallConfig(Base), ScaleOpts{})
			if err != nil {
				return err
			}
			s.Step()
			if c.Rank() == 0 {
				out = s.LastIterations
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if i1, i8 := iters(1), iters(8); i8 < i1 {
		t.Errorf("PCG iterations fell with more ranks: %d @1 vs %d @8", i1, i8)
	}
}

func TestScaleCappingKeepsVirtualTime(t *testing.T) {
	conf := Config{MeshCells: 32768, Steps: 1, Variant: Base, Seed: 4}
	elapsed := func(sc ScaleOpts) float64 {
		st, err := mpi.Run(2, cfg(false), func(c *mpi.Comm) error {
			_, err := Run(c, conf, sc)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	full := elapsed(ScaleOpts{})
	capped := elapsed(ScaleOpts{MaxCellsPerRank: 1728, MaxDropletsPerRank: 256})
	if ratio := capped / full; ratio < 0.3 || ratio > 3 {
		t.Errorf("capped %v vs full %v (ratio %v)", capped, full, ratio)
	}
}

func TestDeterministic(t *testing.T) {
	once := func() float64 {
		st, err := mpi.Run(3, cfg(false), func(c *mpi.Comm) error {
			_, err := Run(c, smallConfig(Base), ScaleOpts{})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	if a, b := once(), once(); a != b {
		t.Errorf("pressure solver not deterministic: %v vs %v", a, b)
	}
}

func TestRejectsUndecomposableRankCount(t *testing.T) {
	// 5 ranks on a 2x2x2-cell mesh cannot all get cells.
	_, err := mpi.Run(5, cfg(false), func(c *mpi.Comm) error {
		_, err := New(c, Config{MeshCells: 8, Steps: 1}, ScaleOpts{})
		if err == nil {
			return fmt.Errorf("undecomposable rank count accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampledFraction(t *testing.T) {
	c := Config{MeshCells: 1000, Steps: 100}
	if f := SampledFraction(c, ScaleOpts{SampleSteps: 2}); f != 50 {
		t.Errorf("fraction %v, want 50", f)
	}
}

func TestVelocityFieldEvolves(t *testing.T) {
	_, err := mpi.Run(2, cfg(false), func(c *mpi.Comm) error {
		s, err := New(c, smallConfig(Base), ScaleOpts{})
		if err != nil {
			return err
		}
		before := make([]float64, len(s.u))
		copy(before, s.u)
		s.Step()
		changed := false
		for i := range s.u {
			if s.u[i] != before[i] {
				changed = true
				break
			}
		}
		if !changed {
			return fmt.Errorf("velocity field frozen after a step")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
