package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"cpx/internal/cluster"
)

// benchAllocateBody builds a paper-scale allocation request (20
// components, 40k-core budget) with a salt folded into a component
// name so distinct salts address distinct cache entries.
func benchAllocateBody(salt int) string {
	req := AllocateRequest{Budget: 40_000}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("comp%02d", i)
		if i == 0 {
			name = fmt.Sprintf("comp%02d-s%d", i, salt)
		}
		req.Components = append(req.Components, ComponentSpec{
			Name:     name,
			IsCU:     i%4 == 3,
			MinRanks: 50 + 10*i,
			Curve: &CurveSpec{
				BaseCores: 100,
				BaseTime:  30 + float64(i)*17,
				P50:       1500 + float64(i)*400,
				K:         1.1 + 0.03*float64(i),
			},
		})
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return string(b)
}

func benchPost(b *testing.B, h http.Handler, body string) {
	b.Helper()
	r := httptest.NewRequest("POST", "/v1/allocate", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != 200 {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// BenchmarkServeAllocateUncached measures the full request path with a
// cold cache every iteration: decode, canonicalise, hash, run Alg. 1
// at paper scale, encode.
func BenchmarkServeAllocateUncached(b *testing.B) {
	s := New(Options{Machine: cluster.SmallCluster()})
	defer s.Close()
	h := s.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, h, benchAllocateBody(i))
	}
}

// BenchmarkServeAllocateCached measures the identical request served
// from the content-addressed cache: decode, canonicalise, hash, copy
// the stored artifact.
func BenchmarkServeAllocateCached(b *testing.B) {
	s := New(Options{Machine: cluster.SmallCluster()})
	defer s.Close()
	h := s.Handler()
	body := benchAllocateBody(0)
	benchPost(b, h, body) // populate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, h, body)
	}
}

// benchSweepPoints is the grid size of the concurrent sweep benchmarks.
const benchSweepPoints = 16

// benchSweepBody sweeps the small coupled scenario over 16 seeds.
func benchSweepBody() string {
	seeds := make([]string, benchSweepPoints)
	for i := range seeds {
		seeds[i] = fmt.Sprint(i + 1)
	}
	return fmt.Sprintf(`{"template": %s, "axes": {"seedOffsets": [%s]}}`,
		benchSimTemplate, strings.Join(seeds, ","))
}

const benchSimTemplate = `{
    "densitySteps": 2, "rotationPerStep": 0.002,
    "instances": [
      {"name": "row1", "kind": "mgcfd", "meshCells": 4096, "ranks": 4, "seed": 1},
      {"name": "row2", "kind": "mgcfd", "meshCells": 4096, "ranks": 4, "seed": 2}],
    "units": [
      {"name": "cu", "a": 0, "b": 1, "kind": "sliding", "points": 2000, "ranks": 2, "search": "tree"}]
  }`

// benchConcurrency is the in-flight request target of the concurrent
// serving benchmarks (the acceptance load is 1k+ concurrent sweeps).
const benchConcurrency = 1024

// BenchmarkServeSweepConcurrent drives 1024 concurrent /v1/sweep
// requests (16 points each) over a warm cache through the full handler:
// strict decode, template validation, grid expansion, per-point cache
// keying and NDJSON streaming. One op = one whole sweep; points/s is
// reported alongside.
func BenchmarkServeSweepConcurrent(b *testing.B) {
	s := New(Options{Machine: cluster.SmallCluster(), Workers: 8, SweepWorkers: 64})
	defer s.Close()
	h := s.Handler()
	body := benchSweepBody()
	benchSweep(b, h, body) // warm all 16 points
	gomaxprocs := runtime.GOMAXPROCS(0)
	b.SetParallelism((benchConcurrency + gomaxprocs - 1) / gomaxprocs)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchSweep(b, h, body)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N*benchSweepPoints)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkServeSimulatePointwiseConcurrent is the baseline the sweep
// endpoint amortises: the same warm 16-point grid issued as individual
// /v1/simulate requests at the same 1024-request concurrency. One op =
// 16 sequential posts, matching one sweep's work.
func BenchmarkServeSimulatePointwiseConcurrent(b *testing.B) {
	s := New(Options{Machine: cluster.SmallCluster(), Workers: 8})
	defer s.Close()
	h := s.Handler()
	bodies := make([]string, benchSweepPoints)
	for i := range bodies {
		bodies[i] = strings.Replace(benchSimTemplate, `"densitySteps": 2,`,
			fmt.Sprintf(`"densitySteps": 2, "seedOffset": %d,`, i+1), 1)
		benchPostTo(b, h, "/v1/simulate", bodies[i]) // warm
	}
	gomaxprocs := runtime.GOMAXPROCS(0)
	b.SetParallelism((benchConcurrency + gomaxprocs - 1) / gomaxprocs)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for _, body := range bodies {
				benchPostTo(b, h, "/v1/simulate", body)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N*benchSweepPoints)/b.Elapsed().Seconds(), "points/s")
}

func benchPostTo(b *testing.B, h http.Handler, path, body string) {
	b.Helper()
	r := httptest.NewRequest("POST", path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != 200 {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// benchSweep posts one sweep and checks the stream completed (trailer
// line present with zero errors).
func benchSweep(b *testing.B, h http.Handler, body string) {
	b.Helper()
	r := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != 200 {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	out := w.Body.String()
	if !strings.Contains(out, `"done":{"points":16,"ok":16,"errors":0`) {
		b.Fatalf("sweep stream incomplete: %s", out)
	}
}
