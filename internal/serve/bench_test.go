package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cpx/internal/cluster"
)

// benchAllocateBody builds a paper-scale allocation request (20
// components, 40k-core budget) with a salt folded into a component
// name so distinct salts address distinct cache entries.
func benchAllocateBody(salt int) string {
	req := AllocateRequest{Budget: 40_000}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("comp%02d", i)
		if i == 0 {
			name = fmt.Sprintf("comp%02d-s%d", i, salt)
		}
		req.Components = append(req.Components, ComponentSpec{
			Name:     name,
			IsCU:     i%4 == 3,
			MinRanks: 50 + 10*i,
			Curve: &CurveSpec{
				BaseCores: 100,
				BaseTime:  30 + float64(i)*17,
				P50:       1500 + float64(i)*400,
				K:         1.1 + 0.03*float64(i),
			},
		})
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return string(b)
}

func benchPost(b *testing.B, h http.Handler, body string) {
	b.Helper()
	r := httptest.NewRequest("POST", "/v1/allocate", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != 200 {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// BenchmarkServeAllocateUncached measures the full request path with a
// cold cache every iteration: decode, canonicalise, hash, run Alg. 1
// at paper scale, encode.
func BenchmarkServeAllocateUncached(b *testing.B) {
	s := New(Options{Machine: cluster.SmallCluster()})
	defer s.Close()
	h := s.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, h, benchAllocateBody(i))
	}
}

// BenchmarkServeAllocateCached measures the identical request served
// from the content-addressed cache: decode, canonicalise, hash, copy
// the stored artifact.
func BenchmarkServeAllocateCached(b *testing.B) {
	s := New(Options{Machine: cluster.SmallCluster()})
	defer s.Close()
	h := s.Handler()
	body := benchAllocateBody(0)
	benchPost(b, h, body) // populate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, h, body)
	}
}
