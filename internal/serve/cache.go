package serve

import (
	"context"
	"sync"
)

// CacheOutcome says how a request was satisfied, for the X-Cache
// header and the metrics.
type CacheOutcome string

const (
	// OutcomeMiss: this request started the computation.
	OutcomeMiss CacheOutcome = "miss"
	// OutcomeHit: served from a completed artifact.
	OutcomeHit CacheOutcome = "hit"
	// OutcomeJoin: coalesced onto an identical in-flight computation.
	OutcomeJoin CacheOutcome = "join"
)

// job is one in-flight computation with singleflight semantics plus
// reference counting: every request waiting on it holds a ref, and
// when the last waiter abandons it (deadline, disconnect) the job's
// context is cancelled so the simulation's rank goroutines unwind
// instead of computing for nobody.
type job struct {
	done   chan struct{}
	cancel context.CancelFunc
	refs   int
	body   []byte
	err    error
}

// Cache is the content-addressed result store. Keys are cacheKey
// digests of canonicalised request specs; values are the exact
// response bytes first computed for that key. Determinism of the
// underlying model and simulator is what makes this sound: recomputing
// a key would produce the identical bytes, so returning the stored
// artifact is indistinguishable from re-running the job.
//
// Completed artifacts are retained for the process lifetime — the
// mini-app's scenario space is small. A production deployment would
// bound this with an eviction policy; the content addressing would be
// unchanged.
type Cache struct {
	mu   sync.Mutex
	done map[string][]byte
	live map[string]*job
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{done: make(map[string][]byte), live: make(map[string]*job)}
}

// Do returns the artifact for key. A completed artifact is returned
// immediately; an in-flight identical computation is joined; otherwise
// compute is scheduled through submit (the worker pool), and
// ErrQueueFull is returned when the pool has no room. The computation
// runs under its own context, cancelled only when every waiter has
// gone — an individual caller's ctx expiring detaches that caller
// without killing the job for the rest. Errors are never cached: a
// failed or cancelled job is forgotten so the next identical request
// retries.
func (c *Cache) Do(ctx context.Context, key string, submit func(func()) bool, compute func(context.Context) ([]byte, error)) ([]byte, CacheOutcome, error) {
	c.mu.Lock()
	if body, ok := c.done[key]; ok {
		c.mu.Unlock()
		return body, OutcomeHit, nil
	}
	j, joined := c.live[key]
	if joined {
		j.refs++
		c.mu.Unlock()
	} else {
		jobCtx, cancel := context.WithCancel(context.Background())
		j = &job{done: make(chan struct{}), cancel: cancel, refs: 1}
		run := func() {
			body, err := compute(jobCtx)
			c.mu.Lock()
			j.body, j.err = body, err
			if err == nil {
				c.done[key] = body
			}
			delete(c.live, key)
			c.mu.Unlock()
			close(j.done)
			cancel()
		}
		// Registration and submission are atomic under mu: if the pool
		// rejects the job nobody can have joined it, and if it is
		// accepted no concurrent identical request can start a second
		// computation. (run re-takes mu only after compute, so a
		// lightning-fast worker just blocks until we release it.)
		if !submit(run) {
			c.mu.Unlock()
			cancel()
			return nil, OutcomeMiss, ErrQueueFull
		}
		c.live[key] = j
		c.mu.Unlock()
	}
	outcome := OutcomeMiss
	if joined {
		outcome = OutcomeJoin
	}
	select {
	case <-j.done:
		return j.body, outcome, j.err
	case <-ctx.Done():
		c.mu.Lock()
		j.refs--
		last := j.refs == 0
		c.mu.Unlock()
		if last {
			j.cancel()
		}
		return nil, outcome, ctx.Err()
	}
}

// Len reports the number of completed artifacts retained.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}
