package serve

import (
	"container/list"
	"context"
	"sync"
)

// CacheOutcome says how a request was satisfied, for the X-Cache
// header and the metrics.
type CacheOutcome string

const (
	// OutcomeMiss: this request started the computation.
	OutcomeMiss CacheOutcome = "miss"
	// OutcomeHit: served from a completed artifact in memory.
	OutcomeHit CacheOutcome = "hit"
	// OutcomeJoin: coalesced onto an identical in-flight computation.
	OutcomeJoin CacheOutcome = "join"
	// OutcomeDisk: served from the persistent tier (and promoted into
	// memory). Byte-identical to a hit; the distinction only matters for
	// capacity planning.
	OutcomeDisk CacheOutcome = "disk"
)

// defaultCacheMaxBytes bounds the in-memory artifact tier when the
// caller gives no budget: generous for a scenario cache (artifacts are
// a few KiB), small enough that a runaway sweep cannot take the process
// down.
const defaultCacheMaxBytes = 256 << 20

// job is one in-flight computation with singleflight semantics plus
// reference counting: every request waiting on it holds a ref, and
// when the last waiter abandons it (deadline, disconnect) the job's
// context is cancelled so the simulation's rank goroutines unwind
// instead of computing for nobody.
type job struct {
	done   chan struct{}
	cancel context.CancelFunc
	refs   int
	body   []byte
	err    error
}

// entry is one completed artifact in the memory tier.
type entry struct {
	key  string
	body []byte
}

// CacheConfig configures the two-tier result cache.
type CacheConfig struct {
	// MaxBytes bounds the artifact bytes held in memory (<= 0 selects
	// defaultCacheMaxBytes). Least-recently-used artifacts are evicted
	// when an insertion would exceed the budget; an artifact larger than
	// the whole budget is served but never retained.
	MaxBytes int64
	// Disk is the optional persistent tier consulted on a memory miss
	// and written through on every computed artifact. Eviction from
	// memory never touches disk — the persistent tier is the bigger one.
	Disk *DiskCache
}

// Cache is the content-addressed result store. Keys are cacheKey
// digests of canonicalised request specs; values are the exact
// response bytes first computed for that key. Determinism of the
// underlying model and simulator is what makes this sound: recomputing
// a key would produce the identical bytes, so returning the stored
// artifact is indistinguishable from re-running the job.
//
// The memory tier is a byte-budgeted LRU (the unbounded growth the old
// implementation admitted to would sink the server under sweep load);
// under it sits an optional disk tier whose artifacts survive process
// restarts. Content addressing makes every cross-tier race benign:
// any two writers of one key write identical bytes.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*list.Element // of *entry
	lru      *list.List               // front = most recently used
	live     map[string]*job
	disk     *DiskCache

	evictions uint64
}

// NewCache returns an empty cache with the given bounds and tiers.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = defaultCacheMaxBytes
	}
	return &Cache{
		maxBytes: cfg.MaxBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		live:     make(map[string]*job),
		disk:     cfg.Disk,
	}
}

// lookupLocked returns the memory-tier artifact and refreshes its LRU
// position.
func (c *Cache) lookupLocked(key string) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*entry).body, true
}

// insertLocked stores a completed artifact in the memory tier, evicting
// from the LRU tail until it fits. An artifact that alone exceeds the
// budget is not retained (the disk tier, when present, still has it).
func (c *Cache) insertLocked(key string, body []byte) {
	if _, ok := c.entries[key]; ok {
		return // identical bytes already present (content-addressed)
	}
	if int64(len(body)) > c.maxBytes {
		return
	}
	for c.bytes+int64(len(body)) > c.maxBytes {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		ev := tail.Value.(*entry)
		c.lru.Remove(tail)
		delete(c.entries, ev.key)
		c.bytes -= int64(len(ev.body))
		c.evictions++
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, body: body})
	c.bytes += int64(len(body))
}

// Peek returns the memory-tier artifact for key without consulting the
// disk tier or registering any computation. The shard front-end uses it
// to serve locally-warm keys before forwarding.
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookupLocked(key)
}

// Do returns the artifact for key. A memory-tier artifact is returned
// immediately; an in-flight identical computation is joined; a
// disk-tier artifact is verified, promoted into memory and returned;
// otherwise compute is scheduled through submit (the worker pool), and
// ErrQueueFull is returned when the pool has no room. The computation
// runs under its own context, cancelled only when every waiter has
// gone — an individual caller's ctx expiring detaches that caller
// without killing the job for the rest. Errors are never cached: a
// failed or cancelled job is forgotten so the next identical request
// retries.
func (c *Cache) Do(ctx context.Context, key string, submit func(func()) bool, compute func(context.Context) ([]byte, error)) ([]byte, CacheOutcome, error) {
	c.mu.Lock()
	if body, ok := c.lookupLocked(key); ok {
		c.mu.Unlock()
		return body, OutcomeHit, nil
	}
	if j, joined := c.live[key]; joined {
		j.refs++
		c.mu.Unlock()
		return c.wait(ctx, j, OutcomeJoin)
	}
	c.mu.Unlock()

	// Disk tier, outside the lock: reads are sha256-verified file IO and
	// must not serialise the whole cache. Two concurrent readers of one
	// key both succeed with identical bytes — content addressing makes
	// the race benign.
	if c.disk != nil {
		if body, ok := c.disk.Get(key); ok {
			c.mu.Lock()
			c.insertLocked(key, body)
			c.mu.Unlock()
			return body, OutcomeDisk, nil
		}
	}

	c.mu.Lock()
	// Re-check under the lock: another request may have completed or
	// registered this key while we were probing the disk.
	if body, ok := c.lookupLocked(key); ok {
		c.mu.Unlock()
		return body, OutcomeHit, nil
	}
	if j, joined := c.live[key]; joined {
		j.refs++
		c.mu.Unlock()
		return c.wait(ctx, j, OutcomeJoin)
	}
	jobCtx, cancel := context.WithCancel(context.Background())
	j := &job{done: make(chan struct{}), cancel: cancel, refs: 1}
	run := func() {
		body, err := compute(jobCtx)
		if err == nil && c.disk != nil {
			// Write through before announcing completion so a restart
			// immediately after a response finds the artifact on disk.
			// Best-effort: a failed write only costs a recomputation.
			c.disk.Put(key, body)
		}
		c.mu.Lock()
		j.body, j.err = body, err
		if err == nil {
			c.insertLocked(key, body)
		}
		delete(c.live, key)
		c.mu.Unlock()
		close(j.done)
		cancel()
	}
	// Registration and submission are atomic under mu: if the pool
	// rejects the job nobody can have joined it, and if it is
	// accepted no concurrent identical request can start a second
	// computation. (run re-takes mu only after compute, so a
	// lightning-fast worker just blocks until we release it.)
	if !submit(run) {
		c.mu.Unlock()
		cancel()
		return nil, OutcomeMiss, ErrQueueFull
	}
	c.live[key] = j
	c.mu.Unlock()
	return c.wait(ctx, j, OutcomeMiss)
}

// wait blocks until the joined/started job completes or the caller's
// ctx expires; the last abandoning waiter cancels the job.
func (c *Cache) wait(ctx context.Context, j *job, outcome CacheOutcome) ([]byte, CacheOutcome, error) {
	select {
	case <-j.done:
		return j.body, outcome, j.err
	case <-ctx.Done():
		c.mu.Lock()
		j.refs--
		last := j.refs == 0
		c.mu.Unlock()
		if last {
			j.cancel()
		}
		return nil, outcome, ctx.Err()
	}
}

// Len reports the number of completed artifacts retained in memory.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes reports the memory-tier artifact bytes currently retained.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// MaxBytes reports the memory-tier byte budget.
func (c *Cache) MaxBytes() int64 { return c.maxBytes }

// Evictions reports how many artifacts the LRU bound has evicted.
func (c *Cache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Disk returns the persistent tier (nil when disabled).
func (c *Cache) Disk() *DiskCache { return c.disk }
