package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// cacheSchema versions the cache key derivation: bump it whenever a
// spec type, a response schema, or the underlying model changes
// meaning, so stale artifacts from an older process image can never be
// confused with current ones (keys are per-process today, but the
// version also guards refactors within a release).
const cacheSchema = "v1"

// decodeStrict parses a request body into spec, rejecting unknown
// fields and trailing garbage. Strictness is what makes
// canonicalisation sound: two bodies that differ in anything the spec
// does not capture are rejected rather than silently mapped to the
// same key.
func decodeStrict(r io.Reader, spec any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		return err
	}
	// A second token means trailing input after the JSON value.
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// canonicalize returns the canonical byte form of a decoded spec: the
// deterministic encoding/json serialisation of the typed value. Field
// order is the struct declaration order, numbers are re-formatted
// (1e4 and 10000 collapse), whitespace and input key order vanish, and
// omitted fields take their zero value — so any two request bodies
// that decode to the same spec share one canonical form.
func canonicalize(spec any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(spec); err != nil {
		return nil, err
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n")), nil
}

// cacheKey derives the content address of a request: endpoint plus the
// canonical spec bytes, hashed. Because the virtual-time runtime is
// deterministic, equal keys imply bitwise-equal response artifacts,
// which is what lets the cache return stored bytes verbatim.
func cacheKey(endpoint string, canonical []byte) string {
	h := sha256.New()
	h.Write([]byte(cacheSchema))
	h.Write([]byte{'\n'})
	h.Write([]byte(endpoint))
	h.Write([]byte{'\n'})
	h.Write(canonical)
	return hex.EncodeToString(h.Sum(nil))
}
