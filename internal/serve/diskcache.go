package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// diskMagic versions the on-disk artifact framing. An artifact file is
//
//	cpxdisk1 <sha256-of-body-hex> <body-len>\n<body>
//
// so a reader can verify the payload without trusting the filename, and
// a format change can never be misparsed as the old one.
const diskMagic = "cpxdisk1"

// DiskCache is the persistent artifact tier under the in-memory result
// cache: content-addressed files keyed by the request's cache key, one
// artifact per file, fanned out over 256 subdirectories by the key's
// first byte. Determinism of the model and the simulator is what makes
// the tier sound across restarts: recomputing a key would reproduce the
// identical bytes, so an artifact written by any past process of the
// same cacheSchema is as good as a fresh computation.
//
// Writes go to a temp file in the root and are published with an atomic
// rename, so readers never observe a partial artifact — at worst they
// miss and recompute. Reads verify the embedded sha256 before returning;
// a corrupt or truncated file (torn write on crash, bit rot) is deleted
// and treated as a miss. Both properties together make cross-process
// races benign: concurrent writers of one key write byte-identical
// content, and the loser's rename simply replaces an equal file.
type DiskCache struct {
	root string

	puts    atomic.Uint64
	putErrs atomic.Uint64
	hits    atomic.Uint64
	rejects atomic.Uint64 // corrupt artifacts deleted on read
}

// NewDiskCache opens (creating if needed) a disk tier rooted at dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: disk cache dir is empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: disk cache root: %w", err)
	}
	return &DiskCache{root: dir}, nil
}

// Root returns the cache directory.
func (d *DiskCache) Root() string { return d.root }

// path maps a cache key (a hex sha256 digest) to its artifact file.
func (d *DiskCache) path(key string) (string, error) {
	if len(key) < 4 || !isHex(key) {
		return "", fmt.Errorf("serve: malformed cache key %q", key)
	}
	return filepath.Join(d.root, key[:2], key[2:]), nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// Get returns the verified artifact for key, or ok=false on a miss. A
// file that fails framing or digest verification is removed so the next
// computation can replace it.
func (d *DiskCache) Get(key string) ([]byte, bool) {
	p, err := d.path(key)
	if err != nil {
		return nil, false
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	body, ok := decodeArtifact(raw)
	if !ok {
		d.rejects.Add(1)
		os.Remove(p)
		return nil, false
	}
	d.hits.Add(1)
	return body, true
}

// decodeArtifact parses and verifies the framed file content.
func decodeArtifact(raw []byte) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	var magic, sum string
	var n int
	if _, err := fmt.Sscanf(string(raw[:nl]), "%s %s %d", &magic, &sum, &n); err != nil {
		return nil, false
	}
	body := raw[nl+1:]
	if magic != diskMagic || n != len(body) {
		return nil, false
	}
	got := sha256.Sum256(body)
	if hex.EncodeToString(got[:]) != sum {
		return nil, false
	}
	return body, true
}

// Put stores an artifact: framed with its own sha256, written to a temp
// file, published by atomic rename. Errors are returned for accounting
// but the caller treats the tier as best-effort — a failed Put only
// costs a future recomputation.
func (d *DiskCache) Put(key string, body []byte) error {
	err := d.put(key, body)
	if err != nil {
		d.putErrs.Add(1)
	} else {
		d.puts.Add(1)
	}
	return err
}

func (d *DiskCache) put(key string, body []byte) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	sum := sha256.Sum256(body)
	f, err := os.CreateTemp(d.root, "put-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := fmt.Fprintf(f, "%s %s %d\n", diskMagic, hex.EncodeToString(sum[:]), len(body))
	if werr == nil {
		_, werr = f.Write(body)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Stats reports lifetime counters: artifacts written, write failures,
// verified reads and corrupt files rejected.
func (d *DiskCache) Stats() (puts, putErrs, hits, rejects uint64) {
	return d.puts.Load(), d.putErrs.Load(), d.hits.Load(), d.rejects.Load()
}
