package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	view JobView
}

// readSSE parses a text/event-stream body into events until EOF.
func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.view); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		}
	}
	return events
}

// slowSimBody is large enough that the simulation runs for an
// observable stretch of host time while crossing many virtual-time
// sampling boundaries.
const slowSimBody = `{
  "densitySteps": 40,
  "rotationPerStep": 0.001,
  "instances": [
    {"name": "row1", "kind": "mgcfd", "meshCells": 262144, "ranks": 4, "seed": 1},
    {"name": "row2", "kind": "mgcfd", "meshCells": 262144, "ranks": 4, "seed": 2}
  ],
  "units": [
    {"name": "cu", "a": 0, "b": 1, "kind": "sliding", "points": 2000, "ranks": 2, "search": "tree"}
  ]
}`

// TestJobObservableEndToEnd drives the full live-telemetry path: an
// in-flight /v1/simulate job must appear in GET /v1/jobs, stream
// monotone virtual-time progress over SSE before it completes, and
// land in the registry and Prometheus exposition as done.
func TestJobObservableEndToEnd(t *testing.T) {
	_, ts := testServer(t, Options{ProgressInterval: 1e-4})

	type result struct {
		resp *http.Response
		body []byte
	}
	doneCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(slowSimBody))
		if err != nil {
			t.Error(err)
			doneCh <- result{}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		doneCh <- result{resp, b}
	}()

	// The job must become listable while in flight.
	var jobID string
	deadline := time.Now().Add(10 * time.Second)
	for jobID == "" {
		if time.Now().After(deadline) {
			t.Fatal("job never appeared in GET /v1/jobs")
		}
		resp, err := http.Get(ts.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Jobs []JobView `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, jv := range list.Jobs {
			if jv.Endpoint == "/v1/simulate" {
				jobID = jv.ID
			}
		}
		if jobID == "" {
			time.Sleep(time.Millisecond)
		}
	}

	// Stream its events until the terminal "done" event.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	events := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("last event %q, want done", last.name)
	}
	progressed := 0
	prevVT := -1.0
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Fatalf("unexpected event %q before done", ev.name)
		}
		if ev.view.VirtualTime < prevVT {
			t.Fatalf("virtual time regressed: %v after %v", ev.view.VirtualTime, prevVT)
		}
		prevVT = ev.view.VirtualTime
		if ev.view.VirtualTime > 0 && ev.view.State == JobRunning {
			progressed++
		}
	}
	if progressed == 0 {
		t.Errorf("no progress event with positive virtual time arrived before completion (%d events)", len(events))
	}
	if last.view.State != JobDone {
		t.Errorf("terminal state %q, want done", last.view.State)
	}
	if last.view.VirtualTime <= 0 {
		t.Errorf("terminal virtual time %v, want > 0", last.view.VirtualTime)
	}

	res := <-doneCh
	if res.resp == nil {
		t.Fatal("simulate request failed")
	}
	if res.resp.StatusCode != 200 {
		t.Fatalf("simulate: %d %s", res.resp.StatusCode, res.body)
	}
	if got := res.resp.Header.Get("X-Job-ID"); got != jobID {
		t.Errorf("X-Job-ID = %q, want %q", got, jobID)
	}

	// Completion must be visible in the registry...
	resp, err = http.Get(ts.URL + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jv.State != JobDone || jv.Cache != OutcomeMiss || jv.Code != 200 {
		t.Errorf("registry view after completion: %+v", jv)
	}
	// ...and in the Prometheus exposition.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`cpxserve_jobs_finished_total{state="done"} 1`,
		"cpxserve_jobs_active 0",
		"cpxserve_jobs_retained 1",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// An unknown job ID answers 404 with a JSON error body.
	resp, err = http.Get(ts.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", resp.StatusCode)
	}
}

// TestErrorBodiesCarryJobID: every JSON error body — including the
// backpressure 429 — names the job ID so the failure correlates with
// the registry, logs and metrics.
func TestErrorBodiesCarryJobID(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 1, QueueLen: 1})

	type errBody struct {
		Error  string `json:"error"`
		JobID  string `json:"jobId"`
		Status int    `json:"status"`
	}
	decode := func(t *testing.T, b []byte) errBody {
		t.Helper()
		var eb errBody
		if err := json.Unmarshal(b, &eb); err != nil {
			t.Fatalf("error body is not JSON: %q (%v)", b, err)
		}
		return eb
	}

	// 400: malformed request.
	resp, body := postJSON(t, ts.URL+"/v1/allocate", `{"budget": `)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	eb := decode(t, body)
	if eb.JobID == "" || eb.Error == "" || eb.Status != http.StatusBadRequest {
		t.Errorf("400 body incomplete: %+v", eb)
	}
	if hdr := resp.Header.Get("X-Job-ID"); hdr != eb.JobID {
		t.Errorf("X-Job-ID header %q != body jobId %q", hdr, eb.JobID)
	}
	if jb := s.Registry().Get(eb.JobID); jb == nil {
		t.Errorf("failed job %s not in registry", eb.JobID)
	} else if v := jb.View(); v.State != JobFailed {
		t.Errorf("failed job state %q, want failed", v.State)
	}

	// 429: wedge the worker and fill the queue, then submit.
	release := make(chan struct{})
	var wedge sync.WaitGroup
	wedge.Add(1)
	if !s.pool.TrySubmit(func() { wedge.Done(); <-release }) {
		t.Fatal("could not wedge the worker")
	}
	wedge.Wait()
	if !s.pool.TrySubmit(func() {}) {
		t.Fatal("could not fill the queue")
	}
	resp, body = postJSON(t, ts.URL+"/v1/allocate", allocBody)
	close(release)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	eb = decode(t, body)
	if eb.JobID == "" || eb.Status != http.StatusTooManyRequests {
		t.Errorf("429 body incomplete: %+v", eb)
	}
	if jb := s.Registry().Get(eb.JobID); jb == nil {
		t.Errorf("rejected job %s not in registry", eb.JobID)
	} else if v := jb.View(); v.State != JobRejected {
		t.Errorf("rejected job state %q, want rejected", v.State)
	}
}

// TestPrometheusExpositionConformance parses the scrape line-wise and
// enforces the text-format invariants: HELP and TYPE precede every
// family's samples, no family is declared twice, histogram buckets are
// cumulative and end in a +Inf bucket equal to the count.
func TestPrometheusExpositionConformance(t *testing.T) {
	_, ts := testServer(t, Options{})
	// Populate: successes, a cache hit, and a failure.
	postJSON(t, ts.URL+"/v1/allocate", allocBody)
	postJSON(t, ts.URL+"/v1/allocate", allocBody)
	postJSON(t, ts.URL+"/v1/allocate", `{"budget": `)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	family := func(sample string) string {
		name := sample
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suffix)
		}
		return name
	}

	helped := map[string]bool{}
	typed := map[string]string{}
	type bucketKey struct{ family, labels string }
	lastBucket := map[bucketKey]float64{}
	infSeen := map[bucketKey]bool{}
	counts := map[bucketKey]float64{}

	for _, line := range strings.Split(string(b), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)[2]
			if helped[f] {
				t.Errorf("duplicate HELP for family %s", f)
			}
			helped[f] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			f, typ := fields[2], fields[3]
			if _, dup := typed[f]; dup {
				t.Errorf("duplicate TYPE for family %s", f)
			}
			if !helped[f] {
				t.Errorf("TYPE for %s precedes its HELP", f)
			}
			typed[f] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unrecognised comment line %q", line)
			continue
		}
		// Sample line.
		fam := family(line)
		if !helped[fam] || typed[fam] == "" {
			t.Errorf("sample %q has no preceding HELP+TYPE for family %s", line, fam)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("sample %q value: %v", line, err)
		}
		if (typed[fam] == "counter" || typed[fam] == "histogram") && val < 0 {
			t.Errorf("negative %s sample %q", typed[fam], line)
		}
		if typed[fam] != "histogram" {
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		labels := line[len(name):sp]
		switch {
		case strings.HasSuffix(name, "_bucket"):
			// Strip the le label: buckets of one series share the rest.
			le := ""
			rest := labels
			if i := strings.Index(labels, `le="`); i >= 0 {
				j := strings.IndexByte(labels[i+4:], '"')
				le = labels[i+4 : i+4+j]
				rest = strings.ReplaceAll(labels[:i]+labels[i+4+j+1:], ",}", "}")
			}
			k := bucketKey{fam, rest}
			if val < lastBucket[k] {
				t.Errorf("histogram %s buckets not cumulative at le=%q: %v < %v", fam, le, val, lastBucket[k])
			}
			lastBucket[k] = val
			if le == "+Inf" {
				infSeen[k] = true
			}
		case strings.HasSuffix(name, "_count"):
			counts[bucketKey{fam, labels}] = val
		}
	}
	if len(typed) == 0 {
		t.Fatal("no families scraped")
	}
	for k, n := range counts {
		if !infSeen[k] {
			t.Errorf("histogram series %s%s has no +Inf bucket", k.family, k.labels)
		}
		if lastBucket[k] != n {
			t.Errorf("histogram series %s%s: +Inf bucket %v != count %v", k.family, k.labels, lastBucket[k], n)
		}
	}
	// The job-registry families must be present.
	for _, fam := range []string{"cpxserve_jobs_active", "cpxserve_jobs_retained", "cpxserve_jobs_finished_total"} {
		if typed[fam] == "" {
			t.Errorf("missing family %s", fam)
		}
	}
}
