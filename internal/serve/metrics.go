package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"cpx/internal/order"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning a
// cached lookup (~µs) to a long simulation job.
var latencyBuckets = [numBuckets]float64{
	0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60,
}

const numBuckets = 10

// histogram is a fixed-bucket latency histogram (cumulative counts at
// exposition time, per Prometheus convention).
type histogram struct {
	counts [numBuckets + 1]uint64 // last: +Inf overflow
	sum    float64
	total  uint64
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets[:], seconds)
	h.counts[i]++
	h.sum += seconds
	h.total++
}

// reqKey labels one requests_total series.
type reqKey struct {
	endpoint string
	code     int
}

// Metrics aggregates the service counters and renders them in the
// Prometheus text exposition format — hand-rolled, because the module
// is dependency-free by policy. All output is deterministically
// ordered (sorted label sets) so scrapes are diffable.
type Metrics struct {
	mu        sync.Mutex
	requests  map[reqKey]uint64
	latencies map[string]*histogram
	hits      uint64
	misses    uint64
	joins     uint64
	canceled  uint64
	rejected  uint64

	queueDepth    func() int
	queueCapacity func() int
	cacheLen      func() int
	registry      *Registry
}

// NewMetrics returns a Metrics wired to the given gauges.
func NewMetrics(queueDepth, queueCapacity, cacheLen func() int) *Metrics {
	return &Metrics{
		requests:      make(map[reqKey]uint64),
		latencies:     make(map[string]*histogram),
		queueDepth:    queueDepth,
		queueCapacity: queueCapacity,
		cacheLen:      cacheLen,
	}
}

// AttachRegistry wires the job-registry gauges into the exposition.
func (m *Metrics) AttachRegistry(r *Registry) {
	m.mu.Lock()
	m.registry = r
	m.mu.Unlock()
}

// Observe records one finished request.
func (m *Metrics) Observe(endpoint string, code int, seconds float64, outcome CacheOutcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqKey{endpoint, code}]++
	h := m.latencies[endpoint]
	if h == nil {
		h = &histogram{}
		m.latencies[endpoint] = h
	}
	h.observe(seconds)
	switch outcome {
	case OutcomeHit:
		m.hits++
	case OutcomeMiss:
		m.misses++
	case OutcomeJoin:
		m.joins++
	}
	switch code {
	case 429:
		m.rejected++
	case 499, 504:
		m.canceled++
	}
}

// WritePrometheus renders the Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintln(w, "# HELP cpxserve_requests_total Finished HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE cpxserve_requests_total counter")
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "cpxserve_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}
	fmt.Fprintln(w, "# HELP cpxserve_request_duration_seconds Request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE cpxserve_request_duration_seconds histogram")
	for _, endpoint := range order.SortedKeys(m.latencies) {
		h := m.latencies[endpoint]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "cpxserve_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", endpoint, ub, cum)
		}
		fmt.Fprintf(w, "cpxserve_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", endpoint, h.total)
		fmt.Fprintf(w, "cpxserve_request_duration_seconds_sum{endpoint=%q} %g\n", endpoint, h.sum)
		fmt.Fprintf(w, "cpxserve_request_duration_seconds_count{endpoint=%q} %d\n", endpoint, h.total)
	}
	fmt.Fprintln(w, "# HELP cpxserve_cache_hits_total Requests served from a completed artifact.")
	fmt.Fprintln(w, "# TYPE cpxserve_cache_hits_total counter")
	fmt.Fprintf(w, "cpxserve_cache_hits_total %d\n", m.hits)
	fmt.Fprintln(w, "# HELP cpxserve_cache_misses_total Requests that started a new computation.")
	fmt.Fprintln(w, "# TYPE cpxserve_cache_misses_total counter")
	fmt.Fprintf(w, "cpxserve_cache_misses_total %d\n", m.misses)
	fmt.Fprintln(w, "# HELP cpxserve_cache_joins_total Requests coalesced onto an identical in-flight job.")
	fmt.Fprintln(w, "# TYPE cpxserve_cache_joins_total counter")
	fmt.Fprintf(w, "cpxserve_cache_joins_total %d\n", m.joins)
	fmt.Fprintln(w, "# HELP cpxserve_rejected_total Requests rejected with 429 (queue full).")
	fmt.Fprintln(w, "# TYPE cpxserve_rejected_total counter")
	fmt.Fprintf(w, "cpxserve_rejected_total %d\n", m.rejected)
	fmt.Fprintln(w, "# HELP cpxserve_canceled_total Requests that timed out or were abandoned by the client.")
	fmt.Fprintln(w, "# TYPE cpxserve_canceled_total counter")
	fmt.Fprintf(w, "cpxserve_canceled_total %d\n", m.canceled)
	fmt.Fprintln(w, "# HELP cpxserve_queue_depth Jobs admitted but not yet running.")
	fmt.Fprintln(w, "# TYPE cpxserve_queue_depth gauge")
	fmt.Fprintf(w, "cpxserve_queue_depth %d\n", m.queueDepth())
	fmt.Fprintln(w, "# HELP cpxserve_queue_capacity Queue bound.")
	fmt.Fprintln(w, "# TYPE cpxserve_queue_capacity gauge")
	fmt.Fprintf(w, "cpxserve_queue_capacity %d\n", m.queueCapacity())
	fmt.Fprintln(w, "# HELP cpxserve_cache_entries Completed artifacts retained.")
	fmt.Fprintln(w, "# TYPE cpxserve_cache_entries gauge")
	fmt.Fprintf(w, "cpxserve_cache_entries %d\n", m.cacheLen())
	if m.registry != nil {
		fmt.Fprintln(w, "# HELP cpxserve_jobs_active Jobs queued or running.")
		fmt.Fprintln(w, "# TYPE cpxserve_jobs_active gauge")
		fmt.Fprintf(w, "cpxserve_jobs_active %d\n", m.registry.Active())
		fmt.Fprintln(w, "# HELP cpxserve_jobs_retained Registry entries retained for /v1/jobs.")
		fmt.Fprintln(w, "# TYPE cpxserve_jobs_retained gauge")
		fmt.Fprintf(w, "cpxserve_jobs_retained %d\n", m.registry.Retained())
		fmt.Fprintln(w, "# HELP cpxserve_jobs_finished_total Jobs finished by terminal state.")
		fmt.Fprintln(w, "# TYPE cpxserve_jobs_finished_total counter")
		byState := m.registry.FinishedByState()
		for _, state := range order.SortedKeys(byState) {
			fmt.Fprintf(w, "cpxserve_jobs_finished_total{state=%q} %d\n", state, byState[state])
		}
	}
}
