package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"cpx/internal/order"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning a
// cached lookup (~µs) to a long simulation job.
var latencyBuckets = [numBuckets]float64{
	0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60,
}

const numBuckets = 10

// histogram is a fixed-bucket latency histogram (cumulative counts at
// exposition time, per Prometheus convention).
type histogram struct {
	counts [numBuckets + 1]uint64 // last: +Inf overflow
	sum    float64
	total  uint64
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets[:], seconds)
	h.counts[i]++
	h.sum += seconds
	h.total++
}

// reqKey labels one requests_total series.
type reqKey struct {
	endpoint string
	code     int
}

// Metrics aggregates the service counters and renders them in the
// Prometheus text exposition format — hand-rolled, because the module
// is dependency-free by policy. All output is deterministically
// ordered (sorted label sets) so scrapes are diffable.
type Metrics struct {
	mu          sync.Mutex
	requests    map[reqKey]uint64
	latencies   map[string]*histogram
	hits        uint64
	misses      uint64
	joins       uint64
	diskHits    uint64
	canceled    uint64
	rejected    uint64
	sweepPoints uint64

	// jobEWMA is the exponentially-weighted moving average of computed
	// (cache-miss) job latency in seconds; the Retry-After hint scales
	// with it so batch clients back off proportionally to how long the
	// queue actually takes to drain.
	jobEWMA float64

	queueDepth    func() int
	queueCapacity func() int
	cacheLen      func() int
	registry      *Registry
	cache         *Cache
}

// NewMetrics returns a Metrics wired to the given gauges.
func NewMetrics(queueDepth, queueCapacity, cacheLen func() int) *Metrics {
	return &Metrics{
		requests:      make(map[reqKey]uint64),
		latencies:     make(map[string]*histogram),
		queueDepth:    queueDepth,
		queueCapacity: queueCapacity,
		cacheLen:      cacheLen,
	}
}

// AttachRegistry wires the job-registry gauges into the exposition.
func (m *Metrics) AttachRegistry(r *Registry) {
	m.mu.Lock()
	m.registry = r
	m.mu.Unlock()
}

// AttachCache wires the cache byte/eviction gauges into the exposition.
func (m *Metrics) AttachCache(c *Cache) {
	m.mu.Lock()
	m.cache = c
	m.mu.Unlock()
}

// ewmaAlpha weights the newest computed-job latency observation.
const ewmaAlpha = 0.2

// retryAfterMaxSeconds caps the backoff hint so a momentary latency
// spike cannot tell clients to go away for an hour.
const retryAfterMaxSeconds = 300

// Observe records one finished request.
func (m *Metrics) Observe(endpoint string, code int, seconds float64, outcome CacheOutcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqKey{endpoint, code}]++
	h := m.latencies[endpoint]
	if h == nil {
		h = &histogram{}
		m.latencies[endpoint] = h
	}
	h.observe(seconds)
	m.countOutcomeLocked(outcome)
	if outcome == OutcomeMiss && code == 200 {
		m.observeJobTimeLocked(seconds)
	}
	switch code {
	case 429:
		m.rejected++
	case 499, 504:
		m.canceled++
	}
}

// ObservePoint records one sweep point's cache disposition. Points are
// not HTTP requests (the whole sweep is one), but their hit/join/miss
// accounting must land in the same counters dedup tests and dashboards
// read.
func (m *Metrics) ObservePoint(outcome CacheOutcome) {
	m.mu.Lock()
	m.sweepPoints++
	m.countOutcomeLocked(outcome)
	m.mu.Unlock()
}

func (m *Metrics) countOutcomeLocked(outcome CacheOutcome) {
	switch outcome {
	case OutcomeHit:
		m.hits++
	case OutcomeMiss:
		m.misses++
	case OutcomeJoin:
		m.joins++
	case OutcomeDisk:
		m.diskHits++
	}
}

func (m *Metrics) observeJobTimeLocked(seconds float64) {
	if seconds <= 0 {
		return
	}
	if m.jobEWMA == 0 {
		m.jobEWMA = seconds
		return
	}
	m.jobEWMA = ewmaAlpha*seconds + (1-ewmaAlpha)*m.jobEWMA
}

// ObserveJobTime feeds one computed-job latency into the EWMA (exposed
// for tests; the request path feeds it through Observe).
func (m *Metrics) ObserveJobTime(seconds float64) {
	m.mu.Lock()
	m.observeJobTimeLocked(seconds)
	m.mu.Unlock()
}

// JobEWMA returns the current computed-job latency estimate in seconds.
func (m *Metrics) JobEWMA() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobEWMA
}

// RetryAfterSeconds derives the 429 backoff hint from the queue state:
// a queue of depth jobs drains in about depth/workers EWMA periods, and
// the retrying client's own job takes one more. With no latency
// estimate yet the hint is the minimal 1s.
func (m *Metrics) RetryAfterSeconds(depth, workers int) int {
	m.mu.Lock()
	e := m.jobEWMA
	m.mu.Unlock()
	if e <= 0 {
		return 1
	}
	if workers < 1 {
		workers = 1
	}
	wait := e * (float64(depth)/float64(workers) + 1)
	secs := int(math.Ceil(wait))
	if secs < 1 {
		secs = 1
	}
	if secs > retryAfterMaxSeconds {
		secs = retryAfterMaxSeconds
	}
	return secs
}

// WritePrometheus renders the Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintln(w, "# HELP cpxserve_requests_total Finished HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE cpxserve_requests_total counter")
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "cpxserve_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}
	fmt.Fprintln(w, "# HELP cpxserve_request_duration_seconds Request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE cpxserve_request_duration_seconds histogram")
	for _, endpoint := range order.SortedKeys(m.latencies) {
		h := m.latencies[endpoint]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "cpxserve_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", endpoint, ub, cum)
		}
		fmt.Fprintf(w, "cpxserve_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", endpoint, h.total)
		fmt.Fprintf(w, "cpxserve_request_duration_seconds_sum{endpoint=%q} %g\n", endpoint, h.sum)
		fmt.Fprintf(w, "cpxserve_request_duration_seconds_count{endpoint=%q} %d\n", endpoint, h.total)
	}
	fmt.Fprintln(w, "# HELP cpxserve_cache_hits_total Requests served from a completed artifact.")
	fmt.Fprintln(w, "# TYPE cpxserve_cache_hits_total counter")
	fmt.Fprintf(w, "cpxserve_cache_hits_total %d\n", m.hits)
	fmt.Fprintln(w, "# HELP cpxserve_cache_misses_total Requests that started a new computation.")
	fmt.Fprintln(w, "# TYPE cpxserve_cache_misses_total counter")
	fmt.Fprintf(w, "cpxserve_cache_misses_total %d\n", m.misses)
	fmt.Fprintln(w, "# HELP cpxserve_cache_joins_total Requests coalesced onto an identical in-flight job.")
	fmt.Fprintln(w, "# TYPE cpxserve_cache_joins_total counter")
	fmt.Fprintf(w, "cpxserve_cache_joins_total %d\n", m.joins)
	fmt.Fprintln(w, "# HELP cpxserve_cache_disk_hits_total Requests served from the persistent disk tier.")
	fmt.Fprintln(w, "# TYPE cpxserve_cache_disk_hits_total counter")
	fmt.Fprintf(w, "cpxserve_cache_disk_hits_total %d\n", m.diskHits)
	fmt.Fprintln(w, "# HELP cpxserve_sweep_points_total Sweep grid points processed (any cache disposition).")
	fmt.Fprintln(w, "# TYPE cpxserve_sweep_points_total counter")
	fmt.Fprintf(w, "cpxserve_sweep_points_total %d\n", m.sweepPoints)
	fmt.Fprintln(w, "# HELP cpxserve_rejected_total Requests rejected with 429 (queue full).")
	fmt.Fprintln(w, "# TYPE cpxserve_rejected_total counter")
	fmt.Fprintf(w, "cpxserve_rejected_total %d\n", m.rejected)
	fmt.Fprintln(w, "# HELP cpxserve_canceled_total Requests that timed out or were abandoned by the client.")
	fmt.Fprintln(w, "# TYPE cpxserve_canceled_total counter")
	fmt.Fprintf(w, "cpxserve_canceled_total %d\n", m.canceled)
	fmt.Fprintln(w, "# HELP cpxserve_queue_depth Jobs admitted but not yet running.")
	fmt.Fprintln(w, "# TYPE cpxserve_queue_depth gauge")
	fmt.Fprintf(w, "cpxserve_queue_depth %d\n", m.queueDepth())
	fmt.Fprintln(w, "# HELP cpxserve_queue_capacity Queue bound.")
	fmt.Fprintln(w, "# TYPE cpxserve_queue_capacity gauge")
	fmt.Fprintf(w, "cpxserve_queue_capacity %d\n", m.queueCapacity())
	fmt.Fprintln(w, "# HELP cpxserve_cache_entries Completed artifacts retained in memory.")
	fmt.Fprintln(w, "# TYPE cpxserve_cache_entries gauge")
	fmt.Fprintf(w, "cpxserve_cache_entries %d\n", m.cacheLen())
	if m.cache != nil {
		fmt.Fprintln(w, "# HELP cpxserve_cache_bytes Artifact bytes retained in the memory tier.")
		fmt.Fprintln(w, "# TYPE cpxserve_cache_bytes gauge")
		fmt.Fprintf(w, "cpxserve_cache_bytes %d\n", m.cache.Bytes())
		fmt.Fprintln(w, "# HELP cpxserve_cache_max_bytes Memory-tier byte budget.")
		fmt.Fprintln(w, "# TYPE cpxserve_cache_max_bytes gauge")
		fmt.Fprintf(w, "cpxserve_cache_max_bytes %d\n", m.cache.MaxBytes())
		fmt.Fprintln(w, "# HELP cpxserve_cache_evictions_total Artifacts evicted by the memory-tier LRU bound.")
		fmt.Fprintln(w, "# TYPE cpxserve_cache_evictions_total counter")
		fmt.Fprintf(w, "cpxserve_cache_evictions_total %d\n", m.cache.Evictions())
		if d := m.cache.Disk(); d != nil {
			puts, putErrs, hits, rejects := d.Stats()
			fmt.Fprintln(w, "# HELP cpxserve_disk_artifacts_written_total Artifacts published to the disk tier.")
			fmt.Fprintln(w, "# TYPE cpxserve_disk_artifacts_written_total counter")
			fmt.Fprintf(w, "cpxserve_disk_artifacts_written_total %d\n", puts)
			fmt.Fprintln(w, "# HELP cpxserve_disk_write_errors_total Failed disk-tier writes (best-effort; costs a recomputation).")
			fmt.Fprintln(w, "# TYPE cpxserve_disk_write_errors_total counter")
			fmt.Fprintf(w, "cpxserve_disk_write_errors_total %d\n", putErrs)
			fmt.Fprintln(w, "# HELP cpxserve_disk_reads_verified_total Disk-tier reads that passed sha256 verification.")
			fmt.Fprintln(w, "# TYPE cpxserve_disk_reads_verified_total counter")
			fmt.Fprintf(w, "cpxserve_disk_reads_verified_total %d\n", hits)
			fmt.Fprintln(w, "# HELP cpxserve_disk_rejects_total Corrupt disk artifacts rejected and deleted on read.")
			fmt.Fprintln(w, "# TYPE cpxserve_disk_rejects_total counter")
			fmt.Fprintf(w, "cpxserve_disk_rejects_total %d\n", rejects)
		}
	}
	if m.registry != nil {
		fmt.Fprintln(w, "# HELP cpxserve_jobs_active Jobs queued or running.")
		fmt.Fprintln(w, "# TYPE cpxserve_jobs_active gauge")
		fmt.Fprintf(w, "cpxserve_jobs_active %d\n", m.registry.Active())
		fmt.Fprintln(w, "# HELP cpxserve_jobs_retained Registry entries retained for /v1/jobs.")
		fmt.Fprintln(w, "# TYPE cpxserve_jobs_retained gauge")
		fmt.Fprintf(w, "cpxserve_jobs_retained %d\n", m.registry.Retained())
		fmt.Fprintln(w, "# HELP cpxserve_jobs_finished_total Jobs finished by terminal state.")
		fmt.Fprintln(w, "# TYPE cpxserve_jobs_finished_total counter")
		byState := m.registry.FinishedByState()
		for _, state := range order.SortedKeys(byState) {
			fmt.Fprintf(w, "cpxserve_jobs_finished_total{state=%q} %d\n", state, byState[state])
		}
	}
}
