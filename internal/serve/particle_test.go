package serve

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// particleSimBody couples a flow row to a dedicated-rank particle
// instance, exercising the particle-specific SimSpec fields end to end.
const particleSimBody = `{
  "densitySteps": 2,
  "rotationPerStep": 0.001,
  "instances": [
    {"name": "flow", "kind": "mgcfd", "meshCells": 4096, "ranks": 4, "seed": 1},
    {"name": "spray", "kind": "particle", "meshCells": 4096, "ranks": 2, "seed": 3,
     "strategy": "steal", "coneFraction": 0.1, "imbalanceThreshold": 1.3}
  ],
  "units": [
    {"name": "cu", "a": 0, "b": 1, "kind": "steady", "points": 1000, "ranks": 2, "search": "tree", "exchangeEvery": 1}
  ]
}`

// TestParticleSpecValidation: each malformed particle field must be
// rejected with a 400 whose body names the offending field — negative
// ranks, an unknown strategy, and particle-only fields on other kinds.
func TestParticleSpecValidation(t *testing.T) {
	_, ts := testServer(t, Options{})
	url := ts.URL + "/v1/simulate"
	cases := []struct {
		name, mutate, field string
	}{
		{"negative-ranks", `"ranks": 2,`, "ranks"},
		{"unknown-strategy", `"strategy": "steal",`, "strategy"},
		{"negative-droplets", `"coneFraction": 0.1,`, "droplets"},
		{"sub-one-threshold", `"imbalanceThreshold": 1.3`, "imbalanceThreshold"},
		{"cone-out-of-range", `"coneFraction": 0.1,`, "coneFraction"},
	}
	replacements := map[string]string{
		"negative-ranks":    `"ranks": -2,`,
		"unknown-strategy":  `"strategy": "round-robin",`,
		"negative-droplets": `"coneFraction": 0.1, "droplets": -50,`,
		"sub-one-threshold": `"imbalanceThreshold": 0.4`,
		"cone-out-of-range": `"coneFraction": 1.7,`,
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := strings.Replace(particleSimBody, tc.mutate, replacements[tc.name], 1)
			if body == particleSimBody {
				t.Fatalf("mutation %q not applied", tc.name)
			}
			resp, b := postJSON(t, url, body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, b)
			}
			if !strings.Contains(string(b), tc.field) {
				t.Errorf("400 body does not name field %q: %s", tc.field, b)
			}
		})
	}
	// Particle-only fields on a non-particle kind are rejected by name.
	for _, field := range []string{`"droplets": 100`, `"strategy": "static"`, `"coneFraction": 0.2`, `"imbalanceThreshold": 1.5`} {
		body := strings.Replace(particleSimBody,
			`"kind": "mgcfd", "meshCells": 4096, "ranks": 4, "seed": 1`,
			`"kind": "mgcfd", "meshCells": 4096, "ranks": 4, "seed": 1, `+field, 1)
		resp, b := postJSON(t, ts.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s on mgcfd: status %d, want 400 (%s)", field, resp.StatusCode, b)
		}
		name := field[1:strings.Index(field, `":`)]
		if !strings.Contains(string(b), name) || !strings.Contains(string(b), "particle") {
			t.Errorf("400 body does not name %q as particle-only: %s", name, b)
		}
	}
}

// TestParticleCacheCanonicalisation: the content-addressed cache must
// key on the canonical spec — reordering fields hits the same entry,
// while changing the balancing strategy (same shape, different
// semantics) misses.
func TestParticleCacheCanonicalisation(t *testing.T) {
	_, ts := testServer(t, Options{})
	url := ts.URL + "/v1/simulate"
	resp1, body1 := postJSON(t, url, particleSimBody)
	if resp1.StatusCode != 200 {
		t.Fatalf("simulate: %d %s", resp1.StatusCode, body1)
	}
	if xc := resp1.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("first particle simulate X-Cache = %q, want miss", xc)
	}
	if !strings.Contains(string(body1), `"particles"`) ||
		!strings.Contains(string(body1), `"strategy":"steal"`) {
		t.Fatalf("simulate response missing particle load report: %s", body1)
	}
	// Same spec, reordered keys and fresh whitespace: must hit.
	reordered := `{
	  "units": [
	    {"ranks": 2, "name": "cu", "a": 0, "b": 1, "kind": "steady", "points": 1000, "search": "tree", "exchangeEvery": 1}
	  ],
	  "instances": [
	    {"seed": 1, "kind": "mgcfd", "name": "flow", "meshCells": 4096, "ranks": 4},
	    {"imbalanceThreshold": 1.3, "strategy": "steal", "name": "spray", "kind": "particle",
	     "meshCells": 4096, "ranks": 2, "seed": 3, "coneFraction": 0.1}
	  ],
	  "rotationPerStep": 0.001,
	  "densitySteps": 2
	}`
	resp2, body2 := postJSON(t, url, reordered)
	if xc := resp2.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("reordered particle spec X-Cache = %q, want hit (canonicalisation failed)", xc)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("reordered spec returned different bytes:\n%s\nvs\n%s", body1, body2)
	}
	// Only the strategy changes: a semantically different job, so the
	// canonical key must differ and the cache must miss.
	restrategised := strings.Replace(particleSimBody, `"strategy": "steal"`, `"strategy": "repartition"`, 1)
	resp3, body3 := postJSON(t, url, restrategised)
	if resp3.StatusCode != 200 {
		t.Fatalf("repartition simulate: %d %s", resp3.StatusCode, body3)
	}
	if xc := resp3.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("strategy change X-Cache = %q, want miss", xc)
	}
	if !strings.Contains(string(body3), `"strategy":"repartition"`) {
		t.Fatalf("repartition response missing strategy: %s", body3)
	}
}
