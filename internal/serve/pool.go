package serve

import (
	"errors"
	"sync"
)

// ErrQueueFull reports that the worker pool's queue had no room for
// another job. The HTTP layer maps it to 429 Too Many Requests with a
// Retry-After hint — backpressure, not unbounded buffering.
var ErrQueueFull = errors.New("serve: job queue full")

// Pool is a bounded worker pool with an explicit submission queue.
// Workers is the concurrency ceiling (a coupled simulation already
// fans out into many rank goroutines, so a handful of workers
// saturates the host); the queue bounds admitted-but-unstarted work.
type Pool struct {
	queue chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts workers goroutines draining a queueLen-deep queue.
func NewPool(workers, queueLen int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueLen < 0 {
		queueLen = 0
	}
	p := &Pool{queue: make(chan func(), queueLen)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.queue {
				fn()
			}
		}()
	}
	return p
}

// TrySubmit enqueues fn if the queue has room; it never blocks.
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- fn:
		return true
	default:
		return false
	}
}

// Depth reports the jobs admitted but not yet picked up by a worker.
func (p *Pool) Depth() int { return len(p.queue) }

// Capacity reports the queue bound.
func (p *Pool) Capacity() int { return cap(p.queue) }

// Close rejects new submissions, then waits for queued and running
// jobs to finish — the draining half of graceful shutdown.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.queue)
	p.wg.Wait()
}
