package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Job states. A job is terminal in JobDone, JobFailed, JobCanceled or
// JobRejected; JobQueued and JobRunning are live.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
	JobRejected = "rejected"
)

// maxRetainedJobs bounds the registry; beyond it the oldest terminal
// jobs are evicted (live jobs are never evicted).
const maxRetainedJobs = 1024

// Job is one request's registry entry: identity, lifecycle state, queue
// wait, cache disposition and live virtual-time progress. IDs are
// sequential per process — no clocks or randomness involved — so logs,
// traces and registry listings line up trivially.
type Job struct {
	id       string
	endpoint string
	seq      uint64
	reg      *Registry

	// vtBits is the max virtual time any rank of the job's simulation
	// has reached, as math.Float64bits, advanced by CAS from the
	// telemetry observer (many rank goroutines, no lock).
	vtBits atomic.Uint64
	// rev bumps on every observable change; the SSE poller uses it to
	// skip idle wakeups.
	rev atomic.Uint64

	// pointsTotal/pointsDone track batch progress for /v1/sweep jobs:
	// grid size and completed points. Zero for everything else.
	pointsTotal atomic.Int64
	pointsDone  atomic.Int64

	mu       sync.Mutex
	state    string
	pins     int // holders protecting this entry from registry eviction
	outcome  CacheOutcome
	code     int
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time

	done chan struct{}
}

// JobView is the JSON snapshot of a job.
type JobView struct {
	ID       string `json:"id"`
	Endpoint string `json:"endpoint"`
	State    string `json:"state"`
	// QueueWait is seconds between admission and compute start (or now,
	// while still queued).
	QueueWait float64 `json:"queue_wait_s"`
	// Runtime is seconds of computation so far (or total, when done).
	Runtime float64 `json:"run_s"`
	// VirtualTime is the furthest virtual time any rank of the job's
	// simulation has reached — monotone progress for /v1/simulate jobs,
	// zero for the analytic endpoints.
	VirtualTime float64 `json:"virtual_time_s"`
	// PointsTotal/PointsDone report batch progress for /v1/sweep jobs:
	// grid size and completed points (omitted elsewhere).
	PointsTotal int64        `json:"points_total,omitempty"`
	PointsDone  int64        `json:"points_done,omitempty"`
	Cache       CacheOutcome `json:"cache,omitempty"`
	Code        int          `json:"status_code,omitempty"`
	Error       string       `json:"error,omitempty"`
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Rev returns the current change revision.
func (j *Job) Rev() uint64 { return j.rev.Load() }

// Start marks the job running (compute has left the queue).
func (j *Job) Start() {
	j.mu.Lock()
	if j.state == JobQueued {
		j.state = JobRunning
		//lint:allow determinism queue-wait accounting measures host time by definition; nothing feeds the virtual clock
		j.started = time.Now()
	}
	j.mu.Unlock()
	j.rev.Add(1)
}

// ObserveProgress advances the job's virtual-time high-water mark. Safe
// for concurrent use from every rank goroutine of a simulation.
func (j *Job) ObserveProgress(t float64) {
	bits := math.Float64bits(t)
	for {
		old := j.vtBits.Load()
		if t <= math.Float64frombits(old) {
			return
		}
		if j.vtBits.CompareAndSwap(old, bits) {
			j.rev.Add(1)
			return
		}
	}
}

// SetPoints records a sweep job's grid size.
func (j *Job) SetPoints(total int) {
	j.pointsTotal.Store(int64(total))
	j.rev.Add(1)
}

// PointDone marks one sweep point complete.
func (j *Job) PointDone() {
	j.pointsDone.Add(1)
	j.rev.Add(1)
}

// Pin protects the job's registry entry from eviction (even once
// terminal) until a matching Unpin. A live sweep pins its child jobs so
// SSE watchers of a finished point never see the entry vanish while the
// sweep that spawned it is still streaming.
func (j *Job) Pin() {
	j.mu.Lock()
	j.pins++
	j.mu.Unlock()
}

// Unpin releases one Pin.
func (j *Job) Unpin() {
	j.mu.Lock()
	if j.pins > 0 {
		j.pins--
	}
	j.mu.Unlock()
}

// Finish records the job's terminal state, HTTP code, cache disposition
// and error (if any), and closes Done.
func (j *Job) Finish(state string, code int, outcome CacheOutcome, err error) {
	j.mu.Lock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCanceled || j.state == JobRejected {
		j.mu.Unlock()
		return
	}
	if j.started.IsZero() {
		j.started = j.created
	}
	j.state = state
	j.code = code
	j.outcome = outcome
	if err != nil {
		j.errMsg = err.Error()
	}
	//lint:allow determinism job runtime accounting measures host time by definition; nothing feeds the virtual clock
	j.finished = time.Now()
	j.mu.Unlock()
	j.rev.Add(1)
	j.reg.finished(state)
	close(j.done)
}

// View snapshots the job for JSON rendering.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		Endpoint:    j.endpoint,
		State:       j.state,
		VirtualTime: math.Float64frombits(j.vtBits.Load()),
		PointsTotal: j.pointsTotal.Load(),
		PointsDone:  j.pointsDone.Load(),
		Cache:       j.outcome,
		Code:        j.code,
		Error:       j.errMsg,
	}
	//lint:allow determinism live queue-wait/runtime readings measure host time by definition; nothing feeds the virtual clock
	now := time.Now()
	switch j.state {
	case JobQueued:
		v.QueueWait = now.Sub(j.created).Seconds()
	case JobRunning:
		v.QueueWait = j.started.Sub(j.created).Seconds()
		v.Runtime = now.Sub(j.started).Seconds()
	default:
		v.QueueWait = j.started.Sub(j.created).Seconds()
		v.Runtime = j.finished.Sub(j.started).Seconds()
	}
	return v
}

// Registry tracks every request's job for the /v1/jobs API, bounded by
// evicting the oldest terminal entries.
type Registry struct {
	seq atomic.Uint64

	mu    sync.Mutex
	jobs  map[string]*Job
	order []*Job // admission order, for listing and eviction

	byState map[string]uint64 // finished jobs by terminal state
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{jobs: make(map[string]*Job), byState: make(map[string]uint64)}
}

// Create admits a new job for an endpoint.
func (r *Registry) Create(endpoint string) *Job {
	seq := r.seq.Add(1)
	j := &Job{
		id:       fmt.Sprintf("j-%06d", seq),
		endpoint: endpoint,
		seq:      seq,
		reg:      r,
		state:    JobQueued,
		done:     make(chan struct{}),
	}
	//lint:allow determinism job admission timestamps measure host time by definition; nothing feeds the virtual clock
	j.created = time.Now()
	r.mu.Lock()
	r.jobs[j.id] = j
	r.order = append(r.order, j)
	r.evictLocked()
	r.mu.Unlock()
	return j
}

// evictLocked drops the oldest terminal jobs beyond maxRetainedJobs.
func (r *Registry) evictLocked() {
	if len(r.order) <= maxRetainedJobs {
		return
	}
	kept := r.order[:0]
	excess := len(r.order) - maxRetainedJobs
	for _, j := range r.order {
		if excess > 0 {
			j.mu.Lock()
			terminal := j.state != JobQueued && j.state != JobRunning
			evictable := terminal && j.pins == 0
			j.mu.Unlock()
			if evictable {
				delete(r.jobs, j.id)
				excess--
				continue
			}
		}
		kept = append(kept, j)
	}
	r.order = kept
}

// finished tallies a terminal state.
func (r *Registry) finished(state string) {
	r.mu.Lock()
	r.byState[state]++
	r.mu.Unlock()
}

// Get returns a job by ID (nil when unknown or evicted).
func (r *Registry) Get(id string) *Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs[id]
}

// List snapshots every retained job in admission order.
func (r *Registry) List() []JobView {
	r.mu.Lock()
	jobs := append([]*Job(nil), r.order...)
	r.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.View()
	}
	return out
}

// Active counts live (queued or running) jobs.
func (r *Registry) Active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, j := range r.order {
		j.mu.Lock()
		if j.state == JobQueued || j.state == JobRunning {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Retained counts registry entries.
func (r *Registry) Retained() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// FinishedByState copies the terminal-state tallies.
func (r *Registry) FinishedByState() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.byState))
	for k, v := range r.byState {
		out[k] = v
	}
	return out
}

// ssePollInterval is how often the event stream re-snapshots a job.
const ssePollInterval = 50 * time.Millisecond

// handleJobs serves GET /v1/jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Jobs []JobView `json:"jobs"`
	}{s.registry.List()})
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	jb := s.registry.Get(r.PathValue("id"))
	if jb == nil {
		s.jsonError(w, http.StatusNotFound, "", fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(jb.View())
}

// handleJobEvents serves GET /v1/jobs/{id}/events as Server-Sent
// Events: an immediate snapshot, a "progress" event whenever the job
// changes (polled at ssePollInterval), and a terminal "done" event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	jb := s.registry.Get(r.PathValue("id"))
	if jb == nil {
		s.jsonError(w, http.StatusNotFound, "", fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.jsonError(w, http.StatusInternalServerError, jb.ID(), fmt.Errorf("streaming unsupported"))
		return
	}
	// Pin the entry for the watch duration: a terminal job being
	// streamed must stay resolvable (Registry.Get) even if a flood of
	// newer jobs would otherwise evict it mid-watch.
	jb.Pin()
	defer jb.Unpin()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Job-ID", jb.ID())

	send := func(event string) {
		data, _ := json.Marshal(jb.View())
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}
	send("progress")
	lastRev := jb.Rev()
	//lint:allow determinism the SSE poll cadence paces a host-facing event stream; nothing feeds the virtual clock
	ticker := time.NewTicker(ssePollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-jb.Done():
			send("done")
			return
		case <-ticker.C:
			if rev := jb.Rev(); rev != lastRev {
				lastRev = rev
				send("progress")
			}
		}
	}
}
