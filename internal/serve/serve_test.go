package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cpx/internal/cluster"
)

func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Machine == nil {
		opts.Machine = cluster.SmallCluster()
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

const allocBody = `{
  "budget": 4000,
  "components": [
    {"name": "row1", "minRanks": 100,
     "curve": {"baseCores": 100, "baseTime": 30, "p50": 5000, "k": 1.3}},
    {"name": "comb", "minRanks": 100,
     "curve": {"baseCores": 100, "baseTime": 400, "p50": 2500, "k": 1.3}},
    {"name": "cu", "isCU": true, "minRanks": 10,
     "curve": {"baseCores": 100, "baseTime": 0.5, "p50": 200, "k": 1.3}}
  ]
}`

const simBody = `{
  "densitySteps": 3,
  "rotationPerStep": 0.001,
  "instances": [
    {"name": "row1", "kind": "mgcfd", "meshCells": 4096, "ranks": 4, "seed": 1},
    {"name": "row2", "kind": "mgcfd", "meshCells": 4096, "ranks": 4, "seed": 2}
  ],
  "units": [
    {"name": "cu", "a": 0, "b": 1, "kind": "sliding", "points": 2000, "ranks": 2, "search": "tree"}
  ]
}`

// TestHealthz exercises the liveness endpoint.
func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), `"status":"ok"`) {
		t.Fatalf("healthz body %q", b)
	}
}

// TestAllocateEndpointCachesByteIdentical: the second identical request
// must be a cache hit with the byte-identical artifact, even when the
// body differs in whitespace, key order and number formatting.
func TestAllocateEndpointCachesByteIdentical(t *testing.T) {
	_, ts := testServer(t, Options{})
	url := ts.URL + "/v1/allocate"
	resp1, body1 := postJSON(t, url, allocBody)
	if resp1.StatusCode != 200 {
		t.Fatalf("first allocate: %d %s", resp1.StatusCode, body1)
	}
	if xc := resp1.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", xc)
	}
	resp2, body2 := postJSON(t, url, allocBody)
	if xc := resp2.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", xc)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit not byte-identical:\n%s\nvs\n%s", body1, body2)
	}
	// Same spec, different surface syntax: reordered keys and
	// whitespace. Must hit the same cache entry.
	reformatted := `  {"components": [
	    {"minRanks": 100, "name": "row1",
	     "curve": {"baseTime": 30, "baseCores": 100, "k": 1.3, "p50": 5000}},
	    {"curve": {"baseCores": 100, "baseTime": 400, "p50": 2500, "k": 1.3},
	     "name": "comb", "minRanks": 100},
	    {"name": "cu", "minRanks": 10, "isCU": true,
	     "curve": {"baseCores": 100, "baseTime": 0.5, "p50": 200, "k": 1.3}}],
	   "budget": 4000}`
	resp3, body3 := postJSON(t, url, reformatted)
	if xc := resp3.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("reformatted request X-Cache = %q, want hit (canonicalisation failed)", xc)
	}
	if !bytes.Equal(body1, body3) {
		t.Fatalf("reformatted request returned different bytes")
	}
	if !strings.Contains(string(body1), `"predicted"`) {
		t.Fatalf("allocate response missing prediction: %s", body1)
	}
}

// TestSimulateEndpointCachesByteIdentical runs a real coupled job twice.
func TestSimulateEndpointCachesByteIdentical(t *testing.T) {
	_, ts := testServer(t, Options{})
	url := ts.URL + "/v1/simulate"
	resp1, body1 := postJSON(t, url, simBody)
	if resp1.StatusCode != 200 {
		t.Fatalf("simulate: %d %s", resp1.StatusCode, body1)
	}
	if xc := resp1.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("first simulate X-Cache = %q, want miss", xc)
	}
	resp2, body2 := postJSON(t, url, simBody)
	if xc := resp2.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("second simulate X-Cache = %q, want hit", xc)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("simulate cache hit not byte-identical")
	}
	if !strings.Contains(string(body1), `"elapsed"`) {
		t.Fatalf("simulate response missing elapsed: %s", body1)
	}
}

// TestSimulateSchedEvent runs the same coupled job under both rank
// executors: the responses must be byte-identical (the executors are
// bitwise-equivalent in virtual time), while caching keys stay separate
// per request body.
func TestSimulateSchedEvent(t *testing.T) {
	_, ts := testServer(t, Options{})
	url := ts.URL + "/v1/simulate"
	respG, bodyG := postJSON(t, url, simBody)
	if respG.StatusCode != 200 {
		t.Fatalf("simulate (goroutine): %d %s", respG.StatusCode, bodyG)
	}
	evBody := strings.Replace(simBody, `"densitySteps": 3,`, `"densitySteps": 3, "sched": "event",`, 1)
	respE, bodyE := postJSON(t, url, evBody)
	if respE.StatusCode != 200 {
		t.Fatalf("simulate (event): %d %s", respE.StatusCode, bodyE)
	}
	if xc := respE.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("event simulate X-Cache = %q, want miss (distinct cache key)", xc)
	}
	if !bytes.Equal(bodyG, bodyE) {
		t.Fatalf("event executor response differs from goroutine:\n%s\nvs\n%s", bodyG, bodyE)
	}
}

// TestFitAndSpeedupEndpoints smoke-tests the remaining model routes.
func TestFitAndSpeedupEndpoints(t *testing.T) {
	_, ts := testServer(t, Options{})
	fitBody := `{"samples": [
		{"cores": 100, "runtime": 30}, {"cores": 200, "runtime": 15.2},
		{"cores": 400, "runtime": 7.8}, {"cores": 800, "runtime": 4.1},
		{"cores": 1600, "runtime": 2.4}]}`
	resp, body := postJSON(t, ts.URL+"/v1/fit", fitBody)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"p50"`) {
		t.Fatalf("fit: %d %s", resp.StatusCode, body)
	}
	spBody := `{
	  "budget": 4000,
	  "base": [{"name": "a", "minRanks": 100, "curve": {"baseCores": 100, "baseTime": 400, "p50": 2500, "k": 1.3}}],
	  "optimized": [{"name": "a", "minRanks": 100, "curve": {"baseCores": 100, "baseTime": 300, "p50": 3500, "k": 1.3}}]
	}`
	resp, body = postJSON(t, ts.URL+"/v1/speedup", spBody)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"speedup"`) {
		t.Fatalf("speedup: %d %s", resp.StatusCode, body)
	}
}

// TestBadRequests: malformed JSON, unknown fields, bad budget, bad
// timeout parameter — all 400, none cached.
func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Options{})
	cases := []struct {
		name, url, body string
	}{
		{"malformed", ts.URL + "/v1/allocate", `{"budget": `},
		{"unknown-field", ts.URL + "/v1/allocate", `{"budget": 100, "component": []}`},
		{"non-positive-budget", ts.URL + "/v1/allocate", `{"budget": 0, "components": [{"name": "a", "curve": {"baseCores": 1, "baseTime": 1, "p50": 10, "k": 1}}]}`},
		{"no-components", ts.URL + "/v1/allocate", `{"budget": 100, "components": []}`},
		{"trailing-garbage", ts.URL + "/v1/allocate", allocBody + ` {"x": 1}`},
		{"bad-timeout", ts.URL + "/v1/allocate?timeout=yesterday", allocBody},
		{"bad-sim-kind", ts.URL + "/v1/simulate", `{"densitySteps": 1, "rotationPerStep": 0.1, "instances": [{"name": "x", "kind": "openfoam", "meshCells": 10, "ranks": 1, "seed": 1}], "units": []}`},
		{"bad-sched", ts.URL + "/v1/simulate", `{"sched": "fibers", "densitySteps": 1, "rotationPerStep": 0.1, "instances": [{"name": "x", "kind": "mgcfd", "meshCells": 10, "ranks": 1, "seed": 1}], "units": []}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, tc.url, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, body)
			}
		})
	}
}

// TestBackpressure429: with a single worker wedged and a zero-length
// queue... queues cannot be zero, so use length 1: the wedged job
// occupies the worker, one job fills the queue, and the next distinct
// request must be rejected with 429 + Retry-After.
func TestBackpressure429(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 1, QueueLen: 1})
	release := make(chan struct{})
	var wedge sync.WaitGroup
	wedge.Add(1)
	if !s.pool.TrySubmit(func() { wedge.Done(); <-release }) {
		t.Fatal("could not wedge the worker")
	}
	wedge.Wait() // the worker is now busy
	if !s.pool.TrySubmit(func() {}) {
		t.Fatal("could not fill the queue")
	}
	resp, _ := postJSON(t, ts.URL+"/v1/allocate", allocBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	close(release)
	// Once drained, the same request must succeed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := postJSON(t, ts.URL+"/v1/allocate", allocBody)
		if resp.StatusCode == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request still rejected after drain: %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSimulateTimeoutCancelsAndUnwinds: a simulation request whose
// deadline expires must answer 504, cancel the job, and unwind every
// rank goroutine.
func TestSimulateTimeoutCancelsAndUnwinds(t *testing.T) {
	_, ts := testServer(t, Options{})
	// Warm up the keep-alive connection first so its client/server
	// goroutines are part of the baseline.
	if resp, err := http.Get(ts.URL + "/healthz"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	base := runtime.NumGoroutine()
	big := `{
	  "densitySteps": 50,
	  "rotationPerStep": 0.001,
	  "instances": [
	    {"name": "row1", "kind": "mgcfd", "meshCells": 262144, "ranks": 4, "seed": 1},
	    {"name": "row2", "kind": "mgcfd", "meshCells": 262144, "ranks": 4, "seed": 2}
	  ],
	  "units": [
	    {"name": "cu", "a": 0, "b": 1, "kind": "sliding", "points": 2000, "ranks": 2, "search": "tree"}
	  ]
	}`
	resp, body := postJSON(t, ts.URL+"/v1/simulate?timeout=25ms", big)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	// All rank goroutines (and the pool job) must unwind; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after timeout: %d now, %d before", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
	// The failed job must not have been cached: a retry with a long
	// deadline recomputes and succeeds.
	resp, body = postJSON(t, ts.URL+"/v1/simulate?timeout=2m", big)
	if resp.StatusCode != 200 {
		t.Fatalf("retry after timeout: %d (%s)", resp.StatusCode, body)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("retry X-Cache = %q, want miss (errors must not be cached)", xc)
	}
}

// TestSingleflightJoin: concurrent identical requests share one
// computation; joiners see X-Cache: join and identical bytes.
func TestSingleflightJoin(t *testing.T) {
	_, ts := testServer(t, Options{})
	const n = 8
	bodies := make([][]byte, n)
	outcomes := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(simBody))
			if err != nil {
				t.Error(err)
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			bodies[i] = b
			outcomes[i] = resp.Header.Get("X-Cache")
		}(i)
	}
	wg.Wait()
	miss, join, hit := 0, 0, 0
	for i := range outcomes {
		switch outcomes[i] {
		case "miss":
			miss++
		case "join":
			join++
		case "hit":
			hit++
		default:
			t.Fatalf("request %d outcome %q, body %s", i, outcomes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d bytes differ", i)
		}
	}
	if miss != 1 {
		t.Errorf("misses = %d, want exactly 1 (others join or hit); join=%d hit=%d", miss, join, hit)
	}
}

// TestMetricsExposition checks counters appear and the format parses
// line-wise.
func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t, Options{})
	postJSON(t, ts.URL+"/v1/allocate", allocBody)
	postJSON(t, ts.URL+"/v1/allocate", allocBody)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(b)
	for _, want := range []string{
		`cpxserve_requests_total{endpoint="/v1/allocate",code="200"} 2`,
		"cpxserve_cache_hits_total 1",
		"cpxserve_cache_misses_total 1",
		"cpxserve_queue_capacity 16",
		"cpxserve_request_duration_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestGracefulClose: Close drains queued work before returning.
func TestGracefulClose(t *testing.T) {
	p := NewPool(2, 8)
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 8; i++ {
		if !p.TrySubmit(func() {
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			ran++
			mu.Unlock()
		}) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	p.Close()
	if ran != 8 {
		t.Fatalf("Close returned with %d/8 jobs done", ran)
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("submit accepted after Close")
	}
}

// TestCacheDoErrorNotCached: a failing compute is retried by the next
// identical request.
func TestCacheDoErrorNotCached(t *testing.T) {
	c := NewCache(CacheConfig{})
	// Do holds the cache mutex across submission, so run the job on
	// its own goroutine as the real pool does.
	inline := func(fn func()) bool { go fn(); return true }
	calls := 0
	compute := func(context.Context) ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("transient")
		}
		return []byte("ok"), nil
	}
	if _, _, err := c.Do(context.Background(), "k", inline, compute); err == nil {
		t.Fatal("first Do did not fail")
	}
	body, outcome, err := c.Do(context.Background(), "k", inline, compute)
	if err != nil || string(body) != "ok" {
		t.Fatalf("retry: %q %v", body, err)
	}
	if outcome != OutcomeMiss {
		t.Fatalf("retry outcome %v, want miss", outcome)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}
